package repro

// One benchmark per paper table and figure: each regenerates the
// corresponding measurement at a reduced-but-meaningful scale, so
// `go test -bench=. -benchmem` sweeps the entire evaluation. Shapes (who
// wins, by what factor) are the reproduction target; see EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/bitwidth"
	"repro/internal/experiments"
	"repro/internal/grid"
	"repro/internal/isa"
	"repro/internal/steer"
	"repro/internal/synth"
	"repro/internal/workload"
)

func benchOptions() experiments.Options {
	return experiments.Options{SpecUops: 20_000, SuiteUops: 4_000, Warmup: 4_000, Workers: 0}
}

// BenchmarkFig01NarrowDependency regenerates Figure 1 (narrow data-width
// dependent register operands + the §1 ALU operand mix).
func BenchmarkFig01NarrowDependency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := experiments.Fig1(benchOptions())
		if t.Rows() == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFig03Detectors exercises the Figure 3 leading zero/one detector
// circuits against the fast datapath check.
func BenchmarkFig03Detectors(b *testing.B) {
	det := bitwidth.NewNarrowDetector()
	ok := true
	for i := 0; i < b.N; i++ {
		v := uint32(i) * 0x9E3779B9
		ok = ok && (det.Narrow(v) == bitwidth.IsNarrow(v))
	}
	if !ok {
		b.Fatal("detector mismatch")
	}
}

// benchSweep shares one SPEC ladder sweep across the figure benchmarks
// that read from it (building it per-iteration would benchmark the sweep,
// not the figure extraction — the sweep itself is BenchmarkPolicyLadder).
var benchSweepCache *experiments.SpecSweep

func benchSweep(b *testing.B) *experiments.SpecSweep {
	b.Helper()
	if benchSweepCache == nil {
		benchSweepCache = experiments.RunSpecSweep(benchOptions())
	}
	return benchSweepCache
}

// BenchmarkPolicyLadder runs the full §3 policy ladder over SPEC Int — the
// workhorse behind Figures 5-9 and 12.
func BenchmarkPolicyLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := experiments.RunSpecSweep(benchOptions())
		if len(s.Apps) != 12 {
			b.Fatal("incomplete sweep")
		}
	}
}

// BenchmarkFig05WidthAccuracy regenerates Figure 5 (correct / non-fatal /
// fatal width prediction classes, with and without confidence).
func BenchmarkFig05WidthAccuracy(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig5(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig06Perf888 regenerates Figure 6 (8_8_8 speedups).
func BenchmarkFig06Perf888(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig6(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig07SteeredAndCopies regenerates Figure 7.
func BenchmarkFig07SteeredAndCopies(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig7(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig08BRCopies regenerates Figure 8 (BR's copy reduction).
func BenchmarkFig08BRCopies(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig8(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig09LRCopies regenerates Figure 9 (LR's copy reduction).
func BenchmarkFig09LRCopies(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig9(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig11CarryContainment regenerates Figure 11.
func BenchmarkFig11CarryContainment(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig11(benchOptions()).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig12CRPerf regenerates Figure 12 (CR's speedups).
func BenchmarkFig12CRPerf(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.Fig12(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkFig13Distance regenerates Figure 13.
func BenchmarkFig13Distance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Fig13(benchOptions()).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSec36CopyPrefetch regenerates the §3.6 CP study.
func BenchmarkSec36CopyPrefetch(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.CPStudy(s).Rows() != 2 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSec37Splitting regenerates the §3.7 IR study (imbalance
// reduction and the tuned variant).
func BenchmarkSec37Splitting(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.IRStudy(s).Rows() != 3 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkSec37EnergyDelay regenerates the §3.7 ED² comparison.
func BenchmarkSec37EnergyDelay(b *testing.B) {
	s := benchSweep(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if experiments.EnergyDelay(s).Rows() != 13 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable1Config renders the Table 1 machine parameters.
func BenchmarkTable1Config(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().Rows() == 0 {
			b.Fatal("bad table")
		}
	}
}

// BenchmarkTable2Workloads renders the Table 2 inventory (and validates
// the 412-trace suite expansion).
func BenchmarkTable2Workloads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table2().Rows() != 8 {
			b.Fatal("bad table")
		}
		if len(workload.Suite()) != workload.SuiteSize {
			b.Fatal("bad suite")
		}
	}
}

// BenchmarkFig14Suite regenerates Figure 14 over the full 412-trace suite
// (reduced per-trace budget; the category ordering is the target).
func BenchmarkFig14Suite(b *testing.B) {
	o := benchOptions()
	o.SuiteUops = 2_000
	for i := 0; i < b.N; i++ {
		table, series := experiments.Fig14(o)
		if table.Rows() != 8 || len(series.Values) != 412 {
			b.Fatal("bad fig14")
		}
	}
}

// --- ablation benches for the design choices DESIGN.md calls out ---

// BenchmarkAblationClockRatio compares helper clock ratios 1× vs 2× (§2.2).
func BenchmarkAblationClockRatio(b *testing.B) {
	w, _ := WorkloadByName("crafty")
	for i := 0; i < b.N; i++ {
		cfg := HelperConfig()
		cfg.HelperClockRatio = 1 + i%2
		r := RunWarm(cfg, steer.FCR(), w, 15_000, 3_000)
		if r.Metrics.Committed == 0 {
			b.Fatal("no work")
		}
	}
}

// BenchmarkAblationConfidence compares 8_8_8 with and without the 2-bit
// confidence estimator (§3.2).
func BenchmarkAblationConfidence(b *testing.B) {
	w, _ := WorkloadByName("gzip")
	for i := 0; i < b.N; i++ {
		pol := steer.F888()
		if i%2 == 1 {
			pol = steer.F888NoConfidence()
		}
		r := RunWarm(HelperConfig(), pol, w, 15_000, 3_000)
		if r.Metrics.Committed == 0 {
			b.Fatal("no work")
		}
	}
}

// BenchmarkAblationHelperWidth compares 8/16/24-bit helper datapaths
// (§2.1's wider-cluster remark).
func BenchmarkAblationHelperWidth(b *testing.B) {
	w, _ := WorkloadByName("crafty")
	widths := []int{8, 16, 24}
	for i := 0; i < b.N; i++ {
		cfg := HelperConfig()
		cfg.HelperWidthBits = widths[i%len(widths)]
		r := RunWarm(cfg, steer.FCR(), w, 15_000, 3_000)
		if r.Metrics.Committed == 0 {
			b.Fatal("no work")
		}
	}
}

// BenchmarkAblationSplitMode compares per-uop, tuned and block-granularity
// splitting (§3.7 and its proposed extension).
func BenchmarkAblationSplitMode(b *testing.B) {
	w, _ := WorkloadByName("eon")
	pols := []Policy{steer.FIR(), steer.FIRTuned(), steer.FIRBlock()}
	for i := 0; i < b.N; i++ {
		r := RunWarm(HelperConfig(), pols[i%len(pols)], w, 15_000, 3_000)
		if r.Metrics.Committed == 0 {
			b.Fatal("no work")
		}
	}
}

// --- raw throughput benches ---

// BenchmarkSimulatorThroughput measures timing-simulation speed in
// uops/sec (reported as ns/uop via b.N uops).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w, _ := WorkloadByName("gcc")
	sim := mustSim(HelperConfig(), steer.FCR(), w)
	b.ResetTimer()
	r := sim.Run(uint64(b.N))
	if r.Metrics.Committed < uint64(b.N) {
		b.Fatal("short run")
	}
}

// dispatchPolicy forces the same feature set through the dynamic Policy
// dispatch path: it is not a steer.Features value, so the core cannot
// take the static fast path and calls Decide per renamed uop. Decide is
// implemented directly (not via embedding) so the benchmark pays exactly
// one dynamic call per uop, like the real dynamic policies.
type dispatchPolicy struct{ steer.Features }

func (p dispatchPolicy) Decide(*isa.Uop, *steer.View) steer.Features { return p.Features }

// BenchmarkPolicyOverhead prices the Policy-interface refactor on the hot
// path: a steer.Features policy runs exactly the pre-refactor static code
// (cached feature set, no dispatch), while dispatchPolicy carries the
// identical features through a per-uop interface call — the upper bound
// on what any dynamic policy adds before its own logic. The two
// simulators advance in interleaved 50k-uop slices inside one timed run,
// so slow machine drift (other tenants, thermal) hits both sides equally
// instead of biasing whichever variant ran second. The headline number is
// the custom overhead-pct metric (dispatch vs static, must stay under 5);
// cmd/benchjson lifts it into BENCH_core.json as policy_overhead_pct.
// ns/op reports the combined cost of one uop through each simulator.
func BenchmarkPolicyOverhead(b *testing.B) {
	w, _ := WorkloadByName("gcc")
	simStatic := mustSim(HelperConfig(), steer.FCR(), w)
	simDispatch := mustSim(HelperConfig(), dispatchPolicy{steer.FCR()}, w)
	const chunk = 50_000
	var tStatic, tDispatch time.Duration
	var target uint64
	b.ResetTimer()
	for remaining := uint64(b.N); remaining > 0; {
		n := uint64(chunk)
		if n > remaining {
			n = remaining
		}
		remaining -= n
		target += n
		t0 := time.Now()
		simStatic.Run(target)
		t1 := time.Now()
		simDispatch.Run(target)
		tStatic += t1.Sub(t0)
		tDispatch += time.Since(t1)
	}
	b.StopTimer()
	if simStatic.Metrics().Committed < uint64(b.N) || simDispatch.Metrics().Committed < uint64(b.N) {
		b.Fatal("short run")
	}
	b.ReportMetric(float64(tStatic.Nanoseconds())/float64(b.N), "static-ns/uop")
	b.ReportMetric(float64(tDispatch.Nanoseconds())/float64(b.N), "dispatch-ns/uop")
	b.ReportMetric((float64(tDispatch)/float64(tStatic)-1)*100, "overhead-pct")
}

// BenchmarkDynamicTournament measures the full adaptive path: per-uop
// dispatch plus interval Observe feedback and usage accounting.
func BenchmarkDynamicTournament(b *testing.B) {
	w, _ := WorkloadByName("gcc")
	sim := mustSim(HelperConfig(), steer.DefaultTournament(), w)
	b.ResetTimer()
	if r := sim.Run(uint64(b.N)); r.Metrics.Committed < uint64(b.N) {
		b.Fatal("short run")
	}
}

// BenchmarkDynamicUCB measures the UCB bandit end to end: per-uop
// dispatch, phase detection, interval energy estimation and arm updates.
func BenchmarkDynamicUCB(b *testing.B) {
	w, _ := WorkloadByName("gcc")
	sim := mustSim(HelperConfig(), steer.DefaultUCBED2(), w)
	b.ResetTimer()
	if r := sim.Run(uint64(b.N)); r.Metrics.Committed < uint64(b.N) {
		b.Fatal("short run")
	}
}

// phaseUCBPolicy prices the phase-aware machinery without perturbing the
// simulated work: it steers exactly like the static FCR rung, but its
// non-zero Interval switches the core onto the full adaptive path — the
// per-uop Decide dispatch (plus a real UCB arm lookup), the branch/memory
// phase-detector notes, the interval power-model estimate, and real UCB
// arm updates in Observe. Comparing it against the static FCR fast path
// isolates exactly the phase-tracking + UCB dispatch cost.
type phaseUCBPolicy struct{ ucb *steer.UCB }

func (p phaseUCBPolicy) Name() string { return "bench:phase-ucb-probe" }
func (p phaseUCBPolicy) Decide(u *isa.Uop, v *steer.View) steer.Features {
	p.ucb.Decide(u, v)
	return steer.FCR()
}
func (p phaseUCBPolicy) Observe(d Metrics, occ steer.Occupancy) { p.ucb.Observe(d, occ) }
func (p phaseUCBPolicy) Interval() uint64                       { return p.ucb.Interval() }
func (p phaseUCBPolicy) NeedsHelper() bool                      { return true }

// BenchmarkPhaseUCBOverhead prices the tentpole machinery of the
// phase-aware refactor on the hot path, BenchmarkPolicyOverhead-style:
// the static FCR rung runs the zero-dispatch fast path, while
// phaseUCBPolicy carries the identical steering decisions through the
// complete phase-aware dynamic plumbing. The two simulators advance in
// interleaved 50k-uop slices inside one timed run so machine drift hits
// both sides equally. The headline number is the phase-ucb-overhead-pct
// metric (must stay under 5); cmd/benchjson lifts it into BENCH_core.json
// as phase_ucb_overhead_pct.
func BenchmarkPhaseUCBOverhead(b *testing.B) {
	w, _ := WorkloadByName("gcc")
	simStatic := mustSim(HelperConfig(), steer.FCR(), w)
	simPhase := mustSim(HelperConfig(), phaseUCBPolicy{steer.DefaultUCB()}, w)
	const chunk = 50_000
	var tStatic, tPhase time.Duration
	var target uint64
	b.ResetTimer()
	for remaining := uint64(b.N); remaining > 0; {
		n := uint64(chunk)
		if n > remaining {
			n = remaining
		}
		remaining -= n
		target += n
		t0 := time.Now()
		simStatic.Run(target)
		t1 := time.Now()
		simPhase.Run(target)
		tStatic += t1.Sub(t0)
		tPhase += time.Since(t1)
	}
	b.StopTimer()
	if simStatic.Metrics().Committed < uint64(b.N) || simPhase.Metrics().Committed < uint64(b.N) {
		b.Fatal("short run")
	}
	b.ReportMetric(float64(tStatic.Nanoseconds())/float64(b.N), "static-ns/uop")
	b.ReportMetric(float64(tPhase.Nanoseconds())/float64(b.N), "phase-ns/uop")
	b.ReportMetric((float64(tPhase)/float64(tStatic)-1)*100, "phase-ucb-overhead-pct")
}

// BenchmarkGridDispatchOverhead prices the distributed grid fabric
// against in-process execution: each iteration runs one job locally and
// one through a live grid (HTTP server, lease protocol, canonical-JSON
// round trip, NDJSON result stream, one in-process worker), interleaved
// inside one timed run so machine drift hits both sides equally — the
// BenchmarkPolicyOverhead scheme at job granularity. The job is sized
// like a production sweep point (cmd/sweep's default 120k measured
// uops), so the ratio reflects how dispatch actually amortizes: the
// absolute cost is fixed per job (~1-2ms), and gating the ratio on a
// toy job would measure the job, not the fabric.
// Every job gets a unique Name so its content hash misses the result
// store and the full dispatch path is exercised. The headline number is
// the grid-dispatch-overhead-pct metric; cmd/benchjson lifts it into
// BENCH_core.json as grid_dispatch_overhead_pct.
func BenchmarkGridDispatchOverhead(b *testing.B) {
	w, _ := WorkloadByName("gcc")
	srv := grid.NewServer()
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	local := NewRunner()
	worker := &grid.Worker{Server: ts.URL, Exec: local.JobExec(), Parallel: 1,
		LeaseWait: 200 * time.Millisecond, Name: "bench"}
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		worker.Run(wctx)
	}()
	defer func() {
		wcancel()
		<-workerDone
	}()
	remote := NewRunner(WithGrid(ts.URL))

	ctx := context.Background()
	job := Job{Policy: PolicyFull(), Workload: w, N: 120_000, Warmup: 4_000}
	var tLocal, tGrid time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := job
		j.Name = fmt.Sprintf("local-%d", i)
		t0 := time.Now()
		if _, err := local.Run(ctx, j); err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		j.Name = fmt.Sprintf("grid-%d", i)
		if _, err := remote.Run(ctx, j); err != nil {
			b.Fatal(err)
		}
		tLocal += t1.Sub(t0)
		tGrid += time.Since(t1)
	}
	b.StopTimer()
	b.ReportMetric(float64(tLocal.Nanoseconds())/float64(b.N), "local-ns/job")
	b.ReportMetric(float64(tGrid.Nanoseconds())/float64(b.N), "grid-ns/job")
	b.ReportMetric((float64(tGrid)/float64(tLocal)-1)*100, "grid-dispatch-overhead-pct")
}

// BenchmarkSynthThroughput measures trace generation speed.
func BenchmarkSynthThroughput(b *testing.B) {
	s := synth.MustNewStream(synth.DefaultParams())
	var u isa.Uop
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next(&u)
	}
	if u.Seq == 0 && b.N > 1 {
		b.Fatal("stream stalled")
	}
}
