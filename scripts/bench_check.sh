#!/bin/sh
# Two-phase perf trajectory gate (see cmd/benchcheck). Phase 1 sweeps
# the full benchmark suite and diffs it against the committed
# BENCH_core.json. When individual benchmarks trip the ns/op gate,
# phase 2 reruns JUST those with more repetitions and gates on the
# per-benchmark minimum across both phases: sweep-level scheduler noise
# on a shared CI host does not reproduce a higher floor, a real
# regression does. Overhead-budget failures are never retried — those
# metrics are drift-cancelling ratios already.
set -e
cd "$(dirname "$0")/.."

GO=${GO:-go}
MAX=${BENCH_MAX_REGRESS_PCT:-10}
BUDGET=${BENCH_OVERHEAD_BUDGET_PCT:-5}
ALLOC_MAX=${BENCH_MAX_ALLOC_REGRESS_PCT:-10}
ALLOC_BUDGETS=${BENCH_ALLOC_BUDGETS:-}

# On failure, print the allocation profile side by side so an alloc
# regression is diagnosable from the CI log alone.
alloc_report() {
    echo "bench-check: allocation profile (baseline vs fresh):" >&2
    for f in BENCH_core.json BENCH_fresh.json; do
        echo "  $f:" >&2
        grep -E '"name"|"allocs_per_op"|"bytes_per_op"' "$f" \
            | sed 's/^ */    /' >&2
    done
}

WORK=$(mktemp -d)
trap 'rm -rf "$WORK" BENCH_fresh.json BENCH_retry.json' EXIT

$GO test -run '^$' -bench=. -benchmem -count=3 . | $GO run ./cmd/benchjson -o BENCH_fresh.json
if $GO run ./cmd/benchcheck -baseline BENCH_core.json -fresh BENCH_fresh.json \
    -max-regress-pct "$MAX" -overhead-budget-pct "$BUDGET" \
    -max-alloc-regress-pct "$ALLOC_MAX" -alloc-budgets "$ALLOC_BUDGETS" \
    -write-regressed "$WORK/regressed"; then
    exit 0
fi

# Only timing failures are worth a second look; anything else —
# overhead budgets, allocation growth — is deterministic and final.
[ -s "$WORK/regressed" ] || { alloc_report; exit 1; }

names=$(paste -s -d'|' "$WORK/regressed")
echo "bench-check: retrying suspected regressions with -count=5: $names" >&2
$GO test -run '^$' -bench "^($names)\$" -benchmem -count=5 . | $GO run ./cmd/benchjson -o BENCH_retry.json
$GO run ./cmd/benchcheck -baseline BENCH_core.json -fresh BENCH_fresh.json -retry BENCH_retry.json \
    -max-regress-pct "$MAX" -overhead-budget-pct "$BUDGET" \
    -max-alloc-regress-pct "$ALLOC_MAX" -alloc-budgets "$ALLOC_BUDGETS" || { alloc_report; exit 1; }
