#!/usr/bin/env sh
# grid_smoke.sh — end-to-end smoke test of the distributed simulation
# grid: 1 job server + 2 worker processes + `sweep -grid` over a small
# job set. Asserts (a) grid-routed results are byte-identical to the
# local RunBatch output, (b) a rerun is served from the content-addressed
# result store (cache hits > 0), (c) a worker process being killed
# mid-study is survived via lease reassignment, (d) a disk-backed
# server killed with SIGKILL and restarted on the same -store-dir serves
# the rerun entirely from the recovered cache (0 misses), byte-identical,
# (e) the federation chaos leg: one of two federated servers is
# SIGKILLed mid-ladder, the surviving peer finishes the batch (client
# failover + lease expiry), and a rerun is 100% served from the shared
# store — still byte-identical to the local run, and (f) the
# multi-tenant service leg: an autoscaled, federated server under two
# tenant identities survives a SIGKILLed federation peer AND a
# SIGKILLed autoscaled worker mid-study (the supervisor respawns it),
# loses no job, enforces the metered tenant's rate limit (429 + client
# retry), and still produces byte-identical results, (g) the sharded
# cache leg: a 3-member secreted federation runs with -store-shard 2,
# one shard replica holder is SIGKILLed mid-ladder, results stay
# byte-identical and the rerun — dead member still listed — is served
# 100% from the surviving replicas (no new cache misses), and (h) the
# auth leg: a peer started with the wrong -peer-secret is refused at
# the gossip seam (403s counted in peer_auth_rejected) and never joins
# the membership.
#
# Run it via `make grid-smoke`; it builds into a temp dir and cleans up
# after itself.
set -eu

WORKDIR="$(mktemp -d)"
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$WORKDIR"
}
trap cleanup EXIT INT TERM

echo "grid-smoke: building sweep + helperd"
go build -o "$WORKDIR/sweep" ./cmd/sweep
go build -o "$WORKDIR/helperd" ./cmd/helperd

# A fast, deterministic study: 3 jobs (baseline + two confidence points).
STUDY="-study confidence -workload gcc -n 8000"

echo "grid-smoke: local reference run"
"$WORKDIR/sweep" $STUDY > "$WORKDIR/local.txt" 2>/dev/null

# --- 1 server + 2 workers ------------------------------------------------
PORT=18547
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORT" -lease 750ms 2>"$WORKDIR/serve.log" &
PIDS="$PIDS $!"
# Wait for the server to come up.
i=0
until "$WORKDIR/helperd" metrics -server "127.0.0.1:$PORT" >/dev/null 2>&1; do
    i=$((i+1))
    [ "$i" -gt 50 ] && { echo "grid-smoke: server never came up"; cat "$WORKDIR/serve.log"; exit 1; }
    sleep 0.1
done
"$WORKDIR/helperd" work -server "127.0.0.1:$PORT" -workers 2 -name w1 2>"$WORKDIR/w1.log" &
PIDS="$PIDS $!"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORT" -workers 2 -name w2 2>"$WORKDIR/w2.log" &
W2_PID=$!
PIDS="$PIDS $W2_PID"

echo "grid-smoke: grid run (1 server + 2 workers)"
"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORT" > "$WORKDIR/grid.txt" 2>/dev/null

if ! diff "$WORKDIR/local.txt" "$WORKDIR/grid.txt"; then
    echo "grid-smoke: FAIL — grid results differ from local RunBatch"
    exit 1
fi
echo "grid-smoke: grid results byte-identical to local run"

# --- rerun: content-addressed cache --------------------------------------
"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORT" > "$WORKDIR/grid2.txt" 2>/dev/null
diff "$WORKDIR/grid.txt" "$WORKDIR/grid2.txt" >/dev/null || {
    echo "grid-smoke: FAIL — cached rerun drifted"; exit 1; }
HITS=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORT" | grep -o '"cache_hits": [0-9]*' | grep -o '[0-9]*')
if [ "${HITS:-0}" -lt 1 ]; then
    echo "grid-smoke: FAIL — rerun reported no cache hits"
    exit 1
fi
echo "grid-smoke: rerun served from content-addressed store ($HITS hits)"

# --- worker death mid-study ----------------------------------------------
# Kill one worker shortly after the full ladder study starts; lease
# reassignment (750ms TTL) must carry the stranded jobs to the surviving
# worker.
echo "grid-smoke: killing a worker mid-study (ladder)"
( sleep 0.3; kill -9 "$W2_PID" 2>/dev/null || true ) &
"$WORKDIR/sweep" -study ladder -n 20000 -grid "127.0.0.1:$PORT" \
    > "$WORKDIR/gridkill.txt" 2>"$WORKDIR/gridkill.err"
"$WORKDIR/sweep" -study ladder -n 20000 > "$WORKDIR/localkill.txt" 2>/dev/null
if ! diff "$WORKDIR/localkill.txt" "$WORKDIR/gridkill.txt"; then
    echo "grid-smoke: FAIL — results after worker death differ from local run"
    cat "$WORKDIR/gridkill.err"
    exit 1
fi
REASSIGNED=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORT" | grep -o '"reassigned": [0-9]*' | grep -o '[0-9]*')
echo "grid-smoke: study survived worker death with identical results (${REASSIGNED:-0} leases reassigned)"

# --- server restart with an on-disk store --------------------------------
# A second server runs disk-backed, gets SIGKILLed (no graceful shutdown,
# no flush) and is restarted on the same directory; the rerun must be
# answered entirely from the recovered cache. The worker stays up across
# the restart — its backoff loop must reconnect on its own.
PORT2=18549
STOREDIR="$WORKDIR/store"
wait_server() {
    i=0
    until "$WORKDIR/helperd" metrics -server "127.0.0.1:$1" >/dev/null 2>&1; do
        i=$((i+1))
        [ "$i" -gt 50 ] && { echo "grid-smoke: server on :$1 never came up"; exit 1; }
        sleep 0.1
    done
}
echo "grid-smoke: disk-backed server (store: $STOREDIR)"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORT2" -lease 750ms -store-dir "$STOREDIR" 2>"$WORKDIR/serve2a.log" &
SERVE2_PID=$!
PIDS="$PIDS $SERVE2_PID"
wait_server "$PORT2"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORT2" -workers 2 -name w3 2>"$WORKDIR/w3.log" &
PIDS="$PIDS $!"

"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORT2" > "$WORKDIR/disk1.txt" 2>/dev/null
diff "$WORKDIR/local.txt" "$WORKDIR/disk1.txt" >/dev/null || {
    echo "grid-smoke: FAIL — disk-backed results differ from local run"; exit 1; }

echo "grid-smoke: SIGKILLing the disk-backed server and restarting on the same dir"
kill -9 "$SERVE2_PID" 2>/dev/null || true
wait "$SERVE2_PID" 2>/dev/null || true
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORT2" -lease 750ms -store-dir "$STOREDIR" 2>"$WORKDIR/serve2b.log" &
PIDS="$PIDS $!"
wait_server "$PORT2"

"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORT2" > "$WORKDIR/disk2.txt" 2>/dev/null
diff "$WORKDIR/disk1.txt" "$WORKDIR/disk2.txt" >/dev/null || {
    echo "grid-smoke: FAIL — post-restart rerun drifted"; exit 1; }
MISSES2=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORT2" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
HITS2=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORT2" | grep -o '"cache_hits": [0-9]*' | grep -o '[0-9]*')
if [ "${MISSES2:-1}" -ne 0 ] || [ "${HITS2:-0}" -lt 1 ]; then
    echo "grid-smoke: FAIL — restarted server re-simulated (hits=$HITS2 misses=$MISSES2, want 100% hits)"
    cat "$WORKDIR/serve2b.log"
    exit 1
fi
echo "grid-smoke: restart kept the cache ($HITS2 hits, 0 misses — 100% cached)"

# --- federation chaos: kill a member mid-ladder ---------------------------
# Two federated servers share one store (A's disk store; B reaches it
# over HTTP via -store-remote). `sweep -grid A,B` partitions the ladder
# across both by job affinity; B is SIGKILLed mid-study. The client
# fails B's jobs over to A, B's stolen leases on A expire and requeue,
# and A's worker finishes everything — byte-identical to the local run.
# The rerun, with B still dead, must be answered entirely from the
# shared store.
PORTA=18551
PORTB=18552
FEDSTORE="$WORKDIR/fedstore"
echo "grid-smoke: federation of two servers (shared store: $FEDSTORE)"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTA" -lease 750ms -store-dir "$FEDSTORE" \
    -self "127.0.0.1:$PORTA" -peers "127.0.0.1:$PORTB" 2>"$WORKDIR/fedA.log" &
PIDS="$PIDS $!"
wait_server "$PORTA"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTB" -lease 750ms -store-remote "127.0.0.1:$PORTA" \
    -self "127.0.0.1:$PORTB" -peers "127.0.0.1:$PORTA" 2>"$WORKDIR/fedB.log" &
FEDB_PID=$!
PIDS="$PIDS $FEDB_PID"
wait_server "$PORTB"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORTA" -workers 2 -name fa 2>"$WORKDIR/fa.log" &
PIDS="$PIDS $!"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORTB" -workers 2 -name fb 2>"$WORKDIR/fb.log" &
PIDS="$PIDS $!"

echo "grid-smoke: SIGKILLing federation member B mid-ladder"
( sleep 0.5; kill -9 "$FEDB_PID" 2>/dev/null || true ) &
"$WORKDIR/sweep" -study ladder -n 20000 -grid "127.0.0.1:$PORTA,127.0.0.1:$PORTB" \
    > "$WORKDIR/fedkill.txt" 2>"$WORKDIR/fedkill.err"
if ! diff "$WORKDIR/localkill.txt" "$WORKDIR/fedkill.txt"; then
    echo "grid-smoke: FAIL — results after federation member death differ from local run"
    cat "$WORKDIR/fedkill.err"
    exit 1
fi
echo "grid-smoke: surviving member finished the ladder with identical results"

# The rerun lists dead B too: the client must fail over to A and serve
# every job from the shared store (no new misses on A).
MISSA=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTA" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
"$WORKDIR/sweep" -study ladder -n 20000 -grid "127.0.0.1:$PORTA,127.0.0.1:$PORTB" \
    > "$WORKDIR/fedrerun.txt" 2>/dev/null
diff "$WORKDIR/fedkill.txt" "$WORKDIR/fedrerun.txt" >/dev/null || {
    echo "grid-smoke: FAIL — federated rerun drifted"; exit 1; }
MISSB=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTA" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
if [ "${MISSB:-1}" -ne "${MISSA:-0}" ]; then
    echo "grid-smoke: FAIL — federated rerun re-simulated (misses $MISSA -> $MISSB, want no change)"
    exit 1
fi
STEALS=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTA" | grep -o '"steals_out": [0-9]*' | grep -o '[0-9]*')
echo "grid-smoke: federated rerun 100% from the shared store (steals_out=${STEALS:-0})"

# --- multi-tenant service: autoscaling + quotas + chaos --------------------
# Server C runs in service mode: it supervises its own worker fleet
# (min 1, max 3) and meters two tenants — alice (weight 4, unmetered)
# and bob (weight 1, rate 2 jobs/s, burst 4). Peer D federates with C
# and has no workers of its own. Mid-ladder, D is SIGKILLed (client
# failover) and so is one of C's autoscaled workers (the supervisor
# must respawn it). No job may be lost and the output must stay
# byte-identical. Then bob runs the small study twice CONCURRENTLY:
# two 3-job batches against a burst of 4 guarantee the second one
# overdraws his token bucket, so the server must answer 429 +
# Retry-After and the client must retry it to success — quotas
# enforced, work still byte-identical.
PORTC=18554
PORTD=18555
SVCSTORE="$WORKDIR/svcstore"
echo "grid-smoke: service-mode server (autoscaled min=1 max=3, tenants alice+bob)"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTC" -lease 750ms -store-dir "$SVCSTORE" \
    -min-workers 1 -max-workers 3 -scale-tick 100ms -worker-parallel 2 \
    -tenants "alice,weight=4;bob,weight=1,rate=2,burst=4" -log warn \
    -self "127.0.0.1:$PORTC" -peers "127.0.0.1:$PORTD" 2>"$WORKDIR/svcC.log" &
PIDS="$PIDS $!"
wait_server "$PORTC"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTD" -lease 750ms -store-remote "127.0.0.1:$PORTC" \
    -self "127.0.0.1:$PORTD" -peers "127.0.0.1:$PORTC" 2>"$WORKDIR/svcD.log" &
SVCD_PID=$!
PIDS="$PIDS $SVCD_PID"
wait_server "$PORTD"

echo "grid-smoke: SIGKILLing peer D and the autoscaled workers mid-ladder (tenant alice)"
( sleep 0.6; kill -9 "$SVCD_PID" 2>/dev/null || true
  pkill -9 -f "$WORKDIR/helperd work .*$PORTC" 2>/dev/null || true ) &
"$WORKDIR/sweep" -study ladder -n 20000 -grid "127.0.0.1:$PORTC,127.0.0.1:$PORTD" \
    -grid-client alice > "$WORKDIR/svckill.txt" 2>"$WORKDIR/svckill.err"
if ! diff "$WORKDIR/localkill.txt" "$WORKDIR/svckill.txt"; then
    echo "grid-smoke: FAIL — service-mode results differ from local run after peer+worker SIGKILL"
    cat "$WORKDIR/svckill.err"
    exit 1
fi
UPS=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTC" 2>/dev/null | grep -o '"scale_ups": [0-9]*' | grep -o '[0-9]*')
if [ "${UPS:-0}" -lt 2 ]; then
    echo "grid-smoke: FAIL — autoscaler never churned (scale_ups=${UPS:-0}, want >= 2: floor + respawn/spike)"
    cat "$WORKDIR/svcC.log"
    exit 1
fi
echo "grid-smoke: autoscaled fleet survived peer+worker SIGKILL, identical results (scale_ups=$UPS)"

echo "grid-smoke: tenant bob overdraws his rate limit (expect 429 + client retry)"
"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORTC" -grid-client bob > "$WORKDIR/bob1.txt" 2>/dev/null &
BOB1_PID=$!
"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORTC" -grid-client bob > "$WORKDIR/bob2.txt" 2>/dev/null
wait "$BOB1_PID"
diff "$WORKDIR/local.txt" "$WORKDIR/bob1.txt" >/dev/null || {
    echo "grid-smoke: FAIL — metered tenant's results differ from local run"; exit 1; }
diff "$WORKDIR/bob1.txt" "$WORKDIR/bob2.txt" >/dev/null || {
    echo "grid-smoke: FAIL — metered tenant's rerun drifted"; exit 1; }
REJECTED=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTC" | grep -o '"rejected": [0-9]*' | grep -o '[0-9]*')
if [ "${REJECTED:-0}" -lt 1 ]; then
    echo "grid-smoke: FAIL — rate limit never bit (rejected=${REJECTED:-0}); quotas are not enforced"
    exit 1
fi
echo "grid-smoke: quota enforced and retried through (rejected=$REJECTED), results byte-identical"

# --- observability: trace span trees, spill, top ---------------------------
# A fresh traced server + worker run the small study twice and `helperd
# trace` must reconstruct a complete span tree for (a) a job that ran
# locally (exec: admitted → enqueued → leased → completed) and (b) the
# rerun answered by the store (cached: a cache_hit terminal and a zero
# exec span). The NDJSON spill must have streamed events, and `helperd
# top -once` must render the trace ring.
PORTE=18557
echo "grid-smoke: observability leg (trace + spill + top)"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTE" -lease 750ms \
    -trace-spill "$WORKDIR/spill.ndjson" 2>"$WORKDIR/serveE.log" &
PIDS="$PIDS $!"
wait_server "$PORTE"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORTE" -workers 2 -name we 2>"$WORKDIR/we.log" &
PIDS="$PIDS $!"

"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORTE" > /dev/null 2>&1
TRACE_ID=$("$WORKDIR/helperd" trace -server "127.0.0.1:$PORTE" -limit 1 | awk '{print $1}')
if [ -z "$TRACE_ID" ]; then
    echo "grid-smoke: FAIL — server recorded no traces"
    exit 1
fi
"$WORKDIR/helperd" trace -server "127.0.0.1:$PORTE" -check exec "$TRACE_ID" > "$WORKDIR/trace_exec.txt" || {
    echo "grid-smoke: FAIL — local job's span tree incomplete"
    cat "$WORKDIR/trace_exec.txt"; exit 1; }
echo "grid-smoke: local job span tree complete ($TRACE_ID)"

"$WORKDIR/sweep" $STUDY -grid "127.0.0.1:$PORTE" > /dev/null 2>&1
"$WORKDIR/helperd" trace -server "127.0.0.1:$PORTE" -check cached "$TRACE_ID" > "$WORKDIR/trace_cached.txt" || {
    echo "grid-smoke: FAIL — cached rerun's span tree incomplete"
    cat "$WORKDIR/trace_cached.txt"; exit 1; }
echo "grid-smoke: cached rerun span tree complete (zero exec span)"

[ -s "$WORKDIR/spill.ndjson" ] || {
    echo "grid-smoke: FAIL — trace spill file is empty"; exit 1; }
"$WORKDIR/helperd" top -server "127.0.0.1:$PORTE" -once > "$WORKDIR/top.txt"
grep -q "trace" "$WORKDIR/top.txt" || {
    echo "grid-smoke: FAIL — helperd top renders no trace ring line"
    cat "$WORKDIR/top.txt"; exit 1; }
echo "grid-smoke: spill streamed $(wc -l < "$WORKDIR/spill.ndjson") events; top renders"

# --- observability: a stolen job's trace crosses the hop -------------------
# Federated pair F (no workers) + G (all the workers): every job
# submitted to F is stolen by G, so the span tree reconstructed FROM F
# must contain the steal hop — `helperd trace` follows the stolen
# event's peer URL to G and merges both rings before validating.
PORTF=18558
PORTG=18559
echo "grid-smoke: tracing a stolen job across a federation hop"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTF" -lease 750ms \
    -self "127.0.0.1:$PORTF" -peers "127.0.0.1:$PORTG" 2>"$WORKDIR/serveF.log" &
PIDS="$PIDS $!"
wait_server "$PORTF"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTG" -lease 750ms \
    -self "127.0.0.1:$PORTG" -peers "127.0.0.1:$PORTF" 2>"$WORKDIR/serveG.log" &
PIDS="$PIDS $!"
wait_server "$PORTG"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORTG" -workers 2 -name wg 2>"$WORKDIR/wg.log" &
PIDS="$PIDS $!"

"$WORKDIR/sweep" -study confidence -workload gcc -n 4000 -grid "127.0.0.1:$PORTF" > /dev/null 2>&1
STOLEN_ID=$("$WORKDIR/helperd" trace -server "127.0.0.1:$PORTF" -limit 1 | awk '{print $1}')
if [ -z "$STOLEN_ID" ]; then
    echo "grid-smoke: FAIL — victim recorded no traces"
    exit 1
fi
"$WORKDIR/helperd" trace -server "127.0.0.1:$PORTF" -check stolen "$STOLEN_ID" > "$WORKDIR/trace_stolen.txt" || {
    echo "grid-smoke: FAIL — stolen job's span tree incomplete or missing the hop"
    cat "$WORKDIR/trace_stolen.txt"; exit 1; }
grep -q "127.0.0.1:$PORTG" "$WORKDIR/trace_stolen.txt" || {
    echo "grid-smoke: FAIL — merged trace never names the thief"
    cat "$WORKDIR/trace_stolen.txt"; exit 1; }
echo "grid-smoke: stolen job span tree complete across the hop ($STOLEN_ID)"

# --- sharded cache tier: SIGKILL a replica holder mid-ladder ---------------
# Three members H/I/J share a secret and shard the result store over the
# live membership (-store-shard 2: every hash lives on two owners).
# Workers run on H only, so the federation steals I's and J's shares.
# I is SIGKILLed mid-ladder: the client fails its jobs over, results
# stay byte-identical, and the rerun — with dead I still in the grid
# list — must be answered entirely from the surviving replicas: zero
# new cache misses on H and J combined.
PORTH=18560
PORTI=18561
PORTJ=18562
SECRET="smoke-shard-secret"
echo "grid-smoke: 3-member sharded federation (-store-shard 2, shared secret)"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTH" -lease 750ms -peer-secret "$SECRET" \
    -store-shard 2 -self "127.0.0.1:$PORTH" -peers "127.0.0.1:$PORTI,127.0.0.1:$PORTJ" \
    2>"$WORKDIR/shardH.log" &
PIDS="$PIDS $!"
wait_server "$PORTH"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTI" -lease 750ms -peer-secret "$SECRET" \
    -store-shard 2 -self "127.0.0.1:$PORTI" -peers "127.0.0.1:$PORTH,127.0.0.1:$PORTJ" \
    2>"$WORKDIR/shardI.log" &
SHARDI_PID=$!
PIDS="$PIDS $SHARDI_PID"
wait_server "$PORTI"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTJ" -lease 750ms -peer-secret "$SECRET" \
    -store-shard 2 -self "127.0.0.1:$PORTJ" -peers "127.0.0.1:$PORTH,127.0.0.1:$PORTI" \
    2>"$WORKDIR/shardJ.log" &
PIDS="$PIDS $!"
wait_server "$PORTJ"
"$WORKDIR/helperd" work -server "127.0.0.1:$PORTH" -workers 2 -name wh 2>"$WORKDIR/wh.log" &
PIDS="$PIDS $!"

# Wait for the gossip to converge so the shard spans all three members.
i=0
until "$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -q '"peers": 2'; do
    i=$((i+1))
    [ "$i" -gt 50 ] && { echo "grid-smoke: sharded membership never converged"; exit 1; }
    sleep 0.1
done
"$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -q '"store_replication": 2' || {
    echo "grid-smoke: FAIL — -store-shard 2 not reflected in metrics"; exit 1; }

echo "grid-smoke: SIGKILLing shard replica holder I mid-ladder"
( sleep 0.5; kill -9 "$SHARDI_PID" 2>/dev/null || true ) &
"$WORKDIR/sweep" -study ladder -n 20000 \
    -grid "127.0.0.1:$PORTH,127.0.0.1:$PORTI,127.0.0.1:$PORTJ" \
    > "$WORKDIR/shardkill.txt" 2>"$WORKDIR/shardkill.err"
if ! diff "$WORKDIR/localkill.txt" "$WORKDIR/shardkill.txt"; then
    echo "grid-smoke: FAIL — results after shard replica death differ from local run"
    cat "$WORKDIR/shardkill.err"
    exit 1
fi
echo "grid-smoke: ladder survived the replica death with identical results"

# The rerun still lists dead I; its share fails over to H/J, and every
# job must be served from a surviving replica — local or across the
# wire — with no re-simulation anywhere.
MH1=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
MJ1=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTJ" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
"$WORKDIR/sweep" -study ladder -n 20000 \
    -grid "127.0.0.1:$PORTH,127.0.0.1:$PORTI,127.0.0.1:$PORTJ" \
    > "$WORKDIR/shardrerun.txt" 2>/dev/null
diff "$WORKDIR/shardkill.txt" "$WORKDIR/shardrerun.txt" >/dev/null || {
    echo "grid-smoke: FAIL — sharded rerun drifted"; exit 1; }
MH2=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
MJ2=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTJ" | grep -o '"cache_misses": [0-9]*' | grep -o '[0-9]*')
if [ "$((${MH2:-1} + ${MJ2:-1}))" -ne "$((${MH1:-0} + ${MJ1:-0}))" ]; then
    echo "grid-smoke: FAIL — sharded rerun re-simulated (misses H:$MH1->$MH2 J:$MJ1->$MJ2, want no change)"
    exit 1
fi
DROPPED=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -o '"store_puts_dropped": [0-9]*' | grep -o '[0-9]*')
echo "grid-smoke: sharded rerun 100% from surviving replicas (replica puts shed to the dead peer: ${DROPPED:-0})"

# --- peer auth: a wrong-secret member never joins --------------------------
# E shares the topology but not the secret: every announce it sends is
# refused 403 (counted in peer_auth_rejected) and H's membership stays
# at two peers.
PORTE2=18563
echo "grid-smoke: peer with the wrong secret knocks on the federation"
"$WORKDIR/helperd" serve -addr "127.0.0.1:$PORTE2" -lease 750ms -peer-secret "not-$SECRET" \
    -self "127.0.0.1:$PORTE2" -peers "127.0.0.1:$PORTH" 2>"$WORKDIR/shardE.log" &
PIDS="$PIDS $!"
wait_server "$PORTE2"
i=0
REJECTED_AUTH=0
while [ "$i" -lt 50 ]; do
    REJECTED_AUTH=$("$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -o '"peer_auth_rejected": [0-9]*' | grep -o '[0-9]*')
    [ "${REJECTED_AUTH:-0}" -ge 1 ] && break
    i=$((i+1))
    sleep 0.1
done
if [ "${REJECTED_AUTH:-0}" -lt 1 ]; then
    echo "grid-smoke: FAIL — wrong-secret peer was never rejected (peer_auth_rejected=0)"
    exit 1
fi
"$WORKDIR/helperd" metrics -server "127.0.0.1:$PORTH" | grep -q '"peers": 2' || {
    echo "grid-smoke: FAIL — wrong-secret peer made it into the membership"
    exit 1; }
echo "grid-smoke: wrong-secret peer refused ($REJECTED_AUTH rejects), membership unchanged"

echo "grid-smoke: PASS"
