package repro

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/grid"
)

// Grid dispatch: a Runner built WithGrid sends its jobs to a grid job
// server (internal/grid, spawned via cmd/helperd or in-process) instead
// of simulating locally. Jobs travel as their canonical round-trip JSON
// keyed by Job.Hash, so the server's content-addressed result store
// answers repeated sweep points without re-simulating, identical jobs
// coalesce onto one execution, and dead workers' leases are reassigned —
// all transparent to Run/RunBatch/RunAll callers.

// WithGrid routes the Runner's executions to a grid job server instead
// of the local worker pool. addr is one server (":8321", "host:8321" or
// a full http URL) or a comma-separated list of federated peers; with
// several, jobs are partitioned across them by rendezvous-hashing each
// job's locality profile (workload+config), so recurring jobs keep
// landing on the server whose workers already have their state warm,
// and a peer that dies mid-batch is failed over transparently: its jobs
// are resubmitted to the next peer, and any result already banked in
// the federation's shared store is a cache hit there. Job defaults
// (warmup fraction, derived config) resolve client-side before
// dispatch, so results are bit-identical to a local run. WithWorkers
// does not limit a grid batch — the servers' workers set the
// parallelism.
func WithGrid(addr string) Option {
	return func(r *Runner) {
		var peers []string
		for _, a := range strings.Split(addr, ",") {
			if u := grid.BaseURL(a); u != "" {
				peers = append(peers, u)
			}
		}
		r.grid = strings.Join(peers, ",")
	}
}

// gridPeers splits the Runner's normalized peer list.
func gridPeers(gridAddr string) []string {
	if gridAddr == "" {
		return nil
	}
	return strings.Split(gridAddr, ",")
}

// profileKey is a job's locality profile: a short hash over the
// resolved workload and machine configuration (not the policy or
// budgets), so every sweep point probing one workload/machine pair maps
// to the same key. The grid uses it twice — the client rendezvous-hashes
// it to a federated peer, and each server prefers granting it to a
// worker that recently ran the same profile.
func profileKey(j Job) string {
	data, err := json.Marshal(struct {
		W Workload `json:"w"`
		C Config   `json:"c"`
	}{j.Workload, j.EffectiveConfig()})
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(data)
	return "p:" + hex.EncodeToString(sum[:8])
}

// peerOrder ranks peers for a profile by rendezvous (highest random
// weight) hashing: every client ranks identically, so a profile's jobs
// converge on one peer without coordination, and the ranking doubles as
// the failover order — peer down, next in line.
func peerOrder(profile string, peers []string) []string {
	out := make([]string, len(peers))
	copy(out, peers)
	score := func(peer string) [32]byte {
		return sha256.Sum256([]byte(profile + "|" + peer))
	}
	sort.SliceStable(out, func(i, j int) bool {
		a, b := score(out[i]), score(out[j])
		return bytes.Compare(a[:], b[:]) > 0
	})
	return out
}

// WithGridPriority sets the queue priority of every job this Runner
// submits (higher runs first; the default is 0, ties are FIFO). An
// interactive probe can overtake a bulk sweep sharing the same grid.
func WithGridPriority(p int) Option {
	return func(r *Runner) { r.gridPriority = p }
}

// WithGridClientID names the tenant this Runner submits as (the
// X-Grid-Client header): a multi-tenant grid server rate-limits,
// quota-checks and fair-shares by it. Empty (the default) submits as
// the server's shared anonymous tenant.
func WithGridClientID(id string) Option {
	return func(r *Runner) { r.gridClientID = id }
}

// GridBackoff shapes how grid submissions retry admission refusals
// (HTTP 429/503 + Retry-After from a multi-tenant server); see the
// field docs on the underlying type. The zero value means the
// defaults.
type GridBackoff = grid.Backoff

// WithGridBackoff overrides the admission-refusal retry policy for
// this Runner's grid submissions.
func WithGridBackoff(b GridBackoff) Option {
	return func(r *Runner) { r.gridBackoff = b }
}

// WithGridPeerSecret holds the federation's shared peer secret (the
// helperd -peer-secret value) so the Runner's grid clients can reach
// the authenticated peer seam — today the /v1/peer/status snapshot
// behind GridMetrics and `helperd federate`. Job submission and result
// streaming never need it; against an unauthenticated grid the secret
// is simply unused.
func WithGridPeerSecret(secret string) Option {
	return func(r *Runner) { r.gridSecret = secret }
}

// JobProgress is one interval-granular progress event of a grid job
// still running: which job, how far along, and what the steering engine
// is doing right now — the Observe stream surfaced to the submitting
// client. Events are best-effort (workers publish them over heartbeats;
// a dropped snapshot just means a coarser next one).
type JobProgress struct {
	// Index is the job's position in the batch slice; Job the job as
	// submitted (defaults resolved).
	Index int
	Job   Job
	// Uops of Total committed uops of the measured phase have retired.
	Uops  uint64
	Total uint64
	// IntervalIPC is the IPC of the most recent feedback interval.
	IntervalIPC float64
	// Rung names the steering feature set governing the interval (a
	// dynamic selector's current choice; the policy itself when static).
	Rung string
	// Phase is the interval's program-phase ID, -1 without a detector.
	Phase int
	// Worker names the grid worker running the job.
	Worker string
	// BatchETA is the server's rough estimate of how long until the
	// whole batch finishes, stamped on the event server-side (zero when
	// the server cannot estimate yet — no completions to calibrate on).
	BatchETA time.Duration
	// Stop cancels this one job early: it finishes immediately with
	// ErrJobStopped (the rest of the batch keeps running) and its
	// simulation is aborted at the worker through the per-task
	// cancellation path. Safe to call from the callback or later, and
	// idempotent. Best-effort: the cancel request is bounded by a short
	// timeout and a transient failure is dropped — the job then simply
	// keeps running and keeps producing progress events, so callback
	// logic that stops on a condition will fire again.
	Stop func()
}

// ErrJobStopped reports a grid job ended early because a WithGridProgress
// callback stopped it. Test with errors.Is on the JobResult error.
var ErrJobStopped = errors.New("repro: job stopped early")

// WithGridProgress installs an interval progress callback for grid
// dispatch: once per published interval snapshot of every running job,
// fn receives a JobProgress (including a Stop hook for early stopping —
// cancel a sweep point as soon as its numbers are conclusive). Events
// arrive serially from the result-stream goroutine, which may run
// concurrently with the WithProgress completion callback; fn must be
// quick and do its own locking if the two share state. The option is
// inert on a Runner without WithGrid.
func WithGridProgress(fn func(JobProgress)) Option {
	return func(r *Runner) { r.gridProgress = fn }
}

// GridTaskProgress is the wire-level progress snapshot a worker-side
// execution reports (see the field docs on the underlying type);
// JobExecProgress fills its measurement fields and the grid worker
// stamps the identity ones.
type GridTaskProgress = grid.TaskProgress

// JobExec returns the payload-level execution function a grid worker
// plugs into its Exec slot: canonical Job JSON in, canonical Result JSON
// out. The returned function runs every job locally with exactly the
// Warmup it carries (the wire convention: dispatchers resolve defaults
// before submitting), regardless of this Runner's own warmup fraction or
// grid dispatch mode.
func (r *Runner) JobExec() func(ctx context.Context, payload []byte) ([]byte, error) {
	exec := r.JobExecProgress(0)
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		return exec(ctx, payload, nil)
	}
}

// JobExecProgress is JobExec for progress-capable workers (the Worker's
// ExecProgress slot): the same canonical-JSON-in, canonical-JSON-out
// execution, plus an interval progress report — every `every` committed
// uops of the measured phase (0 picks the job's natural granularity:
// the policy's Observe interval, else N/50), report receives the uops
// retired, the interval IPC, the active rung, and the phase ID. The
// hook is read-only, so results stay bit-identical to JobExec.
func (r *Runner) JobExecProgress(every uint64) func(ctx context.Context, payload []byte, report func(GridTaskProgress)) ([]byte, error) {
	local := *r
	local.warmupFrac = 0
	local.grid = ""
	local.progress = nil
	local.gridProgress = nil
	return func(ctx context.Context, payload []byte, report func(GridTaskProgress)) ([]byte, error) {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return nil, fmt.Errorf("repro: decoding grid job: %w", err)
		}
		res, err := local.runLocalProgress(ctx, j, every, report)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("repro: encoding grid result for %s: %w", j.Label(), err)
		}
		return out, nil
	}
}

// transportFailedPrefix marks the one TaskResult error class that means
// "this peer died under us", not "this job failed": the client-side
// synthetic error for tasks left outstanding when a result stream dies
// (server crash, connection cut). Those — and nothing else — fail over
// to the next peer; a genuine execution error is the job's answer.
const transportFailedPrefix = "grid: result stream ended early"

// runGridBatch is RunBatch over the wire: resolve and validate each job
// locally (bad jobs fail fast without a round trip), partition the rest
// across the federated peers by locality profile, submit one grid batch
// per peer, and map the NDJSON result streams back onto JobResults. A
// peer that dies mid-batch has its unfinished jobs resubmitted down the
// rendezvous order (the shared store makes anything it did finish a
// cache hit). Delivery follows the RunBatch contract: completion order,
// per-job errors in JobResult.Err, best-effort after cancellation.
func (r *Runner) runGridBatch(ctx context.Context, jobs []Job) <-chan JobResult {
	batch := make([]Job, len(jobs))
	copy(batch, jobs)
	out := make(chan JobResult)
	go func() {
		defer close(out)
		peers := gridPeers(r.grid)
		total := len(batch)
		// Result streams of several peers run concurrently; one mutex
		// serializes the progress callbacks (their documented contract)
		// and keeps Done strictly increasing.
		var mu sync.Mutex
		done := 0
		emit := func(jr JobResult) {
			if r.progress != nil {
				mu.Lock()
				done++
				p := Progress{Done: done, Total: total, Job: jr.Job, Err: jr.Err}
				r.progress(p)
				mu.Unlock()
			}
			select {
			case out <- jr:
			case <-ctx.Done():
				// Best-effort after cancellation, like the local pool.
			}
		}

		tasks := make([]grid.Task, 0, len(batch))
		taskIndex := make(map[string]int, len(batch))
		for i := range batch {
			batch[i] = r.withDefaults(batch[i])
			j := batch[i]
			if err := j.Validate(); err != nil {
				emit(JobResult{Index: i, Job: j, Err: err})
				continue
			}
			payload, err := json.Marshal(j)
			if err != nil {
				emit(JobResult{Index: i, Job: j, Err: fmt.Errorf("repro: encoding job %s: %w", j.Label(), err)})
				continue
			}
			id := strconv.Itoa(i)
			tasks = append(tasks, grid.Task{
				ID:       id,
				Hash:     grid.HashBytes(payload),
				Priority: r.gridPriority,
				Payload:  payload,
				Profile:  profileKey(j),
			})
			taskIndex[id] = i
		}
		if len(tasks) == 0 {
			return
		}

		// Partition by the profile's rendezvous leader. With one peer
		// this is one group and zero behaviour change.
		groups := map[string][]grid.Task{}
		for _, t := range tasks {
			leader := peerOrder(t.Profile, peers)[0]
			groups[leader] = append(groups[leader], t)
		}
		var wg sync.WaitGroup
		for leader, group := range groups {
			order := []string{leader}
			for _, p := range peers {
				if p != leader {
					order = append(order, p)
				}
			}
			wg.Add(1)
			go func(order []string, group []grid.Task) {
				defer wg.Done()
				r.submitGroup(ctx, order, group, batch, taskIndex, &mu, emit)
			}(order, group)
		}
		wg.Wait()
	}()
	return out
}

// submitGroup submits one peer's share of a batch, failing transport
// casualties over to the next peer in order. Each job is tried at most
// once per peer; when every peer has failed it, the last transport
// error is its result.
func (r *Runner) submitGroup(ctx context.Context, order []string, group []grid.Task,
	batch []Job, taskIndex map[string]int, mu *sync.Mutex, emit func(JobResult)) {
	remaining := group
	lastErr := ""
	for _, peer := range order {
		if len(remaining) == 0 || ctx.Err() != nil {
			return
		}
		client := &grid.Client{Server: peer, ClientID: r.gridClientID,
			Backoff: r.gridBackoff, PeerSecret: r.gridSecret}
		var onProgress func(grid.TaskProgress)
		// The BatchHandle only exists once SubmitStream returns, but the
		// first progress event can beat it there; the buffered channel
		// hands the handle across, and the single stream-reading
		// goroutine that invokes onProgress caches it after one receive.
		handleCh := make(chan *grid.BatchHandle, 1)
		if r.gridProgress != nil {
			var handle *grid.BatchHandle
			onProgress = func(p grid.TaskProgress) {
				if handle == nil {
					handle = <-handleCh
				}
				i, ok := taskIndex[p.ID]
				if !ok {
					return
				}
				h, id := handle, p.ID
				stop := func() {
					// Bounded so a black-holed cancel POST cannot wedge the
					// caller (Stop is documented callable from the progress
					// callback, which runs on the stream-reading goroutine).
					sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer scancel()
					h.Stop(sctx, id)
				}
				jp := JobProgress{
					Index:       i,
					Job:         batch[i],
					Uops:        p.Uops,
					Total:       p.Total,
					IntervalIPC: p.IntervalIPC,
					Rung:        p.Rung,
					Phase:       p.Phase,
					Worker:      p.Worker,
					BatchETA:    time.Duration(p.BatchEtaMS) * time.Millisecond,
					Stop:        stop,
				}
				mu.Lock()
				r.gridProgress(jp)
				mu.Unlock()
			}
		}
		ch, handle, err := client.SubmitStream(ctx, remaining, onProgress)
		if err != nil {
			// The whole submission failed (peer unreachable): every job
			// moves to the next peer.
			lastErr = err.Error()
			continue
		}
		handleCh <- handle
		byID := make(map[string]grid.Task, len(remaining))
		for _, t := range remaining {
			byID[t.ID] = t
		}
		var failedOver []grid.Task
		for tr := range ch {
			i, ok := taskIndex[tr.ID]
			if !ok {
				continue
			}
			if strings.HasPrefix(tr.Err, transportFailedPrefix) {
				failedOver = append(failedOver, byID[tr.ID])
				lastErr = tr.Err
				continue
			}
			jr := JobResult{Index: i, Job: batch[i]}
			switch {
			case tr.Err == grid.TaskStoppedError:
				jr.Err = fmt.Errorf("repro: grid job %s: %w", batch[i].Label(), ErrJobStopped)
			case tr.Err != "":
				jr.Err = fmt.Errorf("repro: grid job %s: %s", batch[i].Label(), tr.Err)
			default:
				if err := json.Unmarshal(tr.Payload, &jr.Result); err != nil {
					jr.Err = fmt.Errorf("repro: decoding grid result for %s: %w", batch[i].Label(), err)
				}
			}
			emit(jr)
		}
		remaining = failedOver
	}
	if ctx.Err() != nil {
		return
	}
	for _, t := range remaining {
		i := taskIndex[t.ID]
		emit(JobResult{Index: i, Job: batch[i], Err: fmt.Errorf("repro: grid %s: %s", r.grid, lastErr)})
	}
}

// GridMetrics fetches the counter snapshot of the grid tier a Runner
// built WithGrid dispatches to: cache hits and misses from the
// content-addressed result store, queue depth, lease reassignments,
// live workers — plus the federation counters (steals, affinity hits,
// per-batch ETAs). With several peers the counters and gauges are
// summed across every reachable one (Peers is taken as the max — each
// member already counts the whole mesh) and the per-task/per-batch
// lists concatenated; it errors only when no peer answers, or on a
// Runner without a grid.
func (r *Runner) GridMetrics(ctx context.Context) (GridMetrics, error) {
	if r.grid == "" {
		return GridMetrics{}, fmt.Errorf("repro: runner has no grid (build it with WithGrid)")
	}
	var agg GridMetrics
	reached := 0
	var lastErr error
	for _, peer := range gridPeers(r.grid) {
		client := &grid.Client{Server: peer, PeerSecret: r.gridSecret}
		m, err := client.Metrics(ctx)
		if err != nil {
			lastErr = err
			continue
		}
		reached++
		agg.Submitted += m.Submitted
		agg.CacheHits += m.CacheHits
		agg.CacheMisses += m.CacheMisses
		agg.Coalesced += m.Coalesced
		agg.Completed += m.Completed
		agg.Failed += m.Failed
		agg.LeasePollEmpty += m.LeasePollEmpty
		agg.LeasesGranted += m.LeasesGranted
		agg.Reassigned += m.Reassigned
		agg.Abandoned += m.Abandoned
		agg.ProgressUpdates += m.ProgressUpdates
		agg.EarlyStopped += m.EarlyStopped
		agg.StealsOut += m.StealsOut
		agg.StealsIn += m.StealsIn
		agg.StealReturns += m.StealReturns
		agg.PeerAuthRejected += m.PeerAuthRejected
		agg.StorePutsDropped += m.StorePutsDropped
		agg.StoreRemoteHits += m.StoreRemoteHits
		agg.StoreReadRepairs += m.StoreReadRepairs
		// Configuration gauges, not counters: report the mesh's maximum
		// rather than a meaningless sum.
		if m.StoreReplication > agg.StoreReplication {
			agg.StoreReplication = m.StoreReplication
		}
		if m.StoreShardMembers > agg.StoreShardMembers {
			agg.StoreShardMembers = m.StoreShardMembers
		}
		agg.AffinityHits += m.AffinityHits
		agg.AffinityMisses += m.AffinityMisses
		agg.Speculated += m.Speculated
		agg.Rejected += m.Rejected
		agg.Overloaded += m.Overloaded
		agg.QueueDepth += m.QueueDepth
		agg.Leased += m.Leased
		agg.Workers += m.Workers
		agg.StoreEntries += m.StoreEntries
		if m.Peers > agg.Peers {
			agg.Peers = m.Peers
		}
		agg.Running = append(agg.Running, m.Running...)
		agg.Batches = append(agg.Batches, m.Batches...)
		for _, t := range m.Tenants {
			mergeTenant(&agg, t)
		}
		if lw := m.LeaseWaits; lw != nil {
			if agg.LeaseWaits == nil {
				agg.LeaseWaits = &grid.LatencySummary{}
			}
			// Count-weighted mean; the max of maxes.
			total := agg.LeaseWaits.Count + lw.Count
			if total > 0 {
				agg.LeaseWaits.MeanMS = (agg.LeaseWaits.MeanMS*float64(agg.LeaseWaits.Count) +
					lw.MeanMS*float64(lw.Count)) / float64(total)
			}
			agg.LeaseWaits.Count = total
			if lw.MaxMS > agg.LeaseWaits.MaxMS {
				agg.LeaseWaits.MaxMS = lw.MaxMS
			}
		}
		if t := m.Trace; t != nil {
			if agg.Trace == nil {
				agg.Trace = &grid.TraceStats{}
			}
			agg.Trace.Events += t.Events
			agg.Trace.Capacity += t.Capacity
			agg.Trace.Total += t.Total
			agg.Trace.SpillDropped += t.SpillDropped
		}
		if a := m.Autoscaler; a != nil {
			if agg.Autoscaler == nil {
				agg.Autoscaler = &grid.AutoscaleStats{}
			}
			agg.Autoscaler.ScaleUps += a.ScaleUps
			agg.Autoscaler.ScaleDowns += a.ScaleDowns
			agg.Autoscaler.Workers += a.Workers
			agg.Autoscaler.Target += a.Target
		}
	}
	if reached == 0 {
		return GridMetrics{}, fmt.Errorf("repro: no grid peer reachable: %w", lastErr)
	}
	sort.Slice(agg.Tenants, func(i, j int) bool { return agg.Tenants[i].ID < agg.Tenants[j].ID })
	return agg, nil
}

// mergeTenant folds one peer's per-tenant counters into the aggregate
// by tenant ID (the weight is taken from whichever peer reported it;
// a well-configured federation gives every peer the same table).
func mergeTenant(agg *GridMetrics, t grid.TenantMetrics) {
	for i := range agg.Tenants {
		if agg.Tenants[i].ID == t.ID {
			agg.Tenants[i].Admitted += t.Admitted
			agg.Tenants[i].RejectedRate += t.RejectedRate
			agg.Tenants[i].RejectedQuota += t.RejectedQuota
			agg.Tenants[i].Queued += t.Queued
			agg.Tenants[i].Running += t.Running
			agg.Tenants[i].PendingBytes += t.PendingBytes
			agg.Tenants[i].Completed += t.Completed
			agg.Tenants[i].Failed += t.Failed
			return
		}
	}
	agg.Tenants = append(agg.Tenants, t)
}

// GridMetrics is the grid server's counter snapshot (see the field docs
// on the underlying type).
type GridMetrics = grid.Metrics
