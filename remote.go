package repro

import (
	"context"
	"encoding/json"
	"fmt"
	"strconv"

	"repro/internal/grid"
)

// Grid dispatch: a Runner built WithGrid sends its jobs to a grid job
// server (internal/grid, spawned via cmd/helperd or in-process) instead
// of simulating locally. Jobs travel as their canonical round-trip JSON
// keyed by Job.Hash, so the server's content-addressed result store
// answers repeated sweep points without re-simulating, identical jobs
// coalesce onto one execution, and dead workers' leases are reassigned —
// all transparent to Run/RunBatch/RunAll callers.

// WithGrid routes the Runner's executions to the grid job server at
// addr (":8321", "host:8321" or a full http URL) instead of the local
// worker pool. Job defaults (warmup fraction, derived config) resolve
// client-side before dispatch, so results are bit-identical to a local
// run. WithWorkers does not limit a grid batch — the server's workers
// set the parallelism.
func WithGrid(addr string) Option {
	return func(r *Runner) { r.grid = grid.BaseURL(addr) }
}

// WithGridPriority sets the queue priority of every job this Runner
// submits (higher runs first; the default is 0, ties are FIFO). An
// interactive probe can overtake a bulk sweep sharing the same grid.
func WithGridPriority(p int) Option {
	return func(r *Runner) { r.gridPriority = p }
}

// JobExec returns the payload-level execution function a grid worker
// plugs into its Exec slot: canonical Job JSON in, canonical Result JSON
// out. The returned function runs every job locally with exactly the
// Warmup it carries (the wire convention: dispatchers resolve defaults
// before submitting), regardless of this Runner's own warmup fraction or
// grid dispatch mode.
func (r *Runner) JobExec() func(ctx context.Context, payload []byte) ([]byte, error) {
	local := *r
	local.warmupFrac = 0
	local.grid = ""
	local.progress = nil
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return nil, fmt.Errorf("repro: decoding grid job: %w", err)
		}
		res, err := local.runLocal(ctx, j)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("repro: encoding grid result for %s: %w", j.Label(), err)
		}
		return out, nil
	}
}

// runGridBatch is RunBatch over the wire: resolve and validate each job
// locally (bad jobs fail fast without a round trip), submit the rest as
// one grid batch, and map the NDJSON result stream back onto JobResults.
// Delivery follows the RunBatch contract: completion order, per-job
// errors in JobResult.Err, best-effort after cancellation.
func (r *Runner) runGridBatch(ctx context.Context, jobs []Job) <-chan JobResult {
	batch := make([]Job, len(jobs))
	copy(batch, jobs)
	out := make(chan JobResult)
	go func() {
		defer close(out)
		total := len(batch)
		// Unlike the local pool, everything here runs on this one
		// goroutine, so the progress callback needs no locking and Done
		// is trivially strictly increasing.
		done := 0
		emit := func(jr JobResult) {
			if r.progress != nil {
				done++
				r.progress(Progress{Done: done, Total: total, Job: jr.Job, Err: jr.Err})
			}
			select {
			case out <- jr:
			case <-ctx.Done():
				// Best-effort after cancellation, like the local pool.
			}
		}

		tasks := make([]grid.Task, 0, len(batch))
		taskIndex := make(map[string]int, len(batch))
		for i := range batch {
			batch[i] = r.withDefaults(batch[i])
			j := batch[i]
			if err := j.Validate(); err != nil {
				emit(JobResult{Index: i, Job: j, Err: err})
				continue
			}
			payload, err := json.Marshal(j)
			if err != nil {
				emit(JobResult{Index: i, Job: j, Err: fmt.Errorf("repro: encoding job %s: %w", j.Label(), err)})
				continue
			}
			id := strconv.Itoa(i)
			tasks = append(tasks, grid.Task{
				ID:       id,
				Hash:     grid.HashBytes(payload),
				Priority: r.gridPriority,
				Payload:  payload,
			})
			taskIndex[id] = i
		}
		if len(tasks) == 0 {
			return
		}

		client := &grid.Client{Server: r.grid}
		ch, err := client.Submit(ctx, tasks)
		if err != nil {
			for _, t := range tasks {
				i := taskIndex[t.ID]
				emit(JobResult{Index: i, Job: batch[i], Err: fmt.Errorf("repro: grid %s: %w", r.grid, err)})
			}
			return
		}
		for tr := range ch {
			i, ok := taskIndex[tr.ID]
			if !ok {
				continue
			}
			jr := JobResult{Index: i, Job: batch[i]}
			switch {
			case tr.Err != "":
				jr.Err = fmt.Errorf("repro: grid job %s: %s", batch[i].Label(), tr.Err)
			default:
				if err := json.Unmarshal(tr.Payload, &jr.Result); err != nil {
					jr.Err = fmt.Errorf("repro: decoding grid result for %s: %w", batch[i].Label(), err)
				}
			}
			emit(jr)
		}
	}()
	return out
}

// GridMetrics fetches the counter snapshot of the grid server a Runner
// built WithGrid dispatches to: cache hits and misses from the
// content-addressed result store, queue depth, lease reassignments,
// live workers. It errors on a Runner without a grid.
func (r *Runner) GridMetrics(ctx context.Context) (GridMetrics, error) {
	if r.grid == "" {
		return GridMetrics{}, fmt.Errorf("repro: runner has no grid (build it with WithGrid)")
	}
	client := &grid.Client{Server: r.grid}
	return client.Metrics(ctx)
}

// GridMetrics is the grid server's counter snapshot (see the field docs
// on the underlying type).
type GridMetrics = grid.Metrics
