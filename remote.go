package repro

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/grid"
)

// Grid dispatch: a Runner built WithGrid sends its jobs to a grid job
// server (internal/grid, spawned via cmd/helperd or in-process) instead
// of simulating locally. Jobs travel as their canonical round-trip JSON
// keyed by Job.Hash, so the server's content-addressed result store
// answers repeated sweep points without re-simulating, identical jobs
// coalesce onto one execution, and dead workers' leases are reassigned —
// all transparent to Run/RunBatch/RunAll callers.

// WithGrid routes the Runner's executions to the grid job server at
// addr (":8321", "host:8321" or a full http URL) instead of the local
// worker pool. Job defaults (warmup fraction, derived config) resolve
// client-side before dispatch, so results are bit-identical to a local
// run. WithWorkers does not limit a grid batch — the server's workers
// set the parallelism.
func WithGrid(addr string) Option {
	return func(r *Runner) { r.grid = grid.BaseURL(addr) }
}

// WithGridPriority sets the queue priority of every job this Runner
// submits (higher runs first; the default is 0, ties are FIFO). An
// interactive probe can overtake a bulk sweep sharing the same grid.
func WithGridPriority(p int) Option {
	return func(r *Runner) { r.gridPriority = p }
}

// JobProgress is one interval-granular progress event of a grid job
// still running: which job, how far along, and what the steering engine
// is doing right now — the Observe stream surfaced to the submitting
// client. Events are best-effort (workers publish them over heartbeats;
// a dropped snapshot just means a coarser next one).
type JobProgress struct {
	// Index is the job's position in the batch slice; Job the job as
	// submitted (defaults resolved).
	Index int
	Job   Job
	// Uops of Total committed uops of the measured phase have retired.
	Uops  uint64
	Total uint64
	// IntervalIPC is the IPC of the most recent feedback interval.
	IntervalIPC float64
	// Rung names the steering feature set governing the interval (a
	// dynamic selector's current choice; the policy itself when static).
	Rung string
	// Phase is the interval's program-phase ID, -1 without a detector.
	Phase int
	// Worker names the grid worker running the job.
	Worker string
	// Stop cancels this one job early: it finishes immediately with
	// ErrJobStopped (the rest of the batch keeps running) and its
	// simulation is aborted at the worker through the per-task
	// cancellation path. Safe to call from the callback or later, and
	// idempotent. Best-effort: the cancel request is bounded by a short
	// timeout and a transient failure is dropped — the job then simply
	// keeps running and keeps producing progress events, so callback
	// logic that stops on a condition will fire again.
	Stop func()
}

// ErrJobStopped reports a grid job ended early because a WithGridProgress
// callback stopped it. Test with errors.Is on the JobResult error.
var ErrJobStopped = errors.New("repro: job stopped early")

// WithGridProgress installs an interval progress callback for grid
// dispatch: once per published interval snapshot of every running job,
// fn receives a JobProgress (including a Stop hook for early stopping —
// cancel a sweep point as soon as its numbers are conclusive). Events
// arrive serially from the result-stream goroutine, which may run
// concurrently with the WithProgress completion callback; fn must be
// quick and do its own locking if the two share state. The option is
// inert on a Runner without WithGrid.
func WithGridProgress(fn func(JobProgress)) Option {
	return func(r *Runner) { r.gridProgress = fn }
}

// GridTaskProgress is the wire-level progress snapshot a worker-side
// execution reports (see the field docs on the underlying type);
// JobExecProgress fills its measurement fields and the grid worker
// stamps the identity ones.
type GridTaskProgress = grid.TaskProgress

// JobExec returns the payload-level execution function a grid worker
// plugs into its Exec slot: canonical Job JSON in, canonical Result JSON
// out. The returned function runs every job locally with exactly the
// Warmup it carries (the wire convention: dispatchers resolve defaults
// before submitting), regardless of this Runner's own warmup fraction or
// grid dispatch mode.
func (r *Runner) JobExec() func(ctx context.Context, payload []byte) ([]byte, error) {
	exec := r.JobExecProgress(0)
	return func(ctx context.Context, payload []byte) ([]byte, error) {
		return exec(ctx, payload, nil)
	}
}

// JobExecProgress is JobExec for progress-capable workers (the Worker's
// ExecProgress slot): the same canonical-JSON-in, canonical-JSON-out
// execution, plus an interval progress report — every `every` committed
// uops of the measured phase (0 picks the job's natural granularity:
// the policy's Observe interval, else N/50), report receives the uops
// retired, the interval IPC, the active rung, and the phase ID. The
// hook is read-only, so results stay bit-identical to JobExec.
func (r *Runner) JobExecProgress(every uint64) func(ctx context.Context, payload []byte, report func(GridTaskProgress)) ([]byte, error) {
	local := *r
	local.warmupFrac = 0
	local.grid = ""
	local.progress = nil
	local.gridProgress = nil
	return func(ctx context.Context, payload []byte, report func(GridTaskProgress)) ([]byte, error) {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return nil, fmt.Errorf("repro: decoding grid job: %w", err)
		}
		res, err := local.runLocalProgress(ctx, j, every, report)
		if err != nil {
			return nil, err
		}
		out, err := json.Marshal(res)
		if err != nil {
			return nil, fmt.Errorf("repro: encoding grid result for %s: %w", j.Label(), err)
		}
		return out, nil
	}
}

// runGridBatch is RunBatch over the wire: resolve and validate each job
// locally (bad jobs fail fast without a round trip), submit the rest as
// one grid batch, and map the NDJSON result stream back onto JobResults.
// Delivery follows the RunBatch contract: completion order, per-job
// errors in JobResult.Err, best-effort after cancellation.
func (r *Runner) runGridBatch(ctx context.Context, jobs []Job) <-chan JobResult {
	batch := make([]Job, len(jobs))
	copy(batch, jobs)
	out := make(chan JobResult)
	go func() {
		defer close(out)
		total := len(batch)
		// Unlike the local pool, everything here runs on this one
		// goroutine, so the progress callback needs no locking and Done
		// is trivially strictly increasing.
		done := 0
		emit := func(jr JobResult) {
			if r.progress != nil {
				done++
				r.progress(Progress{Done: done, Total: total, Job: jr.Job, Err: jr.Err})
			}
			select {
			case out <- jr:
			case <-ctx.Done():
				// Best-effort after cancellation, like the local pool.
			}
		}

		tasks := make([]grid.Task, 0, len(batch))
		taskIndex := make(map[string]int, len(batch))
		for i := range batch {
			batch[i] = r.withDefaults(batch[i])
			j := batch[i]
			if err := j.Validate(); err != nil {
				emit(JobResult{Index: i, Job: j, Err: err})
				continue
			}
			payload, err := json.Marshal(j)
			if err != nil {
				emit(JobResult{Index: i, Job: j, Err: fmt.Errorf("repro: encoding job %s: %w", j.Label(), err)})
				continue
			}
			id := strconv.Itoa(i)
			tasks = append(tasks, grid.Task{
				ID:       id,
				Hash:     grid.HashBytes(payload),
				Priority: r.gridPriority,
				Payload:  payload,
			})
			taskIndex[id] = i
		}
		if len(tasks) == 0 {
			return
		}

		client := &grid.Client{Server: r.grid}
		var onProgress func(grid.TaskProgress)
		// The BatchHandle only exists once SubmitStream returns, but the
		// first progress event can beat it there; the buffered channel
		// hands the handle across, and the single stream-reading
		// goroutine that invokes onProgress caches it after one receive.
		handleCh := make(chan *grid.BatchHandle, 1)
		if r.gridProgress != nil {
			var handle *grid.BatchHandle
			onProgress = func(p grid.TaskProgress) {
				if handle == nil {
					handle = <-handleCh
				}
				i, ok := taskIndex[p.ID]
				if !ok {
					return
				}
				h, id := handle, p.ID
				stop := func() {
					// Bounded so a black-holed cancel POST cannot wedge the
					// caller (Stop is documented callable from the progress
					// callback, which runs on the stream-reading goroutine).
					sctx, scancel := context.WithTimeout(context.Background(), 10*time.Second)
					defer scancel()
					h.Stop(sctx, id)
				}
				r.gridProgress(JobProgress{
					Index:       i,
					Job:         batch[i],
					Uops:        p.Uops,
					Total:       p.Total,
					IntervalIPC: p.IntervalIPC,
					Rung:        p.Rung,
					Phase:       p.Phase,
					Worker:      p.Worker,
					Stop:        stop,
				})
			}
		}
		ch, handle, err := client.SubmitStream(ctx, tasks, onProgress)
		if err != nil {
			for _, t := range tasks {
				i := taskIndex[t.ID]
				emit(JobResult{Index: i, Job: batch[i], Err: fmt.Errorf("repro: grid %s: %w", r.grid, err)})
			}
			return
		}
		handleCh <- handle
		for tr := range ch {
			i, ok := taskIndex[tr.ID]
			if !ok {
				continue
			}
			jr := JobResult{Index: i, Job: batch[i]}
			switch {
			case tr.Err == grid.TaskStoppedError:
				jr.Err = fmt.Errorf("repro: grid job %s: %w", batch[i].Label(), ErrJobStopped)
			case tr.Err != "":
				jr.Err = fmt.Errorf("repro: grid job %s: %s", batch[i].Label(), tr.Err)
			default:
				if err := json.Unmarshal(tr.Payload, &jr.Result); err != nil {
					jr.Err = fmt.Errorf("repro: decoding grid result for %s: %w", batch[i].Label(), err)
				}
			}
			emit(jr)
		}
	}()
	return out
}

// GridMetrics fetches the counter snapshot of the grid server a Runner
// built WithGrid dispatches to: cache hits and misses from the
// content-addressed result store, queue depth, lease reassignments,
// live workers. It errors on a Runner without a grid.
func (r *Runner) GridMetrics(ctx context.Context) (GridMetrics, error) {
	if r.grid == "" {
		return GridMetrics{}, fmt.Errorf("repro: runner has no grid (build it with WithGrid)")
	}
	client := &grid.Client{Server: r.grid}
	return client.Metrics(ctx)
}

// GridMetrics is the grid server's counter snapshot (see the field docs
// on the underlying type).
type GridMetrics = grid.Metrics
