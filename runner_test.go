package repro

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

func mustWorkload(t *testing.T, name string) Workload {
	t.Helper()
	w, err := WorkloadByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestRunnerRun(t *testing.T) {
	r := NewRunner()
	w := mustWorkload(t, "gcc")
	res, err := r.Run(context.Background(), Job{Policy: PolicyFull(), Workload: w, N: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Committed < 20_000 {
		t.Errorf("committed %d, want >= 20000", res.Metrics.Committed)
	}
	if res.Policy != PolicyFull().Name() {
		t.Errorf("policy %q, want %q", res.Policy, PolicyFull().Name())
	}
}

func TestRunnerDerivesConfigFromPolicy(t *testing.T) {
	r := NewRunner()
	w := mustWorkload(t, "gzip")
	// Zero config + steering policy must pick the helper machine: the run
	// only succeeds if HelperEnabled is set (core rejects steering on the
	// baseline machine).
	res, err := r.Run(context.Background(), Job{Policy: Policy888(), Workload: w, N: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.SteeredHelper == 0 {
		t.Error("steering policy on derived helper config steered nothing")
	}
	// Zero config + baseline policy runs the monolithic machine.
	if _, err := r.Run(context.Background(), Job{Policy: PolicyBaseline(), Workload: w, N: 5_000}); err != nil {
		t.Fatal(err)
	}
}

func TestRunnerWarmupDefault(t *testing.T) {
	// WithWarmupFrac(0) must mean literally no warmup — the deprecated
	// RunWarm(…, 0) contract.
	w := mustWorkload(t, "mcf")
	r0 := NewRunner(WithWarmupFrac(0))
	res0, err := r0.Run(context.Background(), Job{Policy: PolicyBaseline(), Workload: w, N: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	r2 := NewRunner(WithWarmupFrac(0.2))
	res2, err := r2.Run(context.Background(), Job{Policy: PolicyBaseline(), Workload: w, N: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	// The warmed run resumes mid-stream, so its tick counts differ from a
	// cold start of the same N.
	if res0.Metrics.Ticks == res2.Metrics.Ticks {
		t.Error("warmup fraction had no observable effect")
	}
}

func TestWarmupFracClamp(t *testing.T) {
	for _, f := range []float64{-1, 2, math.NaN()} {
		r := NewRunner(WithWarmupFrac(f))
		if r.warmupFrac < 0 || r.warmupFrac > 1 || math.IsNaN(r.warmupFrac) {
			t.Errorf("WithWarmupFrac(%v) left frac %v", f, r.warmupFrac)
		}
	}
}

func TestJobValidate(t *testing.T) {
	w := mustWorkload(t, "gcc")
	if err := (Job{Policy: PolicyBaseline(), Workload: w}).Validate(); err == nil {
		t.Error("N=0 must fail validation")
	}
	if err := (Job{N: 1000}).Validate(); err == nil {
		t.Error("missing workload must fail validation")
	}
	bad := w
	bad.Params.Segments = 0
	if err := (Job{Workload: bad, N: 1000}).Validate(); err == nil {
		t.Error("invalid workload params must fail validation")
	}
	badCfg := BaselineConfig()
	badCfg.ROBSize = 3
	if err := (Job{Config: badCfg, Workload: w, N: 1000}).Validate(); err == nil {
		t.Error("invalid config must fail validation")
	}
	if err := (Job{Workload: w, N: 1000}).Validate(); err != nil {
		t.Errorf("valid job rejected: %v", err)
	}
}

// TestRunBatchLadder drives the full SPEC Int 2000 policy ladder through
// the public batch API — the acceptance scenario — at a tiny uop budget.
func TestRunBatchLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("full ladder batch")
	}
	var jobs []Job
	for _, w := range SpecInt2000() {
		jobs = append(jobs, Job{Policy: PolicyBaseline(), Workload: w, N: 2_000})
		for _, pol := range PolicyLadder() {
			jobs = append(jobs, Job{Policy: pol, Workload: w, N: 2_000})
		}
	}

	var mu sync.Mutex
	var progressDone []int
	r := NewRunner(WithProgress(func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		progressDone = append(progressDone, p.Done)
		if p.Total != len(jobs) {
			t.Errorf("progress total %d, want %d", p.Total, len(jobs))
		}
	}))

	seen := make([]bool, len(jobs))
	for jr := range r.RunBatch(context.Background(), jobs) {
		if jr.Err != nil {
			t.Fatalf("job %d (%s): %v", jr.Index, jr.Job.Label(), jr.Err)
		}
		if seen[jr.Index] {
			t.Fatalf("job %d delivered twice", jr.Index)
		}
		seen[jr.Index] = true
		if jr.Result.Metrics.Committed < jr.Job.N {
			t.Errorf("job %d committed %d of %d", jr.Index, jr.Result.Metrics.Committed, jr.Job.N)
		}
		if jr.Result.Policy != jr.Job.Policy.Name() {
			t.Errorf("job %d ran policy %q, want %q", jr.Index, jr.Result.Policy, jr.Job.Policy.Name())
		}
	}
	for i, ok := range seen {
		if !ok {
			t.Errorf("job %d never delivered", i)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(progressDone) != len(jobs) {
		t.Errorf("progress fired %d times, want %d", len(progressDone), len(jobs))
	}
}

func TestRunAll(t *testing.T) {
	w := mustWorkload(t, "gcc")
	jobs := []Job{
		{Policy: PolicyBaseline(), Workload: w, N: 2_000},
		{Policy: Policy888(), Workload: w, N: 2_000},
		{Policy: PolicyFull(), Workload: w, N: 2_000},
	}
	results, err := NewRunner().RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, res := range results {
		if res.Policy != jobs[i].Policy.Name() {
			t.Errorf("result %d has policy %q, want %q (order broken)", i, res.Policy, jobs[i].Policy.Name())
		}
	}

	// First real failure surfaces; results are nil.
	bad := append([]Job{{Policy: PolicyBaseline(), Workload: w}}, jobs...) // N == 0
	if res, err := NewRunner().RunAll(context.Background(), bad); err == nil || res != nil {
		t.Errorf("RunAll with an invalid job: results=%v err=%v", res, err)
	}

	// Cancelled context reports the context error, not a job error.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewRunner().RunAll(ctx, jobs); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled RunAll err = %v, want context.Canceled", err)
	}
}

func TestRunBatchPerJobError(t *testing.T) {
	w := mustWorkload(t, "gcc")
	bad := Job{Policy: PolicyBaseline(), Workload: w} // N == 0
	good := Job{Policy: PolicyBaseline(), Workload: w, N: 2_000}
	var badErr, goodErr error
	for jr := range NewRunner().RunBatch(context.Background(), []Job{bad, good}) {
		switch jr.Index {
		case 0:
			badErr = jr.Err
		case 1:
			goodErr = jr.Err
		}
	}
	if badErr == nil {
		t.Error("invalid job must surface its error in JobResult")
	}
	if goodErr != nil {
		t.Errorf("valid job failed alongside invalid one: %v", goodErr)
	}
}

func TestRunCancellation(t *testing.T) {
	r := NewRunner()
	w := mustWorkload(t, "gcc")

	// Cancelled in the measured phase (tiny explicit warmup completes
	// first): partial measurements come back with the error.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := r.Run(ctx, Job{Policy: PolicyFull(), Workload: w, N: 1 << 40, Warmup: 1_000})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
	if res.Metrics.Committed == 0 {
		t.Error("run cancelled mid-measurement should return partial measurements")
	}

	// Cancelled during warmup (the default 20% of a huge N): warmup
	// counters must not masquerade as measurements.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel2()
	res, err = r.Run(ctx2, Job{Policy: PolicyFull(), Workload: w, N: 1 << 40})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("warmup cancel err = %v, want deadline exceeded", err)
	}
	if res.Metrics.Committed != 0 {
		t.Errorf("run cancelled in warmup leaked %d warmup commits as measurements", res.Metrics.Committed)
	}
}

// TestRunBatchCancelMidSweep cancels a batch of effectively unbounded jobs
// and verifies the result channel drains promptly and every pool goroutine
// exits (no leak).
func TestRunBatchCancelMidSweep(t *testing.T) {
	before := runtime.NumGoroutine()

	var jobs []Job
	w := mustWorkload(t, "gcc")
	for i := 0; i < 16; i++ {
		jobs = append(jobs, Job{Policy: PolicyFull(), Workload: w, N: 1 << 40})
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRunner(WithWorkers(4))
	ch := r.RunBatch(ctx, jobs)

	time.AfterFunc(50*time.Millisecond, cancel)
	drained := make(chan int)
	go func() {
		n := 0
		for jr := range ch {
			if jr.Err == nil {
				t.Errorf("job %d finished without error despite cancellation", jr.Index)
			}
			n++
		}
		drained <- n
	}()
	select {
	case n := <-drained:
		if n > len(jobs) {
			t.Errorf("delivered %d results for %d jobs", n, len(jobs))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("batch channel did not close after cancellation")
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestJobJSONRoundTrip(t *testing.T) {
	w := mustWorkload(t, "bzip2")
	in := Job{
		Name:     "bzip2-full",
		Config:   HelperConfig(),
		Policy:   PolicyFull(),
		Workload: w,
		N:        123_456,
		Warmup:   7_890,
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Job
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("job round trip mismatch:\n in=%+v\nout=%+v", in, out)
	}

	// A zero Config marshals as the resolved machine, so reports are
	// self-describing; decoding yields the explicit equivalent.
	zeroCfg := Job{Policy: PolicyFull(), Workload: w, N: 1_000}
	data, err = json.Marshal(zeroCfg)
	if err != nil {
		t.Fatal(err)
	}
	var resolved Job
	if err := json.Unmarshal(data, &resolved); err != nil {
		t.Fatal(err)
	}
	if resolved.Config != HelperConfig() {
		t.Error("zero-config job did not marshal its effective (helper) config")
	}
}

func TestJobJSONNames(t *testing.T) {
	var j Job
	blob := `{"workload":"gcc","policy":"8_8_8+BR","config":"helper","n":100000}`
	if err := json.Unmarshal([]byte(blob), &j); err != nil {
		t.Fatal(err)
	}
	if j.Workload.Name != "gcc" || j.Workload.Params.Segments == 0 {
		t.Errorf("workload not resolved: %+v", j.Workload)
	}
	if j.Policy.Name() != "8_8_8+BR" {
		t.Errorf("policy = %q", j.Policy.Name())
	}
	if !j.Config.HelperEnabled {
		t.Error("config name \"helper\" not resolved")
	}
	if j.N != 100_000 {
		t.Errorf("n = %d", j.N)
	}

	// Minimal wire job: config and policy left to their defaults.
	var minimal Job
	if err := json.Unmarshal([]byte(`{"workload":"mcf","n":5000}`), &minimal); err != nil {
		t.Fatal(err)
	}
	if minimal.Workload.Name != "mcf" || minimal.Policy != PolicyBaseline() {
		t.Errorf("minimal job = %+v", minimal)
	}

	for _, bad := range []string{
		`{"workload":"nosuch","n":1}`,
		`{"policy":"nosuch","n":1}`,
		`{"config":"nosuch","n":1}`,
		`{"n":1,"unknown_field":true}`,
	} {
		if err := json.Unmarshal([]byte(bad), new(Job)); err == nil {
			t.Errorf("decoding %s should fail", bad)
		}
	}
}

func TestConfigPolicyResultJSONRoundTrip(t *testing.T) {
	cfg := HelperConfig()
	data, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var cfg2 Config
	if err := json.Unmarshal(data, &cfg2); err != nil {
		t.Fatal(err)
	}
	if cfg2 != cfg {
		t.Error("config round trip mismatch")
	}

	// Static policies are plain feature structs on the wire; dynamic
	// policies travel by canonical name (see Job's encoder), so the
	// structural round trip is pinned on the concrete static type.
	pol := PolicyFull()
	data, err = json.Marshal(pol)
	if err != nil {
		t.Fatal(err)
	}
	var pol2 PolicyFeatures
	if err := json.Unmarshal(data, &pol2); err != nil {
		t.Fatal(err)
	}
	if Policy(pol2) != pol {
		t.Error("policy round trip mismatch")
	}

	w := mustWorkload(t, "vpr")
	res, err := NewRunner().Run(context.Background(), Job{Policy: PolicyFull(), Workload: w, N: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	data, err = json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var res2 Result
	if err := json.Unmarshal(data, &res2); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Errorf("result round trip mismatch:\n in=%+v\nout=%+v", res, res2)
	}
	if res2.Metrics.IPC() != res.Metrics.IPC() {
		t.Error("derived metrics differ after round trip")
	}
}

// TestSharedDynamicPolicyBatch fans ONE stateful dynamic policy value out
// over a whole batch: every simulation must adapt from a private clone
// (no cross-run interference, no data races under -race), results must be
// deterministic per workload, and the per-rung usage breakdown must
// surface through the public Result.
func TestSharedDynamicPolicyBatch(t *testing.T) {
	shared := PolicyDynamic()
	var jobs []Job
	for _, name := range []string{"gcc", "gzip", "gcc", "gzip"} {
		jobs = append(jobs, Job{Policy: shared, Workload: mustWorkload(t, name), N: 8_000})
	}
	results, err := NewRunner(WithWorkers(4)).RunAll(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if res.Policy != shared.Name() {
			t.Errorf("job %d ran policy %q, want %q", i, res.Policy, shared.Name())
		}
		if len(res.Rungs) == 0 {
			t.Errorf("job %d: dynamic run missing the rung usage breakdown", i)
		}
		var total uint64
		for _, u := range res.Rungs {
			total += u.Committed
		}
		if total != res.Metrics.Committed {
			t.Errorf("job %d: usage attributes %d of %d commits", i, total, res.Metrics.Committed)
		}
	}
	// Same workload, same shared policy, concurrent workers: identical
	// runs — the proof each simulation got a pristine clone.
	if results[0].Metrics != results[2].Metrics || results[1].Metrics != results[3].Metrics {
		t.Error("shared dynamic policy leaked state across batch jobs")
	}
}

// TestDynamicJobJSON round-trips a Job carrying a parameterized dynamic
// policy over the wire.
func TestDynamicJobJSON(t *testing.T) {
	p, err := PolicyByName("dyn:tournament(8_8_8+BR,8_8_8+BR+LR,interval=2k,run=2)")
	if err != nil {
		t.Fatal(err)
	}
	in := Job{Policy: p, Workload: mustWorkload(t, "mcf"), N: 6_000}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Job
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Policy.Name() != p.Name() {
		t.Fatalf("policy %q decoded as %q", p.Name(), out.Policy.Name())
	}
	// The decoded job is runnable and reports under the canonical name.
	res, err := NewRunner().Run(context.Background(), out)
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != p.Name() {
		t.Errorf("result policy %q", res.Policy)
	}
}

func TestDeprecatedWrappersStillWork(t *testing.T) {
	w := mustWorkload(t, "parser")
	r := Run(BaselineConfig(), PolicyBaseline(), w, 5_000)
	if r.Metrics.Committed < 5_000 {
		t.Error("deprecated Run broke")
	}
	rw := RunWarm(HelperConfig(), PolicyFull(), w, 5_000, 1_000)
	if rw.Metrics.Committed < 5_000 {
		t.Error("deprecated RunWarm broke")
	}
	// The seed API returned an empty result for a zero budget; the
	// wrappers must not panic on it.
	zero := Run(BaselineConfig(), PolicyBaseline(), w, 0)
	if zero.Metrics.Committed != 0 || zero.Policy != PolicyBaseline().Name() {
		t.Errorf("Run with n=0 = %+v, want empty result", zero.Metrics)
	}
}
