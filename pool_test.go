package repro

// Pooled-simulator fan-out safety: every local run — sequential or on
// RunBatch worker goroutines — draws its Sim from the core pool, so a
// job's result must be independent of which recycled Sim it lands on and
// of what ran on that Sim before. Run under -race this also checks the
// pool hand-off itself (concurrent Acquire/Release with in-place Reset).

import (
	"context"
	"reflect"
	"testing"
)

func TestRunBatchPooledMatchesSequential(t *testing.T) {
	var jobs []Job
	for _, wl := range []string{"gcc", "gzip", "mcf", "crafty"} {
		w := mustWorkload(t, wl)
		jobs = append(jobs,
			Job{Policy: PolicyBaseline(), Workload: w, N: 8_000, Warmup: 1_000},
			Job{Policy: Policy888(), Workload: w, N: 8_000, Warmup: 1_000},
			Job{Policy: PolicyFull(), Workload: w, N: 8_000, Warmup: 1_000},
		)
	}

	// Sequential reference pass: one worker, so each job reuses the Sim
	// the previous (differently shaped) job just released.
	want := make([]Result, len(jobs))
	seq := NewRunner(WithWorkers(1))
	for i, j := range jobs {
		r, err := seq.Run(context.Background(), j)
		if err != nil {
			t.Fatalf("sequential job %d: %v", i, err)
		}
		want[i] = r
	}

	// Two parallel rounds: the second is guaranteed to see a pool warmed
	// with Sims of every shape, maximizing cross-shape recycling.
	for round := 0; round < 2; round++ {
		got, err := NewRunner(WithWorkers(4)).RunAll(context.Background(), jobs)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		for i := range jobs {
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Errorf("round %d job %d (%s): pooled parallel result differs from sequential",
					round, i, jobs[i].Label())
			}
		}
	}
}
