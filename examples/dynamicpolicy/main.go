// Dynamicpolicy: run the adaptive steering policies end-to-end through
// the public API. A tournament selector samples ladder rungs by interval
// IPC and exploits the winner, and an occupancy-adaptive policy grants IR
// splitting from the live issue-queue imbalance; both are compared with
// the best static rung per workload, and the tournament's per-rung usage
// breakdown shows what it actually chose. Dynamic policies resolve from
// parameterized names too — see the PolicyByName call below.
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	apps := []string{"crafty", "gzip", "mcf"}
	ladder := repro.PolicyLadder()
	const uops = 100_000

	// The built-in dynamic selectors, plus a custom parameterization from
	// the registry: every dynamic policy name round-trips via Name().
	tournament := repro.PolicyDynamic()
	occupancy := repro.PolicyAdaptive()
	custom, err := repro.PolicyByName("dyn:tournament(8_8_8+BR+LR,8_8_8+BR+LR+CR,interval=5k,run=8)")
	if err != nil {
		panic(err)
	}
	dynamics := []repro.Policy{tournament, occupancy, custom}

	// One batch per app: baseline, every static rung, every dynamic
	// policy. A single shared policy value is safe to reuse across jobs —
	// each simulation adapts from a private clone.
	var jobs []repro.Job
	for _, app := range apps {
		w, err := repro.WorkloadByName(app)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops})
		for _, pol := range ladder {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: uops})
		}
		for _, pol := range dynamics {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: uops})
		}
	}
	results, err := repro.NewRunner().RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}

	stride := 1 + len(ladder) + len(dynamics)
	for ai, app := range apps {
		base := results[ai*stride]
		bestSpd, bestName := 0.0, ""
		for pi, pol := range ladder {
			if spd := 100 * repro.SpeedupOf(results[ai*stride+1+pi], base); pi == 0 || spd > bestSpd {
				bestSpd, bestName = spd, pol.Name()
			}
		}
		fmt.Printf("%s\n  best static rung   %-28s %+6.2f%%\n", app, bestName, bestSpd)
		for di, pol := range dynamics {
			r := results[ai*stride+1+len(ladder)+di]
			fmt.Printf("  %-18s %-28s %+6.2f%%\n",
				[]string{"tournament", "occupancy", "custom"}[di], trim(pol.Name(), 28),
				100*repro.SpeedupOf(r, base))
			if di == 0 {
				for _, u := range r.Rungs {
					fmt.Printf("      %-32s %5.1f%% of uops, %2d intervals, IPC %.3f\n",
						u.Rung, 100*float64(u.Committed)/float64(r.Metrics.Committed),
						u.Intervals, u.IPC())
				}
			}
		}
	}
}

// trim shortens long policy names for column display.
func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
