// Widthstudy: characterize a custom workload the way §1 and §3.5 of the
// paper do — how narrow-width dependent its dataflow is (Figure 1), how
// often carries stay contained for 8-32-32 operations (Figure 11), and how
// far values travel from producer to consumer (Figure 13).
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()

	// Start from a calibrated profile and make it byte-data heavy — an
	// image-filter-like workload.
	base, err := repro.WorkloadByName("gzip")
	if err != nil {
		panic(err)
	}
	params := base.Params
	params.ByteDataFrac = 0.8
	params.NarrowDataFrac = 0.9
	params.InnerTrip = 128
	w, err := repro.CustomWorkload("bytefilter", params)
	if err != nil {
		panic(err)
	}

	study := repro.AnalyzeWidth(w, 200_000)

	fmt.Printf("workload: %s\n\n", w.Name)
	d := study.NarrowDep
	fmt.Printf("narrow data-width dependent operands: %.1f%%  (paper avg ~65%%, Figure 1)\n", 100*d.Frac)
	fmt.Printf("ALU operand mix: %.1f%% one-narrow, %.1f%% two-narrow→wide, %.1f%% two-narrow→narrow\n",
		100*d.OneNarrowFrac, 100*d.TwoNarrowWideResFrac, 100*d.TwoNarrowNarrowResFrac)
	fmt.Printf("(paper: 39.4%% / 3.3%% / 43.5%%)\n\n")

	c := study.Carry
	fmt.Printf("carry contained for 8-32-32 shapes: arithmetic %.1f%%, loads %.1f%% (Figure 11)\n\n",
		100*c.ArithFrac(), 100*c.LoadFrac())

	dist := study.Distance
	fmt.Printf("producer→consumer distance: avg %.1f uops, max %d (Figure 13: IA-32 ≈ 2-6)\n",
		dist.Average(), dist.Max)

	// And what the helper cluster makes of it: two jobs through the
	// Runner, Config derived from each job's policy.
	r := repro.NewRunner()
	baseRun, err := r.Run(ctx, repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: 100_000})
	if err != nil {
		panic(err)
	}
	full, err := r.Run(ctx, repro.Job{Policy: repro.PolicyFull(), Workload: w, N: 100_000})
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nhelper-cluster speedup on this workload: %+.1f%%\n",
		100*repro.SpeedupOf(full, baseRun))
}
