// Steering: walk the paper's cumulative policy ladder (8_8_8 → +BR → +LR
// → +CR → +CP → +IR) over a few SPEC Int benchmarks, reproducing the §3
// narrative: BR and LR cut copies, CR widens helper coverage, IR trades
// copies for balance. The whole grid — baselines included — runs as one
// batch gathered in job order by Runner.RunAll.
package main

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()
	apps := []string{"bzip2", "gcc", "crafty"}
	ladder := repro.PolicyLadder()
	const uops = 100_000

	// Job layout: per app, one baseline followed by the ladder rungs.
	var jobs []repro.Job
	for _, app := range apps {
		w, err := repro.WorkloadByName(app)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops})
		for _, pol := range ladder {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: uops})
		}
	}

	results, err := repro.NewRunner().RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}

	t := report.NewTable("Policy ladder (speedup % over the monolithic baseline)",
		append([]string{}, apps...)...)
	copies := report.NewTable("Copy percentage", append([]string{}, apps...)...)

	stride := 1 + len(ladder)
	for pi, pol := range ladder {
		spd := make([]float64, 0, len(apps))
		cp := make([]float64, 0, len(apps))
		for ai := range apps {
			base := results[ai*stride]
			r := results[ai*stride+1+pi]
			spd = append(spd, 100*repro.SpeedupOf(r, base))
			cp = append(cp, 100*r.Metrics.CopyFrac())
		}
		t.AddRow(pol.Name(), spd...)
		copies.AddRow(pol.Name(), cp...)
	}
	fmt.Println(t.Render())
	fmt.Println(copies.Render())
}
