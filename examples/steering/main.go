// Steering: walk the paper's cumulative policy ladder (8_8_8 → +BR → +LR
// → +CR → +CP → +IR) over a few SPEC Int benchmarks, reproducing the §3
// narrative: BR and LR cut copies, CR widens helper coverage, IR trades
// copies for balance.
package main

import (
	"fmt"

	"repro"
	"repro/internal/report"
)

func main() {
	apps := []string{"bzip2", "gcc", "crafty"}
	const uops = 100_000

	t := report.NewTable("Policy ladder (speedup % over the monolithic baseline)",
		append([]string{}, apps...)...)
	copies := report.NewTable("Copy percentage", append([]string{}, apps...)...)

	baselines := map[string]repro.Result{}
	for _, app := range apps {
		w, err := repro.WorkloadByName(app)
		if err != nil {
			panic(err)
		}
		baselines[app] = repro.Run(repro.BaselineConfig(), repro.PolicyBaseline(), w, uops)
	}

	for _, pol := range repro.PolicyLadder() {
		spd := make([]float64, 0, len(apps))
		cp := make([]float64, 0, len(apps))
		for _, app := range apps {
			w, _ := repro.WorkloadByName(app)
			r := repro.Run(repro.HelperConfig(), pol, w, uops)
			spd = append(spd, 100*repro.SpeedupOf(r, baselines[app]))
			cp = append(cp, 100*r.Metrics.CopyFrac())
		}
		t.AddRow(pol.Name(), spd...)
		copies.AddRow(pol.Name(), cp...)
	}
	fmt.Println(t.Render())
	fmt.Println(copies.Render())
}
