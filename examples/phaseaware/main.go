// Phaseaware: the phase- and energy-aware dynamic selection walkthrough.
// Every adaptive run classifies its feedback intervals into program
// phases (branch-PC/working-set signatures) and prices them with the
// power model, so selectors can keep per-phase statistics and optimize
// energy-delay² instead of raw IPC. This example compares, per workload:
//
//   - the best static ladder rung on each axis (per-app oracles),
//   - the phase-aware tournament (per-phase score tables, "phase=on"),
//   - the UCB bandit rewarded by interval IPC, and
//   - the UCB bandit rewarded by interval ED² — which can beat the static
//     ED² oracle when phases favour different rungs,
//
// and prints the per-rung usage breakdown with its energy attribution:
// how many uops each rung governed, at what IPC, and at what energy per
// uop — the observable evidence of what the selector chose and why.
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	apps := []string{"vortex", "twolf", "bzip2"}
	ladder := repro.PolicyLadder()
	const uops = 120_000

	// Dynamic selectors; the phased tournament comes from the registry to
	// show the parameterized name form round-tripping.
	phased, err := repro.PolicyByName("dyn:tournament(cr,cp,ir,irnd,interval=10k,run=6,phase=on)")
	if err != nil {
		panic(err)
	}
	dynamics := []struct {
		label string
		pol   repro.Policy
	}{
		{"tournament(phase=on)", phased},
		{"ucb(reward=ipc)", repro.PolicyUCB()},
		{"ucb(reward=ed2)", repro.PolicyUCBED2()},
	}

	var jobs []repro.Job
	for _, app := range apps {
		w, err := repro.WorkloadByName(app)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs, repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops})
		for _, pol := range ladder {
			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: uops})
		}
		for _, d := range dynamics {
			jobs = append(jobs, repro.Job{Policy: d.pol, Workload: w, N: uops})
		}
	}
	results, err := repro.NewRunner().RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}

	stride := 1 + len(ladder) + len(dynamics)
	for ai, app := range apps {
		base := results[ai*stride]
		basePower := repro.EstimatePower(repro.BaselineConfig(), base)
		ed2 := func(idx int) float64 {
			r := results[idx]
			return 100 * repro.ED2Gain(repro.EstimatePower(jobs[idx].EffectiveConfig(), r), basePower)
		}

		bestIPC, bestED2 := 0.0, 0.0
		bestIPCName, bestED2Name := "", ""
		for pi, pol := range ladder {
			idx := ai*stride + 1 + pi
			if spd := 100 * repro.SpeedupOf(results[idx], base); pi == 0 || spd > bestIPC {
				bestIPC, bestIPCName = spd, pol.Name()
			}
			if g := ed2(idx); pi == 0 || g > bestED2 {
				bestED2, bestED2Name = g, pol.Name()
			}
		}
		fmt.Printf("%s\n", app)
		fmt.Printf("  %-22s %-28s ipc %+6.2f%%\n", "best static (ipc)", bestIPCName, bestIPC)
		fmt.Printf("  %-22s %-28s ed2 %+6.2f%%\n", "best static (ed2)", bestED2Name, bestED2)

		for di, d := range dynamics {
			idx := ai*stride + 1 + len(ladder) + di
			r := results[idx]
			fmt.Printf("  %-22s ipc %+6.2f%%  ed2 %+6.2f%%\n",
				d.label, 100*repro.SpeedupOf(r, base), ed2(idx))
			if d.label != "ucb(reward=ed2)" {
				continue
			}
			// The energy-attributed usage breakdown of the ED² bandit:
			// which rungs it chose, and what each cost per uop.
			for _, u := range r.Rungs {
				if u.Committed == 0 {
					continue
				}
				fmt.Printf("      %-32s %5.1f%% of uops  ipc %.3f  %6.1f pJ/uop  ed2/uop %.3f\n",
					u.Rung, 100*float64(u.Committed)/float64(r.Metrics.Committed),
					u.IPC(), 1000*u.EnergyPerUop(), u.ED2PerUop())
			}
		}
	}
}
