// Gridsweep: a self-contained tour of the distributed simulation grid.
// It starts a job server and two workers in-process (the same fabric
// `helperd serve`/`helperd work` run as separate OS processes), points a
// Runner at it with WithGrid, and runs a small policy sweep twice — the
// first pass is sharded across the workers, the second is answered
// entirely by the server's content-addressed result store, because every
// Job hashes to the same canonical JSON. Results are bit-identical to a
// local run either way.
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"reflect"

	"repro"
	"repro/internal/grid"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// The job server, on an ephemeral localhost port.
	srv := grid.NewServer()
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv}
	go hs.Serve(ln)
	defer hs.Close()
	addr := ln.Addr().String()

	// Two workers pulling leases from it. JobExec is the standard worker
	// execution function: canonical Job JSON in, Result JSON out.
	for i := 0; i < 2; i++ {
		w := &grid.Worker{
			Server:   addr,
			Name:     fmt.Sprintf("worker%d", i),
			Exec:     repro.NewRunner().JobExec(),
			Parallel: 2,
		}
		go w.Run(ctx)
	}

	// A Runner that dispatches to the grid instead of simulating locally.
	runner := repro.NewRunner(repro.WithGrid(addr))

	const uops = 40_000
	var jobs []repro.Job
	for _, name := range []string{"gcc", "gzip", "crafty"} {
		w, err := repro.WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs,
			repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops},
			repro.Job{Policy: repro.PolicyFull(), Workload: w, N: uops},
		)
	}

	fmt.Printf("grid server %s, 2 workers, %d jobs\n\n", addr, len(jobs))
	results, err := runner.RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}
	for i := 0; i < len(jobs); i += 2 {
		base, full := results[i], results[i+1]
		fmt.Printf("  %-8s %s speedup %+.1f%%\n",
			jobs[i].Workload.Name, full.Policy, 100*repro.SpeedupOf(full, base))
	}

	// Round two: same jobs, same hashes — no simulation happens at all.
	again, err := runner.RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}
	m, err := runner.GridMetrics(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nrerun bit-identical: %v\n", reflect.DeepEqual(results, again))
	fmt.Printf("grid metrics: %d misses (simulated), %d cache hits (served from store), %d workers\n",
		m.CacheMisses, m.CacheHits, m.Workers)
}
