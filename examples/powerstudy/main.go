// Powerstudy: the §3.7 wrap-up comparison — estimate energy and
// energy-delay² of the helper-cluster machine in its most aggressive
// configuration against the monolithic baseline, using the Wattch-like
// power model (the paper reports the helper 5.1% more ED²-efficient).
// The baseline/full pairs for all six apps run as one gathered batch.
package main

import (
	"context"
	"fmt"

	"repro"
	"repro/internal/report"
)

func main() {
	ctx := context.Background()
	const uops = 100_000
	apps := []string{"bzip2", "crafty", "gap", "gzip", "parser", "twolf"}

	// Two jobs per app: baseline at 2i, the full IR configuration at 2i+1.
	var jobs []repro.Job
	for _, app := range apps {
		w, err := repro.WorkloadByName(app)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs,
			repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops},
			repro.Job{Policy: repro.PolicyFull(), Workload: w, N: uops})
	}
	results, err := repro.NewRunner().RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}

	t := report.NewTable("Energy-delay² — IR configuration vs monolithic baseline",
		"energy-ratio", "delay-ratio", "ed2-gain%")
	var sumGain float64
	for i, app := range apps {
		base, full := results[2*i], results[2*i+1]
		pb := repro.EstimatePower(repro.BaselineConfig(), base)
		pf := repro.EstimatePower(repro.HelperConfig(), full)
		gain := 100 * repro.ED2Gain(pf, pb)
		sumGain += gain
		t.AddRow(app,
			pf.EnergyNJ/pb.EnergyNJ,
			float64(pf.WideCycles)/float64(pb.WideCycles),
			gain)
	}
	t.AddRow("AVG", 0, 0, sumGain/float64(len(apps)))
	fmt.Println(t.Render())
	fmt.Println("energy-ratio > 1: the helper cluster adds datapath, clock and leakage energy;")
	fmt.Println("delay-ratio < 1: it finishes sooner. ED² gain > 0 means the trade pays off (§3.7).")
}
