// Quickstart: simulate one SPEC Int benchmark on the monolithic baseline
// and on the helper-cluster machine with the paper's full steering policy,
// and print the speedup — the minimal end-to-end use of the library.
package main

import (
	"fmt"

	"repro"
)

func main() {
	w, err := repro.WorkloadByName("crafty")
	if err != nil {
		panic(err)
	}
	const uops = 150_000

	base := repro.Run(repro.BaselineConfig(), repro.PolicyBaseline(), w, uops)
	full := repro.Run(repro.HelperConfig(), repro.PolicyFull(), w, uops)

	fmt.Printf("workload: %s (%d uops measured)\n", w.Name, uops)
	fmt.Printf("baseline IPC: %.3f\n", base.Metrics.IPC())
	fmt.Printf("helper   IPC: %.3f (policy %s)\n", full.Metrics.IPC(), full.Policy)
	fmt.Printf("speedup: %+.1f%%\n", 100*repro.SpeedupOf(full, base))
	fmt.Printf("helper cluster executed %.1f%% of uops; %.1f%% copies\n",
		100*full.Metrics.HelperFrac(), 100*full.Metrics.CopyFrac())
}
