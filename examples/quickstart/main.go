// Quickstart: simulate one SPEC Int benchmark on the monolithic baseline
// and on the helper-cluster machine with the paper's full steering policy,
// and print the speedup — the minimal end-to-end use of the Runner API.
// Note the zero-value conveniences: each Job's Config is derived from its
// Policy, and the warmup defaults to the Runner's 20% fraction.
package main

import (
	"context"
	"fmt"

	"repro"
)

func main() {
	ctx := context.Background()
	w, err := repro.WorkloadByName("crafty")
	if err != nil {
		panic(err)
	}
	const uops = 150_000

	r := repro.NewRunner()
	base, err := r.Run(ctx, repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops})
	if err != nil {
		panic(err)
	}
	full, err := r.Run(ctx, repro.Job{Policy: repro.PolicyFull(), Workload: w, N: uops})
	if err != nil {
		panic(err)
	}

	fmt.Printf("workload: %s (%d uops measured)\n", w.Name, uops)
	fmt.Printf("baseline IPC: %.3f\n", base.Metrics.IPC())
	fmt.Printf("helper   IPC: %.3f (policy %s)\n", full.Metrics.IPC(), full.Policy)
	fmt.Printf("speedup: %+.1f%%\n", 100*repro.SpeedupOf(full, base))
	fmt.Printf("helper cluster executed %.1f%% of uops; %.1f%% copies\n",
		100*full.Metrics.HelperFrac(), 100*full.Metrics.CopyFrac())
}
