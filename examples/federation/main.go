// Federation: two grid servers glued into one tier. Member A owns the
// result store; member B runs the only workers and reaches A's store
// over HTTP (grid.RemoteStore — the same seam a shared DiskStore
// directory plugs into). A Runner pointed at BOTH members partitions
// jobs across them by affinity (a stable hash of workload + config), so
// every submission lands somewhere — and the jobs that land on
// worker-less A are carried to B by work stealing: B's steal loop sees
// its own queue empty, asks A for surplus, runs the tasks through its
// local pool, and relays the results back under A's lease discipline.
// The rerun then hits the shared store no matter which member answers.
// This is the in-process version of
//
//	helperd serve -addr :8321 -self 127.0.0.1:8321 -peers 127.0.0.1:8322 -store-dir cache/
//	helperd serve -addr :8322 -self 127.0.0.1:8322 -peers 127.0.0.1:8321 -store-remote 127.0.0.1:8321
//	helperd work  -server :8322
//	sweep -study ladder -grid 127.0.0.1:8321,127.0.0.1:8322
package main

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"reflect"
	"time"

	"repro"
	"repro/internal/grid"
)

func main() {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// Reserve both addresses before building anything: each member's URL
	// is the other's peer seed, and its own advertised self.
	lnA := listen()
	lnB := listen()
	urlA := "http://" + lnA.Addr().String()
	urlB := "http://" + lnB.Addr().String()

	// Member A: owns the shared store (the default in-memory one), runs
	// no workers. The deferred order matters: each Federation closes
	// before its HTTP server so in-flight loopback batches can finish.
	srvA := grid.NewServer()
	defer srvA.Close()
	fedA := grid.NewFederation(srvA, urlA, []string{urlB},
		grid.WithStealInterval(50*time.Millisecond))
	hsA := &http.Server{Handler: fedA}
	go hsA.Serve(lnA)
	defer hsA.Close()
	defer fedA.Close()

	// Member B: its store is A's, over HTTP; its workers are the tier's
	// only execution capacity.
	srvB := grid.NewServer(grid.WithStorage(grid.NewRemoteStore(urlA)))
	defer srvB.Close()
	fedB := grid.NewFederation(srvB, urlB, []string{urlA},
		grid.WithStealInterval(50*time.Millisecond))
	hsB := &http.Server{Handler: fedB}
	go hsB.Serve(lnB)
	defer hsB.Close()
	defer fedB.Close()

	for i := 0; i < 2; i++ {
		w := &grid.Worker{
			Server:   urlB,
			Name:     fmt.Sprintf("worker%d", i),
			Exec:     repro.NewRunner().JobExec(),
			Parallel: 2,
		}
		go w.Run(ctx)
	}

	// The Runner sees the whole federation: jobs partition across both
	// members by affinity, and a member that stops answering is failed
	// over to its peers.
	runner := repro.NewRunner(repro.WithGrid(urlA + "," + urlB))

	const uops = 40_000
	var jobs []repro.Job
	for _, name := range []string{"gcc", "gzip", "crafty"} {
		w, err := repro.WorkloadByName(name)
		if err != nil {
			panic(err)
		}
		jobs = append(jobs,
			repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: uops},
			repro.Job{Policy: repro.PolicyFull(), Workload: w, N: uops},
		)
	}

	fmt.Printf("federation: %s (store, no workers) + %s (2 workers), %d jobs\n\n", urlA, urlB, len(jobs))
	results, err := runner.RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}
	for i := 0; i < len(jobs); i += 2 {
		base, full := results[i], results[i+1]
		fmt.Printf("  %-8s %s speedup %+.1f%%\n",
			jobs[i].Workload.Name, full.Policy, 100*repro.SpeedupOf(full, base))
	}

	ma, mb := srvA.Metrics(), srvB.Metrics()
	fmt.Printf("\nwork stealing: A granted %d tasks to peers, B stole %d (A has no workers)\n",
		ma.StealsOut, mb.StealsIn)

	// Round two: the shared store answers for both members, so it does
	// not matter where the affinity partitioner sends each job.
	again, err := runner.RunAll(ctx, jobs)
	if err != nil {
		panic(err)
	}
	gm, err := runner.GridMetrics(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("rerun bit-identical: %v\n", reflect.DeepEqual(results, again))
	fmt.Printf("federation metrics: %d cache hits, %d misses, %d peers, affinity %d/%d\n",
		gm.CacheHits, gm.CacheMisses, gm.Peers, gm.AffinityHits, gm.AffinityHits+gm.AffinityMisses)
}

func listen() net.Listener {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	return ln
}
