package repro

import (
	"bytes"
	"encoding/json"
	"fmt"

	"repro/internal/grid"
)

// Job serialization. Marshalling writes the fully resolved structs so a
// report is self-describing — in particular a zero Config is expanded to
// the policy-derived machine (EffectiveConfig) the run would execute on.
// Warmup stays as requested, since its zero-value default depends on the
// Runner, not the Job. Unmarshalling additionally accepts registry names
// as shorthand for the three big fields, so a run can be requested over
// the wire as compactly as
//
//	{"workload": "gcc", "policy": "8_8_8+BR", "config": "helper", "n": 100000}
//
// Config accepts "baseline"/"helper" (ConfigByName), Policy accepts any
// canonical name or alias including the parameterized dynamic names
// (PolicyByName), and Workload accepts a SPEC Int 2000 benchmark name
// (WorkloadByName). Static policies marshal structurally (any feature
// combination round-trips); dynamic policies marshal as their canonical
// name, which the registry reconstructs exactly.

// jobDTO mirrors Job with raw slots for the name-or-object fields.
type jobDTO struct {
	Name     string          `json:"name,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
	Policy   json.RawMessage `json:"policy,omitempty"`
	Workload json.RawMessage `json:"workload,omitempty"`
	N        uint64          `json:"n"`
	Warmup   uint64          `json:"warmup,omitempty"`
}

// UnmarshalJSON decodes a Job, accepting either full objects or registry
// names for the config, policy and workload fields. Absent config/policy
// fields keep their zero values (policy baseline; config derived from the
// policy at run time).
func (j *Job) UnmarshalJSON(data []byte) error {
	var dto jobDTO
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dto); err != nil {
		return fmt.Errorf("repro: decoding job: %w", err)
	}
	out := Job{Name: dto.Name, Policy: PolicyBaseline(), N: dto.N, Warmup: dto.Warmup}
	if err := decodeNameOrObject(dto.Config, &out.Config, ConfigByName, "config"); err != nil {
		return err
	}
	if err := decodePolicy(dto.Policy, &out.Policy); err != nil {
		return err
	}
	if err := decodeNameOrObject(dto.Workload, &out.Workload, WorkloadByName, "workload"); err != nil {
		return err
	}
	*j = out
	return nil
}

// decodePolicy fills dst from raw: absent → untouched (baseline), JSON
// string → registry lookup (covering the parameterized dynamic names),
// anything else → a structural PolicyFeatures object (the wire shape of
// static policies before names became canonical).
func decodePolicy(raw json.RawMessage, dst *Policy) error {
	if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		return nil
	}
	if raw[0] == '"' {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			return fmt.Errorf("repro: decoding job policy: %w", err)
		}
		p, err := PolicyByName(name)
		if err != nil {
			return fmt.Errorf("repro: decoding job policy: %w", err)
		}
		*dst = p
		return nil
	}
	var f PolicyFeatures
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return fmt.Errorf("repro: decoding job policy: %w", err)
	}
	*dst = f
	return nil
}

// decodeNameOrObject fills dst from raw: absent → untouched, JSON string →
// registry lookup, anything else → structural unmarshal.
func decodeNameOrObject[T any](raw json.RawMessage, dst *T, byName func(string) (T, error), field string) error {
	if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		return nil
	}
	if raw[0] == '"' {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			return fmt.Errorf("repro: decoding job %s: %w", field, err)
		}
		v, err := byName(name)
		if err != nil {
			return fmt.Errorf("repro: decoding job %s: %w", field, err)
		}
		*dst = v
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields() // nested typos fail like top-level ones
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("repro: decoding job %s: %w", field, err)
	}
	return nil
}

// Hash returns the job's canonical content address: "sha256:<hex>" over
// the round-trip JSON encoding (MarshalJSON's fully resolved form, so a
// zero Config hashes identically to its explicit policy-derived machine).
// Two jobs with equal hashes describe the same deterministic simulation —
// the key the grid's content-addressed result store and RunAll's
// in-batch dedupe share. Warmup is hashed as carried: callers that rely
// on a Runner's warmup fraction should hash the job the Runner will
// actually execute (the grid dispatcher resolves defaults before
// hashing).
func (j Job) Hash() (string, error) {
	data, err := json.Marshal(j)
	if err != nil {
		return "", fmt.Errorf("repro: hashing job %s: %w", j.Label(), err)
	}
	return grid.HashBytes(data), nil
}

// MarshalJSON encodes the job with its structs fully expanded. It exists
// (rather than relying on the default encoder) so Marshal/Unmarshal stay a
// symmetric pair next to the custom decoder above.
func (j Job) MarshalJSON() ([]byte, error) {
	cfg, err := json.Marshal(j.EffectiveConfig())
	if err != nil {
		return nil, err
	}
	// Static policies encode structurally, like every other struct field:
	// arbitrary feature combinations (not only the registry ladder) must
	// survive the round trip. Dynamic policies encode as their canonical
	// name, which the registry reconstructs exactly — they have no stable
	// structural form.
	var polValue any = j.EffectivePolicy().Name()
	if f, ok := j.EffectivePolicy().(PolicyFeatures); ok {
		polValue = f
	}
	pol, err := json.Marshal(polValue)
	if err != nil {
		return nil, err
	}
	w, err := json.Marshal(j.Workload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jobDTO{
		Name:     j.Name,
		Config:   cfg,
		Policy:   pol,
		Workload: w,
		N:        j.N,
		Warmup:   j.Warmup,
	})
}
