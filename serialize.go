package repro

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Job serialization. Marshalling writes the fully resolved structs so a
// report is self-describing — in particular a zero Config is expanded to
// the policy-derived machine (EffectiveConfig) the run would execute on.
// Warmup stays as requested, since its zero-value default depends on the
// Runner, not the Job. Unmarshalling additionally accepts registry names
// as shorthand for the three big fields, so a run can be requested over
// the wire as compactly as
//
//	{"workload": "gcc", "policy": "8_8_8+BR", "config": "helper", "n": 100000}
//
// Config accepts "baseline"/"helper" (ConfigByName), Policy accepts any
// canonical name or alias (PolicyByName), and Workload accepts a SPEC Int
// 2000 benchmark name (WorkloadByName).

// jobDTO mirrors Job with raw slots for the name-or-object fields.
type jobDTO struct {
	Name     string          `json:"name,omitempty"`
	Config   json.RawMessage `json:"config,omitempty"`
	Policy   json.RawMessage `json:"policy,omitempty"`
	Workload json.RawMessage `json:"workload,omitempty"`
	N        uint64          `json:"n"`
	Warmup   uint64          `json:"warmup,omitempty"`
}

// UnmarshalJSON decodes a Job, accepting either full objects or registry
// names for the config, policy and workload fields. Absent config/policy
// fields keep their zero values (policy baseline; config derived from the
// policy at run time).
func (j *Job) UnmarshalJSON(data []byte) error {
	var dto jobDTO
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&dto); err != nil {
		return fmt.Errorf("repro: decoding job: %w", err)
	}
	out := Job{Name: dto.Name, N: dto.N, Warmup: dto.Warmup}
	if err := decodeNameOrObject(dto.Config, &out.Config, ConfigByName, "config"); err != nil {
		return err
	}
	if err := decodeNameOrObject(dto.Policy, &out.Policy, PolicyByName, "policy"); err != nil {
		return err
	}
	if err := decodeNameOrObject(dto.Workload, &out.Workload, WorkloadByName, "workload"); err != nil {
		return err
	}
	*j = out
	return nil
}

// decodeNameOrObject fills dst from raw: absent → untouched, JSON string →
// registry lookup, anything else → structural unmarshal.
func decodeNameOrObject[T any](raw json.RawMessage, dst *T, byName func(string) (T, error), field string) error {
	if len(raw) == 0 || bytes.Equal(bytes.TrimSpace(raw), []byte("null")) {
		return nil
	}
	if raw[0] == '"' {
		var name string
		if err := json.Unmarshal(raw, &name); err != nil {
			return fmt.Errorf("repro: decoding job %s: %w", field, err)
		}
		v, err := byName(name)
		if err != nil {
			return fmt.Errorf("repro: decoding job %s: %w", field, err)
		}
		*dst = v
		return nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields() // nested typos fail like top-level ones
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("repro: decoding job %s: %w", field, err)
	}
	return nil
}

// MarshalJSON encodes the job with its structs fully expanded. It exists
// (rather than relying on the default encoder) so Marshal/Unmarshal stay a
// symmetric pair next to the custom decoder above.
func (j Job) MarshalJSON() ([]byte, error) {
	cfg, err := json.Marshal(j.EffectiveConfig())
	if err != nil {
		return nil, err
	}
	pol, err := json.Marshal(j.Policy)
	if err != nil {
		return nil, err
	}
	w, err := json.Marshal(j.Workload)
	if err != nil {
		return nil, err
	}
	return json.Marshal(jobDTO{
		Name:     j.Name,
		Config:   cfg,
		Policy:   pol,
		Workload: w,
		N:        j.N,
		Warmup:   j.Warmup,
	})
}
