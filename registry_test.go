package repro

import (
	"strings"
	"testing"
)

// TestPolicyByNameLadder covers every ladder rung: its canonical rendered
// name and the traditional short alias must both resolve to the exact
// policy.
func TestPolicyByNameLadder(t *testing.T) {
	aliases := map[string]string{
		"8_8_8":                  "888",
		"8_8_8+BR":               "br",
		"8_8_8+BR+LR":            "lr",
		"8_8_8+BR+LR+CR":         "cr",
		"8_8_8+BR+LR+CR+CP":      "cp",
		"8_8_8+BR+LR+CR+CP+IR":   "ir",
		"8_8_8+BR+LR+CR+CP+IRnd": "irnd",
	}
	for _, want := range PolicyLadder() {
		canonical := want.Name()
		got, err := PolicyByName(canonical)
		if err != nil {
			t.Fatalf("PolicyByName(%q): %v", canonical, err)
		}
		if got != want {
			t.Errorf("PolicyByName(%q) = %+v, want %+v", canonical, got, want)
		}
		alias, ok := aliases[canonical]
		if !ok {
			t.Fatalf("no alias recorded for ladder rung %q", canonical)
		}
		if got, err := PolicyByName(alias); err != nil || got != want {
			t.Errorf("PolicyByName(%q) = %+v, %v; want %+v", alias, got, err, want)
		}
		// Case-insensitive.
		if got, err := PolicyByName(strings.ToUpper(canonical)); err != nil || got != want {
			t.Errorf("PolicyByName(upper %q) failed: %v", canonical, err)
		}
	}
}

func TestPolicyByNameSpecials(t *testing.T) {
	for name, want := range map[string]Policy{
		"baseline":      PolicyBaseline(),
		"none":          PolicyBaseline(),
		"full":          PolicyFull(),
		"no-confidence": PolicyFeatures{Enable888: true},
	} {
		got, err := PolicyByName(name)
		if err != nil || got != want {
			t.Errorf("PolicyByName(%q) = %+v, %v; want %+v", name, got, err, want)
		}
	}
	if _, err := PolicyByName("nosuch"); err == nil {
		t.Error("unknown policy must error")
	}

	// Name/ByName round-trip for the one policy whose name used to be
	// lossy: a no-confidence run's reported Policy must resolve back to
	// the no-confidence policy, not the confidence-enabled one.
	nc := PolicyFeatures{Enable888: true}
	back, err := PolicyByName(nc.Name())
	if err != nil || back != Policy(nc) {
		t.Errorf("no-confidence round trip: name %q resolved to %+v, %v", nc.Name(), back, err)
	}

	// The dynamic selectors resolve by alias too.
	for _, alias := range []string{"dyn", "tournament", "occupancy", "adaptive"} {
		p, err := PolicyByName(alias)
		if err != nil {
			t.Errorf("PolicyByName(%q): %v", alias, err)
			continue
		}
		if !strings.HasPrefix(p.Name(), "dyn:") {
			t.Errorf("alias %q resolved to non-dynamic policy %q", alias, p.Name())
		}
	}
}

// TestPolicyNamesRoundTrip pins the registry contract: every advertised
// name resolves, and the ladder's rendered names all appear in the list.
func TestPolicyNamesRoundTrip(t *testing.T) {
	names := PolicyNames()
	if len(names) < 8 {
		t.Fatalf("suspiciously few policy names: %v", names)
	}
	seen := map[string]bool{}
	for _, n := range names {
		if _, err := PolicyByName(n); err != nil {
			t.Errorf("advertised name %q does not resolve: %v", n, err)
		}
		seen[n] = true
	}
	for _, pol := range PolicyLadder() {
		if !seen[pol.Name()] {
			t.Errorf("ladder rung %q missing from PolicyNames", pol.Name())
		}
	}
}

func TestConfigByName(t *testing.T) {
	base, err := ConfigByName("baseline")
	if err != nil || base != BaselineConfig() {
		t.Errorf("baseline lookup: %v", err)
	}
	helper, err := ConfigByName("helper")
	if err != nil || helper != HelperConfig() {
		t.Errorf("helper lookup: %v", err)
	}
	if !helper.HelperEnabled || base.HelperEnabled {
		t.Error("config registry wired backwards")
	}
	if got, err := ConfigByName(" Helper "); err != nil || got != HelperConfig() {
		t.Errorf("config lookup must be case-insensitive and trimmed: %v", err)
	}
	if _, err := ConfigByName("nosuch"); err == nil {
		t.Error("unknown config must error")
	}
	if len(ConfigNames()) != 2 {
		t.Errorf("ConfigNames = %v", ConfigNames())
	}
}

func TestWorkloadNames(t *testing.T) {
	names := WorkloadNames()
	if len(names) != 12 {
		t.Fatalf("want 12 SPEC names, got %v", names)
	}
	for _, n := range names {
		if _, err := WorkloadByName(n); err != nil {
			t.Errorf("advertised workload %q does not resolve: %v", n, err)
		}
	}
}
