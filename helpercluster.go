// Package repro is a reproduction of "Empowering a Helper Cluster through
// Data-Width Aware Instruction Selection Policies" (Unsal, Ergin, Vera,
// González — IPDPS 2006): a cycle-based timing model of a monolithic
// 32-bit IA-32-like processor augmented with a 2×-clocked 8-bit helper
// cluster, the paper's full family of data-width aware steering policies
// (8_8_8, BR, LR, CR, CP, IR), synthetic calibrated workloads standing in
// for the original proprietary traces, a Wattch-like power model, and an
// experiment harness that regenerates every table and figure of the
// paper's evaluation.
//
// The entry point is the Runner: context-aware, batch-capable, with
// streaming results and live progress. Quick start:
//
//	w, _ := repro.WorkloadByName("gcc")
//	r := repro.NewRunner()
//	base, _ := r.Run(ctx, repro.Job{Policy: repro.PolicyBaseline(), Workload: w, N: 100_000})
//	full, _ := r.Run(ctx, repro.Job{Policy: repro.PolicyFull(), Workload: w, N: 100_000})
//	fmt.Printf("speedup: %+.1f%%\n", 100*repro.SpeedupOf(full, base))
//
// A Job's zero-valued Config is derived from its Policy (helper machine
// when steering is on, Table 1 baseline otherwise) and its zero-valued
// Warmup defaults to the Runner's warmup fraction of N. Sweeps fan out
// over a bounded worker pool and stream JobResults as they complete:
//
//	var jobs []repro.Job
//	for _, w := range repro.SpecInt2000() {
//		for _, pol := range repro.PolicyLadder() {
//			jobs = append(jobs, repro.Job{Policy: pol, Workload: w, N: 100_000})
//		}
//	}
//	for jr := range r.RunBatch(ctx, jobs) {
//		fmt.Println(jr.Job.Label(), jr.Result.Metrics.IPC(), jr.Err)
//	}
//
// Steering is a first-class Policy interface: the static feature ladder
// (PolicyFeatures) runs with zero dispatch overhead, while the dynamic
// policies — the interval tournament (PolicyDynamic), the UCB1 bandit
// selector (PolicyUCB, PolicyUCBED2) and the occupancy-adaptive IR
// modulator (PolicyAdaptive) — re-select per interval from runtime
// feedback and report a per-rung usage breakdown in Result.Rungs,
// including per-rung energy attribution. Dynamic runs are phase-aware:
// each feedback interval is classified into a program phase from its
// branch-PC/working-set signature, and stateful policies key their
// statistics per phase, so scores learned in one phase never decide
// another. Every policy name, including the parameterized "dyn:..."
// forms, round-trips through PolicyByName.
//
// Jobs, Configs, Policies and Results all round-trip through JSON, and
// Job's decoder accepts registry names ("gcc", "8_8_8+BR", "helper",
// "dyn:tournament(...)") as shorthand, so runs can be requested and
// reported over the wire.
package repro

import (
	"context"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/steer"
	"repro/internal/synth"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config describes the simulated machine; see the fields of the underlying
// type for every Table 1 parameter.
type Config = config.Processor

// Policy is a steering policy: a per-uop feature decision plus an
// interval feedback hook (steer.Policy). Static policies are
// PolicyFeatures values — the paper's ladder — while dynamic policies
// (PolicyDynamic, PolicyAdaptive) re-select per interval from runtime
// feedback. Every policy's Name round-trips through PolicyByName.
type Policy = steer.Policy

// PolicyFeatures selects which data-width aware steering schemes are
// active. It is the static Policy implementation: the simulator core
// recognizes it and pays no per-uop dispatch.
type PolicyFeatures = steer.Features

// RungUsage is one row of an adaptive policy's per-rung usage breakdown
// (Result.Rungs): how much of the run each candidate feature set
// governed.
type RungUsage = steer.RungUsage

// Workload is a named synthetic workload profile.
type Workload = workload.Profile

// WorkloadParams exposes the synthetic program generator's knobs for
// custom workloads.
type WorkloadParams = synth.Params

// Result carries the measurements of one simulation run.
type Result = core.Result

// Metrics is the counter set inside a Result.
type Metrics = metrics.Metrics

// BaselineConfig returns the Table 1 monolithic machine.
func BaselineConfig() Config { return config.PentiumLikeBaseline() }

// HelperConfig returns the baseline augmented with the 8-bit, 2×-clocked
// helper cluster of §2.
func HelperConfig() Config { return config.WithHelper() }

// PolicyBaseline returns the no-steering policy (monolithic behaviour).
func PolicyBaseline() Policy { return steer.Baseline() }

// Policy888 returns the §3.2 all-narrow steering scheme.
func Policy888() Policy { return steer.F888() }

// PolicyFull returns the paper's most aggressive configuration
// (8_8_8+BR+LR+CR+CP+IR, §3.7).
func PolicyFull() Policy { return steer.FIR() }

// PolicyLadder returns the paper's cumulative policy ladder in order:
// 8_8_8, +BR, +LR, +CR, +CP, +IR, +IR tuned.
func PolicyLadder() []Policy {
	ladder := steer.Ladder()
	out := make([]Policy, len(ladder))
	for i, f := range ladder {
		out[i] = f
	}
	return out
}

// PolicyDynamic returns the default interval-based tournament selector:
// it samples the four aggressive ladder rungs (CR, CP, IR, IR-tuned) one
// feedback interval each, then runs the committed-IPC winner for six
// intervals before re-sampling.
// Parameterized variants resolve via PolicyByName, e.g.
// "dyn:tournament(8_8_8+BR,8_8_8+BR+LR,interval=50k,run=8)".
func PolicyDynamic() Policy { return steer.DefaultTournament() }

// PolicyAdaptive returns the default occupancy-adaptive policy: the full
// IR rung with splitting granted per uop from the live issue-queue
// imbalance, the gap threshold hill-climbing on interval IPC.
// Parameterized variants resolve via PolicyByName, e.g.
// "dyn:occupancy(8_8_8+BR+LR+CR+CP+IR,th=40,interval=20k)".
func PolicyAdaptive() Policy { return steer.DefaultOccAdaptive() }

// PolicyUCB returns the default UCB1 bandit selector over the four
// aggressive ladder rungs: each feedback interval is one play of the
// active rung rewarded by interval IPC, with per-program-phase arm
// statistics so a recurring phase resumes its learned winner immediately.
// Parameterized variants resolve via PolicyByName, e.g.
// "dyn:ucb(8_8_8+BR+LR,8_8_8+BR+LR+CR,reward=ed2,interval=50k,c=1.4)".
func PolicyUCB() Policy { return steer.DefaultUCB() }

// PolicyUCBED2 is PolicyUCB rewarding low energy-delay² instead of raw
// IPC — the paper's §3.7 efficiency argument made the selection
// objective, priced by the per-interval energy estimates the simulator
// feeds adaptive policies.
func PolicyUCBED2() Policy { return steer.DefaultUCBED2() }

// SpecInt2000 returns the 12 calibrated SPEC Int 2000 workload profiles.
func SpecInt2000() []Workload { return workload.SpecInt2000() }

// Suite412 returns the full 412-trace commercial workload suite (Table 2).
func Suite412() []Workload { return workload.Suite() }

// WorkloadByName looks up a SPEC Int 2000 profile by benchmark name.
func WorkloadByName(name string) (Workload, error) {
	if p, ok := workload.SpecIntByName(name); ok {
		return p, nil
	}
	return Workload{}, fmt.Errorf("repro: unknown workload %q (want one of %v)", name, workload.SpecIntNames)
}

// CustomWorkload builds a workload from explicit generator parameters.
func CustomWorkload(name string, p WorkloadParams) (Workload, error) {
	if err := p.Validate(); err != nil {
		return Workload{}, err
	}
	return Workload{Name: name, Category: "custom", Params: p}, nil
}

// Run simulates n committed uops of w on cfg under pol, with a warmup of
// n/5 uops (predictors and caches fill before measurement begins).
//
// Deprecated: use Runner.Run, which adds cancellation and error returns.
// Run panics where the Runner would return an error.
func Run(cfg Config, pol Policy, w Workload, n uint64) Result {
	return RunWarm(cfg, pol, w, n, n/5)
}

// RunWarm is Run with an explicit warmup budget.
//
// Deprecated: use Runner.Run with Job.Warmup set (the default Runner here
// applies no implicit warmup, so the warmup argument passes through
// verbatim, including zero).
func RunWarm(cfg Config, pol Policy, w Workload, n, warmup uint64) Result {
	if n == 0 {
		// The pre-Runner API returned an empty result for a zero budget
		// rather than erroring; preserve that for existing callers.
		if pol == nil {
			pol = PolicyBaseline()
		}
		return Result{Policy: pol.Name()}
	}
	r, err := defaultRunner.Run(context.Background(),
		Job{Config: cfg, Policy: pol, Workload: w, N: n, Warmup: warmup})
	if err != nil {
		panic(err)
	}
	return r
}

// SpeedupOf returns the relative performance of r over base (0.1 = +10%).
func SpeedupOf(r, base Result) float64 {
	return metrics.Speedup(&r.Metrics, &base.Metrics)
}

// mustSim builds a raw simulator instance (benchmark harness hook).
func mustSim(cfg Config, pol Policy, w Workload) *core.Sim {
	return core.MustNew(cfg, pol, w.MustStream())
}

// PowerReport is the Wattch-like energy estimate of a run.
type PowerReport = power.Report

// EstimatePower converts a run's event counts into energy and
// energy-delay² under the given machine configuration.
func EstimatePower(cfg Config, r Result) PowerReport {
	return power.New(cfg).Estimate(&r.Metrics, r.L1, r.L2, r.TC)
}

// ED2Gain returns the relative energy-delay² advantage of r over base
// (positive = more efficient), the §3.7 efficiency comparison.
func ED2Gain(r, base PowerReport) float64 { return power.ED2Gain(r, base) }

// WidthStudy holds the trace-level characterizations of a workload: the
// Figure 1 narrow-dependency statistics, the Figure 11 carry containment,
// and the Figure 13 producer-consumer distance.
type WidthStudy struct {
	NarrowDep analysis.NarrowDependency
	Carry     analysis.CarryStudy
	Distance  analysis.DistanceStudy
}

// AnalyzeWidth runs the three trace-level studies over n uops of w.
func AnalyzeWidth(w Workload, n int) WidthStudy {
	return WidthStudy{
		NarrowDep: analysis.MeasureNarrowDependency(w.MustStream(), n),
		Carry:     analysis.MeasureCarry(w.MustStream(), n),
		Distance:  analysis.MeasureDistance(w.MustStream(), n),
	}
}

// TraceUop is one executed micro-operation record.
type TraceUop = isa.Uop

// RecordTrace captures n executed uops of w for offline use (the binary
// trace format of cmd/tracegen).
func RecordTrace(w Workload, n int) []TraceUop {
	return trace.Record(w.MustStream(), n)
}

// WriteTraceFile generates n uops of w into a binary trace file. The file
// is closed exactly once, and a close failure (buffered data hitting a
// full disk, say) is reported rather than swallowed.
func WriteTraceFile(path string, w Workload, n int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Write(f, w.MustStream(), n); err != nil {
		f.Close() // report the write error; close is best-effort cleanup
		return err
	}
	return f.Close()
}

// RunTraceFile simulates a recorded binary trace (replayed cyclically
// until n uops commit).
//
// Deprecated: use Runner.RunTraceFile, which adds cancellation.
func RunTraceFile(cfg Config, pol Policy, path string, n uint64) (Result, error) {
	return defaultRunner.RunTraceFile(context.Background(), cfg, pol, path, n)
}
