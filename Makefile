GO ?= go

# Tier-1 verification in one command.
.PHONY: check
check: build vet test

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector (slower; not part
# of check).
.PHONY: race
race:
	$(GO) test -race . ./internal/parallel ./internal/experiments

# Full benchmark sweep, summarized into BENCH_core.json (ns/op and
# allocs/op per benchmark, min/mean/max over -count=3, plus the
# Policy-interface dispatch overhead from BenchmarkPolicyOverhead).
.PHONY: bench-json
bench-json:
	$(GO) test -run '^$$' -bench=. -benchmem -count=3 . | $(GO) run ./cmd/benchjson -o BENCH_core.json
