GO ?= go

# Tier-1 verification in one command.
.PHONY: check
check: build vet test

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector (slower; not part
# of check).
.PHONY: race
race:
	$(GO) test -race . ./internal/parallel ./internal/experiments ./internal/grid

# End-to-end smoke test of the distributed grid: 1 job server + 2 worker
# processes + `sweep -grid`, asserting byte-identical results vs the
# local run, cache hits on a rerun, survival of a worker killed
# mid-study (lease reassignment), the federation chaos leg (a member
# SIGKILLed mid-ladder; the survivor finishes, the rerun is 100% served
# from the shared store), and the multi-tenant service leg (an
# autoscaled server under two tenant identities survives a SIGKILLed
# peer and SIGKILLed autoscaled workers, enforces the metered tenant's
# rate limit, and stays byte-identical).
.PHONY: grid-smoke
grid-smoke:
	sh scripts/grid_smoke.sh

# Coverage gate for the grid subsystem: the distributed fabric (storage,
# leases, streams, fault recovery, admission control, fair scheduling,
# autoscaling) must keep at least GRID_COVER_MIN% statement coverage.
GRID_COVER_MIN ?= 82
.PHONY: grid-cover
grid-cover:
	@$(GO) test -coverprofile=grid.coverprofile ./internal/grid
	@total=$$($(GO) tool cover -func=grid.coverprofile | awk '/^total:/ { gsub(/%/, "", $$3); print $$3 }'); \
	rm -f grid.coverprofile; \
	echo "internal/grid coverage: $$total% (gate: $(GRID_COVER_MIN)%)"; \
	awk -v got="$$total" -v min="$(GRID_COVER_MIN)" 'BEGIN { exit (got+0 < min+0) ? 1 : 0 }' \
	    || { echo "grid-cover: FAIL — $$total% < $(GRID_COVER_MIN)%"; exit 1; }

# Fuzz the steering policy-name parser and the on-disk store loader
# beyond their checked-in seed corpora (the corpora themselves replay in
# every plain `go test` run).
.PHONY: fuzz
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzPolicyByName -fuzztime 10s ./internal/steer
	$(GO) test -run '^$$' -fuzz FuzzStoreRecover -fuzztime 10s ./internal/grid

# Formatting gate: fails when any file needs gofmt.
.PHONY: fmt-check
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Full benchmark sweep, summarized into BENCH_core.json (ns/op and
# allocs/op per benchmark, min/mean/max, plus the dispatch/phase-UCB/grid
# overhead metrics). THREE separate invocations feed the summary: each
# process launch re-rolls machine state (CPU placement, layout), and the
# per-invocation floors give benchcheck an honest per-benchmark noise
# reference (ns_per_op_floor_worst) instead of one lucky draw.
.PHONY: bench-json
bench-json:
	{ $(GO) test -run '^$$' -bench=. -benchmem -count=3 . ; \
	  $(GO) test -run '^$$' -bench=. -benchmem -count=3 . ; \
	  $(GO) test -run '^$$' -bench=. -benchmem -count=3 . ; } \
	    | $(GO) run ./cmd/benchjson -o BENCH_core.json

# Perf trajectory gate: regenerate the benchmark summary exactly the way
# bench-json does and diff it against the committed baseline. Fails on a
# >$(BENCH_MAX_REGRESS_PCT)% ns/op regression on any benchmark — after
# normalizing out the suite-wide median drift, and only when the
# regression survives a focused higher-count rerun (scheduler noise does
# not reproduce a slower floor; real regressions do) — or any
# *_overhead_pct metric over its $(BENCH_OVERHEAD_BUDGET_PCT)% budget
# (the dispatch/phase-UCB/grid overheads are promised cheap — creeping
# past budget fails loudly instead of landing silently).
# The allocation side of the gate is deterministic and therefore strict:
# allocs/op and bytes/op may not grow more than
# $(BENCH_MAX_ALLOC_REGRESS_PCT)% over the committed baseline on any
# benchmark, and the hot-loop ablation benchmarks additionally carry the
# explicit $(BENCH_ALLOC_BUDGETS) ceilings — the zero-steady-state-alloc
# core keeps them at a few hundred allocs per op (per-job construction:
# the workload stream and the policy clone), so a return of per-tick
# garbage (tens of thousands per op) fails even if BENCH_core.json were
# refreshed past it.
BENCH_MAX_REGRESS_PCT ?= 10
BENCH_OVERHEAD_BUDGET_PCT ?= 5
BENCH_MAX_ALLOC_REGRESS_PCT ?= 10
BENCH_ALLOC_BUDGETS ?= BenchmarkAblationClockRatio=2500,BenchmarkAblationConfidence=2500,BenchmarkAblationHelperWidth=2500,BenchmarkAblationSplitMode=2500
.PHONY: bench-check
bench-check:
	GO="$(GO)" BENCH_MAX_REGRESS_PCT=$(BENCH_MAX_REGRESS_PCT) \
	    BENCH_OVERHEAD_BUDGET_PCT=$(BENCH_OVERHEAD_BUDGET_PCT) \
	    BENCH_MAX_ALLOC_REGRESS_PCT=$(BENCH_MAX_ALLOC_REGRESS_PCT) \
	    BENCH_ALLOC_BUDGETS="$(BENCH_ALLOC_BUDGETS)" sh scripts/bench_check.sh

# pprof artifacts for the simulator hot loop: CPU and allocation
# profiles of the ablation benchmarks (the rename/queue/exec/commit
# path), written to cpu.pprof / mem.pprof for `go tool pprof`. The
# same profiles are available from real studies via the -cpuprofile /
# -memprofile flags on helpersim and sweep.
.PHONY: bench-profile
bench-profile:
	$(GO) test -run '^$$' -bench 'BenchmarkAblation' -benchtime 20x \
	    -cpuprofile cpu.pprof -memprofile mem.pprof -o bench-profile.test .
	@rm -f bench-profile.test
	@echo "wrote cpu.pprof and mem.pprof — inspect with: $(GO) tool pprof -top cpu.pprof"

# The zero-alloc steady-state gate on its own (it also runs in `make
# test`): once warm, the measured phase of the simulator core must not
# allocate at all.
.PHONY: alloc-gate
alloc-gate:
	$(GO) test -run TestSteadyStateZeroAllocs -count=1 ./internal/core
