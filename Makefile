GO ?= go

# Tier-1 verification in one command.
.PHONY: check
check: build vet test

.PHONY: build
build:
	$(GO) build ./...

.PHONY: vet
vet:
	$(GO) vet ./...

.PHONY: test
test:
	$(GO) test ./...

# The concurrency-heavy packages under the race detector (slower; not part
# of check).
.PHONY: race
race:
	$(GO) test -race . ./internal/parallel ./internal/experiments
