package repro

import (
	"fmt"
	"strings"

	"repro/internal/steer"
	"repro/internal/workload"
)

// PolicyByName resolves a steering policy by canonical paper name
// ("8_8_8+BR+LR") or short alias ("lr", "ir", "baseline"),
// case-insensitively. The table lives in internal/steer next to the
// policies themselves.
func PolicyByName(name string) (Policy, error) { return steer.ByName(name) }

// PolicyNames returns the canonical policy names in ladder order.
func PolicyNames() []string { return steer.Names() }

// namedConfigs is the machine-configuration registry. Both entries are
// Table 1 machines; "helper" adds the §2 narrow cluster.
var namedConfigs = []struct {
	Name string
	Make func() Config
}{
	{"baseline", BaselineConfig},
	{"helper", HelperConfig},
}

// ConfigByName resolves a machine configuration by name ("baseline" or
// "helper"), case-insensitively like PolicyByName.
func ConfigByName(name string) (Config, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, e := range namedConfigs {
		if e.Name == want {
			return e.Make(), nil
		}
	}
	return Config{}, fmt.Errorf("repro: unknown config %q (want one of %v)", name, ConfigNames())
}

// ConfigNames returns the registered configuration names.
func ConfigNames() []string {
	out := make([]string, len(namedConfigs))
	for i, e := range namedConfigs {
		out[i] = e.Name
	}
	return out
}

// WorkloadNames returns the SPEC Int 2000 benchmark names accepted by
// WorkloadByName, in the paper's figure order.
func WorkloadNames() []string {
	out := make([]string, len(workload.SpecIntNames))
	copy(out, workload.SpecIntNames)
	return out
}
