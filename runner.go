package repro

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"

	"repro/internal/core"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Job names one simulation: a machine configuration, a steering policy, a
// workload, and the uop budgets. The zero values of Config and Warmup are
// meaningful defaults — a zero Config picks BaselineConfig or HelperConfig
// from the policy, and a zero Warmup picks the Runner's warmup fraction —
// so a wire request can be as small as {"workload":"gcc","policy":"ir",
// "n":100000} (see UnmarshalJSON).
type Job struct {
	// Name is an optional caller label, echoed through JobResult and
	// Progress; the simulator ignores it.
	Name string `json:"name,omitempty"`
	// Config is the simulated machine. The zero value means "derive from
	// the policy": HelperConfig when the policy steers (Enable888),
	// BaselineConfig otherwise.
	Config Config `json:"config"`
	// Policy selects the steering schemes.
	Policy Policy `json:"policy"`
	// Workload is the synthetic workload profile to simulate.
	Workload Workload `json:"workload"`
	// N is the committed-uop budget of the measured phase.
	N uint64 `json:"n"`
	// Warmup is the committed-uop budget of the warmup phase (predictors
	// and caches fill, then counters reset). Zero means "use the Runner's
	// warmup fraction of N"; build the Runner with WithWarmupFrac(0) to
	// force literally no warmup.
	Warmup uint64 `json:"warmup,omitempty"`
}

// EffectivePolicy returns the policy the job will actually run: Policy
// itself, or — when Policy is nil — the baseline (no steering).
func (j Job) EffectivePolicy() Policy {
	if j.Policy == nil {
		return PolicyBaseline()
	}
	return j.Policy
}

// EffectiveConfig returns the machine the job will actually run on:
// Config itself, or — when Config is zero — the policy-derived default
// (HelperConfig when the policy steers, BaselineConfig otherwise). Use it
// wherever the resolved machine matters, e.g. to feed EstimatePower.
func (j Job) EffectiveConfig() Config {
	if j.Config != (Config{}) {
		return j.Config
	}
	if j.EffectivePolicy().NeedsHelper() {
		return HelperConfig()
	}
	return BaselineConfig()
}

// Label returns the job's display name: the explicit Name if set, else
// "workload/policy".
func (j Job) Label() string {
	if j.Name != "" {
		return j.Name
	}
	return j.Workload.Name + "/" + j.EffectivePolicy().Name()
}

// Validate reports the first structural problem with the job as the
// Runner would execute it (defaults not yet applied).
func (j Job) Validate() error {
	if j.N == 0 {
		return fmt.Errorf("repro: job %s: N must be > 0", j.Label())
	}
	if j.Workload.Name == "" && j.Workload.Params == (WorkloadParams{}) {
		return fmt.Errorf("repro: job %s: missing workload", j.Label())
	}
	if err := j.Workload.Params.Validate(); err != nil {
		return fmt.Errorf("repro: job %s: %w", j.Label(), err)
	}
	if v, ok := j.EffectivePolicy().(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("repro: job %s: %w", j.Label(), err)
		}
	}
	if j.Config != (Config{}) {
		if err := j.Config.Validate(); err != nil {
			return fmt.Errorf("repro: job %s: %w", j.Label(), err)
		}
	}
	return nil
}

// JobResult is one streamed batch outcome. Index is the job's position in
// the slice passed to RunBatch (results arrive in completion order). Err
// is non-nil when the job failed to build, the simulation stalled, or the
// context was cancelled; on cancellation Result still holds the partial
// measurements collected in the measured phase (zero if cancellation hit
// during warmup — mirroring Runner.Run), on the other failures it is
// meaningless.
type JobResult struct {
	Index  int
	Job    Job
	Result Result
	Err    error
}

// Progress reports batch completion to the callback installed with
// WithProgress: Done of Total jobs have finished, Job being the one that
// just completed (with Err its failure, if any).
type Progress struct {
	Done  int
	Total int
	Job   Job
	Err   error
}

// JobError attributes a batch failure to the job that caused it: RunAll
// returns one wrapping the first real failure, so callers can report the
// offending job (its canonical JSON reproduces the run) instead of a
// bare message. Error and Unwrap delegate to the underlying error, which
// already carries the job label.
type JobError struct {
	// Index is the job's position in the slice the caller passed.
	Index int
	// Job is the failed job as submitted.
	Job Job
	// Err is the underlying failure.
	Err error
}

func (e *JobError) Error() string { return e.Err.Error() }

func (e *JobError) Unwrap() error { return e.Err }

// Runner executes Jobs: one at a time with Run, or fanned out over a
// bounded worker pool with RunBatch — locally by default, or dispatched
// to a grid job server when built WithGrid. A Runner is immutable after
// NewRunner and safe for concurrent use; the zero-config DefaultRunner()
// serves quick one-off runs.
type Runner struct {
	workers      int
	warmupFrac   float64
	progress     func(Progress)
	grid         string
	gridPriority int
	gridProgress func(JobProgress)
	gridClientID string
	gridBackoff  GridBackoff
	gridSecret   string
}

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers bounds RunBatch parallelism; n < 1 (the default) means
// GOMAXPROCS.
func WithWorkers(n int) Option { return func(r *Runner) { r.workers = n } }

// WithWarmupFrac sets the default warmup budget for jobs that leave
// Warmup zero, as a fraction of the job's N (clamped to [0,1]). The
// default is 0.2, the n/5 convention of the paper harness.
func WithWarmupFrac(f float64) Option {
	return func(r *Runner) {
		if !(f >= 0) { // negatives and NaN
			f = 0
		}
		if f > 1 {
			f = 1
		}
		r.warmupFrac = f
	}
}

// WithProgress installs a completion callback for RunBatch, invoked once
// per finished job, including failed and cancelled ones. Invocations are
// serialized by the batch and Done is strictly increasing across them, so
// the callback may write to a terminal without its own locking; it should
// return quickly, since it briefly holds up other finishing workers.
func WithProgress(fn func(Progress)) Option {
	return func(r *Runner) { r.progress = fn }
}

// NewRunner builds a Runner with the given options.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{warmupFrac: 0.2}
	for _, o := range opts {
		o(r)
	}
	return r
}

// defaultRunner backs the package-level deprecated wrappers. Its warmup
// fraction is 0 so the wrappers' explicit warmup arguments pass through
// verbatim (including zero).
var defaultRunner = NewRunner(WithWarmupFrac(0))

// DefaultRunner returns the shared package-level Runner used by the
// deprecated free functions. It applies no default warmup: jobs run with
// exactly the Warmup they carry.
func DefaultRunner() *Runner { return defaultRunner }

// withDefaults resolves the job's zero-value conveniences against the
// runner's settings.
func (r *Runner) withDefaults(j Job) Job {
	j.Config = j.EffectiveConfig()
	j.Policy = j.EffectivePolicy()
	if j.Warmup == 0 {
		j.Warmup = uint64(r.warmupFrac * float64(j.N))
	}
	return j
}

// Run executes one job to completion or cancellation. Cancellation during
// the measured phase returns the partial measurements collected so far
// along with ctx.Err(); cancellation while still warming up returns a
// zero Result, since warmup counters are not measurements. On a grid
// Runner the job travels to the job server as a one-job batch (and may
// be answered from the content-addressed result cache).
func (r *Runner) Run(ctx context.Context, j Job) (Result, error) {
	if r.grid != "" {
		// Suppress the batch progress callback: a local Run never fires
		// it, and grid dispatch must stay behaviourally transparent.
		rr := *r
		rr.progress = nil
		for jr := range rr.runGridBatch(ctx, []Job{j}) {
			return jr.Result, jr.Err
		}
		// Channel closed without a delivery: cancelled mid-stream.
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		return Result{}, fmt.Errorf("repro: grid job %s: no result delivered", j.Label())
	}
	return r.runLocal(ctx, j)
}

// runLocal executes one job in this process — the path grid workers use
// regardless of their own Runner's dispatch mode.
func (r *Runner) runLocal(ctx context.Context, j Job) (Result, error) {
	return r.runLocalProgress(ctx, j, 0, nil)
}

// runLocalProgress is runLocal with an optional interval progress hook:
// every `every` committed uops of the measured phase, report receives a
// snapshot (uops retired, interval IPC, active rung, phase ID). every
// == 0 picks the job's natural granularity — the policy's Observe
// interval when it has one, else 1/50th of N. The hook is read-only:
// results are bit-identical with or without it.
func (r *Runner) runLocalProgress(ctx context.Context, j Job, every uint64, report func(GridTaskProgress)) (Result, error) {
	j = r.withDefaults(j)
	if err := j.Validate(); err != nil {
		return Result{}, err
	}
	src, err := j.Workload.Stream()
	if err != nil {
		return Result{}, fmt.Errorf("repro: job %s: %w", j.Label(), err)
	}
	// Acquire from the sim pool: a recycled Sim reset for this job is
	// byte-identical in behaviour to a fresh one, and reusing its storage
	// (ROB, queues, predictor tables, cache arrays) keeps batch loops and
	// grid workers out of the allocator.
	sim, err := core.Acquire(j.Config, j.Policy, src)
	if err != nil {
		return Result{}, fmt.Errorf("repro: job %s: %w", j.Label(), err)
	}
	defer core.Release(sim)
	if report != nil {
		if every == 0 {
			if every = j.Policy.Interval(); every == 0 {
				if every = j.N / 50; every == 0 {
					every = 1
				}
			}
		}
		sim.SetProgress(every, func(p core.Progress) {
			report(GridTaskProgress{
				Uops:        p.Committed,
				Total:       j.N,
				IntervalIPC: p.IntervalIPC,
				Rung:        p.Rung,
				Phase:       p.Phase,
			})
		})
	}
	res, err := sim.RunWarmCtx(ctx, j.N, j.Warmup)
	if err != nil {
		return res, fmt.Errorf("repro: job %s: %w", j.Label(), err)
	}
	return res, nil
}

// RunBatch executes the jobs on a bounded worker pool and streams each
// JobResult as it completes (completion order; use Index to reorder). The
// channel closes once every dispatched job has finished. Cancelling ctx
// stops in-flight simulations mid-run and queued jobs are never
// dispatched; the channel closes promptly either way, so ranging until
// close never leaks. After cancellation delivery is best-effort — some
// results (even just-completed successes) may be dropped rather than
// block on a departed receiver — so a caller that needs to know which
// jobs finished should count received Indexes against len(jobs). The
// caller MUST either drain the channel or cancel ctx: abandoning the
// channel under a live context blocks the pool forever and keeps the
// remaining simulations running (to stop at the first failure, cancel
// ctx before breaking out — or just use RunAll, which handles all of
// this). Per-job failures arrive as JobResult.Err — the batch keeps
// going.
func (r *Runner) RunBatch(ctx context.Context, jobs []Job) <-chan JobResult {
	if r.grid != "" {
		return r.runGridBatch(ctx, jobs)
	}
	batch := make([]Job, len(jobs))
	copy(batch, jobs)
	total := len(batch)
	// The counter increments under the same mutex that serializes the
	// callback, so observers see Done strictly increasing.
	var progressMu sync.Mutex
	done := 0
	return parallel.Stream(ctx, total, r.workers, func(ctx context.Context, i int) JobResult {
		res, err := r.Run(ctx, batch[i])
		if r.progress != nil {
			progressMu.Lock()
			done++
			r.progress(Progress{Done: done, Total: total, Job: batch[i], Err: err})
			progressMu.Unlock()
		}
		return JobResult{Index: i, Job: batch[i], Result: res, Err: err}
	})
}

// RunAll executes the jobs like RunBatch but gathers the results back
// into job order, handling the streaming bookkeeping (index reassembly,
// dropped deliveries after cancellation) that every collecting caller
// would otherwise re-implement. Identical jobs — equal canonical hashes
// (Job.Hash) after the Runner's defaults resolve — are simulated once
// and the Result fanned out to every duplicate's slot, the in-process
// counterpart of the grid's content-addressed store (WithProgress
// callbacks consequently count unique jobs). The first real job failure
// cancels the remaining jobs and is returned as a *JobError naming the
// offending job; a cancelled ctx returns ctx.Err() without blaming any
// particular job. On error the results are nil.
func (r *Runner) RunAll(ctx context.Context, jobs []Job) ([]Result, error) {
	unique, groups := r.dedupe(jobs)
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	out := make([]Result, len(jobs))
	got := 0
	var firstErr error
	for jr := range r.RunBatch(runCtx, unique) {
		switch {
		case jr.Err == nil:
			for _, orig := range groups[jr.Index] {
				out[orig] = jr.Result
			}
			got++
		case firstErr == nil && !errors.Is(jr.Err, context.Canceled) && !errors.Is(jr.Err, context.DeadlineExceeded):
			firstErr = &JobError{Index: groups[jr.Index][0], Job: jr.Job, Err: jr.Err}
			cancel()
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if got != len(unique) {
		// Defensive: without cancellation every job must be delivered.
		return nil, fmt.Errorf("repro: batch incomplete: %d of %d unique jobs delivered", got, len(unique))
	}
	return out, nil
}

// dedupe groups jobs by the canonical hash they will run under (defaults
// resolved), returning the unique jobs and, per unique job, the original
// indexes it stands for. A job that cannot be hashed (a marshalling
// failure) stays unique so its error surfaces individually.
func (r *Runner) dedupe(jobs []Job) ([]Job, [][]int) {
	seen := make(map[string]int, len(jobs))
	unique := make([]Job, 0, len(jobs))
	groups := make([][]int, 0, len(jobs))
	for i, j := range jobs {
		key, err := r.withDefaults(j).Hash()
		if err != nil {
			key = fmt.Sprintf("unhashable:%d", i)
		}
		if u, ok := seen[key]; ok {
			groups[u] = append(groups[u], i)
			continue
		}
		seen[key] = len(unique)
		unique = append(unique, j)
		groups = append(groups, []int{i})
	}
	return unique, groups
}

// RunTraceFile simulates a recorded binary trace file (replayed cyclically
// until n uops commit) under the runner's cancellation rules.
func (r *Runner) RunTraceFile(ctx context.Context, cfg Config, pol Policy, path string, n uint64) (Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	uops, err := trace.Read(f)
	if err != nil {
		return Result{}, err
	}
	if len(uops) == 0 {
		return Result{}, fmt.Errorf("repro: empty trace %s", path)
	}
	sim, err := core.Acquire(cfg, pol, trace.NewSliceSource(uops))
	if err != nil {
		return Result{}, err
	}
	defer core.Release(sim)
	return sim.RunCtx(ctx, n)
}
