package repro

// Golden-result regression test: a small committed binary trace is
// replayed under a pinned set of jobs and the resulting metrics are
// compared field-by-field against testdata/golden.json. Refactors of the
// core loop, the steering engine or the power plumbing cannot silently
// drift simulation output — an intentional behaviour change regenerates
// the goldens with
//
//	go test -run TestGoldenResults -update .
//
// The goldens pin the exact integer counters (the simulation is
// deterministic) and the energy estimate within a small relative
// tolerance (float accumulation order). They are generated on
// linux/amd64, the CI architecture; architectures with different
// floating-point contraction rules may steer adaptive runs differently.

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/grid"
)

var update = flag.Bool("update", false, "rewrite the golden trace and results")

const (
	goldenTracePath = "testdata/golden.trace"
	goldenJSONPath  = "testdata/golden.json"
	goldenTraceUops = 1_500
	goldenRunUops   = 12_000
)

// goldenJobs is the pinned job set: one static rung per steering family
// plus each dynamic selector kind, all replaying the committed trace.
func goldenJobs(t *testing.T) []struct {
	Label  string
	Config Config
	Policy Policy
} {
	t.Helper()
	mk := func(name string) Policy {
		p, err := PolicyByName(name)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	return []struct {
		Label  string
		Config Config
		Policy Policy
	}{
		{"baseline", BaselineConfig(), PolicyBaseline()},
		{"full-static", HelperConfig(), mk("ir")},
		{"tournament", HelperConfig(), mk("dyn:tournament(cr,cp,ir,interval=2k,run=3)")},
		{"tournament-phased", HelperConfig(), mk("dyn:tournament(cr,cp,ir,interval=2k,run=3,phase=on)")},
		{"ucb-ipc", HelperConfig(), mk("dyn:ucb(cr,cp,ir,reward=ipc,interval=2k,c=1.4)")},
		{"ucb-ed2", HelperConfig(), mk("dyn:ucb(cr,cp,ir,reward=ed2,interval=2k,c=1.4)")},
	}
}

// goldenRung is the pinned slice of one usage row.
type goldenRung struct {
	Rung      string  `json:"rung"`
	Committed uint64  `json:"committed"`
	EnergyNJ  float64 `json:"energy_nj"`
}

// goldenRun is the pinned outcome of one job.
type goldenRun struct {
	Label         string       `json:"label"`
	Policy        string       `json:"policy"`
	Committed     uint64       `json:"committed"`
	WideCycles    uint64       `json:"wide_cycles"`
	SteeredHelper uint64       `json:"steered_helper"`
	CopiesCreated uint64       `json:"copies_created"`
	FatalFlushes  uint64       `json:"fatal_flushes"`
	SteeredSplit  uint64       `json:"steered_split"`
	EnergyNJ      float64      `json:"energy_nj"`
	Rungs         []goldenRung `json:"rungs,omitempty"`
}

// runGolden executes the pinned jobs against the committed trace.
func runGolden(t *testing.T) []goldenRun {
	t.Helper()
	var out []goldenRun
	for _, j := range goldenJobs(t) {
		r, err := RunTraceFile(j.Config, j.Policy, goldenTracePath, goldenRunUops)
		if err != nil {
			t.Fatalf("%s: %v", j.Label, err)
		}
		g := goldenRun{
			Label:         j.Label,
			Policy:        r.Policy,
			Committed:     r.Metrics.Committed,
			WideCycles:    r.Metrics.WideCycles,
			SteeredHelper: r.Metrics.SteeredHelper,
			CopiesCreated: r.Metrics.CopiesCreated,
			FatalFlushes:  r.Metrics.FatalFlushes,
			SteeredSplit:  r.Metrics.SteeredSplit,
			EnergyNJ:      EstimatePower(j.Config, r).EnergyNJ,
		}
		for _, u := range r.Rungs {
			g.Rungs = append(g.Rungs, goldenRung{Rung: u.Rung, Committed: u.Committed, EnergyNJ: u.EnergyNJ})
		}
		out = append(out, g)
	}
	return out
}

func TestGoldenResults(t *testing.T) {
	if *update {
		w := mustWorkload(t, "gcc")
		if err := os.MkdirAll(filepath.Dir(goldenTracePath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := WriteTraceFile(goldenTracePath, w, goldenTraceUops); err != nil {
			t.Fatal(err)
		}
		got := runGolden(t)
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenJSONPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s and %s", goldenTracePath, goldenJSONPath)
		return
	}

	compareGolden(t, runGolden(t), loadGolden(t))
}

// loadGolden reads the committed golden results.
func loadGolden(t *testing.T) []goldenRun {
	t.Helper()
	data, err := os.ReadFile(goldenJSONPath)
	if err != nil {
		t.Fatalf("missing goldens (run `go test -run TestGoldenResults -update .`): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	return want
}

// compareGolden checks a run set against the committed goldens with the
// exact-integer / tolerant-float rules described at the top of the file.
func compareGolden(t *testing.T, got, want []goldenRun) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("job set drifted: %d runs, goldens have %d (regenerate with -update)", len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.Label != w.Label || g.Policy != w.Policy {
			t.Errorf("run %d identity drifted: %s/%s vs golden %s/%s", i, g.Label, g.Policy, w.Label, w.Policy)
			continue
		}
		cmp := func(name string, got, want uint64) {
			if got != want {
				t.Errorf("%s: %s = %d, golden %d", g.Label, name, got, want)
			}
		}
		cmp("committed", g.Committed, w.Committed)
		cmp("wide_cycles", g.WideCycles, w.WideCycles)
		cmp("steered_helper", g.SteeredHelper, w.SteeredHelper)
		cmp("copies_created", g.CopiesCreated, w.CopiesCreated)
		cmp("fatal_flushes", g.FatalFlushes, w.FatalFlushes)
		cmp("steered_split", g.SteeredSplit, w.SteeredSplit)
		if !closeRel(g.EnergyNJ, w.EnergyNJ, 1e-9) {
			t.Errorf("%s: energy %g nJ, golden %g nJ", g.Label, g.EnergyNJ, w.EnergyNJ)
		}
		if len(g.Rungs) != len(w.Rungs) {
			t.Errorf("%s: %d usage rungs, golden %d", g.Label, len(g.Rungs), len(w.Rungs))
			continue
		}
		for k, u := range g.Rungs {
			if u.Rung != w.Rungs[k].Rung || u.Committed != w.Rungs[k].Committed {
				t.Errorf("%s rung %d: %s/%d, golden %s/%d",
					g.Label, k, u.Rung, u.Committed, w.Rungs[k].Rung, w.Rungs[k].Committed)
			}
			if !closeRel(u.EnergyNJ, w.Rungs[k].EnergyNJ, 1e-9) {
				t.Errorf("%s rung %d: energy %g, golden %g", g.Label, k, u.EnergyNJ, w.Rungs[k].EnergyNJ)
			}
		}
	}
}

// TestGoldenResultsGrid is the remote-execution golden gate: the pinned
// jobs travel as canonical Job JSON through a real grid — server, two
// worker processes' worth of in-process workers, lease protocol, NDJSON
// result stream — and the decoded Results must match the committed local
// goldens exactly, proving grid execution is bit-equivalent. A second
// submission must then be served entirely from the content-addressed
// store, still bit-equivalent.
func TestGoldenResultsGrid(t *testing.T) {
	if *update {
		t.Skip("goldens regenerate via TestGoldenResults -update")
	}
	want := loadGolden(t)

	srv := grid.NewServer(grid.WithLeaseTTL(5 * time.Second))
	ts := httptest.NewServer(srv)
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	// The worker side replays the committed trace, so the exec decodes
	// the wire Job and drives RunTraceFile — the same simulations the
	// local golden runs, behind the full wire protocol.
	exec := func(ctx context.Context, payload []byte) ([]byte, error) {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return nil, err
		}
		res, err := RunTraceFile(j.Config, j.Policy, goldenTracePath, j.N)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}
	for i := 0; i < 2; i++ {
		w := &grid.Worker{Server: ts.URL, Name: fmt.Sprintf("gold%d", i), Exec: exec,
			Parallel: 2, LeaseWait: 100 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}
	defer func() {
		wcancel()
		wg.Wait()
		ts.Close()
		srv.Close()
	}()

	jobs := goldenJobs(t)
	submit := func() []goldenRun {
		t.Helper()
		var tasks []grid.Task
		for i, j := range jobs {
			wire := Job{Name: j.Label, Config: j.Config, Policy: j.Policy, N: goldenRunUops}
			payload, err := json.Marshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, grid.Task{ID: fmt.Sprintf("%d", i), Hash: grid.HashBytes(payload), Payload: payload})
		}
		client := &grid.Client{Server: ts.URL}
		ch, err := client.Submit(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]Result{}
		for tr := range ch {
			if tr.Err != "" {
				t.Fatalf("grid golden task %s: %s", tr.ID, tr.Err)
			}
			var res Result
			if err := json.Unmarshal(tr.Payload, &res); err != nil {
				t.Fatalf("decoding grid golden result %s: %v", tr.ID, err)
			}
			byID[tr.ID] = res
		}
		var out []goldenRun
		for i, j := range jobs {
			r, ok := byID[fmt.Sprintf("%d", i)]
			if !ok {
				t.Fatalf("golden job %s never delivered", j.Label)
			}
			g := goldenRun{
				Label:         j.Label,
				Policy:        r.Policy,
				Committed:     r.Metrics.Committed,
				WideCycles:    r.Metrics.WideCycles,
				SteeredHelper: r.Metrics.SteeredHelper,
				CopiesCreated: r.Metrics.CopiesCreated,
				FatalFlushes:  r.Metrics.FatalFlushes,
				SteeredSplit:  r.Metrics.SteeredSplit,
				EnergyNJ:      EstimatePower(j.Config, r).EnergyNJ,
			}
			for _, u := range r.Rungs {
				g.Rungs = append(g.Rungs, goldenRung{Rung: u.Rung, Committed: u.Committed, EnergyNJ: u.EnergyNJ})
			}
			out = append(out, g)
		}
		return out
	}

	compareGolden(t, submit(), want)

	// Round two: all cache, still golden.
	misses := srv.Metrics().CacheMisses
	compareGolden(t, submit(), want)
	m := srv.Metrics()
	if m.CacheMisses != misses || m.CacheHits < uint64(len(jobs)) {
		t.Errorf("rerun was not served from the store: %+v", m)
	}
}

// TestGoldenResultsDiskRestart is the durability golden gate: the pinned
// jobs run through a grid server backed by an on-disk store, the server
// is then torn down SIGKILL-style (no store close, no flush — every Put
// must already be durable), and a fresh server on the same directory,
// with NO workers attached at all, must answer the resubmission 100%
// from the recovered cache, byte-identical to the committed goldens.
func TestGoldenResultsDiskRestart(t *testing.T) {
	if *update {
		t.Skip("goldens regenerate via TestGoldenResults -update")
	}
	want := loadGolden(t)
	dir := t.TempDir()

	exec := func(ctx context.Context, payload []byte) ([]byte, error) {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return nil, err
		}
		res, err := RunTraceFile(j.Config, j.Policy, goldenTracePath, j.N)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}

	jobs := goldenJobs(t)
	mkTasks := func() []grid.Task {
		t.Helper()
		var tasks []grid.Task
		for i, j := range jobs {
			wire := Job{Name: j.Label, Config: j.Config, Policy: j.Policy, N: goldenRunUops}
			payload, err := json.Marshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, grid.Task{ID: fmt.Sprintf("%d", i), Hash: grid.HashBytes(payload), Payload: payload})
		}
		return tasks
	}
	submit := func(url string) (map[string]Result, int) {
		t.Helper()
		client := &grid.Client{Server: url}
		ch, err := client.Submit(context.Background(), mkTasks())
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]Result{}
		cached := 0
		for tr := range ch {
			if tr.Err != "" {
				t.Fatalf("grid golden task %s: %s", tr.ID, tr.Err)
			}
			if tr.Cached {
				cached++
			}
			var res Result
			if err := json.Unmarshal(tr.Payload, &res); err != nil {
				t.Fatalf("decoding grid golden result %s: %v", tr.ID, err)
			}
			byID[tr.ID] = res
		}
		return byID, cached
	}
	toGolden := func(byID map[string]Result) []goldenRun {
		t.Helper()
		var out []goldenRun
		for i, j := range jobs {
			r, ok := byID[fmt.Sprintf("%d", i)]
			if !ok {
				t.Fatalf("golden job %s never delivered", j.Label)
			}
			g := goldenRun{
				Label:         j.Label,
				Policy:        r.Policy,
				Committed:     r.Metrics.Committed,
				WideCycles:    r.Metrics.WideCycles,
				SteeredHelper: r.Metrics.SteeredHelper,
				CopiesCreated: r.Metrics.CopiesCreated,
				FatalFlushes:  r.Metrics.FatalFlushes,
				SteeredSplit:  r.Metrics.SteeredSplit,
				EnergyNJ:      EstimatePower(j.Config, r).EnergyNJ,
			}
			for _, u := range r.Rungs {
				g.Rungs = append(g.Rungs, goldenRung{Rung: u.Rung, Committed: u.Committed, EnergyNJ: u.EnergyNJ})
			}
			out = append(out, g)
		}
		return out
	}

	// Round one: disk-backed server plus workers, simulated for real.
	st, err := grid.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := grid.NewServer(grid.WithLeaseTTL(5*time.Second), grid.WithStorage(st))
	ts := httptest.NewServer(srv)
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &grid.Worker{Server: ts.URL, Name: fmt.Sprintf("dgold%d", i), Exec: exec,
			Parallel: 2, LeaseWait: 100 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}
	byID, _ := submit(ts.URL)
	compareGolden(t, toGolden(byID), want)

	// SIGKILL-equivalent stop: workers and server vanish, the store is
	// never closed.
	wcancel()
	wg.Wait()
	ts.Close()
	srv.Close()

	// Round two: a cold server on the same directory, zero workers. Any
	// cache miss would queue forever, so a pass proves 100% hits.
	st2, err := grid.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := grid.NewServer(grid.WithStorage(st2))
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()
	byID2, cached := submit(ts2.URL)
	if cached != len(jobs) {
		t.Fatalf("restarted server served %d of %d jobs from cache, want all", cached, len(jobs))
	}
	if m := srv2.Metrics(); m.CacheMisses != 0 {
		t.Fatalf("restarted server re-simulated: %+v", m)
	}
	compareGolden(t, toGolden(byID2), want)
}

// TestGoldenResultsFederation is the federated golden gate of ROADMAP
// item 1: two federated servers — A hosting the shared store tier
// (disk-backed), B built on a RemoteStore pointing at A — where every
// worker hangs off B, so a batch submitted to A can only finish via
// work stealing. The results must stay byte-identical to the committed
// local goldens. Then B (workers and all) is torn down and the batch is
// resubmitted to A, which has ZERO workers: a pass proves the rerun is
// 100% served from the shared storage tier.
func TestGoldenResultsFederation(t *testing.T) {
	if *update {
		t.Skip("goldens regenerate via TestGoldenResults -update")
	}
	want := loadGolden(t)
	dir := t.TempDir()

	exec := func(ctx context.Context, payload []byte) ([]byte, error) {
		var j Job
		if err := json.Unmarshal(payload, &j); err != nil {
			return nil, err
		}
		res, err := RunTraceFile(j.Config, j.Policy, goldenTracePath, j.N)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	}

	// Reserve both members' addresses first: peer seeds, the RemoteStore
	// target and each Federation's self URL all need them before
	// anything serves.
	listen := func() (net.Listener, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		return l, "http://" + l.Addr().String()
	}
	lA, urlA := listen()
	lB, urlB := listen()
	serve := func(l net.Listener, fed *grid.Federation) *httptest.Server {
		ts := httptest.NewUnstartedServer(fed)
		ts.Listener.Close()
		ts.Listener = l
		ts.Start()
		return ts
	}

	// Member A: the shared store host. Stays up the whole test.
	stA, err := grid.OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer stA.Close()
	srvA := grid.NewServer(grid.WithLeaseTTL(5*time.Second), grid.WithStorage(stA))
	fedA := grid.NewFederation(srvA, urlA, []string{urlB},
		grid.WithAnnounceInterval(100*time.Millisecond),
		grid.WithStealInterval(50*time.Millisecond))
	tsA := serve(lA, fedA)
	defer func() {
		fedA.Close()
		tsA.Close()
		srvA.Close()
	}()

	// Member B: banks results through A's store, holds all the workers.
	srvB := grid.NewServer(grid.WithLeaseTTL(5*time.Second),
		grid.WithStorage(grid.NewRemoteStore(urlA)))
	fedB := grid.NewFederation(srvB, urlB, []string{urlA},
		grid.WithAnnounceInterval(100*time.Millisecond),
		grid.WithStealInterval(50*time.Millisecond))
	tsB := serve(lB, fedB)
	wctx, wcancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := &grid.Worker{Server: urlB, Name: fmt.Sprintf("fgold%d", i), Exec: exec,
			Parallel: 2, LeaseWait: 100 * time.Millisecond}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(wctx)
		}()
	}

	jobs := goldenJobs(t)
	mkTasks := func() []grid.Task {
		t.Helper()
		var tasks []grid.Task
		for i, j := range jobs {
			wire := Job{Name: j.Label, Config: j.Config, Policy: j.Policy, N: goldenRunUops}
			payload, err := json.Marshal(wire)
			if err != nil {
				t.Fatal(err)
			}
			tasks = append(tasks, grid.Task{ID: fmt.Sprintf("%d", i),
				Hash: grid.HashBytes(payload), Payload: payload, Profile: "p:golden"})
		}
		return tasks
	}
	submit := func(url string) (map[string]Result, int) {
		t.Helper()
		client := &grid.Client{Server: url}
		ch, err := client.Submit(context.Background(), mkTasks())
		if err != nil {
			t.Fatal(err)
		}
		byID := map[string]Result{}
		cached := 0
		for tr := range ch {
			if tr.Err != "" {
				t.Fatalf("federated golden task %s: %s", tr.ID, tr.Err)
			}
			if tr.Cached {
				cached++
			}
			var res Result
			if err := json.Unmarshal(tr.Payload, &res); err != nil {
				t.Fatalf("decoding federated golden result %s: %v", tr.ID, err)
			}
			byID[tr.ID] = res
		}
		return byID, cached
	}
	toGolden := func(byID map[string]Result) []goldenRun {
		t.Helper()
		var out []goldenRun
		for i, j := range jobs {
			r, ok := byID[fmt.Sprintf("%d", i)]
			if !ok {
				t.Fatalf("golden job %s never delivered", j.Label)
			}
			g := goldenRun{
				Label:         j.Label,
				Policy:        r.Policy,
				Committed:     r.Metrics.Committed,
				WideCycles:    r.Metrics.WideCycles,
				SteeredHelper: r.Metrics.SteeredHelper,
				CopiesCreated: r.Metrics.CopiesCreated,
				FatalFlushes:  r.Metrics.FatalFlushes,
				SteeredSplit:  r.Metrics.SteeredSplit,
				EnergyNJ:      EstimatePower(j.Config, r).EnergyNJ,
			}
			for _, u := range r.Rungs {
				g.Rungs = append(g.Rungs, goldenRung{Rung: u.Rung, Committed: u.Committed, EnergyNJ: u.EnergyNJ})
			}
			out = append(out, g)
		}
		return out
	}

	// Round one: submitted to A, which has no workers — every simulation
	// must travel to B by work stealing — and still golden.
	byID, _ := submit(urlA)
	compareGolden(t, toGolden(byID), want)
	if srvA.Metrics().StealsOut == 0 {
		t.Error("no steals recorded: the federation never moved the work")
	}

	// Kill member B — workers, federation, server — then resubmit to A.
	// A has zero workers, so a pass proves 100% shared-store hits.
	wcancel()
	wg.Wait()
	fedB.Close()
	tsB.Close()
	srvB.Close()

	byID2, cached := submit(urlA)
	if cached != len(jobs) {
		t.Fatalf("post-kill rerun served %d of %d jobs from the shared store, want all", cached, len(jobs))
	}
	compareGolden(t, toGolden(byID2), want)
}

// closeRel reports a ≈ b within relative tolerance (absolute near zero).
func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	den := math.Max(math.Abs(a), math.Abs(b))
	if den < 1 {
		return math.Abs(a-b) <= tol
	}
	return math.Abs(a-b)/den <= tol
}
