// Package report renders experiment results: aligned text tables, CSV, and
// ASCII curves for the Figure 14 style speedup distributions.
package report

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Table is a labeled grid of float values.
type Table struct {
	Title   string
	Columns []string // value column headers (row label column excluded)
	rows    []row
	// Precision is the number of decimals rendered (default 2).
	Precision int
}

type row struct {
	label  string
	values []float64
}

// NewTable creates a table with the given title and value columns.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns, Precision: 2}
}

// AddRow appends a row; the number of values must match the columns.
func (t *Table) AddRow(label string, values ...float64) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("report: row %q has %d values for %d columns", label, len(values), len(t.Columns)))
	}
	t.rows = append(t.rows, row{label: label, values: values})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Value returns the cell at (row, col).
func (t *Table) Value(r, c int) float64 { return t.rows[r].values[c] }

// Label returns the label of row r.
func (t *Table) Label(r int) string { return t.rows[r].label }

// ColumnMean returns the arithmetic mean of a column.
func (t *Table) ColumnMean(c int) float64 {
	if len(t.rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range t.rows {
		sum += r.values[c]
	}
	return sum / float64(len(t.rows))
}

// AddMeanRow appends an "AVG" row of column means (the figures' AVG bars).
func (t *Table) AddMeanRow() {
	means := make([]float64, len(t.Columns))
	n := len(t.rows)
	for c := range t.Columns {
		means[c] = t.ColumnMean(c)
	}
	if n > 0 {
		t.rows = append(t.rows, row{label: "AVG", values: means})
	}
}

// Render produces an aligned text rendering.
func (t *Table) Render() string {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
		sb.WriteString(strings.Repeat("-", len(t.Title)))
		sb.WriteByte('\n')
	}
	labelW := 5
	for _, r := range t.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	colW := make([]int, len(t.Columns))
	cells := make([][]string, len(t.rows))
	for i, r := range t.rows {
		cells[i] = make([]string, len(r.values))
		for c, v := range r.values {
			cells[i][c] = fmt.Sprintf("%.*f", t.Precision, v)
		}
	}
	for c, h := range t.Columns {
		colW[c] = len(h)
		for i := range cells {
			if len(cells[i][c]) > colW[c] {
				colW[c] = len(cells[i][c])
			}
		}
	}
	fmt.Fprintf(&sb, "%-*s", labelW, "")
	for c, h := range t.Columns {
		fmt.Fprintf(&sb, "  %*s", colW[c], h)
	}
	sb.WriteByte('\n')
	for i, r := range t.rows {
		fmt.Fprintf(&sb, "%-*s", labelW, r.label)
		for c := range r.values {
			fmt.Fprintf(&sb, "  %*s", colW[c], cells[i][c])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CSV produces a comma-separated rendering.
func (t *Table) CSV() string {
	var sb strings.Builder
	sb.WriteString("name")
	for _, h := range t.Columns {
		sb.WriteByte(',')
		sb.WriteString(h)
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		sb.WriteString(r.label)
		for _, v := range r.values {
			fmt.Fprintf(&sb, ",%g", v)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Series is an ordered sequence of values (the Figure 14 S-curve).
type Series struct {
	Name   string
	Values []float64
}

// Sorted returns a copy of the series sorted ascending.
func (s Series) Sorted() Series {
	v := append([]float64(nil), s.Values...)
	sort.Float64s(v)
	return Series{Name: s.Name, Values: v}
}

// Mean returns the arithmetic mean.
func (s Series) Mean() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range s.Values {
		sum += v
	}
	return sum / float64(len(s.Values))
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of the sorted values.
func (s Series) Quantile(q float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	v := s.Sorted().Values
	idx := q * float64(len(v)-1)
	lo := int(math.Floor(idx))
	hi := int(math.Ceil(idx))
	if lo == hi {
		return v[lo]
	}
	frac := idx - float64(lo)
	return v[lo]*(1-frac) + v[hi]*frac
}

// Curve renders the sorted series as an ASCII plot with the given width
// and height (the Figure 14 right panel).
func (s Series) Curve(width, height int) string {
	if width < 2 || height < 2 || len(s.Values) == 0 {
		return ""
	}
	v := s.Sorted().Values
	min, max := v[0], v[len(v)-1]
	if max == min {
		max = min + 1
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x := 0; x < width; x++ {
		idx := x * (len(v) - 1) / (width - 1)
		y := int(float64(height-1) * (v[idx] - min) / (max - min))
		grid[height-1-y][x] = '*'
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s  (min %.2f, mean %.2f, max %.2f, n=%d)\n",
		s.Name, min, s.Mean(), max, len(v))
	for _, line := range grid {
		sb.WriteString(string(line))
		sb.WriteByte('\n')
	}
	return sb.String()
}
