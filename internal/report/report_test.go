package report

import (
	"strings"
	"testing"
)

func TestTableBasics(t *testing.T) {
	tb := NewTable("Demo", "a", "b")
	tb.AddRow("x", 1.5, 2.25)
	tb.AddRow("y", 3, 4)
	if tb.Rows() != 2 || tb.Value(1, 1) != 4 || tb.Label(0) != "x" {
		t.Fatal("accessors wrong")
	}
	if got := tb.ColumnMean(0); got != 2.25 {
		t.Errorf("mean = %f", got)
	}
	tb.AddMeanRow()
	if tb.Rows() != 3 || tb.Label(2) != "AVG" {
		t.Error("mean row wrong")
	}
	out := tb.Render()
	for _, want := range []string{"Demo", "a", "b", "x", "1.50", "AVG"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableMismatchedRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched row must panic")
		}
	}()
	NewTable("t", "a").AddRow("x", 1, 2)
}

func TestCSV(t *testing.T) {
	tb := NewTable("t", "col")
	tb.AddRow("r", 0.5)
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "name,col\n") || !strings.Contains(csv, "r,0.5") {
		t.Errorf("csv wrong:\n%s", csv)
	}
}

func TestEmptyTableMean(t *testing.T) {
	tb := NewTable("t", "col")
	if tb.ColumnMean(0) != 0 {
		t.Error("empty mean must be 0")
	}
	tb.AddMeanRow()
	if tb.Rows() != 0 {
		t.Error("mean row on empty table must be a no-op")
	}
}

func TestSeries(t *testing.T) {
	s := Series{Name: "demo", Values: []float64{3, 1, 2}}
	sorted := s.Sorted()
	if sorted.Values[0] != 1 || sorted.Values[2] != 3 {
		t.Error("sort wrong")
	}
	if s.Values[0] != 3 {
		t.Error("Sorted must not mutate the original")
	}
	if s.Mean() != 2 {
		t.Errorf("mean = %f", s.Mean())
	}
	if got := s.Quantile(0.5); got != 2 {
		t.Errorf("median = %f", got)
	}
	if got := s.Quantile(0); got != 1 {
		t.Errorf("q0 = %f", got)
	}
	if got := s.Quantile(1); got != 3 {
		t.Errorf("q1 = %f", got)
	}
}

func TestSeriesEmpty(t *testing.T) {
	var s Series
	if s.Mean() != 0 || s.Quantile(0.5) != 0 {
		t.Error("empty series stats must be 0")
	}
	if s.Curve(40, 8) != "" {
		t.Error("empty curve must be empty")
	}
}

func TestCurve(t *testing.T) {
	s := Series{Name: "spd", Values: make([]float64, 100)}
	for i := range s.Values {
		s.Values[i] = float64(i) / 10
	}
	out := s.Curve(40, 8)
	if !strings.Contains(out, "spd") || !strings.Contains(out, "*") {
		t.Errorf("curve wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 9 { // header + 8 rows
		t.Errorf("curve has %d lines", len(lines))
	}
	// Constant series must not divide by zero.
	flat := Series{Name: "flat", Values: []float64{5, 5, 5}}
	if flat.Curve(10, 4) == "" {
		t.Error("flat curve must render")
	}
}
