package core

// Tests for the paper's proposed extensions implemented beyond the core
// evaluation: configurable helper datapath width (§2.1) and
// block-granularity instruction splitting (§3.7).

import (
	"testing"

	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/workload"
)

func TestWiderHelperSteersMore(t *testing.T) {
	prof, _ := workload.SpecIntByName("crafty")
	run := func(bits int) Result {
		cfg := config.WithHelper()
		cfg.HelperWidthBits = bits
		sim := MustNew(cfg, steer.FCR(), prof.MustStream())
		return sim.RunWarm(40000, 8000)
	}
	r8 := run(8)
	r16 := run(16)
	// §2.1: "more narrow instructions would be executed in the narrow
	// cluster" with a wider datapath.
	if r16.Metrics.SteeredHelper <= r8.Metrics.SteeredHelper {
		t.Errorf("16-bit helper must steer more: %d vs %d",
			r16.Metrics.SteeredHelper, r8.Metrics.SteeredHelper)
	}
	// Wider datapath also means fewer fatal width mispredictions: more
	// values fit.
	if r16.Metrics.FatalFlushes > r8.Metrics.FatalFlushes {
		t.Errorf("16-bit helper should not increase fatal flushes: %d vs %d",
			r16.Metrics.FatalFlushes, r8.Metrics.FatalFlushes)
	}
}

func TestHelperWidthValidation(t *testing.T) {
	cfg := config.WithHelper()
	cfg.HelperWidthBits = 12
	if err := cfg.Validate(); err == nil {
		t.Error("12-bit helper width must be rejected")
	}
	for _, bits := range []int{8, 16, 24} {
		cfg.HelperWidthBits = bits
		if err := cfg.Validate(); err != nil {
			t.Errorf("%d-bit width must validate: %v", bits, err)
		}
	}
}

func TestBlockSplittingRuns(t *testing.T) {
	prof, _ := workload.SpecIntByName("eon")
	runPol := func(pol steer.Features) Result {
		sim := MustNew(config.WithHelper(), pol, prof.MustStream())
		return sim.RunWarm(40000, 8000)
	}
	rIR := runPol(steer.FIR())
	rBlk := runPol(steer.FIRBlock())
	if rBlk.Metrics.Committed < 40000 {
		t.Fatalf("block splitting run incomplete: %d", rBlk.Metrics.Committed)
	}
	// Block mode extends each triggered split across the following
	// window, so when splitting happens at all it splits at least as
	// many uops.
	if rIR.Metrics.SteeredSplit > 0 && rBlk.Metrics.SteeredSplit < rIR.Metrics.SteeredSplit {
		t.Errorf("block mode must split at least as much: %d vs %d",
			rBlk.Metrics.SteeredSplit, rIR.Metrics.SteeredSplit)
	}
	if rBlk.Policy != "8_8_8+BR+LR+CR+CP+IRblk" {
		t.Errorf("policy name = %s", rBlk.Policy)
	}
}

func TestSplitDestinationChainsInHelper(t *testing.T) {
	// With the destination mapped to the last split piece, a split's
	// value must be consumable without deadlock from both clusters.
	prof, _ := workload.SpecIntByName("gap")
	sim := MustNew(config.WithHelper(), steer.FIRBlock(), prof.MustStream())
	r := sim.RunWarm(30000, 5000)
	if r.Metrics.Committed < 30000 {
		t.Fatalf("committed %d", r.Metrics.Committed)
	}
}
