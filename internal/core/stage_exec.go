package core

import (
	"repro/internal/bitwidth"
	"repro/internal/isa"
)

// issueCluster selects up to the cluster's issue width of ready entries,
// oldest first, and schedules their execution.
func (s *Sim) issueCluster(c uint8) {
	if c == helper && !s.cfg.HelperEnabled {
		s.readyUnissued[helper] = 0
		s.spareSlots[helper] = 0
		return
	}
	budget := s.cfg.WideIssue
	if c == helper {
		budget = s.cfg.HelperIssue
	}
	if !s.iqDirty[c] && s.tick < s.iqWake[c] {
		// Nothing relevant changed since a scan that proved no entry
		// ready, and the earliest blocking availability is still in the
		// future: publish exactly what the empty scan would have.
		s.readyUnissued[c] = 0
		s.spareSlots[c] = budget
		return
	}
	s.iqDirty[c] = false
	q := s.iq[c]
	entries := q.Entries()
	take := s.issueScratch[:0]
	prefs := s.prefScratch[:0]
	readyLeft := 0
	minBlock := never
	// One fused scan does the work of the old demand pass, prefetch pass
	// and NREADY pass. Demand work has priority over prefetched copies —
	// speculative transfers must not displace real instructions — so ready
	// prefetch entries are only remembered here and issued from whatever
	// budget remains afterwards. Readiness is static within a tick (issue
	// never lowers an availability time below the current tick), so the
	// fused selection is identical to the multi-pass one. The scan runs
	// entirely on the hot arrays with every indirection hoisted into
	// locals; the cold entry is touched only on actual issue (or for the
	// NREADY kind filter once issue bandwidth is exhausted).
	head, tick, mask := s.rob.Head(), s.tick, s.robMask
	avail := s.hotAvail[c]
	for i, pos := range entries {
		hi := pos & mask
		if nd := s.hotNdeps[hi]; nd != 0 {
			deps := &s.hotDeps[hi]
			ready := true
			for k := uint8(0); k < nd; k++ {
				if p := deps[k]; p >= head {
					if a := avail[p&mask]; a > tick {
						ready = false
						if a < minBlock {
							minBlock = a
						}
						break
					}
				}
			}
			if !ready {
				continue
			}
		}
		if s.hotPref[hi] {
			prefs = append(prefs, i)
			continue
		}
		if budget > 0 {
			s.issueEntry(pos, s.rob.At(pos))
			take = append(take, i)
			budget--
			continue
		}
		// NREADY (§3.7): ready but unissued; count entries the other
		// cluster could in principle have executed (splittable ALU work
		// for wide→narrow, anything non-copy for narrow→wide).
		e := s.rob.At(pos)
		if c == wide {
			if e.kind == kindReal && e.u.Class == isa.ClassALU {
				readyLeft++
			}
		} else if e.kind != kindCopy {
			readyLeft++
		}
	}
	for _, i := range prefs {
		if budget == 0 {
			break
		}
		pos := entries[i]
		s.issueEntry(pos, s.rob.At(pos))
		take = insertSorted(take, i)
		budget--
	}
	if len(take) == 0 && len(prefs) == 0 {
		s.iqWake[c] = minBlock // nothing ready: sleep until a dep can mature
	} else {
		s.iqWake[c] = 0
	}
	s.prefScratch = prefs[:0]
	q.RemoveIndexes(take)
	s.issueScratch = take[:0]
	s.m.Issues[c] += uint64(len(take))
	s.readyUnissued[c] = readyLeft
	s.spareSlots[c] = budget
}

// insertSorted inserts v into an ascending slice of indexes.
func insertSorted(s []int, v int) []int {
	i := len(s)
	for i > 0 && s[i-1] > v {
		i--
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// issueFP issues from the wide cluster's FP scheduler.
func (s *Sim) issueFP() {
	budget := s.cfg.FPIssue
	take := s.issueScratch[:0]
	for i, pos := range s.fpIQ.Entries() {
		if budget == 0 {
			break
		}
		if !s.entryReadyAt(pos, wide) {
			continue
		}
		s.issueEntry(pos, s.rob.At(pos))
		take = append(take, i)
		budget--
	}
	s.fpIQ.RemoveIndexes(take)
	s.issueScratch = take[:0]
	s.m.FPOps += uint64(len(take))
}

// issueEntry schedules the entry's execution and advertises its result
// availability (full bypass within a cluster: dependents may issue on the
// completion tick).
func (s *Sim) issueEntry(pos uint64, e *robEntry) {
	// Availability writes below can mature dependents in either cluster.
	s.iqDirty[wide], s.iqDirty[helper] = true, true
	i := pos & s.robMask
	s.hotState[i] = stExecuting
	s.m.RFReads[e.cluster] += uint64(s.hotNdeps[i])
	s.m.IssueWaitTicks[e.cluster] += uint64(s.tick - e.renameTick)

	cyc := s.ticksPer(e.cluster)
	var done int64
	switch {
	case e.kind == kindCopy:
		// Read in the holding cluster, transfer across.
		done = s.tick + cyc + s.wideTicks(s.cfg.CopyLatency)
		s.hotAvail[e.copyTarget][i] = done
		if e.copySrc >= s.rob.Head() {
			si := e.copySrc & s.robMask
			if s.hotAvail[e.copyTarget][si] > done {
				s.hotAvail[e.copyTarget][si] = done
			}
		}
	case e.isLoad:
		lat := cyc * int64(s.cfg.AGULatency)
		if s.mob.Forward(pos, e.u.MemAddr, e.u.MemSize) {
			lat += s.wideTicks(s.cfg.ForwardLat)
		} else {
			lat += s.wideTicks(s.mem.Access(e.u.MemAddr))
		}
		done = s.tick + lat
		s.hotAvail[wide][i] = done
		if e.replicated {
			s.hotAvail[helper][i] = done
		}
		s.m.AGUOps[e.cluster]++
	case e.isStore:
		done = s.tick + cyc*int64(s.cfg.AGULatency)
		s.m.AGUOps[e.cluster]++
	case e.isFP:
		done = s.tick + s.wideTicks(s.cfg.FPLatency)
		s.hotAvail[wide][i] = done
	case e.u.Class == isa.ClassMul:
		done = s.tick + s.wideTicks(s.cfg.MulLatency)
		s.hotAvail[wide][i] = done
		s.m.ALUOps[e.cluster]++
	case e.u.Class == isa.ClassDiv:
		done = s.tick + s.wideTicks(s.cfg.DivLatency)
		s.hotAvail[wide][i] = done
		s.m.ALUOps[e.cluster]++
	default: // ALU, branch, split piece
		done = s.tick + cyc
		s.hotAvail[e.cluster][i] = done
		s.m.ALUOps[e.cluster]++
	}
	s.hotDone[i] = done
	if done < s.execWake {
		s.execWake = done
	}
	s.executing = append(s.executing, pos)
}

// writeback completes due executions, performing the width checks that
// trigger fatal-misprediction flushes and resolving branches.
func (s *Sim) writeback() {
	if len(s.executing) == 0 || s.tick < s.execWake {
		return
	}
	keep := s.executing[:0]
	// The due list reuses a Sim-owned scratch slice: this runs every tick
	// and a per-tick allocation here (plus the sort.Slice closure it used
	// to feed) dominated the simulator's entire allocation profile.
	due := s.dueScratch[:0]
	head, tail := s.rob.Head(), s.rob.Tail()
	for _, pos := range s.executing {
		if pos < head || pos >= tail {
			continue // squashed
		}
		i := pos & s.robMask
		if s.hotState[i] != stExecuting {
			continue
		}
		if s.hotDone[i] <= s.tick {
			due = append(due, pos)
		} else {
			keep = append(keep, pos)
		}
	}
	s.executing = keep
	s.dueScratch = due
	// The surviving in-flight entries all complete strictly later; skip
	// the scan until the earliest of them is due. Issue keeps this in
	// sync, and squashed stragglers are filtered on the next real scan.
	next := never
	for _, pos := range keep {
		if d := s.hotDone[pos&s.robMask]; d < next {
			next = d
		}
	}
	s.execWake = next
	if len(due) == 0 {
		return
	}
	sortPositions(due)
	for _, pos := range due {
		if pos < s.rob.Head() || pos >= s.rob.Tail() {
			continue // flushed by an earlier completion this tick
		}
		e := s.rob.At(pos)
		if s.hotState[pos&s.robMask] != stExecuting {
			continue
		}
		s.completeEntry(pos, e)
	}
}

// sortPositions is an allocation-free ascending insertion sort; the due
// list is a handful of entries (bounded by issue bandwidth × latency
// spread), where insertion sort beats a general sort anyway.
func sortPositions(a []uint64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i
		for j > 0 && a[j-1] > v {
			a[j] = a[j-1]
			j--
		}
		a[j] = v
	}
}

// narrowValue reports whether v fits the configured helper datapath.
func (s *Sim) narrowValue(v uint32) bool {
	return bitwidth.IsNarrowAt(v, s.helperWidth)
}

// actualNarrowResult reports whether the uop's produced value fits the
// helper datapath.
func (s *Sim) actualNarrowResult(u *isa.Uop) bool { return s.narrowValue(u.DstVal) }

// fatalWidth checks a helper-steered real uop at writeback: under 8_8_8
// every source and the result must really be narrow; under CR the carry
// must really be contained. A violation squashes from this uop (§3.2).
func (s *Sim) fatalWidth(e *robEntry) bool {
	u := &e.u
	w := s.helperWidth
	if e.steered888 {
		for i := 0; i < int(u.NSrc); i++ {
			if u.SrcReg[i] == isa.RegNone {
				continue
			}
			if !bitwidth.IsNarrowAt(u.SrcVal[i], w) {
				return true
			}
		}
		if (u.HasDest() || u.WritesFlags) && !s.actualNarrowResult(u) {
			return true
		}
		return false
	}
	if e.crSteered {
		if e.isLoad {
			wideSrc, ok := bitwidth.CRShapeAt(u.SrcVal[0], u.SrcVal[1], u.MemAddr, w)
			return !ok || !bitwidth.CarryNotPropagatedAt(wideSrc, u.MemAddr, w)
		}
		b := u.SrcVal[1]
		if u.NSrc < 2 && u.HasImm {
			b = u.Imm
		}
		return !bitwidth.CRCheckAt(u.Op, u.SrcVal[0], b, u.DstVal, w)
	}
	return false
}

// completeEntry finishes one execution: fatal width checks, predictor
// training, width-table writeback, and branch resolution.
func (s *Sim) completeEntry(pos uint64, e *robEntry) {
	if e.kind == kindReal && e.cluster == helper && s.fatalWidth(e) {
		// Fatal width misprediction: train the predictor on the truth,
		// force this uop wide, flush and refetch from it (§3.2).
		s.trainWidth(pos, e, false)
		s.m.WidthFatal++
		s.m.FatalFlushes++
		if s.forcedWide == nil {
			s.forcedWide = make(map[uint64]struct{})
		}
		s.forcedWide[e.seq] = struct{}{}
		s.flushFrom(pos, e.seq, s.cfg.FatalFlushPenalty)
		return
	}

	s.hotState[pos&s.robMask] = stDone
	if e.definedReg != isa.RegNone || e.definedFlags {
		s.m.RFWrites[e.cluster]++
	}

	switch e.kind {
	case kindReal:
		s.trainWidth(pos, e, true)
		if e.u.Class == isa.ClassBranch {
			s.m.BranchResolveTicks += uint64(s.tick - e.renameTick)
			// Counters train at resolution, under the prediction-time
			// history (commit-time training lags too far behind tight
			// loops).
			s.bp.Train(e.u.PC, e.ghr, e.u.Taken, e.u.Target)
			if !e.predCorrect {
				// The frontend has been fetching the wrong path since
				// this branch renamed; redirect costs the refill
				// penalty from resolution (§3.1's deep P4-like pipe).
				s.m.BranchMispredicts++
				if until := s.tick + s.wideTicks(s.cfg.MispredictPenalty); until > s.fetchStallUntil {
					s.fetchStallUntil = until
				}
				if s.pendingBranch == int64(pos) {
					s.pendingBranch = -1
				}
				s.tc.Redirect()
			}
		}
	default:
		// Split destination copies install the actual width when they
		// deliver the assembled value.
		if e.definedReg != isa.RegNone {
			s.table.Writeback(e.definedReg, int64(pos), s.narrowValue(e.u.DstVal))
		}
		if e.definedFlags {
			s.table.Writeback(isa.RegFlags, int64(pos), s.narrowValue(e.u.DstVal))
		}
	}
}

// trainWidth updates the width predictor, the rename width table and the
// CR carry bit with the actual outcome, and classifies the prediction for
// the Figure 5 accuracy study when classify is set.
func (s *Sim) trainWidth(pos uint64, e *robEntry, classify bool) {
	u := &e.u
	hasResult := (u.HasDest() || u.WritesFlags) &&
		u.Class != isa.ClassFP && u.Class != isa.ClassStore && !u.Class.IsControl()
	if hasResult {
		actual := s.actualNarrowResult(u)
		s.wp.UpdateResult(u.PC, actual)
		if e.definedReg != isa.RegNone {
			s.table.Writeback(e.definedReg, int64(pos), actual)
		}
		if e.definedFlags {
			s.table.Writeback(isa.RegFlags, int64(pos), actual)
		}
		if classify && e.widthClassify {
			if e.widthPredNarrow == actual {
				s.m.WidthCorrect++
			} else {
				s.m.WidthNonFatal++
			}
		}
	}

	// CR carry-bit training (§3.5): set at writeback when the 8-32-32
	// preconditions hold and the carry stayed contained. Gated by the
	// rung that steered this uop (the active rung may have moved on).
	if e.trainCR {
		switch u.Class {
		case isa.ClassALU:
			if u.NSrc >= 1 && bitwidth.CREligibleOp(u.Op) {
				b := u.SrcVal[1]
				if u.NSrc < 2 {
					if !u.HasImm {
						return
					}
					b = u.Imm
				}
				s.wp.UpdateCarry(u.PC, bitwidth.CRCheckAt(u.Op, u.SrcVal[0], b, u.DstVal, s.helperWidth))
			}
		case isa.ClassLoad, isa.ClassStore:
			wideSrc, ok := bitwidth.CRShapeAt(u.SrcVal[0], u.SrcVal[1], u.MemAddr, s.helperWidth)
			s.wp.UpdateCarry(u.PC, ok && bitwidth.CarryNotPropagatedAt(wideSrc, u.MemAddr, s.helperWidth))
		}
	}
}

// flushFrom squashes all entries at positions >= truncatePos, restores
// rename state, rewinds fetch to seq and applies the penalty bubble.
func (s *Sim) flushFrom(truncatePos uint64, seq uint64, penaltyWideCycles int) {
	for p := s.rob.Tail(); p > truncatePos; p-- {
		e := s.rob.At(p - 1)
		if e.kind == kindCopy && e.copySrc >= s.rob.Head() && e.copySrc < truncatePos {
			// The producer survives: allow a future demand copy.
			s.rob.At(e.copySrc).hasCopyTo[e.copyTarget] = false
		}
		if e.crBorrow >= 0 {
			s.prf.Unborrow(e.crBorrow)
		}
		if e.definedFlags {
			s.table.Restore(isa.RegFlags, e.prevFlags)
		}
		if e.definedReg != isa.RegNone {
			s.table.Restore(e.definedReg, e.prevReg)
		}
		if e.definedFP != 0xFF {
			s.fpMap[e.definedFP] = e.prevFP
		}
		if e.physReg >= 0 {
			s.prf.Free(e.physReg)
		}
	}
	// Restore the branch-history checkpoint of the first squashed entry
	// so refetched branches predict under the history they originally
	// saw (no replay pollution).
	if truncatePos < s.rob.Tail() {
		s.bp.RestoreHistory(s.rob.At(truncatePos).ghr)
	}
	s.rob.TruncateTo(truncatePos)
	s.iq[wide].FlushFrom(truncatePos)
	s.iq[helper].FlushFrom(truncatePos)
	s.fpIQ.FlushFrom(truncatePos)
	s.mob.FlushFrom(truncatePos)

	s.iqDirty[wide], s.iqDirty[helper] = true, true
	s.fetchSeq = seq
	if until := s.tick + s.wideTicks(penaltyWideCycles); until > s.fetchStallUntil {
		s.fetchStallUntil = until
	}
	if s.pendingBranch >= int64(truncatePos) {
		s.pendingBranch = -1 // the wrong-path branch itself was squashed
	}
	s.tc.Redirect()
}
