package core

// Invariant tests for the per-rung attribution that adaptive policies
// accumulate at Observe granularity: the usage rows of Result.Rungs must
// jointly account for every measured commit, every measured wide cycle,
// and — via the interval energy estimates fed through Occupancy — the
// run's total power.Breakdown, across static and dynamic policies alike.

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/metrics"
	"repro/internal/power"
	"repro/internal/steer"
	"repro/internal/workload"
)

// mustPolicy resolves a policy name the test knows is registered.
func mustPolicy(t *testing.T, name string) steer.Policy {
	t.Helper()
	p, err := steer.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRungAttributionSumsAcrossPolicies(t *testing.T) {
	prof, _ := workload.SpecIntByName("gcc")
	const n, warm = 30_000, 5_000
	cases := []struct {
		pol     steer.Policy
		dynamic bool
	}{
		{steer.Baseline(), false},
		{steer.FCR(), false},
		{steer.FIR(), false},
		{mustPolicy(t, "dyn:tournament(cr,cp,ir,interval=2k,run=3)"), true},
		{mustPolicy(t, "dyn:tournament(cr,cp,ir,interval=2k,run=3,phase=on)"), true},
		{mustPolicy(t, "dyn:ucb(cr,cp,ir,irnd,reward=ipc,interval=2k,c=1.4)"), true},
		{mustPolicy(t, "dyn:ucb(cr,cp,ir,irnd,reward=ed2,interval=2k,c=1.4)"), true},
		{mustPolicy(t, "dyn:occupancy(ir,th=25,interval=2k)"), true},
	}
	for _, tc := range cases {
		cfg := config.WithHelper()
		if !tc.pol.NeedsHelper() {
			cfg = config.PentiumLikeBaseline()
		}
		sim := MustNew(cfg, tc.pol, prof.MustStream())
		r := sim.RunWarm(n, warm)
		checkInvariants(t, r, n)

		if !tc.dynamic {
			if len(r.Rungs) != 0 {
				t.Errorf("%s: static policy reported %d usage rungs", tc.pol.Name(), len(r.Rungs))
			}
			continue
		}
		if len(r.Rungs) == 0 {
			t.Errorf("%s: dynamic policy reported no usage breakdown", tc.pol.Name())
			continue
		}
		var uops, cycles uint64
		var energy float64
		for _, u := range r.Rungs {
			uops += u.Committed
			cycles += u.WideCycles
			energy += u.EnergyNJ
		}
		if uops != r.Metrics.Committed {
			t.Errorf("%s: rung usage attributes %d committed uops, run measured %d",
				tc.pol.Name(), uops, r.Metrics.Committed)
		}
		if cycles != r.Metrics.WideCycles {
			t.Errorf("%s: rung usage attributes %d wide cycles, run measured %d",
				tc.pol.Name(), cycles, r.Metrics.WideCycles)
		}
		// The interval energy estimates are linear in the event counters,
		// so their per-rung sum must reproduce the whole-run power
		// estimate up to float accumulation error.
		total := power.New(cfg).Estimate(&r.Metrics, r.L1, r.L2, r.TC).EnergyNJ
		if total <= 0 {
			t.Fatalf("%s: run estimated non-positive energy %g", tc.pol.Name(), total)
		}
		if rel := math.Abs(energy-total) / total; rel > 1e-9 {
			t.Errorf("%s: rung energy attribution sums to %g nJ, power model totals %g nJ (rel err %g)",
				tc.pol.Name(), energy, total, rel)
		}
	}
}

// TestPhaseAwareFeedbackReachesPolicy pins the core→policy plumbing: a
// dynamic run must deliver phase IDs, energy estimates and cost rates
// through Observe — not zero values.
func TestPhaseAwareFeedbackReachesPolicy(t *testing.T) {
	prof, _ := workload.SpecIntByName("bzip2")
	probe := &probePolicy{Features: steer.FCR(), ival: 2_000}
	sim := MustNew(config.WithHelper(), probe, prof.MustStream())
	sim.Run(30_000)
	if probe.observes == 0 {
		t.Fatal("policy saw no Observe calls")
	}
	if !probe.sawEnergy {
		t.Error("no interval delivered a positive energy estimate")
	}
	if !probe.sawCopies {
		t.Error("no interval delivered a positive copy rate (CR steering creates copies)")
	}
	// Phase IDs are small non-negative ints; 0 alone is legitimate for a
	// workload the detector sees as one phase, but a larger ID proves the
	// detector is live — either way the ID must stay within the bounded
	// phase table.
	if probe.maxPhase >= 16 {
		t.Errorf("phase ID %d escaped the detector's table bound", probe.maxPhase)
	}
}

// probePolicy steers like a fixed rung but records what Observe delivers.
type probePolicy struct {
	steer.Features
	ival      uint64
	observes  int
	sawEnergy bool
	sawCopies bool
	maxPhase  int
}

func (p *probePolicy) Decide(_ *isa.Uop, _ *steer.View) steer.Features { return p.Features }
func (p *probePolicy) Interval() uint64                                { return p.ival }
func (p *probePolicy) Observe(_ metrics.Metrics, occ steer.Occupancy) {
	p.observes++
	if occ.EnergyNJ > 0 {
		p.sawEnergy = true
	}
	if occ.CopyFrac > 0 {
		p.sawCopies = true
	}
	if occ.Phase > p.maxPhase {
		p.maxPhase = occ.Phase
	}
}
