// Package core implements the paper's primary contribution: the cycle-based
// timing model of a monolithic 32-bit out-of-order processor augmented with
// a 2×-clocked 8-bit helper cluster, together with the data-width aware
// steering engine (8_8_8, BR, LR, CR, CP, IR) and the copy-instruction
// inter-cluster communication scheme.
//
// Clocking: the simulator advances in ticks of the helper clock. The helper
// backend acts every tick; the frontend, wide backend, FP backend, commit
// and memory act every HelperClockRatio-th tick. All reported cycles (IPC)
// are wide-cluster cycles, matching the paper's baseline-relative speedups.
package core

import (
	"math"

	"repro/internal/isa"
	"repro/internal/rename"
)

// never marks an availability that has not been scheduled.
const never = int64(math.MaxInt64)

// entryKind distinguishes trace uops from simulator-synthesized ones.
type entryKind uint8

const (
	kindReal  entryKind = iota // a trace uop
	kindCopy                   // inter-cluster copy (PACT-99 scheme)
	kindSplit                  // IR split sub-uop (one byte slice)
)

// entryState is the lifecycle of a ROB entry.
type entryState uint8

const (
	stWaiting   entryState = iota // in an issue queue (or not yet issued)
	stExecuting                   // issued; completes at done
	stDone                        // result produced; awaiting commit
)

const maxDeps = 4

// blockSplitWindow is the number of subsequent eligible uops that follow a
// triggered split into the helper under block-granularity splitting
// (§3.7's proposed extension).
const blockSplitWindow = 12

// robEntry is one reorder-buffer entry: the cold per-entry metadata. The
// fields the wakeup/select and writeback scans read every cycle — state,
// completion tick, per-cluster availability, dependency list, prefetch
// flag — live in parallel struct-of-arrays storage on the Sim (hotState,
// hotDone, hotAvail, hotDeps/hotNdeps, hotPref, indexed by pos&robMask)
// so the scans walk dense arrays instead of striding over ~250-byte
// entries.
type robEntry struct {
	u             isa.Uop
	kind          entryKind
	cluster       uint8 // execution cluster
	seq           uint64
	countsAsInstr bool

	// Steering/width bookkeeping.
	steered888      bool // helper-steered under the all-narrow rule
	crSteered       bool // helper-steered under carry-width prediction
	widthPredNarrow bool // raw predictor call at rename (Figure 5 classes)
	widthClassify   bool // participates in Figure 5 classification
	splitHead       bool // first piece of an IR split (counts the steer)
	// trainCP/trainCR freeze the CP/CR training gates of the feature set
	// that steered this uop: under a dynamic policy the active rung may
	// change while the uop is in flight, and writeback/commit-time
	// predictor training must follow the rung that made the decision.
	trainCP bool
	trainCR bool

	// Rename undo/commit info.
	definedReg   uint8 // isa.RegNone when none
	prevReg      rename.Mapping
	definedFlags bool
	prevFlags    rename.Mapping
	definedFP    uint8 // 0xFF when none
	prevFP       int64
	physReg      int32
	prevPhys     int32
	crBorrow     int32

	// Copy bookkeeping.
	hasCopyTo  [2]bool // producer side: a copy toward cluster exists
	copySrc    uint64  // copy side: producer position
	copyTarget uint8   // copy side: destination cluster
	replicated bool    // LR: value lands in both register files

	// Branch bookkeeping.
	predCorrect bool
	// ghr is the global branch history at this entry's rename; flushes
	// restore it (checkpointed history, as real frontends do).
	ghr uint32
	// renameTick is when the entry was dispatched (latency studies).
	renameTick int64

	isLoad, isStore, isFP bool
}

// resetEntry initializes e for reuse in the ring (the hot SoA slot is
// reset separately by Sim.allocEntry).
func resetEntry(e *robEntry) {
	*e = robEntry{
		definedReg: isa.RegNone,
		definedFP:  0xFF,
		physReg:    -1,
		prevPhys:   -1,
		crBorrow:   -1,
	}
}
