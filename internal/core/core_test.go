package core

import (
	"testing"

	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/synth"
	"repro/internal/workload"
)

func runSim(t *testing.T, cfg config.Processor, f steer.Features, p synth.Params, n uint64) Result {
	t.Helper()
	src := synth.MustNewStream(p)
	sim, err := New(cfg, f, src)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Run(n)
}

func TestNewValidation(t *testing.T) {
	src := synth.MustNewStream(synth.DefaultParams())
	bad := config.PentiumLikeBaseline()
	bad.ROBSize = 100 // not a power of two
	if _, err := New(bad, steer.Baseline(), src); err == nil {
		t.Error("invalid config must be rejected")
	}
	// Steering features without the helper cluster are contradictory.
	if _, err := New(config.PentiumLikeBaseline(), steer.F888(), src); err == nil {
		t.Error("steering without helper must be rejected")
	}
}

func TestBaselineCompletesAndBalances(t *testing.T) {
	r := runSim(t, config.PentiumLikeBaseline(), steer.Baseline(), synth.DefaultParams(), 20000)
	m := r.Metrics
	// Commit is 6-wide; a run may overshoot by at most one commit group.
	if m.Committed < 20000 || m.Committed >= 20000+uint64(config.PentiumLikeBaseline().CommitWidth) {
		t.Fatalf("committed = %d", m.Committed)
	}
	if m.IPC() <= 0.2 || m.IPC() > 6 {
		t.Errorf("implausible baseline IPC %.2f", m.IPC())
	}
	if m.SteeredHelper != 0 || m.CopiesCreated != 0 {
		t.Errorf("baseline must not use the helper: steered=%d copies=%d", m.SteeredHelper, m.CopiesCreated)
	}
	if m.Issues[config.Helper] != 0 {
		t.Error("baseline helper cluster must never issue")
	}
}

func TestHelperSpeedsUpCalibratedWorkload(t *testing.T) {
	// crafty is a robust helper-cluster winner in the calibrated suite.
	prof, ok := workload.SpecIntByName("crafty")
	if !ok {
		t.Fatal("crafty profile missing")
	}
	base := core2(t, config.PentiumLikeBaseline(), steer.Baseline(), prof, 60000)
	full := core2(t, config.WithHelper(), steer.FCR(), prof, 60000)
	if full.Metrics.IPC() <= base.Metrics.IPC() {
		t.Errorf("helper cluster should speed up crafty: %.3f vs %.3f",
			full.Metrics.IPC(), base.Metrics.IPC())
	}
	if full.Metrics.SteeredHelper == 0 {
		t.Error("full policy must steer work to the helper")
	}
	if full.Metrics.CopiesCreated == 0 {
		t.Error("cross-cluster dataflow must generate copies")
	}
}

// core2 runs a calibrated workload profile with warmup.
func core2(t *testing.T, cfg config.Processor, f steer.Features, p workload.Profile, n uint64) Result {
	t.Helper()
	sim, err := New(cfg, f, p.MustStream())
	if err != nil {
		t.Fatal(err)
	}
	return sim.RunWarm(n, n/5)
}

// TestPolicyLadderShape checks the paper's qualitative ordering on the
// default workload: every policy beats the baseline, BR beats plain 8_8_8,
// and BR reduces the copy percentage (Figure 8); LR reduces it further
// (Figure 9).
func TestPolicyLadderShape(t *testing.T) {
	p := synth.DefaultParams()
	base := runSim(t, config.PentiumLikeBaseline(), steer.Baseline(), p, 40000)
	r888 := runSim(t, config.WithHelper(), steer.F888(), p, 40000)
	rBR := runSim(t, config.WithHelper(), steer.FBR(), p, 40000)
	rLR := runSim(t, config.WithHelper(), steer.FLR(), p, 40000)

	if r888.Metrics.IPC() <= base.Metrics.IPC() {
		t.Errorf("8_8_8 must beat baseline: %.3f vs %.3f", r888.Metrics.IPC(), base.Metrics.IPC())
	}
	if rBR.Metrics.IPC() <= r888.Metrics.IPC() {
		t.Errorf("BR must beat 8_8_8: %.3f vs %.3f", rBR.Metrics.IPC(), r888.Metrics.IPC())
	}
	if rBR.Metrics.CopyFrac() >= r888.Metrics.CopyFrac() {
		t.Errorf("BR must reduce copies (Figure 8): %.3f vs %.3f",
			rBR.Metrics.CopyFrac(), r888.Metrics.CopyFrac())
	}
	if rLR.Metrics.CopyFrac() > rBR.Metrics.CopyFrac() {
		t.Errorf("LR must not increase copies (Figure 9): %.3f vs %.3f",
			rLR.Metrics.CopyFrac(), rBR.Metrics.CopyFrac())
	}
	if rBR.Metrics.HelperFrac() <= r888.Metrics.HelperFrac() {
		t.Error("BR must steer more uops to the helper")
	}
}

func TestIRReducesImbalance(t *testing.T) {
	p := synth.DefaultParams()
	rCP := runSim(t, config.WithHelper(), steer.FCP(), p, 40000)
	rIR := runSim(t, config.WithHelper(), steer.FIR(), p, 40000)
	if rIR.Metrics.SteeredSplit == 0 {
		t.Fatal("IR must split instructions")
	}
	if rIR.Metrics.ImbalanceWideToNarrow() >= rCP.Metrics.ImbalanceWideToNarrow() {
		t.Errorf("IR must reduce wide-to-narrow NREADY imbalance (§3.7): %.3f vs %.3f",
			rIR.Metrics.ImbalanceWideToNarrow(), rCP.Metrics.ImbalanceWideToNarrow())
	}
	if rIR.Metrics.CopyFrac() <= rCP.Metrics.CopyFrac() {
		t.Error("split prefetch copies must raise the copy percentage (§3.7)")
	}
}

func TestIRTunedReducesCopies(t *testing.T) {
	p := synth.DefaultParams()
	rIR := runSim(t, config.WithHelper(), steer.FIR(), p, 40000)
	rT := runSim(t, config.WithHelper(), steer.FIRTuned(), p, 40000)
	if rT.Metrics.CopyFrac() >= rIR.Metrics.CopyFrac() {
		t.Errorf("the no-destination tuning must reduce copies (§3.7): %.3f vs %.3f",
			rT.Metrics.CopyFrac(), rIR.Metrics.CopyFrac())
	}
}

func TestConfidenceReducesFatalMispredictions(t *testing.T) {
	p := synth.DefaultParams()
	with := runSim(t, config.WithHelper(), steer.F888(), p, 40000)
	without := runSim(t, config.WithHelper(), steer.F888NoConfidence(), p, 40000)
	if without.Metrics.FatalFlushes <= with.Metrics.FatalFlushes {
		t.Errorf("the 2-bit confidence estimator must cut fatal mispredictions (§3.2): %d vs %d",
			with.Metrics.FatalFlushes, without.Metrics.FatalFlushes)
	}
}

func TestWidthAccuracyShape(t *testing.T) {
	r := runSim(t, config.WithHelper(), steer.F888(), synth.DefaultParams(), 40000)
	correct, nonFatal, fatal := r.Metrics.WidthAccuracy()
	if correct < 0.85 {
		t.Errorf("width prediction accuracy %.3f below the paper's ~93.5%% ballpark", correct)
	}
	if fatal > 0.03 {
		t.Errorf("fatal misprediction rate %.4f too high (paper: 0.83%%)", fatal)
	}
	if sum := correct + nonFatal + fatal; sum < 0.99 || sum > 1.01 {
		t.Errorf("classification fractions must sum to 1: %.3f", sum)
	}
}

func TestDeterminism(t *testing.T) {
	p := synth.DefaultParams()
	a := runSim(t, config.WithHelper(), steer.FCR(), p, 15000)
	b := runSim(t, config.WithHelper(), steer.FCR(), p, 15000)
	if a.Metrics != b.Metrics {
		t.Error("identical runs must produce identical metrics")
	}
}

func TestFatalFlushRecovery(t *testing.T) {
	// Low width locality forces frequent width flips and therefore fatal
	// mispredictions; the simulator must recover through all of them.
	p := synth.DefaultParams()
	p.WidthLocality = 0.5
	r := runSim(t, config.WithHelper(), steer.F888NoConfidence(), p, 30000)
	if r.Metrics.FatalFlushes == 0 {
		t.Fatal("expected fatal flushes under hostile width behaviour")
	}
	if r.Metrics.Committed < 30000 {
		t.Errorf("committed %d of 30000 under fatal pressure", r.Metrics.Committed)
	}
}

func TestTinyQueuesStillComplete(t *testing.T) {
	// §2.2 claims reduced issue queue size has small impact; at minimum
	// the machine must stay deadlock-free with tiny queues.
	cfg := config.WithHelper()
	cfg.WideIQ, cfg.HelperIQ, cfg.FPIQ = 8, 8, 4
	cfg.MOBSize = 4
	cfg.ROBSize = 32
	r := runSim(t, cfg, steer.FCR(), synth.DefaultParams(), 10000)
	if r.Metrics.Committed < 10000 {
		t.Errorf("committed %d of 10000 with tiny queues", r.Metrics.Committed)
	}
}

func TestHelperClockRatioMatters(t *testing.T) {
	p := synth.DefaultParams()
	fast := config.WithHelper()
	slow := config.WithHelper()
	slow.HelperClockRatio = 1
	rf := runSim(t, fast, steer.FCR(), p, 30000)
	rs := runSim(t, slow, steer.FCR(), p, 30000)
	if rf.Metrics.IPC() <= rs.Metrics.IPC() {
		t.Errorf("2x helper clock must beat 1x: %.3f vs %.3f", rf.Metrics.IPC(), rs.Metrics.IPC())
	}
}

func TestAllSpecProfilesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep")
	}
	for _, prof := range workload.SpecInt2000() {
		r := runSim(t, config.WithHelper(), steer.FIR(), prof.Params, 8000)
		if r.Metrics.Committed < 8000 {
			t.Errorf("%s: committed %d", prof.Name, r.Metrics.Committed)
		}
	}
}

func TestMemoryBoundWorkload(t *testing.T) {
	p := synth.DefaultParams()
	p.WorkingSet = 32 << 20
	p.StrideBytes = p.WorkingSet >> 12 // page-scale jumps across the set
	r := runSim(t, config.PentiumLikeBaseline(), steer.Baseline(), p, 30000)
	small := synth.DefaultParams()
	small.WorkingSet = 16 << 10
	r2 := runSim(t, config.PentiumLikeBaseline(), steer.Baseline(), small, 30000)
	if r.L1.MissRate() <= r2.L1.MissRate() {
		t.Errorf("big working set must miss more in L1: %.4f vs %.4f", r.L1.MissRate(), r2.L1.MissRate())
	}
	if r.Metrics.IPC() >= r2.Metrics.IPC() {
		t.Errorf("memory-bound run must be slower: %.3f vs %.3f", r.Metrics.IPC(), r2.Metrics.IPC())
	}
}
