package core

// Tests for the Policy interface integration: uniform helper-feature
// validation at New, dynamic policies driving a full simulation, usage
// breakdowns, and determinism of adaptive runs.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/synth"
	"repro/internal/workload"
)

// TestNewRejectsHelperFeaturesUniformly pins the validation contract:
// every helper-dependent feature is rejected without its prerequisites,
// not just Enable888.
func TestNewRejectsHelperFeaturesUniformly(t *testing.T) {
	src := func() *synth.Stream { return synth.MustNewStream(synth.DefaultParams()) }

	// Sub-schemes without the 8_8_8 base are contradictory on any machine.
	orphans := []steer.Features{
		{EnableBR: true},
		{EnableLR: true},
		{EnableCR: true},
		{EnableCP: true},
		{EnableIR: true},
		{IRNoDestOnly: true},
		{IRBlock: true},
	}
	for _, f := range orphans {
		for _, cfg := range []config.Processor{config.PentiumLikeBaseline(), config.WithHelper()} {
			if _, err := New(cfg, f, src()); err == nil {
				t.Errorf("New must reject %+v (sub-scheme without Enable888), helper=%v", f, cfg.HelperEnabled)
			}
		}
	}

	// Full feature sets without the helper cluster are rejected too —
	// including the dynamic policies, which steer by construction.
	noHelper := config.PentiumLikeBaseline()
	for _, pol := range []steer.Policy{
		steer.F888(), steer.FIR(), steer.DefaultTournament(), steer.DefaultOccAdaptive(),
	} {
		if _, err := New(noHelper, pol, src()); err == nil {
			t.Errorf("New must reject steering policy %s without the helper cluster", pol.Name())
		}
	}

	// The valid combinations still build.
	for _, pol := range []steer.Policy{
		steer.Baseline(), steer.FIRTuned(), steer.DefaultTournament(), steer.DefaultOccAdaptive(),
	} {
		cfg := config.PentiumLikeBaseline()
		if pol.NeedsHelper() {
			cfg = config.WithHelper()
		}
		if _, err := New(cfg, pol, src()); err != nil {
			t.Errorf("New(%s) failed: %v", pol.Name(), err)
		}
	}

	// A hand-assembled invalid stateful policy must come back as an
	// error, not a panic from the pre-run clone.
	bad := &steer.Tournament{Cands: []steer.Features{steer.F888()}, Ival: 10_000, RunIntervals: 4}
	if _, err := New(config.WithHelper(), bad, src()); err == nil {
		t.Error("New must reject an invalid tournament with an error")
	}

	// A nil policy means the baseline.
	sim, err := New(config.PentiumLikeBaseline(), nil, src())
	if err != nil {
		t.Fatalf("nil policy: %v", err)
	}
	if r := sim.Run(2000); r.Policy != "baseline" {
		t.Errorf("nil policy ran as %q", r.Policy)
	}
}

// shortTournament is a fast-adapting selector for test budgets.
func shortTournament(t *testing.T) *steer.Tournament {
	t.Helper()
	tr, err := steer.NewTournament(
		[]steer.Features{steer.FCP(), steer.FIR(), steer.FIRTuned()}, 1_000, 3)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestDynamicTournamentEndToEnd(t *testing.T) {
	prof, _ := workload.SpecIntByName("crafty")
	tr := shortTournament(t)
	sim := MustNew(config.WithHelper(), tr, prof.MustStream())
	const n = 30_000
	r := sim.RunWarm(n, 5_000)
	checkInvariants(t, r, n)

	if r.Policy != tr.Name() {
		t.Errorf("result policy %q, want %q", r.Policy, tr.Name())
	}
	if len(r.Rungs) != 3 {
		t.Fatalf("usage breakdown has %d rungs, want 3", len(r.Rungs))
	}
	var total, intervals uint64
	for _, u := range r.Rungs {
		total += u.Committed
		intervals += u.Intervals
	}
	if total != r.Metrics.Committed {
		t.Errorf("usage attributes %d committed uops, run measured %d (warmup usage must reset)",
			total, r.Metrics.Committed)
	}
	if intervals < 10 {
		t.Errorf("only %d feedback intervals over %d uops at interval 1000", intervals, n)
	}
	if r.Metrics.SteeredHelper == 0 {
		t.Error("dynamic selector over steering rungs must steer")
	}
}

func TestDynamicDeterminism(t *testing.T) {
	prof, _ := workload.SpecIntByName("gzip")
	run := func() Result {
		sim := MustNew(config.WithHelper(), shortTournament(t), prof.MustStream())
		return sim.RunWarm(15_000, 3_000)
	}
	a, b := run(), run()
	if a.Metrics != b.Metrics {
		t.Error("identical dynamic runs must produce identical metrics")
	}
}

func TestOccupancyAdaptiveEndToEnd(t *testing.T) {
	prof, _ := workload.SpecIntByName("eon")
	o, err := steer.NewOccAdaptive(steer.FIR(), 0.25, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	sim := MustNew(config.WithHelper(), o, prof.MustStream())
	const n = 30_000
	r := sim.RunWarm(n, 5_000)
	checkInvariants(t, r, n)
	if len(r.Rungs) != 2 {
		t.Fatalf("occupancy breakdown has %d rungs, want 2", len(r.Rungs))
	}
	var total uint64
	for _, u := range r.Rungs {
		total += u.Committed
	}
	if total != r.Metrics.Committed {
		t.Errorf("usage attributes %d of %d committed uops", total, r.Metrics.Committed)
	}
}

// TestPolicyCloneIsolation pins that New takes a private clone: two
// simulations fed the same stateful policy value must not share adaptive
// state (the batch Runner fans one policy out over many workers).
func TestPolicyCloneIsolation(t *testing.T) {
	prof, _ := workload.SpecIntByName("gcc")
	shared := shortTournament(t)
	a := MustNew(config.WithHelper(), shared, prof.MustStream()).Run(10_000)
	b := MustNew(config.WithHelper(), shared, prof.MustStream()).Run(10_000)
	if a.Metrics != b.Metrics {
		t.Error("sequential runs from one shared policy value must be identical (clone per sim)")
	}
	for _, u := range shared.Usage() {
		if u.Committed != 0 {
			t.Error("the caller's policy instance must stay untouched")
		}
	}
}
