package core

import (
	"context"
	"fmt"

	"repro/internal/cache"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/phase"
	"repro/internal/power"
	"repro/internal/predict"
	"repro/internal/queue"
	"repro/internal/rename"
	"repro/internal/steer"
	"repro/internal/trace"
)

// Cluster indexes (aliases of the config constants for brevity).
const (
	wide   = config.Wide
	helper = config.Helper
)

// Sim is one simulation instance: a machine configuration, a steering
// policy, and a uop source.
type Sim struct {
	cfg config.Processor
	// pol is the steering policy. active caches the feature set its most
	// recent Decide returned; every stage consults active rather than the
	// policy, so a static policy (staticPol) pays no per-uop dispatch —
	// active is simply fixed for the whole run.
	pol       steer.Policy
	active    steer.Features
	staticPol bool
	// pview is the policy's machine-state snapshot, refreshed once per
	// rename cycle (building it per uop would put queue-accessor calls on
	// the per-uop hot path for nothing: occupancies move by single digits
	// within one fetch group).
	pview steer.View
	// Interval feedback for adaptive policies: every obsInterval committed
	// uops the metrics delta since lastObs is fed to pol.Observe. Zero
	// disables the machinery entirely — including the phase detector and
	// the interval power model below, so the static path never pays for
	// them.
	obsInterval uint64
	nextObserve uint64
	lastObs     metrics.Metrics
	// phases classifies each feedback interval into a program-phase ID
	// from its branch-PC/working-set signature; pw estimates each
	// interval's energy so Observe can optimize ED². Both are nil on the
	// static path. lastL1/lastL2/lastTC snapshot the cache counters at the
	// previous interval boundary for the energy delta.
	phases                 *phase.Detector
	pw                     *power.Model
	lastL1, lastL2, lastTC cache.Stats

	// Interval progress reporting (SetProgress): every progEvery
	// committed uops of the measured phase, progFn receives a snapshot.
	// Armed only inside RunCtx so the warmup leg stays silent — warmup
	// commits are not measurements and must not masquerade as progress.
	progEvery    uint64
	progFn       func(Progress)
	progArmed    bool
	nextProg     uint64
	lastProgUops uint64
	lastProgWide uint64
	// progRung/progRungName memoize the active rung's display name so
	// snapshots don't rebuild the string every interval.
	progRung     steer.Features
	progRungName string
	// polName memoizes pol.Name() (policy names are stable for a run, and
	// building one allocates) so result() is allocation-free.
	polName string

	window *trace.Window
	rob    *queue.Ring[robEntry]
	iq     [2]*queue.IssueQueue
	fpIQ   *queue.IssueQueue
	mob    *queue.MOB

	// Struct-of-arrays mirrors of the per-entry fields every scheduler,
	// writeback and commit scan reads, indexed by pos&robMask. Keeping
	// them out of robEntry means the per-cycle scans touch a handful of
	// dense cache lines instead of striding over the full entries.
	robMask  uint64
	hotState []entryState
	hotDone  []int64
	hotAvail [2][]int64
	hotDeps  [][maxDeps]uint64
	hotNdeps []uint8
	hotPref  []bool

	table *rename.Table
	prf   *rename.PhysRegFile
	fpMap [8]int64 // FP register namespace producers (-1 = architectural)

	wp  *predict.WidthPredictor
	bp  *predict.BranchPredictor
	tc  *cache.TraceCache
	mem *cache.Hierarchy

	imb *steer.ImbalanceDetector

	// Clock state. tick counts helper cycles; wideTick is true on ticks
	// where the wide domain (frontend, wide backend, FP, commit) acts.
	tick  int64
	ratio int64
	// helperWidth is the configured helper datapath width in bits.
	helperWidth uint

	// Frontend state.
	fetchSeq        uint64
	fetchStallUntil int64
	// pendingBranch is the ROB position of a renamed branch that will
	// mispredict: the frontend is fetching the wrong path, so no further
	// (trace = correct-path) uops rename until it resolves. -1 = none.
	pendingBranch int64

	// Entries issued and awaiting completion, plus the writeback scratch
	// holding the completions due this tick. Both are preallocated to the
	// ROB capacity (their upper bound) so the measured phase never grows
	// them.
	executing  []uint64
	dueScratch []uint64

	// Per-wide-cycle issue accounting for the NREADY imbalance metric.
	readyUnissued [2]int
	spareSlots    [2]int
	issueScratch  []int
	prefScratch   []int

	// Issue-scan skip state. When a scan proves no queued entry is ready,
	// iqWake[c] records the earliest tick a blocking dependency could
	// become available; until then the scan is skipped unless iqDirty[c]
	// reports an event that can change readiness (dispatch into the
	// queue, any issue, commit retiring entries, a flush). The skip fires
	// only when the scan would provably select nothing, so behaviour is
	// identical — the quiesced stretches of a long memory stall just stop
	// paying O(occupancy) per tick.
	iqDirty [2]bool
	iqWake  [2]int64

	// Earliest completion time among in-flight executions; writeback
	// skips scanning the in-flight list until then (issue lowers it).
	execWake int64

	// Uops that fatally mispredicted and must re-steer wide on refetch.
	// Allocated lazily on the first fatal flush: baseline and well-
	// predicted runs never pay for the map.
	forcedWide map[uint64]struct{}

	m metrics.Metrics

	// noSplitDebug disables IR splitting (ablation hook).
	noSplitDebug bool

	// Debounced helper-overload state (§3.7 balance), sampled once per
	// wide cycle so transient split bursts don't trigger shedding.
	helperOverloaded bool
	overloadStreak   int
	// splitStreak is the remaining block-splitting window (IRBlock).
	splitStreak int

	// progress watchdog
	lastCommitTick int64
}

// New builds a simulator. The source must be infinite (synth streams or
// cyclic trace replays). A nil policy means the baseline (no steering);
// stateful policies are taken as private clones (steer.Fresh), so one
// policy value may fan out over a batch of concurrent simulations.
func New(cfg config.Processor, pol steer.Policy, src trace.Source) (*Sim, error) {
	s := &Sim{}
	if err := s.Reset(cfg, pol, src); err != nil {
		return nil, err
	}
	return s, nil
}

// Reset reconfigures the Sim in place for a fresh run — New on a zero Sim
// and Reset on a used one are the same code path, so a reset-reused Sim is
// byte-identical in behaviour to a freshly built one. Component storage
// (the ROB ring and its hot arrays, issue queues, rename structures,
// predictor tables, cache arrays, the replay window and scratch buffers)
// is reused whenever the new configuration has the same shape and
// reallocated otherwise; everything else is reinitialized to the cold
// state. This is what makes pooling sims (Acquire/Release) cheap: a grid
// worker or ablation loop re-runs configurations out of warm storage
// instead of rebuilding ~1.2 MB of simulator state per job.
func (s *Sim) Reset(cfg config.Processor, pol steer.Policy, src trace.Source) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	if pol == nil {
		pol = steer.Baseline()
	}
	// Uniform policy validation, before cloning: contradictory feature
	// combinations (any sub-scheme without the 8_8_8 base) are rejected
	// here — Clone panics on invalid parameters, so a hand-assembled
	// invalid policy must be caught while an error return is possible —
	// as is any helper-steering policy on a machine without the helper
	// cluster.
	if v, ok := pol.(interface{ Validate() error }); ok {
		if err := v.Validate(); err != nil {
			return fmt.Errorf("core: invalid policy: %w", err)
		}
	}
	if pol.NeedsHelper() && !cfg.HelperEnabled {
		return fmt.Errorf("core: policy %s steers to the helper cluster, which cfg disables (HelperEnabled)", pol.Name())
	}
	pol = steer.Fresh(pol)

	s.cfg = cfg
	s.pol = pol
	s.active = steer.Features{}
	s.staticPol = false
	if f, ok := pol.(steer.Features); ok {
		// The static fast path: the feature set never changes, so the hot
		// stages read the cached copy and no interface call ever happens.
		s.staticPol = true
		s.active = f
	}
	s.pview = steer.View{}
	s.obsInterval = pol.Interval()
	s.nextObserve = s.obsInterval
	s.lastObs = metrics.Metrics{}
	if s.obsInterval > 0 {
		// Adaptive policies get phase-classified, energy-priced feedback:
		// the detector fingerprints each interval's branch/working-set
		// footprint and the power model prices its event-count delta.
		if s.phases == nil {
			s.phases = phase.New()
		} else {
			s.phases.Reset()
		}
		s.pw = power.New(cfg)
	} else {
		s.phases = nil
		s.pw = nil
	}
	s.lastL1, s.lastL2, s.lastTC = cache.Stats{}, cache.Stats{}, cache.Stats{}

	s.progEvery, s.progFn = 0, nil
	s.progArmed = false
	s.nextProg, s.lastProgUops, s.lastProgWide = 0, 0, 0
	s.progRung, s.progRungName = steer.Features{}, ""
	s.polName = pol.Name()

	windowCap := cfg.ROBSize * 4
	if s.window == nil || s.window.Cap() != windowCap {
		s.window = trace.NewWindow(src, windowCap)
	} else {
		s.window.Reset(src)
	}
	if s.rob == nil || s.rob.Cap() != cfg.ROBSize {
		s.rob = queue.NewRing[robEntry](cfg.ROBSize)
		s.robMask = uint64(cfg.ROBSize - 1)
		s.hotState = make([]entryState, cfg.ROBSize)
		s.hotDone = make([]int64, cfg.ROBSize)
		s.hotAvail[wide] = make([]int64, cfg.ROBSize)
		s.hotAvail[helper] = make([]int64, cfg.ROBSize)
		s.hotDeps = make([][maxDeps]uint64, cfg.ROBSize)
		s.hotNdeps = make([]uint8, cfg.ROBSize)
		s.hotPref = make([]bool, cfg.ROBSize)
	} else {
		s.rob.Reset()
	}
	if s.iq[wide] == nil {
		s.iq[wide] = queue.NewIssueQueue(cfg.WideIQ)
		s.iq[helper] = queue.NewIssueQueue(cfg.HelperIQ)
		s.fpIQ = queue.NewIssueQueue(cfg.FPIQ)
	} else {
		s.iq[wide].Reinit(cfg.WideIQ)
		s.iq[helper].Reinit(cfg.HelperIQ)
		s.fpIQ.Reinit(cfg.FPIQ)
	}
	if s.mob == nil {
		s.mob = queue.NewMOB(cfg.MOBSize)
	} else {
		s.mob.Reinit(cfg.MOBSize)
	}
	if s.table == nil {
		s.table = rename.NewTable()
	} else {
		s.table.Reset()
	}
	if s.prf == nil {
		s.prf = rename.NewPhysRegFile(cfg.PhysRegs)
	} else {
		s.prf.Reinit(cfg.PhysRegs)
	}
	if s.wp == nil || s.wp.Size() != cfg.WidthEntries {
		s.wp = predict.NewWidthPredictor(cfg.WidthEntries)
	} else {
		s.wp.Reset()
	}
	if s.bp == nil {
		s.bp = predict.NewBranchPredictor(cfg.BranchPattern, cfg.BranchBTB, cfg.BranchHistory)
	} else {
		s.bp.Reinit(cfg.BranchPattern, cfg.BranchBTB, cfg.BranchHistory)
	}
	if s.tc == nil {
		s.tc = cache.NewTraceCache(cfg.TCUops, cfg.TCLineUops, cfg.TCWays, cfg.TCMissPenalty)
	} else {
		s.tc.Reinit(cfg.TCUops, cfg.TCLineUops, cfg.TCWays, cfg.TCMissPenalty)
	}
	if s.mem == nil {
		s.mem = cache.NewHierarchy(cfg.L1, cfg.L2, cfg.MemLatency)
	} else {
		s.mem.Reinit(cfg.L1, cfg.L2, cfg.MemLatency)
	}
	s.imb = steer.NewImbalanceDetector()

	s.tick = 0
	s.ratio = int64(cfg.HelperClockRatio)
	s.helperWidth = uint(cfg.HelperWidthBits)
	s.fetchSeq = 0
	s.fetchStallUntil = 0
	s.pendingBranch = -1
	if cap(s.executing) < cfg.ROBSize {
		s.executing = make([]uint64, 0, cfg.ROBSize)
		s.dueScratch = make([]uint64, 0, cfg.ROBSize)
	} else {
		s.executing = s.executing[:0]
		s.dueScratch = s.dueScratch[:0]
	}
	s.readyUnissued = [2]int{}
	s.spareSlots = [2]int{}
	if maxIssue := max(cfg.WideIssue, cfg.HelperIssue, cfg.FPIssue); cap(s.issueScratch) < maxIssue {
		s.issueScratch = make([]int, 0, maxIssue)
	} else {
		s.issueScratch = s.issueScratch[:0]
	}
	if maxIQ := max(cfg.WideIQ, cfg.HelperIQ); cap(s.prefScratch) < maxIQ {
		s.prefScratch = make([]int, 0, maxIQ)
	} else {
		s.prefScratch = s.prefScratch[:0]
	}
	s.iqDirty = [2]bool{true, true}
	s.iqWake = [2]int64{}
	s.execWake = 0
	s.forcedWide = nil
	s.m = metrics.Metrics{}
	s.noSplitDebug = false
	s.helperOverloaded = false
	s.overloadStreak = 0
	s.splitStreak = 0
	s.lastCommitTick = 0
	for i := range s.fpMap {
		s.fpMap[i] = -1
	}
	return nil
}

// MustNew is New for known-good arguments.
func MustNew(cfg config.Processor, pol steer.Policy, src trace.Source) *Sim {
	s, err := New(cfg, pol, src)
	if err != nil {
		panic(err)
	}
	return s
}

// ticksPer returns the tick cost of one cycle in the given cluster.
func (s *Sim) ticksPer(cluster uint8) int64 {
	if cluster == helper {
		return 1
	}
	return s.ratio
}

// wideTicks converts wide cycles to ticks.
func (s *Sim) wideTicks(cycles int) int64 { return int64(cycles) * s.ratio }

// Result is the outcome of a run.
type Result struct {
	Metrics metrics.Metrics
	Width   predict.WidthStats
	Branch  predict.BranchStats
	L1      cache.Stats
	L2      cache.Stats
	TC      cache.Stats
	Policy  string
	// Rungs is the per-rung usage breakdown of an adaptive policy: how
	// much of the measured run each candidate feature set governed. Empty
	// for static policies.
	Rungs []steer.RungUsage `json:"Rungs,omitempty"`
}

// RunWarm simulates warm committed uops to fill predictors and caches,
// resets the measurement counters, then simulates n measured uops. The
// paper's methodology skips each trace's initialization slice (§3.1); this
// is the equivalent for synthetic streams.
func (s *Sim) RunWarm(n, warm uint64) Result {
	r, err := s.RunWarmCtx(context.Background(), n, warm)
	if err != nil {
		panic(err)
	}
	return r
}

// RunWarmCtx is RunWarm with cancellation: the warmup and measured phases
// both observe ctx. Cancellation during the measured phase returns the
// partial measurements collected so far together with ctx.Err();
// cancellation during warmup returns a zero Result, since warmup counters
// are exactly the cold-start data the methodology excludes and must not
// masquerade as measurements.
func (s *Sim) RunWarmCtx(ctx context.Context, n, warm uint64) (Result, error) {
	if warm > 0 {
		// The warmup leg drives the bare loop rather than RunCtx so the
		// policy sees no tail-flush Observe: a truncated interval's IPC is
		// noise an adaptive policy must not train on. Disarm progress for
		// the same reason — on a reused Sim the previous measured phase
		// left progArmed set, and warmup commits must not surface as
		// progress (RunCtx re-arms for the measured leg).
		s.progArmed = false
		if err := s.runLoop(ctx, warm); err != nil {
			return Result{}, err
		}
		s.m = metrics.Metrics{}
		s.wp.ResetStats()
		s.bp.ResetStats()
		s.tc.ResetStats()
		s.mem.L1.ResetStats()
		s.mem.L2.ResetStats()
		// The policy keeps what it learned during warmup (like the
		// predictors and the phase table), but its usage breakdown
		// restarts with measurement, and the interval-energy snapshots
		// re-anchor on the freshly reset cache counters.
		s.lastObs = metrics.Metrics{}
		s.lastL1, s.lastL2, s.lastTC = cache.Stats{}, cache.Stats{}, cache.Stats{}
		s.nextObserve = s.obsInterval
		if ur, ok := s.pol.(steer.UsageReporter); ok {
			ur.ResetUsage()
		}
	}
	return s.RunCtx(ctx, n)
}

// Run simulates until n real uops have committed and returns the collected
// measurements. It panics if the machine stalls (the internal watchdog);
// use RunCtx for an error-returning, cancellable run.
func (s *Sim) Run(n uint64) Result {
	r, err := s.RunCtx(context.Background(), n)
	if err != nil {
		panic(err)
	}
	return r
}

// Progress is one interval snapshot of a running measured phase,
// delivered to the callback installed with SetProgress. It is the
// observability twin of the policy Observe stream: read-only, so
// installing a callback never changes simulation results.
type Progress struct {
	// Committed is the measured-phase committed-uop count so far.
	Committed uint64
	// IntervalIPC is the IPC (committed uops per wide cycle) of the
	// interval since the previous snapshot.
	IntervalIPC float64
	// Rung names the steering feature set currently governing the run:
	// the static policy itself, or a dynamic selector's active choice.
	Rung string
	// Phase is the current program-phase ID, -1 when the run has no
	// phase detector (static policies disable the interval machinery).
	Phase int
}

// SetProgress installs an interval progress callback, invoked from the
// simulation goroutine every `every` committed uops of the measured
// phase (the warmup leg reports nothing). every == 0 or a nil fn
// disables reporting; the disabled path costs one predictable branch per
// wide cycle, so results and timing are unaffected. Call before running.
func (s *Sim) SetProgress(every uint64, fn func(Progress)) {
	if every == 0 || fn == nil {
		s.progEvery, s.progFn = 0, nil
		return
	}
	s.progEvery, s.progFn = every, fn
}

// ctxCheckTicks is the cancellation polling interval of the main loop. A
// tick is tens of nanoseconds of work, so checking every 8Ki ticks keeps
// the hot loop free of per-iteration overhead while bounding cancellation
// latency well under a millisecond.
const ctxCheckTicks = 1 << 13

// RunCtx simulates until n real uops have committed or ctx is cancelled.
// Cancellation is polled every ctxCheckTicks ticks (amortized: the hot
// loop stays branch-light). On cancellation the partial measurements are
// returned together with ctx.Err(); a stalled machine (no commit within
// the watchdog window, a simulator bug) is reported as an error rather
// than a panic.
func (s *Sim) RunCtx(ctx context.Context, n uint64) (Result, error) {
	// Arm here rather than in runLoop: the warmup leg drives runLoop
	// directly, and its commits must not surface as progress. The
	// explicit disarm matters too — a Sim re-run after SetProgress(0,
	// nil) must not fire the stale armed state into a nil callback.
	s.progArmed = s.progFn != nil
	if s.progArmed {
		s.nextProg = s.m.Committed + s.progEvery
		s.lastProgUops, s.lastProgWide = s.m.Committed, s.m.WideCycles
	}
	err := s.runLoop(ctx, n)
	return s.result(), err
}

// runLoop is the simulation loop behind RunCtx, without the final Result
// snapshot (and therefore without the tail-interval Observe flush).
func (s *Sim) runLoop(ctx context.Context, n uint64) error {
	const watchdogTicks = 1 << 21
	s.lastCommitTick = s.tick
	nextCtxCheck := s.tick + ctxCheckTicks
	// Countdown instead of a per-tick modulo for the wide-cycle boundary.
	wideCD := s.ratio - s.tick%s.ratio
	for s.m.Committed < n {
		s.tick++
		wideCD--
		onWide := wideCD == 0
		if onWide {
			wideCD = s.ratio
		}
		s.m.Ticks++
		if onWide {
			s.m.WideCycles++
		}

		s.writeback()
		if onWide {
			s.commit()
			if s.obsInterval > 0 && s.m.Committed >= s.nextObserve {
				s.observe()
			}
			if s.progArmed && s.m.Committed >= s.nextProg {
				s.reportProgress()
			}
		}
		s.issueCluster(helper)
		if onWide {
			s.issueCluster(wide)
			s.issueFP()
			s.sampleImbalance()
			s.renameStage()
		}

		if s.tick >= nextCtxCheck {
			nextCtxCheck = s.tick + ctxCheckTicks
			if err := ctx.Err(); err != nil {
				return err
			}
			if s.tick-s.lastCommitTick > watchdogTicks {
				return fmt.Errorf("core: no commit for %d ticks at tick %d (rob=%d iqW=%d iqH=%d committed=%d)",
					watchdogTicks, s.tick, s.rob.Len(), s.iq[wide].Len(), s.iq[helper].Len(), s.m.Committed)
			}
		}
	}
	return nil
}

// observe feeds the interval's metrics delta back to the policy together
// with the queue occupancies, the interval's program-phase ID, its energy
// estimate, and the derived copy/fatal cost rates.
func (s *Sim) observe() {
	delta := s.m.Sub(s.lastObs)
	occ := steer.Occupancy{
		WideOcc: s.iq[wide].Len(), WideCap: s.iq[wide].Cap(),
		HelperOcc: s.iq[helper].Len(), HelperCap: s.iq[helper].Cap(),
	}
	if s.phases != nil {
		occ.Phase = s.phases.Advance()
	}
	if s.pw != nil {
		l1, l2, tc := s.mem.L1.Stats(), s.mem.L2.Stats(), s.tc.Stats()
		rep := s.pw.Estimate(&delta, l1.Sub(s.lastL1), l2.Sub(s.lastL2), tc.Sub(s.lastTC))
		occ.EnergyNJ = rep.EnergyNJ
		s.lastL1, s.lastL2, s.lastTC = l1, l2, tc
	}
	if delta.Committed > 0 {
		occ.CopyFrac = float64(delta.CopiesCreated) / float64(delta.Committed)
		occ.FatalFrac = float64(delta.FatalFlushes) / float64(delta.Committed)
	}
	s.pol.Observe(delta, occ)
	s.lastObs = s.m
	s.nextObserve = s.m.Committed + s.obsInterval
}

// reportProgress delivers one interval snapshot to the SetProgress
// callback. Pure observation: nothing the callback sees or does feeds
// back into the simulation.
func (s *Sim) reportProgress() {
	if s.progRungName == "" || s.active != s.progRung {
		s.progRung, s.progRungName = s.active, s.active.Name()
	}
	p := Progress{Committed: s.m.Committed, Rung: s.progRungName, Phase: -1}
	if dw := s.m.WideCycles - s.lastProgWide; dw > 0 {
		p.IntervalIPC = float64(s.m.Committed-s.lastProgUops) / float64(dw)
	}
	if s.phases != nil {
		p.Phase = s.phases.Last()
	}
	s.progFn(p)
	s.lastProgUops, s.lastProgWide = s.m.Committed, s.m.WideCycles
	s.nextProg = s.m.Committed + s.progEvery
}

// result snapshots the collected measurements.
func (s *Sim) result() Result {
	// Flush the tail interval so an adaptive policy's usage breakdown
	// accounts for every measured commit.
	if s.obsInterval > 0 && s.m.Committed > s.lastObs.Committed {
		s.observe()
	}
	r := Result{
		Metrics: s.m,
		Width:   s.wp.Stats(),
		Branch:  s.bp.Stats(),
		L1:      s.mem.L1.Stats(),
		L2:      s.mem.L2.Stats(),
		TC:      s.tc.Stats(),
		Policy:  s.polName,
	}
	if ur, ok := s.pol.(steer.UsageReporter); ok {
		r.Rungs = ur.Usage()
	}
	return r
}

// Metrics exposes the live counters (tests and incremental harnesses).
func (s *Sim) Metrics() *metrics.Metrics { return &s.m }

// allocEntry pushes a fresh ROB entry, resetting both the cold in-ring
// entry and its hot SoA slot, and returns the position with the in-place
// entry pointer.
func (s *Sim) allocEntry() (uint64, *robEntry) {
	pos, e := s.rob.Alloc()
	resetEntry(e)
	i := pos & s.robMask
	s.hotState[i] = stWaiting
	s.hotDone[i] = never
	s.hotAvail[wide][i] = never
	s.hotAvail[helper][i] = never
	s.hotNdeps[i] = 0
	s.hotPref[i] = false
	return pos, e
}

// depReady reports whether dependency position p has its value available
// in cluster c at the current tick.
func (s *Sim) depReady(p uint64, c uint8) bool {
	if p < s.rob.Head() {
		return true // committed: architectural state visible everywhere
	}
	return s.hotAvail[c][p&s.robMask] <= s.tick
}

// entryReadyAt reports whether all dependencies of the entry at pos are
// available in cluster c (its execution cluster). Hot-array only: the
// scheduler scan never touches the cold entry of a not-ready uop.
func (s *Sim) entryReadyAt(pos uint64, c uint8) bool {
	i := pos & s.robMask
	deps := &s.hotDeps[i]
	for k := uint8(0); k < s.hotNdeps[i]; k++ {
		if !s.depReady(deps[k], c) {
			return false
		}
	}
	return true
}

// sampleImbalance accumulates the NREADY metric at each wide-cycle
// boundary: ready-but-unissued uops in one cluster that had spare issue
// slots in the other (§3.7).
func (s *Sim) sampleImbalance() {
	if !s.cfg.HelperEnabled {
		return
	}
	s.m.IQOccSum[wide] += uint64(s.iq[wide].Len())
	s.m.IQOccSum[helper] += uint64(s.iq[helper].Len())

	// Debounce the §3.7 overload signal: two consecutive overloaded wide
	// cycles arm it, one calm cycle clears it.
	if s.imb.HelperOverloaded(s.iq[helper].Len(), s.iq[helper].Cap(),
		s.iq[wide].Len(), s.iq[wide].Cap()) {
		s.overloadStreak++
	} else {
		s.overloadStreak = 0
	}
	s.helperOverloaded = s.overloadStreak >= 2

	w2n := s.readyUnissued[wide]
	if spare := s.spareSlots[helper]; spare < w2n {
		w2n = spare
	}
	if w2n > 0 {
		s.m.NReadyWideToNarrow += uint64(w2n)
	}
	n2w := s.readyUnissued[helper]
	if spare := s.spareSlots[wide]; spare < n2w {
		n2w = spare
	}
	if n2w > 0 {
		s.m.NReadyNarrowToWide += uint64(n2w)
	}
}
