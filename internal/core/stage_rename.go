package core

import (
	"repro/internal/bitwidth"
	"repro/internal/isa"
	"repro/internal/steer"
)

// decision is the steering outcome for one uop.
type decision struct {
	cluster         uint8
	split           bool
	steered888      bool
	crSteered       bool
	widthPredNarrow bool // raw result-width prediction (Figure 5 classes)
	widthClassify   bool
	predNarrowConf  bool // prediction held with high confidence
}

// renameStage renames, steers and dispatches up to FetchWidth uops per
// wide cycle, creating demand copies, prefetched copies and IR splits as
// the active policy dictates.
func (s *Sim) renameStage() {
	if s.tick < s.fetchStallUntil || s.pendingBranch >= 0 {
		return
	}
	if !s.staticPol {
		// Snapshot the machine state a dynamic policy may consult once
		// per rename cycle; per-uop Decide calls below read this view.
		s.pview = steer.View{
			WideOcc: s.iq[wide].Len(), WideCap: s.iq[wide].Cap(),
			HelperOcc: s.iq[helper].Len(), HelperCap: s.iq[helper].Cap(),
			WideReadyUnissued:   s.readyUnissued[wide],
			HelperReadyUnissued: s.readyUnissued[helper],
		}
	}
	for n := 0; n < s.cfg.FetchWidth; n++ {
		u := s.window.Get(s.fetchSeq)

		if pen := s.tc.FetchUop(u.PC); pen > 0 {
			s.fetchStallUntil = s.tick + s.wideTicks(pen)
			return
		}

		if u.Class == isa.ClassStore && s.mob.Full() {
			s.m.StallMOB++
			return
		}
		needsPhys := u.HasDest() && u.Class != isa.ClassFP
		if needsPhys && s.prf.FreeCount() < 1 {
			s.m.StallPhys++
			return
		}

		d := s.steerUop(u)

		// Exact capacity check for everything this uop will insert: its
		// own entry, demand copies, and split pieces/copies (prefetched
		// copies are droppable hints and reserve nothing).
		var needIQ [2]int
		var needFP, needROB int
		switch {
		case d.split:
			needIQ[helper] = steer.SplitPieces
			if u.HasDest() {
				needIQ[helper] += steer.SplitPieces // split copies issue from the helper
			}
		case u.Class == isa.ClassFP:
			needFP = 1
		case u.Class != isa.ClassJump:
			needIQ[d.cluster]++
		}
		for i := 0; i < int(u.NSrc); i++ {
			r := u.SrcReg[i]
			if r == isa.RegNone {
				continue
			}
			if c, ok := s.copyNeeded(r, d.cluster); ok {
				needIQ[c]++
			}
		}
		needROB = needIQ[wide] + needIQ[helper] + needFP
		if u.Class == isa.ClassJump {
			needROB++ // jumps retire from the ROB without queueing
		}
		if s.rob.Cap()-s.rob.Len() < needROB {
			s.m.StallROB++
			return
		}
		if s.iq[wide].Cap()-s.iq[wide].Len() < needIQ[wide] ||
			s.iq[helper].Cap()-s.iq[helper].Len() < needIQ[helper] ||
			s.fpIQ.Cap()-s.fpIQ.Len() < needFP {
			s.m.StallIQ++
			return
		}

		s.m.Renames++
		if s.phases != nil {
			// The interval's phase signature: control-flow footprint from
			// branch/jump PCs, working set from memory pages. Gated on the
			// adaptive path — static runs never touch the detector.
			switch u.Class {
			case isa.ClassBranch, isa.ClassJump:
				s.phases.NoteBranch(uint64(u.PC))
			case isa.ClassLoad, isa.ClassStore:
				s.phases.NoteMem(uint64(u.MemAddr))
			}
		}
		if d.split {
			s.renameSplit(u, d)
		} else {
			s.renameOne(u, d)
		}
		s.fetchSeq++

		// A branch the predictor gets wrong sends fetch down the wrong
		// path: no further correct-path uops arrive until it resolves.
		if s.pendingBranch >= 0 {
			return
		}
		// A taken control transfer ends the fetch group.
		if (u.Class == isa.ClassBranch || u.Class == isa.ClassJump) && u.Taken {
			return
		}
	}
}

// srcNarrow reads the rename width table for a register operand: the
// actual width if the producer has written back, the prediction otherwise
// (§3.2).
func (s *Sim) srcNarrow(reg uint8) bool {
	return s.table.Lookup(reg).Narrow
}

// steerUop implements the data-width aware instruction selection policy:
// 8_8_8, then CR, then IR splitting, with BR for branches (§3.2-§3.7).
// The active policy chooses which schemes govern each uop: static
// policies fix the feature set for the whole run (no dispatch), dynamic
// ones re-decide here from the live machine state.
func (s *Sim) steerUop(u *isa.Uop) decision {
	f := s.active
	if !s.staticPol {
		f = s.pol.Decide(u, &s.pview)
		s.active = f
	}
	d := decision{cluster: wide}
	if !s.cfg.HelperEnabled || !f.Enable888 {
		return d
	}

	predNarrow, conf := s.wp.PredictResult(u.PC)
	s.m.PredictorLookups++
	d.widthPredNarrow = predNarrow
	d.predNarrowConf = conf
	d.widthClassify = (u.HasDest() || u.WritesFlags) &&
		u.Class != isa.ClassFP && u.Class != isa.ClassStore

	if s.forcedWide != nil {
		// Lazily allocated: most runs never take a fatal flush, and the
		// nil check spares them the per-uop map hash as well.
		if _, forced := s.forcedWide[u.Seq]; forced {
			return d
		}
	}

	// Scheme (5) balance: when the helper cluster is overloaded, narrow
	// instructions steer wide until balance is restored (§1, §3.7).
	// Applied only under IR, as in the paper, and only to uops whose
	// wide placement generates no copies — shedding the head of a new
	// dependence chain relieves pressure, cutting a live narrow chain
	// would just trade queue slots for cross-cluster traffic.
	helperOverloaded := f.EnableIR && s.helperOverloaded &&
		!s.anySourceNeedsCopy(u, wide)

	switch u.Class {
	case isa.ClassBranch:
		// BR (§3.3): frontend-resolvable conditional branches follow
		// their in-flight flags producer into the helper cluster — if
		// the producer already committed no copy would be generated
		// either way, so the branch stays wide.
		if f.EnableBR && u.FrontendResolvable {
			m := s.table.Lookup(isa.RegFlags)
			if m.Cluster == helper && m.Producer >= 0 && uint64(m.Producer) >= s.rob.Head() {
				d.cluster = helper
			}
		}
		return d

	case isa.ClassLoad:
		// CR for address generation (§3.5, Figure 10): one narrow and
		// one wide address operand with a predicted-contained carry.
		// The wide operand (typically a long-lived base register) must
		// already be visible to the helper — paying a fresh copy to move
		// address math across clusters would defeat the purpose. This is
		// the model's stand-in for the related work's shared address
		// register file (§4).
		if f.EnableCR && !helperOverloaded &&
			s.srcNarrow(u.SrcReg[0]) != s.srcNarrow(u.SrcReg[1]) &&
			!s.anySourceNeedsCopy(u, helper) {
			carryOK, cconf := s.wp.PredictCarry(u.PC)
			if carryOK && (cconf || !f.UseConfidence) {
				d.cluster = helper
				d.crSteered = true
			}
		}
		return d

	case isa.ClassALU:
		// 8_8_8 (§3.2): all sources and the result narrow.
		allNarrow := true
		wideSrcs, srcs := 0, 0
		for i := 0; i < int(u.NSrc); i++ {
			if u.SrcReg[i] == isa.RegNone {
				continue
			}
			srcs++
			if !s.srcNarrow(u.SrcReg[i]) {
				allNarrow = false
				wideSrcs++
			}
		}
		if u.HasImm {
			srcs++
			if !bitwidth.IsNarrowAt(u.Imm, s.helperWidth) {
				allNarrow = false
				wideSrcs++
			}
		}
		// The IA-32 internal machine state can add implicit wide
		// operands (§3.2), which disqualify the all-narrow condition.
		if allNarrow && !u.ImplicitWide && predNarrow &&
			(conf || !f.UseConfidence) && !helperOverloaded {
			d.cluster = helper
			d.steered888 = true
			return d
		}
		// CR (§3.5): 8-32-32 with a predicted-contained carry; the wide
		// source must already be helper-visible (see the load case).
		if f.EnableCR && !helperOverloaded && srcs == 2 && wideSrcs == 1 && !predNarrow &&
			bitwidth.CREligibleOp(u.Op) && !s.anySourceNeedsCopy(u, helper) {
			carryOK, cconf := s.wp.PredictCarry(u.PC)
			if carryOK && (cconf || !f.UseConfidence) {
				d.cluster = helper
				d.crSteered = true
				return d
			}
		}
		// IR (§3.7): split when genuine wide-to-narrow imbalance holds —
		// the wide backend left ready work unissued last cycle (the
		// NREADY condition) while the helper had spare slots — and the
		// split can start immediately (sources helper-visible and
		// ready), so the pieces absorb idle helper bandwidth instead of
		// queueing waiting state behind cross-cluster copies.
		//
		// Block mode (the §3.7 proposed extension): once a split
		// triggers, the rest of the block follows it into the helper so
		// chained wide work crosses no cluster boundary; readiness is
		// not required because the chain's producers are themselves
		// split pieces already in the helper.
		if f.EnableIR && !s.noSplitDebug && steer.SplitEligible(u, f.IRNoDestOnly) {
			trigger := s.readyUnissued[wide] >= 2 &&
				s.iq[helper].Len() < s.iq[helper].Cap()/4 &&
				!s.anySourceNeedsCopy(u, helper) &&
				s.sourcesReadyIn(u, helper)
			blockFollow := f.IRBlock && s.splitStreak > 0 &&
				!s.anySourceNeedsCopy(u, helper) &&
				s.iq[helper].Len() < s.iq[helper].Cap()/2
			if trigger || blockFollow {
				if f.IRBlock && trigger {
					s.splitStreak = blockSplitWindow
				}
				d.cluster = helper
				d.split = true
				return d
			}
		}
		if s.splitStreak > 0 {
			s.splitStreak--
		}
		return d

	default:
		// Mul/div (no helper units), FP, stores, jumps stay wide.
		return d
	}
}

// sourcesReadyIn reports whether every register operand of u is already
// available (or about to be) in cluster c.
func (s *Sim) sourcesReadyIn(u *isa.Uop, c uint8) bool {
	for i := 0; i < int(u.NSrc); i++ {
		r := u.SrcReg[i]
		if r == isa.RegNone {
			continue
		}
		m := s.table.Lookup(r)
		if m.Producer < 0 {
			continue
		}
		if !s.depReady(uint64(m.Producer), c) {
			return false
		}
	}
	return true
}

// anySourceNeedsCopy reports whether steering u to cluster target would
// generate at least one demand copy for its register operands.
func (s *Sim) anySourceNeedsCopy(u *isa.Uop, target uint8) bool {
	for i := 0; i < int(u.NSrc); i++ {
		r := u.SrcReg[i]
		if r == isa.RegNone {
			continue
		}
		if _, need := s.copyNeeded(r, target); need {
			return true
		}
	}
	return false
}

// copyNeeded reports whether steering a consumer to cluster target would
// require a demand copy for operand reg, and in which cluster that copy
// would issue.
func (s *Sim) copyNeeded(reg uint8, target uint8) (execCluster uint8, ok bool) {
	m := s.table.Lookup(reg)
	if m.Producer < 0 || uint64(m.Producer) < s.rob.Head() {
		return 0, false // architectural value: visible everywhere
	}
	p := s.rob.At(uint64(m.Producer))
	if p.willAvail(target) || p.hasCopyTo[target] {
		return 0, false
	}
	return copyExecCluster(p), true
}

// copyExecCluster picks the cluster a copy of p's value issues from: one
// that will actually hold the value (a split's reassembled destination
// lands in the wide file even though the pieces ran in the helper).
func copyExecCluster(p *robEntry) uint8 {
	if p.willAvail(p.cluster) {
		return p.cluster
	}
	if p.willAvail(wide) {
		return wide
	}
	return helper
}

// collectDeps gathers the in-flight producers of the uop's register
// operands into deps and creates the demand copies the PACT-99 scheme
// requires. It runs before the consumer's own ROB entry is allocated so
// the copies occupy earlier positions, exactly as dispatch orders them.
func (s *Sim) collectDeps(u *isa.Uop, target uint8, deps *[maxDeps]uint64) uint8 {
	var n uint8
	for i := 0; i < int(u.NSrc); i++ {
		r := u.SrcReg[i]
		if r == isa.RegNone {
			continue
		}
		m := s.table.Lookup(r)
		if m.Producer < 0 || uint64(m.Producer) < s.rob.Head() {
			continue
		}
		pos := uint64(m.Producer)
		deps[n] = pos
		n++
		s.demandCopy(pos, target)
	}
	return n
}

// demandCopy creates a copy toward target for the value produced at pos,
// unless one is unnecessary or already on its way.
func (s *Sim) demandCopy(pos uint64, target uint8) {
	p := s.rob.At(pos)
	if p.willAvail(target) || p.hasCopyTo[target] {
		return
	}
	s.addCopy(pos, target, false)
}

// willAvail reports whether the entry's value will become available in
// cluster c without a copy.
func (e *robEntry) willAvail(c uint8) bool {
	switch e.kind {
	case kindCopy:
		return c == e.copyTarget
	default:
		if e.cluster == c {
			return true
		}
		if e.isLoad {
			// Loads always deliver to the wide register file via the
			// shared MOB; replication (LR) adds the helper file.
			return c == wide || e.replicated
		}
		return e.replicated
	}
}

// addCopy pushes a copy uop: it issues in a cluster holding the value and
// transfers it to target (§1, copy scheme of [6]).
func (s *Sim) addCopy(srcPos uint64, target uint8, prefetch bool) {
	src := s.rob.At(srcPos)
	if src.willAvail(target) || src.hasCopyTo[target] {
		return
	}
	execIn := copyExecCluster(src)
	if s.iq[execIn].Full() || s.rob.Full() {
		if prefetch {
			return // prefetches are hints; drop under pressure
		}
		panic("core: copy capacity violated despite preflight")
	}
	srcPC := src.u.PC
	pos, e := s.allocEntry()
	e.kind = kindCopy
	e.cluster = execIn
	e.copySrc = srcPos
	e.copyTarget = target
	e.seq = s.fetchSeq
	e.u.PC = srcPC
	e.u.Class = isa.ClassCopy
	e.ghr = s.bp.History()
	e.renameTick = s.tick
	i := pos & s.robMask
	s.hotDeps[i][0] = srcPos
	s.hotNdeps[i] = 1
	s.hotPref[i] = prefetch
	s.iq[execIn].Add(pos)
	s.iqDirty[execIn] = true
	s.m.IQWrites[execIn]++
	src = s.rob.At(srcPos) // re-resolve: alloc may not invalidate, but be safe
	src.hasCopyTo[target] = true
	s.m.CopiesCreated++
	if prefetch {
		s.m.CopyPrefetch++
	} else if src.trainCP && src.kind == kindReal {
		// CP training (§3.6): the producer incurred a demand copy; set
		// its prediction bit so the next instance prefetches. Gated by
		// the rung that steered the producer.
		s.wp.UpdateCopy(src.u.PC, true)
	}
}

// renameOne dispatches a non-split uop.
func (s *Sim) renameOne(u *isa.Uop, d decision) {
	isLoad := u.Class == isa.ClassLoad
	isFP := u.Class == isa.ClassFP

	// LR (§3.4): predicted-narrow load values are allocated in both
	// register files; helper-executed narrow loads likewise deliver
	// to both.
	replicated := false
	if isLoad {
		narrowLoad := d.widthPredNarrow && d.predNarrowConf
		replicated = narrowLoad && (s.active.EnableLR || d.cluster == helper)
	}

	// Dependencies (and the demand copies they imply) are gathered before
	// the uop's own entry is allocated, so the copies take the earlier ROB
	// positions dispatch order dictates.
	var deps [maxDeps]uint64
	var ndeps uint8
	if isFP {
		for i := 0; i < int(u.NSrc); i++ {
			if p := s.fpMap[u.SrcReg[i]&7]; p >= 0 && uint64(p) >= s.rob.Head() {
				deps[ndeps] = uint64(p)
				ndeps++
			}
		}
	} else {
		ndeps = s.collectDeps(u, d.cluster, &deps)
	}

	pos, en := s.allocEntry()
	en.u = *u
	en.kind = kindReal
	en.cluster = d.cluster
	en.seq = u.Seq
	en.countsAsInstr = true
	en.steered888 = d.steered888
	en.crSteered = d.crSteered
	en.widthPredNarrow = d.widthPredNarrow
	en.widthClassify = d.widthClassify
	en.trainCP = s.active.EnableCP
	en.trainCR = s.active.EnableCR
	en.isLoad = isLoad
	en.isStore = u.Class == isa.ClassStore
	en.isFP = isFP
	en.replicated = replicated
	en.ghr = s.bp.History()
	en.renameTick = s.tick
	hi := pos & s.robMask
	s.hotDeps[hi] = deps
	s.hotNdeps[hi] = ndeps

	// Rename defines (with undo state for flushes).
	if u.HasDest() && !isFP {
		phys := s.prf.Alloc()
		en.physReg = phys
		valueCluster := d.cluster
		if isLoad && !replicated {
			valueCluster = wide // MOB delivers to the wide file
		}
		prev := s.table.Define(u.DstReg, int64(pos), valueCluster, d.widthPredNarrow, phys)
		en.definedReg = u.DstReg
		en.prevReg = prev
		en.prevPhys = prev.Phys
	}
	if u.WritesFlags {
		prev := s.table.Define(isa.RegFlags, int64(pos), d.cluster, d.widthPredNarrow, -1)
		en.definedFlags = true
		en.prevFlags = prev
	}
	if isFP && u.HasDest() {
		fp := u.DstReg & 7
		en.definedFP = fp
		en.prevFP = s.fpMap[fp]
		s.fpMap[fp] = int64(pos)
	}

	// CR borrow (§3.5): pin the wide source's physical register, whose
	// upper 24 bits reconstruct the full value.
	if d.crSteered && u.Class == isa.ClassALU {
		for i := 0; i < int(u.NSrc); i++ {
			r := u.SrcReg[i]
			if r == isa.RegNone || s.srcNarrow(r) {
				continue
			}
			if m := s.table.Lookup(r); m.Phys >= 0 && s.prf.Live(m.Phys) {
				s.prf.Borrow(m.Phys)
				en.crBorrow = m.Phys
			}
			break
		}
	}

	// Dispatch.
	switch {
	case u.Class == isa.ClassJump:
		s.hotState[hi] = stDone
		s.hotDone[hi] = s.tick
	case isFP:
		s.fpIQ.Add(pos)
	default:
		s.iq[d.cluster].Add(pos)
		s.iqDirty[d.cluster] = true
		s.m.IQWrites[d.cluster]++
	}

	if en.isStore {
		s.mob.AddStore(pos, u.MemAddr, u.MemSize)
	}

	if u.Class == isa.ClassBranch {
		s.m.Branches++
		predTaken, predTarget, known := s.bp.Predict(u.PC)
		targetOK := !u.Taken || (known && predTarget == u.Target)
		en.predCorrect = predTaken == u.Taken && targetOK
		// Trace-driven frontends shift the actual outcome into the
		// speculative history; a flush restores the checkpoint.
		s.bp.SpecUpdateHistory(u.Taken)
		if !en.predCorrect {
			s.pendingBranch = int64(pos)
		}
	}
	if u.Class == isa.ClassJump {
		en.predCorrect = true
	}

	// CP (§3.6): eager copies at the producer. The hybrid policy uses
	// the CP bit for narrow-to-wide prefetches; wide-to-narrow
	// prefetches additionally require a narrow result prediction (the
	// load-byte-in-the-wide-backend case). Prefetches are opportunistic:
	// they are skipped when the issuing queue is crowded, because a hint
	// must not displace demand work.
	if s.active.EnableCP && u.HasDest() && u.Class != isa.ClassFP && s.wp.PredictCopy(u.PC) &&
		s.rob.Len() < s.rob.Cap()*3/4 {
		roomy := func(c uint8) bool { return s.iq[c].Len() < s.iq[c].Cap()*3/4 }
		if d.cluster == helper && roomy(helper) {
			s.addCopy(pos, wide, true)
		} else if d.cluster == wide && d.widthPredNarrow && d.predNarrowConf && roomy(wide) {
			s.addCopy(pos, helper, true)
		}
	}
}

// renameSplit implements IR (§3.7): the uop becomes four chained narrow
// sub-uops in the helper cluster; when it has a destination, four copy
// uops prefetch the full value to the wide cluster, and the destination
// maps to the last copy.
func (s *Sim) renameSplit(u *isa.Uop, d decision) {
	var srcDeps [isa.MaxSrcs]uint64
	nsrc := 0
	for i := 0; i < int(u.NSrc); i++ {
		r := u.SrcReg[i]
		if r == isa.RegNone {
			continue
		}
		m := s.table.Lookup(r)
		if m.Producer >= 0 && uint64(m.Producer) >= s.rob.Head() {
			srcDeps[nsrc] = uint64(m.Producer)
			nsrc++
			s.demandCopy(uint64(m.Producer), helper)
		}
	}

	var prev uint64
	hasPrev := false
	var lastPiece uint64
	for i := 0; i < steer.SplitPieces; i++ {
		pos, e := s.allocEntry()
		e.kind = kindSplit
		e.cluster = helper
		e.seq = u.Seq
		e.u.PC = u.PC
		e.u.Class = isa.ClassALU
		e.u.Op = u.Op
		e.u.DstVal = u.DstVal
		e.countsAsInstr = i == 0
		e.splitHead = i == 0
		hi := pos & s.robMask
		for k := 0; k < nsrc; k++ {
			s.hotDeps[hi][s.hotNdeps[hi]] = srcDeps[k]
			s.hotNdeps[hi]++
		}
		if hasPrev {
			// Byte slices chain through the carry, least significant
			// first (§3.7).
			s.hotDeps[hi][s.hotNdeps[hi]] = prev
			s.hotNdeps[hi]++
		}
		e.ghr = s.bp.History()
		e.renameTick = s.tick
		s.iq[helper].Add(pos)
		s.iqDirty[helper] = true
		s.m.IQWrites[helper]++
		prev = pos
		hasPrev = true
		lastPiece = pos
	}

	if u.WritesFlags {
		en := s.rob.At(lastPiece)
		prevF := s.table.Define(isa.RegFlags, int64(lastPiece), helper, d.widthPredNarrow, -1)
		en.definedFlags = true
		en.prevFlags = prevF
	}

	if u.HasDest() {
		// Four copies reassemble the value in the wide file. The
		// destination maps to the last piece in the helper cluster, so
		// consumers that are themselves split (or otherwise
		// helper-steered) chain locally — the block-granularity insight
		// of §3.7's proposed extension — while wide consumers become
		// ready when the reassembly copies land (the copies advertise
		// the piece's wide availability).
		for i := 0; i < steer.SplitPieces; i++ {
			pos, e := s.allocEntry()
			e.kind = kindCopy
			e.cluster = helper
			e.copySrc = lastPiece
			e.copyTarget = wide
			e.seq = u.Seq
			e.u.PC = u.PC
			e.u.Class = isa.ClassCopy
			e.u.DstVal = u.DstVal
			e.ghr = s.bp.History()
			e.renameTick = s.tick
			hi := pos & s.robMask
			s.hotDeps[hi][0] = lastPiece
			s.hotNdeps[hi] = 1
			s.iq[helper].Add(pos)
			s.iqDirty[helper] = true
			s.m.IQWrites[helper]++
			s.m.CopiesCreated++
			s.m.CopyPrefetch++
		}
		en := s.rob.At(lastPiece)
		en.hasCopyTo[wide] = true // reassembly is already on its way
		phys := s.prf.Alloc()
		en.physReg = phys
		prevD := s.table.Define(u.DstReg, int64(lastPiece), helper, d.widthPredNarrow, phys)
		en.definedReg = u.DstReg
		en.prevReg = prevD
		en.prevPhys = prevD.Phys
	}
	s.m.SteeredSplit++
}
