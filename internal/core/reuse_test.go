package core

import (
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/isa"
	"repro/internal/steer"
	"repro/internal/synth"
	"repro/internal/trace"
)

// reuseJob is one (config, features, workload) point for the reset-reuse
// property tests. The set deliberately crosses shapes (different ROB,
// queue and predictor geometries) so Reset exercises both the reuse path
// and the rebuild path between consecutive runs.
type reuseJob struct {
	label string
	cfg   config.Processor
	pol   steer.Features
	n     uint64
}

func reuseJobs() []reuseJob {
	small := config.WithHelper()
	small.ROBSize = 64
	small.WideIQ, small.HelperIQ, small.FPIQ = 16, 16, 16
	ratio := config.WithHelper()
	ratio.HelperClockRatio = 4
	return []reuseJob{
		{"baseline", config.PentiumLikeBaseline(), steer.Baseline(), 15000},
		{"helper-888", config.WithHelper(), steer.F888(), 15000},
		{"helper-ir", config.WithHelper(), steer.FIR(), 15000},
		{"helper-small", small, steer.FCR(), 15000},
		{"helper-ratio4", ratio, steer.FIR(), 15000},
	}
}

// reuseSource returns a deterministic finite trace replayed cyclically,
// so every run of the same job sees the identical uop stream.
func reuseSource(t *testing.T) []isa.Uop {
	t.Helper()
	return trace.Record(synth.MustNewStream(synth.DefaultParams()), 2000)
}

// TestResetReuseMatchesFresh pins the contract behind the sim pool: a Sim
// reset in place for a new job produces a Result deep-equal to a freshly
// constructed Sim's, across shape changes and in any job order.
func TestResetReuseMatchesFresh(t *testing.T) {
	jobs := reuseJobs()
	uops := reuseSource(t)

	fresh := make([]Result, len(jobs))
	for i, j := range jobs {
		sim, err := New(j.cfg, j.pol, trace.NewSliceSource(uops))
		if err != nil {
			t.Fatalf("%s: %v", j.label, err)
		}
		fresh[i] = sim.Run(j.n)
	}

	// One Sim serves every job: reverse order (forces shape rebuilds in
	// the opposite direction), then forward again (forces them back).
	var reused *Sim
	order := make([]int, 0, 2*len(jobs))
	for i := len(jobs) - 1; i >= 0; i-- {
		order = append(order, i)
	}
	for i := range jobs {
		order = append(order, i)
	}
	for _, idx := range order {
		j := jobs[idx]
		if reused == nil {
			sim, err := New(j.cfg, j.pol, trace.NewSliceSource(uops))
			if err != nil {
				t.Fatalf("%s: %v", j.label, err)
			}
			reused = sim
		} else if err := reused.Reset(j.cfg, j.pol, trace.NewSliceSource(uops)); err != nil {
			t.Fatalf("%s: reset: %v", j.label, err)
		}
		got := reused.Run(j.n)
		if !reflect.DeepEqual(got, fresh[idx]) {
			t.Errorf("%s: reused-sim result differs from fresh-sim result\n got: %+v\nwant: %+v",
				j.label, got, fresh[idx])
		}
	}
}

// TestAcquireReleaseMatchesFresh runs the same property through the pool
// API itself: sequential Acquire/Release cycles — where Acquire typically
// hands back the just-released Sim — must match fresh construction.
func TestAcquireReleaseMatchesFresh(t *testing.T) {
	jobs := reuseJobs()
	uops := reuseSource(t)
	for round := 0; round < 2; round++ {
		for i, j := range jobs {
			fresh, err := New(j.cfg, j.pol, trace.NewSliceSource(uops))
			if err != nil {
				t.Fatalf("%s: %v", j.label, err)
			}
			want := fresh.Run(j.n)

			pooled, err := Acquire(j.cfg, j.pol, trace.NewSliceSource(uops))
			if err != nil {
				t.Fatalf("%s: acquire: %v", j.label, err)
			}
			got := pooled.Run(j.n)
			Release(pooled)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("round %d %s (job %d): pooled result differs from fresh", round, j.label, i)
			}
		}
	}
}

// TestResetRejectsInvalid mirrors New's validation on the reuse path and
// checks a failed Reset does not poison the Sim for a subsequent valid one.
func TestResetRejectsInvalid(t *testing.T) {
	uops := reuseSource(t)
	sim, err := New(config.WithHelper(), steer.FIR(), trace.NewSliceSource(uops))
	if err != nil {
		t.Fatal(err)
	}
	want := sim.Run(10000)

	bad := config.WithHelper()
	bad.ROBSize = 100 // not a power of two
	if err := sim.Reset(bad, steer.FIR(), trace.NewSliceSource(uops)); err == nil {
		t.Fatal("Reset must reject an invalid config")
	}
	if err := sim.Reset(config.PentiumLikeBaseline(), steer.F888(), trace.NewSliceSource(uops)); err == nil {
		t.Fatal("Reset must reject steering without the helper cluster")
	}
	if err := sim.Reset(config.WithHelper(), steer.FIR(), trace.NewSliceSource(uops)); err != nil {
		t.Fatalf("valid Reset after rejected ones: %v", err)
	}
	if got := sim.Run(10000); !reflect.DeepEqual(got, want) {
		t.Error("result drifted after rejected Reset attempts")
	}
}

// TestSteadyStateZeroAllocs is the zero-alloc gate for the measured
// phase: once a Sim is warm, continuing to simulate must not touch the
// heap at all. A static full-feature rung exercises the entire hot path —
// rename with copies and splits, dual-cluster issue, width checking,
// flush recovery — so any per-tick or per-interval garbage that sneaks
// back into the core loop fails this test deterministically.
func TestSteadyStateZeroAllocs(t *testing.T) {
	uops := reuseSource(t)
	sim, err := New(config.WithHelper(), steer.FIR(), trace.NewSliceSource(uops))
	if err != nil {
		t.Fatal(err)
	}
	// Prime: grow the in-flight scratch lists, fault in the lazy
	// forced-wide set, let every table reach steady occupancy.
	sim.Run(30000)
	allocs := testing.AllocsPerRun(5, func() {
		sim.Run(5000)
	})
	if allocs != 0 {
		t.Fatalf("steady-state measured phase allocated %.1f times per 5k-uop run, want 0", allocs)
	}
}
