package core

import "repro/internal/isa"

// commit retires up to CommitWidth done entries from the ROB head per wide
// cycle, releasing rename and memory resources.
func (s *Sim) commit() {
	for budget := s.cfg.CommitWidth; budget > 0 && !s.rob.Empty(); budget-- {
		pos := s.rob.Head()
		if s.hotState[pos&s.robMask] != stDone {
			return
		}
		// Retirement makes this entry's value architectural — visible to
		// dependents in both clusters regardless of availability times.
		s.iqDirty[wide], s.iqDirty[helper] = true, true
		e := s.rob.At(pos)

		if e.isStore {
			s.mob.RetireStore(pos)
			// The store drains to the memory system at retirement; the
			// access warms the caches but does not stall commit (write
			// buffering).
			s.mem.Access(e.u.MemAddr)
		}
		if e.definedReg != isa.RegNone {
			s.table.Commit(e.definedReg, int64(pos))
			if e.prevPhys >= 0 {
				// The previous definition of this architectural register
				// is dead; CR borrows may defer the actual release.
				s.prf.Free(e.prevPhys)
			}
		}
		if e.definedFlags {
			s.table.Commit(isa.RegFlags, int64(pos))
		}
		if e.definedFP != 0xFF && s.fpMap[e.definedFP] == int64(pos) {
			s.fpMap[e.definedFP] = -1
		}
		if e.crBorrow >= 0 {
			s.prf.Unborrow(e.crBorrow)
		}

		switch e.kind {
		case kindReal:
			s.m.Committed++
			s.lastCommitTick = s.tick
			if e.cluster == helper {
				s.m.SteeredHelper++
			}
			// CP decay (§3.6): a producer that retires without ever
			// incurring a copy clears its prefetch bit. The gate is the
			// rung that steered this uop, not the currently active one.
			if e.trainCP && e.u.HasDest() &&
				!e.hasCopyTo[wide] && !e.hasCopyTo[helper] {
				s.wp.UpdateCopy(e.u.PC, false)
			}
			if len(s.forcedWide) > 0 {
				delete(s.forcedWide, e.seq)
			}
			s.window.Release(e.seq)
		case kindCopy:
			s.m.CommittedCopies++
		case kindSplit:
			if e.splitHead {
				s.m.Committed++
				s.m.SteeredHelper++
				s.lastCommitTick = s.tick
				if len(s.forcedWide) > 0 {
					delete(s.forcedWide, e.seq)
				}
				s.window.Release(e.seq)
			} else {
				s.m.CommittedSplits++
			}
		}
		s.rob.Drop()
	}
}
