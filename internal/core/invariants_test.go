package core

// Integration-level invariant checks and failure-injection tests: the
// simulator must preserve its accounting identities under every policy and
// under hostile conditions (width-flip storms, trace-cache thrashing,
// tiny structures).

import (
	"testing"

	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/synth"
	"repro/internal/workload"
)

// checkInvariants asserts the cross-counter identities of a finished run.
func checkInvariants(t *testing.T, r Result, n uint64) {
	t.Helper()
	m := r.Metrics
	if m.Committed < n {
		t.Errorf("committed %d < requested %d", m.Committed, n)
	}
	if m.SteeredHelper > m.Committed {
		t.Errorf("steered (%d) cannot exceed committed (%d)", m.SteeredHelper, m.Committed)
	}
	if m.CommittedCopies > m.CopiesCreated {
		t.Errorf("committed copies (%d) cannot exceed created (%d)", m.CommittedCopies, m.CopiesCreated)
	}
	if m.CopyPrefetch > m.CopiesCreated {
		t.Errorf("prefetched copies (%d) cannot exceed created (%d)", m.CopyPrefetch, m.CopiesCreated)
	}
	if m.WidthFatal != m.FatalFlushes {
		t.Errorf("fatal classifications (%d) must equal fatal flushes (%d)", m.WidthFatal, m.FatalFlushes)
	}
	if m.BranchMispredicts > m.Branches {
		t.Errorf("mispredicts (%d) cannot exceed branches (%d)", m.BranchMispredicts, m.Branches)
	}
	if m.WideCycles == 0 || m.Ticks < m.WideCycles {
		t.Errorf("clock accounting broken: ticks=%d wide=%d", m.Ticks, m.WideCycles)
	}
	if ratio := uint64(config.WithHelper().HelperClockRatio); m.Ticks > (m.WideCycles+1)*ratio {
		t.Errorf("tick/cycle ratio broken: ticks=%d wide=%d", m.Ticks, m.WideCycles)
	}
	// Every issue reads at most maxDeps operands.
	if m.RFReads[0]+m.RFReads[1] > (m.Issues[0]+m.Issues[1]+m.FPOps)*4 {
		t.Error("register read accounting implausible")
	}
}

func TestInvariantsAcrossPolicies(t *testing.T) {
	prof, _ := workload.SpecIntByName("parser")
	const n = 25000
	policies := append(steer.Ladder(), steer.Baseline(), steer.F888NoConfidence(), steer.FIRBlock())
	for _, pol := range policies {
		cfg := config.WithHelper()
		if !pol.Enable888 {
			cfg = config.PentiumLikeBaseline()
		}
		sim := MustNew(cfg, pol, prof.MustStream())
		r := sim.Run(n)
		checkInvariants(t, r, n)
	}
}

func TestInvariantsUnderWidthStorm(t *testing.T) {
	// Width locality 0.5 flips value widths on half the instances — a
	// fatal-misprediction storm. All identities must survive.
	p := synth.DefaultParams()
	p.WidthLocality = 0.5
	sim := MustNew(config.WithHelper(), steer.FIR(), synth.MustNewStream(p))
	r := sim.Run(25000)
	checkInvariants(t, r, 25000)
	if r.Metrics.FatalFlushes == 0 {
		t.Error("width storm must cause fatal flushes")
	}
}

func TestInvariantsUnderTCThrash(t *testing.T) {
	// A straight-line program far larger than the trace cache sweeps its
	// lines every lap and thrashes the frontend (loops would pin fetch
	// to a few resident lines and mask the effect).
	p := synth.DefaultParams()
	p.Segments = 400
	p.LoopFrac, p.DiamondFrac = 0, 0
	cfg := config.WithHelper()
	cfg.TCUops = 1 << 10 // 1K-uop trace cache
	sim := MustNew(cfg, steer.FCR(), synth.MustNewStream(p))
	r := sim.Run(25000)
	checkInvariants(t, r, 25000)
	// Loop-resident fetches rarely cross trace lines, so even a thrashing
	// frontend shows a small absolute rate; compare against the roomy
	// default instead.
	big := MustNew(config.WithHelper(), steer.FCR(), synth.MustNewStream(p)).Run(25000)
	if r.TC.MissRate() <= big.TC.MissRate() {
		t.Errorf("tiny trace cache must miss more: %.5f vs %.5f",
			r.TC.MissRate(), big.TC.MissRate())
	}
}

func TestInvariantsWithTinyPhysRegs(t *testing.T) {
	cfg := config.WithHelper()
	cfg.PhysRegs = 24 // well below ROB size: rename must stall, not break
	sim := MustNew(cfg, steer.FCR(), synth.MustNewStream(synth.DefaultParams()))
	r := sim.Run(15000)
	checkInvariants(t, r, 15000)
	if r.Metrics.StallPhys == 0 {
		t.Error("expected physical-register stalls with a tiny file")
	}
}

func TestInvariantsMemoryStress(t *testing.T) {
	p := synth.DefaultParams()
	p.WorkingSet = 64 << 20
	p.StrideBytes = 16 << 10
	p.FracLoad, p.FracStore = 0.35, 0.15
	sim := MustNew(config.WithHelper(), steer.FIR(), synth.MustNewStream(p))
	r := sim.Run(20000)
	checkInvariants(t, r, 20000)
}

func TestRunWarmResetsCounters(t *testing.T) {
	prof, _ := workload.SpecIntByName("gzip")
	sim := MustNew(config.WithHelper(), steer.FCR(), prof.MustStream())
	r := sim.RunWarm(10000, 10000)
	// Counters reflect only the measured region.
	if r.Metrics.Committed < 10000 || r.Metrics.Committed > 10006 {
		t.Errorf("measured committed = %d", r.Metrics.Committed)
	}
	if r.Metrics.WideCycles == 0 {
		t.Error("measured cycles empty")
	}
}

func TestZeroPenaltyConfigs(t *testing.T) {
	cfg := config.WithHelper()
	cfg.MispredictPenalty = 0
	cfg.FatalFlushPenalty = 0
	cfg.TCMissPenalty = 0
	sim := MustNew(cfg, steer.FIR(), synth.MustNewStream(synth.DefaultParams()))
	r := sim.Run(15000)
	checkInvariants(t, r, 15000)
}
