package core

import (
	"sync"

	"repro/internal/config"
	"repro/internal/steer"
	"repro/internal/trace"
)

// simPool recycles Sims across runs. A Sim's storage — ROB ring and hot
// arrays, issue queues, rename structures, predictor tables, cache arrays,
// the replay window, scratch buffers — is over a megabyte; Reset reuses
// all of it when shapes match, so batch harnesses and grid workers pay
// construction cost once per worker instead of once per job.
var simPool sync.Pool

// Acquire returns a Sim configured for the given run: a pooled one reset
// in place when available, a fresh one otherwise. The two are behaviorally
// byte-identical (New is Reset on a zero Sim). Pass the Sim to Release
// when the run's Result has been taken.
func Acquire(cfg config.Processor, pol steer.Policy, src trace.Source) (*Sim, error) {
	if v := simPool.Get(); v != nil {
		s := v.(*Sim)
		if err := s.Reset(cfg, pol, src); err != nil {
			simPool.Put(s)
			return nil, err
		}
		return s, nil
	}
	return New(cfg, pol, src)
}

// Release returns s to the pool for reuse by a later Acquire. The caller
// must not touch s afterwards. Releasing is optional (a dropped Sim is
// just garbage) and nil is a no-op.
func Release(s *Sim) {
	if s == nil {
		return
	}
	// Drop the progress callback so a pooled idle Sim does not pin the
	// caller's closure (and whatever it captured).
	s.SetProgress(0, nil)
	simPool.Put(s)
}
