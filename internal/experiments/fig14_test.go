package experiments

import "testing"

// TestFig14CategoryShape validates the paper's Figure 14 narrative at a
// reduced scale: regular/arithmetic-heavy categories (kernels, enc, mm,
// ws) beat the branchy office/productivity categories.
func TestFig14CategoryShape(t *testing.T) {
	if testing.Short() {
		t.Skip("suite sweep")
	}
	o := Options{SuiteUops: 6_000, Warmup: 2_000}
	table, series := Fig14(o)

	get := func(name string) float64 {
		for r := 0; r < table.Rows(); r++ {
			if table.Label(r) == name {
				return table.Value(r, 0)
			}
		}
		t.Fatalf("category %s missing", name)
		return 0
	}

	regular := (get("kernels") + get("enc") + get("mm") + get("ws")) / 4
	irregular := (get("office") + get("prod")) / 2
	if regular <= irregular {
		t.Errorf("regular categories (%.1f%%) must beat office/prod (%.1f%%) — Figure 14",
			regular, irregular)
	}
	if len(series.Values) != 412 {
		t.Fatalf("series n = %d", len(series.Values))
	}
	// The sorted curve has a positive tail: the top decile gains solidly.
	if q := series.Quantile(0.9); q <= 0 {
		t.Errorf("top-decile speedup %.1f%% must be positive", q)
	}
}
