package experiments

// The dynamic-selection study: the "Beyond Static Policies" comparison on
// top of the paper's ladder. For each SPEC profile the static ladder's
// best rung (an oracle no real machine has: it requires running every
// rung to completion) is compared with the dynamic selectors, which pick
// rungs at runtime from interval IPC and occupancy feedback.

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/report"
	"repro/internal/steer"
	"repro/internal/workload"
)

// DynamicSweep holds the dynamic-policy runs over the 12 SPEC traces.
type DynamicSweep struct {
	Apps       []string
	Tournament map[string]core.Result
	Occupancy  map[string]core.Result
}

// RunDynamicSweep runs the default tournament and occupancy-adaptive
// policies over the SPEC profiles. It panics on simulator failure; use
// RunDynamicSweepCtx for error returns and cancellation.
func RunDynamicSweep(o Options) *DynamicSweep {
	d, err := RunDynamicSweepCtx(context.Background(), o)
	if err != nil {
		panic(err)
	}
	return d
}

// RunDynamicSweepCtx is RunDynamicSweep with cancellation. The shared
// policy values are safe to fan out: the core takes a private clone per
// simulation.
func RunDynamicSweepCtx(ctx context.Context, o Options) (*DynamicSweep, error) {
	profiles := workload.SpecInt2000()
	pols := []steer.Policy{steer.DefaultTournament(), steer.DefaultOccAdaptive()}
	d := &DynamicSweep{
		Tournament: make(map[string]core.Result, len(profiles)),
		Occupancy:  make(map[string]core.Result, len(profiles)),
	}
	for _, p := range profiles {
		d.Apps = append(d.Apps, p.Name)
	}
	results, err := parallel.Map(ctx, len(profiles)*len(pols), o.Workers,
		func(ctx context.Context, i int) (core.Result, error) {
			p := profiles[i/len(pols)]
			r, runErr := runOne(ctx, p, pols[i%len(pols)], o.SpecUops, o.Warmup)
			if runErr != nil {
				return r, fmt.Errorf("experiments: %s/%s: %w", p.Name, pols[i%len(pols)].Name(), runErr)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	for i, p := range profiles {
		d.Tournament[p.Name] = results[i*len(pols)]
		d.Occupancy[p.Name] = results[i*len(pols)+1]
	}
	return d, nil
}

// bestStatic returns the highest ladder-rung speedup for the app and the
// rung that achieved it.
func (s *SpecSweep) bestStatic(app string) (float64, string) {
	best, rung := 0.0, ""
	for i, f := range s.Policies {
		if spd := s.speedup(f.Name(), app); i == 0 || spd > best {
			best, rung = spd, f.Name()
		}
	}
	return best, rung
}

// FigDynamic renders the static-vs-dynamic comparison: per application,
// the static ladder's best rung (the per-app oracle), the tournament
// selector, the occupancy-adaptive policy, and the tournament's gap to
// the oracle.
func FigDynamic(s *SpecSweep, d *DynamicSweep) *report.Table {
	t := report.NewTable("Dynamic policy selection vs the static ladder — speedup % over baseline",
		"best-static", "tournament", "occupancy", "tour-minus-best")
	for _, app := range d.Apps {
		best, _ := s.bestStatic(app)
		b := s.Baseline[app].Metrics
		tm := d.Tournament[app].Metrics
		om := d.Occupancy[app].Metrics
		tour := 100 * metrics.Speedup(&tm, &b)
		occ := 100 * metrics.Speedup(&om, &b)
		t.AddRow(app, best, tour, occ, tour-best)
	}
	t.AddMeanRow()
	return t
}

// DynamicUsage renders the tournament's per-rung usage breakdown: the
// fraction of each application's committed uops governed by each
// candidate rung — the observable evidence of runtime selection.
func DynamicUsage(d *DynamicSweep) *report.Table {
	// Column per candidate rung, read from the first app's breakdown
	// (identical across apps by construction).
	var cols []string
	for _, app := range d.Apps {
		for _, u := range d.Tournament[app].Rungs {
			cols = append(cols, u.Rung)
		}
		break
	}
	t := report.NewTable("Tournament rung usage — % of committed uops per rung", cols...)
	for _, app := range d.Apps {
		r := d.Tournament[app]
		row := make([]float64, len(cols))
		for i, u := range r.Rungs {
			if i < len(row) && r.Metrics.Committed > 0 {
				row[i] = 100 * float64(u.Committed) / float64(r.Metrics.Committed)
			}
		}
		t.AddRow(app, row...)
	}
	t.AddMeanRow()
	return t
}
