package experiments

// The dynamic-selection study: the "Beyond Static Policies" comparison on
// top of the paper's ladder. For each SPEC profile the static ladder's
// best rung (an oracle no real machine has: it requires running every
// rung to completion) is compared with the dynamic selectors, which pick
// rungs at runtime from interval IPC — or, for the ED²-rewarded UCB
// bandit, from the per-interval energy estimates — with per-phase
// statistics. The comparison is made on both axes the paper cares about:
// raw speedup and the §3.7 energy-delay² efficiency.

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/steer"
	"repro/internal/workload"
)

// DynamicSweep holds the dynamic-policy runs over the 12 SPEC traces.
type DynamicSweep struct {
	Apps       []string
	Tournament map[string]core.Result
	Occupancy  map[string]core.Result
	// UCB is the IPC-rewarded bandit; UCBED2 rewards low energy-delay².
	UCB    map[string]core.Result
	UCBED2 map[string]core.Result
}

// dynamicPolicies returns the selector set of the study, in result order.
func dynamicPolicies() []steer.Policy {
	return []steer.Policy{
		steer.DefaultTournament(),
		steer.DefaultOccAdaptive(),
		steer.DefaultUCB(),
		steer.DefaultUCBED2(),
	}
}

// RunDynamicSweep runs the default tournament, occupancy-adaptive and UCB
// policies over the SPEC profiles. It panics on simulator failure; use
// RunDynamicSweepCtx for error returns and cancellation.
func RunDynamicSweep(o Options) *DynamicSweep {
	d, err := RunDynamicSweepCtx(context.Background(), o)
	if err != nil {
		panic(err)
	}
	return d
}

// RunDynamicSweepCtx is RunDynamicSweep with cancellation. The shared
// policy values are safe to fan out: the core takes a private clone per
// simulation.
func RunDynamicSweepCtx(ctx context.Context, o Options) (*DynamicSweep, error) {
	profiles := workload.SpecInt2000()
	pols := dynamicPolicies()
	d := &DynamicSweep{
		Tournament: make(map[string]core.Result, len(profiles)),
		Occupancy:  make(map[string]core.Result, len(profiles)),
		UCB:        make(map[string]core.Result, len(profiles)),
		UCBED2:     make(map[string]core.Result, len(profiles)),
	}
	for _, p := range profiles {
		d.Apps = append(d.Apps, p.Name)
	}
	results, err := parallel.Map(ctx, len(profiles)*len(pols), o.Workers,
		func(ctx context.Context, i int) (core.Result, error) {
			p := profiles[i/len(pols)]
			r, runErr := runOne(ctx, p, pols[i%len(pols)], o.SpecUops, o.Warmup)
			if runErr != nil {
				return r, fmt.Errorf("experiments: %s/%s: %w", p.Name, pols[i%len(pols)].Name(), runErr)
			}
			return r, nil
		})
	if err != nil {
		return nil, err
	}
	for i, p := range profiles {
		d.Tournament[p.Name] = results[i*len(pols)]
		d.Occupancy[p.Name] = results[i*len(pols)+1]
		d.UCB[p.Name] = results[i*len(pols)+2]
		d.UCBED2[p.Name] = results[i*len(pols)+3]
	}
	return d, nil
}

// bestStatic returns the highest ladder-rung speedup for the app and the
// rung that achieved it.
func (s *SpecSweep) bestStatic(app string) (float64, string) {
	best, rung := 0.0, ""
	for i, f := range s.Policies {
		if spd := s.speedup(f.Name(), app); i == 0 || spd > best {
			best, rung = spd, f.Name()
		}
	}
	return best, rung
}

// bestStaticED2 returns the highest ladder-rung ED² gain over baseline
// for the app (the per-app ED² oracle) and the winning rung.
func (s *SpecSweep) bestStaticED2(app string) (float64, string) {
	best, rung := 0.0, ""
	for i, f := range s.Policies {
		if gain := s.ed2GainOf(app, s.ByPolicy[f.Name()][app]); i == 0 || gain > best {
			best, rung = gain, f.Name()
		}
	}
	return best, rung
}

// ed2GainOf returns the percent ED² gain of a helper-machine result over
// the app's baseline run.
func (s *SpecSweep) ed2GainOf(app string, r core.Result) float64 {
	baseModel := power.New(config.PentiumLikeBaseline())
	helperModel := power.New(config.WithHelper())
	b := s.Baseline[app]
	bm, hm := b.Metrics, r.Metrics
	rb := baseModel.Estimate(&bm, b.L1, b.L2, b.TC)
	rh := helperModel.Estimate(&hm, r.L1, r.L2, r.TC)
	return 100 * power.ED2Gain(rh, rb)
}

// FigDynamic renders the static-vs-dynamic IPC comparison: per
// application, the static ladder's best rung (the per-app oracle), the
// tournament selector, the IPC-rewarded UCB bandit, the
// occupancy-adaptive policy, and the UCB's gap to the oracle.
func FigDynamic(s *SpecSweep, d *DynamicSweep) *report.Table {
	t := report.NewTable("Dynamic policy selection vs the static ladder — speedup % over baseline",
		"best-static", "tournament", "ucb", "occupancy", "ucb-minus-best")
	for _, app := range d.Apps {
		best, _ := s.bestStatic(app)
		b := s.Baseline[app].Metrics
		tm := d.Tournament[app].Metrics
		um := d.UCB[app].Metrics
		om := d.Occupancy[app].Metrics
		tour := 100 * metrics.Speedup(&tm, &b)
		ucb := 100 * metrics.Speedup(&um, &b)
		occ := 100 * metrics.Speedup(&om, &b)
		t.AddRow(app, best, tour, ucb, occ, ucb-best)
	}
	t.AddMeanRow()
	return t
}

// FigDynamicED2 renders the efficiency comparison the §3.7 argument asks
// for: per application, the energy-delay² gain over baseline of the best
// static rung (the per-app ED² oracle), the IPC-driven selectors, and the
// ED²-rewarded UCB — the selector that optimizes the metric directly.
func FigDynamicED2(s *SpecSweep, d *DynamicSweep) *report.Table {
	t := report.NewTable("Dynamic policy selection — energy-delay² gain % over baseline",
		"best-static", "tournament", "ucb-ipc", "ucb-ed2", "ed2-minus-best")
	for _, app := range d.Apps {
		best, _ := s.bestStaticED2(app)
		tour := s.ed2GainOf(app, d.Tournament[app])
		ucb := s.ed2GainOf(app, d.UCB[app])
		ued2 := s.ed2GainOf(app, d.UCBED2[app])
		t.AddRow(app, best, tour, ucb, ued2, ued2-best)
	}
	t.AddMeanRow()
	return t
}

// DynamicUsage renders the tournament's per-rung usage breakdown: the
// fraction of each application's committed uops governed by each
// candidate rung — the observable evidence of runtime selection.
func DynamicUsage(d *DynamicSweep) *report.Table {
	// Column per candidate rung, read from the first app's breakdown
	// (identical across apps by construction).
	var cols []string
	for _, app := range d.Apps {
		for _, u := range d.Tournament[app].Rungs {
			cols = append(cols, u.Rung)
		}
		break
	}
	t := report.NewTable("Tournament rung usage — % of committed uops per rung", cols...)
	for _, app := range d.Apps {
		r := d.Tournament[app]
		row := make([]float64, len(cols))
		for i, u := range r.Rungs {
			if i < len(row) && r.Metrics.Committed > 0 {
				row[i] = 100 * float64(u.Committed) / float64(r.Metrics.Committed)
			}
		}
		t.AddRow(app, row...)
	}
	t.AddMeanRow()
	return t
}
