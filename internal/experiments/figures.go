package experiments

import (
	"context"
	"fmt"

	"repro/internal/analysis"
	"repro/internal/config"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/report"
	"repro/internal/steer"
	"repro/internal/workload"
)

// analysisMap fans an analysis measurement out over the SPEC profiles.
// Cancellation stops dispatching further profiles (in-flight measurements
// finish; they do not consult ctx themselves) and surfaces ctx.Err().
func analysisMap[T any](ctx context.Context, o Options, fn func(p workload.Profile) T) ([]workload.Profile, []T, error) {
	profiles := workload.SpecInt2000()
	rows, err := parallel.Map(ctx, len(profiles), o.Workers,
		func(_ context.Context, i int) (T, error) { return fn(profiles[i]), nil })
	if err != nil {
		return nil, nil, err
	}
	return profiles, rows, nil
}

// Fig1 reproduces Figure 1 plus the §1 operand-mix statistics: the
// percentage of register operands that are narrow data-width dependent,
// and the one-narrow / two-narrow-wide / two-narrow-narrow ALU mix.
func Fig1(o Options) *report.Table { return mustTable(Fig1Ctx(context.Background(), o)) }

// Fig1Ctx is Fig1 with cancellation over the per-benchmark fan-out.
func Fig1Ctx(ctx context.Context, o Options) (*report.Table, error) {
	profiles, rows, err := analysisMap(ctx, o, func(p workload.Profile) analysis.NarrowDependency {
		return analysis.MeasureNarrowDependency(p.MustStream(), int(o.SpecUops))
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 1 — narrow data-width dependent register operands (%)",
		"narrowdep", "1narrow", "2narrow-wide", "2narrow-narrow")
	for i, p := range profiles {
		d := rows[i]
		t.AddRow(p.Name, 100*d.Frac, 100*d.OneNarrowFrac,
			100*d.TwoNarrowWideResFrac, 100*d.TwoNarrowNarrowResFrac)
	}
	t.AddMeanRow()
	return t, nil
}

// mustTable unwraps a (table, error) pair for the background-context
// convenience wrappers, where the only possible error is a simulator bug.
func mustTable(t *report.Table, err error) *report.Table {
	if err != nil {
		panic(err)
	}
	return t
}

// Fig5 reproduces Figure 5: width prediction accuracy classified as
// correct / non-fatal / fatal under the 8_8_8 scheme, plus the §3.2
// confidence-estimator comparison (fatal rate with vs without it).
func Fig5(s *SpecSweep) *report.Table {
	t := report.NewTable("Figure 5 — width prediction accuracy (%) under 8_8_8",
		"correct", "non-fatal", "fatal", "fatal-noconf")
	for _, app := range s.Apps {
		r := s.ByPolicy["8_8_8"][app].Metrics
		c, n, f := r.WidthAccuracy()
		nc := s.NoConfidence[app].Metrics
		_, _, fNo := nc.WidthAccuracy()
		t.AddRow(app, 100*c, 100*n, 100*f, 100*fNo)
	}
	t.AddMeanRow()
	return t
}

// Fig6 reproduces Figure 6: per-application performance of 8_8_8 over the
// monolithic baseline (paper average ≈ +6.2%).
func Fig6(s *SpecSweep) *report.Table {
	t := report.NewTable("Figure 6 — performance of the 8_8_8 scheme (%)", "speedup")
	for _, app := range s.Apps {
		t.AddRow(app, s.speedup("8_8_8", app))
	}
	t.AddMeanRow()
	return t
}

// Fig7 reproduces Figure 7: instructions steered to the helper cluster and
// inter-cluster copies under 8_8_8 (paper: ≈15% steered).
func Fig7(s *SpecSweep) *report.Table {
	t := report.NewTable("Figure 7 — helper cluster instructions and copies under 8_8_8 (%)",
		"helper", "copies")
	for _, app := range s.Apps {
		m := s.ByPolicy["8_8_8"][app].Metrics
		t.AddRow(app, 100*m.HelperFrac(), 100*m.CopyFrac())
	}
	t.AddMeanRow()
	return t
}

// Fig8 reproduces Figure 8: copy percentage of 8_8_8 vs 8_8_8+BR (paper:
// BR raises steering to 19.5% and cuts copies to 10.8%).
func Fig8(s *SpecSweep) *report.Table {
	t := report.NewTable("Figure 8 — copy percentage with the BR scheme (%)",
		"8_8_8", "8_8_8+BR")
	for _, app := range s.Apps {
		a := s.ByPolicy["8_8_8"][app].Metrics
		b := s.ByPolicy["8_8_8+BR"][app].Metrics
		t.AddRow(app, 100*a.CopyFrac(), 100*b.CopyFrac())
	}
	t.AddMeanRow()
	return t
}

// Fig9 reproduces Figure 9: copy percentage after adding LR (paper: 6.4%).
func Fig9(s *SpecSweep) *report.Table {
	t := report.NewTable("Figure 9 — copy percentage with the LR scheme (%)",
		"8_8_8", "8_8_8+BR", "8_8_8+BR+LR")
	for _, app := range s.Apps {
		a := s.ByPolicy["8_8_8"][app].Metrics
		b := s.ByPolicy["8_8_8+BR"][app].Metrics
		c := s.ByPolicy["8_8_8+BR+LR"][app].Metrics
		t.AddRow(app, 100*a.CopyFrac(), 100*b.CopyFrac(), 100*c.CopyFrac())
	}
	t.AddMeanRow()
	return t
}

// Fig11 reproduces Figure 11: for 8-32-32 shaped operations, the fraction
// whose carry does not propagate beyond the low byte, split into
// arithmetic and loads.
func Fig11(o Options) *report.Table { return mustTable(Fig11Ctx(context.Background(), o)) }

// Fig11Ctx is Fig11 with cancellation over the per-benchmark fan-out.
func Fig11Ctx(ctx context.Context, o Options) (*report.Table, error) {
	profiles, rows, err := analysisMap(ctx, o, func(p workload.Profile) analysis.CarryStudy {
		return analysis.MeasureCarry(p.MustStream(), int(o.SpecUops))
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 11 — carry not propagated beyond 8 bits (%)",
		"arith", "load")
	for i, p := range profiles {
		t.AddRow(p.Name, 100*rows[i].ArithFrac(), 100*rows[i].LoadFrac())
	}
	t.AddMeanRow()
	return t, nil
}

// Fig12 reproduces Figure 12: performance of the full CR ladder vs plain
// 8_8_8 (paper: +14.5% avg, 47.5% steered).
func Fig12(s *SpecSweep) *report.Table {
	t := report.NewTable("Figure 12 — performance with carry-width prediction (%)",
		"8_8_8", "8_8_8+BR+LR+CR")
	for _, app := range s.Apps {
		t.AddRow(app, s.speedup("8_8_8", app), s.speedup("8_8_8+BR+LR+CR", app))
	}
	t.AddMeanRow()
	return t
}

// Fig13 reproduces Figure 13: average producer-consumer distance in uops.
func Fig13(o Options) *report.Table { return mustTable(Fig13Ctx(context.Background(), o)) }

// Fig13Ctx is Fig13 with cancellation over the per-benchmark fan-out.
func Fig13Ctx(ctx context.Context, o Options) (*report.Table, error) {
	profiles, rows, err := analysisMap(ctx, o, func(p workload.Profile) analysis.DistanceStudy {
		return analysis.MeasureDistance(p.MustStream(), int(o.SpecUops))
	})
	if err != nil {
		return nil, err
	}
	t := report.NewTable("Figure 13 — average producer-consumer distance (uops)", "distance")
	for i, p := range profiles {
		t.AddRow(p.Name, rows[i].Average())
	}
	t.AddMeanRow()
	return t, nil
}

// CPStudy reproduces §3.6: copy prefetching raises the copy percentage
// (paper: 21.4%) for additional performance (paper: +16.7%).
func CPStudy(s *SpecSweep) *report.Table {
	t := report.NewTable("§3.6 — copy prefetching (averages over SPEC Int)",
		"speedup", "helper", "copies", "prefetches")
	for _, policy := range []string{"8_8_8+BR+LR+CR", "8_8_8+BR+LR+CR+CP"} {
		var spd, hf, cf, pf float64
		for _, app := range s.Apps {
			m := s.ByPolicy[policy][app].Metrics
			spd += s.speedup(policy, app)
			hf += 100 * m.HelperFrac()
			cf += 100 * m.CopyFrac()
			if m.CopiesCreated > 0 {
				pf += 100 * float64(m.CopyPrefetch) / float64(m.CopiesCreated)
			}
		}
		n := float64(len(s.Apps))
		t.AddRow(policy, spd/n, hf/n, cf/n, pf/n)
	}
	return t
}

// IRStudy reproduces §3.7: instruction splitting for imbalance reduction,
// the tuned no-destination variant, the NREADY imbalance before and after,
// and the energy-delay² comparison.
func IRStudy(s *SpecSweep) *report.Table {
	t := report.NewTable("§3.7 — instruction splitting (averages over SPEC Int)",
		"speedup", "helper", "copies", "w2n-imb", "n2w-imb")
	for _, policy := range []string{"8_8_8+BR+LR+CR+CP", "8_8_8+BR+LR+CR+CP+IR", "8_8_8+BR+LR+CR+CP+IRnd"} {
		var spd, hf, cf, w2n, n2w float64
		for _, app := range s.Apps {
			m := s.ByPolicy[policy][app].Metrics
			spd += s.speedup(policy, app)
			hf += 100 * m.HelperFrac()
			cf += 100 * m.CopyFrac()
			w2n += 100 * m.ImbalanceWideToNarrow()
			n2w += 100 * m.ImbalanceNarrowToWide()
		}
		n := float64(len(s.Apps))
		t.AddRow(policy, spd/n, hf/n, cf/n, w2n/n, n2w/n)
	}
	return t
}

// EnergyDelay reproduces the §3.7 wrap-up comparison: energy-delay² of the
// most aggressive helper configuration vs the monolithic baseline (paper:
// helper 5.1% more ED²-efficient).
func EnergyDelay(s *SpecSweep) *report.Table {
	baseModel := power.New(config.PentiumLikeBaseline())
	helperModel := power.New(config.WithHelper())
	t := report.NewTable("§3.7 — energy-delay² (IR configuration vs baseline)",
		"energy-ratio", "delay-ratio", "ed2-gain%")
	var sumE, sumD, sumG float64
	for _, app := range s.Apps {
		b := s.Baseline[app]
		h := s.ByPolicy["8_8_8+BR+LR+CR+CP+IR"][app]
		bm, hm := b.Metrics, h.Metrics
		rb := baseModel.Estimate(&bm, b.L1, b.L2, b.TC)
		rh := helperModel.Estimate(&hm, h.L1, h.L2, h.TC)
		eRatio := rh.EnergyNJ / rb.EnergyNJ
		dRatio := float64(rh.WideCycles) / float64(rb.WideCycles)
		gain := 100 * power.ED2Gain(rh, rb)
		t.AddRow(app, eRatio, dRatio, gain)
		sumE += eRatio
		sumD += dRatio
		sumG += gain
	}
	n := float64(len(s.Apps))
	t.AddRow("AVG", sumE/n, sumD/n, sumG/n)
	return t
}

// Table1 renders the Table 1 machine parameters.
func Table1() *report.Table {
	p := config.PentiumLikeBaseline()
	t := report.NewTable("Table 1 — monolithic baseline parameters", "value")
	t.Precision = 0
	t.AddRow("trace cache (uops)", float64(p.TCUops))
	t.AddRow("trace cache ways", float64(p.TCWays))
	t.AddRow("DL0 size (KB)", float64(p.L1.SizeBytes>>10))
	t.AddRow("DL0 ways", float64(p.L1.Ways))
	t.AddRow("DL0 latency (cycles)", float64(p.L1.LatencyCycles))
	t.AddRow("UL1 size (MB)", float64(p.L2.SizeBytes>>20))
	t.AddRow("UL1 ways", float64(p.L2.Ways))
	t.AddRow("UL1 latency (cycles)", float64(p.L2.LatencyCycles))
	t.AddRow("int scheduler entries", float64(p.WideIQ))
	t.AddRow("int issue width", float64(p.WideIssue))
	t.AddRow("fp scheduler entries", float64(p.FPIQ))
	t.AddRow("fp issue width", float64(p.FPIssue))
	t.AddRow("commit width", float64(p.CommitWidth))
	t.AddRow("main memory (cycles)", float64(p.MemLatency))
	t.AddRow("width predictor entries", float64(p.WidthEntries))
	return t
}

// Table2 renders the Table 2 workload inventory.
func Table2() *report.Table {
	t := report.NewTable("Table 2 — workload categories", "traces")
	t.Precision = 0
	total := 0
	for _, c := range workload.Categories() {
		t.AddRow(fmt.Sprintf("%s (%s)", c.Name, c.Description), float64(c.Count))
		total += c.Count
	}
	t.AddRow("total", float64(total))
	return t
}

// Fig14 reproduces Figure 14: average speedup of the IR policy per
// workload category (left panel) and the sorted per-application speedup
// curve over the full 412-trace suite (right panel). It panics on
// simulator failure; use Fig14Ctx for error returns and cancellation.
func Fig14(o Options) (*report.Table, report.Series) {
	t, series, err := Fig14Ctx(context.Background(), o)
	if err != nil {
		panic(err)
	}
	return t, series
}

// Fig14Ctx is Fig14 with cancellation over the 412-trace fan-out. The
// first simulator failure cancels the remaining traces instead of letting
// the whole suite run before surfacing.
func Fig14Ctx(ctx context.Context, o Options) (*report.Table, report.Series, error) {
	suite := workload.Suite()
	type out struct {
		category string
		speedup  float64
	}
	results, err := parallel.Map(ctx, len(suite), o.Workers, func(ctx context.Context, i int) (out, error) {
		p := suite[i]
		warm := o.SuiteUops / 4
		base, runErr := runOne(ctx, p, steer.Baseline(), o.SuiteUops, warm)
		if runErr != nil {
			return out{}, fmt.Errorf("experiments: %s/baseline: %w", p.Name, runErr)
		}
		ir, runErr := runOne(ctx, p, steer.FIR(), o.SuiteUops, warm)
		if runErr != nil {
			return out{}, fmt.Errorf("experiments: %s/IR: %w", p.Name, runErr)
		}
		bm, im := base.Metrics, ir.Metrics
		return out{category: p.Category, speedup: 100 * metrics.Speedup(&im, &bm)}, nil
	})
	if err != nil {
		return nil, report.Series{}, err
	}

	sums := map[string]float64{}
	counts := map[string]int{}
	var series report.Series
	series.Name = "Figure 14 — per-application speedup over baseline (%), sorted"
	for _, r := range results {
		sums[r.category] += r.speedup
		counts[r.category]++
		series.Values = append(series.Values, r.speedup)
	}
	t := report.NewTable("Figure 14 — helper cluster performance by workload category (%)",
		"speedup", "traces")
	for _, c := range workload.Categories() {
		t.AddRow(c.Name, sums[c.Name]/float64(counts[c.Name]), float64(counts[c.Name]))
	}
	t.AddRow("AVG(all)", series.Mean(), float64(len(series.Values)))
	return t, series, nil
}

// SpecLadder summarizes the full policy ladder over SPEC Int — the §3
// narrative in one table.
func SpecLadder(s *SpecSweep) *report.Table {
	t := report.NewTable("Policy ladder — SPEC Int 2000 averages",
		"speedup", "helper", "copies", "fatal-flushes")
	for _, f := range s.Policies {
		name := f.Name()
		var spd, hf, cf, ff float64
		for _, app := range s.Apps {
			m := s.ByPolicy[name][app].Metrics
			spd += s.speedup(name, app)
			hf += 100 * m.HelperFrac()
			cf += 100 * m.CopyFrac()
			ff += float64(m.FatalFlushes)
		}
		n := float64(len(s.Apps))
		t.AddRow(name, spd/n, hf/n, cf/n, ff/n)
	}
	return t
}
