// Package experiments regenerates every table and figure of the paper's
// evaluation (§3): trace-level characterizations (Figures 1, 11, 13),
// the steering-policy ladder over SPEC Int 2000 (Figures 5-9, 12, the CP
// and IR studies), the configuration and workload inventories (Tables 1,
// 2), and the 412-application wrap-up (Figure 14).
//
// Simulations for different workloads are independent, so sweeps fan out
// over a worker pool.
package experiments

import (
	"runtime"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/steer"
	"repro/internal/workload"
)

// Options scales the experiment suite.
type Options struct {
	// SpecUops is the committed-uop budget per SPEC trace (the paper
	// simulated 100M-instruction traces; the default here keeps the full
	// suite in seconds while preserving the shapes).
	SpecUops uint64
	// SuiteUops is the budget per trace of the 412-application suite.
	SuiteUops uint64
	// Warmup is the per-run warm-up budget in committed uops (predictors
	// and caches fill, counters reset) — the synthetic equivalent of the
	// paper's skipping of each trace's initialization slice (§3.1).
	Warmup uint64
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{SpecUops: 150_000, SuiteUops: 30_000, Warmup: 30_000}
}

// Quick returns a reduced scale for tests.
func Quick() Options {
	return Options{SpecUops: 20_000, SuiteUops: 5_000, Warmup: 5_000}
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// parallelMap evaluates fn for 0..n-1 on a bounded worker pool.
func parallelMap[T any](n, workers int, fn func(i int) T) []T {
	out := make([]T, n)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	work := make(chan int)
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func() {
			for i := range work {
				out[i] = fn(i)
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < n; i++ {
		work <- i
	}
	close(work)
	for w := 0; w < workers; w++ {
		<-done
	}
	return out
}

// runOne simulates one workload under one policy with warmup.
func runOne(p workload.Profile, feats steer.Features, n, warm uint64) core.Result {
	cfg := config.PentiumLikeBaseline()
	if feats.Enable888 {
		cfg = config.WithHelper()
	}
	return core.MustNew(cfg, feats, p.MustStream()).RunWarm(n, warm)
}

// SpecSweep holds one full policy-ladder sweep over the 12 SPEC traces;
// the figure builders read from it so the expensive runs happen once.
type SpecSweep struct {
	Opts     Options
	Apps     []string
	Baseline map[string]core.Result
	Policies []steer.Features
	ByPolicy map[string]map[string]core.Result // policy name → app → result
	// NoConfidence holds the 8_8_8 runs without the confidence estimator
	// (the §3.2 fatal-rate comparison).
	NoConfidence map[string]core.Result
}

// RunSpecSweep runs baseline + the full ladder (+ the no-confidence
// variant) over the 12 SPEC profiles in parallel.
func RunSpecSweep(o Options) *SpecSweep {
	profiles := workload.SpecInt2000()
	policies := steer.Ladder()
	s := &SpecSweep{
		Opts:         o,
		Policies:     policies,
		Baseline:     make(map[string]core.Result, len(profiles)),
		ByPolicy:     make(map[string]map[string]core.Result, len(policies)),
		NoConfidence: make(map[string]core.Result, len(profiles)),
	}
	for _, p := range profiles {
		s.Apps = append(s.Apps, p.Name)
	}
	for _, f := range policies {
		s.ByPolicy[f.Name()] = make(map[string]core.Result, len(profiles))
	}

	type job struct {
		app   string
		prof  workload.Profile
		feats steer.Features
		kind  int // 0 baseline, 1 policy, 2 no-confidence
	}
	var jobs []job
	for _, p := range profiles {
		jobs = append(jobs, job{app: p.Name, prof: p, feats: steer.Baseline(), kind: 0})
		for _, f := range policies {
			jobs = append(jobs, job{app: p.Name, prof: p, feats: f, kind: 1})
		}
		jobs = append(jobs, job{app: p.Name, prof: p, feats: steer.F888NoConfidence(), kind: 2})
	}
	results := parallelMap(len(jobs), o.workers(), func(i int) core.Result {
		return runOne(jobs[i].prof, jobs[i].feats, o.SpecUops, o.Warmup)
	})
	for i, j := range jobs {
		switch j.kind {
		case 0:
			s.Baseline[j.app] = results[i]
		case 1:
			s.ByPolicy[j.feats.Name()][j.app] = results[i]
		case 2:
			s.NoConfidence[j.app] = results[i]
		}
	}
	return s
}

// speedup returns the percent speedup of app under policy vs baseline.
func (s *SpecSweep) speedup(policy, app string) float64 {
	r := s.ByPolicy[policy][app].Metrics
	b := s.Baseline[app].Metrics
	return 100 * metrics.Speedup(&r, &b)
}
