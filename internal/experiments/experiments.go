// Package experiments regenerates every table and figure of the paper's
// evaluation (§3): trace-level characterizations (Figures 1, 11, 13),
// the steering-policy ladder over SPEC Int 2000 (Figures 5-9, 12, the CP
// and IR studies), the configuration and workload inventories (Tables 1,
// 2), and the 412-application wrap-up (Figure 14).
//
// Simulations for different workloads are independent, so sweeps fan out
// over a worker pool.
package experiments

import (
	"context"
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/parallel"
	"repro/internal/steer"
	"repro/internal/workload"
)

// Options scales the experiment suite.
type Options struct {
	// SpecUops is the committed-uop budget per SPEC trace (the paper
	// simulated 100M-instruction traces; the default here keeps the full
	// suite in seconds while preserving the shapes).
	SpecUops uint64
	// SuiteUops is the budget per trace of the 412-application suite.
	SuiteUops uint64
	// Warmup is the per-run warm-up budget in committed uops (predictors
	// and caches fill, counters reset) — the synthetic equivalent of the
	// paper's skipping of each trace's initialization slice (§3.1).
	Warmup uint64
	// Workers bounds sweep parallelism; 0 means GOMAXPROCS.
	Workers int
}

// DefaultOptions returns the standard experiment scale.
func DefaultOptions() Options {
	return Options{SpecUops: 150_000, SuiteUops: 30_000, Warmup: 30_000}
}

// Quick returns a reduced scale for tests.
func Quick() Options {
	return Options{SpecUops: 20_000, SuiteUops: 5_000, Warmup: 5_000}
}

// runOne simulates one workload under one policy with warmup. Sims come
// from the core pool: the full-suite sweeps (Figure 14 runs 824
// simulations) recycle one Sim per worker instead of constructing a
// megabyte of simulator state per run.
func runOne(ctx context.Context, p workload.Profile, pol steer.Policy, n, warm uint64) (core.Result, error) {
	cfg := config.PentiumLikeBaseline()
	if pol.NeedsHelper() {
		cfg = config.WithHelper()
	}
	sim, err := core.Acquire(cfg, pol, p.MustStream())
	if err != nil {
		return core.Result{}, err
	}
	defer core.Release(sim)
	return sim.RunWarmCtx(ctx, n, warm)
}

// SpecSweep holds one full policy-ladder sweep over the 12 SPEC traces;
// the figure builders read from it so the expensive runs happen once.
type SpecSweep struct {
	Opts     Options
	Apps     []string
	Baseline map[string]core.Result
	Policies []steer.Features
	ByPolicy map[string]map[string]core.Result // policy name → app → result
	// NoConfidence holds the 8_8_8 runs without the confidence estimator
	// (the §3.2 fatal-rate comparison).
	NoConfidence map[string]core.Result
}

// RunSpecSweep runs baseline + the full ladder (+ the no-confidence
// variant) over the 12 SPEC profiles in parallel. It panics on simulator
// failure; use RunSpecSweepCtx for error returns and cancellation.
func RunSpecSweep(o Options) *SpecSweep {
	s, err := RunSpecSweepCtx(context.Background(), o)
	if err != nil {
		panic(err)
	}
	return s
}

// RunSpecSweepCtx is RunSpecSweep with cancellation: the fan-out stops
// dispatching and in-flight simulations wind down as soon as ctx is done.
func RunSpecSweepCtx(ctx context.Context, o Options) (*SpecSweep, error) {
	profiles := workload.SpecInt2000()
	policies := steer.Ladder()
	s := &SpecSweep{
		Opts:         o,
		Policies:     policies,
		Baseline:     make(map[string]core.Result, len(profiles)),
		ByPolicy:     make(map[string]map[string]core.Result, len(policies)),
		NoConfidence: make(map[string]core.Result, len(profiles)),
	}
	for _, p := range profiles {
		s.Apps = append(s.Apps, p.Name)
	}
	for _, f := range policies {
		s.ByPolicy[f.Name()] = make(map[string]core.Result, len(profiles))
	}

	type job struct {
		app   string
		prof  workload.Profile
		feats steer.Features
		kind  int // 0 baseline, 1 policy, 2 no-confidence
	}
	var jobs []job
	for _, p := range profiles {
		jobs = append(jobs, job{app: p.Name, prof: p, feats: steer.Baseline(), kind: 0})
		for _, f := range policies {
			jobs = append(jobs, job{app: p.Name, prof: p, feats: f, kind: 1})
		}
		jobs = append(jobs, job{app: p.Name, prof: p, feats: steer.F888NoConfidence(), kind: 2})
	}
	// parallel.Map cancels the rest of the sweep on the first real failure
	// and reports it; a plain context cancellation surfaces unattributed.
	results, err := parallel.Map(ctx, len(jobs), o.Workers, func(ctx context.Context, i int) (core.Result, error) {
		r, runErr := runOne(ctx, jobs[i].prof, jobs[i].feats, o.SpecUops, o.Warmup)
		if runErr != nil {
			return r, fmt.Errorf("experiments: %s/%s: %w", jobs[i].app, jobs[i].feats.Name(), runErr)
		}
		return r, nil
	})
	if err != nil {
		return nil, err
	}
	for i, j := range jobs {
		switch j.kind {
		case 0:
			s.Baseline[j.app] = results[i]
		case 1:
			s.ByPolicy[j.feats.Name()][j.app] = results[i]
		case 2:
			s.NoConfidence[j.app] = results[i]
		}
	}
	return s, nil
}

// speedup returns the percent speedup of app under policy vs baseline.
func (s *SpecSweep) speedup(policy, app string) float64 {
	r := s.ByPolicy[policy][app].Metrics
	b := s.Baseline[app].Metrics
	return 100 * metrics.Speedup(&r, &b)
}
