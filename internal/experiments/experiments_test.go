package experiments

import (
	"strings"
	"testing"
)

func TestSpecSweepAndFigures(t *testing.T) {
	o := Quick()
	s := RunSpecSweep(o)
	if len(s.Apps) != 12 {
		t.Fatalf("apps = %d", len(s.Apps))
	}
	if len(s.Baseline) != 12 || len(s.NoConfidence) != 12 {
		t.Fatal("sweep incomplete")
	}
	for name, byApp := range s.ByPolicy {
		if len(byApp) != 12 {
			t.Errorf("policy %s has %d apps", name, len(byApp))
		}
	}

	fig5 := Fig5(s)
	if fig5.Rows() != 13 { // 12 apps + AVG
		t.Errorf("fig5 rows = %d", fig5.Rows())
	}
	// Correct + non-fatal + fatal ≈ 100 per app.
	for r := 0; r < 12; r++ {
		sum := fig5.Value(r, 0) + fig5.Value(r, 1) + fig5.Value(r, 2)
		if sum < 99 || sum > 101 {
			t.Errorf("fig5 row %s sums to %.1f", fig5.Label(r), sum)
		}
	}
	// Confidence must not increase the fatal rate on average.
	avg := fig5.Rows() - 1
	if fig5.Value(avg, 2) > fig5.Value(avg, 3)+0.5 {
		t.Errorf("fatal with confidence (%.2f) must not exceed without (%.2f)",
			fig5.Value(avg, 2), fig5.Value(avg, 3))
	}

	fig6 := Fig6(s)
	if fig6.Rows() != 13 {
		t.Errorf("fig6 rows = %d", fig6.Rows())
	}
	// The BR+LR rung is robustly positive even at test scale (the 8_8_8
	// entry point hovers near zero on short runs, as in the paper's
	// worst applications).
	var sumLR float64
	for _, app := range s.Apps {
		sumLR += s.speedup("8_8_8+BR+LR", app)
	}
	if sumLR/float64(len(s.Apps)) <= 0 {
		t.Error("8_8_8+BR+LR average speedup must be positive")
	}

	fig8 := Fig8(s)
	r := fig8.Rows() - 1
	if fig8.Value(r, 1) >= fig8.Value(r, 0) {
		t.Errorf("BR must cut average copies: %.1f vs %.1f", fig8.Value(r, 1), fig8.Value(r, 0))
	}

	fig9 := Fig9(s)
	r = fig9.Rows() - 1
	if fig9.Value(r, 2) > fig9.Value(r, 1)+0.5 {
		t.Errorf("LR must not raise copies: %.1f vs %.1f", fig9.Value(r, 2), fig9.Value(r, 1))
	}

	ir := IRStudy(s)
	if ir.Rows() != 3 {
		t.Fatalf("IR rows = %d", ir.Rows())
	}
	// IR reduces the wide-to-narrow NREADY imbalance vs CP.
	if ir.Value(1, 3) >= ir.Value(0, 3) {
		t.Errorf("IR must cut w2n imbalance: %.2f vs %.2f", ir.Value(1, 3), ir.Value(0, 3))
	}
	// The tuned variant has fewer copies than full IR.
	if ir.Value(2, 2) >= ir.Value(1, 2) {
		t.Errorf("IRnd must cut copies: %.2f vs %.2f", ir.Value(2, 2), ir.Value(1, 2))
	}

	ed := EnergyDelay(s)
	if ed.Rows() != 13 {
		t.Errorf("ed rows = %d", ed.Rows())
	}

	ladder := SpecLadder(s)
	if ladder.Rows() != 7 {
		t.Errorf("ladder rows = %d", ladder.Rows())
	}
	cp := CPStudy(s)
	if cp.Rows() != 2 {
		t.Errorf("cp rows = %d", cp.Rows())
	}

	// The dynamic-selection study rides on the same sweep for its static
	// oracle column.
	d := RunDynamicSweep(o)
	if len(d.Apps) != 12 || len(d.Tournament) != 12 || len(d.Occupancy) != 12 ||
		len(d.UCB) != 12 || len(d.UCBED2) != 12 {
		t.Fatal("dynamic sweep incomplete")
	}
	fd := FigDynamic(s, d)
	if fd.Rows() != 13 {
		t.Errorf("dynamic figure rows = %d", fd.Rows())
	}
	fe := FigDynamicED2(s, d)
	if fe.Rows() != 13 {
		t.Errorf("dynamic ED2 figure rows = %d", fe.Rows())
	}
	for _, app := range d.Apps {
		if len(d.UCB[app].Rungs) == 0 {
			t.Errorf("%s: UCB run reported no usage breakdown", app)
		}
	}
	du := DynamicUsage(d)
	if du.Rows() != 13 {
		t.Errorf("dynamic usage rows = %d", du.Rows())
	}
	for r := 0; r < 12; r++ {
		var sum float64
		for c := 0; c < 3; c++ {
			sum += du.Value(r, c)
		}
		if sum < 99 || sum > 101 {
			t.Errorf("usage shares for %s sum to %.1f, want ~100", du.Label(r), sum)
		}
	}
}

func TestTraceFigures(t *testing.T) {
	o := Quick()
	fig1 := Fig1(o)
	if fig1.Rows() != 13 {
		t.Fatalf("fig1 rows = %d", fig1.Rows())
	}
	avg := fig1.Rows() - 1
	if v := fig1.Value(avg, 0); v < 40 || v > 90 {
		t.Errorf("fig1 avg narrow dependency %.1f%% off calibration", v)
	}

	fig11 := Fig11(o)
	if v := fig11.Value(fig11.Rows()-1, 1); v < 20 || v > 100 {
		t.Errorf("fig11 avg load containment %.1f%% implausible", v)
	}

	fig13 := Fig13(o)
	if v := fig13.Value(fig13.Rows()-1, 0); v < 1 || v > 10 {
		t.Errorf("fig13 avg distance %.1f implausible", v)
	}
}

func TestStaticTables(t *testing.T) {
	t1 := Table1()
	if !strings.Contains(t1.Render(), "450") {
		t.Error("Table 1 must include the 450-cycle memory latency")
	}
	t2 := Table2()
	if t2.Rows() != 8 { // 7 categories + total
		t.Errorf("table2 rows = %d", t2.Rows())
	}
	if t2.Value(7, 0) != 412 {
		t.Errorf("suite total = %.0f, want 412", t2.Value(7, 0))
	}
}

func TestFig14Small(t *testing.T) {
	if testing.Short() {
		t.Skip("full-suite sweep")
	}
	o := Quick()
	o.SuiteUops = 2000
	table, series := Fig14(o)
	if table.Rows() != 8 { // 7 categories + overall
		t.Fatalf("fig14 rows = %d", table.Rows())
	}
	if len(series.Values) != 412 {
		t.Fatalf("series n = %d", len(series.Values))
	}
	if series.Curve(60, 10) == "" {
		t.Error("curve rendering failed")
	}
}
