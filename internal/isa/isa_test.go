package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestClassStrings(t *testing.T) {
	for c := Class(0); c < NumClasses; c++ {
		if s := c.String(); s == "" || strings.HasPrefix(s, "class(") {
			t.Errorf("class %d has no name", c)
		}
	}
	if Class(200).String() != "class(200)" {
		t.Error("out-of-range class should fall back to numeric form")
	}
}

func TestALUOpStrings(t *testing.T) {
	for op := ALUOp(0); op < NumALUOps; op++ {
		if s := op.String(); s == "" || strings.HasPrefix(s, "aluop(") {
			t.Errorf("op %d has no name", op)
		}
	}
}

func TestClassPredicates(t *testing.T) {
	if !ClassLoad.IsMem() || !ClassStore.IsMem() || ClassALU.IsMem() {
		t.Error("IsMem wrong")
	}
	if !ClassBranch.IsControl() || !ClassJump.IsControl() || ClassLoad.IsControl() {
		t.Error("IsControl wrong")
	}
}

func TestWritesDest(t *testing.T) {
	if OpCmp.WritesDest() || OpTest.WritesDest() {
		t.Error("cmp/test write only flags")
	}
	if !OpAdd.WritesDest() || !OpMov.WritesDest() {
		t.Error("add/mov write a destination")
	}
}

func TestRegName(t *testing.T) {
	if RegName(0) != "r0" || RegName(RegFlags) != "flags" || RegName(RegNone) != "-" {
		t.Error("RegName wrong")
	}
}

func TestUopHelpers(t *testing.T) {
	u := Uop{Class: ClassALU, Op: OpAdd, DstReg: 3, NSrc: 2}
	u.SrcReg = [MaxSrcs]uint8{1, 2, RegNone}
	if !u.HasDest() {
		t.Error("uop with DstReg=3 has a destination")
	}
	if got := u.SourceRegs(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("SourceRegs = %v", got)
	}
	u.DstReg = RegNone
	if u.HasDest() {
		t.Error("RegNone destination must report no dest")
	}
}

func TestUopString(t *testing.T) {
	br := Uop{Class: ClassBranch, PC: 0x40, Taken: true, Target: 0x80}
	if s := br.String(); !strings.Contains(s, "branch") || !strings.Contains(s, "(t)") {
		t.Errorf("branch string: %s", s)
	}
	ld := Uop{Class: ClassLoad, PC: 0x44, DstReg: 2, MemAddr: 0x1000, MemSize: 4}
	if s := ld.String(); !strings.Contains(s, "load") || !strings.Contains(s, "0x1000") {
		t.Errorf("load string: %s", s)
	}
	alu := Uop{Class: ClassALU, Op: OpXor, PC: 0x48, DstReg: 1, NSrc: 1, HasImm: true, Imm: 7}
	alu.SrcReg[0] = 1
	if s := alu.String(); !strings.Contains(s, "xor") || !strings.Contains(s, "imm=0x7") {
		t.Errorf("alu string: %s", s)
	}
}

func TestEvalBasics(t *testing.T) {
	cases := []struct {
		op   ALUOp
		a, b uint32
		want uint32
	}{
		{OpAdd, 2, 3, 5},
		{OpLea, 0x1000, 0x24, 0x1024},
		{OpSub, 5, 7, 0xFFFFFFFE},
		{OpCmp, 5, 5, 0},
		{OpAnd, 0xF0F0, 0x0FF0, 0x00F0},
		{OpTest, 0xF0F0, 0x0FF0, 0x00F0},
		{OpOr, 0xF0, 0x0F, 0xFF},
		{OpXor, 0xFF, 0x0F, 0xF0},
		{OpShl, 1, 4, 16},
		{OpShl, 1, 36, 16}, // IA-32 masks the count to 5 bits
		{OpShr, 16, 4, 1},
		{OpMov, 99, 42, 42},
		{OpInc, 41, 0, 42},
		{OpDec, 43, 0, 42},
		{OpNeg, 1, 0, 0xFFFFFFFF},
		{OpNot, 0, 0, 0xFFFFFFFF},
	}
	for _, c := range cases {
		if got := Eval(c.op, c.a, c.b); got != c.want {
			t.Errorf("Eval(%v, %#x, %#x) = %#x, want %#x", c.op, c.a, c.b, got, c.want)
		}
	}
}

// TestEvalAddSubInverse: property — sub undoes add.
func TestEvalAddSubInverse(t *testing.T) {
	f := func(a, b uint32) bool {
		return Eval(OpSub, Eval(OpAdd, a, b), b) == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
