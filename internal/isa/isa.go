// Package isa defines the IA-32-like micro-operation (uop) model used by the
// helper-cluster simulator.
//
// The paper's machine translates IA-32 instructions into uops in the trace
// cache; the simulator operates purely on uops. Each uop carries the actual
// values it consumed and produced when the trace was generated, so the
// timing model can observe genuine data widths, carry propagation and flags
// behaviour instead of sampled labels.
package isa

import "fmt"

// Class is the coarse functional class of a uop. It determines which
// functional unit executes it and which steering rules apply.
type Class uint8

// Uop classes. ClassCopy is never found in traces; the simulator injects
// copy uops for inter-cluster communication (Canal/Parcerisa/González
// PACT-99 scheme referenced by the paper).
const (
	ClassALU    Class = iota // single-cycle integer arithmetic/logic
	ClassMul                 // integer multiply (wide cluster only)
	ClassDiv                 // integer divide (wide cluster only)
	ClassLoad                // memory load (AGU + cache access)
	ClassStore               // memory store (AGU; data written at commit)
	ClassBranch              // conditional branch, reads the flags register
	ClassJump                // unconditional or indirect jump
	ClassFP                  // floating point (wide cluster FP queue only)
	ClassCopy                // inter-cluster copy, simulator-internal
	NumClasses
)

var classNames = [NumClasses]string{
	"alu", "mul", "div", "load", "store", "branch", "jump", "fp", "copy",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// IsMem reports whether the class accesses memory.
func (c Class) IsMem() bool { return c == ClassLoad || c == ClassStore }

// IsControl reports whether the class redirects control flow.
func (c Class) IsControl() bool { return c == ClassBranch || c == ClassJump }

// ALUOp identifies the concrete integer operation of a ClassALU (or the
// address-generation add of loads/stores). The carry-width analysis of the
// CR scheme needs to know the exact operation to decide whether the upper
// 24 bits of the wide source survive.
type ALUOp uint8

// Integer operations. OpCmp and OpTest write only the flags register; they
// have no destination register, which makes them the preferred candidates
// for the tuned IR splitting heuristic (§3.7).
const (
	OpAdd ALUOp = iota
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpMov
	OpCmp
	OpTest
	OpInc
	OpDec
	OpNeg
	OpNot
	OpLea // address arithmetic executed on an AGU/ALU
	NumALUOps
)

var aluOpNames = [NumALUOps]string{
	"add", "sub", "and", "or", "xor", "shl", "shr", "mov",
	"cmp", "test", "inc", "dec", "neg", "not", "lea",
}

func (op ALUOp) String() string {
	if int(op) < len(aluOpNames) {
		return aluOpNames[op]
	}
	return fmt.Sprintf("aluop(%d)", uint8(op))
}

// WritesDest reports whether the operation produces a destination register
// value (OpCmp and OpTest only write flags).
func (op ALUOp) WritesDest() bool { return op != OpCmp && op != OpTest }

// Architectural registers. The model uses 16 general-purpose identifiers
// (the IA-32 internal machine state of the paper's frontend exposes more
// names than the 8 architectural IA-32 registers) plus a flags register.
const (
	NumGPR   = 16   // general-purpose architectural registers, ids 0..15
	RegFlags = 16   // the flags register written by arithmetic, read by branches
	NumRegs  = 17   // total architectural name space
	RegNone  = 0xFF // absent operand
)

// RegName returns a printable name for an architectural register id.
func RegName(r uint8) string {
	switch {
	case r == RegNone:
		return "-"
	case r == RegFlags:
		return "flags"
	default:
		return fmt.Sprintf("r%d", r)
	}
}

// MaxSrcs is the maximum number of register sources a uop can carry. The
// IA-32 internal machine state can require more than 2 sources (§3.2), e.g.
// address base + index + data for a store.
const MaxSrcs = 3

// Uop is one executed micro-operation of a trace: its static identity (PC,
// class, operation, register names) plus the dynamic facts of this execution
// (values, memory address, branch direction). Values are recorded by the
// functional executor that produced the trace.
type Uop struct {
	Seq uint64 // dynamic sequence number within the trace
	PC  uint32 // static uop address (trace cache / predictor index)

	Class Class
	Op    ALUOp // valid for ClassALU, and address math of loads/stores

	NSrc   uint8
	SrcReg [MaxSrcs]uint8  // architectural source registers (RegNone padded)
	SrcVal [MaxSrcs]uint32 // actual source values at execution

	DstReg uint8  // destination architectural register or RegNone
	DstVal uint32 // actual result value (destination register or load data)

	Imm    uint32 // immediate operand when HasImm
	HasImm bool

	ReadsFlags  bool // branches; also adc-like ops if generated
	WritesFlags bool // arithmetic producing condition codes

	// Branch facts (ClassBranch/ClassJump).
	Taken  bool
	Target uint32
	// FrontendResolvable marks EIP+immediate conditional branches whose
	// target the BR scheme resolves in the frontend (§3.3), making them
	// eligible for helper-cluster steering.
	FrontendResolvable bool

	// ImplicitWide marks uops whose IA-32 internal machine state carries
	// an implicit wide operand (segment bases, stack pointer updates,
	// partial-register merges). §3.2 observes that "all the input
	// operands (which can be more than 2 in the IA-32 internal machine
	// state) ... must be narrow" for 8_8_8 steering, and that this
	// "occurs less frequently" — these uops are the reason.
	ImplicitWide bool

	// Memory facts (ClassLoad/ClassStore).
	MemAddr uint32
	MemSize uint8 // access size in bytes: 1, 2 or 4
}

// HasDest reports whether the uop writes a destination register.
func (u *Uop) HasDest() bool { return u.DstReg != RegNone }

// SourceRegs returns the live source register ids (excluding RegNone).
func (u *Uop) SourceRegs() []uint8 {
	regs := make([]uint8, 0, MaxSrcs)
	for i := 0; i < int(u.NSrc); i++ {
		if u.SrcReg[i] != RegNone {
			regs = append(regs, u.SrcReg[i])
		}
	}
	return regs
}

// String renders a compact single-line disassembly-like description.
func (u *Uop) String() string {
	switch u.Class {
	case ClassBranch, ClassJump:
		dir := "nt"
		if u.Taken {
			dir = "t"
		}
		return fmt.Sprintf("%#x: %s -> %#x (%s)", u.PC, u.Class, u.Target, dir)
	case ClassLoad, ClassStore:
		return fmt.Sprintf("%#x: %s %s, [%#x]%d", u.PC, u.Class, RegName(u.DstReg), u.MemAddr, u.MemSize)
	default:
		s := fmt.Sprintf("%#x: %s.%s %s", u.PC, u.Class, u.Op, RegName(u.DstReg))
		for i := 0; i < int(u.NSrc); i++ {
			s += fmt.Sprintf(" %s=%#x", RegName(u.SrcReg[i]), u.SrcVal[i])
		}
		if u.HasImm {
			s += fmt.Sprintf(" imm=%#x", u.Imm)
		}
		return s
	}
}

// Eval computes the result of an ALU operation on two operands, mirroring
// the functional executor's semantics. Shift counts are masked to 5 bits as
// on IA-32. OpCmp behaves like OpSub and OpTest like OpAnd for the flags
// value; their register result is discarded by the caller.
func Eval(op ALUOp, a, b uint32) uint32 {
	switch op {
	case OpAdd, OpLea:
		return a + b
	case OpSub, OpCmp:
		return a - b
	case OpAnd, OpTest:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 31)
	case OpShr:
		return a >> (b & 31)
	case OpMov:
		return b
	case OpInc:
		return a + 1
	case OpDec:
		return a - 1
	case OpNeg:
		return -a
	case OpNot:
		return ^a
	default:
		return 0
	}
}
