package workload

import (
	"testing"

	"repro/internal/bitwidth"
	"repro/internal/isa"
)

func TestSpecInt2000Inventory(t *testing.T) {
	profiles := SpecInt2000()
	if len(profiles) != 12 {
		t.Fatalf("expected 12 SPEC profiles, got %d", len(profiles))
	}
	seen := map[string]bool{}
	for i, p := range profiles {
		if p.Name != SpecIntNames[i] {
			t.Errorf("profile %d = %s, want %s (figure order)", i, p.Name, SpecIntNames[i])
		}
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if err := p.Params.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", p.Name, err)
		}
	}
}

func TestSpecIntByName(t *testing.T) {
	p, ok := SpecIntByName("gcc")
	if !ok || p.Name != "gcc" {
		t.Error("gcc lookup failed")
	}
	if _, ok := SpecIntByName("nosuch"); ok {
		t.Error("bogus lookup must fail")
	}
}

func TestCategoriesTable2(t *testing.T) {
	cats := Categories()
	if len(cats) != 7 {
		t.Fatalf("expected 7 categories, got %d", len(cats))
	}
	wantCounts := map[string]int{
		"enc": 62, "sfp": 41, "kernels": 52, "mm": 88,
		"office": 75, "prod": 45, "ws": 49,
	}
	total := 0
	for _, c := range cats {
		if want, ok := wantCounts[c.Name]; !ok || c.Count != want {
			t.Errorf("category %s count = %d, want %d", c.Name, c.Count, want)
		}
		total += c.Count
		if err := c.Base.Validate(); err != nil {
			t.Errorf("%s: invalid base params: %v", c.Name, err)
		}
	}
	if total != SuiteSize {
		t.Errorf("suite total = %d, want %d", total, SuiteSize)
	}
}

func TestSuiteExpansion(t *testing.T) {
	suite := Suite()
	if len(suite) != SuiteSize {
		t.Fatalf("suite size = %d, want %d", len(suite), SuiteSize)
	}
	names := map[string]bool{}
	seeds := map[int64]bool{}
	for _, p := range suite {
		if names[p.Name] {
			t.Errorf("duplicate trace name %s", p.Name)
		}
		names[p.Name] = true
		if seeds[p.Params.Seed] {
			t.Errorf("duplicate seed %d (%s)", p.Params.Seed, p.Name)
		}
		seeds[p.Params.Seed] = true
		if err := p.Params.Validate(); err != nil {
			t.Errorf("%s: invalid params: %v", p.Name, err)
		}
	}
}

func TestSuiteDeterminism(t *testing.T) {
	a, b := Suite(), Suite()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("suite not deterministic at %d", i)
		}
	}
}

// TestSpecProfilesProduceCalibratedNarrowness: each SPEC profile's stream
// yields a narrow-operand-dependency fraction in a plausible band, with the
// calibrated ordering gcc > eon (Figure 1 contrast).
func TestSpecProfilesProduceCalibratedNarrowness(t *testing.T) {
	if testing.Short() {
		t.Skip("statistics run")
	}
	const n = 60000
	fracs := map[string]float64{}
	for _, p := range SpecInt2000() {
		s := p.MustStream()
		var u isa.Uop
		narrowDep, totalOps := 0, 0
		narrowByReg := map[uint8]bool{}
		for i := 0; i < n; i++ {
			s.Next(&u)
			for k := 0; k < int(u.NSrc); k++ {
				r := u.SrcReg[k]
				if r == isa.RegNone || r == isa.RegFlags {
					continue
				}
				totalOps++
				if narrowByReg[r] {
					narrowDep++
				}
			}
			if u.HasDest() {
				narrowByReg[u.DstReg] = bitwidth.IsNarrow(u.DstVal)
			}
		}
		fracs[p.Name] = float64(narrowDep) / float64(totalOps)
	}
	sum := 0.0
	for name, f := range fracs {
		if f < 0.2 || f > 0.98 {
			t.Errorf("%s: narrow dependency %.2f outside sanity band", name, f)
		}
		sum += f
	}
	avg := sum / float64(len(fracs))
	if avg < 0.45 || avg > 0.9 {
		t.Errorf("average narrow dependency %.2f, want roughly the paper's ~0.65", avg)
	}
	if fracs["gcc"] <= fracs["eon"] {
		t.Errorf("calibration: gcc (%.2f) should exceed eon (%.2f)", fracs["gcc"], fracs["eon"])
	}
}
