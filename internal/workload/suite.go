package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/synth"
)

// Category is one row of Table 2: a family of traces sharing a behavioural
// base profile.
type Category struct {
	Name        string
	Description string
	Count       int
	Base        synth.Params
}

// Categories returns the Table 2 workload categories. Table 2's counts sum
// to 409 while the text reports 412 applications; we follow the text by
// generating 88 multimedia traces (see DESIGN.md).
func Categories() []Category {
	d := synth.DefaultParams()
	mk := func(mut func(*synth.Params)) synth.Params {
		q := d
		mut(&q)
		return q
	}
	return []Category{
		{
			Name: "enc", Description: "Audio/video encode", Count: 62,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 16, 12
				q.FracLoad, q.FracStore, q.FracMul, q.FracFP = 0.22, 0.12, 0.02, 0.02
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.70, 0.15, 64
				q.NarrowDataFrac, q.WidthLocality = 0.70, 0.96
				q.WorkingSet, q.ByteDataFrac = 512<<10, 0.60
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.55, 0.20
			}),
		},
		{
			Name: "sfp", Description: "Spec FP's", Count: 41,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 18, 12
				q.FracLoad, q.FracStore, q.FracMul, q.FracFP = 0.20, 0.10, 0.01, 0.30
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.70, 0.10, 48
				q.NarrowDataFrac, q.WidthLocality = 0.70, 0.96
				q.WorkingSet, q.ByteDataFrac = 2<<20, 0.20
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.55, 0.15
			}),
		},
		{
			Name: "kernels", Description: "VectorAdd, FIRs", Count: 52,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 8, 10
				q.FracLoad, q.FracStore = 0.30, 0.15
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.80, 0.05, 128
				q.NarrowDataFrac, q.WidthLocality = 0.72, 0.97
				q.WorkingSet, q.ByteDataFrac = 128<<10, 0.50
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.60, 0.10
			}),
		},
		{
			Name: "mm", Description: "WMedia, photoshop", Count: 88,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 20, 11
				q.FracLoad, q.FracStore, q.FracMul, q.FracFP = 0.24, 0.12, 0.02, 0.04
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.65, 0.15, 48
				q.NarrowDataFrac, q.WidthLocality = 0.70, 0.96
				q.WorkingSet, q.ByteDataFrac = 1<<20, 0.65
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.55, 0.20
			}),
		},
		{
			Name: "office", Description: "Excel, word, ppt", Count: 75,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 70, 9
				q.FracLoad, q.FracStore = 0.24, 0.12
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.35, 0.40, 6
				q.NarrowDataFrac, q.WidthLocality = 0.55, 0.92
				q.WorkingSet, q.ByteDataFrac = 4<<20, 0.25
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.40, 0.30
				q.DepRecency = 0.40
			}),
		},
		{
			Name: "prod", Description: "Internet content", Count: 45,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 55, 9
				q.FracLoad, q.FracStore = 0.24, 0.10
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.40, 0.40, 8
				q.NarrowDataFrac, q.WidthLocality = 0.58, 0.93
				q.WorkingSet, q.ByteDataFrac = 2<<20, 0.30
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.40, 0.30
				q.DepRecency = 0.40
			}),
		},
		{
			Name: "ws", Description: "Workstation kernels", Count: 49,
			Base: mk(func(q *synth.Params) {
				q.Segments, q.BlockSize = 12, 10
				q.FracLoad, q.FracStore = 0.28, 0.14
				q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.70, 0.10, 96
				q.NarrowDataFrac, q.WidthLocality = 0.68, 0.96
				q.WorkingSet, q.ByteDataFrac = 1<<20, 0.45
				q.NarrowOffsetFrac, q.AddrUseFrac = 0.55, 0.15
			}),
		},
	}
}

// SuiteSize is the number of traces in the full commercial suite.
const SuiteSize = 412

// Suite expands the categories into the full 412-trace suite, one jittered
// variant per trace, deterministically seeded.
func Suite() []Profile {
	var out []Profile
	for _, c := range Categories() {
		for i := 0; i < c.Count; i++ {
			out = append(out, variant(c, i))
		}
	}
	return out
}

// variant derives trace i of a category by jittering the base profile.
func variant(c Category, i int) Profile {
	seed := int64(1e6) + int64(len(c.Name))*7919 + int64(c.Name[0])*31337 + int64(i)*101
	rng := rand.New(rand.NewSource(seed))
	q := c.Base
	q.Seed = seed

	jf := func(v float64) float64 {
		v *= 1 + (rng.Float64()-0.5)*0.3
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		return v
	}
	ji := func(v int) int {
		w := int(float64(v) * (1 + (rng.Float64()-0.5)*0.4))
		if w < 1 {
			w = 1
		}
		return w
	}

	q.Segments = ji(q.Segments)
	if q.Segments < 2 {
		q.Segments = 2
	}
	q.BlockSize = ji(q.BlockSize)
	if q.BlockSize < 3 {
		q.BlockSize = 3
	}
	q.InnerTrip = ji(q.InnerTrip)
	q.FracLoad = jf(q.FracLoad)
	q.FracStore = jf(q.FracStore)
	q.NarrowDataFrac = jf(q.NarrowDataFrac)
	q.ByteDataFrac = jf(q.ByteDataFrac)
	q.NarrowOffsetFrac = jf(q.NarrowOffsetFrac)
	q.AddrUseFrac = jf(q.AddrUseFrac)
	q.LoopFrac = jf(q.LoopFrac)
	if q.LoopFrac+q.DiamondFrac > 1 {
		q.DiamondFrac = 1 - q.LoopFrac
	}
	ws := ji(q.WorkingSet)
	if ws < 16<<10 {
		ws = 16 << 10
	}
	q.WorkingSet = ws
	calibrate(&q)

	return Profile{
		Name:     fmt.Sprintf("%s-%03d", c.Name, i),
		Category: c.Name,
		Params:   q,
	}
}
