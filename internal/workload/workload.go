// Package workload provides calibrated synthetic workload profiles: the 12
// SPEC Int 2000 benchmarks used for the paper's detailed studies and the
// seven commercial workload categories of Table 2 used for the Figure 14
// wrap-up, expanded into the 412-trace suite.
//
// Profile parameters are calibrated so the trace-level statistics match the
// paper's reported shapes: ~65% of register operands narrow-width dependent
// on average (Figure 1, gcc high / eon-crafty-twolf low), short
// producer-consumer distances (Figure 13), substantial carry containment
// for 8-32-32 instructions (Figure 11), and the bzip2-vs-gcc
// copy-pressure contrast of §3.2 (bzip2's narrow values feed wide
// addressing; gcc's feed narrow flag/branch chains).
package workload

import "repro/internal/synth"

// Profile is a named, categorized synthetic workload.
type Profile struct {
	Name     string
	Category string
	Params   synth.Params
}

// Stream instantiates the profile's uop stream.
func (p Profile) Stream() (*synth.Stream, error) { return synth.NewStream(p.Params) }

// MustStream is Stream for known-good profiles.
func (p Profile) MustStream() *synth.Stream { return synth.MustNewStream(p.Params) }

// SpecIntNames lists the 12 SPEC Int 2000 benchmarks in the paper's figure
// order.
var SpecIntNames = []string{
	"bzip2", "crafty", "eon", "gap", "gcc", "gzip",
	"mcf", "parser", "perlbmk", "twolf", "vortex", "vpr",
}

// calibrate applies the global measurement-driven correction that maps the
// declared per-benchmark intents onto the paper's Figure 1 aggregate: the
// generator's structural wide operands (address bases, stride registers)
// depress the raw narrow-dependency fraction by ~0.15-0.2, so the value
// knobs are boosted uniformly. The relative ordering between benchmarks is
// preserved.
func calibrate(q *synth.Params) {
	boost := func(v, by, cap float64) float64 {
		v += by
		if v > cap {
			v = cap
		}
		return v
	}
	q.NarrowDataFrac = boost(q.NarrowDataFrac, 0.14, 0.92)
	q.NarrowOffsetFrac = boost(q.NarrowOffsetFrac, 0.15, 0.85)
	// Per-static-instruction width behaviour is extremely stable in real
	// programs (the paper's predictor reaches 93.5% with one bit); the
	// declared localities express relative volatility, compressed here
	// toward the realistic regime.
	q.WidthLocality = 1 - (1-q.WidthLocality)*0.25
	if q.WidthLocality > 0.995 {
		q.WidthLocality = 0.995
	}
	// Stride reach scales with the working set so large-footprint
	// workloads actually pressure the cache hierarchy within feasible
	// simulation lengths.
	if min := q.WorkingSet >> 12; q.StrideBytes < min {
		q.StrideBytes = min
	}
}

// spec builds one SPEC profile; parameters in paper-shape calibrated order.
func spec(name string, seed int64, p synth.Params) Profile {
	p.Seed = seed
	calibrate(&p)
	return Profile{Name: name, Category: "specint", Params: p}
}

// SpecInt2000 returns the 12 calibrated SPEC Int 2000 profiles.
func SpecInt2000() []Profile {
	d := synth.DefaultParams()
	mk := func(mut func(*synth.Params)) synth.Params {
		q := d
		mut(&q)
		return q
	}
	return []Profile{
		// bzip2: byte-compressor — many narrow values but they index big
		// tables, so narrow producers feed wide address math (high copy
		// pressure, the worst 8_8_8 performer in Figure 6).
		spec("bzip2", 101, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 14, 10
			q.FracLoad, q.FracStore = 0.24, 0.12
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.60, 0.20, 40
			q.NarrowDataFrac, q.WidthLocality = 0.62, 0.96
			q.WorkingSet, q.ByteDataFrac = 4<<20, 0.55
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.30, 0.55
			q.DepRecency = 0.45
		})),
		// crafty: chess — wide bitboard math, modest narrowness.
		spec("crafty", 102, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 30, 12
			q.FracLoad, q.FracStore, q.FracMul = 0.22, 0.08, 0.01
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.45, 0.35, 12
			q.NarrowDataFrac, q.WidthLocality = 0.55, 0.93
			q.WorkingSet, q.ByteDataFrac = 256<<10, 0.25
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.45, 0.15
			q.DepRecency = 0.40
		})),
		// eon: C++ ray tracer — some FP, lowest narrowness.
		spec("eon", 103, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 36, 12
			q.FracLoad, q.FracStore, q.FracMul, q.FracFP = 0.24, 0.12, 0.02, 0.06
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.40, 0.30, 10
			q.NarrowDataFrac, q.WidthLocality = 0.50, 0.92
			q.WorkingSet, q.ByteDataFrac = 512<<10, 0.20
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.40, 0.20
			q.DepRecency = 0.40
		})),
		// gap: group theory interpreter — small-integer heavy.
		spec("gap", 104, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 20, 10
			q.FracLoad, q.FracStore, q.FracMul = 0.22, 0.10, 0.015
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.55, 0.25, 24
			q.NarrowDataFrac, q.WidthLocality = 0.68, 0.95
			q.WorkingSet, q.ByteDataFrac = 1<<20, 0.40
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.50, 0.25
		})),
		// gcc: compiler — branchy narrow flag/branch chains consumed
		// narrowly (lowest copy/narrow ratio, the best 8_8_8 performer).
		spec("gcc", 105, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 32, 9
			q.FracLoad, q.FracStore = 0.20, 0.10
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.50, 0.35, 8
			q.NarrowDataFrac, q.WidthLocality = 0.75, 0.96
			q.WorkingSet, q.ByteDataFrac = 2<<20, 0.45
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.60, 0.10
			q.DepRecency = 0.50
		})),
		// gzip: LZ77 — byte data in tight loops.
		spec("gzip", 106, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 12, 10
			q.FracLoad, q.FracStore = 0.22, 0.10
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.65, 0.20, 60
			q.NarrowDataFrac, q.WidthLocality = 0.66, 0.96
			q.WorkingSet, q.ByteDataFrac = 256<<10, 0.60
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.50, 0.30
		})),
		// mcf: pointer-chasing over a huge working set.
		spec("mcf", 107, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 10, 8
			q.FracLoad, q.FracStore = 0.30, 0.08
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.60, 0.25, 30
			q.NarrowDataFrac, q.WidthLocality = 0.70, 0.95
			q.WorkingSet, q.ByteDataFrac = 16<<20, 0.20
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.15, 0.20
			q.DepRecency = 0.40
		})),
		// parser: dictionary word processing.
		spec("parser", 108, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 26, 9
			q.FracLoad, q.FracStore = 0.24, 0.10
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.50, 0.35, 10
			q.NarrowDataFrac, q.WidthLocality = 0.70, 0.95
			q.WorkingSet, q.ByteDataFrac = 1<<20, 0.45
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.50, 0.20
		})),
		// perlbmk: interpreter loop.
		spec("perlbmk", 109, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 40, 10
			q.FracLoad, q.FracStore = 0.22, 0.10
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.45, 0.35, 9
			q.NarrowDataFrac, q.WidthLocality = 0.64, 0.94
			q.WorkingSet, q.ByteDataFrac = 1<<20, 0.35
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.45, 0.20
		})),
		// twolf: place-and-route, wide coordinates.
		spec("twolf", 110, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 22, 11
			q.FracLoad, q.FracStore, q.FracMul, q.FracDiv, q.FracFP = 0.24, 0.10, 0.02, 0.006, 0.04
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.50, 0.30, 14
			q.NarrowDataFrac, q.WidthLocality = 0.56, 0.93
			q.WorkingSet, q.ByteDataFrac = 512<<10, 0.25
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.40, 0.30
			q.DepRecency = 0.40
		})),
		// vortex: object database, store heavy.
		spec("vortex", 111, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 24, 10
			q.FracLoad, q.FracStore = 0.26, 0.14
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.45, 0.30, 12
			q.NarrowDataFrac, q.WidthLocality = 0.69, 0.95
			q.WorkingSet, q.ByteDataFrac = 2<<20, 0.40
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.50, 0.20
		})),
		// vpr: FPGA place & route, some FP.
		spec("vpr", 112, mk(func(q *synth.Params) {
			q.Segments, q.BlockSize = 24, 10
			q.FracLoad, q.FracStore, q.FracMul, q.FracDiv, q.FracFP = 0.24, 0.10, 0.015, 0.004, 0.05
			q.LoopFrac, q.DiamondFrac, q.InnerTrip = 0.50, 0.30, 16
			q.NarrowDataFrac, q.WidthLocality = 0.60, 0.97
			q.WorkingSet, q.ByteDataFrac = 512<<10, 0.30
			q.NarrowOffsetFrac, q.AddrUseFrac = 0.40, 0.30
			q.DepRecency = 0.40
		})),
	}
}

// SpecIntByName looks up one of the 12 SPEC profiles.
func SpecIntByName(name string) (Profile, bool) {
	for _, p := range SpecInt2000() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}
