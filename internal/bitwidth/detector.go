package bitwidth

// This file models the consecutive zero (Figure 3a) and consecutive one
// (Figure 3b) detection circuits at gate level. The paper's detectors use
// dynamic (domino) logic for speed and fan-in; functionally each is a wide
// NOR (zeros) or wide AND (ones) over the 24 upper bits, built from 8-bit
// banks whose outputs combine in a second stage. The model reproduces that
// two-stage structure, including the precharge/evaluate discipline, so the
// unit tests can exercise it as a piece of hardware rather than a formula.

// DetectorKind selects between the zero and one detector.
type DetectorKind uint8

const (
	// DetectZeros is the consecutive-zero detector (Figure 3a): output is
	// high when every monitored bit is 0.
	DetectZeros DetectorKind = iota
	// DetectOnes is the consecutive-one detector (Figure 3b): output is
	// high when every monitored bit is 1.
	DetectOnes
)

// bank is one 8-bit dynamic-logic detector slice. In the real circuit the
// dynamic node is precharged high and conditionally discharged by any
// violating input during evaluate.
type bank struct {
	kind DetectorKind
	// node is the dynamic node: true = precharged (no discharge observed).
	node bool
	// evaluated guards against reading a node that was never evaluated,
	// the classic domino-logic usage error.
	evaluated bool
}

func (b *bank) precharge() { b.node = true; b.evaluated = false }

// evaluate discharges the dynamic node if any input bit violates the
// detected pattern (a 1 for the zero detector, a 0 for the one detector).
func (b *bank) evaluate(in uint8) {
	b.evaluated = true
	switch b.kind {
	case DetectZeros:
		if in != 0 {
			b.node = false
		}
	case DetectOnes:
		if in != 0xFF {
			b.node = false
		}
	}
}

// Detector is a 24-bit consecutive zero/one detector over bits 31..8 of a
// 32-bit value, built from three 8-bit dynamic banks and a static AND
// second stage, mirroring Figure 3.
type Detector struct {
	kind  DetectorKind
	banks [3]bank
}

// NewDetector returns a detector of the requested kind.
func NewDetector(kind DetectorKind) *Detector {
	d := &Detector{kind: kind}
	for i := range d.banks {
		d.banks[i].kind = kind
	}
	return d
}

// Detect runs one precharge/evaluate cycle on the upper 24 bits of v and
// returns whether all of them match the detector's pattern.
func (d *Detector) Detect(v uint32) bool {
	for i := range d.banks {
		d.banks[i].precharge()
	}
	d.banks[0].evaluate(uint8(v >> 8))
	d.banks[1].evaluate(uint8(v >> 16))
	d.banks[2].evaluate(uint8(v >> 24))
	out := true
	for i := range d.banks {
		if !d.banks[i].evaluated {
			panic("bitwidth: detector bank read before evaluate")
		}
		out = out && d.banks[i].node
	}
	return out
}

// NarrowDetector pairs a zero and a one detector exactly as the helper
// cluster's writeback path does: a value is narrow if either fires.
type NarrowDetector struct {
	zeros *Detector
	ones  *Detector
}

// NewNarrowDetector builds the paired detector.
func NewNarrowDetector() *NarrowDetector {
	return &NarrowDetector{zeros: NewDetector(DetectZeros), ones: NewDetector(DetectOnes)}
}

// Narrow reports whether v is representable on the 8-bit helper datapath.
// It is the circuit-level counterpart of IsNarrow.
func (n *NarrowDetector) Narrow(v uint32) bool {
	return n.zeros.Detect(v) || n.ones.Detect(v)
}
