package bitwidth

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestIsNarrow(t *testing.T) {
	cases := []struct {
		v    uint32
		want bool
	}{
		{0, true},
		{1, true},
		{0x7F, true},
		{0xFF, true},        // zero-extendable byte
		{0x100, false},      // needs 9 bits
		{0xFFFFFFFF, true},  // -1, sign-extendable
		{0xFFFFFF80, true},  // -128
		{0xFFFFFF00, true},  // upper 24 all ones (paper's detector fires)
		{0xFFFFFE00, false}, // upper 24 mixed
		{0x80000000, false}, // wide negative
		{0xFFFC4A02, false}, // Figure 10 base address
		{0x0000001C, true},  // Figure 10 offset
		{0x12345678, false},
	}
	for _, c := range cases {
		if got := IsNarrow(c.v); got != c.want {
			t.Errorf("IsNarrow(%#x) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestIsNarrowAt(t *testing.T) {
	cases := []struct {
		v     uint32
		width uint
		want  bool
	}{
		{0xFF, 8, true},
		{0x1FF, 8, false},
		{0x1FF, 16, true},
		{0xFFFF, 16, true},
		{0x10000, 16, false},
		{0xFFFF0000, 16, true}, // upper 16 homogeneous: the one-detector fires
		{0xFFFF8000, 16, true}, // sign-extendable from bit 15
		{0xABCDEF01, 32, true},
		{0x00FFFFFF, 24, true},
		{0xFF000000, 24, true}, // upper 8 all ones
	}
	for _, c := range cases {
		if got := IsNarrowAt(c.v, c.width); got != c.want {
			t.Errorf("IsNarrowAt(%#x, %d) = %v, want %v", c.v, c.width, got, c.want)
		}
	}
}

func TestWidthClasses(t *testing.T) {
	cases := []struct {
		v    uint32
		want uint
	}{
		{0, 8},
		{0xFF, 8},
		{0xFFFFFFFF, 8},
		{0x1234, 16},
		{0xFFFF1234, 16},
		{0x123456, 24},
		{0x12345678, 32},
		{0x80000000, 32},
	}
	for _, c := range cases {
		if got := Width(c.v); got != c.want {
			t.Errorf("Width(%#x) = %d, want %d", c.v, got, c.want)
		}
	}
}

// TestWidthConsistency: Width(v) is the minimal byte width at which
// IsNarrowAt holds.
func TestWidthConsistency(t *testing.T) {
	f := func(v uint32) bool {
		w := Width(v)
		if !IsNarrowAt(v, w) {
			return false
		}
		if w > 8 && IsNarrowAt(v, w-8) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestDetectorMatchesFastPath: the gate-level detector pair is functionally
// identical to the bit-twiddling IsNarrow.
func TestDetectorMatchesFastPath(t *testing.T) {
	det := NewNarrowDetector()
	f := func(v uint32) bool {
		return det.Narrow(v) == IsNarrow(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}

func TestDetectorKinds(t *testing.T) {
	z := NewDetector(DetectZeros)
	o := NewDetector(DetectOnes)
	if !z.Detect(0x000000FF) {
		t.Error("zero detector should fire when upper 24 bits are zero")
	}
	if z.Detect(0x00000100) {
		t.Error("zero detector must not fire with a one in bit 8")
	}
	if !o.Detect(0xFFFFFF00) {
		t.Error("one detector should fire when upper 24 bits are one")
	}
	if o.Detect(0xFFFFFE00) {
		t.Error("one detector must not fire with a zero in bit 9")
	}
	// Detectors are reusable across precharge/evaluate cycles.
	for i := 0; i < 4; i++ {
		if z.Detect(0) != true || z.Detect(0xFFFFFFFF) != false {
			t.Fatal("zero detector state leaked across cycles")
		}
	}
}

func TestCarryFigure10Example(t *testing.T) {
	// Loadbyte R1, (R2+R3) with R2=FFFC4A02, R3=0000001C → FFFC4A1E.
	base := uint32(0xFFFC4A02)
	off := uint32(0x0000001C)
	sum := base + off
	if sum != 0xFFFC4A1E {
		t.Fatalf("example sum = %#x", sum)
	}
	wide, ok := CRShape(base, off, sum)
	if !ok || wide != base {
		t.Fatalf("CRShape = (%#x, %v), want (%#x, true)", wide, ok, base)
	}
	if !CarryNotPropagated(wide, sum) {
		t.Error("Figure 10 example must not propagate the carry")
	}
	if !CRCheck(isa.OpAdd, base, off, sum) {
		t.Error("CRCheck must accept the Figure 10 example")
	}
}

func TestCarryPropagatedCase(t *testing.T) {
	base := uint32(0xFFFC40F0)
	off := uint32(0x20) // 0xF0+0x20 carries out of the low byte
	sum := base + off
	if CRCheck(isa.OpAdd, base, off, sum) {
		t.Error("CRCheck must reject a propagating carry")
	}
}

func TestCRShapeRejections(t *testing.T) {
	if _, ok := CRShape(1, 2, 3); ok {
		t.Error("8-8-8 must not match the CR shape")
	}
	if _, ok := CRShape(0x10000, 0x20000, 0x30000); ok {
		t.Error("32-32-32 must not match the CR shape")
	}
	if _, ok := CRShape(0x10000, 2, 0x42); ok {
		t.Error("narrow result must not match the CR shape")
	}
}

func TestCREligibleOp(t *testing.T) {
	eligible := []isa.ALUOp{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpLea, isa.OpCmp, isa.OpTest}
	for _, op := range eligible {
		if !CREligibleOp(op) {
			t.Errorf("%v should be CR eligible", op)
		}
	}
	ineligible := []isa.ALUOp{isa.OpShl, isa.OpShr, isa.OpMov, isa.OpInc, isa.OpDec, isa.OpNeg, isa.OpNot}
	for _, op := range ineligible {
		if CREligibleOp(op) {
			t.Errorf("%v should not be CR eligible", op)
		}
	}
}

// TestCarryCheckMatchesSemantics: for adds in CR shape, CRCheck agrees with
// directly comparing the upper 24 bits of the wide input and the true sum.
func TestCarryCheckMatchesSemantics(t *testing.T) {
	f := func(wide uint32, smallSeed uint8) bool {
		if IsNarrow(wide) {
			wide |= 0x00010000 // force wide
		}
		narrow := uint32(smallSeed) // always narrow
		sum := wide + narrow
		want := wide>>8 == sum>>8 && !IsNarrow(sum)
		got := CRCheck(isa.OpAdd, wide, narrow, sum)
		if IsNarrow(sum) {
			// Narrow results are outside the CR shape; got must be false.
			return !got
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestLeadingBits(t *testing.T) {
	if LeadingZeros(0) != 32 || LeadingZeros(1) != 31 || LeadingZeros(0x80000000) != 0 {
		t.Error("LeadingZeros wrong")
	}
	if LeadingOnes(0xFFFFFFFF) != 32 || LeadingOnes(0x80000000) != 1 || LeadingOnes(0) != 0 {
		t.Error("LeadingOnes wrong")
	}
}
