// Package bitwidth implements narrow-value detection for the helper
// cluster: leading zero/one detection (the Figure 3 circuits), width
// classification, and the carry-propagation analysis behind the CR scheme.
//
// A value is "narrow" at width w when its upper 32-w bits are homogeneous
// (all zero or all one), i.e. the value survives truncation to w bits
// followed by zero- or sign-extension — exactly what the paper's
// consecutive zero/one detectors report.
package bitwidth

import "math/bits"

// Narrow is the helper-cluster datapath width in bits. The paper
// conservatively chose 8 bits (§2.1).
const Narrow = 8

// IsNarrow reports whether v fits the 8-bit helper datapath: bits 31..8 all
// zero (zero-extendable) or all one (sign-extendable).
func IsNarrow(v uint32) bool {
	hi := v >> Narrow
	return hi == 0 || hi == 0xFFFFFF
}

// IsNarrowAt reports whether v is narrow at an arbitrary width (8, 16 or 24
// bits). Width 32 always holds.
func IsNarrowAt(v uint32, width uint) bool {
	if width >= 32 {
		return true
	}
	hi := v >> width
	return hi == 0 || hi == (1<<(32-width))-1
}

// Width returns the smallest byte-granular width class (8, 16, 24 or 32)
// that represents v under zero- or sign-extension. Byte granularity matches
// the byte-wise detector banks of Figure 3.
func Width(v uint32) uint {
	for w := uint(8); w < 32; w += 8 {
		if IsNarrowAt(v, w) {
			return w
		}
	}
	return 32
}

// LeadingZeros returns the number of leading zero bits of v (fast path used
// by the simulator; the circuit model in detector.go is the reference).
func LeadingZeros(v uint32) int { return bits.LeadingZeros32(v) }

// LeadingOnes returns the number of leading one bits of v.
func LeadingOnes(v uint32) int { return bits.LeadingZeros32(^v) }
