package bitwidth

import "repro/internal/isa"

// This file implements the carry-width analysis of the CR scheme (§3.5):
// an instruction with one narrow and one wide source and a wide result is
// effectively a narrow operation when its execution leaves the upper 24
// bits of the wide source unchanged — no carry (or borrow) propagates
// beyond bit 7. The canonical example is Figure 10's load address
// calculation: base FFFC4A02 + offset 1C = FFFC4A1E keeps the upper bytes.

// CREligibleOp reports whether the operation may be considered for the CR
// scheme. Multiply and divide are excluded because the carry signal cannot
// catch their fatal mispredictions (§3.5); shifts move bits across the
// byte boundary and are likewise excluded.
func CREligibleOp(op isa.ALUOp) bool {
	switch op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpLea, isa.OpCmp, isa.OpTest:
		return true
	default:
		return false
	}
}

// CRShape describes whether a (narrow source, wide source, wide result)
// combination holds for a two-source operation. Exactly one source must be
// narrow for the 8-32-32 pattern the paper exploits.
func CRShape(srcA, srcB, result uint32) (wide uint32, ok bool) {
	return CRShapeAt(srcA, srcB, result, Narrow)
}

// CRShapeAt is CRShape for an arbitrary helper datapath width (the §2.1
// remark that a wider-than-8-bit cluster would capture more work).
func CRShapeAt(srcA, srcB, result uint32, width uint) (wide uint32, ok bool) {
	na, nb := IsNarrowAt(srcA, width), IsNarrowAt(srcB, width)
	if na == nb { // 8-8-* or 32-32-*: not the CR pattern
		return 0, false
	}
	if IsNarrowAt(result, width) { // narrow result is plain 8-8-8 territory
		return 0, false
	}
	if na {
		return srcB, true
	}
	return srcA, true
}

// CarryNotPropagated reports whether executing op over the 8-32 source pair
// left the upper 24 bits of the wide source intact in the result, i.e. the
// operation was effectively 8 bits wide. The caller must have established
// the CR shape with CRShape.
func CarryNotPropagated(wide, result uint32) bool {
	return CarryNotPropagatedAt(wide, result, Narrow)
}

// CarryNotPropagatedAt is CarryNotPropagated at an arbitrary datapath
// width.
func CarryNotPropagatedAt(wide, result uint32, width uint) bool {
	if width >= 32 {
		return true
	}
	return wide>>width == result>>width
}

// CRCheck is the complete writeback-time check the helper cluster's carry
// logic performs: shape, operation eligibility, and carry containment.
func CRCheck(op isa.ALUOp, srcA, srcB, result uint32) bool {
	return CRCheckAt(op, srcA, srcB, result, Narrow)
}

// CRCheckAt is CRCheck at an arbitrary datapath width.
func CRCheckAt(op isa.ALUOp, srcA, srcB, result uint32, width uint) bool {
	if !CREligibleOp(op) {
		return false
	}
	wide, ok := CRShapeAt(srcA, srcB, result, width)
	if !ok {
		return false
	}
	return CarryNotPropagatedAt(wide, result, width)
}
