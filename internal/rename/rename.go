// Package rename implements the register rename machinery the steering
// policies read: the rename table with its 1-bit width field (Figure 4's
// "width table"), producer tracking per architectural register, and the
// physical register file with the reference-counted deallocation the CR
// scheme requires (§3.5).
package rename

import (
	"fmt"

	"repro/internal/isa"
)

// NoProducer marks an architectural register whose latest value has been
// committed (no in-flight producer).
const NoProducer = int64(-1)

// Mapping is the rename-table state of one architectural register.
type Mapping struct {
	// Producer is the ROB position of the in-flight producer, or NoProducer.
	Producer int64
	// Cluster is the cluster where the latest value lives/will live.
	Cluster uint8
	// Narrow is the width-table bit: the (predicted or actual) narrowness
	// of the latest value bound to this register.
	Narrow bool
	// Actual reports whether Narrow reflects a written-back value rather
	// than a prediction; §3.2: "the actual width is read if the producer
	// instruction has already written back the result; if not, the
	// prediction is read".
	Actual bool
	// Phys is the physical register currently bound, or -1.
	Phys int32
}

// Table is the rename table over the integer architectural namespace
// (general registers + flags).
type Table struct {
	regs [isa.NumRegs]Mapping
}

// NewTable returns a table with every register architectural (committed),
// wide, and actual — the conservative cold state.
func NewTable() *Table {
	t := &Table{}
	t.Reset()
	return t
}

// Reset restores the cold state of NewTable in place.
func (t *Table) Reset() {
	for i := range t.regs {
		t.regs[i] = Mapping{Producer: NoProducer, Phys: -1, Actual: true}
	}
}

// Lookup returns the current mapping of reg.
func (t *Table) Lookup(reg uint8) Mapping {
	return t.regs[reg]
}

// Define binds reg to a new in-flight producer and returns the previous
// mapping so the caller can restore it on a flush (walk young→old calling
// Restore) and free the previous physical register at commit.
func (t *Table) Define(reg uint8, producer int64, cluster uint8, predictedNarrow bool, phys int32) Mapping {
	prev := t.regs[reg]
	t.regs[reg] = Mapping{
		Producer: producer,
		Cluster:  cluster,
		Narrow:   predictedNarrow,
		Actual:   false,
		Phys:     phys,
	}
	return prev
}

// Restore undoes a Define during misprediction recovery.
func (t *Table) Restore(reg uint8, prev Mapping) {
	t.regs[reg] = prev
}

// Writeback records the actual width of a produced value, updating the
// width table only if reg is still mapped to this producer.
func (t *Table) Writeback(reg uint8, producer int64, narrow bool) {
	if t.regs[reg].Producer == producer {
		t.regs[reg].Narrow = narrow
		t.regs[reg].Actual = true
	}
}

// Commit clears the producer once it retires, leaving the width bit as the
// architectural state.
func (t *Table) Commit(reg uint8, producer int64) {
	if t.regs[reg].Producer == producer {
		t.regs[reg].Producer = NoProducer
	}
}

// PhysRegFile models physical register allocation with the CR scheme's
// reference-counted deallocation: a wide register whose upper 24 bits are
// borrowed by 8-32-32 instructions executing in the helper cluster must
// not be freed until its renamer commits AND the borrow counter is zero.
type PhysRegFile struct {
	size     int
	free     []int32
	refs     []int32 // CR borrow counters
	deferred []bool  // free requested while still borrowed
	live     []bool
}

// NewPhysRegFile creates a file with size registers, all free.
func NewPhysRegFile(size int) *PhysRegFile {
	if size < 1 {
		panic("rename: physical register file must have at least one register")
	}
	f := &PhysRegFile{
		size:     size,
		free:     make([]int32, 0, size),
		refs:     make([]int32, size),
		deferred: make([]bool, size),
		live:     make([]bool, size),
	}
	f.refill()
	return f
}

// Reinit restores the all-free cold state, reusing storage when the size
// is unchanged.
func (f *PhysRegFile) Reinit(size int) {
	if size != f.size {
		*f = *NewPhysRegFile(size)
		return
	}
	clear(f.refs)
	clear(f.deferred)
	clear(f.live)
	f.refill()
}

// refill repopulates the free list in the canonical descending order of
// NewPhysRegFile (allocation order is observable via register identity).
func (f *PhysRegFile) refill() {
	f.free = f.free[:0]
	for i := f.size - 1; i >= 0; i-- {
		f.free = append(f.free, int32(i))
	}
}

// Alloc takes a free register, returning -1 when the file is exhausted
// (the renamer must stall).
func (f *PhysRegFile) Alloc() int32 {
	n := len(f.free)
	if n == 0 {
		return -1
	}
	r := f.free[n-1]
	f.free = f.free[:n-1]
	f.live[r] = true
	return r
}

// Borrow increments the CR counter: an 8-32-32 instruction's destination
// now points at r for its upper 24 bits.
func (f *PhysRegFile) Borrow(r int32) {
	f.check(r)
	f.refs[r]++
}

// Unborrow decrements the CR counter (the borrowing definition was
// deallocated); if the register's free was deferred and the counter
// reached zero it is freed now.
func (f *PhysRegFile) Unborrow(r int32) {
	f.check(r)
	if f.refs[r] == 0 {
		panic(fmt.Sprintf("rename: unborrow of r%d with zero counter", r))
	}
	f.refs[r]--
	if f.refs[r] == 0 && f.deferred[r] {
		f.deferred[r] = false
		f.release(r)
	}
}

// Free releases r when its renamer commits; if CR borrows are outstanding
// the free is deferred until the counter drains — the paper's
// zero-check-in-parallel-with-commit mechanism.
func (f *PhysRegFile) Free(r int32) {
	f.check(r)
	if f.refs[r] > 0 {
		f.deferred[r] = true
		return
	}
	f.release(r)
}

func (f *PhysRegFile) release(r int32) {
	f.live[r] = false
	f.free = append(f.free, r)
}

func (f *PhysRegFile) check(r int32) {
	if r < 0 || int(r) >= f.size {
		panic(fmt.Sprintf("rename: physical register %d out of range", r))
	}
	if !f.live[r] {
		panic(fmt.Sprintf("rename: operation on dead physical register %d", r))
	}
}

// FreeCount returns the number of allocatable registers.
func (f *PhysRegFile) FreeCount() int { return len(f.free) }

// Live reports whether r is currently allocated.
func (f *PhysRegFile) Live(r int32) bool { return r >= 0 && int(r) < f.size && f.live[r] }

// Refs returns the CR borrow counter of r.
func (f *PhysRegFile) Refs(r int32) int32 { return f.refs[r] }
