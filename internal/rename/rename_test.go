package rename

import (
	"testing"
	"testing/quick"

	"repro/internal/isa"
)

func TestTableColdState(t *testing.T) {
	tb := NewTable()
	for r := uint8(0); r < isa.NumRegs; r++ {
		m := tb.Lookup(r)
		if m.Producer != NoProducer || !m.Actual || m.Narrow {
			t.Errorf("r%d cold state wrong: %+v", r, m)
		}
	}
}

func TestDefineLookupRestore(t *testing.T) {
	tb := NewTable()
	prev := tb.Define(3, 7, 1, true, 42)
	m := tb.Lookup(3)
	if m.Producer != 7 || m.Cluster != 1 || !m.Narrow || m.Actual || m.Phys != 42 {
		t.Errorf("mapping after define: %+v", m)
	}
	tb.Restore(3, prev)
	if got := tb.Lookup(3); got != prev {
		t.Errorf("restore mismatch: %+v vs %+v", got, prev)
	}
}

func TestWritebackUpdatesWidthTable(t *testing.T) {
	tb := NewTable()
	tb.Define(5, 9, 0, true, -1)
	tb.Writeback(5, 9, false)
	m := tb.Lookup(5)
	if m.Narrow || !m.Actual {
		t.Errorf("writeback must install actual width: %+v", m)
	}
	// A stale writeback (different producer) must not disturb the table.
	tb.Define(5, 10, 1, true, -1)
	tb.Writeback(5, 9, false)
	if m := tb.Lookup(5); !m.Narrow || m.Actual {
		t.Errorf("stale writeback must be ignored: %+v", m)
	}
}

func TestCommitClearsProducer(t *testing.T) {
	tb := NewTable()
	tb.Define(2, 4, 1, true, -1)
	tb.Commit(2, 4)
	if m := tb.Lookup(2); m.Producer != NoProducer {
		t.Errorf("commit must clear producer: %+v", m)
	}
	// Commit of an overwritten definition must not clear the newer one.
	tb.Define(2, 5, 0, false, -1)
	tb.Commit(2, 4)
	if m := tb.Lookup(2); m.Producer != 5 {
		t.Errorf("stale commit must be ignored: %+v", m)
	}
}

func TestPhysRegAllocFree(t *testing.T) {
	f := NewPhysRegFile(4)
	if f.FreeCount() != 4 {
		t.Fatalf("free count = %d", f.FreeCount())
	}
	var regs []int32
	for i := 0; i < 4; i++ {
		r := f.Alloc()
		if r < 0 {
			t.Fatal("alloc failed with free registers")
		}
		regs = append(regs, r)
	}
	if f.Alloc() != -1 {
		t.Error("exhausted file must return -1")
	}
	f.Free(regs[0])
	if f.FreeCount() != 1 {
		t.Errorf("free count after free = %d", f.FreeCount())
	}
	if r := f.Alloc(); r != regs[0] {
		t.Errorf("expected recycled register %d, got %d", regs[0], r)
	}
}

func TestPhysRegCRDeferredFree(t *testing.T) {
	f := NewPhysRegFile(2)
	r := f.Alloc()
	f.Borrow(r)
	f.Borrow(r)
	f.Free(r) // renamer commits while borrows outstanding → deferred
	if !f.Live(r) {
		t.Fatal("borrowed register must not be freed")
	}
	f.Unborrow(r)
	if !f.Live(r) {
		t.Fatal("still one borrow outstanding")
	}
	f.Unborrow(r)
	if f.Live(r) {
		t.Fatal("register must be freed once the counter drains")
	}
	if f.FreeCount() != 2 {
		t.Errorf("free count = %d", f.FreeCount())
	}
}

func TestPhysRegMisuse(t *testing.T) {
	f := NewPhysRegFile(2)
	r := f.Alloc()
	cases := []func(){
		func() { f.Borrow(99) },
		func() { f.Unborrow(r) }, // zero counter
		func() { f.Free(-1) },
		func() { NewPhysRegFile(0) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d must panic", i)
				}
			}()
			fn()
		}()
	}
	// Double free via dead register.
	f.Free(r)
	func() {
		defer func() {
			if recover() == nil {
				t.Error("double free must panic")
			}
		}()
		f.Free(r)
	}()
}

// TestPhysRegNeverFreedWhileBorrowed: property — under random interleaved
// borrow/unborrow/free sequences, a register with a nonzero counter is
// never on the free list.
func TestPhysRegNeverFreedWhileBorrowed(t *testing.T) {
	f := func(ops []uint8) bool {
		file := NewPhysRegFile(8)
		type st struct {
			reg      int32
			borrows  int
			freeable bool
		}
		var live []st
		for _, op := range ops {
			switch op % 4 {
			case 0:
				if r := file.Alloc(); r >= 0 {
					live = append(live, st{reg: r, freeable: true})
				}
			case 1:
				if len(live) > 0 {
					i := int(op) % len(live)
					file.Borrow(live[i].reg)
					live[i].borrows++
				}
			case 2:
				if len(live) > 0 {
					i := int(op) % len(live)
					if live[i].borrows > 0 {
						file.Unborrow(live[i].reg)
						live[i].borrows--
						if !live[i].freeable && live[i].borrows == 0 {
							live = append(live[:i], live[i+1:]...)
						}
					}
				}
			case 3:
				if len(live) > 0 {
					i := int(op) % len(live)
					if live[i].freeable {
						file.Free(live[i].reg)
						live[i].freeable = false
						if live[i].borrows == 0 {
							live = append(live[:i], live[i+1:]...)
						}
					}
				}
			}
			// Invariant: every tracked register with borrows is live.
			for _, s := range live {
				if s.borrows > 0 && !file.Live(s.reg) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
