// Package config defines the simulated machine configurations: the Table 1
// monolithic baseline and the helper-cluster augmentation of §2.
package config

import (
	"fmt"

	"repro/internal/cache"
)

// Cluster identifiers used across the simulator.
const (
	Wide   = 0
	Helper = 1
)

// Processor is the full machine description consumed by the timing
// simulator.
type Processor struct {
	// Frontend.
	FetchWidth        int // uops renamed per wide cycle
	CommitWidth       int // Table 1: 6
	MispredictPenalty int // wide cycles of fetch bubble on a branch flush
	FatalFlushPenalty int // wide cycles of bubble on a width-misprediction flush

	// Trace cache (Table 1: 32K uops, 4-way).
	TCUops        int
	TCLineUops    int
	TCWays        int
	TCMissPenalty int // wide cycles

	// Window.
	ROBSize  int
	PhysRegs int

	// Wide backend (Table 1: 32-entry scheduler, 3 issue).
	WideIQ    int
	WideIssue int
	// FP backend (Table 1: 32-entry scheduler, 3 issue), wide cluster only.
	FPIQ    int
	FPIssue int

	// Helper backend (§2): narrow datapath, integer only.
	HelperEnabled bool
	HelperIQ      int
	HelperIssue   int
	// HelperClockRatio is the helper clock multiplier; §2.2 derives 2×
	// from the logN ALU/bypass scaling.
	HelperClockRatio int
	// HelperWidthBits is the helper datapath width. The paper
	// conservatively chose 8 (§2.1) and notes wider clusters would
	// capture more instructions; 8, 16 and 24 are supported.
	HelperWidthBits int

	// Execution latencies (cycles in the executing cluster's clock for
	// ALU; wide cycles for the rest).
	MulLatency  int
	DivLatency  int
	FPLatency   int
	AGULatency  int
	CopyLatency int // inter-cluster transfer, wide cycles

	// Memory system (Table 1).
	L1         cache.Config
	L2         cache.Config
	MemLatency int
	MOBSize    int
	ForwardLat int // store-to-load forward latency, wide cycles

	// Predictors.
	WidthEntries  int // §3.2: 256
	BranchPattern int
	BranchBTB     int
	BranchHistory int
}

// PentiumLikeBaseline returns the Table 1 monolithic machine: the helper
// cluster is disabled; every uop executes in the wide backend.
func PentiumLikeBaseline() Processor {
	return Processor{
		FetchWidth:        6,
		CommitWidth:       6,
		MispredictPenalty: 12,
		FatalFlushPenalty: 2,

		TCUops:        32 << 10,
		TCLineUops:    16,
		TCWays:        4,
		TCMissPenalty: 8,

		ROBSize:  128,
		PhysRegs: 128,

		WideIQ:    32,
		WideIssue: 3,
		FPIQ:      32,
		FPIssue:   3,

		HelperEnabled:    false,
		HelperIQ:         32,
		HelperIssue:      3,
		HelperClockRatio: 2,
		HelperWidthBits:  8,

		MulLatency:  3,
		DivLatency:  20,
		FPLatency:   4,
		AGULatency:  1,
		CopyLatency: 1,

		L1:         cache.Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 3},
		L2:         cache.Config{SizeBytes: 4 << 20, LineBytes: 64, Ways: 16, LatencyCycles: 13},
		MemLatency: 450,
		MOBSize:    48,
		ForwardLat: 1,

		WidthEntries:  256,
		BranchPattern: 4096,
		BranchBTB:     1024,
		BranchHistory: 12,
	}
}

// WithHelper returns the baseline augmented with the 8-bit helper cluster
// of §2: same frontend and wide backend, plus the 2×-clocked narrow
// backend.
func WithHelper() Processor {
	p := PentiumLikeBaseline()
	p.HelperEnabled = true
	return p
}

// Validate reports the first structural problem.
func (p Processor) Validate() error {
	switch {
	case p.FetchWidth < 1 || p.CommitWidth < 1:
		return fmt.Errorf("config: fetch/commit width must be >= 1")
	case p.ROBSize < 2 || p.ROBSize&(p.ROBSize-1) != 0:
		return fmt.Errorf("config: ROB size %d must be a power of two >= 2", p.ROBSize)
	case p.PhysRegs < p.FetchWidth:
		return fmt.Errorf("config: physical registers %d too few", p.PhysRegs)
	case p.WideIQ < 1 || p.WideIssue < 1 || p.FPIQ < 1 || p.FPIssue < 1:
		return fmt.Errorf("config: wide/FP queue parameters must be >= 1")
	case p.HelperEnabled && (p.HelperIQ < 1 || p.HelperIssue < 1):
		return fmt.Errorf("config: helper queue parameters must be >= 1")
	case p.HelperClockRatio < 1 || p.HelperClockRatio > 4:
		return fmt.Errorf("config: helper clock ratio %d out of range", p.HelperClockRatio)
	case p.HelperWidthBits != 8 && p.HelperWidthBits != 16 && p.HelperWidthBits != 24:
		return fmt.Errorf("config: helper width %d must be 8, 16 or 24 bits", p.HelperWidthBits)
	case p.MispredictPenalty < 0 || p.FatalFlushPenalty < 0 || p.TCMissPenalty < 0:
		return fmt.Errorf("config: penalties must be >= 0")
	case p.MulLatency < 1 || p.DivLatency < 1 || p.FPLatency < 1 || p.AGULatency < 1 || p.CopyLatency < 1:
		return fmt.Errorf("config: latencies must be >= 1")
	case p.MemLatency < 1 || p.MOBSize < 1 || p.ForwardLat < 1:
		return fmt.Errorf("config: memory system parameters must be >= 1")
	case p.WidthEntries < 1:
		return fmt.Errorf("config: width predictor entries must be >= 1")
	}
	if err := p.L1.Validate(); err != nil {
		return fmt.Errorf("config: L1: %w", err)
	}
	if err := p.L2.Validate(); err != nil {
		return fmt.Errorf("config: L2: %w", err)
	}
	return nil
}
