package config

import "testing"

func TestTable1Parameters(t *testing.T) {
	p := PentiumLikeBaseline()
	// Table 1 values.
	if p.L1.SizeBytes != 32<<10 || p.L1.Ways != 8 || p.L1.LatencyCycles != 3 {
		t.Errorf("DL0 config wrong: %+v", p.L1)
	}
	if p.L2.SizeBytes != 4<<20 || p.L2.Ways != 16 || p.L2.LatencyCycles != 13 {
		t.Errorf("UL1 config wrong: %+v", p.L2)
	}
	if p.MemLatency != 450 {
		t.Errorf("main memory latency = %d, want 450", p.MemLatency)
	}
	if p.WideIQ != 32 || p.WideIssue != 3 || p.FPIQ != 32 || p.FPIssue != 3 {
		t.Error("scheduler parameters must match Table 1 (32 entry, 3 issue)")
	}
	if p.CommitWidth != 6 {
		t.Errorf("commit width = %d, want 6", p.CommitWidth)
	}
	if p.TCUops != 32<<10 || p.TCWays != 4 {
		t.Error("trace cache must be 32K uops, 4-way")
	}
	if p.HelperEnabled {
		t.Error("baseline must not include the helper cluster")
	}
	if p.WidthEntries != 256 {
		t.Errorf("width predictor entries = %d, want the paper's 256", p.WidthEntries)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("baseline must validate: %v", err)
	}
}

func TestWithHelper(t *testing.T) {
	p := WithHelper()
	if !p.HelperEnabled {
		t.Fatal("helper must be enabled")
	}
	if p.HelperClockRatio != 2 {
		t.Errorf("helper clock ratio = %d, want the paper's 2x", p.HelperClockRatio)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("helper config must validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	muts := []func(*Processor){
		func(p *Processor) { p.FetchWidth = 0 },
		func(p *Processor) { p.ROBSize = 100 },
		func(p *Processor) { p.PhysRegs = 1 },
		func(p *Processor) { p.WideIQ = 0 },
		func(p *Processor) { p.HelperEnabled = true; p.HelperIQ = 0 },
		func(p *Processor) { p.HelperClockRatio = 9 },
		func(p *Processor) { p.MispredictPenalty = -1 },
		func(p *Processor) { p.MulLatency = 0 },
		func(p *Processor) { p.MemLatency = 0 },
		func(p *Processor) { p.WidthEntries = 0 },
		func(p *Processor) { p.L1.Ways = 0 },
		func(p *Processor) { p.L2.LineBytes = 48 },
	}
	for i, mut := range muts {
		p := PentiumLikeBaseline()
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d must fail validation", i)
		}
	}
}
