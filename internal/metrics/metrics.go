// Package metrics collects the measurements the paper reports: IPC and
// speedups, helper-cluster occupancy, copy percentages, width prediction
// accuracy (correct / non-fatal / fatal, Figure 5), the NREADY workload
// imbalance metric of §3.7, and the event counts the power model consumes.
package metrics

// Metrics is the full counter set of one simulation run.
type Metrics struct {
	// Time.
	Ticks      uint64 // helper-clock ticks
	WideCycles uint64

	// Work.
	Committed       uint64 // real (trace) uops committed
	CommittedCopies uint64 // copy uops committed
	CommittedSplits uint64 // split sub-uops committed (beyond the first)

	// Steering.
	SteeredHelper uint64 // real uops steered to the helper cluster
	SteeredSplit  uint64 // real uops split by IR
	CopiesCreated uint64 // inter-cluster copy uops created
	CopyPrefetch  uint64 // of which created eagerly by CP

	// Width prediction outcomes, classified at writeback (Figure 5):
	// Correct — prediction matched the actual width;
	// NonFatal — mispredicted but the uop ran in the wide cluster (missed
	// opportunity, no recovery);
	// Fatal — mispredicted on a uop steered to the helper (flush).
	WidthCorrect  uint64
	WidthNonFatal uint64
	WidthFatal    uint64
	FatalFlushes  uint64

	// Branches.
	Branches          uint64
	BranchMispredicts uint64

	// NREADY imbalance (§3.7): ready-but-unissued uops that had spare
	// issue slots in the other cluster.
	NReadyWideToNarrow uint64
	NReadyNarrowToWide uint64

	// Stall accounting (wide cycles when rename made no progress).
	StallROB  uint64
	StallIQ   uint64
	StallPhys uint64
	StallMOB  uint64

	// Power-model event counts, per cluster where applicable.
	IQWrites [2]uint64
	Issues   [2]uint64
	IQOccSum [2]uint64 // issue-queue occupancy integral, sampled per wide cycle

	// Latency integrals (ticks), for pipeline diagnostics.
	BranchResolveTicks uint64    // rename→resolution over all branches
	IssueWaitTicks     [2]uint64 // rename→issue per cluster
	RFReads            [2]uint64
	RFWrites           [2]uint64
	ALUOps             [2]uint64
	AGUOps             [2]uint64
	FPOps              uint64
	PredictorLookups   uint64
	Renames            uint64
}

// IPC returns committed real uops per wide cycle.
func (m *Metrics) IPC() float64 {
	if m.WideCycles == 0 {
		return 0
	}
	return float64(m.Committed) / float64(m.WideCycles)
}

// HelperFrac returns the fraction of committed real uops steered to the
// helper cluster.
func (m *Metrics) HelperFrac() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.SteeredHelper) / float64(m.Committed)
}

// CopyFrac returns copies created per committed real uop (the paper's
// "copy percentage").
func (m *Metrics) CopyFrac() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.CopiesCreated) / float64(m.Committed)
}

// WidthAccuracy returns the Figure 5 triple as fractions of all
// classified width predictions.
func (m *Metrics) WidthAccuracy() (correct, nonFatal, fatal float64) {
	total := m.WidthCorrect + m.WidthNonFatal + m.WidthFatal
	if total == 0 {
		return 0, 0, 0
	}
	f := float64(total)
	return float64(m.WidthCorrect) / f, float64(m.WidthNonFatal) / f, float64(m.WidthFatal) / f
}

// ImbalanceWideToNarrow returns the §3.7 NREADY wide-to-narrow imbalance
// normalized per committed uop.
func (m *Metrics) ImbalanceWideToNarrow() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.NReadyWideToNarrow) / float64(m.Committed)
}

// ImbalanceNarrowToWide returns the narrow-to-wide NREADY imbalance
// normalized per committed uop.
func (m *Metrics) ImbalanceNarrowToWide() float64 {
	if m.Committed == 0 {
		return 0
	}
	return float64(m.NReadyNarrowToWide) / float64(m.Committed)
}

// BranchMispredictRate returns mispredicts per branch.
func (m *Metrics) BranchMispredictRate() float64 {
	if m.Branches == 0 {
		return 0
	}
	return float64(m.BranchMispredicts) / float64(m.Branches)
}

// Sub returns the field-wise difference m - prev: the counter deltas of
// the interval between two snapshots of the same run. Counters are
// monotonic within a run, so the differences cannot underflow for a
// genuine (later, earlier) snapshot pair. The field list is maintained
// by hand — TestSubCoversEveryField fills every field reflectively and
// fails on any counter this function misses, so additions to Metrics
// cannot silently produce zero deltas.
func (m Metrics) Sub(prev Metrics) Metrics {
	d2 := func(a, b [2]uint64) [2]uint64 { return [2]uint64{a[0] - b[0], a[1] - b[1]} }
	return Metrics{
		Ticks:      m.Ticks - prev.Ticks,
		WideCycles: m.WideCycles - prev.WideCycles,

		Committed:       m.Committed - prev.Committed,
		CommittedCopies: m.CommittedCopies - prev.CommittedCopies,
		CommittedSplits: m.CommittedSplits - prev.CommittedSplits,

		SteeredHelper: m.SteeredHelper - prev.SteeredHelper,
		SteeredSplit:  m.SteeredSplit - prev.SteeredSplit,
		CopiesCreated: m.CopiesCreated - prev.CopiesCreated,
		CopyPrefetch:  m.CopyPrefetch - prev.CopyPrefetch,

		WidthCorrect:  m.WidthCorrect - prev.WidthCorrect,
		WidthNonFatal: m.WidthNonFatal - prev.WidthNonFatal,
		WidthFatal:    m.WidthFatal - prev.WidthFatal,
		FatalFlushes:  m.FatalFlushes - prev.FatalFlushes,

		Branches:          m.Branches - prev.Branches,
		BranchMispredicts: m.BranchMispredicts - prev.BranchMispredicts,

		NReadyWideToNarrow: m.NReadyWideToNarrow - prev.NReadyWideToNarrow,
		NReadyNarrowToWide: m.NReadyNarrowToWide - prev.NReadyNarrowToWide,

		StallROB:  m.StallROB - prev.StallROB,
		StallIQ:   m.StallIQ - prev.StallIQ,
		StallPhys: m.StallPhys - prev.StallPhys,
		StallMOB:  m.StallMOB - prev.StallMOB,

		IQWrites: d2(m.IQWrites, prev.IQWrites),
		Issues:   d2(m.Issues, prev.Issues),
		IQOccSum: d2(m.IQOccSum, prev.IQOccSum),

		BranchResolveTicks: m.BranchResolveTicks - prev.BranchResolveTicks,
		IssueWaitTicks:     d2(m.IssueWaitTicks, prev.IssueWaitTicks),
		RFReads:            d2(m.RFReads, prev.RFReads),
		RFWrites:           d2(m.RFWrites, prev.RFWrites),
		ALUOps:             d2(m.ALUOps, prev.ALUOps),
		AGUOps:             d2(m.AGUOps, prev.AGUOps),
		FPOps:              m.FPOps - prev.FPOps,
		PredictorLookups:   m.PredictorLookups - prev.PredictorLookups,
		Renames:            m.Renames - prev.Renames,
	}
}

// Speedup returns the relative performance of m against a baseline run of
// the same workload: positive means m is faster.
func Speedup(m, baseline *Metrics) float64 {
	b := baseline.IPC()
	if b == 0 {
		return 0
	}
	return m.IPC()/b - 1
}
