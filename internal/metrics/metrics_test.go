package metrics

import (
	"reflect"
	"testing"
)

func TestRates(t *testing.T) {
	m := Metrics{
		WideCycles:        1000,
		Committed:         1500,
		SteeredHelper:     300,
		CopiesCreated:     150,
		Branches:          100,
		BranchMispredicts: 8,
	}
	if got := m.IPC(); got != 1.5 {
		t.Errorf("IPC = %f", got)
	}
	if got := m.HelperFrac(); got != 0.2 {
		t.Errorf("HelperFrac = %f", got)
	}
	if got := m.CopyFrac(); got != 0.1 {
		t.Errorf("CopyFrac = %f", got)
	}
	if got := m.BranchMispredictRate(); got != 0.08 {
		t.Errorf("mispredict rate = %f", got)
	}
}

func TestZeroSafety(t *testing.T) {
	var m Metrics
	if m.IPC() != 0 || m.HelperFrac() != 0 || m.CopyFrac() != 0 ||
		m.BranchMispredictRate() != 0 ||
		m.ImbalanceWideToNarrow() != 0 || m.ImbalanceNarrowToWide() != 0 {
		t.Error("zero metrics must yield zero rates")
	}
	c, n, f := m.WidthAccuracy()
	if c != 0 || n != 0 || f != 0 {
		t.Error("zero accuracy must be zeros")
	}
}

func TestWidthAccuracy(t *testing.T) {
	m := Metrics{WidthCorrect: 93, WidthNonFatal: 6, WidthFatal: 1}
	c, n, f := m.WidthAccuracy()
	if c != 0.93 || n != 0.06 || f != 0.01 {
		t.Errorf("accuracy = %f %f %f", c, n, f)
	}
}

func TestImbalance(t *testing.T) {
	m := Metrics{Committed: 1000, NReadyWideToNarrow: 220, NReadyNarrowToWide: 20}
	if m.ImbalanceWideToNarrow() != 0.22 || m.ImbalanceNarrowToWide() != 0.02 {
		t.Error("imbalance normalization wrong")
	}
}

func TestSpeedup(t *testing.T) {
	base := &Metrics{WideCycles: 1000, Committed: 1000}
	fast := &Metrics{WideCycles: 800, Committed: 1000}
	if got := Speedup(fast, base); got < 0.249 || got > 0.251 {
		t.Errorf("speedup = %f, want 0.25", got)
	}
	if Speedup(fast, &Metrics{}) != 0 {
		t.Error("zero baseline must yield zero speedup")
	}
}

// TestSubCoversEveryField fills every counter (scalar and array) with
// distinct values via reflection and checks Sub differences all of them —
// so a future counter added to Metrics is covered automatically.
func TestSubCoversEveryField(t *testing.T) {
	var now, prev Metrics
	nv := reflect.ValueOf(&now).Elem()
	pv := reflect.ValueOf(&prev).Elem()
	for i := 0; i < nv.NumField(); i++ {
		switch f := nv.Field(i); f.Kind() {
		case reflect.Uint64:
			f.SetUint(uint64(1000 + 7*i))
			pv.Field(i).SetUint(uint64(10 + i))
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(uint64(2000 + 13*i + j))
				pv.Field(i).Index(j).SetUint(uint64(20 + i + j))
			}
		default:
			t.Fatalf("unexpected field kind %v in Metrics", f.Kind())
		}
	}
	d := now.Sub(prev)
	dv := reflect.ValueOf(d)
	for i := 0; i < dv.NumField(); i++ {
		switch f := dv.Field(i); f.Kind() {
		case reflect.Uint64:
			if want := nv.Field(i).Uint() - pv.Field(i).Uint(); f.Uint() != want {
				t.Errorf("field %s: got %d, want %d", dv.Type().Field(i).Name, f.Uint(), want)
			}
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if want := nv.Field(i).Index(j).Uint() - pv.Field(i).Index(j).Uint(); f.Index(j).Uint() != want {
					t.Errorf("field %s[%d]: got %d, want %d", dv.Type().Field(i).Name, j, f.Index(j).Uint(), want)
				}
			}
		}
	}
	if ipc := d.IPC(); ipc <= 0 {
		t.Errorf("interval delta must support derived metrics, IPC = %f", ipc)
	}
}
