// Dynamic (adaptive) steering policies: instead of fixing one rung of the
// paper's static ladder for a whole run, these select per interval using
// runtime feedback — the direction "Beyond Static Policies" and the
// dynamic ineffectuality-clustering line of work argue for.
package steer

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/metrics"
)

// Tournament is an interval-based dynamic selector over a set of static
// rungs. It alternates two phases: a sampling phase that runs every
// candidate for one feedback interval and scores it by committed IPC, and
// an exploit phase that runs the winner for RunIntervals intervals before
// re-sampling. Workload phases that favour different rungs are tracked at
// interval granularity; stationary workloads converge to the best rung
// and pay only the periodic sampling overhead.
type Tournament struct {
	// Cands are the candidate rungs, sampled in order.
	Cands []Features
	// Ival is the feedback interval in committed uops.
	Ival uint64
	// RunIntervals is the exploit-phase length in intervals.
	RunIntervals int
	// PerPhase keys the score table by the program-phase ID delivered in
	// Occupancy: scores sampled in one phase never decide another, and a
	// recurring phase whose table is complete resumes its winner without
	// re-sampling ("phase=on" in the canonical name).
	PerPhase bool

	cur     int  // index of the active candidate
	exploit bool // false: sampling phase, true: exploit phase
	sample  int  // next candidate to sample
	runLeft int  // exploit intervals remaining
	phaseOf int  // phase whose score table crowned the current winner
	// scores holds the last observed interval IPC per candidate, keyed by
	// phase ID (a single key 0 when PerPhase is off); seen tracks which
	// candidates have been scored in each phase (bitmask).
	scores map[int][]float64
	seen   map[int]uint64
	usage  []RungUsage
}

// NewTournament builds a tournament selector over the given rungs.
func NewTournament(cands []Features, interval uint64, runIntervals int) (*Tournament, error) {
	t := &Tournament{
		Cands:        append([]Features(nil), cands...),
		Ival:         interval,
		RunIntervals: runIntervals,
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	t.scores = make(map[int][]float64)
	t.seen = make(map[int]uint64)
	t.ResetUsage()
	return t, nil
}

// NewPhasedTournament is NewTournament with per-phase score tables on.
func NewPhasedTournament(cands []Features, interval uint64, runIntervals int) (*Tournament, error) {
	t, err := NewTournament(cands, interval, runIntervals)
	if err != nil {
		return nil, err
	}
	t.PerPhase = true
	return t, nil
}

// DefaultTournament selects among the ladder's four aggressive rungs
// (CR, CP, IR, IR-tuned), whose relative order varies most across
// workloads; the exploit phase is longer than the sampling phase so a
// stationary workload spends most of its time on its winner.
func DefaultTournament() *Tournament {
	t, err := NewTournament([]Features{FCR(), FCP(), FIR(), FIRTuned()}, 10_000, 6)
	if err != nil {
		panic(err)
	}
	return t
}

// Validate reports structural problems with the selector.
func (t *Tournament) Validate() error {
	if len(t.Cands) < 2 {
		return fmt.Errorf("steer: tournament needs >= 2 candidate rungs, got %d", len(t.Cands))
	}
	if t.Ival == 0 {
		return fmt.Errorf("steer: tournament needs a positive feedback interval")
	}
	if t.RunIntervals < 1 {
		return fmt.Errorf("steer: tournament needs a positive exploit-phase length")
	}
	seen := map[string]bool{}
	for _, c := range t.Cands {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("steer: tournament candidate %s: %w", c.Name(), err)
		}
		if seen[c.Name()] {
			return fmt.Errorf("steer: duplicate tournament candidate %s", c.Name())
		}
		seen[c.Name()] = true
	}
	return nil
}

// Name renders the canonical parameterized name, e.g.
// "dyn:tournament(8_8_8+BR,8_8_8+BR+LR,interval=10k,run=4)"; per-phase
// score tables append ",phase=on".
func (t *Tournament) Name() string {
	var b strings.Builder
	b.WriteString("dyn:tournament(")
	for _, c := range t.Cands {
		b.WriteString(c.Name())
		b.WriteString(",")
	}
	fmt.Fprintf(&b, "interval=%s,run=%d", fmtUops(t.Ival), t.RunIntervals)
	if t.PerPhase {
		b.WriteString(",phase=on")
	}
	b.WriteString(")")
	return b.String()
}

// Decide returns the active candidate's feature set.
func (t *Tournament) Decide(*isa.Uop, *View) Features { return t.Cands[t.cur] }

// Interval returns the feedback cadence.
func (t *Tournament) Interval() uint64 { return t.Ival }

// NeedsHelper reports whether any candidate steers.
func (t *Tournament) NeedsHelper() bool {
	for _, c := range t.Cands {
		if c.NeedsHelper() {
			return true
		}
	}
	return false
}

// scoreKey maps an interval's feedback to the score-table key: the phase
// ID when per-phase tables are on, the single shared table otherwise.
func (t *Tournament) scoreKey(occ Occupancy) int {
	if t.PerPhase {
		return occ.Phase
	}
	return 0
}

// scoresFor returns (lazily creating) one phase's score slice.
func (t *Tournament) scoresFor(key int) []float64 {
	if t.scores == nil {
		t.scores = make(map[int][]float64)
		t.seen = make(map[int]uint64)
	}
	s, ok := t.scores[key]
	if !ok {
		s = make([]float64, len(t.Cands))
		t.scores[key] = s
	}
	return s
}

// allMask is the seen-bitmask value of a fully sampled phase.
func (t *Tournament) allMask() uint64 { return 1<<uint(len(t.Cands)) - 1 }

// bestOf returns the index of the highest score among the candidates the
// mask marks as sampled (first sampled candidate wins ties; 0 when none).
func bestOf(scores []float64, mask uint64) int {
	best, has := 0, false
	for i, s := range scores {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if !has || s > scores[best] {
			best, has = i, true
		}
	}
	return best
}

// Observe scores the elapsed interval under its program phase and
// advances the sampling/exploit state machine. Truncated intervals — the
// end-of-run flush that makes the usage breakdown account for every
// commit — are attributed to usage but never scored: a partial interval's
// IPC is noise that must not steer candidate selection.
func (t *Tournament) Observe(delta metrics.Metrics, occ Occupancy) {
	ipc := 0.0
	if delta.WideCycles > 0 {
		ipc = float64(delta.Committed) / float64(delta.WideCycles)
	}
	u := &t.usage[t.cur]
	u.Committed += delta.Committed
	u.WideCycles += delta.WideCycles
	u.EnergyNJ += occ.EnergyNJ
	u.Intervals++
	if delta.Committed*2 < t.Ival {
		return
	}
	key := t.scoreKey(occ)
	scores := t.scoresFor(key)

	if t.exploit {
		if t.PerPhase && key != t.phaseOf {
			// The program changed phase mid-exploit. A phase whose table
			// is complete resumes its own winner immediately (the
			// per-phase payoff: no re-sampling of a recurring phase); an
			// unseen phase invalidates the incumbent's mandate and forces
			// a fresh sampling pass. The exploit countdown keeps running
			// across the switch — resetting it here would let a workload
			// that alternates between known phases postpone re-sampling
			// forever.
			if t.seen[key] != t.allMask() {
				t.exploit = false
				t.sample = 0
				t.cur = 0
				return
			}
			scores[t.cur] = 0.5*scores[t.cur] + 0.5*ipc
			t.seen[key] |= 1 << uint(t.cur)
			t.phaseOf = key
			if t.runLeft--; t.runLeft <= 0 {
				t.exploit = false
				t.sample = 0
				t.cur = 0
				return
			}
			t.cur = bestOf(scores, t.seen[key])
			return
		}
		// Keep the incumbent's score fresh so a fading candidate loses
		// the next tournament rather than winning on stale glory.
		scores[t.cur] = 0.5*scores[t.cur] + 0.5*ipc
		t.seen[key] |= 1 << uint(t.cur)
		if t.runLeft--; t.runLeft <= 0 {
			t.exploit = false
			t.sample = 0
			t.cur = 0
		}
		return
	}
	scores[t.sample] = ipc
	t.seen[key] |= 1 << uint(t.sample)
	if t.sample++; t.sample < len(t.Cands) {
		t.cur = t.sample
		return
	}
	t.cur = bestOf(scores, t.seen[key])
	t.phaseOf = key
	t.exploit = true
	t.runLeft = t.RunIntervals
}

// Usage returns the per-rung breakdown accumulated so far.
func (t *Tournament) Usage() []RungUsage { return append([]RungUsage(nil), t.usage...) }

// ResetUsage clears the breakdown (measurement begins after warmup).
func (t *Tournament) ResetUsage() {
	t.usage = make([]RungUsage, len(t.Cands))
	for i, c := range t.Cands {
		t.usage[i].Rung = c.Name()
	}
}

// Clone returns a pristine selector with the same parameters, including
// fresh per-phase score tables (never shared with the receiver).
func (t *Tournament) Clone() Policy {
	n, err := NewTournament(t.Cands, t.Ival, t.RunIntervals)
	if err != nil {
		panic(err) // the receiver already validated
	}
	n.PerPhase = t.PerPhase
	return n
}

// OccAdaptive modulates IR splitting from the live occupancy imbalance:
// the base rung's EnableIR is granted per uop only while the wide-minus-
// helper occupancy gap exceeds a threshold, and the threshold itself
// hill-climbs on interval IPC feedback (§3.7's imbalance trigger, made
// adaptive). The two effective rungs — base with and without IR — appear
// in the usage breakdown.
type OccAdaptive struct {
	// Base is the rung being modulated; it must carry EnableIR.
	Base Features
	// Thresh is the initial occupancy-gap threshold in (0,1), quantized
	// to whole percents (the resolution the canonical name carries).
	Thresh float64
	// Ival is the feedback interval in committed uops.
	Ival uint64

	th       float64 // adapted threshold
	step     float64 // hill-climbing step (sign carries direction)
	lastIPC  float64
	seeded   bool
	onCount  uint64 // Decide calls that granted IR this interval
	offCount uint64
	usage    [2]RungUsage // 0: IR granted, 1: IR withheld
}

// occAdaptStep is the hill-climbing step size for the gap threshold.
const occAdaptStep = 0.05

// NewOccAdaptive builds an occupancy-adaptive IR modulator. The starting
// threshold is quantized to a whole percent, the resolution the canonical
// name carries, so Name/ByName round-trips exactly.
func NewOccAdaptive(base Features, thresh float64, interval uint64) (*OccAdaptive, error) {
	thresh = float64(int(thresh*100+0.5)) / 100
	o := &OccAdaptive{Base: base, Thresh: thresh, Ival: interval}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	o.th = thresh
	o.step = occAdaptStep
	o.ResetUsage()
	return o, nil
}

// DefaultOccAdaptive modulates the full IR rung with the detector's
// default gap threshold.
func DefaultOccAdaptive() *OccAdaptive {
	o, err := NewOccAdaptive(FIR(), 0.25, 10_000)
	if err != nil {
		panic(err)
	}
	return o
}

// Validate reports structural problems with the modulator.
func (o *OccAdaptive) Validate() error {
	if err := o.Base.Validate(); err != nil {
		return err
	}
	if !o.Base.EnableIR {
		return fmt.Errorf("steer: occupancy-adaptive policy needs an IR-capable base rung, got %s", o.Base.Name())
	}
	if o.Thresh <= 0 || o.Thresh >= 1 {
		return fmt.Errorf("steer: occupancy-gap threshold must be in (0,1), got %g", o.Thresh)
	}
	if o.Ival == 0 {
		return fmt.Errorf("steer: occupancy-adaptive policy needs a positive feedback interval")
	}
	return nil
}

// Name renders the canonical parameterized name, e.g.
// "dyn:occupancy(8_8_8+BR+LR+CR+CP+IR,th=25,interval=10k)". The threshold
// is the configured starting point in percent; the adapted value is
// runtime state, not identity.
func (o *OccAdaptive) Name() string {
	return fmt.Sprintf("dyn:occupancy(%s,th=%d,interval=%s)",
		o.Base.Name(), int(o.Thresh*100+0.5), fmtUops(o.Ival))
}

// Decide grants or withholds IR for this uop from the live gap.
func (o *OccAdaptive) Decide(_ *isa.Uop, v *View) Features {
	f := o.Base
	if v.WideRate()-v.HelperRate() > o.th {
		o.onCount++
		return f
	}
	o.offCount++
	f.EnableIR = false
	f.IRNoDestOnly = false
	f.IRBlock = false
	return f
}

// Interval returns the feedback cadence.
func (o *OccAdaptive) Interval() uint64 { return o.Ival }

// NeedsHelper reports whether the base rung steers.
func (o *OccAdaptive) NeedsHelper() bool { return o.Base.NeedsHelper() }

// Observe attributes the interval (uops, cycles and energy) to the
// granted/withheld rungs in proportion to the Decide outcomes, then
// hill-climbs the threshold: a step that did not pay reverses direction.
func (o *OccAdaptive) Observe(delta metrics.Metrics, occ Occupancy) {
	total := o.onCount + o.offCount
	// Energy splits by the same Decide proportions as uops; an interval
	// with no Decide calls (a pure drain) books its energy as withheld so
	// the attribution still sums to the run total.
	onFrac := 0.0
	if total > 0 {
		onFrac = float64(o.onCount) / float64(total)
	}
	onE := occ.EnergyNJ * onFrac
	o.usage[0].EnergyNJ += onE
	o.usage[1].EnergyNJ += occ.EnergyNJ - onE
	if total > 0 {
		on := uint64(float64(delta.Committed)*onFrac + 0.5)
		if on > delta.Committed {
			on = delta.Committed
		}
		onCyc := uint64(float64(delta.WideCycles)*onFrac + 0.5)
		if onCyc > delta.WideCycles {
			onCyc = delta.WideCycles
		}
		o.usage[0].Committed += on
		o.usage[1].Committed += delta.Committed - on
		o.usage[0].WideCycles += onCyc
		o.usage[1].WideCycles += delta.WideCycles - onCyc
		if 2*o.onCount >= total {
			o.usage[0].Intervals++
		} else {
			o.usage[1].Intervals++
		}
	}
	o.onCount, o.offCount = 0, 0

	// A truncated interval (the end-of-run usage flush) carries noise,
	// not signal: attribute it above, but do not climb on it.
	if delta.Committed*2 < o.Ival {
		return
	}
	ipc := 0.0
	if delta.WideCycles > 0 {
		ipc = float64(delta.Committed) / float64(delta.WideCycles)
	}
	if !o.seeded {
		o.seeded = true
		o.lastIPC = ipc
		return
	}
	if ipc < o.lastIPC {
		o.step = -o.step
	}
	o.th += o.step
	switch {
	case o.th < occAdaptStep:
		o.th = occAdaptStep
	case o.th > 1-occAdaptStep:
		o.th = 1 - occAdaptStep
	}
	o.lastIPC = ipc
}

// Usage returns the granted/withheld breakdown accumulated so far.
func (o *OccAdaptive) Usage() []RungUsage { return append([]RungUsage(nil), o.usage[:]...) }

// ResetUsage clears the breakdown (measurement begins after warmup).
func (o *OccAdaptive) ResetUsage() {
	off := o.Base
	off.EnableIR, off.IRNoDestOnly, off.IRBlock = false, false, false
	o.usage = [2]RungUsage{{Rung: o.Base.Name()}, {Rung: off.Name()}}
	o.onCount, o.offCount = 0, 0
}

// Clone returns a pristine modulator with the same parameters.
func (o *OccAdaptive) Clone() Policy {
	n, err := NewOccAdaptive(o.Base, o.Thresh, o.Ival)
	if err != nil {
		panic(err) // the receiver already validated
	}
	return n
}

// fmtUops renders a uop count for policy names: "50k" for round
// thousands, the plain number otherwise.
func fmtUops(n uint64) string {
	if n >= 1000 && n%1000 == 0 {
		return strconv.FormatUint(n/1000, 10) + "k"
	}
	return strconv.FormatUint(n, 10)
}

// parseUops parses fmtUops' output (and plain numbers), rejecting counts
// whose thousands multiplier would overflow uint64.
func parseUops(s string) (uint64, error) {
	mult := uint64(1)
	if strings.HasSuffix(s, "k") {
		mult = 1000
		s = strings.TrimSuffix(s, "k")
	}
	n, err := strconv.ParseUint(s, 10, 64)
	if err != nil {
		return 0, err
	}
	if n > ^uint64(0)/mult {
		return 0, fmt.Errorf("uop count %sk overflows", s)
	}
	return n * mult, nil
}
