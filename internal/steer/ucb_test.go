package steer

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// occIn builds interval feedback with a phase ID and an energy estimate.
func occIn(phase int, energy float64) Occupancy {
	return Occupancy{Phase: phase, EnergyNJ: energy}
}

func TestUCBSweepsArmsThenExploits(t *testing.T) {
	cands := []Features{F888(), FBR(), FLR()}
	u, err := NewUCB(cands, 1000, 0, RewardIPC) // c=0: pure greedy after the sweep
	if err != nil {
		t.Fatal(err)
	}
	// Initial sweep: every arm plays once, in candidate order.
	for i := range cands {
		if got := u.Decide(nil, &View{}); got != cands[i] {
			t.Fatalf("sweep play %d runs %s, want %s", i, got.Name(), cands[i].Name())
		}
		cycles := uint64(1000) // IPC 1.0
		if i == 1 {
			cycles = 400 // FBR posts IPC 2.5
		}
		u.Observe(metrics.Metrics{Committed: 1000, WideCycles: cycles}, occIn(0, 0))
	}
	// Greedy exploitation: the best arm keeps playing.
	for i := 0; i < 5; i++ {
		if got := u.Decide(nil, &View{}); got != cands[1] {
			t.Fatalf("exploit play %d runs %s, want winner %s", i, got.Name(), cands[1].Name())
		}
		u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 400}, occIn(0, 0))
	}
	rows := u.Usage()
	var total uint64
	for _, r := range rows {
		total += r.Committed
	}
	if total != 8000 {
		t.Errorf("usage attributes %d committed uops, want 8000", total)
	}
}

func TestUCBExplorationRevisitsLosers(t *testing.T) {
	u, err := NewUCB([]Features{F888(), FBR()}, 1000, 2.0, RewardIPC)
	if err != nil {
		t.Fatal(err)
	}
	// Arm 0 wins the sweep decisively; with a large exploration constant
	// the loser must still be revisited within a modest horizon.
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 400}, occIn(0, 0))  // arm 0: ipc 2.5
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 2000}, occIn(0, 0)) // arm 1: ipc 0.5
	sawLoser := false
	for i := 0; i < 30 && !sawLoser; i++ {
		if u.Decide(nil, &View{}) == FBR() {
			sawLoser = true
		}
		u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 1000}, occIn(0, 0))
	}
	if !sawLoser {
		t.Error("UCB with c=2 must revisit the losing arm")
	}
}

func TestUCBKeepsPerPhaseArms(t *testing.T) {
	u, err := NewUCB([]Features{F888(), FBR()}, 1000, 0, RewardIPC)
	if err != nil {
		t.Fatal(err)
	}
	// Phase 0: arm 0 dominates.
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 400}, occIn(0, 0))  // arm 0 in phase 0
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 2000}, occIn(0, 0)) // arm 1 in phase 0
	if got := u.Decide(nil, &View{}); got != F888() {
		t.Fatalf("phase 0 winner is %s, want 8_8_8", got.Name())
	}
	// Phase 7 appears: its arms are unplayed, so the sweep restarts for it
	// — phase 0's ranking must not leak in.
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 2000}, occIn(7, 0)) // arm 0 weak in phase 7
	if got := u.Decide(nil, &View{}); got != FBR() {
		t.Fatalf("unplayed arm in a new phase must play next, got %s", got.Name())
	}
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 400}, occIn(7, 0)) // arm 1 strong in phase 7
	if got := u.Decide(nil, &View{}); got != FBR() {
		t.Errorf("phase 7 must exploit its own winner, got %s", got.Name())
	}
	if u.Phases() != 2 {
		t.Errorf("selector tracked %d phases, want 2", u.Phases())
	}
	// Back in phase 0 the original ranking resumes.
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 400}, occIn(0, 0))
	if got := u.Decide(nil, &View{}); got != F888() {
		t.Errorf("recurring phase 0 must resume its winner, got %s", got.Name())
	}
}

func TestUCBED2RewardPrefersEfficientArm(t *testing.T) {
	u, err := NewUCB([]Features{F888(), FBR()}, 1000, 0, RewardED2)
	if err != nil {
		t.Fatal(err)
	}
	// Arm 0: higher IPC but disproportionately higher energy. Arm 1:
	// slightly slower, far cheaper — the better per-uop E·D².
	// reward = IPC² · committed / energy:
	//   arm 0: 2.0² · 1000 / 8000 = 0.5    arm 1: 1.6² · 1000 / 1000 = 2.56
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 500}, occIn(0, 8000))
	u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 625}, occIn(0, 1000))
	if got := u.Decide(nil, &View{}); got != FBR() {
		t.Errorf("ed2 reward must pick the efficient arm, got %s", got.Name())
	}
	// The same observations under RewardIPC pick the faster arm.
	v, err := NewUCB([]Features{F888(), FBR()}, 1000, 0, RewardIPC)
	if err != nil {
		t.Fatal(err)
	}
	v.Observe(metrics.Metrics{Committed: 1000, WideCycles: 500}, occIn(0, 8000))
	v.Observe(metrics.Metrics{Committed: 1000, WideCycles: 625}, occIn(0, 1000))
	if got := v.Decide(nil, &View{}); got != F888() {
		t.Errorf("ipc reward must pick the faster arm, got %s", got.Name())
	}
}

func TestUCBTruncatedIntervalAttributesButNeverLearns(t *testing.T) {
	u, err := NewUCB([]Features{F888(), FBR()}, 1000, 0, RewardIPC)
	if err != nil {
		t.Fatal(err)
	}
	u.Observe(metrics.Metrics{Committed: 300, WideCycles: 100}, occIn(0, 42))
	if u.Decide(nil, &View{}) != F888() {
		t.Error("truncated interval must not advance the arm sweep")
	}
	rows := u.Usage()
	if rows[0].Committed != 300 {
		t.Error("truncated interval must still be attributed to usage")
	}
	if rows[0].EnergyNJ != 42 {
		t.Errorf("truncated interval energy = %g, want 42 (attribution must cover the tail)", rows[0].EnergyNJ)
	}
	if u.plays[0] != 0 {
		t.Error("truncated interval must not count as a play")
	}
}

func TestUCBEnergyAttributionSums(t *testing.T) {
	u, err := NewUCB([]Features{F888(), FBR(), FLR()}, 1000, 1.4, RewardED2)
	if err != nil {
		t.Fatal(err)
	}
	energies := []float64{10, 20, 5, 40, 15, 25}
	var want float64
	for i, e := range energies {
		u.Observe(metrics.Metrics{Committed: 1000, WideCycles: 600 + uint64(i*100)}, occIn(i%2, e))
		want += e
	}
	var got float64
	for _, r := range u.Usage() {
		got += r.EnergyNJ
	}
	if got != want {
		t.Errorf("attributed energy %g, want %g", got, want)
	}
}

func TestUCBCloneIsPristineAndDeep(t *testing.T) {
	orig := DefaultUCB()
	orig.Observe(metrics.Metrics{Committed: 10_000, WideCycles: 5_000}, occIn(3, 7))
	c := orig.Clone().(*UCB)
	if c.Name() != orig.Name() {
		t.Errorf("clone identity drifted: %q vs %q", c.Name(), orig.Name())
	}
	if c.Phases() != 0 || c.cur != 0 {
		t.Error("clone must start with no phase statistics")
	}
	for _, r := range c.Usage() {
		if r.Committed != 0 || r.EnergyNJ != 0 {
			t.Error("clone must carry no usage")
		}
	}
	// The maps must be distinct storage: learning in the clone must not
	// appear in the original and vice versa (RunBatch fans one value out).
	before := len(orig.arms)
	c.Observe(metrics.Metrics{Committed: 10_000, WideCycles: 5_000}, occIn(11, 0))
	if len(orig.arms) != before {
		t.Error("clone Observe mutated the original's per-phase arms (shallow map copy)")
	}
	orig.Observe(metrics.Metrics{Committed: 10_000, WideCycles: 5_000}, occIn(12, 0))
	if _, leaked := c.arms[12]; leaked {
		t.Error("original Observe mutated the clone's per-phase arms (shallow map copy)")
	}
}

func TestUCBValidateAndName(t *testing.T) {
	if _, err := NewUCB([]Features{F888()}, 1000, 1.4, RewardIPC); err == nil {
		t.Error("one candidate must be rejected")
	}
	if _, err := NewUCB([]Features{F888(), FBR()}, 0, 1.4, RewardIPC); err == nil {
		t.Error("zero interval must be rejected")
	}
	if _, err := NewUCB([]Features{F888(), FBR()}, 1000, -1, RewardIPC); err == nil {
		t.Error("negative exploration constant must be rejected")
	}
	if _, err := NewUCB([]Features{F888(), FBR()}, 1000, 1.4, "speed"); err == nil {
		t.Error("unknown reward must be rejected")
	}
	if _, err := NewUCB([]Features{F888(), F888()}, 1000, 1.4, RewardIPC); err == nil {
		t.Error("duplicate candidates must be rejected")
	}

	u, err := NewUCB([]Features{FCR(), FIR()}, 50_000, 1.37, RewardED2)
	if err != nil {
		t.Fatal(err)
	}
	if u.C != 1.4 {
		t.Errorf("exploration constant quantized to %g, want 1.4", u.C)
	}
	want := "dyn:ucb(8_8_8+BR+LR+CR,8_8_8+BR+LR+CR+CP+IR,reward=ed2,interval=50k,c=1.4)"
	if u.Name() != want {
		t.Errorf("Name() = %q, want %q", u.Name(), want)
	}
	back, err := ByName(u.Name())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != u.Name() {
		t.Errorf("round trip drifted: %q -> %q", back.Name(), u.Name())
	}
	if !strings.Contains(DefaultUCB().Name(), "reward=ipc") {
		t.Error("default UCB must render its reward mode")
	}
}

func TestPhasedTournamentResumesKnownPhase(t *testing.T) {
	tr, err := NewPhasedTournament([]Features{F888(), FBR()}, 1000, 4)
	if err != nil {
		t.Fatal(err)
	}
	full := func(cycles uint64, phase int) {
		tr.Observe(metrics.Metrics{Committed: 1000, WideCycles: cycles}, occIn(phase, 0))
	}
	// Phase 0 sampling: arm 1 wins.
	full(1000, 0)
	full(250, 0)
	if tr.Decide(nil, &View{}) != FBR() {
		t.Fatal("phase 0 winner must be FBR")
	}
	// Phase 5 interrupts the exploit run; it has no score table, so a
	// fresh sampling pass begins.
	full(250, 5)
	if got := tr.Decide(nil, &View{}); got != F888() {
		t.Fatalf("unseen phase must trigger re-sampling from candidate 0, got %s", got.Name())
	}
	// Phase 5 sampling: arm 0 wins this phase.
	full(250, 5)
	full(1000, 5)
	if tr.Decide(nil, &View{}) != F888() {
		t.Fatal("phase 5 winner must be 8_8_8")
	}
	// Phase 0 recurs mid-exploit: its table is complete, so its winner
	// resumes immediately — no re-sampling.
	full(300, 0)
	if got := tr.Decide(nil, &View{}); got != FBR() {
		t.Errorf("recurring phase with a complete table must resume its winner, got %s", got.Name())
	}
}

func TestPhasedTournamentResamplesUnderPhaseAlternation(t *testing.T) {
	// Regression: phase switches between fully-sampled phases must not
	// reset the exploit countdown, or a workload that alternates phases
	// every interval would postpone re-sampling forever.
	tr, err := NewPhasedTournament([]Features{F888(), FBR()}, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	full := func(cycles uint64, phase int) {
		tr.Observe(metrics.Metrics{Committed: 1000, WideCycles: cycles}, occIn(phase, 0))
	}
	// Complete phase 0's table (FBR wins) and enter its exploit run.
	full(1000, 0)
	full(250, 0)
	// Phase 1 interrupts unseen: a sampling pass completes its table too.
	full(250, 1)
	full(1000, 1)
	full(250, 1)
	// Both tables complete; the workload now alternates phases every
	// interval. After RunIntervals=3 exploit intervals the tournament
	// must drop back to sampling (candidate 0), not ride FBR forever.
	full(250, 0)
	full(250, 1)
	if got := tr.Decide(nil, &View{}); got != FBR() {
		t.Fatalf("mid-countdown the winner must still run, got %s", got.Name())
	}
	full(250, 0)
	if got := tr.Decide(nil, &View{}); got != F888() {
		t.Errorf("after the exploit countdown a fresh sampling pass must begin at candidate 0, got %s", got.Name())
	}
}

func TestPhasedTournamentNameRoundTrips(t *testing.T) {
	tr, err := NewPhasedTournament([]Features{F888(), FBR()}, 10_000, 6)
	if err != nil {
		t.Fatal(err)
	}
	want := "dyn:tournament(8_8_8,8_8_8+BR,interval=10k,run=6,phase=on)"
	if tr.Name() != want {
		t.Fatalf("Name() = %q, want %q", tr.Name(), want)
	}
	back, err := ByName(tr.Name())
	if err != nil {
		t.Fatal(err)
	}
	bt, ok := back.(*Tournament)
	if !ok || !bt.PerPhase {
		t.Error("phase=on must reconstruct a per-phase tournament")
	}
	if back.Name() != tr.Name() {
		t.Errorf("round trip drifted: %q", back.Name())
	}
	// Clone preserves phase-awareness.
	if c := tr.Clone().(*Tournament); !c.PerPhase || c.Name() != tr.Name() {
		t.Error("clone must preserve PerPhase")
	}
	// phase=off is accepted and is the default rendering.
	off, err := ByName("dyn:tournament(8_8_8,8_8_8+BR,interval=10k,run=6,phase=off)")
	if err != nil {
		t.Fatal(err)
	}
	if off.(*Tournament).PerPhase {
		t.Error("phase=off must disable per-phase tables")
	}
}

func TestTournamentEnergyAttributionSums(t *testing.T) {
	tr, err := NewTournament([]Features{F888(), FBR()}, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for i, e := range []float64{3, 9, 12, 1, 30} {
		tr.Observe(metrics.Metrics{Committed: 1000, WideCycles: 500 + uint64(i*50)}, occIn(0, e))
		want += e
	}
	var got float64
	for _, r := range tr.Usage() {
		got += r.EnergyNJ
	}
	if got != want {
		t.Errorf("attributed energy %g, want %g", got, want)
	}
}

func TestOccAdaptiveEnergyAttributionSums(t *testing.T) {
	o, err := NewOccAdaptive(FIR(), 0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	grant := View{WideOcc: 30, WideCap: 32, HelperOcc: 1, HelperCap: 32}
	withhold := View{WideOcc: 8, WideCap: 32, HelperOcc: 8, HelperCap: 32}
	for i := 0; i < 6; i++ {
		o.Decide(nil, &grant)
	}
	for i := 0; i < 4; i++ {
		o.Decide(nil, &withhold)
	}
	o.Observe(metrics.Metrics{Committed: 1000, WideCycles: 500}, occIn(0, 100))
	u := o.Usage()
	if u[0].EnergyNJ != 60 || u[1].EnergyNJ != 40 {
		t.Errorf("energy split %g/%g, want 60/40 (proportional to Decide outcomes)",
			u[0].EnergyNJ, u[1].EnergyNJ)
	}
}
