package steer

import (
	"fmt"

	"repro/internal/isa"
	"repro/internal/metrics"
)

// View is the live machine state a policy may consult when steering one
// uop: the issue-queue occupancies of both clusters and the NREADY
// leftovers of the previous issue cycle (§3.7's imbalance signals).
type View struct {
	WideOcc, WideCap     int
	HelperOcc, HelperCap int
	// WideReadyUnissued / HelperReadyUnissued are the ready-but-unissued
	// entry counts observed at the last issue boundary.
	WideReadyUnissued   int
	HelperReadyUnissued int
}

// WideRate returns the wide issue-queue occupancy rate in [0,1].
func (v View) WideRate() float64 {
	if v.WideCap <= 0 {
		return 0
	}
	return float64(v.WideOcc) / float64(v.WideCap)
}

// HelperRate returns the helper issue-queue occupancy rate in [0,1].
func (v View) HelperRate() float64 {
	if v.HelperCap <= 0 {
		return 0
	}
	return float64(v.HelperOcc) / float64(v.HelperCap)
}

// Occupancy is the machine feedback passed to Observe at each feedback
// interval: the queue-occupancy snapshot plus the interval's program-phase
// classification and derived cost signals. Stateful policies key their
// statistics by Phase so scores learned in one program phase are never
// compared against — or overwritten by — another.
type Occupancy struct {
	WideOcc, WideCap     int
	HelperOcc, HelperCap int
	// Phase is the program-phase ID of the elapsed interval, from the
	// branch-PC/working-set signature detector (internal/phase). Always 0
	// when phase detection is off (static policies, unit tests).
	Phase int
	// EnergyNJ is the power model's energy estimate for the elapsed
	// interval in nanojoules, so policies can optimize energy-delay²
	// rather than raw IPC. Zero when no power model is attached.
	EnergyNJ float64
	// CopyFrac and FatalFrac are the interval's inter-cluster copy traffic
	// and fatal-flush rate per committed uop — the §3.4/§3.2 cost signals,
	// pre-divided for Observe convenience (the raw counters are in the
	// metrics delta).
	CopyFrac  float64
	FatalFrac float64
}

// Policy is a steering policy: a per-uop feature decision plus an
// interval feedback hook. The simulator core consults Decide for every
// renamed uop to learn which of the paper's schemes govern it, and — for
// policies with a non-zero Interval — calls Observe with the metrics
// delta of each elapsed interval so the policy can adapt.
//
// Features is the zero-overhead static adapter: it implements Policy by
// returning itself from Decide, and the core recognizes it and skips the
// per-uop dispatch entirely. Dynamic policies (Tournament, OccAdaptive)
// change their answer over time.
//
// Policy implementations need not be safe for concurrent use by multiple
// simulations; the core takes a private instance via Fresh before a run.
type Policy interface {
	// Name renders the canonical policy name. For every registry policy
	// and every dynamic policy built from registry rungs, ByName(Name())
	// reconstructs an equivalent policy; hand-assembled Features outside
	// the paper's ladder render descriptive names that may not resolve
	// (they travel structurally over the wire instead).
	Name() string
	// Decide returns the feature set governing this uop's steering.
	Decide(u *isa.Uop, v *View) Features
	// Observe feeds back the metrics delta of the last interval together
	// with the current queue occupancies. Static policies ignore it.
	Observe(delta metrics.Metrics, occ Occupancy)
	// Interval is the feedback cadence in committed uops; 0 disables
	// Observe entirely (the static fast path).
	Interval() uint64
	// NeedsHelper reports whether the policy can ever steer to the helper
	// cluster, and therefore requires a machine with HelperEnabled.
	NeedsHelper() bool
}

// Features implements Policy: the static adapter the paper's ladder uses.

// Decide returns the fixed feature set (static policies never adapt).
func (f Features) Decide(*isa.Uop, *View) Features { return f }

// Observe is a no-op: static policies take no runtime feedback.
func (f Features) Observe(metrics.Metrics, Occupancy) {}

// Interval returns 0: static policies want no feedback callbacks.
func (f Features) Interval() uint64 { return 0 }

// NeedsHelper reports whether the feature set steers at all.
func (f Features) NeedsHelper() bool { return f.Enable888 }

// Validate reports contradictory feature combinations: every sub-scheme
// (BR, LR, CR, CP, IR and the IR tunings) extends the 8_8_8 base and is
// meaningless without it, and the two IR tunings are mutually exclusive.
func (f Features) Validate() error {
	if !f.Enable888 {
		var orphans []string
		for _, s := range []struct {
			on   bool
			name string
		}{
			{f.EnableBR, "EnableBR"},
			{f.EnableLR, "EnableLR"},
			{f.EnableCR, "EnableCR"},
			{f.EnableCP, "EnableCP"},
			{f.EnableIR, "EnableIR"},
			{f.IRNoDestOnly, "IRNoDestOnly"},
			{f.IRBlock, "IRBlock"},
		} {
			if s.on {
				orphans = append(orphans, s.name)
			}
		}
		if len(orphans) > 0 {
			return fmt.Errorf("steer: %v set without Enable888: every sub-scheme extends the 8_8_8 base (§3.2)", orphans)
		}
		return nil
	}
	if (f.IRNoDestOnly || f.IRBlock) && !f.EnableIR {
		return fmt.Errorf("steer: IR tuning flags require EnableIR (§3.7)")
	}
	if f.IRNoDestOnly && f.IRBlock {
		return fmt.Errorf("steer: IRNoDestOnly and IRBlock are mutually exclusive IR modes (§3.7)")
	}
	return nil
}

// RungUsage is one row of an adaptive policy's usage breakdown: how much
// of the run each rung (candidate feature set) governed.
type RungUsage struct {
	// Rung is the canonical name of the feature set.
	Rung string
	// Committed and WideCycles are the uops and cycles accumulated while
	// this rung was active (attributed at Observe granularity).
	Committed  uint64
	WideCycles uint64
	// Intervals is the number of feedback intervals the rung was active.
	Intervals uint64
	// EnergyNJ is the power model's energy estimate attributed to this
	// rung: the sum of the interval energies observed while the rung was
	// active. The rows of a usage breakdown split the run's total
	// power.Breakdown by the rung that steered each interval's uops; zero
	// when no power model fed Observe.
	EnergyNJ float64
}

// IPC returns the rung's committed-uop throughput while active.
func (u RungUsage) IPC() float64 {
	if u.WideCycles == 0 {
		return 0
	}
	return float64(u.Committed) / float64(u.WideCycles)
}

// EnergyPerUop returns the attributed energy per committed uop in
// nanojoules while the rung was active (0 without a power model).
func (u RungUsage) EnergyPerUop() float64 {
	if u.Committed == 0 {
		return 0
	}
	return u.EnergyNJ / float64(u.Committed)
}

// ED2PerUop returns the rung's normalized energy-delay² figure of merit:
// energy-per-uop × (cycles-per-uop)², the per-uop equivalent of the §3.7
// E·D² metric (lower is better; 0 without a power model).
func (u RungUsage) ED2PerUop() float64 {
	ipc := u.IPC()
	if ipc == 0 {
		return 0
	}
	return u.EnergyPerUop() / (ipc * ipc)
}

// UsageReporter is implemented by adaptive policies that track a per-rung
// usage breakdown. The core resets usage when measurement begins (after
// warmup) and snapshots it into the run's Result.
type UsageReporter interface {
	Usage() []RungUsage
	ResetUsage()
}

// Cloner is implemented by stateful policies. Fresh consults it so every
// simulation adapts from a pristine instance even when one policy value
// fans out over a batch of concurrent runs.
type Cloner interface {
	Clone() Policy
}

// Fresh returns a private instance of p for one simulation: stateful
// policies are cloned, stateless ones (Features) are returned as-is.
func Fresh(p Policy) Policy {
	if c, ok := p.(Cloner); ok {
		return c.Clone()
	}
	return p
}
