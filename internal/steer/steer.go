// Package steer defines the data-width aware instruction selection
// policies of the paper and the Policy interface the timing simulator
// consults: the Features set composing the 8_8_8 base scheme with BR,
// LR, CR, CP and IR (§3.2-§3.7) doubles as the zero-overhead static
// Policy, the dynamic policies (Tournament, OccAdaptive) re-select per
// interval from runtime feedback, and the pure decision helpers (split
// eligibility, the occupancy-based imbalance detector) support both.
package steer

import (
	"strings"

	"repro/internal/isa"
)

// Features selects which steering schemes are active. The paper's results
// ladder corresponds to turning these on cumulatively.
type Features struct {
	// Enable888 steers uops whose sources and result are all predicted
	// narrow to the helper cluster (§3.2).
	Enable888 bool
	// EnableBR steers conditional branches whose flags producer ran in
	// the helper cluster to the helper cluster (§3.3).
	EnableBR bool
	// EnableLR replicates predicted-narrow load values into both register
	// files (§3.4).
	EnableLR bool
	// EnableCR steers 8-32-32 operations with a predicted-contained carry
	// to the helper cluster (§3.5).
	EnableCR bool
	// EnableCP prefetches inter-cluster copies at the producer (§3.6).
	EnableCP bool
	// EnableIR splits wide ALU uops into four chained narrow uops when
	// the helper cluster is underutilized (§3.7).
	EnableIR bool
	// IRNoDestOnly is the §3.7 fine tuning: split only uops without a
	// destination register, trading steered coverage for fewer copies.
	IRNoDestOnly bool
	// IRBlock enables the paper's proposed future extension (§3.7): once
	// imbalance triggers a split, "complete blocks of wide instructions
	// are split up and sent in their entirety to the narrow cluster" —
	// subsequent eligible uops in the window split too, chaining through
	// helper-resident split results without inter-cluster copies.
	IRBlock bool
	// UseConfidence gates helper steering on the 2-bit confidence
	// estimator (§3.2 reduced fatal mispredictions 2.11% → 0.83%).
	UseConfidence bool
}

// Name renders the paper's scheme naming, e.g. "8_8_8+BR+LR". The §3.2
// no-confidence variant renders as "8_8_8-noconfidence" so that every
// distinct policy has a distinct name and Name/ByName round-trip.
func (f Features) Name() string {
	if !f.Enable888 {
		return "baseline"
	}
	var b strings.Builder
	b.WriteString("8_8_8")
	if !f.UseConfidence {
		b.WriteString("-noconfidence")
	}
	if f.EnableBR {
		b.WriteString("+BR")
	}
	if f.EnableLR {
		b.WriteString("+LR")
	}
	if f.EnableCR {
		b.WriteString("+CR")
	}
	if f.EnableCP {
		b.WriteString("+CP")
	}
	if f.EnableIR {
		switch {
		case f.IRNoDestOnly:
			b.WriteString("+IRnd")
		case f.IRBlock:
			b.WriteString("+IRblk")
		default:
			b.WriteString("+IR")
		}
	}
	return b.String()
}

// The paper's cumulative policy ladder.

// Baseline returns the no-steering policy (monolithic behaviour).
func Baseline() Features { return Features{} }

// F888 returns the §3.2 scheme.
func F888() Features { return Features{Enable888: true, UseConfidence: true} }

// F888NoConfidence returns 8_8_8 without the confidence estimator (the
// 2.11% fatal-rate datapoint of §3.2).
func F888NoConfidence() Features { return Features{Enable888: true} }

// FBR adds branch steering (§3.3).
func FBR() Features { f := F888(); f.EnableBR = true; return f }

// FLR adds load replication (§3.4).
func FLR() Features { f := FBR(); f.EnableLR = true; return f }

// FCR adds carry-width prediction (§3.5).
func FCR() Features { f := FLR(); f.EnableCR = true; return f }

// FCP adds copy prefetching (§3.6).
func FCP() Features { f := FCR(); f.EnableCP = true; return f }

// FIR adds instruction splitting (§3.7).
func FIR() Features { f := FCP(); f.EnableIR = true; return f }

// FIRTuned is the §3.7 fine tuning (split no-destination uops only).
func FIRTuned() Features { f := FIR(); f.IRNoDestOnly = true; return f }

// FIRBlock is the §3.7 proposed future extension: block-granularity
// splitting.
func FIRBlock() Features { f := FIR(); f.IRBlock = true; return f }

// Ladder returns the cumulative policies in paper order.
func Ladder() []Features {
	return []Features{F888(), FBR(), FLR(), FCR(), FCP(), FIR(), FIRTuned()}
}

// SplitEligible reports whether a uop may be IR-split into four chained
// narrow uops: plain single-cycle ALU work only — memory, control,
// multiply/divide and FP never split.
func SplitEligible(u *isa.Uop, noDestOnly bool) bool {
	if u.Class != isa.ClassALU {
		return false
	}
	switch u.Op {
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpCmp, isa.OpTest, isa.OpInc, isa.OpDec, isa.OpNot, isa.OpMov:
	default:
		return false // shifts move bits across chunk boundaries
	}
	if noDestOnly && u.HasDest() {
		return false
	}
	return true
}

// SplitPieces is the number of narrow uops a split produces (32/8).
const SplitPieces = 4

// ImbalanceDetector implements the §3.7 trigger: "the discrepancy of the
// issue queue occupancy rates of the clusters" indicates wide-to-narrow
// imbalance. Splitting only pays off when the wide backend is genuinely
// backlogged, so the detector also requires a minimum wide occupancy.
// Hysteresis prevents flapping at the threshold.
type ImbalanceDetector struct {
	// Threshold is the occupancy-rate gap (wide minus helper, in [0,1])
	// above which the helper is considered underutilized.
	Threshold float64
	// Hysteresis is subtracted from the threshold while splitting is
	// active.
	Hysteresis float64
	// WideFloor is the minimum wide occupancy rate for splitting: an
	// empty wide queue has no backlog to offload.
	WideFloor float64
	// OverloadThreshold is the helper-minus-wide occupancy gap above
	// which the helper counts as overloaded (the other half of scheme 5:
	// steer narrow uops wide until balance is restored).
	OverloadThreshold float64

	active bool
}

// NewImbalanceDetector returns a detector with the default tuning.
func NewImbalanceDetector() *ImbalanceDetector {
	return &ImbalanceDetector{
		Threshold:         0.25,
		Hysteresis:        0.10,
		WideFloor:         0.45,
		OverloadThreshold: 0.50,
	}
}

// WideToNarrow reports whether wide-to-narrow imbalance currently holds,
// given the two issue-queue occupancies.
func (d *ImbalanceDetector) WideToNarrow(wideOcc, wideCap, helperOcc, helperCap int) bool {
	if wideCap <= 0 || helperCap <= 0 {
		return false
	}
	wideRate := float64(wideOcc) / float64(wideCap)
	if wideRate < d.WideFloor {
		d.active = false
		return false
	}
	gap := wideRate - float64(helperOcc)/float64(helperCap)
	th := d.Threshold
	if d.active {
		th -= d.Hysteresis
	}
	d.active = gap > th
	return d.active
}

// HelperOverloaded reports whether the helper queue is so much fuller than
// the wide queue that narrow instructions should steer wide (§3.7).
func (d *ImbalanceDetector) HelperOverloaded(helperOcc, helperCap, wideOcc, wideCap int) bool {
	if wideCap <= 0 || helperCap <= 0 {
		return false
	}
	gap := float64(helperOcc)/float64(helperCap) - float64(wideOcc)/float64(wideCap)
	return gap > d.OverloadThreshold
}
