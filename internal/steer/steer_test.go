package steer

import (
	"testing"

	"repro/internal/isa"
)

func TestFeatureNames(t *testing.T) {
	cases := []struct {
		f    Features
		want string
	}{
		{Baseline(), "baseline"},
		{F888(), "8_8_8"},
		{F888NoConfidence(), "8_8_8-noconfidence"},
		{FBR(), "8_8_8+BR"},
		{FLR(), "8_8_8+BR+LR"},
		{FCR(), "8_8_8+BR+LR+CR"},
		{FCP(), "8_8_8+BR+LR+CR+CP"},
		{FIR(), "8_8_8+BR+LR+CR+CP+IR"},
		{FIRTuned(), "8_8_8+BR+LR+CR+CP+IRnd"},
	}
	for _, c := range cases {
		if got := c.f.Name(); got != c.want {
			t.Errorf("Name() = %q, want %q", got, c.want)
		}
	}
}

func TestLadderIsCumulative(t *testing.T) {
	ladder := Ladder()
	if len(ladder) != 7 {
		t.Fatalf("ladder has %d rungs", len(ladder))
	}
	counters := func(f Features) int {
		n := 0
		for _, b := range []bool{f.Enable888, f.EnableBR, f.EnableLR, f.EnableCR, f.EnableCP, f.EnableIR} {
			if b {
				n++
			}
		}
		return n
	}
	for i := 1; i < len(ladder)-1; i++ {
		if counters(ladder[i]) != counters(ladder[i-1])+1 {
			t.Errorf("rung %d does not add exactly one scheme", i)
		}
	}
	if !ladder[len(ladder)-1].IRNoDestOnly {
		t.Error("final rung must be the tuned IR variant")
	}
	for _, f := range ladder {
		if !f.UseConfidence {
			t.Error("ladder policies must use the confidence estimator")
		}
	}
}

func TestSplitEligible(t *testing.T) {
	add := &isa.Uop{Class: isa.ClassALU, Op: isa.OpAdd, DstReg: 3}
	cmp := &isa.Uop{Class: isa.ClassALU, Op: isa.OpCmp, DstReg: isa.RegNone}
	shl := &isa.Uop{Class: isa.ClassALU, Op: isa.OpShl, DstReg: 3}
	load := &isa.Uop{Class: isa.ClassLoad, Op: isa.OpLea, DstReg: 3}
	branch := &isa.Uop{Class: isa.ClassBranch}

	if !SplitEligible(add, false) {
		t.Error("plain add must be splittable")
	}
	if SplitEligible(add, true) {
		t.Error("add has a destination: excluded by the tuned rule")
	}
	if !SplitEligible(cmp, true) || !SplitEligible(cmp, false) {
		t.Error("cmp (flags only) must be splittable in both modes")
	}
	if SplitEligible(shl, false) {
		t.Error("shifts cross byte boundaries and must not split")
	}
	if SplitEligible(load, false) || SplitEligible(branch, false) {
		t.Error("memory and control must not split")
	}
}

func TestImbalanceDetector(t *testing.T) {
	d := NewImbalanceDetector()
	// Helper empty, wide backlogged: imbalance.
	if !d.WideToNarrow(28, 32, 1, 32) {
		t.Error("large gap above the floor must trigger")
	}
	// Hysteresis keeps it active just below the threshold.
	if !d.WideToNarrow(22, 32, 4, 32) {
		t.Error("hysteresis must hold the detector active")
	}
	// Balanced queues: off.
	if d.WideToNarrow(16, 32, 16, 32) {
		t.Error("balanced occupancies must not trigger")
	}
	// Empty wide queue: nothing to offload regardless of gap.
	if d.WideToNarrow(2, 32, 0, 32) {
		t.Error("below the wide floor the detector must stay off")
	}
	if d.WideToNarrow(10, 0, 0, 32) {
		t.Error("degenerate capacities must not trigger")
	}
}

func TestHelperOverloaded(t *testing.T) {
	d := NewImbalanceDetector()
	if !d.HelperOverloaded(30, 32, 4, 32) {
		t.Error("helper much fuller than wide must report overload")
	}
	if d.HelperOverloaded(16, 32, 16, 32) {
		t.Error("balance must not report overload")
	}
	if d.HelperOverloaded(30, 0, 4, 32) {
		t.Error("degenerate capacities must not report overload")
	}
}
