package steer

import "testing"

// fuzzSeeds are the interesting corner inputs for the policy-name parser:
// every canonical name, the aliases, and the malformed shapes that have
// bitten parameterized parsers before (unterminated argument lists,
// negative or overflowing numbers, nesting, junk parameters). They seed
// the fuzzer and double as a deterministic regression table in plain
// `go test` runs (TestPolicyNameParserNeverPanics).
var fuzzSeeds = []string{
	// Well-formed.
	"baseline", "888", "ir", "ucb", "ucb-ed2", "tournament",
	"8_8_8+BR+LR+CR+CP+IRnd",
	"dyn:tournament(8_8_8+BR,8_8_8+BR+LR,interval=50k,run=8)",
	"dyn:tournament(8_8_8,8_8_8+BR,interval=10k,run=6,phase=on)",
	"dyn:ucb(8_8_8+BR+LR,8_8_8+BR+LR+CR,reward=ed2,interval=50k,c=1.4)",
	"dyn:ucb(cr,cp,ir,reward=ipc,interval=2500,c=0)",
	"dyn:occupancy(8_8_8+BR+LR+CR+CP+IR,th=25,interval=10k)",
	// Malformed: structure.
	"dyn:ucb(", "dyn:ucb", "dyn:ucb)", "dyn:", "dyn:(", "dyn:ucb()",
	"dyn:tournament((8_8_8,8_8_8+BR))",
	"dyn:ucb(8_8_8,8_8_8+BR,interval=10k))",
	// Malformed: numbers.
	"dyn:ucb(8_8_8,8_8_8+BR,interval=-50k)",
	"dyn:ucb(8_8_8,8_8_8+BR,interval=0)",
	"dyn:ucb(8_8_8,8_8_8+BR,c=-1)",
	"dyn:ucb(8_8_8,8_8_8+BR,c=nan)",
	"dyn:ucb(8_8_8,8_8_8+BR,c=+inf)",
	"dyn:tournament(8_8_8,8_8_8+BR,run=-3)",
	"dyn:tournament(8_8_8,8_8_8+BR,interval=99999999999999999999k)",
	"dyn:occupancy(ir,th=101)",
	// Malformed: rungs and parameters.
	"dyn:ucb(8_8_8,nosuchrung)",
	"dyn:ucb(8_8_8,dyn:ucb(8_8_8,8_8_8+BR))",
	"dyn:ucb(8_8_8,8_8_8+BR,reward=speed)",
	"dyn:ucb(8_8_8,8_8_8+BR,bogus=1)",
	"dyn:ucb(8_8_8,8_8_8)",
	"dyn:tournament(8_8_8,8_8_8+BR,phase=maybe)",
	"dyn:mystery(8_8_8,8_8_8+BR)",
	// Hostile noise.
	"", " ", "(", ")", "=", ",", "dyn:ucb(,,,,)", "dyn:ucb(=,=)",
	"\x00dyn:ucb(8_8_8)", "dyn:ucb(8_8_8\xff,8_8_8+BR)",
}

// checkName is the fuzz property: ByName must never panic, and any name
// it accepts must round-trip — re-resolving the constructed policy's
// canonical Name() yields a policy with the identical name.
func checkName(t *testing.T, name string) {
	t.Helper()
	p, err := ByName(name)
	if err != nil {
		if p != nil {
			t.Errorf("ByName(%q) returned both a policy and an error", name)
		}
		return
	}
	canon := p.Name()
	back, err := ByName(canon)
	if err != nil {
		t.Fatalf("accepted name %q rendered canonical %q that does not resolve: %v", name, canon, err)
	}
	if back.Name() != canon {
		t.Errorf("round trip drifted: %q -> %q -> %q", name, canon, back.Name())
	}
	if v, ok := p.(interface{ Validate() error }); ok {
		if verr := v.Validate(); verr != nil {
			t.Errorf("ByName(%q) produced an invalid policy: %v", name, verr)
		}
	}
}

// FuzzPolicyByName fuzzes the parameterized policy-name parser. The seed
// corpus above is also checked in under testdata/fuzz/FuzzPolicyByName so
// CI replays it without -fuzz.
func FuzzPolicyByName(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, name string) {
		checkName(t, name)
	})
}

// TestPolicyNameParserNeverPanics runs the seed table deterministically in
// plain test runs: malformed parameterized names must come back as errors,
// never panics, and accepted ones must round-trip.
func TestPolicyNameParserNeverPanics(t *testing.T) {
	for _, s := range fuzzSeeds {
		checkName(t, s)
	}
	// The malformed shapes named by the regression checklist must error.
	for _, bad := range []string{
		"dyn:ucb(",
		"dyn:ucb(8_8_8,8_8_8+BR,interval=-50k)",
		"dyn:ucb(8_8_8,nosuchrung)",
		"dyn:tournament(8_8_8,8_8_8+BR,interval=-1)",
	} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) must fail", bad)
		}
	}
}
