package steer

import (
	"fmt"
	"strconv"
	"strings"
)

// policyTable is the single authoritative name → policy mapping. Canonical
// names are the paper's scheme names as rendered by Features.Name() plus
// the parameterized dynamic-selector names rendered by their own Name()
// methods; aliases cover the short spellings the command-line tools have
// always accepted.
var policyTable = []struct {
	Canonical string
	Aliases   []string
	Make      func() Policy
}{
	{"baseline", []string{"none"}, func() Policy { return Baseline() }},
	{"8_8_8", []string{"888"}, func() Policy { return F888() }},
	{"8_8_8+BR", []string{"br"}, func() Policy { return FBR() }},
	{"8_8_8+BR+LR", []string{"lr"}, func() Policy { return FLR() }},
	{"8_8_8+BR+LR+CR", []string{"cr"}, func() Policy { return FCR() }},
	{"8_8_8+BR+LR+CR+CP", []string{"cp"}, func() Policy { return FCP() }},
	{"8_8_8+BR+LR+CR+CP+IR", []string{"ir", "full"}, func() Policy { return FIR() }},
	{"8_8_8+BR+LR+CR+CP+IRnd", []string{"irnd", "ir-tuned"}, func() Policy { return FIRTuned() }},
	{"8_8_8+BR+LR+CR+CP+IRblk", []string{"irblk", "ir-block"}, func() Policy { return FIRBlock() }},
	{"8_8_8-noconfidence", []string{"888-noconf", "no-confidence"}, func() Policy { return F888NoConfidence() }},
	{defaultTournamentName, []string{"dyn", "tournament"}, func() Policy { return DefaultTournament() }},
	{defaultOccupancyName, []string{"occupancy", "adaptive"}, func() Policy { return DefaultOccAdaptive() }},
	{defaultUCBName, []string{"ucb"}, func() Policy { return DefaultUCB() }},
	{defaultUCBED2Name, []string{"ucb-ed2"}, func() Policy { return DefaultUCBED2() }},
}

// The default dynamic policies' canonical names, rendered once so the
// table and Names() stay in lockstep with the Name() methods.
var (
	defaultTournamentName = DefaultTournament().Name()
	defaultOccupancyName  = DefaultOccAdaptive().Name()
	defaultUCBName        = DefaultUCB().Name()
	defaultUCBED2Name     = DefaultUCBED2().Name()
)

// ByName resolves a policy by canonical name or alias, case-insensitively.
// Parameterized dynamic names — "dyn:tournament(rung,rung,...,
// interval=50k,run=4[,phase=on])", "dyn:ucb(rung,rung,...,reward=ed2,
// interval=50k,c=1.4)" and "dyn:occupancy(rung,th=25,interval=10k)" —
// are parsed structurally; every policy's Name() round-trips through here.
func ByName(name string) (Policy, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	if strings.HasPrefix(want, "dyn:") {
		return parseDynamic(want)
	}
	for _, e := range policyTable {
		if strings.ToLower(e.Canonical) == want {
			return e.Make(), nil
		}
		for _, a := range e.Aliases {
			if a == want {
				return e.Make(), nil
			}
		}
	}
	return nil, fmt.Errorf("steer: unknown policy %q (want one of %v)", name, Names())
}

// FeaturesByName resolves a name that must denote a static policy, as the
// candidate lists of dynamic selectors require.
func FeaturesByName(name string) (Features, error) {
	p, err := ByName(name)
	if err != nil {
		return Features{}, err
	}
	f, ok := p.(Features)
	if !ok {
		return Features{}, fmt.Errorf("steer: %q is not a static policy (dynamic selectors cannot nest)", name)
	}
	return f, nil
}

// Names returns the canonical policy names in ladder order, the dynamic
// selectors last.
func Names() []string {
	out := make([]string, len(policyTable))
	for i, e := range policyTable {
		out[i] = e.Canonical
	}
	return out
}

// parseDynamic parses a parameterized "dyn:kind(arg,arg,...)" name. The
// input arrives lowercased; rung names are resolved case-insensitively
// and the policy re-renders them canonically, so round-tripping holds.
func parseDynamic(want string) (Policy, error) {
	body := strings.TrimPrefix(want, "dyn:")
	open := strings.IndexByte(body, '(')
	if open < 0 || !strings.HasSuffix(body, ")") {
		return nil, fmt.Errorf("steer: malformed dynamic policy %q (want dyn:kind(arg,...))", want)
	}
	kind := body[:open]
	var rungs []string
	params := map[string]string{}
	for _, arg := range strings.Split(body[open+1:len(body)-1], ",") {
		arg = strings.TrimSpace(arg)
		if arg == "" {
			continue
		}
		if k, v, ok := strings.Cut(arg, "="); ok {
			params[strings.TrimSpace(k)] = strings.TrimSpace(v)
		} else {
			rungs = append(rungs, arg)
		}
	}

	interval := uint64(10_000)
	if v, ok := params["interval"]; ok {
		n, err := parseUops(v)
		if err != nil {
			return nil, fmt.Errorf("steer: bad interval in %q: %w", want, err)
		}
		interval = n
	}

	switch kind {
	case "tournament":
		if err := onlyParams(params, "interval", "run", "phase"); err != nil {
			return nil, fmt.Errorf("steer: %q: %w", want, err)
		}
		runIntervals := 6 // match DefaultTournament when run= is omitted
		if v, ok := params["run"]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("steer: bad run length in %q: %w", want, err)
			}
			runIntervals = n
		}
		perPhase := false
		if v, ok := params["phase"]; ok {
			switch v {
			case "on":
				perPhase = true
			case "off":
			default:
				return nil, fmt.Errorf("steer: bad phase mode %q in %q (want on or off)", v, want)
			}
		}
		var cands []Features
		for _, r := range rungs {
			f, err := FeaturesByName(r)
			if err != nil {
				return nil, err
			}
			cands = append(cands, f)
		}
		t, err := NewTournament(cands, interval, runIntervals)
		if err != nil {
			return nil, err
		}
		t.PerPhase = perPhase
		return t, nil

	case "ucb":
		if err := onlyParams(params, "interval", "reward", "c"); err != nil {
			return nil, fmt.Errorf("steer: %q: %w", want, err)
		}
		reward := RewardIPC
		if v, ok := params["reward"]; ok {
			reward = v
		}
		c := 1.4 // match DefaultUCB when c= is omitted
		if v, ok := params["c"]; ok {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return nil, fmt.Errorf("steer: bad exploration constant in %q: %w", want, err)
			}
			c = f
		}
		var cands []Features
		for _, r := range rungs {
			f, err := FeaturesByName(r)
			if err != nil {
				return nil, err
			}
			cands = append(cands, f)
		}
		u, err := NewUCB(cands, interval, c, reward)
		if err != nil {
			return nil, err // untyped nil: a typed-nil *UCB would read as non-nil Policy
		}
		return u, nil

	case "occupancy":
		if err := onlyParams(params, "interval", "th"); err != nil {
			return nil, fmt.Errorf("steer: %q: %w", want, err)
		}
		if len(rungs) != 1 {
			return nil, fmt.Errorf("steer: occupancy policy wants exactly one base rung, got %v", rungs)
		}
		base, err := FeaturesByName(rungs[0])
		if err != nil {
			return nil, err
		}
		thPercent := 25
		if v, ok := params["th"]; ok {
			n, err := strconv.Atoi(v)
			if err != nil {
				return nil, fmt.Errorf("steer: bad threshold in %q: %w", want, err)
			}
			thPercent = n
		}
		o, err := NewOccAdaptive(base, float64(thPercent)/100, interval)
		if err != nil {
			return nil, err // untyped nil, as above
		}
		return o, nil

	default:
		return nil, fmt.Errorf("steer: unknown dynamic policy kind %q (want tournament, ucb or occupancy)", kind)
	}
}

// onlyParams rejects unknown key=value parameters so typos fail loudly.
func onlyParams(params map[string]string, allowed ...string) error {
	for k := range params {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
			}
		}
		if !ok {
			return fmt.Errorf("unknown parameter %q (want %v)", k, allowed)
		}
	}
	return nil
}
