package steer

import (
	"fmt"
	"strings"
)

// policyTable is the single authoritative name → policy mapping. Canonical
// names are the paper's scheme names as rendered by Features.Name();
// aliases cover the short spellings the command-line tools have always
// accepted.
var policyTable = []struct {
	Canonical string
	Aliases   []string
	Make      func() Features
}{
	{"baseline", []string{"none"}, Baseline},
	{"8_8_8", []string{"888"}, F888},
	{"8_8_8+BR", []string{"br"}, FBR},
	{"8_8_8+BR+LR", []string{"lr"}, FLR},
	{"8_8_8+BR+LR+CR", []string{"cr"}, FCR},
	{"8_8_8+BR+LR+CR+CP", []string{"cp"}, FCP},
	{"8_8_8+BR+LR+CR+CP+IR", []string{"ir", "full"}, FIR},
	{"8_8_8+BR+LR+CR+CP+IRnd", []string{"irnd", "ir-tuned"}, FIRTuned},
	{"8_8_8+BR+LR+CR+CP+IRblk", []string{"irblk", "ir-block"}, FIRBlock},
	{"8_8_8-noconfidence", []string{"888-noconf", "no-confidence"}, F888NoConfidence},
}

// ByName resolves a policy by canonical name or alias, case-insensitively.
func ByName(name string) (Features, error) {
	want := strings.ToLower(strings.TrimSpace(name))
	for _, e := range policyTable {
		if strings.ToLower(e.Canonical) == want {
			return e.Make(), nil
		}
		for _, a := range e.Aliases {
			if a == want {
				return e.Make(), nil
			}
		}
	}
	return Features{}, fmt.Errorf("steer: unknown policy %q (want one of %v)", name, Names())
}

// Names returns the canonical policy names in ladder order.
func Names() []string {
	out := make([]string, len(policyTable))
	for i, e := range policyTable {
		out[i] = e.Canonical
	}
	return out
}
