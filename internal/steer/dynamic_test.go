package steer

import (
	"strings"
	"testing"

	"repro/internal/metrics"
)

// obs builds an interval delta with the given committed/cycle counts.
func obs(committed, cycles uint64) metrics.Metrics {
	return metrics.Metrics{Committed: committed, WideCycles: cycles}
}

func TestTournamentSamplesThenExploits(t *testing.T) {
	cands := []Features{F888(), FBR(), FLR()}
	tr, err := NewTournament(cands, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Sampling phase: each candidate governs exactly one interval.
	for i := range cands {
		if got := tr.Decide(nil, &View{}); got != cands[i] {
			t.Fatalf("sampling interval %d runs %s, want %s", i, got.Name(), cands[i].Name())
		}
		// Candidate 1 (FBR) posts the best IPC.
		ipc := uint64(1000 + 500*i%1000)
		if i == 1 {
			ipc = 3000
		}
		tr.Observe(obs(1000, 1000*1000/ipc), Occupancy{})
	}

	// Exploit phase: the winner runs for RunIntervals intervals.
	for i := 0; i < 2; i++ {
		if got := tr.Decide(nil, &View{}); got != cands[1] {
			t.Fatalf("exploit interval %d runs %s, want winner %s", i, got.Name(), cands[1].Name())
		}
		tr.Observe(obs(1000, 500), Occupancy{})
	}

	// Then a fresh tournament begins at candidate 0.
	if got := tr.Decide(nil, &View{}); got != cands[0] {
		t.Errorf("re-sampling must restart at candidate 0, got %s", got.Name())
	}

	u := tr.Usage()
	if len(u) != len(cands) {
		t.Fatalf("usage has %d rows, want %d", len(u), len(cands))
	}
	var total uint64
	for _, r := range u {
		total += r.Committed
	}
	if total != 5000 {
		t.Errorf("usage commits sum to %d, want 5000 (every observed interval attributed)", total)
	}
	if u[1].Committed != 3000 {
		t.Errorf("winner governed %d committed uops, want 3000 (1 sample + 2 exploit)", u[1].Committed)
	}
}

func TestTournamentAdaptsAcrossPhases(t *testing.T) {
	tr, err := NewTournament([]Features{F888(), FBR()}, 1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: candidate 0 wins.
	tr.Observe(obs(1000, 400), Occupancy{}) // cand 0 ipc 2.5
	tr.Observe(obs(1000, 800), Occupancy{}) // cand 1 ipc 1.25
	if tr.Decide(nil, &View{}) != F888() {
		t.Fatal("candidate 0 must win round 1")
	}
	tr.Observe(obs(1000, 400), Occupancy{}) // exploit interval
	// Round 2: the workload phase flips, candidate 1 now wins.
	tr.Observe(obs(1000, 900), Occupancy{}) // cand 0 ipc 1.11
	tr.Observe(obs(1000, 300), Occupancy{}) // cand 1 ipc 3.33
	if tr.Decide(nil, &View{}) != FBR() {
		t.Error("selector must adapt to the new phase winner")
	}
}

func TestTournamentIgnoresTruncatedIntervals(t *testing.T) {
	tr, err := NewTournament([]Features{F888(), FBR()}, 1000, 2)
	if err != nil {
		t.Fatal(err)
	}
	// An end-of-run flush delivers less than half an interval: usage is
	// attributed, but the sampling state machine must not advance or
	// score it.
	tr.Observe(obs(300, 100), Occupancy{})
	if tr.Decide(nil, &View{}) != F888() {
		t.Error("truncated interval must not advance sampling")
	}
	if tr.Usage()[0].Committed != 300 {
		t.Error("truncated interval must still be attributed to usage")
	}
	if tr.scoresFor(0)[0] != 0 {
		t.Error("truncated interval must not be scored")
	}
}

func TestOccAdaptiveQuantizesThreshold(t *testing.T) {
	o, err := NewOccAdaptive(FIR(), 0.375, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if o.Thresh != 0.38 {
		t.Errorf("threshold quantized to %g, want 0.38", o.Thresh)
	}
	back, err := ByName(o.Name())
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != o.Name() {
		t.Errorf("quantized threshold must round-trip: %q vs %q", back.Name(), o.Name())
	}
}

func TestTournamentCloneIsPristine(t *testing.T) {
	tr := DefaultTournament()
	tr.Observe(obs(5000, 2000), Occupancy{})
	tr.Observe(obs(5000, 1000), Occupancy{})
	c := tr.Clone().(*Tournament)
	if c.cur != 0 || c.exploit || c.sample != 0 {
		t.Error("clone must start a fresh tournament")
	}
	for _, u := range c.Usage() {
		if u.Committed != 0 || u.Intervals != 0 {
			t.Error("clone must carry no usage")
		}
	}
	if c.Name() != tr.Name() {
		t.Errorf("clone identity drifted: %q vs %q", c.Name(), tr.Name())
	}
}

func TestOccAdaptiveDecide(t *testing.T) {
	o, err := NewOccAdaptive(FIR(), 0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Wide backlogged, helper idle: IR granted.
	got := o.Decide(nil, &View{WideOcc: 28, WideCap: 32, HelperOcc: 2, HelperCap: 32})
	if !got.EnableIR {
		t.Error("large gap must grant IR")
	}
	// Balanced queues: IR withheld, rest of the rung intact.
	got = o.Decide(nil, &View{WideOcc: 16, WideCap: 32, HelperOcc: 16, HelperCap: 32})
	if got.EnableIR {
		t.Error("balanced occupancy must withhold IR")
	}
	if !got.EnableCP || !got.Enable888 {
		t.Error("withholding IR must not disturb the rest of the rung")
	}
}

func TestOccAdaptiveHillClimbsAndAttributes(t *testing.T) {
	o, err := NewOccAdaptive(FIR(), 0.25, 1000)
	if err != nil {
		t.Fatal(err)
	}
	grant := View{WideOcc: 30, WideCap: 32, HelperOcc: 1, HelperCap: 32}
	withhold := View{WideOcc: 8, WideCap: 32, HelperOcc: 8, HelperCap: 32}

	// Interval 1: all grants, seeds the climber.
	for i := 0; i < 10; i++ {
		o.Decide(nil, &grant)
	}
	o.Observe(obs(1000, 500), Occupancy{})
	th1 := o.th
	// Interval 2: IPC improves — the climber keeps direction and moves.
	for i := 0; i < 6; i++ {
		o.Decide(nil, &grant)
	}
	for i := 0; i < 4; i++ {
		o.Decide(nil, &withhold)
	}
	o.Observe(obs(1000, 400), Occupancy{})
	if o.th == th1 {
		t.Error("threshold must move on feedback")
	}
	// Interval 3: IPC collapses — direction must reverse.
	dirBefore := o.step
	o.Decide(nil, &grant)
	o.Observe(obs(1000, 4000), Occupancy{})
	if o.step != -dirBefore {
		t.Error("a losing step must reverse the climb direction")
	}

	u := o.Usage()
	if len(u) != 2 {
		t.Fatalf("usage rows = %d, want 2 (granted / withheld)", len(u))
	}
	if u[0].Committed+u[1].Committed != 3000 {
		t.Errorf("attributed commits = %d, want 3000", u[0].Committed+u[1].Committed)
	}
	if u[1].Committed == 0 {
		t.Error("withheld intervals must receive proportional attribution")
	}
	if !strings.Contains(u[0].Rung, "+IR") || strings.Contains(u[1].Rung, "+IR") {
		t.Errorf("rung labels wrong: %q / %q", u[0].Rung, u[1].Rung)
	}
}

func TestFeaturesValidate(t *testing.T) {
	valid := []Features{
		{}, F888(), F888NoConfidence(), FBR(), FLR(), FCR(), FCP(), FIR(), FIRTuned(), FIRBlock(),
	}
	for _, f := range valid {
		if err := f.Validate(); err != nil {
			t.Errorf("%s must validate: %v", f.Name(), err)
		}
	}
	invalid := []Features{
		{EnableBR: true},
		{EnableLR: true},
		{EnableCR: true},
		{EnableCP: true},
		{EnableIR: true},
		{IRNoDestOnly: true},
		{IRBlock: true},
		{EnableBR: true, EnableIR: true},
		{Enable888: true, IRNoDestOnly: true}, // IR tuning without IR
		{Enable888: true, EnableIR: true, IRNoDestOnly: true, IRBlock: true}, // both tunings
	}
	for _, f := range invalid {
		if err := f.Validate(); err == nil {
			t.Errorf("%+v must be rejected", f)
		}
	}
}

func TestFreshClonesStatefulPolicies(t *testing.T) {
	tr := DefaultTournament()
	if Fresh(tr) == Policy(tr) {
		t.Error("Fresh must clone a stateful policy")
	}
	f := FIR()
	if Fresh(f) != Policy(f) {
		t.Error("Fresh must pass static policies through")
	}
}

func TestPolicyInterfaceStaticAdapter(t *testing.T) {
	var p Policy = FIR()
	if p.Interval() != 0 {
		t.Error("static policies take no feedback")
	}
	if !p.NeedsHelper() {
		t.Error("FIR steers and needs the helper")
	}
	if got := p.Decide(nil, &View{}); got != FIR() {
		t.Error("static Decide must return the fixed feature set")
	}
	if Baseline().NeedsHelper() {
		t.Error("baseline must not require the helper")
	}
}
