package steer

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/isa"
	"repro/internal/metrics"
)

// Reward modes for the UCB selector.
const (
	// RewardIPC optimizes raw committed-uop throughput per interval.
	RewardIPC = "ipc"
	// RewardED2 optimizes the §3.7 efficiency metric: minimizing per-uop
	// energy-delay² (equivalently, maximizing IPC² per energy-per-uop,
	// using the interval energy estimate fed through Observe).
	RewardED2 = "ed2"
)

// UCB is a bandit-style dynamic selector over a set of static rungs: each
// feedback interval is one play of the active arm, rewarded by interval
// IPC or by the interval's energy-delay² figure, and the next arm is the
// UCB1 pick — highest mean reward plus the C-weighted exploration bonus.
// Unlike the Tournament's periodic re-sampling, UCB concentrates plays on
// the winner asymptotically while still revisiting losers at a
// logarithmically decaying rate, so a rung whose fortunes change is
// eventually re-discovered without a fixed sampling schedule.
//
// Arm statistics are kept per program phase (the phase ID delivered in
// Occupancy): rewards observed in one phase never dilute another phase's
// ranking, and a recurring phase resumes its learned winner immediately.
type UCB struct {
	// Cands are the candidate rungs (the bandit's arms).
	Cands []Features
	// Ival is the feedback interval in committed uops (one play).
	Ival uint64
	// C is the UCB1 exploration constant, quantized to tenths (the
	// resolution the canonical name carries). 0 means pure greedy after
	// the initial sweep.
	C float64
	// Reward selects the optimization target: RewardIPC or RewardED2.
	Reward string

	cur   int
	norm  float64           // first observed raw reward, normalizes scale
	arms  map[int][]armStat // phase ID → per-candidate statistics
	plays map[int]uint64    // phase ID → total plays
	usage []RungUsage
}

// armStat is one arm's running statistics within one phase.
type armStat struct {
	plays uint64
	mean  float64
}

// NewUCB builds a UCB selector over the given rungs. The exploration
// constant is quantized to tenths so Name/ByName round-trips exactly.
func NewUCB(cands []Features, interval uint64, c float64, reward string) (*UCB, error) {
	u := &UCB{
		Cands:  append([]Features(nil), cands...),
		Ival:   interval,
		C:      math.Round(c*10) / 10,
		Reward: reward,
	}
	if err := u.Validate(); err != nil {
		return nil, err
	}
	u.arms = make(map[int][]armStat)
	u.plays = make(map[int]uint64)
	u.ResetUsage()
	return u, nil
}

// DefaultUCB selects among the ladder's four aggressive rungs by interval
// IPC, like DefaultTournament, so the two selection strategies are
// directly comparable.
func DefaultUCB() *UCB {
	u, err := NewUCB([]Features{FCR(), FCP(), FIR(), FIRTuned()}, 10_000, 1.4, RewardIPC)
	if err != nil {
		panic(err)
	}
	return u
}

// DefaultUCBED2 optimizes energy-delay² — the paper's §3.7 argument made
// the selection objective — over the same aggressive arms as DefaultUCB,
// with a finer interval and a smaller exploration constant: the shorter
// interval finishes the initial arm sweep inside the warmup leg and
// tracks phase changes at finer grain, and squaring IPC in the ED² reward
// already separates the arms, so less forced exploration is needed. With
// this tuning the bandit beats the per-app best static rung on ED² for
// phase-varying workloads (e.g. vortex in `sweep -study ucb`), which no
// fixed rung can do.
func DefaultUCBED2() *UCB {
	u, err := NewUCB([]Features{FCR(), FCP(), FIR(), FIRTuned()}, 2_000, 0.5, RewardED2)
	if err != nil {
		panic(err)
	}
	return u
}

// Validate reports structural problems with the selector.
func (u *UCB) Validate() error {
	if len(u.Cands) < 2 {
		return fmt.Errorf("steer: ucb needs >= 2 candidate rungs, got %d", len(u.Cands))
	}
	if u.Ival == 0 {
		return fmt.Errorf("steer: ucb needs a positive feedback interval")
	}
	if math.IsNaN(u.C) || math.IsInf(u.C, 0) || u.C < 0 {
		return fmt.Errorf("steer: ucb exploration constant must be finite and >= 0, got %g", u.C)
	}
	if u.Reward != RewardIPC && u.Reward != RewardED2 {
		return fmt.Errorf("steer: unknown ucb reward %q (want %s or %s)", u.Reward, RewardIPC, RewardED2)
	}
	seen := map[string]bool{}
	for _, c := range u.Cands {
		if err := c.Validate(); err != nil {
			return fmt.Errorf("steer: ucb candidate %s: %w", c.Name(), err)
		}
		if seen[c.Name()] {
			return fmt.Errorf("steer: duplicate ucb candidate %s", c.Name())
		}
		seen[c.Name()] = true
	}
	return nil
}

// Name renders the canonical parameterized name, e.g.
// "dyn:ucb(8_8_8+BR+LR+CR,8_8_8+BR+LR+CR+CP,reward=ed2,interval=50k,c=1.4)".
func (u *UCB) Name() string {
	var b strings.Builder
	b.WriteString("dyn:ucb(")
	for _, c := range u.Cands {
		b.WriteString(c.Name())
		b.WriteString(",")
	}
	fmt.Fprintf(&b, "reward=%s,interval=%s,c=%s)",
		u.Reward, fmtUops(u.Ival), strconv.FormatFloat(u.C, 'g', -1, 64))
	return b.String()
}

// Decide returns the active arm's feature set.
func (u *UCB) Decide(*isa.Uop, *View) Features { return u.Cands[u.cur] }

// Interval returns the feedback cadence.
func (u *UCB) Interval() uint64 { return u.Ival }

// NeedsHelper reports whether any candidate steers.
func (u *UCB) NeedsHelper() bool {
	for _, c := range u.Cands {
		if c.NeedsHelper() {
			return true
		}
	}
	return false
}

// Phases returns the number of distinct program phases the selector has
// accumulated arm statistics for.
func (u *UCB) Phases() int { return len(u.arms) }

// armsFor returns (lazily creating) the arm statistics of one phase.
func (u *UCB) armsFor(phase int) []armStat {
	if u.arms == nil {
		u.arms = make(map[int][]armStat)
		u.plays = make(map[int]uint64)
	}
	a, ok := u.arms[phase]
	if !ok {
		a = make([]armStat, len(u.Cands))
		u.arms[phase] = a
	}
	return a
}

// reward computes the interval's raw reward under the configured mode.
// RewardED2 degrades to IPC when no energy estimate was delivered (unit
// tests, cores without a power model), so the selector still adapts.
func (u *UCB) reward(delta metrics.Metrics, occ Occupancy) float64 {
	ipc := 0.0
	if delta.WideCycles > 0 {
		ipc = float64(delta.Committed) / float64(delta.WideCycles)
	}
	if u.Reward == RewardED2 && occ.EnergyNJ > 0 && delta.Committed > 0 {
		// Per-uop E·D² is energy-per-uop / IPC²; minimizing it maximizes
		// IPC² / energy-per-uop, which is the reward (higher = better).
		return ipc * ipc * float64(delta.Committed) / occ.EnergyNJ
	}
	return ipc
}

// Observe rewards the elapsed interval's arm under the interval's phase
// and picks the next arm by UCB1 within that phase. Truncated intervals
// (the end-of-run flush) are attributed to usage but never learned from.
func (u *UCB) Observe(delta metrics.Metrics, occ Occupancy) {
	row := &u.usage[u.cur]
	row.Committed += delta.Committed
	row.WideCycles += delta.WideCycles
	row.EnergyNJ += occ.EnergyNJ
	row.Intervals++
	if delta.Committed*2 < u.Ival {
		return
	}

	r := u.reward(delta, occ)
	// Rewards self-normalize against the first full interval so the
	// exploration constant works on the same ~1.0 scale for both reward
	// modes (raw ED² rewards run orders of magnitude above raw IPC).
	if u.norm == 0 && r > 0 {
		u.norm = r
	}
	if u.norm > 0 {
		r /= u.norm
	}

	arms := u.armsFor(occ.Phase)
	a := &arms[u.cur]
	a.plays++
	a.mean += (r - a.mean) / float64(a.plays)
	u.plays[occ.Phase]++
	u.cur = u.pick(occ.Phase)
}

// pick returns the UCB1 arm for a phase: unplayed arms first (in
// candidate order), then highest mean + C·sqrt(ln N / n_i).
func (u *UCB) pick(phase int) int {
	arms := u.armsFor(phase)
	for i := range arms {
		if arms[i].plays == 0 {
			return i
		}
	}
	logN := math.Log(float64(u.plays[phase]))
	best, bestV := 0, math.Inf(-1)
	for i := range arms {
		if v := arms[i].mean + u.C*math.Sqrt(logN/float64(arms[i].plays)); v > bestV {
			best, bestV = i, v
		}
	}
	return best
}

// Usage returns the per-rung breakdown accumulated so far.
func (u *UCB) Usage() []RungUsage { return append([]RungUsage(nil), u.usage...) }

// ResetUsage clears the breakdown (measurement begins after warmup).
func (u *UCB) ResetUsage() {
	u.usage = make([]RungUsage, len(u.Cands))
	for i, c := range u.Cands {
		u.usage[i].Rung = c.Name()
	}
}

// Clone returns a pristine selector with the same parameters: fresh arm
// statistics and fresh per-phase maps, so one UCB value fans out over a
// batch of concurrent simulations without sharing state.
func (u *UCB) Clone() Policy {
	n, err := NewUCB(u.Cands, u.Ival, u.C, u.Reward)
	if err != nil {
		panic(err) // the receiver already validated
	}
	return n
}
