package cache

import (
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	good := Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 3}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 32 << 10, LineBytes: 48, Ways: 8, LatencyCycles: 3},
		{SizeBytes: 32 << 10, LineBytes: 64, Ways: 0, LatencyCycles: 3},
		{SizeBytes: 64, LineBytes: 64, Ways: 8, LatencyCycles: 3},
		{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8, LatencyCycles: 0},
		{SizeBytes: 3 * 64 * 8, LineBytes: 64, Ways: 8, LatencyCycles: 1}, // 3 sets
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d should be invalid", i)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 1})
	if c.Access(0x1000) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000) {
		t.Error("second access must hit")
	}
	if !c.Access(0x1004) {
		t.Error("same-line access must hit")
	}
	if c.Access(0x1040) {
		t.Error("next line must miss")
	}
	s := c.Stats()
	if s.Accesses != 4 || s.Misses != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.MissRate() != 0.5 {
		t.Errorf("miss rate = %f", s.MissRate())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 2 ways, 8 sets of 64B: addresses 0, 1024, 2048 map to set 0.
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 1})
	c.Access(0)
	c.Access(1024)
	c.Access(0) // refresh 0: LRU victim is now 1024
	c.Access(2048)
	if !c.Probe(0) {
		t.Error("0 must survive (was MRU)")
	}
	if c.Probe(1024) {
		t.Error("1024 must be evicted (was LRU)")
	}
	if !c.Probe(2048) {
		t.Error("2048 must be resident")
	}
}

func TestProbeDoesNotModify(t *testing.T) {
	c := New(Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 1})
	if c.Probe(0x40) {
		t.Error("probe of empty cache must miss")
	}
	if c.Stats().Accesses != 0 {
		t.Error("probe must not count as access")
	}
	c.Access(0x40)
	if !c.Probe(0x40) {
		t.Error("probe after access must hit")
	}
}

// TestCacheWorkingSetProperty: accessing a working set no larger than the
// cache repeatedly has no misses after the first pass.
func TestCacheWorkingSetProperty(t *testing.T) {
	f := func(seed uint32) bool {
		c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4, LatencyCycles: 1})
		base := seed &^ uint32(4095)
		for pass := 0; pass < 3; pass++ {
			for off := uint32(0); off < 4096; off += 64 {
				c.Access(base + off)
			}
		}
		return c.Stats().Misses == 64 // only the first pass misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h := NewHierarchy(
		Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 3},
		Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, LatencyCycles: 13},
		450,
	)
	if got := h.Access(0x5000); got != 3+13+450 {
		t.Errorf("cold access latency = %d", got)
	}
	if got := h.Access(0x5000); got != 3 {
		t.Errorf("L1 hit latency = %d", got)
	}
	// Evict from tiny L1 but keep in L2: set 0 conflicts at 0x5000,
	// 0x5400, 0x5800 (1KB L1 → 8 sets of 64B × 2 ways).
	h.Access(0x5400)
	h.Access(0x5800)
	if got := h.Access(0x5000); got != 3+13 {
		t.Errorf("L2 hit latency = %d", got)
	}
}

func TestHierarchyValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero memory latency must panic")
		}
	}()
	NewHierarchy(
		Config{SizeBytes: 1024, LineBytes: 64, Ways: 2, LatencyCycles: 3},
		Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 4, LatencyCycles: 13},
		0,
	)
}

func TestTraceCache(t *testing.T) {
	tc := NewTraceCache(1024, 16, 4, 8)
	if got := tc.Fetch(0x1000); got != 8 {
		t.Errorf("cold fetch penalty = %d, want 8", got)
	}
	if got := tc.Fetch(0x1000); got != 0 {
		t.Errorf("warm fetch penalty = %d, want 0", got)
	}
	// Same trace line: 16 uops × 4 bytes = 64-byte lines.
	if got := tc.Fetch(0x103C); got != 0 {
		t.Errorf("same-line fetch penalty = %d, want 0", got)
	}
	if got := tc.Fetch(0x1040); got != 8 {
		t.Errorf("next-line fetch penalty = %d, want 8", got)
	}
}

func TestTraceCacheValidation(t *testing.T) {
	for _, fn := range []func(){
		func() { NewTraceCache(1024, 12, 4, 8) },
		func() { NewTraceCache(1024, 16, 4, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
