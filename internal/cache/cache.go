// Package cache models the memory hierarchy of the Table 1 machine: LRU
// set-associative caches composed into a DL0/UL1/main-memory hierarchy,
// plus the trace cache that feeds the frontend.
package cache

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes int
	LineBytes int
	Ways      int
	// LatencyCycles is the access latency in wide-cluster cycles on a hit.
	LatencyCycles int
}

// Validate reports the first structural problem.
func (c Config) Validate() error {
	switch {
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("cache: line size %d must be a positive power of two", c.LineBytes)
	case c.Ways <= 0:
		return fmt.Errorf("cache: ways %d must be positive", c.Ways)
	case c.SizeBytes < c.LineBytes*c.Ways:
		return fmt.Errorf("cache: size %d smaller than one set (%d)", c.SizeBytes, c.LineBytes*c.Ways)
	case c.LatencyCycles < 1:
		return fmt.Errorf("cache: latency %d must be >= 1", c.LatencyCycles)
	}
	sets := c.SizeBytes / (c.LineBytes * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d must be a power of two", sets)
	}
	return nil
}

// Stats counts accesses and misses.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// Sub returns the counter deltas s - prev for two snapshots of the same
// cache (interval accounting; counters are monotonic within a run).
func (s Stats) Sub(prev Stats) Stats {
	return Stats{Accesses: s.Accesses - prev.Accesses, Misses: s.Misses - prev.Misses}
}

// MissRate returns misses/accesses in [0,1].
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is an LRU set-associative cache. Tags only — data values live in
// the trace.
type Cache struct {
	cfg      Config
	setShift uint
	setMask  uint32
	tags     []uint32 // sets × ways
	valid    []bool
	age      []uint64 // LRU timestamps
	ways     int
	clock    uint64
	stats    Stats
}

// New builds a cache; the configuration must validate.
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.SizeBytes / (cfg.LineBytes * cfg.Ways)
	shift := uint(0)
	for 1<<shift != cfg.LineBytes {
		shift++
	}
	return &Cache{
		cfg:      cfg,
		setShift: shift,
		setMask:  uint32(sets - 1),
		tags:     make([]uint32, sets*cfg.Ways),
		valid:    make([]bool, sets*cfg.Ways),
		age:      make([]uint64, sets*cfg.Ways),
		ways:     cfg.Ways,
	}
}

// Access looks up addr, filling the line on a miss, and reports a hit.
func (c *Cache) Access(addr uint32) bool {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.setShift
	set := int(line&c.setMask) * c.ways
	victim := set
	oldest := c.age[set]
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.valid[i] && c.tags[i] == line {
			c.age[i] = c.clock
			return true
		}
		if !c.valid[i] {
			victim = i
			oldest = 0
		} else if c.age[i] < oldest {
			victim = i
			oldest = c.age[i]
		}
	}
	c.stats.Misses++
	c.tags[victim] = line
	c.valid[victim] = true
	c.age[victim] = c.clock
	return false
}

// Probe looks up addr without modifying cache state.
func (c *Cache) Probe(addr uint32) bool {
	line := addr >> c.setShift
	set := int(line&c.setMask) * c.ways
	for w := 0; w < c.ways; w++ {
		i := set + w
		if c.valid[i] && c.tags[i] == line {
			return true
		}
	}
	return false
}

// Stats returns accumulated counters.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters without disturbing cache contents
// (measurement warmup).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// Reset restores the fully cold state — every line invalid, LRU clock and
// counters at zero — without reallocating the arrays.
func (c *Cache) Reset() {
	clear(c.tags)
	clear(c.valid)
	clear(c.age)
	c.clock = 0
	c.stats = Stats{}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Hierarchy is the data-side memory system: DL0 backed by UL1 backed by
// main memory (Table 1: 32KB/8w/3cy, 4MB/16w/13cy, 450 cycles).
type Hierarchy struct {
	L1  *Cache
	L2  *Cache
	Mem int // main memory latency in wide cycles
}

// NewHierarchy builds the two-level hierarchy.
func NewHierarchy(l1, l2 Config, memLatency int) *Hierarchy {
	if memLatency < 1 {
		panic("cache: memory latency must be >= 1")
	}
	return &Hierarchy{L1: New(l1), L2: New(l2), Mem: memLatency}
}

// Reinit restores the cold state, reusing each cache's arrays when its
// configuration is unchanged and rebuilding it otherwise.
func (h *Hierarchy) Reinit(l1, l2 Config, memLatency int) {
	if memLatency < 1 {
		panic("cache: memory latency must be >= 1")
	}
	h.L1 = reinitCache(h.L1, l1)
	h.L2 = reinitCache(h.L2, l2)
	h.Mem = memLatency
}

func reinitCache(c *Cache, cfg Config) *Cache {
	if c != nil && c.cfg == cfg {
		c.Reset()
		return c
	}
	return New(cfg)
}

// Access returns the total latency in wide cycles for a data access.
func (h *Hierarchy) Access(addr uint32) int {
	if h.L1.Access(addr) {
		return h.L1.cfg.LatencyCycles
	}
	if h.L2.Access(addr) {
		return h.L1.cfg.LatencyCycles + h.L2.cfg.LatencyCycles
	}
	return h.L1.cfg.LatencyCycles + h.L2.cfg.LatencyCycles + h.Mem
}
