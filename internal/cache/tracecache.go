package cache

// TraceCache models the uop supply of the P4-like frontend (Table 1:
// 32K uops, 4-way). It is organized in trace lines of uops indexed by PC;
// a miss stalls fetch for the build penalty while the line is constructed
// from the UL1 path.
type TraceCache struct {
	cache        *Cache
	lineUops     int
	buildPenalty int // wide cycles of fetch stall on a miss

	lastLine uint32
	haveLine bool
}

// NewTraceCache builds a trace cache holding capacityUops uops in lines of
// lineUops, with the given associativity and miss build penalty.
func NewTraceCache(capacityUops, lineUops, ways, buildPenalty int) *TraceCache {
	if lineUops <= 0 || lineUops&(lineUops-1) != 0 {
		panic("cache: trace line uop count must be a positive power of two")
	}
	if buildPenalty < 0 {
		panic("cache: negative build penalty")
	}
	// Model each uop as 4 "bytes" of PC space; a line covers lineUops
	// consecutive static uops.
	cfg := Config{
		SizeBytes:     capacityUops * 4,
		LineBytes:     lineUops * 4,
		Ways:          ways,
		LatencyCycles: 1,
	}
	return &TraceCache{cache: New(cfg), lineUops: lineUops, buildPenalty: buildPenalty}
}

// Reinit restores the cold state, reusing the underlying cache arrays
// when the geometry is unchanged and rebuilding them otherwise.
func (t *TraceCache) Reinit(capacityUops, lineUops, ways, buildPenalty int) {
	if t.cache == nil || t.lineUops != lineUops || t.buildPenalty != buildPenalty ||
		t.cache.cfg.SizeBytes != capacityUops*4 || t.cache.cfg.Ways != ways {
		*t = *NewTraceCache(capacityUops, lineUops, ways, buildPenalty)
		return
	}
	t.cache.Reset()
	t.lastLine, t.haveLine = 0, false
}

// Fetch looks up the trace line containing pc and returns the fetch stall
// in wide cycles (0 on a hit, the build penalty on a miss).
func (t *TraceCache) Fetch(pc uint32) int {
	if t.cache.Access(pc) {
		return 0
	}
	return t.buildPenalty
}

// FetchUop is the per-uop frontend path: it consults the cache only when
// pc leaves the current trace line, returning the stall in wide cycles.
func (t *TraceCache) FetchUop(pc uint32) int {
	line := pc / uint32(t.lineUops*4)
	if t.haveLine && line == t.lastLine {
		return 0
	}
	t.lastLine = line
	t.haveLine = true
	return t.Fetch(pc)
}

// Redirect invalidates the current-line tracking after a pipeline flush so
// the next fetch re-checks the cache.
func (t *TraceCache) Redirect() { t.haveLine = false }

// Stats returns hit/miss counters.
func (t *TraceCache) Stats() Stats { return t.cache.Stats() }

// ResetStats zeroes the counters without disturbing contents.
func (t *TraceCache) ResetStats() { t.cache.ResetStats() }
