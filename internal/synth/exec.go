package synth

import (
	"math/rand"

	"repro/internal/isa"
)

// maxLoopIters is a defensive bound on consecutive taken iterations of a
// single backward branch. Generated loops always terminate (counters and
// trip registers are reserved and cannot be clobbered), but the guard keeps
// any future generator bug from hanging a simulation.
const maxLoopIters = 1 << 20

// Stream is an infinite, deterministic uop stream: the functional execution
// of one synthetic program. It implements the trace source consumed by the
// timing simulator and the trace analyses.
type Stream struct {
	params Params
	prog   *program
	rng    *rand.Rand
	mem    *memory

	regs [isa.NumRegs]uint32
	fp   [8]uint32

	idx        int
	seq        uint64
	takenRun   []uint32 // consecutive taken count per static backward branch
	staticUops int
}

// NewStream validates p, generates the program and prepares the executor.
func NewStream(p Params) (*Stream, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	prog := buildProgram(p)
	s := &Stream{
		params:   p,
		prog:     prog,
		rng:      rand.New(rand.NewSource(p.Seed)),
		takenRun: make([]uint32, len(prog.uops)),
	}
	s.mem = newMemory(prog, uint32(p.Seed)|1)
	for i := 0; i < numRegions; i++ {
		s.regs[regBase0+i] = s.mem.bases[i]
	}
	for _, r := range narrowPool {
		s.regs[r] = uint32(r) // small initial data values
	}
	for _, r := range widePool {
		s.regs[r] = 0x00010000 + uint32(r)
	}
	for i := range s.fp {
		s.fp[i] = 0x3F800000 + uint32(i)
	}
	s.staticUops = len(prog.uops)
	return s, nil
}

// MustNewStream is NewStream for known-good parameters (tests, examples).
func MustNewStream(p Params) *Stream {
	s, err := NewStream(p)
	if err != nil {
		panic(err)
	}
	return s
}

// StaticUops returns the static program size in uops — the code footprint
// seen by the trace cache and the width predictor (aliasing pressure).
func (s *Stream) StaticUops() int { return s.staticUops }

// Params returns the generation parameters.
func (s *Stream) Params() Params { return s.params }

// drawConst materializes a roleConst value honouring the width persona and
// the width-locality parameter: with probability 1-WidthLocality the
// instance flips persona, which is precisely what creates width predictor
// mispredictions downstream.
func (s *Stream) drawConst(su *staticUop) uint32 {
	narrow := su.narrowPersona
	if s.rng.Float64() >= s.params.WidthLocality {
		narrow = !narrow
	}
	if narrow {
		v := uint32(s.rng.Intn(128))
		if s.rng.Intn(8) == 0 { // occasional small negative, sign-extended
			v = uint32(-int32(1 + s.rng.Intn(64)))
		}
		return v
	}
	return 0x00010000 | uint32(s.rng.Intn(1<<16))
}

func (s *Stream) drawTrip() uint32 {
	t := 1 + s.rng.Intn(2*s.params.InnerTrip)
	return uint32(t)
}

// Next fills u with the next executed uop. The stream is infinite; Next
// always succeeds. The caller owns u between calls.
func (s *Stream) Next(u *isa.Uop) {
	su := &s.prog.uops[s.idx]

	*u = isa.Uop{
		Seq:          s.seq,
		PC:           su.pc,
		Class:        su.class,
		Op:           su.op,
		NSrc:         su.nsrc,
		SrcReg:       su.srcReg,
		DstReg:       su.dstReg,
		HasImm:       su.hasImm,
		Imm:          su.imm,
		ImplicitWide: su.implicitWide,
	}
	s.seq++
	next := s.idx + 1

	switch su.class {
	case isa.ClassALU:
		s.execALU(su, u)
	case isa.ClassMul, isa.ClassDiv:
		a, b := s.regs[su.srcReg[0]], s.regs[su.srcReg[1]]
		u.SrcVal[0], u.SrcVal[1] = a, b
		var v uint32
		if su.class == isa.ClassMul {
			v = a * b
		} else if b != 0 {
			v = a / b
		}
		u.DstVal = v
		s.regs[su.dstReg] = v
	case isa.ClassFP:
		a, b := s.fp[su.srcReg[0]], s.fp[su.srcReg[1]]
		u.SrcVal[0], u.SrcVal[1] = a, b
		v := 0x3F000000 | (hash32(a^b^uint32(s.seq)) & 0xFFFF)
		u.DstVal = v
		s.fp[su.dstReg] = v
	case isa.ClassLoad:
		base, off := s.regs[su.srcReg[0]], s.regs[su.srcReg[1]]
		u.SrcVal[0], u.SrcVal[1] = base, off
		addr := base + off
		u.MemAddr = addr
		u.MemSize = su.memSize
		v := s.mem.load(addr, su.region, su.memSize)
		u.DstVal = v
		s.regs[su.dstReg] = v
	case isa.ClassStore:
		base, off, data := s.regs[su.srcReg[0]], s.regs[su.srcReg[1]], s.regs[su.srcReg[2]]
		u.SrcVal[0], u.SrcVal[1], u.SrcVal[2] = base, off, data
		addr := base + off
		u.MemAddr = addr
		u.MemSize = su.memSize
		s.mem.store(addr, data, su.memSize)
	case isa.ClassBranch:
		flags := s.regs[isa.RegFlags]
		u.SrcVal[0] = flags
		u.ReadsFlags = true
		u.FrontendResolvable = su.frontendRes
		taken := evalCond(su.cond, flags)
		if su.isBackward {
			if taken {
				s.takenRun[s.idx]++
				if s.takenRun[s.idx] >= maxLoopIters {
					taken = false
				}
			}
			if !taken {
				s.takenRun[s.idx] = 0
			}
		}
		u.Taken = taken
		u.Target = pcOf(su.takenTarget)
		if taken {
			next = su.takenTarget
		}
	case isa.ClassJump:
		u.Taken = true
		u.Target = pcOf(su.takenTarget)
		u.FrontendResolvable = su.frontendRes
		next = su.takenTarget
	}

	s.idx = next
}

func (s *Stream) execALU(su *staticUop, u *isa.Uop) {
	var v uint32
	switch su.role {
	case roleConst:
		v = s.drawConst(su)
		u.Imm = v
	case roleTripInit:
		v = s.drawTrip()
		u.Imm = v
	case roleCtrInit:
		v = 0
	case roleStride:
		old := s.regs[su.srcReg[0]]
		u.SrcVal[0] = old
		// add-and-wrap fused: progresses through the region working set.
		v = (old + su.imm) & s.prog.wrapMask(su.region)
	default:
		a := s.regs[su.srcReg[0]]
		u.SrcVal[0] = a
		b := uint32(0)
		switch {
		case su.nsrc >= 2:
			b = s.regs[su.srcReg[1]]
			u.SrcVal[1] = b
		case su.hasImm:
			b = su.imm
		}
		v = isa.Eval(su.op, a, b)
	}
	u.DstVal = v
	if su.dstReg != isa.RegNone && su.op.WritesDest() {
		s.regs[su.dstReg] = v
	}
	if writesFlags(su.class, su.op) {
		u.WritesFlags = true
		s.regs[isa.RegFlags] = v
	}
}

func evalCond(c cond, flags uint32) bool {
	switch c {
	case condNotZero:
		return flags != 0
	case condZero:
		return flags == 0
	default: // condSign
		return flags&0x80000000 != 0
	}
}

// wrapMask returns the offset mask for a region's working set.
func (p *program) wrapMask(region int) uint32 {
	return (1 << p.regionShift[region]) - 1
}
