// Package synth generates synthetic IA-32-like uop traces by building a
// small random program (basic blocks, loop nests, diamonds) and executing
// it functionally with real 32-bit values.
//
// This is the substitution for the paper's proprietary Intel traces: every
// property the steering policies observe — value widths, carry behaviour,
// flags dependencies, producer-consumer distance, PC locality, memory
// footprint — is produced by genuine execution of a program whose
// statistical shape is set by Params, not by sampling labels from a
// distribution. Loop counters really count, compares really subtract, and
// address arithmetic really adds a narrow offset to a wide base, so the
// width predictors and carry checks downstream are exercised honestly.
package synth

import "fmt"

// Params describes the statistical shape of a synthetic program. The
// workload package provides calibrated instances per benchmark.
type Params struct {
	// Seed drives all generation and execution randomness. Streams are
	// fully deterministic given (Params, Seed).
	Seed int64

	// Program shape.
	Segments  int // top-level program segments (loops, straights, diamonds)
	BlockSize int // mean uops per basic block

	// Instruction mix. Fractions of non-control uops; the remainder is
	// plain ALU work. Loop overhead (counter increments, compares,
	// bottom branches) is added by the structure itself.
	FracLoad  float64
	FracStore float64
	FracMul   float64
	FracDiv   float64
	FracFP    float64

	// Control shape.
	LoopFrac    float64 // fraction of segments that are inner loops
	DiamondFrac float64 // fraction of segments that are if-diamonds
	InnerTrip   int     // mean inner-loop trip count

	// Data-width behaviour.
	NarrowDataFrac float64 // fraction of constant/load value sources that are narrow
	WidthLocality  float64 // per-instance probability a value source keeps its width persona

	// Memory behaviour.
	WorkingSet       int     // total bytes across the four regions (rounded to powers of two)
	ByteDataFrac     float64 // fraction of memory uops touching the byte-array region
	NarrowOffsetFrac float64 // fraction of address offsets taken from narrow registers
	StrideBytes      int     // stride for the strided offset registers

	// AddrUseFrac is the probability that a narrow data register is used
	// as an address offset (a wide consumer). This is the copy-pressure
	// knob: high values model bzip2-like behaviour where narrow values
	// feed wide addressing, generating inter-cluster copies (§3.2).
	AddrUseFrac float64

	// DepRecency in (0,1]: geometric parameter for choosing how far back
	// the producer of an ALU source lies; higher means tighter dataflow
	// and shorter producer-consumer distance (Figure 13).
	DepRecency float64
}

// DefaultParams returns a neutral mid-range parameter set.
func DefaultParams() Params {
	return Params{
		Seed:             1,
		Segments:         12,
		BlockSize:        10,
		FracLoad:         0.22,
		FracStore:        0.10,
		FracMul:          0.01,
		FracDiv:          0.002,
		FracFP:           0.0,
		LoopFrac:         0.55,
		DiamondFrac:      0.25,
		InnerTrip:        24,
		NarrowDataFrac:   0.65,
		WidthLocality:    0.95,
		WorkingSet:       64 << 10,
		ByteDataFrac:     0.4,
		NarrowOffsetFrac: 0.5,
		StrideBytes:      16,
		AddrUseFrac:      0.2,
		DepRecency:       0.45,
	}
}

// Validate reports the first structural problem with the parameters.
func (p Params) Validate() error {
	switch {
	case p.Segments < 1:
		return fmt.Errorf("synth: Segments must be >= 1, got %d", p.Segments)
	case p.BlockSize < 2:
		return fmt.Errorf("synth: BlockSize must be >= 2, got %d", p.BlockSize)
	case p.InnerTrip < 1:
		return fmt.Errorf("synth: InnerTrip must be >= 1, got %d", p.InnerTrip)
	case p.WorkingSet < 1024:
		return fmt.Errorf("synth: WorkingSet must be >= 1KiB, got %d", p.WorkingSet)
	case p.StrideBytes < 1:
		return fmt.Errorf("synth: StrideBytes must be >= 1, got %d", p.StrideBytes)
	case p.DepRecency <= 0 || p.DepRecency > 1:
		return fmt.Errorf("synth: DepRecency must be in (0,1], got %g", p.DepRecency)
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"FracLoad", p.FracLoad}, {"FracStore", p.FracStore},
		{"FracMul", p.FracMul}, {"FracDiv", p.FracDiv}, {"FracFP", p.FracFP},
		{"LoopFrac", p.LoopFrac}, {"DiamondFrac", p.DiamondFrac},
		{"NarrowDataFrac", p.NarrowDataFrac}, {"WidthLocality", p.WidthLocality},
		{"ByteDataFrac", p.ByteDataFrac}, {"NarrowOffsetFrac", p.NarrowOffsetFrac},
		{"AddrUseFrac", p.AddrUseFrac},
	} {
		if f.v < 0 || f.v > 1 {
			return fmt.Errorf("synth: %s must be in [0,1], got %g", f.name, f.v)
		}
	}
	if s := p.FracLoad + p.FracStore + p.FracMul + p.FracDiv + p.FracFP; s > 0.9 {
		return fmt.Errorf("synth: instruction mix fractions sum to %g, leaving no ALU work", s)
	}
	if s := p.LoopFrac + p.DiamondFrac; s > 1 {
		return fmt.Errorf("synth: LoopFrac+DiamondFrac = %g > 1", s)
	}
	return nil
}
