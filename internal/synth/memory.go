package synth

// Synthetic data memory. Loads return deterministic values derived from the
// address and the region's data personality (byte arrays are narrow, word
// arrays mixed, pointer arrays wide); stores are remembered in a bounded
// overlay so subsequent loads of the same address observe them, which keeps
// the value stream self-consistent without materializing gigabytes.

// overlayCap bounds the store overlay. When full it is generationally
// cleared — a deterministic, documented approximation: very old stores fade
// back to the synthetic background values.
const overlayCap = 1 << 16

// regionBases places the four data regions far apart in the address space.
// The low byte of each base is randomized at stream construction so address
// arithmetic exercises real carry propagation (Figure 10's example has a
// base of FFFC4A02, not a page-aligned value).
var regionBases = [numRegions]uint32{0x10000000, 0x40000000, 0x80000000, 0xBFFF0000}

// hash32 is a fast deterministic 32-bit mixer (murmur3 finalizer).
func hash32(x uint32) uint32 {
	x ^= x >> 16
	x *= 0x7feb352d
	x ^= x >> 15
	x *= 0x846ca68b
	x ^= x >> 16
	return x
}

type memory struct {
	overlay    map[uint32]uint32
	bases      [numRegions]uint32
	mask       [numRegions]uint32 // working-set mask per region
	narrowMill uint32             // NarrowDataFrac scaled to parts-per-1024
}

func newMemory(prog *program, lowByteSeed uint32) *memory {
	m := &memory{
		overlay:    make(map[uint32]uint32),
		narrowMill: uint32(prog.params.NarrowDataFrac * 1024),
	}
	for i := range m.bases {
		m.bases[i] = regionBases[i] | (hash32(lowByteSeed+uint32(i)) & 0xFF)
		m.mask[i] = (1 << prog.regionShift[i]) - 1
	}
	return m
}

func sizeMask(size uint8) uint32 {
	switch size {
	case 1:
		return 0xFF
	case 2:
		return 0xFFFF
	default:
		return 0xFFFFFFFF
	}
}

// load returns the value at addr for a load tagged with the given region
// personality and access size.
func (m *memory) load(addr uint32, region int, size uint8) uint32 {
	if v, ok := m.overlay[addr]; ok {
		return v & sizeMask(size)
	}
	h := hash32(addr)
	var v uint32
	switch region {
	case 0: // byte array: always narrow data
		v = h & 0x7F
	case 2: // pointer array: wide pointers into the region's working set
		v = m.bases[2] + (h & m.mask[2])
	default: // word array / stack: mixed widths per the profile
		if h&1023 < m.narrowMill {
			v = (h >> 10) & 0xFF
		} else {
			v = 0x00010000 | (h & 0x00FFFFFF)
		}
	}
	return v & sizeMask(size)
}

// store records the value; the overlay is cleared generationally when full.
func (m *memory) store(addr, val uint32, size uint8) {
	if len(m.overlay) >= overlayCap {
		clear(m.overlay)
	}
	m.overlay[addr] = val & sizeMask(size)
}
