package synth

import (
	"testing"
	"testing/quick"

	"repro/internal/bitwidth"
	"repro/internal/isa"
)

func TestParamsValidate(t *testing.T) {
	good := DefaultParams()
	if err := good.Validate(); err != nil {
		t.Fatalf("default params invalid: %v", err)
	}
	mutations := []func(*Params){
		func(p *Params) { p.Segments = 0 },
		func(p *Params) { p.BlockSize = 1 },
		func(p *Params) { p.InnerTrip = 0 },
		func(p *Params) { p.WorkingSet = 100 },
		func(p *Params) { p.StrideBytes = 0 },
		func(p *Params) { p.DepRecency = 0 },
		func(p *Params) { p.DepRecency = 1.5 },
		func(p *Params) { p.FracLoad = -0.1 },
		func(p *Params) { p.NarrowDataFrac = 1.2 },
		func(p *Params) { p.FracLoad, p.FracStore = 0.6, 0.5 },
		func(p *Params) { p.LoopFrac, p.DiamondFrac = 0.7, 0.7 },
	}
	for i, mut := range mutations {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d should be invalid", i)
		}
	}
	if _, err := NewStream(Params{}); err == nil {
		t.Error("NewStream must reject zero params")
	}
}

func TestStreamDeterminism(t *testing.T) {
	p := DefaultParams()
	a := MustNewStream(p)
	b := MustNewStream(p)
	var ua, ub isa.Uop
	for i := 0; i < 20000; i++ {
		a.Next(&ua)
		b.Next(&ub)
		if ua != ub {
			t.Fatalf("streams diverge at uop %d:\n%v\n%v", i, &ua, &ub)
		}
	}
}

func TestStreamSeedsDiffer(t *testing.T) {
	p := DefaultParams()
	q := p
	q.Seed = 999
	a, b := MustNewStream(p), MustNewStream(q)
	var ua, ub isa.Uop
	same := 0
	for i := 0; i < 5000; i++ {
		a.Next(&ua)
		b.Next(&ub)
		if ua.PC == ub.PC && ua.DstVal == ub.DstVal {
			same++
		}
	}
	if same > 4500 {
		t.Errorf("different seeds produced near-identical streams (%d/5000)", same)
	}
}

// TestStreamSemanticConsistency: emitted ALU uops (other than the fused
// stride add-and-wrap) satisfy DstVal == Eval(op, sources), and loads/stores
// satisfy MemAddr == base+offset.
func TestStreamSemanticConsistency(t *testing.T) {
	s := MustNewStream(DefaultParams())
	var u isa.Uop
	checkedALU, checkedMem := 0, 0
	for i := 0; i < 50000; i++ {
		s.Next(&u)
		switch u.Class {
		case isa.ClassALU:
			if u.Op == isa.OpMov || u.Op == isa.OpLea {
				continue
			}
			// Stride uops are add-and-wrap fused; identified by DstVal
			// differing from the plain add while still being masked.
			a := u.SrcVal[0]
			b := uint32(0)
			if u.NSrc >= 2 {
				b = u.SrcVal[1]
			} else if u.HasImm {
				b = u.Imm
			}
			want := isa.Eval(u.Op, a, b)
			if u.DstVal != want {
				if u.Op == isa.OpAdd && u.HasImm && u.NSrc == 1 && u.DstVal == (want&(u.DstVal|want)) {
					continue // wrapped stride progression
				}
				// Allow the wrap case: DstVal must then be want masked.
				if u.Op == isa.OpAdd && u.DstVal < want {
					continue
				}
				t.Fatalf("uop %d: DstVal=%#x want Eval=%#x (%v)", i, u.DstVal, want, &u)
			}
			checkedALU++
		case isa.ClassLoad, isa.ClassStore:
			if u.MemAddr != u.SrcVal[0]+u.SrcVal[1] {
				t.Fatalf("uop %d: MemAddr=%#x, base+off=%#x", i, u.MemAddr, u.SrcVal[0]+u.SrcVal[1])
			}
			checkedMem++
		}
	}
	if checkedALU < 1000 || checkedMem < 1000 {
		t.Errorf("insufficient coverage: alu=%d mem=%d", checkedALU, checkedMem)
	}
}

func TestStoreLoadOverlay(t *testing.T) {
	m := newMemory(buildProgram(DefaultParams()), 7)
	addr := uint32(0x10000040)
	m.store(addr, 0xDEADBEEF, 4)
	if got := m.load(addr, 1, 4); got != 0xDEADBEEF {
		t.Errorf("load after store = %#x", got)
	}
	m.store(addr, 0x1FF, 1)
	if got := m.load(addr, 0, 1); got != 0xFF {
		t.Errorf("byte store must truncate: %#x", got)
	}
}

func TestMemoryRegionPersonalities(t *testing.T) {
	m := newMemory(buildProgram(DefaultParams()), 3)
	narrow0, wide2 := 0, 0
	for i := uint32(0); i < 1000; i++ {
		if bitwidth.IsNarrow(m.load(m.bases[0]+i, 0, 1)) {
			narrow0++
		}
		if !bitwidth.IsNarrow(m.load(m.bases[2]+i*4, 2, 4)) {
			wide2++
		}
	}
	if narrow0 != 1000 {
		t.Errorf("byte region must be all narrow, got %d/1000", narrow0)
	}
	if wide2 < 990 {
		t.Errorf("pointer region must be wide, got %d/1000", wide2)
	}
}

func TestOverlayGenerationalClear(t *testing.T) {
	m := newMemory(buildProgram(DefaultParams()), 3)
	for i := uint32(0); i < overlayCap+10; i++ {
		m.store(0x10000000+i*4, i, 4)
	}
	if len(m.overlay) > overlayCap {
		t.Errorf("overlay exceeded cap: %d", len(m.overlay))
	}
}

// TestStreamStatistics: the default profile produces the paper-shaped
// aggregate statistics the calibration targets.
func TestStreamStatistics(t *testing.T) {
	s := MustNewStream(DefaultParams())
	var u isa.Uop
	const n = 200000

	var (
		total, branches, loads, stores int
		narrowResults, resultsWithDest int
		branchTaken                    int
	)
	for i := 0; i < n; i++ {
		s.Next(&u)
		total++
		switch u.Class {
		case isa.ClassBranch:
			branches++
			if u.Taken {
				branchTaken++
			}
		case isa.ClassLoad:
			loads++
		case isa.ClassStore:
			stores++
		}
		if u.HasDest() || u.WritesFlags {
			resultsWithDest++
			if bitwidth.IsNarrow(u.DstVal) {
				narrowResults++
			}
		}
	}
	if branches == 0 || loads == 0 || stores == 0 {
		t.Fatal("stream missing instruction classes")
	}
	loadFrac := float64(loads) / float64(total)
	if loadFrac < 0.08 || loadFrac > 0.40 {
		t.Errorf("load fraction = %.3f, outside sanity band", loadFrac)
	}
	narrowFrac := float64(narrowResults) / float64(resultsWithDest)
	if narrowFrac < 0.35 || narrowFrac > 0.95 {
		t.Errorf("narrow result fraction = %.3f, outside calibration band", narrowFrac)
	}
	takenFrac := float64(branchTaken) / float64(branches)
	if takenFrac < 0.3 || takenFrac > 0.99 {
		t.Errorf("taken fraction = %.3f implausible", takenFrac)
	}
}

// TestLoopsTerminate: backward branches eventually fall through — the
// stream keeps making forward progress through the whole program.
func TestLoopsTerminate(t *testing.T) {
	p := DefaultParams()
	p.LoopFrac = 1.0
	p.DiamondFrac = 0.0
	s := MustNewStream(p)
	var u isa.Uop
	seen := make(map[uint32]bool)
	for i := 0; i < 300000; i++ {
		s.Next(&u)
		seen[u.PC] = true
	}
	// All static uops should be visited (loops can't capture execution).
	if got := len(seen); got < s.StaticUops()*9/10 {
		t.Errorf("visited only %d of %d static uops", got, s.StaticUops())
	}
}

// TestStaticUopsBounded: program size scales with Segments and stays
// within the width predictor's useful range for default profiles.
func TestStaticUopsBounded(t *testing.T) {
	small, large := DefaultParams(), DefaultParams()
	small.Segments = 4
	large.Segments = 80
	ss, sl := MustNewStream(small), MustNewStream(large)
	if ss.StaticUops() >= sl.StaticUops() {
		t.Errorf("program size must grow with segments: %d vs %d", ss.StaticUops(), sl.StaticUops())
	}
}

// TestBranchFlagsDependency: every conditional branch reads the flags
// register and carries the flags value it tested.
func TestBranchFlagsDependency(t *testing.T) {
	s := MustNewStream(DefaultParams())
	var u isa.Uop
	var lastFlags uint32
	sawFlags := false
	for i := 0; i < 50000; i++ {
		s.Next(&u)
		if u.WritesFlags {
			lastFlags = u.DstVal
			sawFlags = true
		}
		if u.Class == isa.ClassBranch {
			if !u.ReadsFlags || u.SrcReg[0] != isa.RegFlags {
				t.Fatal("branch must read the flags register")
			}
			if sawFlags && u.SrcVal[0] != lastFlags {
				t.Fatalf("branch flags value %#x != last producer %#x", u.SrcVal[0], lastFlags)
			}
		}
	}
}

// TestHash32Distribution sanity: quick property that hash32 is not
// constant and spreads low bits.
func TestHash32(t *testing.T) {
	f := func(x uint32) bool { return hash32(x) != hash32(x+1) || x == x+1 }
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}
