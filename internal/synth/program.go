package synth

import (
	"math/rand"

	"repro/internal/isa"
)

// Register allocation convention of generated programs:
//
//	r0..r3   region base pointers (wide, fixed at stream start)
//	r4..r5   strided offset registers (wrap within the region working set)
//	r6..r9   data pool (ALU results, load destinations)
//	r10..r11 loop trip registers
//	r12..r14 loop counters
//	r15      scratch
const (
	regBase0   = 0
	regStride0 = 4
	regStride1 = 5
	regTrip0   = 10
	regTrip1   = 11
	regCtr0    = 12
	regCtr2    = 14
)

// Data-pool registers are split by width personality: real programs keep
// narrow byte/index data and wide pointer/word data in largely disjoint
// register cliques, so dependence chains are width-homogeneous. This is
// what lets the 8_8_8 scheme keep whole chains inside the helper cluster
// instead of paying a copy on every other edge.
var (
	narrowPool = []uint8{6, 7, 8}
	widePool   = []uint8{9, 15}
)

// numRegions is the number of synthetic memory regions (byte array, word
// array, pointer array, stack-like).
const numRegions = 4

// codeBase is the PC of the first generated uop.
const codeBase = 0x1000

// role tags a static uop with the special value behaviour the executor
// must apply when an instance executes.
type role uint8

const (
	roleNone     role = iota
	roleConst         // mov immediate with a width persona
	roleTripInit      // mov rTrip, <drawn trip count>
	roleCtrInit       // mov rCtr, 0
	roleStride        // add rStride, stride ; result wrapped to the working set
)

// cond selects the branch condition evaluated over the flags value.
type cond uint8

const (
	condNotZero cond = iota // taken while the compared values differ (loop bottom)
	condZero
	condSign // taken when the flags value has the sign bit set
)

// staticUop is one instruction of the generated program.
type staticUop struct {
	pc    uint32
	class isa.Class
	op    isa.ALUOp

	nsrc   uint8
	srcReg [isa.MaxSrcs]uint8
	dstReg uint8

	hasImm bool
	imm    uint32 // base immediate; roleConst/roleTripInit draw per instance

	role          role
	narrowPersona bool // for roleConst: narrow vs wide width persona

	region  int // memory region index for loads/stores
	memSize uint8

	cond        cond
	takenTarget int  // static index of the taken successor
	isBackward  bool // loop-bottom backward branch
	frontendRes bool // EIP+immediate branch resolvable in the frontend (§3.3)

	// implicitWide marks uops with an implicit wide context operand in
	// the IA-32 internal machine state (§3.2); they cannot satisfy the
	// all-narrow 8_8_8 condition.
	implicitWide bool
}

// program is a generated synthetic program: a CFG flattened into a static
// uop sequence where branches carry explicit taken targets and the final
// jump wraps back to index 0.
type program struct {
	params Params
	uops   []staticUop
	// regionShift[i] is log2 of region i's working-set size in bytes.
	regionShift [numRegions]uint
}

// pcOf returns the PC of static index i.
func pcOf(i int) uint32 { return codeBase + uint32(i)*4 }

// buildProgram generates the static program for p using its own
// deterministic generation stream (separate from the execution stream so
// program shape does not perturb value draws).
func buildProgram(p Params) *program {
	rng := rand.New(rand.NewSource(p.Seed ^ 0x5E3779B97F4A7C15))
	prog := &program{params: p}

	// Split the working set across regions; the byte-array region gets a
	// quarter, rounded to powers of two (cheap masking, realistic enough).
	per := p.WorkingSet / numRegions
	shift := uint(10)
	for (1 << (shift + 1)) <= per {
		shift++
	}
	for i := range prog.regionShift {
		prog.regionShift[i] = shift
	}

	b := &builder{p: p, rng: rng, prog: prog, curCtr: isa.RegNone}
	for s := 0; s < p.Segments; s++ {
		r := rng.Float64()
		switch {
		case r < p.LoopFrac:
			b.emitLoop(s)
		case r < p.LoopFrac+p.DiamondFrac:
			b.emitDiamond()
		default:
			b.emitBlock(b.blockLen())
		}
	}
	// Outer wrap: an unconditional direct jump back to the top.
	b.append(staticUop{
		class:       isa.ClassJump,
		takenTarget: 0,
		frontendRes: true,
		dstReg:      isa.RegNone,
	})
	for i := range prog.uops {
		prog.uops[i].pc = pcOf(i)
	}
	return prog
}

// builder carries generation state.
type builder struct {
	p    Params
	rng  *rand.Rand
	prog *program

	// recentNarrow/recentWide remember recently written data registers
	// per width class so ALU sources wire to recent same-width
	// producers, controlling both the producer-consumer distance
	// distribution (Figure 13) and chain width homogeneity.
	recentNarrow []uint8
	recentWide   []uint8
	loopDepth    int
	// curCtr is the counter register of the innermost enclosing loop, or
	// isa.RegNone outside of loops. Memory offsets reference it so the
	// classic "narrow index into an array" pattern is real dataflow.
	curCtr uint8
	// blockImplicitWide marks the current block's ALU uops as carrying
	// implicit wide context operands.
	blockImplicitWide bool
}

func (b *builder) append(u staticUop) int {
	b.prog.uops = append(b.prog.uops, u)
	return len(b.prog.uops) - 1
}

func (b *builder) blockLen() int {
	n := b.p.BlockSize/2 + b.rng.Intn(b.p.BlockSize)
	if n < 2 {
		n = 2
	}
	return n
}

// pool returns the register pool of a width class.
func pool(narrow bool) []uint8 {
	if narrow {
		return narrowPool
	}
	return widePool
}

func (b *builder) recent(narrow bool) *[]uint8 {
	if narrow {
		return &b.recentNarrow
	}
	return &b.recentWide
}

// pickDataReg returns a data register of the given width class, preferring
// recently written ones with probability DepRecency per step back.
// A small cross-pool fraction keeps the dataflow realistically impure.
func (b *builder) pickDataReg(narrow bool) uint8 {
	if b.rng.Float64() < 0.12 {
		narrow = !narrow
	}
	if rec := *b.recent(narrow); len(rec) > 0 {
		idx := len(rec) - 1
		for idx > 0 && b.rng.Float64() > b.p.DepRecency {
			idx--
		}
		return rec[idx]
	}
	pl := pool(narrow)
	return pl[b.rng.Intn(len(pl))]
}

func (b *builder) freshDataReg(narrow bool) uint8 {
	pl := pool(narrow)
	r := pl[b.rng.Intn(len(pl))]
	rec := b.recent(narrow)
	*rec = append(*rec, r)
	if len(*rec) > 6 {
		*rec = (*rec)[1:]
	}
	return r
}

// pickOffsetReg chooses the address-offset register for a memory uop. The
// AddrUseFrac knob lets narrow data registers feed wide address math,
// which is what generates narrow-to-wide copies under helper steering.
func (b *builder) pickOffsetReg(counterOK bool) uint8 {
	r := b.rng.Float64()
	switch {
	case r < b.p.NarrowOffsetFrac && counterOK && b.curCtr != isa.RegNone:
		return b.curCtr
	case r < b.p.NarrowOffsetFrac+b.p.AddrUseFrac:
		return b.pickDataReg(true) // narrow data used as an index
	default:
		if b.rng.Intn(2) == 0 {
			return regStride0
		}
		return regStride1
	}
}

func (b *builder) pickRegion() int {
	r := b.rng.Float64()
	switch {
	case r < b.p.ByteDataFrac:
		return 0 // byte-array region: narrow data
	case r < b.p.ByteDataFrac+0.08:
		return 2 // pointer array: wide data
	default:
		if b.rng.Intn(2) == 0 {
			return 1
		}
		return 3
	}
}

// emitBlock emits n non-control uops according to the instruction mix.
// The mix is stratified per block (counts with probabilistic rounding,
// shuffled order) so even small programs with hot inner loops match the
// declared fractions — independent draws leave the dynamic mix at the
// mercy of which block the hot loop landed on.
//
// Implicit wide context (segment/stack state, §3.2) is a property of code
// regions, not of isolated instructions, so it is drawn per block: this
// keeps dependence chains steering-homogeneous, as real code is.
func (b *builder) emitBlock(n int) {
	p := b.p
	b.blockImplicitWide = b.rng.Float64() < 0.35

	count := func(frac float64) int {
		exact := float64(n) * frac
		c := int(exact)
		if b.rng.Float64() < exact-float64(c) {
			c++
		}
		return c
	}
	type emitter func()
	var plan []emitter
	addN := func(k int, f emitter) {
		for i := 0; i < k && len(plan) < n; i++ {
			plan = append(plan, f)
		}
	}
	addN(count(p.FracLoad), b.emitLoad)
	addN(count(p.FracStore), b.emitStore)
	addN(count(p.FracMul), func() { b.emitMulDiv(isa.ClassMul) })
	addN(count(p.FracDiv), func() { b.emitMulDiv(isa.ClassDiv) })
	addN(count(p.FracFP), b.emitFP)
	for len(plan) < n {
		plan = append(plan, b.emitALU)
	}
	b.rng.Shuffle(len(plan), func(i, j int) { plan[i], plan[j] = plan[j], plan[i] })
	for _, emit := range plan {
		emit()
	}
}

func (b *builder) emitLoad() {
	region := b.pickRegion()
	size := uint8(4)
	narrowDst := region == 0 // byte arrays load narrow data
	if region == 0 {
		size = 1
	}
	if region == 1 || region == 3 {
		narrowDst = b.rng.Float64() < b.p.NarrowDataFrac
	}
	u := staticUop{
		class:   isa.ClassLoad,
		op:      isa.OpLea,
		nsrc:    2,
		dstReg:  b.freshDataReg(narrowDst),
		region:  region,
		memSize: size,
	}
	u.srcReg[0] = uint8(regBase0 + region)
	u.srcReg[1] = b.pickOffsetReg(true)
	u.srcReg[2] = isa.RegNone
	b.append(u)
}

func (b *builder) emitStore() {
	region := b.pickRegion()
	size := uint8(4)
	if region == 0 {
		size = 1
	}
	u := staticUop{
		class:   isa.ClassStore,
		op:      isa.OpLea,
		nsrc:    3,
		dstReg:  isa.RegNone,
		region:  region,
		memSize: size,
	}
	u.srcReg[0] = uint8(regBase0 + region)
	u.srcReg[1] = b.pickOffsetReg(true)
	u.srcReg[2] = b.pickDataReg(region == 0 || b.rng.Float64() < b.p.NarrowDataFrac)
	b.append(u)
}

func (b *builder) emitMulDiv(class isa.Class) {
	u := staticUop{
		class:  class,
		op:     isa.OpAdd, // operation field unused for mul/div timing
		nsrc:   2,
		dstReg: b.freshDataReg(false),
	}
	u.srcReg[0] = b.pickDataReg(false)
	u.srcReg[1] = b.pickDataReg(false)
	u.srcReg[2] = isa.RegNone
	b.append(u)
}

func (b *builder) emitFP() {
	u := staticUop{
		class:  isa.ClassFP,
		nsrc:   2,
		dstReg: uint8(b.rng.Intn(8)), // FP register namespace
	}
	u.srcReg[0] = uint8(b.rng.Intn(8))
	u.srcReg[1] = uint8(b.rng.Intn(8))
	u.srcReg[2] = isa.RegNone
	b.append(u)
}

func (b *builder) emitALU() {
	r := b.rng.Float64()
	// narrowOp decides the width clique this operation works in: real
	// programs process byte/index data and pointer/word data in largely
	// separate dependence chains.
	narrowOp := b.rng.Float64() < b.p.NarrowDataFrac
	switch {
	case r < 0.18: // constant materialization with a width persona
		u := staticUop{
			class:         isa.ClassALU,
			op:            isa.OpMov,
			nsrc:          0,
			dstReg:        b.freshDataReg(narrowOp),
			hasImm:        true,
			role:          roleConst,
			narrowPersona: narrowOp,
		}
		u.srcReg[0], u.srcReg[1], u.srcReg[2] = isa.RegNone, isa.RegNone, isa.RegNone
		b.append(u)
	case r < 0.24: // stride register progression (wide address math)
		sr := uint8(regStride0)
		if b.rng.Intn(2) == 0 {
			sr = regStride1
		}
		u := staticUop{
			class:  isa.ClassALU,
			op:     isa.OpAdd,
			nsrc:   1,
			dstReg: sr,
			hasImm: true,
			imm:    uint32(b.p.StrideBytes),
			role:   roleStride,
			region: b.rng.Intn(numRegions),
		}
		u.srcReg[0] = sr
		u.srcReg[1], u.srcReg[2] = isa.RegNone, isa.RegNone
		b.append(u)
	default: // two-source or reg+imm ALU operation within a width clique
		ops := []isa.ALUOp{isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl, isa.OpShr, isa.OpInc, isa.OpNot}
		op := ops[b.rng.Intn(len(ops))]
		u := staticUop{
			class:        isa.ClassALU,
			op:           op,
			dstReg:       b.freshDataReg(narrowOp),
			implicitWide: b.blockImplicitWide,
		}
		u.srcReg[0] = b.pickDataReg(narrowOp)
		switch op {
		case isa.OpInc, isa.OpNot:
			u.nsrc = 1
			u.srcReg[1], u.srcReg[2] = isa.RegNone, isa.RegNone
		case isa.OpShl, isa.OpShr:
			u.nsrc = 1
			u.hasImm = true
			u.imm = uint32(1 + b.rng.Intn(7))
			u.srcReg[1], u.srcReg[2] = isa.RegNone, isa.RegNone
		default:
			if b.rng.Float64() < 0.35 {
				u.nsrc = 1
				u.hasImm = true
				u.imm = uint32(b.rng.Intn(64))
				u.srcReg[1], u.srcReg[2] = isa.RegNone, isa.RegNone
			} else {
				u.nsrc = 2
				u.srcReg[1] = b.pickDataReg(narrowOp)
				u.srcReg[2] = isa.RegNone
			}
		}
		b.append(u)
	}
}

// writesFlags reports whether an ALU operation updates the flags register,
// IA-32 style: arithmetic and logic do, data movement does not.
func writesFlags(class isa.Class, op isa.ALUOp) bool {
	if class != isa.ClassALU {
		return false
	}
	switch op {
	case isa.OpMov, isa.OpLea:
		return false
	default:
		return true
	}
}

// emitLoop generates: preheader [mov trip ; mov ctr,0], body block(s),
// bottom [inc ctr ; cmp ctr,trip ; br.nz → body head].
func (b *builder) emitLoop(segIdx int) {
	depth := b.loopDepth % 3
	trip := uint8(regTrip0 + depth%2)
	ctr := uint8(regCtr0 + depth)

	// Preheader.
	pre := staticUop{class: isa.ClassALU, op: isa.OpMov, dstReg: trip, hasImm: true, role: roleTripInit}
	pre.srcReg[0], pre.srcReg[1], pre.srcReg[2] = isa.RegNone, isa.RegNone, isa.RegNone
	b.append(pre)
	init := staticUop{class: isa.ClassALU, op: isa.OpMov, dstReg: ctr, hasImm: true, imm: 0, role: roleCtrInit}
	init.srcReg[0], init.srcReg[1], init.srcReg[2] = isa.RegNone, isa.RegNone, isa.RegNone
	b.append(init)

	head := len(b.prog.uops)
	b.loopDepth++
	prevCtr := b.curCtr
	b.curCtr = ctr
	nblocks := 1 + b.rng.Intn(2)
	for i := 0; i < nblocks; i++ {
		// One level of real loop nesting: outer iterations re-enter the
		// inner loop with a fresh counter, as array-of-array walks do.
		if b.loopDepth == 1 && b.rng.Float64() < 0.25 {
			b.emitLoop(segIdx)
		} else {
			b.emitBlock(b.blockLen())
		}
	}
	b.curCtr = prevCtr
	b.loopDepth--

	// Bottom: inc / cmp / backward branch while ctr != trip.
	inc := staticUop{class: isa.ClassALU, op: isa.OpInc, nsrc: 1, dstReg: ctr}
	inc.srcReg[0] = ctr
	inc.srcReg[1], inc.srcReg[2] = isa.RegNone, isa.RegNone
	b.append(inc)
	cmp := staticUop{class: isa.ClassALU, op: isa.OpCmp, nsrc: 2, dstReg: isa.RegNone}
	cmp.srcReg[0] = ctr
	cmp.srcReg[1] = trip
	cmp.srcReg[2] = isa.RegNone
	b.append(cmp)
	br := staticUop{
		class:       isa.ClassBranch,
		nsrc:        1,
		dstReg:      isa.RegNone,
		cond:        condNotZero,
		takenTarget: head,
		isBackward:  true,
		frontendRes: true,
	}
	br.srcReg[0] = isa.RegFlags
	br.srcReg[1], br.srcReg[2] = isa.RegNone, isa.RegNone
	b.append(br)
	_ = segIdx
}

// emitDiamond generates: cond block ending in [test r,r ; br → join],
// then-a block, join.
func (b *builder) emitDiamond() {
	b.emitBlock(b.blockLen() / 2)
	tested := b.pickDataReg(b.rng.Float64() < b.p.NarrowDataFrac)
	test := staticUop{class: isa.ClassALU, op: isa.OpTest, nsrc: 2, dstReg: isa.RegNone}
	test.srcReg[0] = tested
	test.srcReg[1] = tested
	test.srcReg[2] = isa.RegNone
	b.append(test)

	brIdx := b.append(staticUop{
		class:       isa.ClassBranch,
		nsrc:        1,
		dstReg:      isa.RegNone,
		cond:        condZero,
		frontendRes: true,
	})
	b.prog.uops[brIdx].srcReg[0] = isa.RegFlags
	b.prog.uops[brIdx].srcReg[1] = isa.RegNone
	b.prog.uops[brIdx].srcReg[2] = isa.RegNone

	b.emitBlock(b.blockLen() / 2) // skipped when the branch is taken
	b.prog.uops[brIdx].takenTarget = len(b.prog.uops)
}
