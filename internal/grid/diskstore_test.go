package grid

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// reopen closes a store and opens a fresh one on the same directory —
// the restart primitive of these tests. Callers that want the
// crash-equivalent skip the Close (there is no flush to miss: every Put
// is durable the moment it returns).
func reopen(t *testing.T, d *DiskStore, opts ...DiskOption) *DiskStore {
	t.Helper()
	d.Close()
	nd, err := OpenDiskStore(d.dir, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nd.Close() })
	return nd
}

func openDisk(t *testing.T, opts ...DiskOption) *DiskStore {
	t.Helper()
	d, err := OpenDiskStore(t.TempDir(), opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// openRemote backs a RemoteStore with a fresh grid server (the peer
// whose store the remote client reads and banks into).
func openRemote(t *testing.T) *RemoteStore {
	t.Helper()
	srv := NewServer()
	t.Cleanup(srv.Close)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return NewRemoteStore(hs.URL)
}

// TestStorageContract pins the Storage semantics every implementation
// shares: first write wins, empty-hash no-op, one hit or miss per Get.
func TestStorageContract(t *testing.T) {
	for name, st := range map[string]Storage{
		"memory":  NewStore(),
		"disk":    openDisk(t),
		"remote":  openRemote(t),
		"sharded": NewShardedStore(NewStore(), "http://self:1"), // membership-less: local-only degradation
	} {
		t.Run(name, func(t *testing.T) {
			if _, ok := st.Get("h1"); ok {
				t.Fatal("empty store hit")
			}
			st.Put("h1", []byte("a"))
			st.Put("h1", []byte("b")) // first write wins
			if v, ok := st.Get("h1"); !ok || string(v) != "a" {
				t.Fatalf("got %q/%v, want first write", v, ok)
			}
			st.Put("", []byte("x"))
			entries, hits, misses := st.Stats()
			if entries != 1 || hits != 1 || misses != 1 {
				t.Errorf("stats = %d entries, %d hits, %d misses; want 1/1/1", entries, hits, misses)
			}
		})
	}
}

// TestDiskStoreRestart checks durability: a store reopened on the same
// directory serves the same bytes, without a graceful close in between.
func TestDiskStoreRestart(t *testing.T) {
	d := openDisk(t)
	payloads := map[string][]byte{}
	for i := 0; i < 8; i++ {
		p := []byte(fmt.Sprintf("result-%d", i))
		h := HashBytes(p)
		payloads[h] = p
		d.Put(h, p)
	}
	// Crash-equivalent: no Close before the second open (the old handle
	// only leaks an index fd into the test process, which is harmless).
	nd, err := OpenDiskStore(d.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if entries, _, _ := nd.Stats(); entries != len(payloads) {
		t.Fatalf("recovered %d entries, want %d", entries, len(payloads))
	}
	for h, want := range payloads {
		got, ok := nd.Get(h)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("hash %s: got %q/%v, want %q", h, got, ok, want)
		}
	}
}

// TestDiskStoreCorruptionQuarantine flips bytes in stored entries and
// checks recovery skips and quarantines them without touching the rest.
func TestDiskStoreCorruptionQuarantine(t *testing.T) {
	d := openDisk(t)
	good := []byte("good-result")
	bad := []byte("doomed-result")
	gh, bh := HashBytes(good), HashBytes(bad)
	d.Put(gh, good)
	d.Put(bh, bad)

	// Truncate the doomed entry mid-payload.
	path := filepath.Join(d.objectsDir(), objectName(bh))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-4], 0o644); err != nil {
		t.Fatal(err)
	}

	nd := reopen(t, d)
	if entries, _, _ := nd.Stats(); entries != 1 {
		t.Fatalf("recovered %d entries, want 1 (corrupt one skipped)", entries)
	}
	if _, ok := nd.Get(bh); ok {
		t.Fatal("corrupt entry served")
	}
	if v, ok := nd.Get(gh); !ok || !bytes.Equal(v, good) {
		t.Fatalf("good entry lost: %q/%v", v, ok)
	}
	q, err := os.ReadDir(nd.quarantineDir())
	if err != nil || len(q) != 1 {
		t.Fatalf("quarantine holds %d files (err %v), want 1", len(q), err)
	}
}

// TestDiskStoreGetReverifies corrupts an entry after recovery: the next
// Get must quarantine it and miss instead of serving torn bytes.
func TestDiskStoreGetReverifies(t *testing.T) {
	d := openDisk(t)
	p := []byte("soon-rotten")
	h := HashBytes(p)
	d.Put(h, p)
	path := filepath.Join(d.objectsDir(), objectName(h))
	if err := os.WriteFile(path, []byte("{bitrot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if v, ok := d.Get(h); ok {
		t.Fatalf("served corrupted payload %q", v)
	}
	if entries, _, misses := d.Stats(); entries != 0 || misses != 1 {
		t.Errorf("after rot: %d entries, %d misses; want 0 entries, 1 miss", entries, misses)
	}
}

// TestDiskStoreLRUCap checks the byte cap evicts least-recently-used
// entries and that a Get refreshes recency.
func TestDiskStoreLRUCap(t *testing.T) {
	// Each payload is 10 bytes; cap at 3 entries' worth.
	d := openDisk(t, WithMaxBytes(30))
	mk := func(i int) (string, []byte) {
		p := []byte(fmt.Sprintf("payload-%02d", i)) // 10 bytes
		return HashBytes(p), p
	}
	var hashes []string
	for i := 0; i < 3; i++ {
		h, p := mk(i)
		hashes = append(hashes, h)
		d.Put(h, p)
	}
	// Touch 0 so 1 becomes the LRU, then overflow.
	if _, ok := d.Get(hashes[0]); !ok {
		t.Fatal("entry 0 missing before overflow")
	}
	h3, p3 := mk(3)
	d.Put(h3, p3)

	if _, ok := d.Get(hashes[1]); ok {
		t.Error("LRU entry 1 survived the cap")
	}
	for _, h := range []string{hashes[0], hashes[2], h3} {
		if _, ok := d.Get(h); !ok {
			t.Errorf("entry %s evicted, want kept", h)
		}
	}
	if total, _, evicted := d.DiskStats(); total != 30 || evicted != 1 {
		t.Errorf("disk stats total=%d evicted=%d, want 30/1", total, evicted)
	}
	// The cap holds across a restart too (recovery replays recency from
	// the index, then re-applies the cap).
	nd := reopen(t, d, WithMaxBytes(30))
	if entries, _, _ := nd.Stats(); entries != 3 {
		t.Errorf("recovered %d entries, want 3", entries)
	}
}

// TestDiskStoreTempSweep checks that temp files stranded by a crash
// mid-write are removed on open instead of accumulating forever — and
// that the live index.log is not caught by the sweep.
func TestDiskStoreTempSweep(t *testing.T) {
	d := openDisk(t)
	p := []byte("kept")
	h := HashBytes(p)
	d.Put(h, p)
	for _, name := range []string{"entry-12345", "index-67890"} {
		if err := os.WriteFile(filepath.Join(d.dir, name), []byte("torn"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	nd := reopen(t, d)
	for _, name := range []string{"entry-12345", "index-67890"} {
		if _, err := os.Stat(filepath.Join(nd.dir, name)); !os.IsNotExist(err) {
			t.Errorf("stranded temp file %s survived reopen", name)
		}
	}
	if v, ok := nd.Get(h); !ok || !bytes.Equal(v, p) {
		t.Fatalf("entry lost during temp sweep: %q/%v", v, ok)
	}
	if _, err := os.Stat(nd.indexPath()); err != nil {
		t.Errorf("index.log swept away: %v", err)
	}
}

// TestDiskStoreOrphanAdoption deletes the index entirely: every object
// file must still be recovered (the index is advisory ordering, not
// truth).
func TestDiskStoreOrphanAdoption(t *testing.T) {
	d := openDisk(t)
	p := []byte("index-less")
	h := HashBytes(p)
	d.Put(h, p)
	d.Close()
	if err := os.Remove(d.indexPath()); err != nil {
		t.Fatal(err)
	}
	nd, err := OpenDiskStore(d.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer nd.Close()
	if v, ok := nd.Get(h); !ok || !bytes.Equal(v, p) {
		t.Fatalf("orphan not adopted: %q/%v", v, ok)
	}
}

// TestDiskStoreMisplacedEntry plants a valid-looking entry under the
// wrong object name: recovery must quarantine it rather than serve a
// payload under a hash its file name does not commit to.
func TestDiskStoreMisplacedEntry(t *testing.T) {
	d := openDisk(t)
	p := []byte("legit")
	h := HashBytes(p)
	d.Put(h, p)
	src := filepath.Join(d.objectsDir(), objectName(h))
	if err := os.Rename(src, filepath.Join(d.objectsDir(), "misplaced")); err != nil {
		t.Fatal(err)
	}
	nd := reopen(t, d)
	if entries, _, _ := nd.Stats(); entries != 0 {
		t.Fatalf("misplaced entry adopted (%d entries)", entries)
	}
}

// TestDiskStoreSharedDirCompactor pins the shared-directory discipline
// two federated servers pointing -store-dir at the same path rely on:
// exactly one store wins the compactor flock, and a non-compactor's
// eviction re-stats the object file before unlinking — so it never
// deletes a result its sibling re-wrote after the non-compactor last
// recorded it (the lost-write regression of the single-owner era).
func TestDiskStoreSharedDirCompactor(t *testing.T) {
	dir := t.TempDir()
	a, err := OpenDiskStore(dir, WithMaxBytes(32))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	p1 := []byte("0123456789abcdef") // 16 bytes
	h1 := HashBytes(p1)
	a.Put(h1, p1)

	b, err := OpenDiskStore(dir, WithMaxBytes(32))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if !a.compactor || b.compactor {
		t.Fatalf("compactor election broken: a=%v b=%v, want exactly the first opener", a.compactor, b.compactor)
	}
	if entries, _, _ := b.Stats(); entries != 1 {
		t.Fatalf("second opener recovered %d entries, want 1", entries)
	}

	// a cycles h1 out (its own cap) and re-puts it: the file on disk is
	// now NEWER than b's recorded mtime for h1.
	big := bytes.Repeat([]byte("B"), 30)
	a.Put(HashBytes(big), big) // 16+30 > 32: a evicts h1
	if _, ok := a.Get(h1); ok {
		t.Fatal("h1 survived a's cap")
	}
	time.Sleep(20 * time.Millisecond) // ensure a distinguishable mtime
	a.Put(h1, p1)                     // re-banked; a evicts big instead

	// b overflows too and picks its stale LRU victim: h1. The re-stat
	// must see a's fresh rewrite and refuse the unlink.
	other := bytes.Repeat([]byte("C"), 30)
	b.Put(HashBytes(other), other)
	if _, err := os.Stat(filepath.Join(a.objectsDir(), objectName(h1))); err != nil {
		t.Fatalf("sibling's re-written result deleted from disk: %v", err)
	}
	if v, ok := a.Get(h1); !ok || !bytes.Equal(v, p1) {
		t.Fatalf("a lost its just-banked result to b's eviction: %q/%v", v, ok)
	}
	if _, _, evicted := b.DiskStats(); evicted != 0 {
		t.Errorf("b counted %d evictions for a skipped unlink, want 0", evicted)
	}

	// Releasing the flock hands the compactor role to the next opener.
	a.Close()
	c, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.compactor {
		t.Error("compactor role not released with the flock")
	}
}

// FuzzStoreRecover throws arbitrary bytes at the on-disk layout — the
// index and an object file — and requires recovery to (a) never panic
// or error, (b) never serve a payload that fails checksum verification
// against its own header, and (c) stay writable afterwards, durably.
func FuzzStoreRecover(f *testing.F) {
	goodPayload := []byte(`{"ipc":1.5}`)
	goodHash := HashBytes(goodPayload)
	goodEntry := func() []byte {
		hdr := fmt.Sprintf(`{"hash":%q,"sum":%q,"len":%d}`, goodHash, HashBytes(goodPayload), len(goodPayload))
		return append([]byte(hdr+"\n"), goodPayload...)
	}()
	goodIndex := []byte(fmt.Sprintf(`{"hash":%q,"size":%d}`, goodHash, len(goodPayload)) + "\n")

	f.Add(goodIndex, goodEntry)
	f.Add([]byte{}, []byte{})
	f.Add([]byte("not json at all\n{}\n"), goodEntry[:len(goodEntry)-3]) // truncated payload
	f.Add(goodIndex, []byte("{\"hash\":\"sha256:00\",\"sum\":\"sha256:00\",\"len\":2}\nxx"))
	f.Add(bytes.Repeat([]byte("A"), 4096), bytes.Repeat([]byte{0}, 512))

	f.Fuzz(func(t *testing.T, index, entry []byte) {
		dir := t.TempDir()
		objects := filepath.Join(dir, "objects")
		if err := os.MkdirAll(objects, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "index.log"), index, 0o644); err != nil {
			t.Fatal(err)
		}
		// Plant the fuzzed entry both under the name the good hash maps
		// to (so index lines naming it can bite) and under a random name.
		for _, name := range []string{objectName(goodHash), "stray"} {
			if err := os.WriteFile(filepath.Join(objects, name), entry, 0o644); err != nil {
				t.Fatal(err)
			}
		}

		d, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatalf("recovery failed on hostile bytes: %v", err)
		}
		defer d.Close()

		// Whatever survived must verify: re-read each served payload's
		// file and check it against its own recorded header.
		for _, h := range d.Hashes() {
			v, ok := d.Get(h)
			if !ok {
				continue // re-verification may quarantine; a miss is fine
			}
			hdr, payload, err := readEntryFile(filepath.Join(objects, objectName(h)))
			if err != nil {
				t.Fatalf("served hash %s has unreadable entry: %v", h, err)
			}
			if hdr.Hash != h || !bytes.Equal(payload, v) || HashBytes(v) != hdr.Sum {
				t.Fatalf("served payload fails verification: hash %s", h)
			}
		}

		// The store must remain writable and durable.
		p := []byte("post-recovery")
		h := HashBytes(p)
		d.Put(h, p)
		if v, ok := d.Get(h); !ok || !bytes.Equal(v, p) {
			t.Fatal("post-recovery Put/Get failed")
		}
		d.Close()
		nd, err := OpenDiskStore(dir)
		if err != nil {
			t.Fatalf("second recovery failed: %v", err)
		}
		defer nd.Close()
		if v, ok := nd.Get(h); !ok || !bytes.Equal(v, p) {
			t.Fatal("post-recovery Put not durable")
		}
	})
}
