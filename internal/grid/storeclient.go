package grid

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
	"sync/atomic"
	"time"
)

// Store-tier failure policy knobs. The store is a cache: a slow or dead
// peer must degrade lookups into misses and writes into drops, never
// stall the admission path or a completing worker.
const (
	// storeGetTimeout bounds one remote lookup. Short on purpose: a Get
	// sits on the batch admission path, and a wedged peer stalling every
	// lookup 30s (the old single RemoteStore timeout) froze admission.
	storeGetTimeout = 2 * time.Second
	// storePutTimeout bounds one background write; generous, since puts
	// run off the hot path on the put worker goroutine.
	storePutTimeout = 10 * time.Second
	// storePutQueue bounds the background put backlog per peer; overflow
	// is dropped and counted instead of blocking the completion path.
	storePutQueue = 256
	// storeCooldown is how long a peer is considered down after a
	// transport failure, so a dead replica costs one timeout per
	// cooldown window instead of one per lookup.
	storeCooldown = 3 * time.Second
)

// storeClient speaks one peer's /v1/store endpoints with that policy:
// short synchronous Gets, background bounded-queue Puts whose overflow
// and failures are counted in dropped, a cooldown breaker after any
// transport failure, and optional request signing (see PeerAuthHeader).
// It is the transport shared by RemoteStore (one fixed peer) and
// ShardedStore (one client per live member).
type storeClient struct {
	base   string
	secret string
	getc   *http.Client // bounds Get and Stat
	putc   *http.Client // bounds one background Put

	queue   chan storePut
	pending atomic.Int64 // queued + in-flight puts, for flush
	dropped atomic.Uint64

	started sync.Once
	stopped sync.Once
	done    chan struct{}
	wg      sync.WaitGroup

	mu        sync.Mutex
	downUntil time.Time
}

type storePut struct {
	hash    string
	payload []byte
}

func newStoreClient(addr, secret string) *storeClient {
	return &storeClient{
		base:   BaseURL(addr),
		secret: secret,
		getc:   &http.Client{Timeout: storeGetTimeout},
		putc:   &http.Client{Timeout: storePutTimeout},
		queue:  make(chan storePut, storePutQueue),
		done:   make(chan struct{}),
	}
}

// available reports whether the peer is outside its failure cooldown.
func (c *storeClient) available() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return !time.Now().Before(c.downUntil)
}

func (c *storeClient) markDown() {
	c.mu.Lock()
	c.downUntil = time.Now().Add(storeCooldown)
	c.mu.Unlock()
}

func (c *storeClient) sign(req *http.Request, path string, body []byte) {
	if c.secret != "" {
		req.Header.Set(PeerAuthHeader,
			signPeerAuth(c.secret, req.Method, path, body, time.Now()))
	}
}

// get fetches one payload; any transport or HTTP error is a miss (a
// transport failure additionally opens the cooldown breaker). It first
// waits briefly for this client's own pending puts to drain, so a Get
// racing the background write of the same instance still reads its own
// write — the Storage contract tests and 100%-cached reruns rely on it.
func (c *storeClient) get(hash string) ([]byte, bool) {
	if hash == "" {
		return nil, false
	}
	c.flush(500 * time.Millisecond)
	if !c.available() {
		return nil, false
	}
	path := pathStoreGet + "?hash=" + url.QueryEscape(hash)
	req, err := http.NewRequest(http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, false
	}
	c.sign(req, path, nil)
	resp, err := c.getc.Do(req)
	if err != nil {
		c.markDown()
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxStorePayload))
	if err != nil {
		return nil, false
	}
	return payload, true
}

// putAsync enqueues one background write. A full queue or a closed
// client drops the put and counts it; the caller never blocks.
func (c *storeClient) putAsync(hash string, payload []byte) {
	if hash == "" {
		return
	}
	select {
	case <-c.done:
		c.dropped.Add(1)
		return
	default:
	}
	c.started.Do(func() {
		c.wg.Add(1)
		go c.putLoop()
	})
	c.pending.Add(1)
	select {
	case c.queue <- storePut{hash: hash, payload: payload}:
	default:
		c.pending.Add(-1)
		c.dropped.Add(1)
	}
}

func (c *storeClient) putLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			// Shed whatever is still queued so Close never hangs on a
			// slow peer; the drops are counted like any other.
			for {
				select {
				case <-c.queue:
					c.pending.Add(-1)
					c.dropped.Add(1)
				default:
					return
				}
			}
		case p := <-c.queue:
			if !c.available() || !c.put(p.hash, p.payload) {
				c.dropped.Add(1)
			}
			c.pending.Add(-1)
		}
	}
}

// put performs one synchronous write; false on any failure (transport
// failures open the breaker).
func (c *storeClient) put(hash string, payload []byte) bool {
	path := pathStorePut + "?hash=" + url.QueryEscape(hash)
	req, err := http.NewRequest(http.MethodPost, c.base+path, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	c.sign(req, path, payload)
	resp, err := c.putc.Do(req)
	if err != nil {
		c.markDown()
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode < 400
}

// stat fetches the peer's store statistics.
func (c *storeClient) stat() (storeStat, bool) {
	var st storeStat
	if !c.available() {
		return st, false
	}
	req, err := http.NewRequest(http.MethodGet, c.base+pathStoreStat, nil)
	if err != nil {
		return st, false
	}
	c.sign(req, pathStoreStat, nil)
	resp, err := c.getc.Do(req)
	if err != nil {
		c.markDown()
		return st, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return st, false
	}
	return st, true
}

// flush waits until the put queue is drained (queued and in-flight both
// done) or the timeout elapses; it reports whether the queue drained.
func (c *storeClient) flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for c.pending.Load() > 0 {
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(time.Millisecond)
	}
	return true
}

// droppedPuts reports how many background writes were shed (queue
// overflow, peer down, or write failure).
func (c *storeClient) droppedPuts() uint64 { return c.dropped.Load() }

// close stops the put worker, shedding any still-queued writes.
func (c *storeClient) close() {
	c.stopped.Do(func() { close(c.done) })
	c.wg.Wait()
}
