package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestParseTenantSpec(t *testing.T) {
	got, err := ParseTenantSpec("alice,weight=4,rate=50,burst=100; bob,jobs=500,bytes=33554432 ;carol")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]TenantLimits{
		"alice": {Weight: 4, RatePerSec: 50, Burst: 100},
		"bob":   {MaxPendingJobs: 500, MaxPendingBytes: 32 << 20},
		"carol": {},
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d tenants, want %d: %+v", len(got), len(want), got)
	}
	for id, l := range want {
		if got[id] != l {
			t.Errorf("tenant %s = %+v, want %+v", id, got[id], l)
		}
	}

	for _, bad := range []string{
		"alice,weight=4;alice,rate=2", // duplicate id
		"alice,speed=4",               // unknown key
		"alice,weight=fast",           // unparseable value
		"alice,weight=-1",             // negative value
		"weight=4",                    // missing id
		"alice,weight",                // not key=value
	} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("spec %q parsed without error", bad)
		}
	}
}

func TestTokenBucketAdmit(t *testing.T) {
	now := time.Unix(1000, 0)
	ts := &tenantState{id: "x", limits: TenantLimits{RatePerSec: 10, Burst: 5}}

	// A fresh bucket starts full: burst admits at once.
	if ok, _, _, _, _ := ts.admitLocked(now, 5, 0); !ok {
		t.Fatal("full bucket refused a burst-sized batch")
	}
	// Empty now; the next job must wait ~1/rate.
	ok, kind, _, wait, retryable := ts.admitLocked(now, 1, 0)
	if ok || kind != "rate" || !retryable {
		t.Fatalf("empty bucket admitted: ok=%v kind=%s retryable=%v", ok, kind, retryable)
	}
	if wait < 10*time.Millisecond || wait > 150*time.Millisecond {
		t.Errorf("retry hint %v, want ~100ms", wait)
	}
	// A batch above burst can never be admitted: non-retryable.
	if ok, _, _, _, retryable := ts.admitLocked(now, 6, 0); ok || retryable {
		t.Errorf("over-burst batch: ok=%v retryable=%v, want refused non-retryable", ok, retryable)
	}
	// Refill: one second restores the full burst.
	if ok, _, _, _, _ := ts.admitLocked(now.Add(time.Second), 5, 0); !ok {
		t.Error("bucket did not refill")
	}

	// Pending-quota holds, independent of rate.
	qs := &tenantState{id: "q", limits: TenantLimits{MaxPendingJobs: 4, MaxPendingBytes: 100}}
	qs.pendingJobs, qs.pendingBytes = 3, 90
	ok, kind, _, _, retryable = qs.admitLocked(now, 2, 5)
	if ok || kind != "quota" || !retryable {
		t.Errorf("jobs quota: ok=%v kind=%s retryable=%v, want refused retryable quota", ok, kind, retryable)
	}
	ok, kind, _, _, retryable = qs.admitLocked(now, 1, 20)
	if ok || kind != "quota" || !retryable {
		t.Errorf("bytes quota: ok=%v kind=%s retryable=%v, want refused retryable quota", ok, kind, retryable)
	}
	// A batch bigger than the whole cap is hopeless: non-retryable.
	if ok, _, _, _, retryable := qs.admitLocked(now, 5, 0); ok || retryable {
		t.Errorf("over-cap batch: ok=%v retryable=%v, want refused non-retryable", ok, retryable)
	}
	if ok, _, _, _, _ := qs.admitLocked(now, 1, 10); !ok {
		t.Error("batch within both quotas refused")
	}
}

// postRawBatch submits tasks straight at /v1/batch with an explicit
// tenant header. Refusal bodies are read in full; an admitted batch's
// body is a live result stream, so it is just closed (which disconnects
// the batch and releases its quota holds).
func postRawBatch(t *testing.T, url, tenant string, tasks []Task) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(batchRequest{Jobs: tasks})
	req, err := http.NewRequest(http.MethodPost, url+pathBatch, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set(ClientHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var raw []byte
	if resp.StatusCode != http.StatusOK {
		raw, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	}
	resp.Body.Close()
	return resp, raw
}

// TestAdmissionHTTPStatuses pins the wire contract of each refusal
// class: 429 (retryable rate/quota) with Retry-After and a structured
// JSON body, 413 for a batch no amount of waiting can admit, 503 for
// server-wide overload — and 200 for everyone within limits.
func TestAdmissionHTTPStatuses(t *testing.T) {
	_, ts := testGrid(t,
		WithLeaseTTL(5*time.Second),
		WithTenant("metered", TenantLimits{RatePerSec: 1, Burst: 2}),
	)

	// Within burst: admitted.
	resp, _ := postRawBatch(t, ts.URL, "metered", []Task{mkTask("0", "ok-1")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first batch: %s", resp.Status)
	}
	// Bucket exhausted: 429, retryable, Retry-After present.
	resp, raw := postRawBatch(t, ts.URL, "metered", []Task{mkTask("0", "ok-2"), mkTask("1", "ok-3")})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("exhausted bucket: %s, want 429", resp.Status)
	}
	var ref batchRefusal
	if err := json.Unmarshal(raw, &ref); err != nil {
		t.Fatalf("unparseable refusal %q: %v", raw, err)
	}
	if ref.Reason != "rate" || !ref.Retryable || ref.Tenant != "metered" || ref.RetryAfterMS <= 0 {
		t.Errorf("refusal body: %+v", ref)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	// Above burst outright: 413, not retryable, no Retry-After.
	var big []Task
	for i := 0; i < 3; i++ {
		big = append(big, mkTask(fmt.Sprintf("%d", i), fmt.Sprintf("big-%d", i)))
	}
	resp, raw = postRawBatch(t, ts.URL, "metered", big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("over-burst batch: %s, want 413", resp.Status)
	}
	if json.Unmarshal(raw, &ref) != nil || ref.Retryable {
		t.Errorf("413 body: %+v", ref)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Error("413 carries Retry-After; waiting cannot help")
	}
	// Unmetered tenants are untouched.
	resp, _ = postRawBatch(t, ts.URL, "", []Task{mkTask("0", "anon-ok")})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("anonymous batch: %s", resp.Status)
	}
}

func TestMaxQueueOverload(t *testing.T) {
	_, ts := testGrid(t, WithLeaseTTL(5*time.Second), WithMaxQueue(2))
	var tasks []Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("%d", i), fmt.Sprintf("flood-%d", i)))
	}
	resp, raw := postRawBatch(t, ts.URL, "", tasks)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("oversized flood: %s, want 503", resp.Status)
	}
	var ref batchRefusal
	if err := json.Unmarshal(raw, &ref); err != nil {
		t.Fatal(err)
	}
	if ref.Reason != "overload" || !ref.Retryable || ref.RetryAfterMS <= 0 {
		t.Errorf("overload body: %+v", ref)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After header")
	}
	// Under the bound: admitted, even on the same server.
	resp, _ = postRawBatch(t, ts.URL, "", tasks[:2])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("in-bounds batch: %s", resp.Status)
	}
}

// TestPromMetrics pins the Prometheus text exposition and its content
// negotiation: JSON stays the default (the federation and helperd
// metrics depend on it), ?format=prom / a text/plain Accept / the
// /metrics/prom alias switch to the 0.0.4 text form with per-tenant
// labelled series and the lease-wait histogram.
func TestPromMetrics(t *testing.T) {
	_, ts := testGrid(t, WithLeaseTTL(5*time.Second), WithTenant("alice", TenantLimits{Weight: 2}))
	startWorker(t, ts.URL, echoExec, 2)
	c := &Client{Server: ts.URL, ClientID: "alice"}
	tasks := []Task{mkTask("0", "prom-a"), mkTask("1", "prom-b")}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, ch)

	get := func(path, accept string) (*http.Response, string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+path, nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, string(raw)
	}

	// Default stays JSON.
	resp, body := get(pathMetrics, "")
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Fatalf("bare /metrics is not JSON anymore: %.80s", body)
	}
	var m Metrics
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Tenants) == 0 || m.LeaseWaits == nil || m.LeaseWaits.Count == 0 {
		t.Errorf("JSON metrics missing tenant/lease-wait sections: %.200s", body)
	}

	for _, req := range []struct{ path, accept string }{
		{pathMetrics + "?format=prom", ""},
		{pathMetrics, "text/plain"},
		{pathMetricsProm, ""},
	} {
		resp, body = get(req.path, req.accept)
		if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
			t.Errorf("%s (Accept %q): Content-Type %q", req.path, req.accept, ct)
		}
		for _, want := range []string{
			"# TYPE grid_submitted_total counter",
			"grid_submitted_total 2",
			"grid_completed_total 2",
			`grid_tenant_admitted_total{tenant="alice"} 2`,
			`grid_tenant_completed_total{tenant="alice"} 2`,
			`grid_lease_wait_ms_bucket{le="+Inf"} 2`,
			"grid_lease_wait_ms_count 2",
			"# TYPE grid_queue_depth gauge",
		} {
			if !strings.Contains(body, want) {
				t.Errorf("%s (Accept %q): missing %q\n%s", req.path, req.accept, want, body)
			}
		}
	}

	// A browser-ish Accept that also takes JSON keeps JSON.
	_, body = get(pathMetrics, "text/plain, application/json")
	if !strings.HasPrefix(strings.TrimSpace(body), "{") {
		t.Errorf("json-accepting client got the text form: %.80s", body)
	}
}

// TestClientJitterSeeded pins the retry jitter: seeded, it is
// deterministic (a failing schedule replays), bounded by the window,
// and actually spread (not a constant that would re-synchronize a
// refused fleet).
func TestClientJitterSeeded(t *testing.T) {
	a := &Client{Rand: rand.New(rand.NewSource(42))}
	b := &Client{Rand: rand.New(rand.NewSource(42))}
	window := 100 * time.Millisecond
	seen := map[time.Duration]bool{}
	for i := 0; i < 64; i++ {
		da, db := a.jitter(window), b.jitter(window)
		if da != db {
			t.Fatalf("same seed diverged at draw %d: %v vs %v", i, da, db)
		}
		if da < 0 || da >= window {
			t.Fatalf("draw %d out of [0, window): %v", i, da)
		}
		seen[da] = true
	}
	if len(seen) < 16 {
		t.Errorf("64 draws produced only %d distinct values; jitter is not spreading", len(seen))
	}
	if d := a.jitter(0); d != 0 {
		t.Errorf("jitter(0) = %v, want 0", d)
	}
}
