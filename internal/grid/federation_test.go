package grid

import (
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fedMember is one federated server for tests: its Server, Federation
// and base URL (the listener's address — advertised to peers and dialed
// by loopback batches alike).
type fedMember struct {
	srv *Server
	fed *Federation
	url string
}

// fedListen reserves a port before anything serves on it: the member's
// URL must exist before its Server, store and Federation are built
// (peer URLs and the self URL are mutually recursive), and starting the
// HTTP server only after the Federation exists avoids ever serving a
// half-built member.
func fedListen(t *testing.T) (net.Listener, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return l, "http://" + l.Addr().String()
}

// startFedMember builds the member's Federation around srv and serves
// it on the reserved listener. Cleanup order (LIFO): the HTTP server
// and bare Server close first... registered here so the Federation —
// registered last — closes BEFORE the HTTP server, or Close would wait
// on loopback batch streams the HTTP server is still holding open.
func startFedMember(t *testing.T, srv *Server, l net.Listener, self string, peers []string) *fedMember {
	t.Helper()
	ts := httptest.NewUnstartedServer(nil)
	ts.Listener.Close()
	ts.Listener = l
	fed := NewFederation(srv, self, peers,
		WithAnnounceInterval(100*time.Millisecond),
		WithStealInterval(50*time.Millisecond))
	ts.Config.Handler = fed
	ts.Start()
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	t.Cleanup(fed.Close)
	return &fedMember{srv: srv, fed: fed, url: self}
}

// testFederation spins up n federated members sharing one in-memory
// store exposed by member 0 (members 1..n-1 use RemoteStores pointing
// at it), each seeded with every other member as a peer. Steal and
// announce intervals are short so tests converge fast.
func testFederation(t *testing.T, n int, srvOpts ...ServerOption) []*fedMember {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		listeners[i], urls[i] = fedListen(t)
	}
	members := make([]*fedMember, n)
	for i := range members {
		opts := append([]ServerOption{WithLeaseTTL(200 * time.Millisecond)}, srvOpts...)
		if i > 0 {
			opts = append(opts, WithStorage(NewRemoteStore(urls[0])))
		}
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		members[i] = startFedMember(t, NewServer(opts...), listeners[i], urls[i], peers)
	}
	return members
}

// TestFederationSteal submits a batch to a member with NO workers; the
// only workers in the federation hang off the other member, so every
// result must arrive via work stealing — and stay byte-identical.
func TestFederationSteal(t *testing.T) {
	members := testFederation(t, 2)
	loaded, idle := members[0], members[1]
	startWorker(t, idle.url, echoExec, 4)

	var tasks []Task
	for i := 0; i < 8; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("j%d", i), fmt.Sprintf("steal-%d", i)))
	}
	client := &Client{Server: loaded.url}
	ch, err := client.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	results := collectResults(t, ch)
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for _, task := range tasks {
		tr := results[task.ID]
		if tr.Err != "" {
			t.Fatalf("task %s failed: %s", task.ID, tr.Err)
		}
		if string(tr.Payload) != string(task.Payload) {
			t.Fatalf("task %s: got %s, want %s", task.ID, tr.Payload, task.Payload)
		}
	}
	vm := loaded.srv.Metrics()
	if vm.StealsOut == 0 {
		t.Errorf("victim counts no steals out (metrics %+v)", vm)
	}
	if tm := idle.srv.Metrics(); tm.StealsIn == 0 {
		t.Errorf("thief counts no steals in (metrics %+v)", tm)
	}
	if vm.Completed+vm.CacheHits == 0 {
		t.Errorf("victim saw neither completions nor cache hits")
	}
}

// TestFederationHopBound pins the ping-pong defence: with maxHops=0
// impossible (option floor is 1)... a task granted at its hop bound is
// refused to thieves. Two members, zero workers anywhere: tasks stolen
// once (maxHops=1) must never be stolen back even though both members
// stay idle and hungry.
func TestFederationHopBound(t *testing.T) {
	members := testFederation(t, 2, WithMaxHops(1))
	a, b := members[0], members[1]

	// Give B free capacity without letting anything actually run: a
	// worker with a stalling exec occupies lease slots only when granted;
	// instead, register capacity via a raw lease poll.
	leaseRaw(t, b.url, "idle-b", 4)

	var tasks []Task
	for i := 0; i < 3; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("h%d", i), fmt.Sprintf("hop-%d", i)))
	}
	client := &Client{Server: a.url}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := client.Submit(ctx, tasks); err != nil {
		t.Fatal(err)
	}

	// Wait for B to steal (tasks then sit leased to B, queued on B's own
	// server at hops=1).
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.srv.Metrics().StealsOut > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if a.srv.Metrics().StealsOut == 0 {
		t.Fatal("no steal happened")
	}

	// Now A gets hungry too — but B's queued copies are at the hop bound
	// and must not travel. Watch B's Status: stealable must stay 0.
	leaseRaw(t, a.url, "idle-a", 4)
	time.Sleep(300 * time.Millisecond)
	if st := b.fed.Status(); st.Stealable != 0 {
		t.Errorf("hop-bound tasks advertised stealable: %+v", st)
	}
	if got := b.srv.Metrics().StealsOut; got != 0 {
		t.Errorf("hop-bound task stolen back (steals_out=%d)", got)
	}
}

// TestFederationSharedStoreRerun pins the federated cache tier: a batch
// run through member 0 (executed by member 1 via steals, results banked
// in the shared store) is 100% cache-served on a rerun — even submitted
// to the OTHER member, with every worker gone.
func TestFederationSharedStoreRerun(t *testing.T) {
	members := testFederation(t, 2)
	a, b := members[0], members[1]
	stop := startWorker(t, b.url, echoExec, 4)

	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("r%d", i), fmt.Sprintf("rerun-%d", i)))
	}
	client := &Client{Server: a.url}
	ch, err := client.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	first := collectResults(t, ch)
	stop() // no workers anywhere now

	// Rerun against B: every result must come from the shared store.
	client = &Client{Server: b.url}
	ch, err = client.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	second := collectResults(t, ch)
	for _, task := range tasks {
		f, s := first[task.ID], second[task.ID]
		if f.Err != "" || s.Err != "" {
			t.Fatalf("task %s errored: %q / %q", task.ID, f.Err, s.Err)
		}
		if !s.Cached {
			t.Errorf("rerun task %s not cache-served", task.ID)
		}
		if string(f.Payload) != string(s.Payload) {
			t.Errorf("task %s: rerun bytes differ", task.ID)
		}
	}
}

// TestFederationGossip checks the mesh grows from a chain seed: C knows
// only B, B knows only A — after a few announce rounds everyone knows
// everyone.
func TestFederationGossip(t *testing.T) {
	mk := func(peers ...string) *fedMember {
		l, url := fedListen(t)
		return startFedMember(t, NewServer(WithLeaseTTL(200*time.Millisecond)), l, url, peers)
	}
	a := mk()
	b := mk(a.url)
	c := mk(b.url)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(a.fed.Peers()) == 2 && len(b.fed.Peers()) == 2 && len(c.fed.Peers()) == 2 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	for name, m := range map[string]*fedMember{"a": a, "b": b, "c": c} {
		if got := m.fed.Peers(); len(got) != 2 {
			t.Errorf("member %s knows peers %v, want 2", name, got)
		}
	}
	if a.srv.Metrics().Peers != 2 {
		t.Errorf("Peers gauge = %d, want 2", a.srv.Metrics().Peers)
	}
}

// TestFederationStealRace fans a large batch across two federated
// members under -race: every task exactly once, every byte right, no
// matter how steals interleave with local grants.
func TestFederationStealRace(t *testing.T) {
	members := testFederation(t, 2)
	a, b := members[0], members[1]
	var execs atomic.Int64
	exec := func(ctx context.Context, p []byte) ([]byte, error) {
		execs.Add(1)
		time.Sleep(time.Millisecond)
		return echoExec(ctx, p)
	}
	startWorker(t, a.url, exec, 2)
	startWorker(t, b.url, exec, 2)

	var tasks []Task
	for i := 0; i < 40; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("x%d", i), fmt.Sprintf("race-%d", i)))
	}
	client := &Client{Server: a.url}
	ch, err := client.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	results := collectResults(t, ch)
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for _, task := range tasks {
		tr := results[task.ID]
		if tr.Err != "" {
			t.Fatalf("task %s failed: %s", task.ID, tr.Err)
		}
		if string(tr.Payload) != string(task.Payload) {
			t.Fatalf("task %s bytes differ", task.ID)
		}
	}
}

// TestRemoteStoreDegradesToMiss pins the failure policy: a RemoteStore
// whose peer is gone misses on Get, drops Put, and reports 0 entries —
// never an error, never a hang.
func TestRemoteStoreDegradesToMiss(t *testing.T) {
	srv := NewServer()
	ts := httptest.NewServer(srv)
	url := ts.URL
	ts.Close() // peer is gone
	srv.Close()
	rs := NewRemoteStore(url)
	if _, ok := rs.Get("sha256:00"); ok {
		t.Fatal("dead peer produced a hit")
	}
	rs.Put("sha256:00", []byte("x"))
	entries, hits, misses := rs.Stats()
	if entries != 0 || hits != 0 || misses != 1 {
		t.Errorf("stats = %d/%d/%d, want 0 entries, 0 hits, 1 miss", entries, hits, misses)
	}
	if !strings.HasPrefix(rs.Remote(), "http://") {
		t.Errorf("Remote() = %q", rs.Remote())
	}
}
