package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoExec returns the payload as the result — enough to check plumbing
// and byte fidelity.
func echoExec(_ context.Context, payload []byte) ([]byte, error) {
	return payload, nil
}

// testGrid spins up a server (short lease TTL so reassignment tests run
// fast) behind httptest and returns it with a teardown.
func testGrid(t *testing.T, opts ...ServerOption) (*Server, *httptest.Server) {
	t.Helper()
	if len(opts) == 0 {
		opts = []ServerOption{WithLeaseTTL(200 * time.Millisecond)}
	}
	s := NewServer(opts...)
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// startWorker runs an in-process worker until the test ends.
func startWorker(t *testing.T, url string, exec ExecFunc, par int) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := &Worker{Server: url, Exec: exec, Parallel: par, LeaseWait: 100 * time.Millisecond,
		Name: fmt.Sprintf("tw-%p", &ctx)}
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	stop := func() {
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return cancel
}

func payload(s string) json.RawMessage {
	return json.RawMessage(fmt.Sprintf("{%q:%q}", "job", s))
}

func mkTask(id, body string) Task {
	p := payload(body)
	return Task{ID: id, Hash: HashBytes(p), Payload: p}
}

func collectResults(t *testing.T, ch <-chan TaskResult) map[string]TaskResult {
	t.Helper()
	out := map[string]TaskResult{}
	timeout := time.After(30 * time.Second)
	for {
		select {
		case tr, ok := <-ch:
			if !ok {
				return out
			}
			if _, dup := out[tr.ID]; dup {
				t.Fatalf("task %s delivered twice", tr.ID)
			}
			out[tr.ID] = tr
		case <-timeout:
			t.Fatalf("results stalled; got %d so far", len(out))
		}
	}
}

// TestBatchEndToEnd pushes a batch through server + two workers and
// checks delivery, dedupe of identical hashes within the batch, and the
// content-addressed cache on resubmission.
func TestBatchEndToEnd(t *testing.T) {
	srv, ts := testGrid(t)
	var execs atomic.Int64
	exec := func(ctx context.Context, p []byte) ([]byte, error) {
		execs.Add(1)
		return echoExec(ctx, p)
	}
	startWorker(t, ts.URL, exec, 2)
	startWorker(t, ts.URL, exec, 2)

	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("0", "a"), mkTask("1", "b"), mkTask("2", "a")} // 2 coalesces with 0
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, ch)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
	for _, tk := range tasks {
		tr, ok := got[tk.ID]
		if !ok {
			t.Fatalf("task %s never delivered", tk.ID)
		}
		if tr.Err != "" {
			t.Fatalf("task %s failed: %s", tk.ID, tr.Err)
		}
		if !bytes.Equal(tr.Payload, tk.Payload) {
			t.Errorf("task %s: result %s, want %s", tk.ID, tr.Payload, tk.Payload)
		}
		if tr.Hash != tk.Hash {
			t.Errorf("task %s: hash %s, want %s", tk.ID, tr.Hash, tk.Hash)
		}
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("identical tasks ran %d times, want 2 (one per unique hash)", n)
	}

	// Resubmit: everything is a cache hit, byte-identical, no new execs.
	ch, err = c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	again := collectResults(t, ch)
	for id, tr := range again {
		if !tr.Cached {
			t.Errorf("resubmitted task %s not served from cache", id)
		}
		if !bytes.Equal(tr.Payload, got[id].Payload) {
			t.Errorf("cached result for %s drifted", id)
		}
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("cache hits re-ran jobs: %d execs", n)
	}

	m := srv.Metrics()
	if m.CacheHits != 2 || m.Coalesced != 2 || m.Completed != 2 {
		t.Errorf("metrics = %+v, want 2 hits, 2 coalesced, 2 completed", m)
	}
	// Every submitted job is exactly one of hit/coalesce/miss: the first
	// batch was 2 misses + 1 within-batch coalesce, the second 2 hits
	// (one store lookup per unique hash) + 1 coalesce.
	if m.CacheMisses != 2 {
		t.Errorf("cache misses = %d, want exactly 2 (coalesced jobs are not misses)", m.CacheMisses)
	}
	if m.Submitted != m.CacheHits+m.Coalesced+m.CacheMisses {
		t.Errorf("admission invariant broken: %+v", m)
	}
}

// TestTaskFailure delivers an exec error to the right subscriber and
// never caches it.
func TestTaskFailure(t *testing.T) {
	srv, ts := testGrid(t)
	exec := func(_ context.Context, p []byte) ([]byte, error) {
		if bytes.Contains(p, []byte("bad")) {
			return nil, fmt.Errorf("synthetic failure")
		}
		return p, nil
	}
	startWorker(t, ts.URL, exec, 1)

	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), []Task{mkTask("ok", "fine"), mkTask("boom", "bad")})
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, ch)
	if got["ok"].Err != "" {
		t.Errorf("good task failed: %s", got["ok"].Err)
	}
	if got["boom"].Err == "" {
		t.Error("failing task reported no error")
	}
	if entries, _, _ := srv.Store().Stats(); entries != 1 {
		t.Errorf("store has %d entries, want 1 (failures must not be cached)", entries)
	}
}

// TestPriorityOrder verifies the work queue drains high-priority first,
// FIFO within a priority. The batch is fully queued before the single
// serial worker starts, so the execution order is exactly the queue
// order after the grant.
func TestPriorityOrder(t *testing.T) {
	_, ts := testGrid(t)
	var mu sync.Mutex
	var order []string
	exec := func(_ context.Context, p []byte) ([]byte, error) {
		mu.Lock()
		order = append(order, string(p))
		mu.Unlock()
		return p, nil
	}

	var tasks []Task
	for i, prio := range []int{1, 5, 3, 5} {
		p := payload(fmt.Sprintf("p%d-%d", prio, i))
		tasks = append(tasks, Task{ID: fmt.Sprintf("%d", i), Hash: HashBytes(p), Priority: prio, Payload: p})
	}
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	startWorker(t, ts.URL, exec, 1)
	collectResults(t, ch)

	mu.Lock()
	defer mu.Unlock()
	want := []string{string(payload("p5-1")), string(payload("p5-3")), string(payload("p3-2")), string(payload("p1-0"))}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("execution order %v, want %v", order, want)
		}
	}
}

// leaseRaw drives the worker protocol by hand — a "worker" that takes a
// lease and then dies (never heartbeats, never completes).
func leaseRaw(t *testing.T, url, worker string, capacity int) leaseResponse {
	t.Helper()
	body, _ := json.Marshal(leaseRequest{Worker: worker, Capacity: capacity, WaitMS: 2000})
	resp, err := http.Post(url+pathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// TestWorkerDeathReassignment kills a worker mid-task (it stops
// heartbeating after taking a lease) and checks the lease expires, the
// task is reassigned to a live worker, and the batch still completes.
func TestWorkerDeathReassignment(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(150*time.Millisecond))
	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("0", "victim")}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker grabs the lease... and flatlines.
	lr := leaseRaw(t, ts.URL, "doomed", 1)
	if len(lr.Tasks) != 1 {
		t.Fatalf("dead worker leased %d tasks, want 1", len(lr.Tasks))
	}

	// A healthy worker shows up; after the TTL the task must migrate.
	startWorker(t, ts.URL, echoExec, 1)
	got := collectResults(t, ch)
	tr := got["0"]
	if tr.Err != "" {
		t.Fatalf("reassigned task failed: %s", tr.Err)
	}
	if !bytes.Equal(tr.Payload, tasks[0].Payload) {
		t.Errorf("reassigned result drifted: %s", tr.Payload)
	}
	if m := srv.Metrics(); m.Reassigned == 0 {
		t.Errorf("metrics show no reassignment: %+v", m)
	}
}

// completeRaw posts a completion on behalf of a named worker.
func completeRaw(t *testing.T, url string, req completeRequest) completeResponse {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+pathComplete, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cr completeResponse
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	return cr
}

// TestStaleErrorCompletionIgnored pins the reassignment race: a worker
// whose lease expired aborts its execution and reports a context error —
// that must be answered Stale and must NOT fail the task, which a live
// worker then completes normally.
func TestStaleErrorCompletionIgnored(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(100*time.Millisecond))
	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("0", "contested")}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}

	lr := leaseRaw(t, ts.URL, "doomed", 1)
	if len(lr.Tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(lr.Tasks))
	}
	id := lr.Tasks[0].ID

	// Wait for the reaper to take the lease back.
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Reassigned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The zombie reports its abort; the task must survive it.
	cr := completeRaw(t, ts.URL, completeRequest{
		Worker: "doomed", ID: id, Hash: tasks[0].Hash, Err: "context canceled"})
	if !cr.Stale {
		t.Error("stale error completion not marked stale")
	}

	startWorker(t, ts.URL, echoExec, 1)
	got := collectResults(t, ch)
	if tr := got["0"]; tr.Err != "" || !bytes.Equal(tr.Payload, tasks[0].Payload) {
		t.Fatalf("task poisoned by stale abort: err=%q payload=%s", tr.Err, tr.Payload)
	}
}

// TestSameWorkerStaleAbortIgnored pins the attempt-token half of the
// reassignment race: a task whose lease expires can be re-leased to the
// SAME worker, and the old execution's abort (same worker name, stale
// attempt) must be answered Stale rather than failing the new attempt.
func TestSameWorkerStaleAbortIgnored(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(100*time.Millisecond))
	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("0", "release")}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}

	// Attempt 1: leased, never heartbeaten; the reaper takes it back.
	lr := leaseRaw(t, ts.URL, "same", 1)
	if len(lr.Tasks) != 1 || lr.Tasks[0].Attempt != 1 {
		t.Fatalf("first lease = %+v, want one task at attempt 1", lr.Tasks)
	}
	old := lr.Tasks[0]
	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Reassigned == 0 {
		if time.Now().After(deadline) {
			t.Fatal("lease never expired")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Attempt 2: the same worker gets it again.
	var again leaseResponse
	for time.Now().Before(deadline) {
		if again = leaseRaw(t, ts.URL, "same", 1); len(again.Tasks) == 1 {
			break
		}
	}
	if len(again.Tasks) != 1 || again.Tasks[0].Attempt != 2 {
		t.Fatalf("second lease = %+v, want the task back at attempt 2", again.Tasks)
	}

	// The old attempt's abort arrives — same worker name, stale attempt.
	cr := completeRaw(t, ts.URL, completeRequest{
		Worker: "same", ID: old.ID, Hash: old.Hash, Attempt: old.Attempt, Err: "context canceled"})
	if !cr.Stale {
		t.Error("stale-attempt abort from the re-leased worker not marked stale")
	}

	// The live attempt completes; the batch must see success, not the
	// zombie's context error.
	completeRaw(t, ts.URL, completeRequest{
		Worker: "same", ID: again.Tasks[0].ID, Hash: old.Hash,
		Attempt: again.Tasks[0].Attempt, Result: tasks[0].Payload})
	got := collectResults(t, ch)
	if tr := got["0"]; tr.Err != "" || !bytes.Equal(tr.Payload, tasks[0].Payload) {
		t.Fatalf("task poisoned by same-worker stale abort: err=%q payload=%s", tr.Err, tr.Payload)
	}
}

// TestMaxAttempts fails a task whose every lease dies, instead of
// re-queueing it forever.
func TestMaxAttempts(t *testing.T) {
	_, ts := testGrid(t, WithLeaseTTL(80*time.Millisecond), WithMaxAttempts(2))
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), []Task{mkTask("0", "cursed")})
	if err != nil {
		t.Fatal(err)
	}
	// Two generations of doomed workers take the lease and die.
	for i := 0; i < 2; i++ {
		deadline := time.Now().Add(10 * time.Second)
		for {
			lr := leaseRaw(t, ts.URL, fmt.Sprintf("doomed%d", i), 1)
			if len(lr.Tasks) == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("generation %d never got the lease", i)
			}
		}
	}
	got := collectResults(t, ch)
	if got["0"].Err == "" {
		t.Fatal("task with all-dead workers must fail after max attempts")
	}
}

// TestClientCancelMidStream cancels a batch while its tasks are running:
// the result channel must close promptly, the server must abandon the
// work, and the worker's execution contexts must be cancelled via the
// heartbeat channel — with no goroutine leaked anywhere.
func TestClientCancelMidStream(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		srv := NewServer(WithLeaseTTL(150 * time.Millisecond))
		ts := httptest.NewServer(srv)
		started := make(chan struct{}, 8)
		var aborted atomic.Int64
		exec := func(ctx context.Context, p []byte) ([]byte, error) {
			started <- struct{}{}
			<-ctx.Done() // simulate a long simulation; only cancellation ends it
			aborted.Add(1)
			return nil, ctx.Err()
		}
		w := &Worker{Server: ts.URL, Exec: exec, Parallel: 2, LeaseWait: 100 * time.Millisecond, Name: "cw"}
		wctx, wcancel := context.WithCancel(context.Background())
		workerDone := make(chan struct{})
		go func() {
			defer close(workerDone)
			w.Run(wctx)
		}()
		defer func() {
			wcancel()
			<-workerDone
			ts.Close()
			srv.Close()
		}()

		ctx, cancel := context.WithCancel(context.Background())
		c := &Client{Server: ts.URL}
		ch, err := c.Submit(ctx, []Task{mkTask("0", "x"), mkTask("1", "y"), mkTask("2", "z")})
		if err != nil {
			t.Fatal(err)
		}
		<-started // at least one task is actually running
		cancel()

		select {
		case _, ok := <-ch:
			for ok {
				_, ok = <-ch
			}
		case <-time.After(10 * time.Second):
			t.Fatal("result channel did not close after cancellation")
		}

		// The server notices the disconnect and cancels the in-flight
		// work at the workers' next heartbeat.
		deadline := time.Now().Add(10 * time.Second)
		for {
			m := srv.Metrics()
			if m.Abandoned > 0 && aborted.Load() > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("cancellation never propagated: metrics=%+v aborted=%d", m, aborted.Load())
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestServerWorkerShutdownNoLeak runs a full lifecycle — server, two
// workers, a batch — then tears everything down and checks every
// goroutine (reaper, pool workers, heartbeat, poster, batch handlers)
// exits.
func TestServerWorkerShutdownNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		s := NewServer(WithLeaseTTL(200 * time.Millisecond))
		ts := httptest.NewServer(s)
		wctx, wcancel := context.WithCancel(context.Background())
		var wg sync.WaitGroup
		for i := 0; i < 2; i++ {
			w := &Worker{Server: ts.URL, Exec: echoExec, Parallel: 2,
				LeaseWait: 100 * time.Millisecond, Name: fmt.Sprintf("lw%d", i)}
			wg.Add(1)
			go func() {
				defer wg.Done()
				w.Run(wctx)
			}()
		}
		c := &Client{Server: ts.URL}
		var tasks []Task
		for i := 0; i < 8; i++ {
			tasks = append(tasks, mkTask(fmt.Sprintf("%d", i), fmt.Sprintf("job%d", i)))
		}
		ch, err := c.Submit(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		if got := collectResults(t, ch); len(got) != len(tasks) {
			t.Fatalf("delivered %d of %d", len(got), len(tasks))
		}
		wcancel()
		wg.Wait()
		ts.Close()
		s.Close()
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestStore pins the content-addressed store semantics: first write
// wins, hit/miss counters, no empty-hash entries.
func TestStore(t *testing.T) {
	s := NewStore()
	if _, ok := s.Get("h1"); ok {
		t.Fatal("empty store hit")
	}
	s.Put("h1", []byte("a"))
	s.Put("h1", []byte("b")) // ignored: deterministic results make rewrites pointless
	if v, ok := s.Get("h1"); !ok || string(v) != "a" {
		t.Fatalf("got %q/%v, want first write", v, ok)
	}
	s.Put("", []byte("x"))
	entries, hits, misses := s.Stats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Errorf("stats = %d entries, %d hits, %d misses; want 1/1/1", entries, hits, misses)
	}
}

// TestBaseURL pins the address normalization rules.
func TestBaseURL(t *testing.T) {
	for in, want := range map[string]string{
		":8321":                  "http://127.0.0.1:8321",
		"host:8321":              "http://host:8321",
		"http://host:8321":       "http://host:8321",
		"http://host:8321/":      "http://host:8321",
		" https://grid.example ": "https://grid.example",
		"":                       "",
	} {
		if got := BaseURL(in); got != want {
			t.Errorf("BaseURL(%q) = %q, want %q", in, got, want)
		}
	}
}
