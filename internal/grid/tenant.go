package grid

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// DefaultTenant is the identity of clients that send no X-Grid-Client
// header: they all share one bucket, one quota and one fair-queue lane,
// so an anonymous crowd cannot out-schedule named tenants.
const DefaultTenant = "anon"

// ClientHeader carries the submitting client's tenant identity on
// /v1/batch (grid.Client sets it from its ClientID, `helperd submit
// -client` and repro.WithGridClientID from their flags/options).
const ClientHeader = "X-Grid-Client"

// TenantLimits is one tenant's admission contract. The zero value means
// unlimited everything with weight 1 — exactly the pre-tenancy
// behaviour, which is also what unknown tenants get unless the server
// was built with different WithTenantDefaults.
type TenantLimits struct {
	// Weight is the tenant's fair-queue share relative to other tenants
	// at the same priority (< 1 means the default, 1).
	Weight float64 `json:"weight,omitempty"`
	// RatePerSec refills the tenant's token bucket (jobs per second);
	// Burst caps it. Zero rate disables rate limiting. A batch is
	// admitted all-or-nothing: it needs len(jobs) tokens, so Burst
	// bounds the largest admissible batch when rate limiting is on
	// (Burst < 1 defaults to max(RatePerSec, 1)).
	RatePerSec float64 `json:"rate_per_sec,omitempty"`
	Burst      float64 `json:"burst,omitempty"`
	// MaxPendingJobs / MaxPendingBytes cap how much admitted-but-
	// unfinished work (jobs and payload bytes) the tenant may hold on
	// the server at once; a batch that would exceed either is rejected
	// with 429 + Retry-After. Zero means unlimited.
	MaxPendingJobs  int   `json:"max_pending_jobs,omitempty"`
	MaxPendingBytes int64 `json:"max_pending_bytes,omitempty"`
}

// weight resolves the effective fair-share weight.
func (l TenantLimits) weight() float64 {
	if l.Weight >= 1 {
		return l.Weight
	}
	return 1
}

// burst resolves the effective bucket capacity.
func (l TenantLimits) burst() float64 {
	if l.Burst >= 1 {
		return l.Burst
	}
	return math.Max(l.RatePerSec, 1)
}

// tenantState is the server's live record of one tenant: its limits,
// its token bucket, its pending-work quota holds, and its counters.
// Everything is mutated under the server lock.
type tenantState struct {
	id     string
	limits TenantLimits

	// tokens is the rate-limit bucket level at lastRefill.
	tokens     float64
	lastRefill time.Time

	// pendingJobs/pendingBytes are the live quota holds: admitted
	// subscriptions (jobs) not yet resolved, and their payload bytes.
	pendingJobs  int
	pendingBytes int64

	// Counters (see TenantMetrics).
	admitted      uint64
	rejectedRate  uint64
	rejectedQuota uint64
	completed     uint64
	failed        uint64
}

// refillLocked advances the token bucket to now.
func (ts *tenantState) refillLocked(now time.Time) {
	if ts.limits.RatePerSec <= 0 {
		return
	}
	if !ts.lastRefill.IsZero() {
		ts.tokens += now.Sub(ts.lastRefill).Seconds() * ts.limits.RatePerSec
	} else {
		ts.tokens = ts.limits.burst()
	}
	if cap := ts.limits.burst(); ts.tokens > cap {
		ts.tokens = cap
	}
	ts.lastRefill = now
}

// admitLocked answers whether a batch of n jobs totalling bytes payload
// may be admitted now. On refusal it returns the kind ("rate" or
// "quota"), a human reason, and how long until a retry could succeed
// (retryable false when waiting cannot help — the batch exceeds a hard
// cap outright).
func (ts *tenantState) admitLocked(now time.Time, n int, bytes int64) (ok bool, kind, reason string, retryAfter time.Duration, retryable bool) {
	if ts.limits.MaxPendingJobs > 0 && ts.pendingJobs+n > ts.limits.MaxPendingJobs {
		if n > ts.limits.MaxPendingJobs {
			return false, "quota", fmt.Sprintf("batch of %d jobs exceeds the tenant's max_pending_jobs=%d outright",
				n, ts.limits.MaxPendingJobs), 0, false
		}
		return false, "quota", fmt.Sprintf("pending-jobs quota exhausted (%d pending, limit %d)",
			ts.pendingJobs, ts.limits.MaxPendingJobs), time.Second, true
	}
	if ts.limits.MaxPendingBytes > 0 && ts.pendingBytes+bytes > ts.limits.MaxPendingBytes {
		if bytes > ts.limits.MaxPendingBytes {
			return false, "quota", fmt.Sprintf("batch of %d bytes exceeds the tenant's max_pending_bytes=%d outright",
				bytes, ts.limits.MaxPendingBytes), 0, false
		}
		return false, "quota", fmt.Sprintf("pending-bytes quota exhausted (%d pending, limit %d)",
			ts.pendingBytes, ts.limits.MaxPendingBytes), time.Second, true
	}
	if ts.limits.RatePerSec > 0 {
		ts.refillLocked(now)
		need := float64(n)
		if need > ts.limits.burst() {
			return false, "rate", fmt.Sprintf("batch of %d jobs exceeds the tenant's burst=%g outright",
				n, ts.limits.burst()), 0, false
		}
		if ts.tokens < need {
			wait := time.Duration((need - ts.tokens) / ts.limits.RatePerSec * float64(time.Second))
			if wait < 10*time.Millisecond {
				wait = 10 * time.Millisecond
			}
			return false, "rate", fmt.Sprintf("rate limit (%g jobs/s, burst %g)",
				ts.limits.RatePerSec, ts.limits.burst()), wait, true
		}
		ts.tokens -= need
	}
	return true, "", "", 0, true
}

// TenantMetrics is one tenant's slice of the /metrics snapshot.
type TenantMetrics struct {
	ID string `json:"id"`
	// Weight is the tenant's fair-queue share.
	Weight float64 `json:"weight"`
	// Admitted counts jobs accepted at /v1/batch; RejectedRate and
	// RejectedQuota count whole-batch refusals (429s) by reason.
	Admitted      uint64 `json:"admitted"`
	RejectedRate  uint64 `json:"rejected_rate"`
	RejectedQuota uint64 `json:"rejected_quota"`
	// Queued/Running are point-in-time gauges over the tenant's live
	// subscriptions; PendingBytes the payload bytes they hold against
	// the byte quota.
	Queued       int   `json:"queued"`
	Running      int   `json:"running"`
	PendingBytes int64 `json:"pending_bytes"`
	// Completed/Failed count the tenant's delivered final results.
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// Stages summarizes the tenant's per-stage latencies (stageOrder
	// keys: admission, first_progress, exec, e2e); the full histograms
	// are on the Prometheus endpoint as grid_stage_ms.
	Stages map[string]LatencySummary `json:"stages,omitempty"`
}

// WithTenant registers a tenant's limits up front. Unregistered tenants
// get the WithTenantDefaults limits on first contact.
func WithTenant(id string, l TenantLimits) ServerOption {
	return func(s *Server) {
		if id != "" {
			s.tenantLimits[id] = l
		}
	}
}

// WithTenantDefaults sets the limits a previously unseen tenant starts
// with. The zero default is unlimited/weight-1 — the open-grid
// behaviour.
func WithTenantDefaults(l TenantLimits) ServerOption {
	return func(s *Server) { s.tenantDefaults = l }
}

// WithMaxQueue bounds the server-wide queue depth: a batch whose
// non-cached jobs would push the queue past n is refused with 503 +
// Retry-After (global backpressure, distinct from the per-tenant 429s).
// Zero means unbounded.
func WithMaxQueue(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxQueue = n
		}
	}
}

// tenantLocked finds or creates the tenant record.
func (s *Server) tenantLocked(id string) *tenantState {
	if id == "" {
		id = DefaultTenant
	}
	ts := s.tenants[id]
	if ts == nil {
		limits, ok := s.tenantLimits[id]
		if !ok {
			limits = s.tenantDefaults
		}
		ts = &tenantState{id: id, limits: limits}
		s.tenants[id] = ts
	}
	return ts
}

// ParseTenantSpec parses the `helperd serve -tenants` flag: tenants are
// separated by ';', fields within a tenant by ',', the first field is
// the tenant ID and the rest are key=value pairs — weight, rate, burst,
// jobs (max pending jobs) and bytes (max pending bytes):
//
//	alice,weight=4,rate=50,burst=100;bob,weight=1,jobs=500,bytes=33554432
func ParseTenantSpec(spec string) (map[string]TenantLimits, error) {
	out := map[string]TenantLimits{}
	for _, ent := range strings.Split(spec, ";") {
		if ent = strings.TrimSpace(ent); ent == "" {
			continue
		}
		fields := strings.Split(ent, ",")
		id := strings.TrimSpace(fields[0])
		if id == "" || strings.Contains(id, "=") {
			return nil, fmt.Errorf("grid: tenant spec %q: first field must be the tenant id", ent)
		}
		var l TenantLimits
		for _, f := range fields[1:] {
			if f = strings.TrimSpace(f); f == "" {
				continue
			}
			key, val, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("grid: tenant %s: field %q is not key=value", id, f)
			}
			n, err := strconv.ParseFloat(val, 64)
			if err != nil || n < 0 || math.IsNaN(n) || math.IsInf(n, 0) {
				return nil, fmt.Errorf("grid: tenant %s: bad %s value %q", id, key, val)
			}
			switch key {
			case "weight":
				l.Weight = n
			case "rate":
				l.RatePerSec = n
			case "burst":
				l.Burst = n
			case "jobs":
				l.MaxPendingJobs = int(n)
			case "bytes":
				l.MaxPendingBytes = int64(n)
			default:
				return nil, fmt.Errorf("grid: tenant %s: unknown limit %q (want weight|rate|burst|jobs|bytes)", id, key)
			}
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("grid: tenant %s specified twice", id)
		}
		out[id] = l
	}
	return out, nil
}
