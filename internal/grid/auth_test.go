package grid

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestPeerAuthVerify pins the MAC scheme property by property: a valid
// signature roundtrips, and every field the MAC covers — secret,
// timestamp, method, path, body — rejects when tampered.
func TestPeerAuthVerify(t *testing.T) {
	const secret = "s3cr3t"
	now := time.Now()
	body := []byte(`{"peer":"http://a"}`)
	sig := signPeerAuth(secret, http.MethodPost, pathPeerAnnounce, body, now)

	cases := []struct {
		name               string
		secret, hdr        string
		method, path       string
		body               []byte
		at                 time.Time
		wantErr            error
		wantOK             bool
	}{
		{"roundtrip", secret, sig, http.MethodPost, pathPeerAnnounce, body, now, nil, true},
		{"skewed within window", secret, sig, http.MethodPost, pathPeerAnnounce, body, now.Add(peerAuthSkew / 2), nil, true},
		{"missing header", secret, "", http.MethodPost, pathPeerAnnounce, body, now, errAuthMissing, false},
		{"malformed header", secret, "what=ever", http.MethodPost, pathPeerAnnounce, body, now, errAuthMalformed, false},
		{"wrong secret", "other", sig, http.MethodPost, pathPeerAnnounce, body, now, errAuthMismatch, false},
		{"tampered body", secret, sig, http.MethodPost, pathPeerAnnounce, []byte(`{"peer":"http://evil"}`), now, errAuthMismatch, false},
		{"lifted onto another path", secret, sig, http.MethodPost, pathPeerSteal, body, now, errAuthMismatch, false},
		{"lifted onto another method", secret, sig, http.MethodGet, pathPeerAnnounce, body, now, errAuthMismatch, false},
		{"replayed after the window", secret, sig, http.MethodPost, pathPeerAnnounce, body, now.Add(peerAuthSkew + time.Second), errAuthExpired, false},
		{"from the future", secret, sig, http.MethodPost, pathPeerAnnounce, body, now.Add(-peerAuthSkew - time.Second), errAuthExpired, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := verifyPeerAuth(c.secret, c.hdr, c.method, c.path, c.body, c.at)
			if c.wantOK && err != nil {
				t.Fatalf("verify failed: %v", err)
			}
			if !c.wantOK && err != c.wantErr {
				t.Fatalf("got %v, want %v", err, c.wantErr)
			}
		})
	}
}

// TestPeerAuthHTTPRejects armour-tests the seam over real HTTP: every
// peer-protocol and store endpoint of a secreted member answers 403 to
// an unsigned request (and counts it), while a correctly signed request
// passes — and a MAC lifted from one path cannot open another.
func TestPeerAuthHTTPRejects(t *testing.T) {
	const secret = "fed-secret"
	l, url := fedListen(t)
	m := startFedMember(t, NewServer(WithLeaseTTL(200*time.Millisecond), WithPeerSecret(secret)), l, url, nil)

	protected := []struct {
		method, path string
		body         string
	}{
		{http.MethodPost, pathPeerAnnounce, `{"peer":"http://intruder"}`},
		{http.MethodGet, pathPeerStatus, ""},
		{http.MethodPost, pathPeerSteal, `{"peer":"http://intruder","max":4}`},
		{http.MethodPost, pathPeerRelease, `{"peer":"http://intruder","id":"t1","attempt":1}`},
		{http.MethodGet, pathStoreGet + "?hash=sha256:00", ""},
		{http.MethodPost, pathStorePut + "?hash=sha256:00", "payload"},
		{http.MethodGet, pathStoreStat, ""},
	}
	for i, p := range protected {
		req, err := http.NewRequest(p.method, url+p.path, bytes.NewReader([]byte(p.body)))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusForbidden {
			t.Errorf("%s %s unsigned: status %d, want 403", p.method, p.path, resp.StatusCode)
		}
		if got := m.srv.Metrics().PeerAuthRejected; got != uint64(i+1) {
			t.Errorf("after %s %s: PeerAuthRejected = %d, want %d", p.method, p.path, got, i+1)
		}
	}

	// A MAC minted for one path must not open another, even fresh.
	lifted := signPeerAuth(secret, http.MethodGet, pathStoreStat, nil, time.Now())
	req, _ := http.NewRequest(http.MethodGet, url+pathPeerStatus, nil)
	req.Header.Set(PeerAuthHeader, lifted)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("cross-path replay: status %d, want 403", resp.StatusCode)
	}

	// The real signature passes, both hand-rolled and via Client.
	req, _ = http.NewRequest(http.MethodGet, url+pathPeerStatus, nil)
	req.Header.Set(PeerAuthHeader, signPeerAuth(secret, http.MethodGet, pathPeerStatus, nil, time.Now()))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("signed peer status: status %d, want 200", resp.StatusCode)
	}
	client := &Client{Server: url, PeerSecret: secret}
	if _, err := client.PeerStatus(context.Background()); err != nil {
		t.Errorf("Client.PeerStatus with secret: %v", err)
	}

	// The operator/worker surfaces stay open: no secret on /metrics,
	// /healthz or the batch endpoint.
	for _, path := range []string{pathMetrics, pathHealthz} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("open endpoint %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}

// TestFederationAuthedEndToEnd runs the full steal + shared-result path
// with every member armed with the same secret: signed gossip converges
// and stolen work flows exactly as in the open-seam tests.
func TestFederationAuthedEndToEnd(t *testing.T) {
	const secret = "ring-secret"
	listeners := make([]net.Listener, 2)
	urls := make([]string, 2)
	for i := range listeners {
		listeners[i], urls[i] = fedListen(t)
	}
	members := make([]*fedMember, 2)
	for i := range members {
		peers := []string{urls[1-i]}
		members[i] = startFedMember(t,
			NewServer(WithLeaseTTL(200*time.Millisecond), WithPeerSecret(secret)),
			listeners[i], urls[i], peers)
	}
	loaded, idle := members[0], members[1]
	startWorker(t, idle.url, echoExec, 4)

	var tasks []Task
	for i := 0; i < 6; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("a%d", i), fmt.Sprintf("authed-%d", i)))
	}
	client := &Client{Server: loaded.url}
	ch, err := client.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	results := collectResults(t, ch)
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for _, task := range tasks {
		tr := results[task.ID]
		if tr.Err != "" || string(tr.Payload) != string(task.Payload) {
			t.Fatalf("task %s: err=%q payload=%q", task.ID, tr.Err, tr.Payload)
		}
	}
	if m := loaded.srv.Metrics(); m.StealsOut == 0 {
		t.Errorf("no steals crossed the authed seam (metrics %+v)", m)
	}
	if m := loaded.srv.Metrics(); m.PeerAuthRejected != 0 {
		t.Errorf("legitimate peer traffic rejected %d times", m.PeerAuthRejected)
	}
}

// TestFederationMixedSecretNoGossip pins the lockout: a member with the
// wrong secret can be seeded with a right-secret peer, but its announces
// are rejected — the mesh never adopts it and the rejections are
// counted.
func TestFederationMixedSecretNoGossip(t *testing.T) {
	la, ua := fedListen(t)
	a := startFedMember(t, NewServer(WithLeaseTTL(200*time.Millisecond), WithPeerSecret("right")), la, ua, nil)
	lb, ub := fedListen(t)
	b := startFedMember(t, NewServer(WithLeaseTTL(200*time.Millisecond), WithPeerSecret("wrong")), lb, ub, []string{ua})

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if a.srv.Metrics().PeerAuthRejected > 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if got := a.srv.Metrics().PeerAuthRejected; got == 0 {
		t.Fatal("wrong-secret announces were never rejected")
	}
	if peers := a.fed.Peers(); len(peers) != 0 {
		t.Errorf("intruder gossiped into the mesh: %v", peers)
	}
	// And the intruder learned nothing back either: its only knowledge of
	// A is its own seed list, never confirmed by a status exchange.
	if st, err := b.fed.peerStatus(ua); err == nil {
		t.Errorf("wrong-secret status probe succeeded: %+v", st)
	}
}
