package grid

import (
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// AutoscaleStats is the autoscaler's self-report, published into the
// server's /metrics after every evaluation tick.
type AutoscaleStats struct {
	// ScaleUps/ScaleDowns count spawn and reap actions.
	ScaleUps   uint64 `json:"scale_ups"`
	ScaleDowns uint64 `json:"scale_downs"`
	// Workers is how many supervised workers are live (draining ones
	// excluded); Target the last evaluation's desired count.
	Workers int `json:"workers"`
	Target  int `json:"target"`
}

// WorkerHandle is one supervised worker as the autoscaler sees it.
// Drain asks it to stop taking new leases, finish in-flight work and
// exit; Kill terminates it immediately; Done is closed once it has
// exited (however it exited).
type WorkerHandle interface {
	Drain()
	Kill()
	Done() <-chan struct{}
}

// SpawnFunc launches one worker against the supervised server. id is a
// monotonically increasing ordinal the spawner may fold into the worker
// name (helperd spawns "auto<N>" re-exec'd processes; tests spawn
// in-process Workers).
type SpawnFunc func(id int) (WorkerHandle, error)

// AutoscalerConfig sizes an Autoscaler.
type AutoscalerConfig struct {
	// Min/Max bound the supervised worker count. Min workers are brought
	// up immediately and crashed ones respawned; Max caps scale-up.
	// Max < Min is raised to Min.
	Min, Max int
	// Tick is the evaluation period (default 500ms).
	Tick time.Duration
	// IdleTicks is how many consecutive empty-queue evaluations a worker
	// above Min must sit through before one is drained (default 4) —
	// hysteresis, so a gap between batches does not flap the fleet.
	IdleTicks int
	// Spawn launches one worker. Required.
	Spawn SpawnFunc
	// Log receives scale action logs (nil = silent).
	Log *slog.Logger
}

// Autoscaler supervises a local worker fleet against one Server: every
// tick it compares queue pressure (queue depth vs the fleet's free
// capacity, from the server's own load snapshot) and spawns workers up
// to Max when the backlog outruns capacity, drains them down to Min
// after a sustained idle period, and respawns crashed ones up to Min.
// Draining — not killing — is how workers are reaped, so in-flight
// leases always finish.
type Autoscaler struct {
	srv *Server
	cfg AutoscalerConfig

	mu     sync.Mutex
	procs  []*supervisedWorker
	nextID int
	idle   int
	stats  AutoscaleStats

	closed    chan struct{}
	closeOnce sync.Once
	done      chan struct{}
}

// supervisedWorker is one live (or draining) supervised worker.
type supervisedWorker struct {
	id       int
	handle   WorkerHandle
	draining bool
}

// NewAutoscaler starts supervising. Call Close to stop the loop and
// kill whatever is still running.
func NewAutoscaler(srv *Server, cfg AutoscalerConfig) (*Autoscaler, error) {
	if cfg.Spawn == nil {
		return nil, fmt.Errorf("grid: autoscaler needs a Spawn function")
	}
	if cfg.Min < 0 {
		cfg.Min = 0
	}
	if cfg.Max < cfg.Min {
		cfg.Max = cfg.Min
	}
	if cfg.Tick <= 0 {
		cfg.Tick = 500 * time.Millisecond
	}
	if cfg.IdleTicks <= 0 {
		cfg.IdleTicks = 4
	}
	a := &Autoscaler{
		srv:    srv,
		cfg:    cfg,
		closed: make(chan struct{}),
		done:   make(chan struct{}),
	}
	go a.loop()
	return a, nil
}

// Stats returns the latest self-report.
func (a *Autoscaler) Stats() AutoscaleStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.stats
}

// Close stops the evaluation loop, kills every supervised worker and
// waits for them to exit. Idempotent.
func (a *Autoscaler) Close() {
	a.closeOnce.Do(func() { close(a.closed) })
	<-a.done
	a.mu.Lock()
	procs := a.procs
	a.procs = nil
	a.mu.Unlock()
	for _, p := range procs {
		p.handle.Kill()
	}
	for _, p := range procs {
		<-p.handle.Done()
	}
}

func (a *Autoscaler) loop() {
	defer close(a.done)
	ticker := time.NewTicker(a.cfg.Tick)
	defer ticker.Stop()
	// Bring the floor up immediately instead of waiting a tick.
	a.evaluate()
	for {
		select {
		case <-a.closed:
			return
		case <-ticker.C:
			a.evaluate()
		}
	}
}

// evaluate is one supervision tick: prune exited workers, compute the
// target from the server's load snapshot, and spawn or drain toward it.
func (a *Autoscaler) evaluate() {
	st := a.srv.Status()
	a.mu.Lock()
	defer a.mu.Unlock()

	// Prune workers that exited; a crash (an exit nobody asked for) is
	// logged and, below Min, respawned by the floor rule.
	kept := a.procs[:0]
	live := 0
	for _, p := range a.procs {
		select {
		case <-p.handle.Done():
			if !p.draining && a.cfg.Log != nil {
				a.cfg.Log.Warn("autoscaler: worker exited unexpectedly", "worker", p.id)
			}
		default:
			kept = append(kept, p)
			if !p.draining {
				live++
			}
		}
	}
	a.procs = kept

	target := live
	switch {
	case st.QueueDepth > st.FreeCapacity:
		// Backlog outruns the fleet: add the deficit, capped at Max. One
		// spike therefore spawns within a single evaluation tick.
		a.idle = 0
		target = live + (st.QueueDepth - st.FreeCapacity)
		if target > a.cfg.Max {
			target = a.cfg.Max
		}
	case st.QueueDepth == 0:
		a.idle++
		if a.idle >= a.cfg.IdleTicks && live > a.cfg.Min {
			// Gentle scale-down: one worker per idle period, drained so
			// its in-flight leases finish.
			target = live - 1
			a.idle = 0
		}
	default:
		a.idle = 0
	}
	if target < a.cfg.Min {
		target = a.cfg.Min
	}

	for live < target {
		a.nextID++
		h, err := a.cfg.Spawn(a.nextID)
		if err != nil {
			if a.cfg.Log != nil {
				a.cfg.Log.Error("autoscaler: spawn failed", "err", err)
			}
			break
		}
		a.procs = append(a.procs, &supervisedWorker{id: a.nextID, handle: h})
		a.stats.ScaleUps++
		live++
		if a.cfg.Log != nil {
			a.cfg.Log.Info("autoscaler: spawned worker",
				"worker", a.nextID, "workers", live, "queue", st.QueueDepth)
		}
	}
	for live > target {
		// Drain the newest non-draining worker (LIFO keeps the stable
		// floor workers stable).
		var victim *supervisedWorker
		for i := len(a.procs) - 1; i >= 0; i-- {
			if !a.procs[i].draining {
				victim = a.procs[i]
				break
			}
		}
		if victim == nil {
			break
		}
		victim.draining = true
		victim.handle.Drain()
		a.stats.ScaleDowns++
		live--
		if a.cfg.Log != nil {
			a.cfg.Log.Info("autoscaler: draining worker", "worker", victim.id, "workers", live)
		}
	}

	a.stats.Workers = live
	a.stats.Target = target
	a.srv.SetAutoscaleStats(a.stats)
}
