package grid

// Storage is the pluggable content-addressed result store behind a
// Server: canonical job hash → result payload bytes, stored verbatim so
// cache hits are byte-identical to the worker's original answer.
//
// Four implementations ship with the package: the in-memory Store
// (the default — a restart forgets everything), the crash-safe
// DiskStore (a server restarted on the same directory keeps its cache),
// the networked RemoteStore (this server reads and banks results in
// a peer's store — the federation's shared cache tier; a shared
// DiskStore directory is the same seam for co-located peers), and the
// ShardedStore (the federation tier without a single owner: hashes
// rendezvous-sharded over the live membership with replication).
//
// Contract, shared by all and pinned by TestStorageContract:
//
//   - Only successful results are stored; callers must never Put a
//     failure payload (a transient error must not poison a sweep point).
//   - First write wins: a hash is a complete description of a
//     deterministic simulation, so any two results for it are identical
//     and re-storing is pointless.
//   - Put with an empty hash is a no-op.
//   - Get counts exactly one hit or one miss per call.
//
// Implementations must be safe for concurrent use: the Server calls Get
// and Put outside its own lock (disk I/O must not stall the lease and
// heartbeat handlers), so concurrent Gets, Puts and Stats all happen.
type Storage interface {
	// Get returns the stored payload for hash, counting the lookup as a
	// hit or a miss.
	Get(hash string) ([]byte, bool)
	// Put stores a successful result payload under hash (first write
	// wins, empty hash ignored).
	Put(hash string, payload []byte)
	// Stats reports the entry count and the hit/miss counters.
	Stats() (entries int, hits, misses uint64)
}

var (
	_ Storage = (*Store)(nil)
	_ Storage = (*DiskStore)(nil)
	_ Storage = (*RemoteStore)(nil)
	_ Storage = (*ShardedStore)(nil)
)
