package grid

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// faultTransport is the fault-injection harness: a RoundTripper that
// drops, delays, duplicates, or loses the response of heartbeat and
// complete posts — the two legs whose loss or replay could lose a job
// or double-count it. Lease and batch traffic passes clean so the test
// converges. Faults draw from a seeded RNG, so a failure replays.
type faultTransport struct {
	base http.RoundTripper

	mu  sync.Mutex
	rng *rand.Rand
	// Counters of injected faults, so the test can prove the harness
	// actually bit.
	dropped, duplicated, delayed, respLost int
}

func (ft *faultTransport) roll(n int) int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.rng.Intn(n)
}

func (ft *faultTransport) count(c *int) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	*c++
}

func (ft *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path != pathHeartbeat && req.URL.Path != pathComplete {
		return ft.base.RoundTrip(req)
	}
	switch r := ft.roll(100); {
	case r < 12:
		// Dropped on the floor: the server never sees it.
		ft.count(&ft.dropped)
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, fmt.Errorf("fault: dropped %s", req.URL.Path)
	case r < 24:
		// Delivered, but the response is lost: the caller retries a
		// request the server already processed — the double-count trap.
		ft.count(&ft.respLost)
		resp, err := ft.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		return nil, fmt.Errorf("fault: response lost for %s", req.URL.Path)
	case r < 36:
		// Duplicated: the server processes the same post twice.
		ft.count(&ft.duplicated)
		if req.GetBody != nil {
			if body, err := req.GetBody(); err == nil {
				dup := req.Clone(req.Context())
				dup.Body = body
				if resp, err := ft.base.RoundTrip(dup); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
			}
		}
		return ft.base.RoundTrip(req)
	case r < 48:
		// Delayed, but within the lease TTL.
		ft.count(&ft.delayed)
		time.Sleep(time.Duration(5+ft.roll(40)) * time.Millisecond)
		return ft.base.RoundTrip(req)
	}
	return ft.base.RoundTrip(req)
}

// TestSameWorkerReLeaseNoDoubleRun pins the worker-side half of the
// same-worker re-lease race: with every heartbeat dropped, the lease
// expires mid-execution and the server grants the task back to the same
// worker — which must drop the duplicate grant (the first execution is
// still running and its success completes the task) instead of running
// the payload twice over corrupted per-ID bookkeeping.
func TestSameWorkerReLeaseNoDoubleRun(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(100*time.Millisecond), WithMaxAttempts(20))
	drop := &faultTransport{base: http.DefaultTransport, rng: rand.New(rand.NewSource(1))}
	// Repurpose the harness as a deterministic heartbeat black hole.
	dropAll := http.RoundTripper(roundTripFunc(func(req *http.Request) (*http.Response, error) {
		if req.URL.Path == pathHeartbeat {
			if req.Body != nil {
				io.Copy(io.Discard, req.Body)
				req.Body.Close()
			}
			return nil, fmt.Errorf("fault: heartbeat black hole")
		}
		return drop.base.RoundTrip(req)
	}))

	var execs atomic.Int64
	exec := func(ctx context.Context, p []byte) ([]byte, error) {
		execs.Add(1)
		// Longer than several lease TTLs, so expiry + re-grant happens
		// while this execution is still running.
		if !sleepCtx(ctx, 400*time.Millisecond) {
			return nil, ctx.Err()
		}
		return p, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Server: ts.URL, Exec: exec, Parallel: 2, LeaseWait: 50 * time.Millisecond,
		Name: "release", HTTP: &http.Client{Transport: dropAll}}
	done := make(chan struct{})
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	defer func() {
		cancel()
		<-done
	}()

	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("0", "re-leased")}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, ch)
	if tr := got["0"]; tr.Err != "" || !bytes.Equal(tr.Payload, tasks[0].Payload) {
		t.Fatalf("task lost to the re-lease race: %+v", tr)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("payload executed %d times, want 1 (duplicate grant must be dropped)", n)
	}
	if m := srv.Metrics(); m.Reassigned == 0 {
		t.Errorf("lease never expired — the scenario did not exercise re-grant: %+v", m)
	}
}

// roundTripFunc adapts a function to http.RoundTripper.
type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// TestFaultInjectionNoLossNoDoubleCount runs a batch through a worker
// whose heartbeat and complete posts are dropped, delayed, duplicated,
// and stripped of their responses. The batch must still deliver every
// task exactly once with the right bytes, and the server counters must
// account for each task exactly once (a retried or duplicated complete
// must be answered stale, never recounted).
func TestFaultInjectionNoLossNoDoubleCount(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(400*time.Millisecond), WithMaxAttempts(20))
	ft := &faultTransport{base: http.DefaultTransport, rng: rand.New(rand.NewSource(7))}

	exec := func(ctx context.Context, p []byte) ([]byte, error) {
		// Long enough that heartbeats matter, short against the TTL.
		if !sleepCtx(ctx, 30*time.Millisecond) {
			return nil, ctx.Err()
		}
		return p, nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &Worker{Server: ts.URL, Exec: exec, Parallel: 3, LeaseWait: 100 * time.Millisecond,
		Name: "flaky", HTTP: &http.Client{Transport: ft}}
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(ctx)
	}()
	defer func() {
		cancel()
		<-workerDone
	}()

	const n = 14
	var tasks []Task
	for i := 0; i < n; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("%d", i), fmt.Sprintf("fault-job-%d", i)))
	}
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, ch) // fatals on any double delivery
	if len(got) != n {
		t.Fatalf("delivered %d of %d", len(got), n)
	}
	for _, tk := range tasks {
		tr := got[tk.ID]
		if tr.Err != "" {
			t.Errorf("task %s lost to faults: %s", tk.ID, tr.Err)
		} else if !bytes.Equal(tr.Payload, tk.Payload) {
			t.Errorf("task %s corrupted: %s", tk.ID, tr.Payload)
		}
	}

	m := srv.Metrics()
	// Exactly-once accounting: every unique task resolves exactly once,
	// regardless of how many times its completion was retried or
	// duplicated in flight, and nothing fails.
	if m.Completed != n || m.Failed != 0 {
		t.Errorf("metrics completed=%d failed=%d, want %d/0 (no loss, no double count)",
			m.Completed, m.Failed, n)
	}
	if entries, _, _ := srv.Store().Stats(); entries != n {
		t.Errorf("store holds %d entries, want %d", entries, n)
	}

	ft.mu.Lock()
	faults := ft.dropped + ft.duplicated + ft.delayed + ft.respLost
	t.Logf("injected faults: %d dropped, %d duplicated, %d delayed, %d responses lost",
		ft.dropped, ft.duplicated, ft.delayed, ft.respLost)
	ft.mu.Unlock()
	if faults == 0 {
		t.Fatal("fault harness injected nothing; the test proved nothing")
	}
}

// admissionFaultTransport bites only /v1/batch: it gauges how many
// retry resubmissions (X-Grid-Retry > 0) are in flight at once — the
// thundering-herd measurement — and mangles 429 refusals on the way
// back. Some lose their JSON body, so the client must fall back to the
// coarse Retry-After header; some are duplicated, replaying the refused
// request against the server and returning the replay's answer (a
// refused batch charges no tokens and holds no quota, so the replay
// must be harmless — or, if the bucket refilled meanwhile, a clean
// admission the client consumes as usual).
type admissionFaultTransport struct {
	base http.RoundTripper

	mu          sync.Mutex
	rng         *rand.Rand
	inflight    int
	maxInflight int
	retries     int
	bodyLost    int
	duplicated  int
}

func (ft *admissionFaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.URL.Path != pathBatch {
		return ft.base.RoundTrip(req)
	}
	if a := req.Header.Get(retryHeader); a != "" && a != "0" {
		ft.mu.Lock()
		ft.retries++
		ft.inflight++
		if ft.inflight > ft.maxInflight {
			ft.maxInflight = ft.inflight
		}
		ft.mu.Unlock()
		defer func() {
			ft.mu.Lock()
			ft.inflight--
			ft.mu.Unlock()
		}()
	}
	resp, err := ft.base.RoundTrip(req)
	if err != nil || resp.StatusCode != http.StatusTooManyRequests {
		return resp, err
	}
	ft.mu.Lock()
	roll := ft.rng.Intn(3)
	ft.mu.Unlock()
	switch roll {
	case 0:
		// Strip the JSON body; only the Retry-After header survives.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		resp.Body = io.NopCloser(bytes.NewReader(nil))
		resp.ContentLength = 0
		ft.mu.Lock()
		ft.bodyLost++
		ft.mu.Unlock()
	case 1:
		// Duplicate the refused request; return the replay's answer.
		if req.GetBody != nil {
			if body, err := req.GetBody(); err == nil {
				dup := req.Clone(req.Context())
				dup.Body = body
				if r2, err := ft.base.RoundTrip(dup); err == nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					resp = r2
					ft.mu.Lock()
					ft.duplicated++
					ft.mu.Unlock()
				}
			}
		}
	}
	return resp, nil
}

// TestAdmissionFaultInjection floods a rate-limited tenant with more
// concurrent batches than its burst admits, through a transport that
// mangles the 429s (JSON bodies lost, refused requests duplicated).
// Required: every batch eventually lands and delivers its task exactly
// once with its own bytes, at most Backoff.MaxConcurrent resubmissions
// are ever in flight at once (the retry gate — no thundering herd), and
// the server's tenant counters account every admission and refusal.
func TestAdmissionFaultInjection(t *testing.T) {
	srv, ts := testGrid(t,
		WithLeaseTTL(2*time.Second),
		WithTenant("stress", TenantLimits{RatePerSec: 50, Burst: 4}),
	)
	startWorker(t, ts.URL, echoExec, 2)
	ft := &admissionFaultTransport{base: http.DefaultTransport, rng: rand.New(rand.NewSource(11))}
	c := &Client{
		Server:   ts.URL,
		ClientID: "stress",
		HTTP:     &http.Client{Transport: ft},
		Backoff:  Backoff{Base: 20 * time.Millisecond, Max: 250 * time.Millisecond, Retries: 25, MaxConcurrent: 2},
		Rand:     rand.New(rand.NewSource(23)),
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	const batches = 12
	var wg sync.WaitGroup
	errs := make([]error, batches)
	results := make([]map[string]TaskResult, batches)
	for i := 0; i < batches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tasks := []Task{mkTask("0", fmt.Sprintf("admit-%d", i))}
			ch, err := c.Submit(ctx, tasks)
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = map[string]TaskResult{}
			for tr := range ch {
				if _, dup := results[i][tr.ID]; dup {
					errs[i] = fmt.Errorf("task %s delivered twice", tr.ID)
					return
				}
				results[i][tr.ID] = tr
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		tr := results[i]["0"]
		want := payload(fmt.Sprintf("admit-%d", i))
		if tr.Err != "" || !bytes.Equal(tr.Payload, want) {
			t.Fatalf("batch %d: bad result %+v", i, tr)
		}
	}

	ft.mu.Lock()
	t.Logf("admission faults: %d retries, %d bodies lost, %d duplicated, max %d resubmissions in flight",
		ft.retries, ft.bodyLost, ft.duplicated, ft.maxInflight)
	retries, faults, maxIn := ft.retries, ft.bodyLost+ft.duplicated, ft.maxInflight
	ft.mu.Unlock()
	if retries == 0 {
		t.Fatal("no batch was ever refused; the rate limit never bit")
	}
	if faults == 0 {
		t.Fatal("fault harness injected nothing; the test proved nothing")
	}
	if maxIn > 2 {
		t.Errorf("%d resubmissions in flight at once, want <= 2 (retry gate)", maxIn)
	}

	m := srv.Metrics()
	if m.Completed != batches {
		t.Errorf("completed %d, want %d (exactly-once)", m.Completed, batches)
	}
	if m.Rejected == 0 {
		t.Error("server counted no rejections despite client retries")
	}
	var st *TenantMetrics
	for i := range m.Tenants {
		if m.Tenants[i].ID == "stress" {
			st = &m.Tenants[i]
		}
	}
	if st == nil {
		t.Fatal("tenant stress missing from metrics")
	}
	if st.Admitted != batches || st.RejectedRate == 0 {
		t.Errorf("tenant counters off: admitted=%d (want %d), rejected_rate=%d (want > 0)",
			st.Admitted, batches, st.RejectedRate)
	}
}
