package grid

import (
	"crypto/hmac"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Peer authentication: federated members share one secret (helperd's
// -peer-secret) and sign every peer-protocol and store-tier request with
// an HMAC over the timestamp, method, path (query included) and body.
// The signature rides the X-Grid-Peer-Auth header as "t=<unix-ms>,
// mac=<hex>". Verification recomputes the MAC and compares it in
// constant time; a request without a header, with a tampered MAC, with
// a MAC lifted from a different request (the path and body are under
// the MAC) or with a timestamp outside the replay window is rejected
// 403 and counted in /metrics as peer_auth_rejected.
//
// Only the peer seam is covered — announce/status/steal/release and the
// /v1/store endpoints. The client and worker surfaces (batch, lease,
// heartbeat, complete) stay open: they face the operator's own tools,
// not other grid servers, and a worker holds no peer secret.

// PeerAuthHeader carries the shared-secret HMAC of a federation peer
// request ("t=<unix-ms>,mac=<hex sha256 HMAC>").
const PeerAuthHeader = "X-Grid-Peer-Auth"

// peerAuthSkew bounds how far a signed timestamp may drift from the
// verifier's clock before the request is treated as a replay (or a
// badly skewed clock — federated hosts are expected to run NTP).
const peerAuthSkew = 2 * time.Minute

// peerAuthMAC computes the hex HMAC-SHA256 over the canonical request
// string: timestamp, method and path are newline-framed so no field can
// bleed into the next, and the raw body follows.
func peerAuthMAC(secret string, ts int64, method, path string, body []byte) string {
	mac := hmac.New(sha256.New, []byte(secret))
	fmt.Fprintf(mac, "%d\n%s\n%s\n", ts, method, path)
	mac.Write(body)
	return hex.EncodeToString(mac.Sum(nil))
}

// signPeerAuth produces the PeerAuthHeader value for one request. path
// must include the query string when there is one (the verifier uses
// the request URI as received).
func signPeerAuth(secret, method, path string, body []byte, now time.Time) string {
	ts := now.UnixMilli()
	return "t=" + strconv.FormatInt(ts, 10) + ",mac=" + peerAuthMAC(secret, ts, method, path, body)
}

var (
	errAuthMissing   = errors.New("grid: missing peer auth header")
	errAuthMalformed = errors.New("grid: malformed peer auth header")
	errAuthExpired   = errors.New("grid: peer auth timestamp outside replay window")
	errAuthMismatch  = errors.New("grid: peer auth MAC mismatch")
)

// verifyPeerAuth checks one request's PeerAuthHeader value against the
// shared secret, in constant time on the MAC comparison.
func verifyPeerAuth(secret, header, method, path string, body []byte, now time.Time) error {
	if header == "" {
		return errAuthMissing
	}
	var ts int64
	var mac string
	for _, kv := range strings.Split(header, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return errAuthMalformed
		}
		switch k {
		case "t":
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				return errAuthMalformed
			}
			ts = n
		case "mac":
			mac = v
		}
	}
	if ts == 0 || mac == "" {
		return errAuthMalformed
	}
	if d := now.Sub(time.UnixMilli(ts)); d > peerAuthSkew || d < -peerAuthSkew {
		return errAuthExpired
	}
	want := peerAuthMAC(secret, ts, method, path, body)
	if !hmac.Equal([]byte(want), []byte(mac)) {
		return errAuthMismatch
	}
	return nil
}

// requestAuthPath is the canonical path the MAC covers: the URL path
// plus the raw query when present — exactly what the signing client
// appended to the peer base URL.
func requestAuthPath(r *http.Request) string {
	if r.URL.RawQuery != "" {
		return r.URL.Path + "?" + r.URL.RawQuery
	}
	return r.URL.Path
}
