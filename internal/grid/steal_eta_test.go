package grid

import (
	"context"
	"testing"
	"time"
)

// TestPickVictimPrefersWorstETA pins the tentpole scheduling change: the
// steal victim is the peer whose worst still-queued batch will finish
// last, not the one with the deepest queue.
func TestPickVictimPrefersWorstETA(t *testing.T) {
	victim, avail := pickVictim([]stealCandidate{
		{peer: "http://a", status: PeerStatus{Stealable: 10, WorstEtaMS: 100}},
		{peer: "http://b", status: PeerStatus{Stealable: 2, WorstEtaMS: 5000}},
		{peer: "http://c", status: PeerStatus{Stealable: 7, WorstEtaMS: 900}},
	})
	if victim != "http://b" || avail != 2 {
		t.Errorf("picked %q (avail %d), want the worst-ETA peer http://b (avail 2)", victim, avail)
	}
}

// TestPickVictimFallbacks covers the edges: no ETAs published falls back
// to deepest-stealable, a positive ETA outranks any depth of
// uncalibrated queue, exact ties break deterministically by URL, and no
// stealable work means no victim.
func TestPickVictimFallbacks(t *testing.T) {
	// Pre-ETA behaviour: deepest stealable queue wins.
	victim, avail := pickVictim([]stealCandidate{
		{peer: "http://a", status: PeerStatus{Stealable: 3}},
		{peer: "http://b", status: PeerStatus{Stealable: 9}},
	})
	if victim != "http://b" || avail != 9 {
		t.Errorf("no-ETA fallback picked %q/%d, want http://b/9", victim, avail)
	}
	// A published ETA outranks a deeper uncalibrated queue.
	victim, _ = pickVictim([]stealCandidate{
		{peer: "http://deep", status: PeerStatus{Stealable: 50}},
		{peer: "http://slow", status: PeerStatus{Stealable: 1, WorstEtaMS: 10}},
	})
	if victim != "http://slow" {
		t.Errorf("ETA peer lost to uncalibrated depth: picked %q", victim)
	}
	// Full tie: lexicographically smallest URL, deterministically.
	for i := 0; i < 3; i++ {
		victim, _ = pickVictim([]stealCandidate{
			{peer: "http://b", status: PeerStatus{Stealable: 4, WorstEtaMS: 100}},
			{peer: "http://a", status: PeerStatus{Stealable: 4, WorstEtaMS: 100}},
		})
		if victim != "http://a" {
			t.Fatalf("tie-break picked %q, want http://a", victim)
		}
	}
	// Nothing stealable anywhere.
	if victim, _ = pickVictim([]stealCandidate{
		{peer: "http://a", status: PeerStatus{Stealable: 0, WorstEtaMS: 9999}},
	}); victim != "" {
		t.Errorf("victim %q picked from peers with nothing stealable", victim)
	}
}

// TestStatusPublishesWorstEta checks the victim side of ETA-aware
// stealing: a member with queued work and a calibrated task-duration
// EWMA advertises a positive WorstEtaMS in its peer status.
func TestStatusPublishesWorstEta(t *testing.T) {
	srv, ts := testGrid(t)
	if st := srv.Status(); st.WorstEtaMS != 0 {
		t.Fatalf("idle member advertises ETA %d", st.WorstEtaMS)
	}
	client := &Client{Server: ts.URL}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := client.Submit(ctx, []Task{mkTask("e1", "eta"), mkTask("e2", "eta2")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && srv.Status().QueueDepth < 2 {
		time.Sleep(10 * time.Millisecond)
	}
	// Pretend the fleet has completed work before: the EWMA is what turns
	// queue depth into wall time.
	srv.mu.Lock()
	srv.avgTaskDur = time.Second
	srv.mu.Unlock()
	st := srv.Status()
	if st.QueueDepth != 2 {
		t.Fatalf("queue depth %d, want 2", st.QueueDepth)
	}
	if st.WorstEtaMS <= 0 {
		t.Errorf("loaded member advertises WorstEtaMS %d, want > 0", st.WorstEtaMS)
	}
}

// TestStealReleaseOnFailedHandoff pins satellite 3: a thief whose local
// handoff fails returns the stolen lease with the attempt token, and
// the victim requeues the task immediately — long before the lease TTL
// would have expired.
func TestStealReleaseOnFailedHandoff(t *testing.T) {
	l, vurl := fedListen(t)
	// A lease TTL far beyond the test budget: if requeue waited for
	// expiry, the assertions below could never pass in time.
	victim := startFedMember(t, NewServer(WithLeaseTTL(30*time.Second)), l, vurl, nil)

	// The thief federation's self URL is unroutable, so its loopback
	// Submit of the stolen task fails instantly — the failed-handoff path.
	const thiefSelf = "http://127.0.0.1:1"
	tsrv := NewServer()
	tfed := NewFederation(tsrv, thiefSelf, []string{vurl},
		WithAnnounceInterval(time.Hour), WithStealInterval(time.Hour))
	t.Cleanup(func() { tfed.Close(); tsrv.Close() })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client := &Client{Server: vurl}
	if _, err := client.Submit(ctx, []Task{mkTask("s1", "stolen")}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && victim.srv.Metrics().QueueDepth == 0 {
		time.Sleep(10 * time.Millisecond)
	}

	tasks, ttlMS := victim.srv.StealGrant(thiefSelf, 1)
	if len(tasks) != 1 {
		t.Fatalf("steal grant gave %d tasks, want 1", len(tasks))
	}
	if m := victim.srv.Metrics(); m.QueueDepth != 0 {
		t.Fatalf("stolen task still queued (depth %d)", m.QueueDepth)
	}

	// A stale release — wrong attempt token — must be refused, exactly
	// like a stale completion.
	if victim.srv.ReleaseStolen(thiefSelf, tasks[0].ID, tasks[0].Attempt+1) {
		t.Error("release with a stale attempt token was honoured")
	}

	// Run the thief's stolen-task path synchronously: the loopback submit
	// fails, so it must hand the lease back over /v1/peer/release.
	start := time.Now()
	tfed.wg.Add(1)
	tfed.runStolen(vurl, tasks[0], time.Duration(ttlMS)*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("failed handoff took %s — the release path is not short-circuiting", elapsed)
	}

	m := victim.srv.Metrics()
	if m.QueueDepth != 1 {
		t.Errorf("queue depth %d after release, want 1 (task requeued)", m.QueueDepth)
	}
	if m.StealReturns != 1 {
		t.Errorf("StealReturns = %d, want 1", m.StealReturns)
	}
	// And a second release for the now-requeued task is a no-op.
	if victim.srv.ReleaseStolen(thiefSelf, tasks[0].ID, tasks[0].Attempt) {
		t.Error("release after requeue was honoured twice")
	}
}
