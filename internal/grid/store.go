package grid

import "sync"

// Store is the in-memory Storage implementation: canonical job hash →
// result payload bytes, stored verbatim so cache hits are byte-identical
// to the worker's original answer. Only successful results are stored —
// failures are delivered but never cached, so a transient error does not
// poison a sweep point forever. A Store dies with its process; use
// DiskStore for a cache that survives server restarts.
type Store struct {
	mu      sync.Mutex
	entries map[string][]byte
	hits    uint64
	misses  uint64
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: map[string][]byte{}}
}

// Get returns the stored payload for hash, counting the lookup as a hit
// or miss.
func (s *Store) Get(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.entries[hash]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	return data, ok
}

// Put stores a successful result payload under hash. The first write
// wins: a hash is a complete description of a deterministic simulation,
// so any two results for it are identical and re-storing is pointless.
func (s *Store) Put(hash string, payload []byte) {
	if hash == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[hash]; !ok {
		s.entries[hash] = payload
	}
}

// Stats reports the entry count and the hit/miss counters.
func (s *Store) Stats() (entries int, hits, misses uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.hits, s.misses
}
