package grid

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// inprocHandle adapts an in-process Worker to the WorkerHandle the
// autoscaler supervises — what helperd does with re-exec'd processes,
// minus the fork.
type inprocHandle struct {
	w      *Worker
	cancel context.CancelFunc
	done   chan struct{}
}

func (h *inprocHandle) Drain()                { h.w.Drain() }
func (h *inprocHandle) Kill()                 { h.cancel() }
func (h *inprocHandle) Done() <-chan struct{} { return h.done }

// inprocSpawner builds a SpawnFunc launching in-process Workers against
// url, recording every handle it hands out so tests can reach in and
// crash one.
func inprocSpawner(url string, exec ExecFunc, handles *[]*inprocHandle, mu *sync.Mutex) SpawnFunc {
	return func(id int) (WorkerHandle, error) {
		ctx, cancel := context.WithCancel(context.Background())
		h := &inprocHandle{cancel: cancel, done: make(chan struct{})}
		h.w = &Worker{Server: url, Exec: exec, Parallel: 1,
			LeaseWait: 50 * time.Millisecond, Name: fmt.Sprintf("auto%d", id)}
		go func() {
			defer close(h.done)
			h.w.Run(ctx)
		}()
		if handles != nil {
			mu.Lock()
			*handles = append(*handles, h)
			mu.Unlock()
		}
		return h, nil
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestAutoscalerSpikeSpawnIdleReap runs the full lifecycle under the
// leak check: a queue spike must spawn workers within the evaluation
// tick, the batch must complete, the idle hysteresis must then reap the
// fleet back to Min=0, and after Close not a single goroutine (workers,
// their heartbeat/poster loops, the evaluation loop) may survive.
func TestAutoscalerSpikeSpawnIdleReap(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		srv := NewServer(WithLeaseTTL(2 * time.Second))
		ts := httptest.NewServer(srv)
		defer func() {
			ts.Close()
			srv.Close()
		}()
		exec := func(ctx context.Context, p []byte) ([]byte, error) {
			if !sleepCtx(ctx, 20*time.Millisecond) {
				return nil, ctx.Err()
			}
			return p, nil
		}
		as, err := NewAutoscaler(srv, AutoscalerConfig{
			Min: 0, Max: 3, Tick: 40 * time.Millisecond, IdleTicks: 2,
			Spawn: inprocSpawner(ts.URL, exec, nil, nil),
		})
		if err != nil {
			t.Fatal(err)
		}
		defer as.Close()

		// No backlog, Min 0: nothing may be running.
		if st := as.Stats(); st.Workers != 0 || st.ScaleUps != 0 {
			t.Fatalf("idle autoscaler spawned workers: %+v", st)
		}

		var tasks []Task
		for i := 0; i < 9; i++ {
			tasks = append(tasks, mkTask(fmt.Sprintf("%d", i), fmt.Sprintf("spike-%d", i)))
		}
		c := &Client{Server: ts.URL}
		ch, err := c.Submit(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		// The spike: 9 queued vs 0 capacity must drive a spawn within a
		// tick or two (the first evaluation may land just before Submit).
		waitFor(t, 2*time.Second, "spike to spawn workers", func() bool {
			return as.Stats().ScaleUps > 0
		})

		got := collectResults(t, ch)
		if len(got) != len(tasks) {
			t.Fatalf("delivered %d of %d", len(got), len(tasks))
		}
		for _, tk := range tasks {
			if tr := got[tk.ID]; tr.Err != "" || !bytes.Equal(tr.Payload, tk.Payload) {
				t.Fatalf("task %s: %+v", tk.ID, tr)
			}
		}

		// Queue empty again: the idle hysteresis must drain the whole
		// fleet back down to Min=0, one worker per idle period.
		waitFor(t, 10*time.Second, "idle fleet to drain to zero", func() bool {
			st := as.Stats()
			return st.Workers == 0 && st.ScaleDowns == st.ScaleUps
		})
		// The autoscaler's self-report must be visible in /metrics.
		if m := srv.Metrics(); m.Autoscaler == nil || m.Autoscaler.ScaleUps == 0 {
			t.Errorf("autoscaler stats missing from metrics: %+v", m.Autoscaler)
		}
	}()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestAutoscalerDrainPreservesInflight pins the reap path's safety
// property: scaling down drains — the victim finishes its in-flight
// lease and posts the result — and never kills. A single worker runs a
// gated task; the queue reads empty (the task is leased), so the idle
// rule drains that worker while its execution is still blocked. The
// task must still complete exactly once with its own bytes.
func TestAutoscalerDrainPreservesInflight(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(2*time.Second))
	release := make(chan struct{})
	var execs atomic.Int64
	exec := func(ctx context.Context, p []byte) ([]byte, error) {
		execs.Add(1)
		select {
		case <-release:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return p, nil
	}
	as, err := NewAutoscaler(srv, AutoscalerConfig{
		Min: 0, Max: 1, Tick: 30 * time.Millisecond, IdleTicks: 2,
		Spawn: inprocSpawner(ts.URL, exec, nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()

	tk := mkTask("0", "inflight-survives-drain")
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), []Task{tk})
	if err != nil {
		t.Fatal(err)
	}
	// The worker spawns, leases the task, blocks in exec; with the queue
	// empty the idle rule must then drain it mid-flight.
	waitFor(t, 5*time.Second, "worker to start executing", func() bool {
		return execs.Load() > 0
	})
	waitFor(t, 5*time.Second, "idle rule to drain the busy worker", func() bool {
		return as.Stats().ScaleDowns > 0
	})
	select {
	case tr := <-ch:
		t.Fatalf("result delivered before the gate opened: %+v", tr)
	default:
	}

	close(release)
	got := collectResults(t, ch)
	if tr := got["0"]; tr.Err != "" || !bytes.Equal(tr.Payload, tk.Payload) {
		t.Fatalf("drained worker lost the in-flight task: %+v", tr)
	}
	if n := execs.Load(); n != 1 {
		t.Errorf("task executed %d times, want 1 (drain must not cancel or re-run)", n)
	}
	waitFor(t, 5*time.Second, "drained worker to exit", func() bool {
		return as.Stats().Workers == 0
	})
	if m := srv.Metrics(); m.Completed != 1 || m.Failed != 0 {
		t.Errorf("completed=%d failed=%d, want 1/0", m.Completed, m.Failed)
	}
}

// TestAutoscalerRespawnsCrashedWorker pins the Min floor: a worker that
// exits without being asked (a crash) is pruned on the next tick and a
// replacement spawned, and the grid keeps serving.
func TestAutoscalerRespawnsCrashedWorker(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(2*time.Second))
	var mu sync.Mutex
	var handles []*inprocHandle
	as, err := NewAutoscaler(srv, AutoscalerConfig{
		Min: 1, Max: 1, Tick: 30 * time.Millisecond, IdleTicks: 2,
		Spawn: inprocSpawner(ts.URL, echoExec, &handles, &mu),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer as.Close()

	waitFor(t, 5*time.Second, "floor worker to spawn", func() bool {
		return as.Stats().Workers == 1
	})
	mu.Lock()
	first := handles[0]
	mu.Unlock()
	first.cancel() // crash it: an exit nobody asked for
	<-first.done

	waitFor(t, 5*time.Second, "crashed worker to be respawned", func() bool {
		st := as.Stats()
		return st.ScaleUps >= 2 && st.Workers == 1
	})
	// The replacement must actually serve.
	tk := mkTask("0", "served-after-respawn")
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), []Task{tk})
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, ch)
	if tr := got["0"]; tr.Err != "" || !bytes.Equal(tr.Payload, tk.Payload) {
		t.Fatalf("respawned fleet failed the task: %+v", tr)
	}
}
