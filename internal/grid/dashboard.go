package grid

import "net/http"

// serveDashboard answers /dashboard with the live grid dashboard: one
// self-contained HTML page (no external assets, works on an air-gapped
// grid) that polls the JSON /metrics snapshot every second and redraws
// in place — fleet and queue tiles, the autoscaler's self-report,
// per-tenant admission/queue rows with stage latencies, per-batch ETAs,
// and a progress bar per in-flight job from the same interval
// snapshots the NDJSON streams carry.
func serveDashboard(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(dashboardHTML))
}

const dashboardHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>helper grid</title>
<style>
  body { font: 13px/1.5 ui-monospace, SFMono-Regular, Menlo, monospace;
         background: #101418; color: #d8dee6; margin: 1.5rem; }
  h1 { font-size: 1rem; margin: 0 0 1rem; color: #8fd3a5; }
  h2 { font-size: .8rem; margin: 1.2rem 0 .4rem; color: #7aa2c4;
       text-transform: uppercase; letter-spacing: .08em; }
  .tiles { display: flex; flex-wrap: wrap; gap: .6rem; }
  .tile { background: #1a2027; border: 1px solid #2a323c; border-radius: 6px;
          padding: .5rem .9rem; min-width: 7.5rem; }
  .tile .v { font-size: 1.3rem; color: #e8eef5; }
  .tile .k { font-size: .7rem; color: #8a97a5; text-transform: uppercase; }
  table { border-collapse: collapse; width: 100%; }
  th, td { text-align: left; padding: .2rem .7rem .2rem 0; white-space: nowrap; }
  th { color: #8a97a5; font-weight: normal; font-size: .75rem; }
  .bar { display: inline-block; width: 14rem; height: .7rem; background: #232b34;
         border-radius: 3px; overflow: hidden; vertical-align: middle; }
  .bar i { display: block; height: 100%; background: #4d9e71; }
  .muted { color: #66737f; }
  #err { color: #d9837d; }
</style>
</head>
<body>
<h1>helper grid <span id="err"></span></h1>
<div class="tiles" id="tiles"></div>
<h2>autoscaler</h2><div id="auto" class="muted">no autoscaler attached</div>
<h2>tenants</h2><div id="tenants" class="muted">none yet</div>
<h2>batches</h2><div id="batches" class="muted">no connected batches</div>
<h2>in-flight jobs</h2><div id="running" class="muted">idle</div>
<script>
function esc(s) {
  return String(s).replace(/[&<>"]/g, c => ({'&':'&amp;','<':'&lt;','>':'&gt;','"':'&quot;'}[c]));
}
function tile(k, v) {
  return '<div class="tile"><div class="v">' + esc(v) + '</div><div class="k">' + esc(k) + '</div></div>';
}
function fmtMS(ms) {
  if (ms >= 60000) return (ms / 60000).toFixed(1) + 'm';
  if (ms >= 1000) return (ms / 1000).toFixed(1) + 's';
  return Math.round(ms) + 'ms';
}
function stageCell(st, name) {
  if (!st || !st[name]) return '<td class="muted">—</td>';
  return '<td>' + fmtMS(st[name].mean_ms) + '</td>';
}
function render(m) {
  document.getElementById('tiles').innerHTML =
    tile('workers', m.workers) + tile('peers', m.peers) +
    tile('queued', m.queue_depth) + tile('leased', m.leased) +
    tile('completed', m.completed) + tile('failed', m.failed) +
    tile('cache hits', m.cache_hits) + tile('store', m.store_entries) +
    tile('steals in/out', m.steals_in + '/' + m.steals_out);
  if (m.autoscaler) {
    const a = m.autoscaler;
    document.getElementById('auto').innerHTML =
      'supervising ' + a.workers + ' workers, target ' + a.target +
      ' <span class="muted">(ups ' + a.scale_ups + ', downs ' + a.scale_downs + ')</span>';
  }
  if (m.tenants && m.tenants.length) {
    let h = '<table><tr><th>tenant</th><th>weight</th><th>admitted</th><th>rejected</th>' +
            '<th>queued</th><th>running</th><th>admission</th><th>exec</th><th>e2e</th></tr>';
    for (const t of m.tenants) {
      h += '<tr><td>' + esc(t.id) + '</td><td>' + t.weight + '</td><td>' + t.admitted +
           '</td><td>' + (t.rejected_rate + t.rejected_quota) + '</td><td>' + t.queued +
           '</td><td>' + t.running + '</td>' +
           stageCell(t.stages, 'admission') + stageCell(t.stages, 'exec') +
           stageCell(t.stages, 'e2e') + '</tr>';
    }
    document.getElementById('tenants').innerHTML = h + '</table>';
  }
  if (m.batches && m.batches.length) {
    let h = '<table><tr><th>batch</th><th>pending</th><th>queued</th><th>running</th><th>eta</th></tr>';
    for (const b of m.batches) {
      h += '<tr><td>' + esc(b.id) + '</td><td>' + b.pending + '</td><td>' + b.queued +
           '</td><td>' + b.running + '</td><td>' + fmtMS(b.eta_ms) + '</td></tr>';
    }
    document.getElementById('batches').innerHTML = h + '</table>';
  } else {
    document.getElementById('batches').innerHTML = '<span class="muted">no connected batches</span>';
  }
  if (m.running && m.running.length) {
    let h = '<table><tr><th>task</th><th>worker</th><th>rung</th><th>ipc</th><th>progress</th></tr>';
    for (const p of m.running) {
      const pct = p.total ? Math.min(100, 100 * p.uops / p.total) : 0;
      h += '<tr><td>' + esc(p.id) + '</td><td>' + esc(p.worker || '') + '</td><td>' +
           esc(p.rung || '') + '</td><td>' +
           (p.interval_ipc ? p.interval_ipc.toFixed(2) : '—') + '</td>' +
           '<td><span class="bar"><i style="width:' + pct.toFixed(1) + '%"></i></span> ' +
           (p.total ? pct.toFixed(0) + '%' : '<span class="muted">?</span>') + '</td></tr>';
    }
    document.getElementById('running').innerHTML = h + '</table>';
  } else {
    document.getElementById('running').innerHTML = '<span class="muted">idle</span>';
  }
}
async function tick() {
  try {
    const r = await fetch('/metrics', {headers: {Accept: 'application/json'}});
    render(await r.json());
    document.getElementById('err').textContent = '';
  } catch (e) {
    document.getElementById('err').textContent = ' — ' + e;
  }
}
tick();
setInterval(tick, 1000);
</script>
</body>
</html>
`
