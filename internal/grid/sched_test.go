package grid

// Scheduler-policy tests: profile affinity at grant time, per-batch ETA
// estimates, and straggler speculation. These drive the worker protocol
// by hand (leaseRaw/completeRaw/heartbeatRaw) so grant decisions are
// observable one step at a time.

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// heartbeatRaw posts one heartbeat on behalf of a named worker.
func heartbeatRaw(t *testing.T, url string, req heartbeatRequest) heartbeatResponse {
	t.Helper()
	hr, err := postHeartbeat(url, req)
	if err != nil {
		t.Fatal(err)
	}
	return hr
}

// postHeartbeat is the t-less body of heartbeatRaw, callable from helper
// goroutines (which must not t.Fatal).
func postHeartbeat(url string, req heartbeatRequest) (heartbeatResponse, error) {
	var hr heartbeatResponse
	body, _ := json.Marshal(req)
	resp, err := http.Post(url+pathHeartbeat, "application/json", bytes.NewReader(body))
	if err != nil {
		return hr, err
	}
	defer resp.Body.Close()
	err = json.NewDecoder(resp.Body).Decode(&hr)
	return hr, err
}

// leaseRawLoad is leaseRaw with an explicit load report and wait: a
// zero-wait, fully-loaded poll registers a worker as live without
// granting it anything and without leaving a long-poll open.
func leaseRawLoad(t *testing.T, url, worker string, capacity, inFlight, waitMS int) leaseResponse {
	t.Helper()
	body, _ := json.Marshal(leaseRequest{
		Worker: worker, Capacity: capacity, InFlight: inFlight, WaitMS: waitMS})
	resp, err := http.Post(url+pathLease, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var lr leaseResponse
	if err := json.NewDecoder(resp.Body).Decode(&lr); err != nil {
		t.Fatal(err)
	}
	return lr
}

// profTask builds a payload-distinct task carrying a locality profile.
func profTask(id, profile string) Task {
	tk := mkTask(id, id)
	tk.Profile = profile
	return tk
}

// completeTask reports a granted task done, echoing its payload — the
// raw-protocol equivalent of echoExec.
func completeTask(t *testing.T, url, worker string, tk Task) {
	t.Helper()
	cr := completeRaw(t, url, completeRequest{
		Worker: worker, ID: tk.ID, Hash: tk.Hash, Attempt: tk.Attempt, Result: tk.Payload})
	if cr.Stale {
		t.Fatalf("completion of %s by %s unexpectedly stale", tk.ID, worker)
	}
}

// TestAffinityGrant pins the grant-time profile swap: once a worker has
// run a profile, an equal-priority queued task with that profile jumps
// ahead of a colder FIFO head for that worker — and the hit/miss
// counters see exactly that.
func TestAffinityGrant(t *testing.T) {
	srv, ts := testGrid(t)
	c := &Client{Server: ts.URL}

	// Round 1 seeds the history: w1 runs profile pa, w2 runs pb (both
	// grants are cold, so both count as misses).
	ch, err := c.Submit(context.Background(), []Task{profTask("a1", "pa"), profTask("b1", "pb")})
	if err != nil {
		t.Fatal(err)
	}
	lr := leaseRaw(t, ts.URL, "aff-w1", 1)
	if len(lr.Tasks) != 1 || lr.Tasks[0].Profile != "pa" {
		t.Fatalf("round 1 w1 lease = %+v, want the FIFO head (profile pa)", lr.Tasks)
	}
	completeTask(t, ts.URL, "aff-w1", lr.Tasks[0])
	lr = leaseRaw(t, ts.URL, "aff-w2", 1)
	if len(lr.Tasks) != 1 || lr.Tasks[0].Profile != "pb" {
		t.Fatalf("round 1 w2 lease = %+v, want profile pb", lr.Tasks)
	}
	completeTask(t, ts.URL, "aff-w2", lr.Tasks[0])
	collectResults(t, ch)

	// Round 2 queues pb BEFORE pa. Strict FIFO would hand w1 the pb
	// task; affinity must swap it for the pa one w1 is warm on, leaving
	// pb for w2 — warm grants on both sides.
	ch, err = c.Submit(context.Background(), []Task{profTask("b2", "pb"), profTask("a2", "pa")})
	if err != nil {
		t.Fatal(err)
	}
	lr = leaseRaw(t, ts.URL, "aff-w1", 1)
	if len(lr.Tasks) != 1 || lr.Tasks[0].Profile != "pa" {
		t.Fatalf("round 2 w1 lease = %+v, want the affine swap to profile pa", lr.Tasks)
	}
	completeTask(t, ts.URL, "aff-w1", lr.Tasks[0])
	lr = leaseRaw(t, ts.URL, "aff-w2", 1)
	if len(lr.Tasks) != 1 || lr.Tasks[0].Profile != "pb" {
		t.Fatalf("round 2 w2 lease = %+v, want profile pb", lr.Tasks)
	}
	completeTask(t, ts.URL, "aff-w2", lr.Tasks[0])
	collectResults(t, ch)

	m := srv.Metrics()
	if m.AffinityHits != 2 || m.AffinityMisses != 2 {
		t.Errorf("affinity hits/misses = %d/%d, want 2/2", m.AffinityHits, m.AffinityMisses)
	}
}

// TestBatchETAQueued checks the per-batch ETA surfaces on /metrics once
// the fleet EWMA is calibrated: one completed task seeds the average,
// and the still-queued backlog projects a positive remaining-time
// estimate sized in capacity waves.
func TestBatchETAQueued(t *testing.T) {
	srv, ts := testGrid(t)
	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("0", "x"), mkTask("1", "y"), mkTask("2", "z")}
	// Two of the three tasks never finish; cancelling the batch is what
	// lets the stream — and the test server — shut down.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch, err := c.Submit(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for range ch {
		}
	}()

	// A capacity-1 worker takes the head, runs it for a measurable
	// ~30ms, and completes — seeding avgTaskDur.
	lr := leaseRaw(t, ts.URL, "eta-w", 1)
	if len(lr.Tasks) != 1 {
		t.Fatalf("leased %d tasks, want 1", len(lr.Tasks))
	}
	time.Sleep(30 * time.Millisecond)
	completeTask(t, ts.URL, "eta-w", lr.Tasks[0])

	m := srv.Metrics()
	if len(m.Batches) != 1 {
		t.Fatalf("metrics list %d batches, want 1: %+v", len(m.Batches), m.Batches)
	}
	b := m.Batches[0]
	if b.Pending != 2 || b.Queued != 2 || b.Running != 0 {
		t.Errorf("batch shape = pending %d queued %d running %d, want 2/2/0", b.Pending, b.Queued, b.Running)
	}
	// Two queued tasks through one capacity-1 worker = two waves on top
	// of the ~30ms EWMA; anything positive proves the projection wired
	// through.
	if b.EtaMS <= 0 {
		t.Errorf("batch ETA = %dms, want > 0", b.EtaMS)
	}
}

// TestSpeculation drives a straggler end to end: a two-slot worker
// takes two tasks and finishes one fast (calibrating the EWMA), then
// sits on the other while heartbeating. The reaper must re-queue the
// straggler speculatively, refuse to hand it back to the worker already
// running it, and grant it to a second worker — whose completion is
// delivered exactly once while the original's heartbeats stay
// tolerated, never declared stale.
func TestSpeculation(t *testing.T) {
	srv, ts := testGrid(t)
	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("fast", "quick"), mkTask("slow", "straggler")}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}

	lr := leaseRaw(t, ts.URL, "spec-w1", 2)
	if len(lr.Tasks) != 2 {
		t.Fatalf("leased %d tasks, want 2", len(lr.Tasks))
	}
	var fast, slow Task
	for _, tk := range lr.Tasks {
		if tk.Hash == tasks[0].Hash {
			fast = tk
		} else {
			slow = tk
		}
	}
	completeTask(t, ts.URL, "spec-w1", fast)

	// The straggler's worker stays alive at load 1/2, reporting interval
	// progress on every beat. Any Stale verdict for the straggler before
	// we stop beating is a bug — the original attempt must be tolerated,
	// not evicted.
	var staleSeen atomic.Int64
	hbStop := make(chan struct{})
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-hbStop:
				return
			case <-tick.C:
				hr, err := postHeartbeat(ts.URL, heartbeatRequest{
					Worker: "spec-w1", Tasks: []string{slow.ID}, InFlight: 1,
					Progress: []TaskProgress{{ID: slow.ID, Uops: 10, Total: 100}}})
				if err == nil && len(hr.Stale) > 0 {
					staleSeen.Add(1)
				}
			}
		}
	}()
	hbStopped := false
	stopHB := func() {
		if hbStopped {
			return
		}
		hbStopped = true
		close(hbStop)
		<-hbDone
	}
	defer stopHB()

	// With spec-w1 the only live worker, the straggler must NOT be
	// speculated no matter how long it runs: the copy is never granted
	// back to its own worker, so it could only starve in the queue —
	// and mute the original's progress relay while it did.
	time.Sleep(400 * time.Millisecond)
	if n := srv.Metrics().Speculated; n != 0 {
		t.Fatalf("speculated %d tasks with no second worker", n)
	}

	// Register an idle second worker WITHOUT leaving a poll open: a
	// zero-wait fully-loaded lease makes it known, a heartbeat then
	// reports the slot free. Speculation now has somewhere to run.
	if lr := leaseRawLoad(t, ts.URL, "spec-w2", 1, 1, 0); len(lr.Tasks) != 0 {
		t.Fatalf("loaded registration lease granted tasks: %+v", lr.Tasks)
	}
	heartbeatRaw(t, ts.URL, heartbeatRequest{Worker: "spec-w2"})

	deadline := time.Now().Add(10 * time.Second)
	for srv.Metrics().Speculated == 0 {
		if time.Now().After(deadline) {
			t.Fatal("straggler never speculated")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The original attempt is still the only execution alive; its
	// progress (riding the tolerated heartbeats) must keep flowing to
	// the server while the copy waits in the queue.
	p0 := srv.Metrics().ProgressUpdates
	time.Sleep(120 * time.Millisecond)
	if p1 := srv.Metrics().ProgressUpdates; p1 <= p0 {
		t.Errorf("progress relay went quiet during speculation (%d -> %d)", p0, p1)
	}

	// The speculated copy must NOT come back to spec-w1 (it is still
	// running the original); its lease poll has to come up empty.
	if again := leaseRaw(t, ts.URL, "spec-w1", 2); len(again.Tasks) != 0 {
		t.Fatalf("speculated straggler re-granted to its own worker: %+v", again.Tasks)
	}

	// The idle second worker gets the copy at the next attempt number.
	var stolen leaseResponse
	for time.Now().Before(deadline) {
		if stolen = leaseRaw(t, ts.URL, "spec-w2", 1); len(stolen.Tasks) == 1 {
			break
		}
	}
	if len(stolen.Tasks) != 1 || stolen.Tasks[0].Hash != slow.Hash {
		t.Fatalf("second worker lease = %+v, want the straggler", stolen.Tasks)
	}
	if stolen.Tasks[0].Attempt != slow.Attempt+1 {
		t.Errorf("speculated attempt = %d, want %d", stolen.Tasks[0].Attempt, slow.Attempt+1)
	}

	// Stop the original's heartbeats BEFORE completing: after delivery
	// the task is forgotten and a late beat would legitimately read
	// stale.
	stopHB()
	if n := staleSeen.Load(); n != 0 {
		t.Errorf("original worker's heartbeats declared stale %d times during speculation", n)
	}

	completeTask(t, ts.URL, "spec-w2", stolen.Tasks[0])
	got := collectResults(t, ch)
	if len(got) != 2 {
		t.Fatalf("got %d results, want 2", len(got))
	}
	if tr := got["slow"]; tr.Err != "" || !bytes.Equal(tr.Payload, tasks[1].Payload) {
		t.Fatalf("straggler result drifted: err=%q payload=%s", tr.Err, tr.Payload)
	}
	if m := srv.Metrics(); m.Speculated == 0 {
		t.Errorf("metrics lost the speculation count: %+v", m)
	}
}
