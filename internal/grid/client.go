package grid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Client submits task batches to a grid server and decodes the NDJSON
// result stream.
type Client struct {
	// Server is the job server address (BaseURL rules apply).
	Server string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit posts a batch and returns a channel of its results in
// completion order (cache hits first, since the server answers them
// before any simulation runs). Unless ctx is cancelled, every submitted
// task ID receives exactly one TaskResult — a result stream that dies
// early (server crash, connection cut) yields synthetic error results
// for the tasks still outstanding — and then the channel closes.
// Cancelling ctx tears the connection down, which is how batch
// cancellation propagates to the server; the channel still closes
// promptly, so ranging until close never leaks.
func (c *Client) Submit(ctx context.Context, tasks []Task) (<-chan TaskResult, error) {
	body, err := json.Marshal(batchRequest{Jobs: tasks})
	if err != nil {
		return nil, fmt.Errorf("grid: encoding batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, BaseURL(c.Server)+pathBatch, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, fmt.Errorf("grid: submitting batch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, fmt.Errorf("grid: submitting batch: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	out := make(chan TaskResult)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		outstanding := make(map[string]bool, len(tasks))
		for _, t := range tasks {
			outstanding[t.ID] = true
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var tr TaskResult
			if err := json.Unmarshal(line, &tr); err != nil {
				continue // tolerate a torn trailing line; the tail check below reports it
			}
			delete(outstanding, tr.ID)
			select {
			case out <- tr:
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil || len(outstanding) == 0 {
			return
		}
		// The stream ended before every task reported: synthesize failures
		// so callers still see one result per task.
		msg := "grid: result stream ended early"
		if err := sc.Err(); err != nil {
			msg = fmt.Sprintf("%s: %v", msg, err)
		}
		ids := make([]string, 0, len(outstanding))
		for id := range outstanding {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			select {
			case out <- TaskResult{ID: id, Err: msg}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, nil
}

// Metrics fetches the server's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(c.Server)+pathMetrics, nil)
	if err != nil {
		return m, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return m, fmt.Errorf("grid: fetching metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("grid: fetching metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("grid: decoding metrics: %w", err)
	}
	return m, nil
}
