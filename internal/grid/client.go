package grid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Client submits task batches to a grid server and decodes the NDJSON
// result stream.
type Client struct {
	// Server is the job server address (BaseURL rules apply).
	Server string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit posts a batch and returns a channel of its results in
// completion order (cache hits first, since the server answers them
// before any simulation runs). Unless ctx is cancelled, every submitted
// task ID receives exactly one TaskResult — a result stream that dies
// early (server crash, connection cut) yields synthetic error results
// for the tasks still outstanding — and then the channel closes.
// Cancelling ctx tears the connection down, which is how batch
// cancellation propagates to the server; the channel still closes
// promptly, so ranging until close never leaks.
func (c *Client) Submit(ctx context.Context, tasks []Task) (<-chan TaskResult, error) {
	ch, _, err := c.SubmitStream(ctx, tasks, nil)
	return ch, err
}

// BatchHandle addresses a live submitted batch on its server, for
// stopping individual jobs early.
type BatchHandle struct {
	c  *Client
	id string
}

// Stop ends the named jobs (the batch's own task IDs) early: each gets
// a final TaskResult with Err = TaskStoppedError on the stream, and jobs
// no other batch is waiting on are cancelled at their worker — the
// existing per-task cancellation path, so an early stop frees the
// worker slot instead of letting the simulation run to waste. Stopping
// an unknown or already-finished ID is a no-op. Safe for concurrent use.
func (h *BatchHandle) Stop(ctx context.Context, ids ...string) error {
	if h == nil || len(ids) == 0 {
		return nil
	}
	body, err := json.Marshal(cancelRequest{Batch: h.id, IDs: ids})
	if err != nil {
		return fmt.Errorf("grid: encoding cancel: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, BaseURL(h.c.Server)+pathCancel, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.c.client().Do(req)
	if err != nil {
		return fmt.Errorf("grid: stopping jobs: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("grid: stopping jobs: %s", resp.Status)
	}
	return nil
}

// SubmitStream is Submit plus the observability leg: when onProgress is
// non-nil the batch subscribes to interval progress, and every progress
// event is delivered to onProgress — serially, from the stream-reading
// goroutine, so it must return quickly — while final results flow on the
// returned channel as usual. Progress and results interleave on one
// stream read by one goroutine, so a caller must keep draining the
// result channel while waiting for progress: blocking results delivery
// also blocks every later progress event. The BatchHandle stops
// individual jobs early; it is valid as soon as SubmitStream returns
// (progress events can fire before then — a Stop from inside onProgress
// must wait for the handle, see WithGridProgress for the packaged
// pattern).
func (c *Client) SubmitStream(ctx context.Context, tasks []Task, onProgress func(TaskProgress)) (<-chan TaskResult, *BatchHandle, error) {
	body, err := json.Marshal(batchRequest{Jobs: tasks, Progress: onProgress != nil})
	if err != nil {
		return nil, nil, fmt.Errorf("grid: encoding batch: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, BaseURL(c.Server)+pathBatch, bytes.NewReader(body))
	if err != nil {
		return nil, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client().Do(req)
	if err != nil {
		return nil, nil, fmt.Errorf("grid: submitting batch: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		return nil, nil, fmt.Errorf("grid: submitting batch: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	handle := &BatchHandle{c: c, id: resp.Header.Get(batchHeader)}

	out := make(chan TaskResult)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		outstanding := make(map[string]bool, len(tasks))
		for _, t := range tasks {
			outstanding[t.ID] = true
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var tr TaskResult
			if err := json.Unmarshal(line, &tr); err != nil {
				continue // tolerate a torn trailing line; the tail check below reports it
			}
			if tr.Progress != nil {
				// An interim event: the task still owes its final result.
				if onProgress != nil {
					onProgress(*tr.Progress)
				}
				continue
			}
			delete(outstanding, tr.ID)
			select {
			case out <- tr:
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil || len(outstanding) == 0 {
			return
		}
		// The stream ended before every task reported: synthesize failures
		// so callers still see one result per task.
		msg := "grid: result stream ended early"
		if err := sc.Err(); err != nil {
			msg = fmt.Sprintf("%s: %v", msg, err)
		}
		ids := make([]string, 0, len(outstanding))
		for id := range outstanding {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			select {
			case out <- TaskResult{ID: id, Err: msg}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, handle, nil
}

// PeerStatus fetches a federation member's load snapshot (identity,
// known peers, queue depth, stealable tasks, free capacity). Against a
// bare unfederated Server the endpoint still answers, with Self and
// Peers empty.
func (c *Client) PeerStatus(ctx context.Context) (PeerStatus, error) {
	var st PeerStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(c.Server)+pathPeerStatus, nil)
	if err != nil {
		return st, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return st, fmt.Errorf("grid: fetching peer status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("grid: fetching peer status: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("grid: decoding peer status: %w", err)
	}
	return st, nil
}

// Metrics fetches the server's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(c.Server)+pathMetrics, nil)
	if err != nil {
		return m, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return m, fmt.Errorf("grid: fetching metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("grid: fetching metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("grid: decoding metrics: %w", err)
	}
	return m, nil
}
