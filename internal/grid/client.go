package grid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	neturl "net/url"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Backoff shapes how a Client retries admission refusals (HTTP 429 from
// a tenant's rate limit or quota, 503 from server-wide overload). Each
// retry waits the server's Retry-After hint plus a uniformly random
// jitter drawn from an exponentially growing window, and at most
// MaxConcurrent of the client's submissions may be in their
// retry-and-resubmit phase at once — together those keep a fleet of
// refused clients from re-converging on the server as a thundering
// herd. The zero value means the defaults.
type Backoff struct {
	// Base sizes the first jitter window (default 100ms); it doubles
	// each retry up to Max (default 5s).
	Base time.Duration
	Max  time.Duration
	// Retries bounds resubmissions after the first attempt (default 8).
	Retries int
	// MaxConcurrent bounds how many submissions may be retrying at once
	// (default 2); the rest wait for a slot before their backoff sleep.
	MaxConcurrent int
}

func (b Backoff) withDefaults() Backoff {
	if b.Base <= 0 {
		b.Base = 100 * time.Millisecond
	}
	if b.Max <= 0 {
		b.Max = 5 * time.Second
	}
	if b.Retries <= 0 {
		b.Retries = 8
	}
	if b.MaxConcurrent <= 0 {
		b.MaxConcurrent = 2
	}
	return b
}

// Client submits task batches to a grid server and decodes the NDJSON
// result stream.
type Client struct {
	// Server is the job server address (BaseURL rules apply).
	Server string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
	// ClientID is the tenant identity sent as the X-Grid-Client header;
	// empty means the server's shared anonymous tenant.
	ClientID string
	// Trace annotates every batch this client submits with trace context
	// (the X-Grid-Trace header). The federation sets a steal origin here
	// when re-submitting stolen work, so the hop is recorded in the
	// thief's trace ring; ordinary clients leave it empty.
	Trace string
	// Backoff shapes admission-refusal retries (zero value = defaults).
	Backoff Backoff
	// PeerSecret signs requests to the authenticated peer seam (today
	// only PeerStatus needs it) with the federation's shared secret; on
	// a server without WithPeerSecret it is simply ignored. The client
	// and worker endpoints never require it.
	PeerSecret string
	// Rand seeds the retry jitter; nil uses a time-seeded private
	// source. Tests inject a seeded one for deterministic schedules.
	Rand *rand.Rand

	randMu   sync.Mutex
	rng      *rand.Rand
	gateOnce sync.Once
	gate     chan struct{}
}

func (c *Client) client() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// jitter draws uniformly from [0, d).
func (c *Client) jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return 0
	}
	c.randMu.Lock()
	defer c.randMu.Unlock()
	if c.rng == nil {
		if c.Rand != nil {
			c.rng = c.Rand
		} else {
			c.rng = rand.New(rand.NewSource(time.Now().UnixNano()))
		}
	}
	return time.Duration(c.rng.Int63n(int64(d)))
}

// retryGate is the thundering-herd bound: a buffered-channel semaphore
// sized to Backoff.MaxConcurrent, held from just before a retry's
// backoff sleep until its resubmission has been answered.
func (c *Client) retryGate() chan struct{} {
	c.gateOnce.Do(func() {
		c.gate = make(chan struct{}, c.Backoff.withDefaults().MaxConcurrent)
	})
	return c.gate
}

// Submit posts a batch and returns a channel of its results in
// completion order (cache hits first, since the server answers them
// before any simulation runs). Unless ctx is cancelled, every submitted
// task ID receives exactly one TaskResult — a result stream that dies
// early (server crash, connection cut) yields synthetic error results
// for the tasks still outstanding — and then the channel closes.
// Cancelling ctx tears the connection down, which is how batch
// cancellation propagates to the server; the channel still closes
// promptly, so ranging until close never leaks.
func (c *Client) Submit(ctx context.Context, tasks []Task) (<-chan TaskResult, error) {
	ch, _, err := c.SubmitStream(ctx, tasks, nil)
	return ch, err
}

// BatchHandle addresses a live submitted batch on its server, for
// stopping individual jobs early.
type BatchHandle struct {
	c  *Client
	id string
}

// Stop ends the named jobs (the batch's own task IDs) early: each gets
// a final TaskResult with Err = TaskStoppedError on the stream, and jobs
// no other batch is waiting on are cancelled at their worker — the
// existing per-task cancellation path, so an early stop frees the
// worker slot instead of letting the simulation run to waste. Stopping
// an unknown or already-finished ID is a no-op. Safe for concurrent use.
func (h *BatchHandle) Stop(ctx context.Context, ids ...string) error {
	if h == nil || len(ids) == 0 {
		return nil
	}
	body, err := json.Marshal(cancelRequest{Batch: h.id, IDs: ids})
	if err != nil {
		return fmt.Errorf("grid: encoding cancel: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, BaseURL(h.c.Server)+pathCancel, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.c.client().Do(req)
	if err != nil {
		return fmt.Errorf("grid: stopping jobs: %w", err)
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("grid: stopping jobs: %s", resp.Status)
	}
	return nil
}

// SubmitStream is Submit plus the observability leg: when onProgress is
// non-nil the batch subscribes to interval progress, and every progress
// event is delivered to onProgress — serially, from the stream-reading
// goroutine, so it must return quickly — while final results flow on the
// returned channel as usual. Progress and results interleave on one
// stream read by one goroutine, so a caller must keep draining the
// result channel while waiting for progress: blocking results delivery
// also blocks every later progress event. The BatchHandle stops
// individual jobs early; it is valid as soon as SubmitStream returns
// (progress events can fire before then — a Stop from inside onProgress
// must wait for the handle, see WithGridProgress for the packaged
// pattern).
func (c *Client) SubmitStream(ctx context.Context, tasks []Task, onProgress func(TaskProgress)) (<-chan TaskResult, *BatchHandle, error) {
	body, err := json.Marshal(batchRequest{Jobs: tasks, Progress: onProgress != nil})
	if err != nil {
		return nil, nil, fmt.Errorf("grid: encoding batch: %w", err)
	}
	resp, err := c.postBatch(ctx, body)
	if err != nil {
		return nil, nil, err
	}
	handle := &BatchHandle{c: c, id: resp.Header.Get(batchHeader)}

	out := make(chan TaskResult)
	go func() {
		defer close(out)
		defer resp.Body.Close()
		outstanding := make(map[string]bool, len(tasks))
		for _, t := range tasks {
			outstanding[t.ID] = true
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
		for sc.Scan() {
			line := bytes.TrimSpace(sc.Bytes())
			if len(line) == 0 {
				continue
			}
			var tr TaskResult
			if err := json.Unmarshal(line, &tr); err != nil {
				continue // tolerate a torn trailing line; the tail check below reports it
			}
			if tr.Progress != nil {
				// An interim event: the task still owes its final result.
				if onProgress != nil {
					onProgress(*tr.Progress)
				}
				continue
			}
			delete(outstanding, tr.ID)
			select {
			case out <- tr:
			case <-ctx.Done():
				return
			}
		}
		if ctx.Err() != nil || len(outstanding) == 0 {
			return
		}
		// The stream ended before every task reported: synthesize failures
		// so callers still see one result per task.
		msg := "grid: result stream ended early"
		if err := sc.Err(); err != nil {
			msg = fmt.Sprintf("%s: %v", msg, err)
		}
		ids := make([]string, 0, len(outstanding))
		for id := range outstanding {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			select {
			case out <- TaskResult{ID: id, Err: msg}:
			case <-ctx.Done():
				return
			}
		}
	}()
	return out, handle, nil
}

// postBatch posts one batch body, retrying admission refusals. Transport
// errors are NOT retried here — the repro dispatcher treats them as
// federation failover triggers, and retrying inside the client would
// only delay that. A 429/503 refusal marked retryable sleeps the
// server's Retry-After hint plus exponential jitter and resubmits, up to
// Backoff.Retries times, holding a retryGate slot from before the sleep
// until the resubmission is answered; non-retryable refusals (the batch
// exceeds a hard cap outright, HTTP 413) fail immediately. The attempt
// ordinal rides the X-Grid-Retry header for observability.
func (c *Client) postBatch(ctx context.Context, body []byte) (*http.Response, error) {
	bo := c.Backoff.withDefaults()
	gate := c.retryGate()
	holding := false
	release := func() {
		if holding {
			<-gate
			holding = false
		}
	}
	defer release()
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, BaseURL(c.Server)+pathBatch, bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", "application/json")
		if c.ClientID != "" {
			req.Header.Set(ClientHeader, c.ClientID)
		}
		if c.Trace != "" {
			req.Header.Set(TraceHeader, c.Trace)
		}
		req.Header.Set(retryHeader, strconv.Itoa(attempt))
		resp, err := c.client().Do(req)
		release()
		if err != nil {
			return nil, fmt.Errorf("grid: submitting batch: %w", err)
		}
		if resp.StatusCode == http.StatusOK {
			return resp, nil
		}
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		refused := resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable
		var ref batchRefusal
		retryable := false
		retryAfter := time.Duration(0)
		if json.Unmarshal(raw, &ref) == nil && ref.Error != "" {
			retryable = ref.Retryable
			retryAfter = time.Duration(ref.RetryAfterMS) * time.Millisecond
		} else if refused && resp.Header.Get("Retry-After") != "" {
			// A refusal stripped of its JSON body (an intermediary, a
			// fault) still carries the Retry-After header; trust it.
			retryable = true
		}
		if retryAfter <= 0 {
			if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
				retryAfter = time.Duration(secs) * time.Second
			}
		}
		if !refused || !retryable || attempt >= bo.Retries {
			return nil, fmt.Errorf("grid: submitting batch: %s: %s",
				resp.Status, bytes.TrimSpace(raw))
		}
		// Take a retry slot BEFORE sleeping: with the gate full, the wait
		// for a slot extends the backoff instead of stacking sleepers
		// that would all wake and resubmit together.
		select {
		case gate <- struct{}{}:
			holding = true
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		window := bo.Base << attempt
		if window > bo.Max || window <= 0 {
			window = bo.Max
		}
		if !sleepCtx(ctx, retryAfter+c.jitter(window)) {
			return nil, ctx.Err()
		}
	}
}

// PeerStatus fetches a federation member's load snapshot (identity,
// known peers, queue depth, stealable tasks, free capacity). Against a
// bare unfederated Server the endpoint still answers, with Self and
// Peers empty.
func (c *Client) PeerStatus(ctx context.Context) (PeerStatus, error) {
	var st PeerStatus
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(c.Server)+pathPeerStatus, nil)
	if err != nil {
		return st, err
	}
	if c.PeerSecret != "" {
		req.Header.Set(PeerAuthHeader,
			signPeerAuth(c.PeerSecret, http.MethodGet, pathPeerStatus, nil, time.Now()))
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return st, fmt.Errorf("grid: fetching peer status: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("grid: fetching peer status: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, fmt.Errorf("grid: decoding peer status: %w", err)
	}
	return st, nil
}

// TraceEvents fetches one trace's span events from the server's ring —
// id may be a trace ID (content hash), a server task ID, or a batch ID.
// An empty slice means the ring holds nothing for the ID (evicted or
// never seen); an error includes the tracing-disabled 404.
func (c *Client) TraceEvents(ctx context.Context, id string) ([]TraceEvent, error) {
	var resp traceResponse
	if err := c.getJSON(ctx, pathTrace+"?id="+neturl.QueryEscape(id), &resp); err != nil {
		return nil, err
	}
	return resp.Events, nil
}

// TraceList fetches the server's most recently touched trace summaries
// (limit <= 0 uses the server default).
func (c *Client) TraceList(ctx context.Context, limit int) ([]TraceSummary, error) {
	path := pathTrace
	if limit > 0 {
		path += "?limit=" + strconv.Itoa(limit)
	}
	var resp traceResponse
	if err := c.getJSON(ctx, path, &resp); err != nil {
		return nil, err
	}
	return resp.Traces, nil
}

// getJSON GETs one endpoint and decodes the JSON answer.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(c.Server)+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return fmt.Errorf("grid: fetching %s: %w", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("grid: fetching %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("grid: decoding %s: %w", path, err)
	}
	return nil
}

// Metrics fetches the server's counter snapshot.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	var m Metrics
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, BaseURL(c.Server)+pathMetrics, nil)
	if err != nil {
		return m, err
	}
	resp, err := c.client().Do(req)
	if err != nil {
		return m, fmt.Errorf("grid: fetching metrics: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return m, fmt.Errorf("grid: fetching metrics: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return m, fmt.Errorf("grid: decoding metrics: %w", err)
	}
	return m, nil
}
