package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Federation glues several grid servers into one tier. Each member
// wraps its own Server (with its own worker pool) in a Federation that
// speaks the peer protocol:
//
//   - /v1/peer/announce — membership gossip. A member periodically
//     announces its advertised URL to every peer it knows and merges
//     the peer lists it gets back, so a static -peers seed grows into
//     a full mesh and late joiners are discovered without restarts.
//   - /v1/peer/status — a load snapshot (queue depth, stealable tasks,
//     free capacity), consumed by peers deciding where to steal from.
//   - /v1/peer/steal — work stealing. An idle member asks the most
//     loaded peer for queued tasks; the victim answers with regular
//     lease grants under the worker name "peer:<thief URL>", attempt
//     tokens and all. The thief runs each stolen task through its own
//     server (a loopback batch — cache, coalescing and local workers
//     all apply), heartbeats the victim like any worker, and relays
//     the final result through /v1/complete with the stolen attempt
//     token. The victim's exactly-once discipline is untouched: first
//     success wins, stale aborts are ignored, and a thief that dies
//     just lets the lease expire and the task requeue.
//   - /v1/peer/release — steal handback. A thief whose loopback batch
//     was never admitted (its own server refused or died under it)
//     returns the lease with the stolen attempt token, and the victim
//     requeues immediately instead of waiting out the lease TTL.
//
// When the underlying Server was built WithPeerSecret, all four peer
// endpoints (plus the /v1/store tier) demand a valid X-Grid-Peer-Auth
// HMAC, and the Federation signs its own outbound peer traffic with the
// same secret — members holding different secrets refuse each other's
// gossip and never merge.
//
// The shared cache tier is the Storage seam, not the Federation: build
// every member's Server on one DiskStore directory, or on a RemoteStore
// pointing at one member, and a result banked anywhere is a cache hit
// everywhere — including for stolen tasks, whose results are banked on
// both the thief (local run) and the victim (completion relay).
//
// A Federation is an http.Handler: serve it instead of the Server (it
// delegates every non-peer path).
type Federation struct {
	self   string
	server *Server
	httpc  *http.Client
	// secret mirrors the server's peer secret (WithPeerSecret): outbound
	// peer traffic is signed with it, inbound peer paths are gated on it.
	secret string

	announceEvery time.Duration
	stealEvery    time.Duration

	mu    sync.Mutex
	peers map[string]bool

	ctx       context.Context
	cancel    context.CancelFunc
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// FederationOption configures a Federation.
type FederationOption func(*Federation)

// WithAnnounceInterval sets the membership gossip period (default 2s).
func WithAnnounceInterval(d time.Duration) FederationOption {
	return func(f *Federation) {
		if d > 0 {
			f.announceEvery = d
		}
	}
}

// WithStealInterval sets how often an idle member looks for work to
// steal (default 500ms; tests shorten it to converge fast).
func WithStealInterval(d time.Duration) FederationOption {
	return func(f *Federation) {
		if d > 0 {
			f.stealEvery = d
		}
	}
}

// NewFederation federates server under the advertised base URL self
// (the address peers and the loopback batch reach it on), seeded with
// the given peer addresses. It starts the announce and steal loops;
// call Close to stop them. The caller still owns the Server.
func NewFederation(server *Server, self string, peers []string, opts ...FederationOption) *Federation {
	f := &Federation{
		self:          BaseURL(self),
		server:        server,
		httpc:         &http.Client{Timeout: 30 * time.Second},
		secret:        server.peerSecret,
		announceEvery: 2 * time.Second,
		stealEvery:    500 * time.Millisecond,
		peers:         map[string]bool{},
	}
	for _, o := range opts {
		o(f)
	}
	for _, p := range peers {
		f.addPeer(p)
	}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	f.wg.Add(2)
	go f.announceLoop()
	go f.stealLoop()
	return f
}

// Close stops the announce and steal loops and abandons in-flight
// stolen work (the victims' leases expire and the tasks requeue). It is
// idempotent.
func (f *Federation) Close() {
	f.closeOnce.Do(f.cancel)
	f.wg.Wait()
}

// Self reports the advertised base URL.
func (f *Federation) Self() string { return f.self }

// Peers reports the known peer URLs, sorted.
func (f *Federation) Peers() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.peers))
	for p := range f.peers {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// addPeer records a peer URL, ignoring self and empties. It reports
// whether the set grew.
func (f *Federation) addPeer(addr string) bool {
	u := BaseURL(addr)
	if u == "" || u == f.self {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.peers[u] {
		return false
	}
	f.peers[u] = true
	f.server.SetPeerCount(len(f.peers))
	return true
}

// Status is the member's own load snapshot with identity and membership
// filled in.
func (f *Federation) Status() PeerStatus {
	st := f.server.Status()
	st.Self = f.self
	st.Peers = f.Peers()
	return st
}

// ServeHTTP handles the peer protocol and delegates everything else to
// the wrapped Server.
func (f *Federation) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case pathPeerAnnounce:
		if !f.server.requirePeerAuth(w, r) {
			return
		}
		var req announceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("grid: bad announce: %v", err), http.StatusBadRequest)
			return
		}
		f.addPeer(req.Peer)
		writeJSON(w, announceResponse{Peers: append(f.Peers(), f.self)})
	case pathPeerStatus:
		if !f.server.requirePeerAuth(w, r) {
			return
		}
		writeJSON(w, f.Status())
	case pathPeerSteal:
		if !f.server.requirePeerAuth(w, r) {
			return
		}
		var req stealRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("grid: bad steal: %v", err), http.StatusBadRequest)
			return
		}
		f.addPeer(req.Peer)
		tasks, ttl := f.server.StealGrant(BaseURL(req.Peer), req.Max)
		writeJSON(w, leaseResponse{Tasks: tasks, LeaseMS: ttl})
	case pathPeerRelease:
		if !f.server.requirePeerAuth(w, r) {
			return
		}
		var req releaseRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, fmt.Sprintf("grid: bad release: %v", err), http.StatusBadRequest)
			return
		}
		writeJSON(w, releaseResponse{
			Released: f.server.ReleaseStolen(req.Peer, req.ID, req.Attempt)})
	default:
		f.server.ServeHTTP(w, r)
	}
}

// announceLoop gossips membership: announce self to every known peer,
// merge the peer lists that come back. Unreachable peers stay in the
// set — a crashed member may come back, and the steal loop already
// tolerates dead peers — so a kill -9 never wedges the survivors.
func (f *Federation) announceLoop() {
	defer f.wg.Done()
	for {
		for _, p := range f.Peers() {
			var resp announceResponse
			if err := f.post(p, pathPeerAnnounce, announceRequest{Peer: f.self}, &resp); err != nil {
				continue
			}
			for _, known := range resp.Peers {
				f.addPeer(known)
			}
		}
		if !sleepCtx(f.ctx, f.announceEvery) {
			return
		}
	}
}

// stealCandidate pairs one peer URL with its load snapshot for victim
// selection.
type stealCandidate struct {
	peer   string
	status PeerStatus
}

// pickVictim chooses the steal victim among peers advertising stealable
// work: the one whose worst still-queued batch ETA is largest, so the
// stolen cycles go to the batch that will finish last and shorten the
// federation's critical path. Peers publishing no ETA (uncalibrated, or
// queue-only load with no completions yet) rank below any positive ETA
// and among themselves by stealable depth — the pre-ETA behaviour. Ties
// break by stealable depth, then lexicographically smallest URL, so
// selection is deterministic. Returns the victim URL ("" when no peer
// qualifies) and its advertised stealable count.
func pickVictim(cands []stealCandidate) (string, int) {
	victim, avail := "", 0
	var bestEta int64 = -1
	for _, c := range cands {
		if c.status.Stealable < 1 {
			continue
		}
		eta := c.status.WorstEtaMS
		better := eta > bestEta ||
			(eta == bestEta && c.status.Stealable > avail) ||
			(eta == bestEta && c.status.Stealable == avail && (victim == "" || c.peer < victim))
		if better {
			victim, avail, bestEta = c.peer, c.status.Stealable, eta
		}
	}
	return victim, avail
}

// stealLoop watches for the idle-local/loaded-peer imbalance: when this
// member has free worker capacity and an empty queue, it steals from
// the peer whose published batch ETAs say it will finish last (see
// pickVictim).
func (f *Federation) stealLoop() {
	defer f.wg.Done()
	for {
		if !sleepCtx(f.ctx, f.stealEvery) {
			return
		}
		local := f.server.Status()
		if local.FreeCapacity < 1 || local.QueueDepth > 0 {
			continue
		}
		var cands []stealCandidate
		for _, p := range f.Peers() {
			st, err := f.peerStatus(p)
			if err != nil {
				continue
			}
			cands = append(cands, stealCandidate{peer: p, status: st})
		}
		victim, avail := pickVictim(cands)
		if victim == "" {
			continue
		}
		max := local.FreeCapacity
		if max > avail {
			max = avail
		}
		var resp leaseResponse
		if err := f.post(victim, pathPeerSteal, stealRequest{Peer: f.self, Max: max}, &resp); err != nil {
			continue
		}
		if len(resp.Tasks) == 0 {
			continue
		}
		f.server.NoteStealIn(len(resp.Tasks))
		ttl := time.Duration(resp.LeaseMS) * time.Millisecond
		for _, t := range resp.Tasks {
			f.wg.Add(1)
			go f.runStolen(victim, t, ttl)
		}
	}
}

// runStolen executes one stolen task through this member's own server —
// a loopback batch, so the shared cache, coalescing and the local
// worker pool all apply — while heartbeating the victim under the
// peer worker name, and relays the final result with the stolen
// attempt token. Transport-level failures relay nothing: the victim's
// lease expires and the task requeues, which is the safe outcome.
func (f *Federation) runStolen(victim string, t Task, ttl time.Duration) {
	defer f.wg.Done()
	ctx, cancel := context.WithCancel(f.ctx)
	defer cancel()
	peerName := PeerWorkerPrefix + f.self

	// Heartbeat the victim's lease while the local run is in flight. A
	// cancelled verdict aborts the local run; stale verdicts are ignored
	// (the victim may have speculated the straggler — our eventual
	// success is still banked and still wins if first).
	hbDone := make(chan struct{})
	f.wg.Add(1)
	go func() {
		defer f.wg.Done()
		period := ttl / 3
		if period < 10*time.Millisecond {
			period = 10 * time.Millisecond
		}
		for {
			select {
			case <-hbDone:
				return
			case <-ctx.Done():
				return
			default:
			}
			var resp heartbeatResponse
			err := f.post(victim, pathHeartbeat, heartbeatRequest{Worker: peerName, Tasks: []string{t.ID}}, &resp)
			if err == nil {
				for _, id := range resp.Cancelled {
					if id == t.ID {
						cancel()
						return
					}
				}
			}
			timer := time.NewTimer(period)
			select {
			case <-hbDone:
				timer.Stop()
				return
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		}
	}()

	// The default transport, not f.httpc: a batch stream lives as long
	// as the simulation and must not be cut by the peer-RPC timeout.
	// The trace annotation records the steal hop in this member's ring
	// (the victim's task ID and hop count), so a merged trace shows the
	// job crossing the federation.
	client := &Client{Server: f.self,
		Trace: formatTraceOrigin(victim, t.ID, t.Hops)}
	ch, err := client.Submit(ctx, []Task{t})
	var final *TaskResult
	if err == nil {
		for tr := range ch {
			res := tr
			final = &res
		}
	}
	close(hbDone)
	if final == nil || strings.HasPrefix(final.Err, "grid: result stream ended early") {
		// Never ran (submit failed, cancelled, or the loopback stream
		// died): hand the lease back so the victim requeues immediately
		// instead of stranding the task until its TTL expires. The
		// release echoes the stolen attempt token — like /v1/complete —
		// so a stale handback after the lease moved on is a no-op. If
		// even the release cannot be delivered, lease expiry remains the
		// backstop.
		rel := releaseRequest{Peer: f.self, ID: t.ID, Attempt: t.Attempt}
		for attempt := 0; attempt < 3; attempt++ {
			var resp releaseResponse
			if err := f.post(victim, pathPeerRelease, rel, &resp); err == nil {
				return
			}
			if !sleepCtx(f.ctx, 200*time.Millisecond) {
				return
			}
		}
		return
	}
	comp := completeRequest{Worker: peerName, ID: t.ID, Hash: t.Hash,
		Attempt: t.Attempt, Result: final.Payload, Err: final.Err}
	// Retry like a worker: one dropped packet must not waste the run.
	for attempt := 0; attempt < 3; attempt++ {
		var resp completeResponse
		if err := f.post(victim, pathComplete, comp, &resp); err == nil {
			return
		}
		if !sleepCtx(f.ctx, 200*time.Millisecond) {
			return
		}
	}
}

func (f *Federation) peerStatus(peer string) (PeerStatus, error) {
	var st PeerStatus
	req, err := http.NewRequestWithContext(f.ctx, http.MethodGet, peer+pathPeerStatus, nil)
	if err != nil {
		return st, err
	}
	if f.secret != "" {
		req.Header.Set(PeerAuthHeader,
			signPeerAuth(f.secret, http.MethodGet, pathPeerStatus, nil, time.Now()))
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("grid: peer status: %s", resp.Status)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// post is the shared JSON POST helper of the peer protocol, addressed
// as base URL + path so the request can be signed over the exact path
// the receiver verifies.
func (f *Federation) post(base, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(f.ctx, http.MethodPost, base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if f.secret != "" {
		req.Header.Set(PeerAuthHeader,
			signPeerAuth(f.secret, http.MethodPost, path, body, time.Now()))
	}
	resp, err := f.httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("grid: %s%s: %s", base, path, resp.Status)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}
