package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/parallel"
)

// Worker pulls task leases from a grid server and runs them through Exec
// on a bounded local pool. Spawn one in-process (go w.Run(ctx)) for tests
// and examples, or as its own OS process via `helperd work`. Configure
// the fields before calling Run; they must not change afterwards.
type Worker struct {
	// Server is the job server address (BaseURL rules apply).
	Server string
	// Name identifies this worker to the server; leases, heartbeats and
	// completions are keyed by it. Defaults to host-pid.
	Name string
	// Exec runs one task payload. Required unless ExecProgress is set.
	Exec ExecFunc
	// ExecProgress, when non-nil, is used instead of Exec: it receives a
	// report callback for interval progress, and the worker relays the
	// latest snapshot per task to the server on every heartbeat.
	ExecProgress ProgressExecFunc
	// Parallel bounds concurrent task executions; < 1 means GOMAXPROCS.
	// It is also the capacity the worker reports, which caps how many
	// leases the server grants it — the load-balancing signal.
	Parallel int
	// LeaseWait is the long-poll patience per lease request (default 2s).
	LeaseWait time.Duration
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client

	base     string
	leaseTTL atomic.Int64  // ms, learned from lease responses
	hbWake   chan struct{} // nudges the heartbeat loop after a grant
	nameOnce sync.Once     // guards the host-pid default for Name

	// Graceful drain: drainCh is closed by Drain; Run then stops taking
	// new leases, finishes in-flight work (heartbeats keep flowing so the
	// leases stay renewed), posts the completions and returns nil.
	drainInit sync.Once
	drainStop sync.Once
	drainCh   chan struct{}

	mu       sync.Mutex
	cancels  map[string]context.CancelFunc
	progress map[string]TaskProgress // latest unsent snapshot per task
	inFlight atomic.Int64
	done     atomic.Uint64
	failed   atomic.Uint64
}

// completion is one finished task on its way back to the server.
type completion struct {
	id, hash string
	attempt  int
	result   []byte
	err      string
}

// drainChan lazily builds the drain signal so Drain may be called
// before, during or after Run (SIGTERM can land any time).
func (w *Worker) drainChan() chan struct{} {
	w.drainInit.Do(func() { w.drainCh = make(chan struct{}) })
	return w.drainCh
}

// Drain asks a running worker to wind down gracefully: stop taking new
// leases, finish and post everything in flight, then have Run return
// nil. The reap path of autoscaling and `helperd work`'s SIGTERM
// handler both use it — a drained worker never abandons a lease.
// Idempotent and safe from any goroutine.
func (w *Worker) Drain() {
	w.drainStop.Do(func() { close(w.drainChan()) })
}

// draining reports whether Drain has been called.
func (w *Worker) draining() bool {
	select {
	case <-w.drainChan():
		return true
	default:
		return false
	}
}

// Run pulls and executes leases until ctx is cancelled — returning
// ctx.Err() — or Drain is called, in which case it finishes in-flight
// tasks, posts their completions and returns nil. Server outages are
// retried with backoff — a worker survives its server restarting.
func (w *Worker) Run(ctx context.Context) error {
	if w.Exec == nil && w.ExecProgress == nil {
		return fmt.Errorf("grid: worker has no Exec")
	}
	w.name()
	w.base = BaseURL(w.Server)
	w.cancels = map[string]context.CancelFunc{}
	w.progress = map[string]TaskProgress{}
	w.hbWake = make(chan struct{}, 1)
	// Assume a short TTL until the first lease response teaches the real
	// one: over-beating briefly is cheap, missing a short-TTL server's
	// deadline loses leases.
	w.leaseTTL.Store(time.Second.Milliseconds())
	par := w.Parallel
	if par < 1 {
		par = runtime.GOMAXPROCS(0)
	}
	leaseWait := w.LeaseWait
	if leaseWait <= 0 {
		leaseWait = 2 * time.Second
	}

	in := make(chan Task)
	out := parallel.StreamChan(ctx, in, par, w.runTask)

	// The poster and the heartbeat loop wind down in strict order on
	// drain: the poster must finish posting completions while heartbeats
	// are still renewing the leases, so they get separate WaitGroups and
	// the heartbeat loop a dedicated stop signal instead of sharing
	// ctx.Done().
	var postWG, hbWG sync.WaitGroup
	hbStop := make(chan struct{})
	postWG.Add(1)
	go func() { // completion poster
		defer postWG.Done()
		for c := range out {
			w.postComplete(ctx, c)
		}
	}()
	hbWG.Add(1)
	go func() { // heartbeat loop
		defer hbWG.Done()
		for {
			interval := time.Duration(w.leaseTTL.Load()) * time.Millisecond / 3
			if interval < 10*time.Millisecond {
				interval = 10 * time.Millisecond
			}
			timer := time.NewTimer(interval)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-hbStop:
				timer.Stop()
				return
			case <-timer.C:
				w.heartbeat(ctx)
			case <-w.hbWake:
				// A lease was just granted (possibly with a shorter TTL
				// than assumed): renew immediately rather than risk the
				// scheduled beat landing past the new deadline.
				timer.Stop()
				w.heartbeat(ctx)
			}
		}
	}()

	// Drain aborts the in-flight long-poll lease request (but nothing
	// else): a granted-but-unread response is simply dropped and its
	// leases reassigned after the TTL, while idle drains — the common
	// case — stop waiting immediately.
	leaseCtx, cancelLease := context.WithCancel(ctx)
	defer cancelLease()
	go func() {
		select {
		case <-w.drainChan():
			cancelLease()
		case <-ctx.Done():
		}
	}()

	backoff := 100 * time.Millisecond
lease:
	for ctx.Err() == nil && !w.draining() {
		free := par - int(w.inFlight.Load())
		if free <= 0 {
			// All slots busy: nothing to ask for. The next completion
			// frees a slot within one short sleep.
			if !sleepCtx(ctx, 20*time.Millisecond) {
				break
			}
			continue
		}
		resp, err := w.lease(leaseCtx, par, leaseWait)
		if err != nil {
			if ctx.Err() != nil || w.draining() {
				break
			}
			if !sleepCtx(ctx, backoff) {
				break
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = 100 * time.Millisecond
		if resp.LeaseMS > 0 {
			w.leaseTTL.Store(resp.LeaseMS)
		}
		if len(resp.Tasks) > 0 {
			select {
			case w.hbWake <- struct{}{}:
			default:
			}
		}
		for _, t := range resp.Tasks {
			// Drop a grant for a task this worker already holds: when
			// heartbeats are delayed past the TTL the server can re-lease
			// an expired task back to its own worker, and running a second
			// copy would corrupt the per-ID bookkeeping (and waste a slot —
			// the first execution's success completes the task regardless
			// of attempt). The in-flight entry is claimed here, under the
			// grant loop, so the check can never race with runTask's own
			// registration.
			w.mu.Lock()
			if _, held := w.cancels[t.ID]; held {
				w.mu.Unlock()
				continue
			}
			// Placeholder until runTask installs the real cancel; it also
			// keeps the task in heartbeat reports while it queues for a
			// pool slot, so the lease stays renewed.
			w.cancels[t.ID] = nil
			w.mu.Unlock()
			w.inFlight.Add(1)
			select {
			case in <- t:
			case <-ctx.Done():
				w.mu.Lock()
				delete(w.cancels, t.ID)
				w.mu.Unlock()
				w.inFlight.Add(-1)
				break lease
			}
		}
	}
	close(in)
	// The pool drains (in-flight tasks finish under the live ctx), closes
	// out, and the poster posts every completion — all while heartbeats
	// keep the leases renewed. Only then may the heartbeat loop stop. On
	// a drain ctx is still nil-error, so a drained worker returns nil.
	postWG.Wait()
	close(hbStop)
	hbWG.Wait()
	return ctx.Err()
}

// runTask executes one leased task under a per-task context so a server
// cancellation notice (heartbeat response) can abort just that task.
func (w *Worker) runTask(ctx context.Context, t Task) completion {
	tctx, cancel := context.WithCancel(ctx)
	w.mu.Lock()
	w.cancels[t.ID] = cancel
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.cancels, t.ID)
		delete(w.progress, t.ID)
		w.mu.Unlock()
		cancel()
		w.inFlight.Add(-1)
	}()
	var result []byte
	var err error
	if w.ExecProgress != nil {
		result, err = w.ExecProgress(tctx, t.Payload, func(p TaskProgress) {
			p.ID, p.Hash, p.Worker = t.ID, t.Hash, w.name()
			w.mu.Lock()
			w.progress[t.ID] = p
			w.mu.Unlock()
		})
	} else {
		result, err = w.Exec(tctx, t.Payload)
	}
	c := completion{id: t.ID, hash: t.Hash, attempt: t.Attempt}
	if err != nil {
		c.err = err.Error()
		w.failed.Add(1)
	} else {
		c.result = result
		w.done.Add(1)
	}
	return c
}

// name resolves the worker's identity, defaulting to host-pid exactly
// once — Run and Healthz may race on a freshly constructed Worker, so
// the lazy write is fenced.
func (w *Worker) name() string {
	w.nameOnce.Do(func() {
		if w.Name == "" {
			host, _ := os.Hostname()
			if host == "" {
				host = "worker"
			}
			w.Name = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
	})
	return w.Name
}

// cancelTasks aborts the named in-flight tasks (server said their
// subscribers left or their leases went stale). A nil entry is a task
// still queued for a pool slot — nothing to abort yet; the server will
// repeat the notice on a later heartbeat once it is running.
func (w *Worker) cancelTasks(ids []string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, id := range ids {
		if cancel, ok := w.cancels[id]; ok && cancel != nil {
			cancel()
		}
	}
}

// heldTasks snapshots the in-flight task IDs for a heartbeat, together
// with the progress reported since the previous beat (the pending map
// drains: a task that reported nothing new sends nothing).
func (w *Worker) heldTasks() ([]string, []TaskProgress) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.cancels))
	for id := range w.cancels {
		ids = append(ids, id)
	}
	var prog []TaskProgress
	for id, p := range w.progress {
		prog = append(prog, p)
		delete(w.progress, id)
	}
	return ids, prog
}

func (w *Worker) lease(ctx context.Context, capacity int, wait time.Duration) (leaseResponse, error) {
	req := leaseRequest{
		Worker:   w.name(),
		Capacity: capacity,
		InFlight: int(w.inFlight.Load()),
		WaitMS:   int(wait.Milliseconds()),
	}
	var resp leaseResponse
	err := w.post(ctx, pathLease, req, &resp)
	return resp, err
}

func (w *Worker) heartbeat(ctx context.Context) {
	ids, prog := w.heldTasks()
	req := heartbeatRequest{
		Worker:   w.name(),
		Tasks:    ids,
		InFlight: int(w.inFlight.Load()),
		Progress: prog,
	}
	var resp heartbeatResponse
	if err := w.post(ctx, pathHeartbeat, req, &resp); err != nil {
		// Transient; the next beat retries. Progress drained for this
		// beat is lost, which the lossy-progress contract allows.
		return
	}
	w.cancelTasks(resp.Cancelled)
	w.cancelTasks(resp.Stale)
}

// postComplete reports a finished task, retrying a few times so one
// dropped packet does not discard a finished simulation (the lease
// reaper would eventually re-run it, but that wastes a whole execution).
func (w *Worker) postComplete(ctx context.Context, c completion) {
	req := completeRequest{Worker: w.name(), ID: c.id, Hash: c.hash,
		Attempt: c.attempt, Result: c.result, Err: c.err}
	for attempt := 0; attempt < 3; attempt++ {
		var resp completeResponse
		// The hash is the task's trace ID; echoing it as the trace header
		// keeps even a completion the server has forgotten the task for
		// attributable to its trace.
		if err := w.postTrace(ctx, pathComplete, c.hash, req, &resp); err == nil {
			return
		}
		if !sleepCtx(ctx, 200*time.Millisecond) {
			return
		}
	}
}

// post is the shared JSON POST helper; postTrace additionally stamps the
// task's trace context on the request.
func (w *Worker) post(ctx context.Context, path string, in, out any) error {
	return w.postTrace(ctx, path, "", in, out)
}

func (w *Worker) postTrace(ctx context.Context, path, trace string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.base+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(TraceHeader, trace)
	}
	client := w.HTTP
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("grid: %s: %s: %s", path, resp.Status, bytes.TrimSpace(msg))
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Healthz returns an http.Handler serving the worker's load as JSON —
// the same shape the worker reports to the server on every lease, for
// anything (an operator, an external balancer) that wants to scrape it.
func (w *Worker) Healthz() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		par := w.Parallel
		if par < 1 {
			par = runtime.GOMAXPROCS(0)
		}
		writeJSON(rw, map[string]any{
			"ok":        true,
			"name":      w.name(),
			"capacity":  par,
			"in_flight": w.inFlight.Load(),
			"completed": w.done.Load(),
			"failed":    w.failed.Load(),
		})
	})
}

// sleepCtx sleeps d or until ctx is done; false means ctx ended first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-timer.C:
		return true
	}
}
