package grid

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the server's counter snapshot, served as JSON on /metrics.
type Metrics struct {
	// Submitted counts jobs accepted across all batches; each is exactly
	// one of CacheHits (served from the store), Coalesced (joined a task
	// already in flight, or a within-batch duplicate of another job's
	// hash) or CacheMisses (created a new task). One rare admission race
	// — a job's store miss landing just as another batch queues the same
	// hash — counts a job as both a miss and a coalesce.
	Submitted   uint64 `json:"submitted"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	// Completed/Failed count task executions reported by workers (cache
	// hits never reach either).
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// LeasePollEmpty counts lease polls answered with zero tasks (the
	// long poll timed out or the server closed before work arrived) —
	// the idle side of the lease-wait histogram, which only sees grants.
	LeasePollEmpty uint64 `json:"lease_poll_empty"`
	// LeasesGranted counts tasks handed to workers; Reassigned counts
	// leases that expired without a heartbeat and went back to the queue
	// (worker death recovery); Abandoned counts tasks dropped because
	// every subscriber went away — a disconnected batch client, or an
	// explicit early stop (those are additionally counted in
	// EarlyStopped).
	LeasesGranted uint64 `json:"leases_granted"`
	Reassigned    uint64 `json:"reassigned"`
	Abandoned     uint64 `json:"abandoned"`
	// ProgressUpdates counts interval progress snapshots accepted from
	// worker heartbeats; EarlyStopped counts jobs clients stopped early
	// through the cancel endpoint.
	ProgressUpdates uint64 `json:"progress_updates"`
	EarlyStopped    uint64 `json:"early_stopped"`
	// Federation counters: StealsOut counts tasks peers stole from this
	// server's queue, StealsIn counts tasks this server's federation
	// stole from peers and ran locally.
	StealsOut uint64 `json:"steals_out"`
	StealsIn  uint64 `json:"steals_in"`
	// StealReturns counts stolen leases handed back through the peer
	// release endpoint — the thief's loopback handoff failed and the
	// task went straight back on this server's queue instead of waiting
	// out its lease TTL.
	StealReturns uint64 `json:"steal_returns"`
	// PeerAuthRejected counts requests to the authenticated peer seam
	// (announce/status/steal/release and the /v1/store endpoints)
	// refused 403: missing, malformed, stale or mismatched
	// X-Grid-Peer-Auth signatures.
	PeerAuthRejected uint64 `json:"peer_auth_rejected"`
	// Affinity scheduling outcomes, counted only for profiled tasks: a
	// hit is a lease granted to a worker that recently ran the task's
	// profile (its caches are warm), a miss is any other profiled grant.
	AffinityHits   uint64 `json:"affinity_hits"`
	AffinityMisses uint64 `json:"affinity_misses"`
	// Speculated counts straggler re-leases: a leased task projected to
	// run far past the fleet's typical duration was additionally queued
	// for an idle worker, first completion winning.
	Speculated uint64 `json:"speculated"`
	// Admission control: Rejected counts whole-batch 429 refusals
	// (per-tenant rate limits and pending-work quotas, summed over
	// tenants — the per-reason split is in Tenants), Overloaded counts
	// 503s from the server-wide WithMaxQueue backpressure bound.
	Rejected   uint64 `json:"rejected"`
	Overloaded uint64 `json:"overloaded"`
	// Point-in-time gauges. Workers counts simulation workers only
	// (federated peers holding stolen leases are excluded); Peers is the
	// known federation peer count, 0 on an unfederated server.
	QueueDepth   int `json:"queue_depth"`
	Leased       int `json:"leased"`
	Workers      int `json:"workers"`
	Peers        int `json:"peers"`
	StoreEntries int `json:"store_entries"`
	// Federated store tier counters, all zero on a purely local store.
	// StorePutsDropped counts background replica/remote Puts shed
	// because a peer was down or its bounded put queue overflowed (the
	// local copy is unaffected); StoreRemoteHits counts Gets answered by
	// a shard peer after a local miss; StoreReadRepairs counts the
	// re-replications those remote hits triggered. StoreReplication and
	// StoreShardMembers gauge the sharded store's configuration and live
	// membership.
	StorePutsDropped  uint64 `json:"store_puts_dropped,omitempty"`
	StoreRemoteHits   uint64 `json:"store_remote_hits,omitempty"`
	StoreReadRepairs  uint64 `json:"store_read_repairs,omitempty"`
	StoreReplication  int    `json:"store_replication,omitempty"`
	StoreShardMembers int    `json:"store_shard_members,omitempty"`
	// Running is the latest interval progress snapshot of each leased
	// task that has reported one (IDs are server-side task IDs).
	Running []TaskProgress `json:"running,omitempty"`
	// Batches is the progress-driven ETA of every connected batch
	// stream, coarsest first (see BatchETA).
	Batches []BatchETA `json:"batches,omitempty"`
	// Tenants is the per-tenant slice of the multi-tenant surface:
	// admission counters, live queued/running gauges and quota holds,
	// sorted by tenant ID.
	Tenants []TenantMetrics `json:"tenants,omitempty"`
	// LeaseWaits summarizes queue latency — enqueue (or requeue) to
	// lease grant — of every grant so far; the full histogram is on the
	// Prometheus endpoint.
	LeaseWaits *LatencySummary `json:"lease_waits,omitempty"`
	// Trace is the tracer's ring occupancy when tracing is enabled.
	Trace *TraceStats `json:"trace,omitempty"`
	// Autoscaler is the supervisor's latest self-report when one is
	// attached (see Autoscaler).
	Autoscaler *AutoscaleStats `json:"autoscaler,omitempty"`
}

// LatencySummary is the JSON face of the lease-wait histogram.
type LatencySummary struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// latencyBucketsMS are the upper bounds (milliseconds) of the lease-wait
// histogram exported in Prometheus text form; the implicit +Inf bucket
// follows.
var latencyBucketsMS = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}

// BatchETA is the server's live estimate for one connected batch
// stream: how many of its jobs are still pending (split into queued and
// running) and roughly how long until the whole batch finishes. The
// estimate leans on worker progress snapshots for running tasks and on
// an EWMA of completed task durations for queued ones; it is operator
// guidance, not a promise.
type BatchETA struct {
	ID      string `json:"id"`
	Pending int    `json:"pending"`
	Queued  int    `json:"queued"`
	Running int    `json:"running"`
	EtaMS   int64  `json:"eta_ms"`
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLeaseTTL sets how long a granted lease survives without a
// heartbeat before the task is reassigned. The default is 5s; tests use
// short TTLs to exercise reassignment quickly.
func WithLeaseTTL(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.leaseTTL = d
		}
	}
}

// WithMaxAttempts bounds how many times a task may be leased before the
// server gives up and fails it (defence against a job that kills every
// worker it lands on). The default is 5.
func WithMaxAttempts(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxAttempts = n
		}
	}
}

// WithStorage plugs a result store into the server: the in-memory
// default forgets on restart, an OpenDiskStore-backed one makes the
// cache durable (restart the server on the same directory and every
// already-simulated point is a hit), and a RemoteStore makes this
// server a client of a peer's cache tier (the federation's shared
// store). The server does not close the store; the caller owns its
// lifecycle.
func WithStorage(st Storage) ServerOption {
	return func(s *Server) {
		if st != nil {
			s.store = st
		}
	}
}

// WithMaxHops bounds how many times federated peers may steal one task
// from each other (Task.Hops): a task at the bound is no longer
// stealable and must run where it sits. The default is 2; work stealing
// balances load in one or two moves, anything more is ping-pong.
func WithMaxHops(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxHops = n
		}
	}
}

// WithLogger attaches a structured logger: admission refusals,
// overload backpressure, lease reassignments and task failures are
// logged at the levels an operator would expect (warn for refusals and
// reassignments, error for failures). The default is no logging — the
// embedded in-process grids (tests, `sweep -grid :0`) stay quiet.
func WithLogger(l *slog.Logger) ServerOption {
	return func(s *Server) { s.log = l }
}

// WithTrace sizes the server's lifecycle trace ring (see Tracer). The
// default is DefaultTraceCapacity; n < 0 disables tracing entirely
// (recording is allocation-free either way, but a disabled tracer is a
// nil-check and nothing else).
func WithTrace(n int) ServerOption {
	return func(s *Server) { s.traceCap = n }
}

// WithTraceSpill streams every trace event to w as NDJSON (helperd
// points this next to the DiskStore dir). The writer outlives the
// server; Close flushes what is buffered.
func WithTraceSpill(w io.Writer) ServerOption {
	return func(s *Server) { s.traceSpill = w }
}

// WithSpeculation toggles straggler re-leasing (default on): when the
// queue is empty, workers sit idle and a leased task is projected — from
// its own progress snapshots against the fleet's EWMA task duration —
// to run far past typical, the task is additionally re-queued so a fast
// worker can race it. First completion wins; the slow attempt's late
// answer is banked as usual. Deterministic payloads make the duplicate
// execution byte-identical, so speculation is invisible to clients.
func WithSpeculation(on bool) ServerOption {
	return func(s *Server) { s.speculation = on }
}

// WithPeerSecret arms shared-secret authentication on the peer seam:
// every request to the peer protocol (announce/status/steal/release)
// and the /v1/store endpoints must carry a valid X-Grid-Peer-Auth HMAC
// (see PeerAuthHeader) or is rejected 403 and counted. The attached
// Federation signs its outbound peer traffic with the same secret. An
// empty secret leaves the seam open (the pre-auth behaviour). The
// client and worker endpoints are never gated — they face the
// operator's own tools, not other servers.
func WithPeerSecret(secret string) ServerOption {
	return func(s *Server) { s.peerSecret = secret }
}

// Server is the grid job server: an http.Handler exposing the batch,
// lease, heartbeat, complete, metrics and healthz endpoints over one
// priority work queue and one content-addressed result store. Close
// stops the lease reaper; in-flight batch handlers unwind promptly.
type Server struct {
	leaseTTL    time.Duration
	maxAttempts int
	maxHops     int
	speculation bool
	maxQueue    int
	log         *slog.Logger
	traceCap    int
	traceSpill  io.Writer
	// peerSecret arms peer-seam authentication (see WithPeerSecret);
	// empty means open. Written only by options, read-only afterwards.
	peerSecret string
	// tracer records lifecycle span events; set once in NewServer (nil
	// when disabled) and safe to use without s.mu — its own mutex is a
	// leaf lock, taken under s.mu but never the other way around.
	tracer *Tracer

	// Tenant configuration is written only by options (before the
	// server serves) and read under mu afterwards.
	tenantLimits   map[string]TenantLimits
	tenantDefaults TenantLimits

	mu      sync.Mutex
	store   Storage
	byID    map[string]*task
	byHash  map[string]*task
	queue   *fairQueue
	tenants map[string]*tenantState
	seq     uint64
	// wake is closed and replaced whenever work is queued, releasing
	// long-polling lease requests.
	wake    chan struct{}
	workers map[string]*workerState
	// batches tracks connected /v1/batch streams by server-assigned ID,
	// the namespace /v1/cancel addresses early stops through.
	batches  map[string]*batch
	batchSeq uint64
	// avgTaskDur is an EWMA of completed task wall durations (first
	// lease to completion), the fleet-typical time that calibrates batch
	// ETAs and straggler detection. Zero until the first completion.
	avgTaskDur time.Duration

	submitted, coalesced      uint64
	completed, failed         uint64
	leasesGranted, reassigned uint64
	abandoned                 uint64
	progressUpdates           uint64
	earlyStopped              uint64
	stealsOut, stealsIn       uint64
	stealReturns              uint64
	affinityHits              uint64
	affinityMisses            uint64
	speculatedCount           uint64
	overloaded                uint64
	// Lease-wait histogram: time from (re)enqueue to grant, in the
	// latencyBucketsMS buckets plus +Inf, with sum/count/max for the
	// JSON summary.
	latBuckets [14]uint64
	latSumMS   float64
	latMaxMS   float64
	latCount   uint64
	// leasePollEmpty counts lease polls answered without work. Atomic
	// because the empty answer is decided after s.mu is released.
	leasePollEmpty atomic.Uint64
	// authRejects counts 403s from the peer-auth gate. Atomic because
	// rejections happen before any handler takes s.mu.
	authRejects atomic.Uint64
	// stageHists are the per-tenant per-stage latency histograms
	// (stageOrder names the stages) behind grid_stage_ms and
	// TenantMetrics.Stages.
	stageHists map[string]map[string]*stageHist
	// autoStats is the attached Autoscaler's latest self-report (pushed
	// via SetAutoscaleStats, so metrics never take two locks).
	autoStats *AutoscaleStats
	// peerCount mirrors the attached Federation's live peer set size for
	// the Peers gauge (SetPeerCount).
	peerCount  int
	closed     chan struct{}
	closeOnce  sync.Once
	reaperDone chan struct{}
}

// workerState is the server's view of one polling worker, fed by its
// lease and heartbeat load reports.
type workerState struct {
	lastSeen time.Time
	capacity int
	inFlight int
	// profiles is the worker's recent locality history, most recent
	// last: the profile keys of its latest lease grants, consulted by
	// affinity scheduling so recurring jobs land where their caches
	// (trace windows, predictor state, OS page cache) are warm.
	profiles []string
}

// affinityHistory bounds a worker's remembered profile keys.
const affinityHistory = 8

// sawProfile reports whether the worker recently ran profile.
func (w *workerState) sawProfile(profile string) bool {
	for _, p := range w.profiles {
		if p == profile {
			return true
		}
	}
	return false
}

// noteProfile records a grant's profile in the worker's history.
func (w *workerState) noteProfile(profile string) {
	if profile == "" {
		return
	}
	for i, p := range w.profiles {
		if p == profile {
			// Refresh recency instead of duplicating.
			w.profiles = append(append(w.profiles[:i], w.profiles[i+1:]...), profile)
			return
		}
	}
	w.profiles = append(w.profiles, profile)
	if len(w.profiles) > affinityHistory {
		w.profiles = w.profiles[len(w.profiles)-affinityHistory:]
	}
}

// NewServer builds a Server and starts its lease reaper. Call Close when
// done with it.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		leaseTTL:     5 * time.Second,
		maxAttempts:  5,
		maxHops:      2,
		speculation:  true,
		store:        NewStore(),
		byID:         map[string]*task{},
		byHash:       map[string]*task{},
		tenantLimits: map[string]TenantLimits{},
		tenants:      map[string]*tenantState{},
		wake:         make(chan struct{}),
		workers:      map[string]*workerState{},
		batches:      map[string]*batch{},
		stageHists:   map[string]map[string]*stageHist{},
		closed:       make(chan struct{}),
		reaperDone:   make(chan struct{}),
	}
	// The fair queue resolves weights through the live tenant table; it is
	// only ever consulted under s.mu, like the table itself.
	s.queue = newFairQueue(func(tenant string) float64 {
		if ts := s.tenants[tenant]; ts != nil {
			return ts.limits.weight()
		}
		return 1
	})
	for _, o := range opts {
		o(s)
	}
	if s.traceCap >= 0 {
		s.tracer = NewTracer(s.traceCap)
		if s.traceSpill != nil {
			s.tracer.SetSpill(s.traceSpill)
		}
	}
	go s.reap()
	return s
}

// Close stops the reaper and releases every blocked handler. It is
// idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.reaperDone
	s.tracer.Close()
}

// Tracer exposes the lifecycle trace ring (nil when disabled).
func (s *Server) Tracer() *Tracer { return s.tracer }

// The span-tree stage names of the per-tenant latency histograms:
// admission (batch arrival to enqueue, store lookup included), queue
// wait lives in the lease-wait histogram, first_progress (lease to the
// first interval snapshot), exec (last lease to completion) and e2e
// (batch arrival to completion).
var stageOrder = []string{"admission", "first_progress", "exec", "e2e"}

// stageHist is one per-tenant per-stage latency histogram, sharing the
// lease-wait bucket bounds. Mutated under s.mu.
type stageHist struct {
	buckets [14]uint64
	sumMS   float64
	maxMS   float64
	count   uint64
}

func (h *stageHist) observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	h.buckets[i]++
	h.sumMS += ms
	h.count++
	if ms > h.maxMS {
		h.maxMS = ms
	}
}

func (h *stageHist) summary() LatencySummary {
	return LatencySummary{Count: h.count, MeanMS: h.sumMS / float64(h.count), MaxMS: h.maxMS}
}

// observeStageLocked folds one stage latency into the tenant's
// histogram set.
func (s *Server) observeStageLocked(tenant, stage string, d time.Duration) {
	byStage := s.stageHists[tenant]
	if byStage == nil {
		byStage = map[string]*stageHist{}
		s.stageHists[tenant] = byStage
	}
	h := byStage[stage]
	if h == nil {
		h = &stageHist{}
		byStage[stage] = h
	}
	h.observe(d)
}

// Store exposes the content-addressed result store (tests and embedders
// may pre-seed or inspect it).
func (s *Server) Store() Storage { return s.store }

// Metrics returns a counter snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsLocked()
}

func (s *Server) metricsLocked() Metrics {
	entries, hits, misses := s.store.Stats()
	m := Metrics{
		Submitted:       s.submitted,
		CacheHits:       hits,
		CacheMisses:     misses,
		Coalesced:       s.coalesced,
		Completed:       s.completed,
		Failed:          s.failed,
		LeasePollEmpty:  s.leasePollEmpty.Load(),
		LeasesGranted:   s.leasesGranted,
		Reassigned:      s.reassigned,
		Abandoned:       s.abandoned,
		ProgressUpdates: s.progressUpdates,
		EarlyStopped:    s.earlyStopped,
		StealsOut:       s.stealsOut,
		StealsIn:        s.stealsIn,
		AffinityHits:    s.affinityHits,
		AffinityMisses:  s.affinityMisses,
		Speculated:      s.speculatedCount,
		Overloaded:      s.overloaded,
		Peers:           s.peerCount,
		StoreEntries:    entries,
		StealReturns:    s.stealReturns,
	}
	m.PeerAuthRejected = s.authRejects.Load()
	if dp, ok := s.store.(interface{ DroppedPuts() uint64 }); ok {
		m.StorePutsDropped = dp.DroppedPuts()
	}
	if ss, ok := s.store.(*ShardedStore); ok {
		sh := ss.ShardStats()
		m.StoreRemoteHits = sh.RemoteHits
		m.StoreReadRepairs = sh.ReadRepairs
		m.StoreReplication = sh.Replication
		m.StoreShardMembers = sh.Members
	}
	// Per-tenant queued/running gauges: each live subscription counts for
	// the batch's tenant (a coalesced task can serve several tenants at
	// once, and each holds quota for its own subscription).
	type gauges struct{ queued, running int }
	liveSubs := map[*tenantState]*gauges{}
	gaugeFor := func(ts *tenantState) *gauges {
		g := liveSubs[ts]
		if g == nil {
			g = &gauges{}
			liveSubs[ts] = g
		}
		return g
	}
	for _, t := range s.byID {
		if t.worker != "" {
			m.Leased++
			if t.progress != nil {
				m.Running = append(m.Running, *t.progress)
			}
		} else if !t.cancelled {
			m.QueueDepth++
		}
		for _, sub := range t.subs {
			if ts := sub.batch.tenant; ts != nil {
				if t.worker != "" {
					gaugeFor(ts).running++
				} else {
					gaugeFor(ts).queued++
				}
			}
		}
	}
	for _, ts := range s.tenants {
		m.Rejected += ts.rejectedRate + ts.rejectedQuota
		tm := TenantMetrics{
			ID:            ts.id,
			Weight:        ts.limits.weight(),
			Admitted:      ts.admitted,
			RejectedRate:  ts.rejectedRate,
			RejectedQuota: ts.rejectedQuota,
			PendingBytes:  ts.pendingBytes,
			Completed:     ts.completed,
			Failed:        ts.failed,
		}
		if g := liveSubs[ts]; g != nil {
			tm.Queued, tm.Running = g.queued, g.running
		}
		if byStage := s.stageHists[ts.id]; len(byStage) > 0 {
			tm.Stages = map[string]LatencySummary{}
			for stage, h := range byStage {
				tm.Stages[stage] = h.summary()
			}
		}
		m.Tenants = append(m.Tenants, tm)
	}
	sort.Slice(m.Tenants, func(i, j int) bool { return m.Tenants[i].ID < m.Tenants[j].ID })
	if s.latCount > 0 {
		m.LeaseWaits = &LatencySummary{
			Count:  s.latCount,
			MeanMS: s.latSumMS / float64(s.latCount),
			MaxMS:  s.latMaxMS,
		}
	}
	if s.autoStats != nil {
		st := *s.autoStats
		m.Autoscaler = &st
	}
	if s.tracer != nil {
		st := s.tracer.Stats()
		m.Trace = &st
	}
	// Task IDs are "t<seq>": order by the numeric suffix so t2 precedes
	// t10 (creation order), falling back to lexicographic for any ID a
	// future format produces.
	sort.Slice(m.Running, func(i, j int) bool {
		a, aerr := strconv.Atoi(strings.TrimPrefix(m.Running[i].ID, "t"))
		b, berr := strconv.Atoi(strings.TrimPrefix(m.Running[j].ID, "t"))
		if aerr == nil && berr == nil {
			return a < b
		}
		return m.Running[i].ID < m.Running[j].ID
	})
	now := time.Now()
	cutoff := now.Add(-3 * s.leaseTTL)
	for name, w := range s.workers {
		if w.lastSeen.After(cutoff) && !strings.HasPrefix(name, PeerWorkerPrefix) {
			m.Workers++
		}
	}
	for id := range s.batches {
		m.Batches = append(m.Batches, s.batchEtaLocked(s.batches[id], now))
	}
	sort.Slice(m.Batches, func(i, j int) bool { return m.Batches[i].ID < m.Batches[j].ID })
	return m
}

// batchEtaLocked estimates one connected batch's remaining wall time:
// the slowest running task's projected remainder (from its progress
// snapshots, or the fleet EWMA when it has not reported yet), and —
// when jobs are still queued — however many fleet-capacity waves of the
// EWMA duration the queue backlog amounts to, whichever is larger.
func (s *Server) batchEtaLocked(b *batch, now time.Time) BatchETA {
	eta := BatchETA{ID: b.id}
	avg := s.avgTaskDur
	var longest time.Duration
	for _, t := range s.byID {
		subscribed := false
		for _, sub := range t.subs {
			if sub.batch == b {
				subscribed = true
				break
			}
		}
		if !subscribed {
			continue
		}
		eta.Pending++
		if t.worker == "" {
			eta.Queued++
			continue
		}
		eta.Running++
		remaining := avg - now.Sub(t.leasedAt)
		if p := t.progress; p != nil && p.Total > 0 && p.Uops > 0 {
			elapsed := now.Sub(t.leasedAt)
			if elapsed > 0 {
				frac := float64(p.Uops) / float64(p.Total)
				remaining = time.Duration(float64(elapsed) * (1 - frac) / frac)
			}
		}
		if remaining > longest {
			longest = remaining
		}
	}
	if eta.Queued > 0 && avg > 0 {
		capacity := s.fleetCapacityLocked()
		if capacity < 1 {
			capacity = 1
		}
		waves := (eta.Queued + capacity - 1) / capacity
		if queueEta := avg + time.Duration(waves)*avg; queueEta > longest {
			longest = queueEta
		}
	}
	eta.EtaMS = longest.Milliseconds()
	if eta.EtaMS < 0 {
		eta.EtaMS = 0
	}
	return eta
}

// fleetCapacityLocked sums the reported capacity of live simulation
// workers; freeCapacityLocked the slots they are not using. Peer holders
// never report capacity, so both naturally exclude them.
func (s *Server) fleetCapacityLocked() int {
	total := 0
	cutoff := time.Now().Add(-3 * s.leaseTTL)
	for _, w := range s.workers {
		if w.lastSeen.After(cutoff) {
			total += w.capacity
		}
	}
	return total
}

func (s *Server) freeCapacityLocked() int {
	free := 0
	cutoff := time.Now().Add(-3 * s.leaseTTL)
	for _, w := range s.workers {
		if w.lastSeen.After(cutoff) && w.capacity > w.inFlight {
			free += w.capacity - w.inFlight
		}
	}
	return free
}

// freeCapacityElsewhereLocked reports whether a live worker other than
// name has a free slot — speculation's precondition: the copy is never
// granted back to the original worker, so a second worker must exist
// to race it.
func (s *Server) freeCapacityElsewhereLocked(name string) bool {
	cutoff := time.Now().Add(-3 * s.leaseTTL)
	for n, w := range s.workers {
		if n != name && w.lastSeen.After(cutoff) && w.capacity > w.inFlight {
			return true
		}
	}
	return false
}

// SetAutoscaleStats publishes the attached Autoscaler's latest
// self-report into /metrics. Pushed by the autoscaler tick (rather than
// pulled by metrics) so the server lock and the autoscaler lock never
// nest in both orders.
func (s *Server) SetAutoscaleStats(st AutoscaleStats) {
	s.mu.Lock()
	s.autoStats = &st
	s.mu.Unlock()
}

// recordLeaseWaitLocked folds one enqueue-to-grant wait into the lease
// latency histogram.
func (s *Server) recordLeaseWaitLocked(wait time.Duration) {
	if wait < 0 {
		wait = 0
	}
	ms := float64(wait) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMS) && ms > latencyBucketsMS[i] {
		i++
	}
	s.latBuckets[i]++
	s.latSumMS += ms
	s.latCount++
	if ms > s.latMaxMS {
		s.latMaxMS = ms
	}
}

// SetPeerCount mirrors the attached Federation's live peer count into
// the Peers gauge.
func (s *Server) SetPeerCount(n int) {
	s.mu.Lock()
	s.peerCount = n
	s.mu.Unlock()
}

// NoteStealIn counts federation-stolen tasks this server absorbed.
func (s *Server) NoteStealIn(n int) {
	s.mu.Lock()
	s.stealsIn += uint64(n)
	s.mu.Unlock()
}

// Status is the federation-facing load snapshot (see PeerStatus).
func (s *Server) Status() PeerStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := PeerStatus{
		FreeCapacity: s.freeCapacityLocked(),
		StealsOut:    s.stealsOut,
		StealsIn:     s.stealsIn,
	}
	entries, _, _ := s.store.Stats()
	st.StoreEntries = entries
	cutoff := time.Now().Add(-3 * s.leaseTTL)
	for name, w := range s.workers {
		if w.lastSeen.After(cutoff) && !strings.HasPrefix(name, PeerWorkerPrefix) {
			st.Workers++
		}
	}
	for _, t := range s.byID {
		switch {
		case t.worker != "":
			st.Leased++
		case !t.cancelled:
			st.QueueDepth++
			if t.hops < s.maxHops {
				st.Stealable++
			}
		}
	}
	if st.Stealable > st.QueueDepth-st.FreeCapacity {
		st.Stealable = st.QueueDepth - st.FreeCapacity
	}
	if st.Stealable < 0 {
		st.Stealable = 0
	}
	// Publish the worst still-queued batch ETA so thieves can steal from
	// the batch that will finish last (see PeerStatus.WorstEtaMS). Only
	// batches with queued work count — stealing cannot shorten a batch
	// whose every task is already running somewhere.
	now := time.Now()
	for id := range s.batches {
		eta := s.batchEtaLocked(s.batches[id], now)
		if eta.Queued > 0 && eta.EtaMS > st.WorstEtaMS {
			st.WorstEtaMS = eta.EtaMS
		}
	}
	return st
}

// ServeHTTP dispatches the wire protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case pathBatch:
		s.handleBatch(w, r)
	case pathLease:
		s.handleLease(w, r)
	case pathHeartbeat:
		s.handleHeartbeat(w, r)
	case pathComplete:
		s.handleComplete(w, r)
	case pathCancel:
		s.handleCancel(w, r)
	case pathStoreGet:
		if !s.requirePeerAuth(w, r) {
			return
		}
		s.handleStoreGet(w, r)
	case pathStorePut:
		if !s.requirePeerAuth(w, r) {
			return
		}
		s.handleStorePut(w, r)
	case pathStoreStat:
		if !s.requirePeerAuth(w, r) {
			return
		}
		entries, hits, misses := s.peerStore().Stats()
		writeJSON(w, storeStat{Entries: entries, Hits: hits, Misses: misses})
	case pathMetrics:
		if wantsProm(r) {
			s.servePromMetrics(w)
			return
		}
		writeJSON(w, s.Metrics())
	case pathMetricsProm:
		s.servePromMetrics(w)
	case pathTrace:
		s.handleTrace(w, r)
	case pathDashboard:
		serveDashboard(w)
	case pathPeerStatus:
		// A bare Server answers its own load snapshot so `helperd
		// federate` works against unfederated members too; the Federation
		// intercepts this path to fill in Self and Peers.
		if !s.requirePeerAuth(w, r) {
			return
		}
		writeJSON(w, s.Status())
	case pathHealthz:
		m := s.Metrics()
		writeJSON(w, map[string]any{
			"ok":      true,
			"queue":   m.QueueDepth,
			"leased":  m.Leased,
			"workers": m.Workers,
		})
	default:
		http.NotFound(w, r)
	}
}

// requirePeerAuth gates one request behind the shared-secret HMAC when
// WithPeerSecret armed it: a missing or invalid X-Grid-Peer-Auth header
// answers 403 and bumps the rejection counter. The body is read in full
// for MAC verification and restored for the handler behind the gate.
func (s *Server) requirePeerAuth(w http.ResponseWriter, r *http.Request) bool {
	if s.peerSecret == "" {
		return true
	}
	var body []byte
	if r.Body != nil && r.Body != http.NoBody {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, maxStorePayload+4096))
		if err != nil {
			http.Error(w, fmt.Sprintf("grid: peer auth: %v", err), http.StatusBadRequest)
			return false
		}
		r.Body = io.NopCloser(bytes.NewReader(body))
	}
	err := verifyPeerAuth(s.peerSecret, r.Header.Get(PeerAuthHeader),
		r.Method, requestAuthPath(r), body, time.Now())
	if err != nil {
		s.authRejects.Add(1)
		if s.log != nil {
			s.log.Warn("peer auth rejected", "path", r.URL.Path,
				"remote", r.RemoteAddr, "err", err)
		}
		http.Error(w, "grid: peer auth required", http.StatusForbidden)
		return false
	}
	return true
}

// handleTrace serves the tracer's ring: ?id=<trace|task|batch> answers
// that trace's events oldest-first, no id answers recent trace
// summaries (?limit= caps them, default 50). 404 when tracing is
// disabled, so clients can tell "off" from "empty".
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		http.Error(w, "grid: tracing disabled", http.StatusNotFound)
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		writeJSON(w, traceResponse{Events: s.tracer.Events(id)})
		return
	}
	limit := 50
	if v := r.URL.Query().Get("limit"); v != "" {
		if n, err := strconv.Atoi(v); err == nil {
			limit = n
		}
	}
	writeJSON(w, traceResponse{Traces: s.tracer.Recent(limit)})
}

// storeStat is the /v1/store/stat wire shape, mirroring Storage.Stats.
type storeStat struct {
	Entries int    `json:"entries"`
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
}

// peerStore is the Storage the /v1/store endpoints expose: this
// member's LOCAL tier only. When the server's store is a ShardedStore,
// answering a peer's lookup through the sharded Get would fan the
// request back out to the other owners — members asking members asking
// members, a mutual recursion that wedges every lookup until the
// timeouts trip (and a put echo that re-replicates every replica).
// A peer asking this member wants this member's slice, nothing more;
// the asking side already walks the owner list itself.
func (s *Server) peerStore() Storage {
	if ss, ok := s.store.(*ShardedStore); ok {
		return ss.Local()
	}
	return s.store
}

// handleStoreGet serves one stored payload raw: 200 with the bytes on a
// hit, 404 on a miss. Together with handleStorePut it turns this
// server's Storage into the federation's shared cache tier — a peer
// built with a RemoteStore pointing here reads and banks results in the
// same store this server answers cache hits from.
func (s *Server) handleStoreGet(w http.ResponseWriter, r *http.Request) {
	hash := r.URL.Query().Get("hash")
	if hash == "" {
		http.Error(w, "grid: store get without hash", http.StatusBadRequest)
		return
	}
	payload, ok := s.peerStore().Get(hash)
	if !ok {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(payload)
}

// handleStorePut banks one successful result payload under the given
// hash (first write wins, like every Storage).
func (s *Server) handleStorePut(w http.ResponseWriter, r *http.Request) {
	hash := r.URL.Query().Get("hash")
	if hash == "" {
		http.Error(w, "grid: store put without hash", http.StatusBadRequest)
		return
	}
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxStorePayload))
	if err != nil {
		http.Error(w, fmt.Sprintf("grid: store put: %v", err), http.StatusBadRequest)
		return
	}
	s.peerStore().Put(hash, payload)
	w.WriteHeader(http.StatusNoContent)
}

// maxStorePayload bounds one remote store write (a Result JSON is a few
// KB; 64 MB leaves room for any future payload without letting a rogue
// client exhaust memory).
const maxStorePayload = 64 << 20

// subscribeLocked attaches one (batch, job ID) subscription to a task,
// charging the payload bytes against the batch tenant's pending quota
// (released by subscriber.release on delivery or drop).
func (s *Server) subscribeLocked(t *task, b *batch, jobID string) {
	n := int64(len(t.payload))
	t.subs = append(t.subs, subscriber{batch: b, jobID: jobID, bytes: n})
	if ts := b.tenant; ts != nil {
		ts.pendingJobs++
		ts.pendingBytes += n
	}
}

// refuseBatch answers an admission refusal: the structured JSON body
// plus, when a retry can succeed, a Retry-After header in whole seconds
// (ceiling, so a 10ms token deficit still reads as 1 for header-only
// clients; grid.Client uses the precise RetryAfterMS).
func refuseBatch(w http.ResponseWriter, status int, ref batchRefusal) {
	if ref.Retryable {
		secs := (ref.RetryAfterMS + 999) / 1000
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(ref)
}

// handleBatch accepts a job batch and streams its results back as
// NDJSON, one TaskResult per line, flushed as they land. The request
// context is the batch's lifetime: when the client disconnects, queued
// work is abandoned and leased work is cancelled at the owning worker's
// next heartbeat.
//
// Admission control runs first, all-or-nothing over the whole batch:
// the submitting tenant (X-Grid-Client, defaulted) must clear the
// server-wide queue bound (503) and its own token bucket and pending
// quotas (429) before any job is looked at. The check deliberately
// counts every non-empty job — including ones that would turn out to be
// cache hits — because admission is the cheap gate in front of the
// cache, not behind it.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	admittedAt := time.Now()
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad batch: %v", err), http.StatusBadRequest)
		return
	}
	tenantID := r.Header.Get(ClientHeader)
	if tenantID == "" {
		tenantID = DefaultTenant
	}
	// A federated thief re-submitting stolen work annotates the steal
	// origin in X-Grid-Trace; the hop lands in this server's ring so a
	// merged trace shows where the job came from.
	origin, stolenIn := parseTraceOrigin(r.Header.Get(TraceHeader))
	admitJobs := 0
	var admitBytes int64
	for _, j := range req.Jobs {
		if len(j.Payload) > 0 {
			admitJobs++
			admitBytes += int64(len(j.Payload))
		}
	}
	b := &batch{ch: make(chan TaskResult, len(req.Jobs))}
	if req.Progress {
		// Progress sends are non-blocking (lossy); the buffer just smooths
		// bursts between the handler's stream writes.
		b.prog = make(chan TaskProgress, 64)
	}
	var immediate []TaskResult
	pending := 0

	// coalesceLocked joins a job onto an already-pending task. Coalescing
	// is checked BEFORE the store: a completing task banks its result
	// outside the lock and unpends under it, so a hash can momentarily be
	// in both — joining the pending task is correct either way (the
	// completion fans out to every subscriber), and a coalesced job is
	// neither a cache hit nor a miss, keeping the Metrics invariant that
	// every submitted job is exactly one of hit/coalesce/miss (a rare
	// admission race, noted below, can add a spurious miss).
	coalesceLocked := func(t *task, jobID string) {
		pending++
		// Reviving a cancelled lease requeues it: its worker may already
		// have aborted on the cancellation notice, and if it hasn't, the
		// duplicate grant is harmless — the first completion wins.
		if t.cancelled && t.worker != "" {
			t.worker = ""
			t.enqueuedAt = time.Now()
			s.queue.Push(t)
		}
		t.cancelled = false
		s.subscribeLocked(t, b, jobID)
		s.coalesced++
	}

	// Phase 1, under the lock: reject empties, coalesce onto pending
	// tasks, and collect the rest for store lookups — deduplicated by
	// hash, so a batch repeating a job costs one lookup (its duplicates
	// count as Coalesced, like any other join onto shared work).
	type lookup struct {
		first Task     // carries the payload and priority
		dups  []string // job IDs of within-batch duplicates of the hash
		hash  string
	}
	var lookups []lookup
	lookupIdx := map[string]int{}
	s.mu.Lock()
	ts := s.tenantLocked(tenantID)
	b.tenant = ts
	if admitJobs > 0 {
		if s.maxQueue > 0 && s.queue.Len()+admitJobs > s.maxQueue {
			// Server-wide backpressure: conservative (cache hits count
			// against the bound too), but overload is exactly when the
			// cheap refusal must win over the precise one.
			s.overloaded++
			depth := s.queue.Len()
			retry := s.avgTaskDur
			s.mu.Unlock()
			if retry <= 0 {
				retry = time.Second
			}
			if s.log != nil {
				s.log.Warn("batch refused: server overloaded",
					"tenant", tenantID, "jobs", admitJobs, "queue", depth, "max_queue", s.maxQueue)
			}
			refuseBatch(w, http.StatusServiceUnavailable, batchRefusal{
				Error: fmt.Sprintf("grid: server overloaded (queue %d + batch %d jobs > max %d)",
					depth, admitJobs, s.maxQueue),
				Reason:       "overload",
				Tenant:       tenantID,
				RetryAfterMS: retry.Milliseconds(),
				Retryable:    true,
			})
			return
		}
		ok, kind, reason, retryAfter, retryable := ts.admitLocked(time.Now(), admitJobs, admitBytes)
		if !ok {
			if kind == "rate" {
				ts.rejectedRate++
			} else {
				ts.rejectedQuota++
			}
			s.mu.Unlock()
			if s.log != nil {
				s.log.Warn("batch refused: tenant limit",
					"tenant", tenantID, "kind", kind, "reason", reason,
					"jobs", admitJobs, "bytes", admitBytes, "retry_after", retryAfter)
			}
			status := http.StatusTooManyRequests
			if !retryable {
				// Waiting cannot help: the batch exceeds a hard cap outright.
				status = http.StatusRequestEntityTooLarge
			}
			refuseBatch(w, status, batchRefusal{
				Error:        "grid: " + reason,
				Reason:       kind,
				Tenant:       tenantID,
				RetryAfterMS: retryAfter.Milliseconds(),
				Retryable:    retryable,
			})
			return
		}
		ts.admitted += uint64(admitJobs)
	}
	s.batchSeq++
	b.id = fmt.Sprintf("b%d", s.batchSeq)
	s.batches[b.id] = b
	for _, j := range req.Jobs {
		if len(j.Payload) == 0 {
			// Rejected before admission: not Submitted, so the invariant
			// Submitted = CacheHits + Coalesced + CacheMisses holds.
			immediate = append(immediate, TaskResult{ID: j.ID, Err: "grid: empty payload"})
			continue
		}
		s.submitted++
		hash := j.Hash
		if hash == "" {
			hash = HashBytes(j.Payload)
		}
		s.tracer.Record(TraceEvent{Trace: hash, Stage: StageAdmitted,
			Batch: b.id, Tenant: tenantID})
		if stolenIn {
			s.tracer.Record(TraceEvent{Trace: hash, Stage: StageStolen,
				Batch: b.id, Peer: origin.peer, Hop: origin.hop,
				Task: origin.task, Detail: "in"})
		}
		if t, ok := s.byHash[hash]; ok {
			coalesceLocked(t, j.ID)
			continue
		}
		if i, ok := lookupIdx[hash]; ok {
			lookups[i].dups = append(lookups[i].dups, j.ID)
			s.coalesced++
			continue
		}
		lookupIdx[hash] = len(lookups)
		lookups = append(lookups, lookup{first: j, hash: hash})
	}
	s.mu.Unlock()

	// Phase 2, outside the lock: store lookups. On a disk-backed store
	// each Get is a file read plus checksum verification — holding s.mu
	// across a large cached batch would stall every lease, heartbeat and
	// completion for the whole scan.
	hits := make([][]byte, len(lookups))
	hit := make([]bool, len(lookups))
	for i, l := range lookups {
		hits[i], hit[i] = s.store.Get(l.hash)
	}

	// Phase 3, back under the lock: answer hits, queue misses. A miss
	// whose hash became pending while unlocked coalesces here (its store
	// miss was already counted — the one soft spot in the exactly-one-of
	// invariant, and the only cost of keeping disk I/O out of the lock).
	s.mu.Lock()
	for i, l := range lookups {
		if hit[i] {
			s.tracer.Record(TraceEvent{Trace: l.hash, Stage: StageCacheHit,
				Batch: b.id, Tenant: tenantID})
			immediate = append(immediate, TaskResult{ID: l.first.ID, Hash: l.hash, Cached: true, Payload: hits[i]})
			for _, id := range l.dups {
				immediate = append(immediate, TaskResult{ID: id, Hash: l.hash, Cached: true, Payload: hits[i]})
			}
			continue
		}
		if t, ok := s.byHash[l.hash]; ok {
			coalesceLocked(t, l.first.ID)
			for _, id := range l.dups {
				s.subscribeLocked(t, b, id)
				pending++
			}
			continue
		}
		pending++
		s.seq++
		now := time.Now()
		t := &task{
			id:         fmt.Sprintf("t%d", s.seq),
			hash:       l.hash,
			payload:    l.first.Payload,
			priority:   l.first.Priority,
			seq:        s.seq,
			tenant:     ts.id,
			profile:    l.first.Profile,
			hops:       l.first.Hops,
			enqueuedAt: now,
			admittedAt: admittedAt,
		}
		s.tracer.Record(TraceEvent{Trace: l.hash, Stage: StageEnqueued,
			Task: t.id, Batch: b.id})
		s.observeStageLocked(ts.id, "admission", now.Sub(admittedAt))
		s.subscribeLocked(t, b, l.first.ID)
		for _, id := range l.dups {
			s.subscribeLocked(t, b, id)
			pending++
		}
		s.byID[t.id] = t
		s.byHash[l.hash] = t
		s.queue.Push(t)
	}
	if pending > 0 {
		s.wakeLocked()
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.batches, b.id)
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(batchHeader, b.id)
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flush := func() {
		bw.Flush()
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	for _, res := range immediate {
		enc.Encode(res)
	}
	flush()
	for delivered := 0; delivered < pending; delivered++ {
		select {
		case res := <-b.ch:
			enc.Encode(res)
			flush()
		case p := <-b.prog:
			// An interim event: the task still owes its final line, so
			// the delivered count stands. Receiving on a nil b.prog (a
			// batch that never asked for progress) blocks forever, which
			// is exactly the disabled behaviour.
			enc.Encode(TaskResult{ID: p.ID, Hash: p.Hash, Progress: &p})
			flush()
			delivered--
		case <-r.Context().Done():
			s.dropBatch(b)
			return
		case <-s.closed:
			return
		}
	}
}

// dropBatch removes every subscription of a departed batch. Tasks left
// with no subscribers are marked cancelled: queued ones are skipped (and
// discarded) at the next grant, leased ones are reported cancelled to
// their worker on its next heartbeat.
func (s *Server) dropBatch(b *batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropSubsLocked(
		func(*task, subscriber) bool { return true },
		b, nil)
}

// dropSubsLocked removes batch b's subscriptions matched by drop,
// invoking onDrop (if non-nil) for each removed one, and applies the
// shared no-subscribers-left transition: the task is marked cancelled —
// discarded at the next grant if queued, aborted at its worker's next
// heartbeat if leased — and counted abandoned. Both the full-batch
// disconnect and the per-job early stop funnel through here so the
// transition can never drift between them.
func (s *Server) dropSubsLocked(drop func(*task, subscriber) bool, b *batch, onDrop func(*task, subscriber)) {
	for _, t := range s.byID {
		kept := t.subs[:0]
		for _, sub := range t.subs {
			if sub.batch == b && drop(t, sub) {
				sub.release()
				if onDrop != nil {
					onDrop(t, sub)
				}
				continue
			}
			kept = append(kept, sub)
		}
		t.subs = kept
		if len(t.subs) == 0 && !t.cancelled {
			t.cancelled = true
			s.abandoned++
		}
	}
}

// handleLease grants up to capacity-in_flight queued tasks to a worker,
// long-polling up to wait_ms when the queue is empty.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad lease: %v", err), http.StatusBadRequest)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		s.touchWorkerLocked(req.Worker, req.Capacity, req.InFlight)
		tasks := s.grantLocked(req)
		wake := s.wake
		s.mu.Unlock()
		if len(tasks) > 0 || !time.Now().Before(deadline) {
			if len(tasks) == 0 {
				// The long poll ran dry: the lease-wait histogram only
				// sees grants, so idle polling is invisible without this.
				s.leasePollEmpty.Add(1)
			}
			writeJSON(w, leaseResponse{Tasks: tasks, LeaseMS: s.leaseTTL.Milliseconds()})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-s.closed:
			timer.Stop()
			s.leasePollEmpty.Add(1)
			writeJSON(w, leaseResponse{LeaseMS: s.leaseTTL.Milliseconds()})
			return
		}
		timer.Stop()
	}
}

// grantLocked pops queued tasks for a worker, honouring its reported
// free capacity and discarding abandoned tasks it encounters. Affinity:
// when the popped task's profile is cold on this worker but an
// equal-priority queued task's profile is warm, the two swap — affinity
// only ever reorders within a priority level, so the strict
// priority-then-FIFO grant order of unprofiled work is untouched.
func (s *Server) grantLocked(req leaseRequest) []Task {
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	k := capacity - req.InFlight
	ws := s.workers[req.Worker]
	var out []Task
	var setAside []*task
	now := time.Now()
	for len(out) < k && s.queue.Len() > 0 {
		t := s.queue.Pop()
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		// Never hand a speculated straggler back to the worker already
		// running its original attempt: that worker would drop the
		// duplicate grant and nobody would race the slow copy.
		if t.speculated && t.prevWorker == req.Worker {
			setAside = append(setAside, t)
			continue
		}
		if ws != nil && t.profile != "" && !ws.sawProfile(t.profile) {
			if alt := s.affineAltLocked(ws, t, req.Worker); alt != nil {
				s.queue.Push(t)
				t = alt
			}
		}
		if t.profile != "" {
			if ws != nil && ws.sawProfile(t.profile) {
				s.affinityHits++
			} else {
				s.affinityMisses++
			}
			if ws != nil {
				ws.noteProfile(t.profile)
			}
		}
		// The grant is real: charge the tenant's fair share and record
		// the queue wait. Discarded and set-aside pops above cost nothing.
		s.queue.Charge(t)
		if !t.enqueuedAt.IsZero() {
			s.recordLeaseWaitLocked(now.Sub(t.enqueuedAt))
		}
		t.worker = req.Worker
		t.deadline = now.Add(s.leaseTTL)
		t.attempts++
		t.leasedAt = now
		if t.firstLeased.IsZero() {
			t.firstLeased = now
		}
		s.leasesGranted++
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageLeased,
			Task: t.id, Worker: req.Worker, Attempt: t.attempts})
		out = append(out, Task{ID: t.id, Hash: t.hash, Priority: t.priority,
			Payload: t.payload, Attempt: t.attempts, Profile: t.profile, Hops: t.hops})
	}
	for _, t := range setAside {
		s.queue.Push(t)
	}
	return out
}

// affineAltLocked finds the earliest queued task of t's priority whose
// profile the worker recently ran and removes it from the queue (the
// caller grants it in t's place). Nil when no affine candidate exists.
func (s *Server) affineAltLocked(ws *workerState, t *task, worker string) *task {
	var best *task
	s.queue.each(func(c *task) {
		if c.priority != t.priority || c.profile == "" || !ws.sawProfile(c.profile) {
			return
		}
		if c.cancelled && len(c.subs) == 0 {
			return
		}
		if c.speculated && c.prevWorker == worker {
			return
		}
		if best == nil || c.seq < best.seq {
			best = c
		}
	})
	if best != nil {
		s.queue.Remove(best)
	}
	return best
}

// StealGrant leases up to max queued tasks to a federated peer (worker
// name PeerWorkerPrefix+peer), honouring the hop bound and granting only
// the queue surplus local free capacity cannot absorb imminently. The
// returned tasks carry their attempt tokens — the thief heartbeats and
// completes through the normal worker endpoints, so stolen work keeps
// the exactly-once discipline. The second result is the lease TTL in
// milliseconds.
func (s *Server) StealGrant(peer string, max int) ([]Task, int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ttl := s.leaseTTL.Milliseconds()
	surplus := 0
	for _, t := range s.byID {
		if t.worker == "" && !t.cancelled {
			surplus++
		}
	}
	surplus -= s.freeCapacityLocked()
	if max > surplus {
		max = surplus
	}
	if max < 1 {
		return nil, ttl
	}
	worker := PeerWorkerPrefix + peer
	s.touchWorkerLocked(worker, 0, 0)
	now := time.Now()
	var out []Task
	var setAside []*task
	for len(out) < max && s.queue.Len() > 0 {
		t := s.queue.Pop()
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		if t.hops >= s.maxHops {
			// At the hop bound: this task must run where it sits.
			setAside = append(setAside, t)
			continue
		}
		s.queue.Charge(t)
		if !t.enqueuedAt.IsZero() {
			s.recordLeaseWaitLocked(now.Sub(t.enqueuedAt))
		}
		t.hops++
		t.worker = worker
		t.deadline = now.Add(s.leaseTTL)
		t.attempts++
		t.leasedAt = now
		if t.firstLeased.IsZero() {
			t.firstLeased = now
		}
		s.leasesGranted++
		s.stealsOut++
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageLeased,
			Task: t.id, Worker: worker, Attempt: t.attempts})
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageStolen,
			Task: t.id, Peer: peer, Hop: t.hops, Detail: "out"})
		out = append(out, Task{ID: t.id, Hash: t.hash, Priority: t.priority,
			Payload: t.payload, Attempt: t.attempts, Profile: t.profile, Hops: t.hops})
	}
	for _, t := range setAside {
		s.queue.Push(t)
	}
	return out, ttl
}

// ReleaseStolen returns a stolen lease immediately: the thief's
// loopback handoff failed (its own server died or refused the batch),
// so instead of burning CPU-less wall time until the lease TTL expires,
// the task goes straight back on the queue. The release is honoured
// only from the current peer holder at the current attempt — the same
// discipline handleComplete applies to failure reports — so a stale
// release (the lease already expired and moved on) is a no-op.
func (s *Server) ReleaseStolen(peer, id string, attempt int) bool {
	worker := PeerWorkerPrefix + BaseURL(peer)
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.byID[id]
	if !ok || t.worker != worker || t.attempts != attempt {
		return false
	}
	t.worker = ""
	t.progress = nil
	if t.cancelled && len(t.subs) == 0 {
		delete(s.byID, t.id)
		delete(s.byHash, t.hash)
		return true
	}
	// The steal never ran anywhere: give the hop back so a failed
	// handoff cannot eat the task's hop budget.
	if t.hops > 0 {
		t.hops--
	}
	s.stealReturns++
	t.enqueuedAt = time.Now()
	s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageEnqueued,
		Task: t.id, Detail: "steal released"})
	s.queue.Push(t)
	s.wakeLocked()
	return true
}

// handleHeartbeat renews the worker's leases and tells it which of its
// tasks to abort: cancelled (no subscribers left) or stale (the lease
// expired and the task moved on).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad heartbeat: %v", err), http.StatusBadRequest)
		return
	}
	var resp heartbeatResponse
	now := time.Now()
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, 0, req.InFlight)
	for _, id := range req.Tasks {
		t, ok := s.byID[id]
		tolerated := ok && t.speculated && t.prevWorker == req.Worker && t.worker != req.Worker
		switch {
		case !ok || (t.worker != req.Worker && !tolerated):
			resp.Stale = append(resp.Stale, id)
		case t.cancelled:
			// Cancellation outranks the speculation tolerance below: an
			// early-stopped straggler's original attempt must abort like
			// any other holder instead of burning CPU to the end.
			resp.Cancelled = append(resp.Cancelled, id)
		case tolerated:
			// The original attempt of a speculated straggler: neither
			// stale nor the lease holder. Let it keep running — first
			// completion wins — without renewing the current lease.
		default:
			t.deadline = now.Add(s.leaseTTL)
		}
	}
	// Fan each accepted interval snapshot out to the subscribed batches
	// under their own job IDs.
	etas := map[*batch]int64{}
	for _, p := range req.Progress {
		t, ok := s.byID[p.ID]
		if !ok {
			continue
		}
		// Accept progress from the current lease holder — a reassigned
		// task's zombie must not overwrite the live worker's numbers —
		// or, while a speculated straggler's copy is still queued, from
		// the original attempt: it is the only execution alive, and
		// muting it would blind progress subscribers (and their
		// early-stop hooks) for the whole speculation window.
		if t.worker != req.Worker &&
			!(t.speculated && t.worker == "" && t.prevWorker == req.Worker) {
			continue
		}
		p.Hash = t.hash
		p.Worker = req.Worker
		snap := p
		t.progress = &snap
		s.progressUpdates++
		if t.firstProgress.IsZero() {
			t.firstProgress = now
			if !t.leasedAt.IsZero() {
				s.observeStageLocked(t.tenant, "first_progress", now.Sub(t.leasedAt))
			}
		}
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageProgress,
			Task: t.id, Worker: req.Worker, Uops: p.Uops, Total: p.Total})
		for _, sub := range t.subs {
			fanned := p
			fanned.ID = sub.jobID
			// Stamp the batch's live ETA on the event (computed at most
			// once per batch per heartbeat) so clients see it without a
			// separate /metrics poll.
			eta, cached := etas[sub.batch]
			if !cached {
				eta = s.batchEtaLocked(sub.batch, now).EtaMS
				etas[sub.batch] = eta
			}
			fanned.BatchEtaMS = eta
			sub.batch.sendProgress(fanned)
		}
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleCancel stops individual jobs of a live batch early: each named
// subscription is dropped and answered with a final stopped result on
// the stream, and a task left with no subscribers is cancelled exactly
// like a disconnected batch — queued copies are discarded at the next
// grant, leased ones aborted at their worker's next heartbeat (the
// cancellation surfaces in the Abandoned/EarlyStopped counters).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req cancelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad cancel: %v", err), http.StatusBadRequest)
		return
	}
	want := make(map[string]bool, len(req.IDs))
	for _, id := range req.IDs {
		want[id] = true
	}
	var resp cancelResponse
	s.mu.Lock()
	b := s.batches[req.Batch]
	if b == nil {
		// A departed or finished batch: every job already got its final
		// result, so there is nothing to stop — report zero rather than
		// erroring, keeping late Stop calls (a progress callback firing
		// after the stream drained) harmless.
		s.mu.Unlock()
		writeJSON(w, cancelResponse{})
		return
	}
	s.dropSubsLocked(
		func(_ *task, sub subscriber) bool { return want[sub.jobID] },
		b,
		func(t *task, sub subscriber) {
			resp.Stopped++
			s.earlyStopped++
			// Buffered to the batch's job count, and each job delivers
			// at most once: cannot block.
			b.ch <- TaskResult{ID: sub.jobID, Hash: t.hash, Err: TaskStoppedError}
		})
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleComplete accepts a task execution report. The first successful
// completion wins regardless of which worker currently holds the lease
// (a slow worker may finish after its lease was reassigned — the result
// is just as good), and successes are banked in the store either way.
// Error completions are only honoured from the current lease ATTEMPT —
// worker name and attempt generation both matching — because a worker
// whose lease expired or was cancelled aborts its execution and reports
// a context error, and that must not poison the task another attempt is
// (or will be) computing correctly. The attempt check matters even with
// the name matching: an expired task can be re-leased to the *same*
// worker, and the old execution's abort must not fail the new one.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad completion: %v", err), http.StatusBadRequest)
		return
	}
	// Bank a success before taking the main critical section — whether or
	// not the task is still live, the simulation is deterministic and the
	// bytes are good. Outside the lock because a Put on a disk-backed
	// store is a write plus an fsync: holding s.mu across it would stall
	// every lease, heartbeat and batch handler for milliseconds per
	// completion. The store may therefore briefly hold a hash that is
	// still pending, which is why batch admission checks pending before
	// the store. The key is the server's own record when the task is
	// still known (a cheap peek under the lock) — a worker echoing a
	// wrong hash must not plant garbage under a key nothing will ask for.
	if req.Err == "" {
		bank := req.Hash
		s.mu.Lock()
		if t, ok := s.byID[req.ID]; ok {
			bank = t.hash
		}
		s.mu.Unlock()
		s.store.Put(bank, req.Result)
	}
	// The worker echoes the task's trace ID on the completion post; it
	// keeps even a stale completion — the server already forgot the task
	// — attributable to its trace.
	headerTrace := r.Header.Get(TraceHeader)
	s.mu.Lock()
	t, ok := s.byID[req.ID]
	if !ok {
		// Already finished elsewhere (or never existed); the success, if
		// any, is banked above.
		if trace := headerTrace; trace != "" || req.Hash != "" {
			if trace == "" {
				trace = req.Hash
			}
			stage := StageCompleted
			if req.Err != "" {
				stage = StageFailed
			}
			s.tracer.Record(TraceEvent{Trace: trace, Stage: stage, Task: req.ID,
				Worker: req.Worker, Attempt: req.Attempt, Detail: "stale"})
		}
		s.mu.Unlock()
		writeJSON(w, completeResponse{Stale: true})
		return
	}
	if req.Err != "" && (t.worker != req.Worker || req.Attempt != t.attempts) {
		// A stale attempt's abort: the task has been requeued or
		// reassigned (possibly back to the same worker); leave it to its
		// current (or next) attempt.
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageFailed, Task: t.id,
			Worker: req.Worker, Attempt: req.Attempt, Detail: "stale"})
		s.mu.Unlock()
		writeJSON(w, completeResponse{Stale: true})
		return
	}
	if t.heapIndex >= 0 {
		s.queue.Remove(t)
	}
	delete(s.byID, t.id)
	delete(s.byHash, t.hash)
	now := time.Now()
	if req.Err == "" {
		// Already banked under t.hash above — the peek saw this task (IDs
		// are never reused, so a task known here was known then).
		s.completed++
		// Fold the wall duration (first lease to completion) into the
		// fleet EWMA that calibrates batch ETAs and straggler detection.
		if !t.firstLeased.IsZero() {
			if dur := now.Sub(t.firstLeased); dur > 0 {
				if s.avgTaskDur == 0 {
					s.avgTaskDur = dur
				} else {
					s.avgTaskDur = time.Duration(0.7*float64(s.avgTaskDur) + 0.3*float64(dur))
				}
			}
		}
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageCompleted,
			Task: t.id, Worker: req.Worker, Attempt: req.Attempt})
		if !t.leasedAt.IsZero() {
			s.observeStageLocked(t.tenant, "exec", now.Sub(t.leasedAt))
		}
		if !t.admittedAt.IsZero() {
			s.observeStageLocked(t.tenant, "e2e", now.Sub(t.admittedAt))
		}
		t.deliver(TaskResult{Hash: t.hash, Payload: req.Result})
	} else {
		s.failed++
		if s.log != nil {
			s.log.Error("task failed", "task", t.id, "worker", req.Worker, "err", req.Err)
		}
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageFailed, Task: t.id,
			Worker: req.Worker, Attempt: req.Attempt, Detail: req.Err})
		t.deliver(TaskResult{Hash: t.hash, Err: req.Err})
	}
	s.mu.Unlock()
	writeJSON(w, completeResponse{})
}

// reap periodically expires leases whose heartbeats stopped: the task
// goes back to the queue (reassignment) until maxAttempts is exhausted,
// at which point its subscribers get a failure.
func (s *Server) reap() {
	defer close(s.reaperDone)
	period := s.leaseTTL / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			s.expireLeases()
		}
	}
}

func (s *Server) expireLeases() {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	requeued := false
	for _, t := range s.byID {
		if t.worker == "" || now.Before(t.deadline) {
			continue
		}
		t.worker = ""
		// The dead worker's snapshot must not show as the next lease
		// holder's numbers on /metrics.
		t.progress = nil
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		if t.attempts >= s.maxAttempts {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			s.failed++
			if s.log != nil {
				s.log.Error("task abandoned: max attempts",
					"task", t.id, "attempts", t.attempts)
			}
			s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageFailed,
				Task: t.id, Attempt: t.attempts, Detail: "max attempts"})
			t.deliver(TaskResult{Hash: t.hash, Err: fmt.Sprintf(
				"grid: task abandoned after %d expired leases (workers dying?)", t.attempts)})
			continue
		}
		s.reassigned++
		if s.log != nil {
			s.log.Warn("lease expired: task requeued",
				"task", t.id, "attempt", t.attempts)
		}
		t.enqueuedAt = now
		s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageEnqueued,
			Task: t.id, Detail: "reassigned"})
		s.queue.Push(t)
		requeued = true
	}
	// Straggler speculation: with an empty queue, idle capacity on some
	// OTHER worker and a calibrated fleet EWMA, re-queue a leased task
	// projected to run far past typical so an idle worker can race the
	// slow attempt. The original keeps running — its heartbeats are
	// tolerated through prevWorker — and the first completion wins;
	// deterministic payloads make the duplicate byte-identical, so
	// clients never notice.
	if s.speculation && s.avgTaskDur > 0 && s.queue.Len() == 0 {
		for _, t := range s.byID {
			if t.worker == "" || t.speculated || t.cancelled ||
				t.attempts > s.maxAttempts-2 {
				continue
			}
			if !s.freeCapacityElsewhereLocked(t.worker) {
				// The copy is never granted back to the original worker,
				// so without a free slot on a different live worker it
				// would only starve in the queue. In particular a
				// single-worker grid never speculates: the original
				// attempt stays the task's one true lease.
				continue
			}
			elapsed := now.Sub(t.leasedAt)
			if elapsed < 2*s.avgTaskDur {
				continue
			}
			if p := t.progress; p != nil && p.Total > 0 && p.Uops > 0 {
				frac := float64(p.Uops) / float64(p.Total)
				if time.Duration(float64(elapsed)*(1-frac)/frac) < s.avgTaskDur {
					// Nearly done: let it finish.
					continue
				}
			}
			t.prevWorker = t.worker
			t.worker = ""
			t.progress = nil
			t.speculated = true
			s.speculatedCount++
			t.enqueuedAt = now
			s.tracer.Record(TraceEvent{Trace: t.hash, Stage: StageEnqueued,
				Task: t.id, Detail: "speculated"})
			s.queue.Push(t)
			requeued = true
		}
	}
	if requeued {
		s.wakeLocked()
	}
	// Forget workers long past the liveness cutoff: ephemeral host-pid
	// names would otherwise grow the map forever on a long-lived server.
	cutoff := now.Add(-10 * s.leaseTTL)
	for name, ws := range s.workers {
		if ws.lastSeen.Before(cutoff) {
			delete(s.workers, name)
		}
	}
}

// wakeLocked releases every long-polling lease request.
func (s *Server) wakeLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

func (s *Server) touchWorkerLocked(name string, capacity, inFlight int) {
	if name == "" {
		return
	}
	ws := s.workers[name]
	if ws == nil {
		ws = &workerState{}
		s.workers[name] = ws
	}
	ws.lastSeen = time.Now()
	if capacity > 0 {
		ws.capacity = capacity
	}
	ws.inFlight = inFlight
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
