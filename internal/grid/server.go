package grid

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Metrics is the server's counter snapshot, served as JSON on /metrics.
type Metrics struct {
	// Submitted counts jobs accepted across all batches; each is exactly
	// one of CacheHits (served from the store), Coalesced (joined a task
	// already in flight, or a within-batch duplicate of another job's
	// hash) or CacheMisses (created a new task). One rare admission race
	// — a job's store miss landing just as another batch queues the same
	// hash — counts a job as both a miss and a coalesce.
	Submitted   uint64 `json:"submitted"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	// Completed/Failed count task executions reported by workers (cache
	// hits never reach either).
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// LeasesGranted counts tasks handed to workers; Reassigned counts
	// leases that expired without a heartbeat and went back to the queue
	// (worker death recovery); Abandoned counts tasks dropped because
	// every subscriber went away — a disconnected batch client, or an
	// explicit early stop (those are additionally counted in
	// EarlyStopped).
	LeasesGranted uint64 `json:"leases_granted"`
	Reassigned    uint64 `json:"reassigned"`
	Abandoned     uint64 `json:"abandoned"`
	// ProgressUpdates counts interval progress snapshots accepted from
	// worker heartbeats; EarlyStopped counts jobs clients stopped early
	// through the cancel endpoint.
	ProgressUpdates uint64 `json:"progress_updates"`
	EarlyStopped    uint64 `json:"early_stopped"`
	// Point-in-time gauges.
	QueueDepth   int `json:"queue_depth"`
	Leased       int `json:"leased"`
	Workers      int `json:"workers"`
	StoreEntries int `json:"store_entries"`
	// Running is the latest interval progress snapshot of each leased
	// task that has reported one (IDs are server-side task IDs).
	Running []TaskProgress `json:"running,omitempty"`
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLeaseTTL sets how long a granted lease survives without a
// heartbeat before the task is reassigned. The default is 5s; tests use
// short TTLs to exercise reassignment quickly.
func WithLeaseTTL(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.leaseTTL = d
		}
	}
}

// WithMaxAttempts bounds how many times a task may be leased before the
// server gives up and fails it (defence against a job that kills every
// worker it lands on). The default is 5.
func WithMaxAttempts(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxAttempts = n
		}
	}
}

// WithStorage plugs a result store into the server: the in-memory
// default forgets on restart, an OpenDiskStore-backed one makes the
// cache durable (restart the server on the same directory and every
// already-simulated point is a hit). The server does not close the
// store; the caller owns its lifecycle.
func WithStorage(st Storage) ServerOption {
	return func(s *Server) {
		if st != nil {
			s.store = st
		}
	}
}

// Server is the grid job server: an http.Handler exposing the batch,
// lease, heartbeat, complete, metrics and healthz endpoints over one
// priority work queue and one content-addressed result store. Close
// stops the lease reaper; in-flight batch handlers unwind promptly.
type Server struct {
	leaseTTL    time.Duration
	maxAttempts int

	mu     sync.Mutex
	store  Storage
	byID   map[string]*task
	byHash map[string]*task
	queue  taskHeap
	seq    uint64
	// wake is closed and replaced whenever work is queued, releasing
	// long-polling lease requests.
	wake    chan struct{}
	workers map[string]*workerState
	// batches tracks connected /v1/batch streams by server-assigned ID,
	// the namespace /v1/cancel addresses early stops through.
	batches  map[string]*batch
	batchSeq uint64

	submitted, coalesced      uint64
	completed, failed         uint64
	leasesGranted, reassigned uint64
	abandoned                 uint64
	progressUpdates           uint64
	earlyStopped              uint64
	closed                    chan struct{}
	closeOnce                 sync.Once
	reaperDone                chan struct{}
}

// workerState is the server's view of one polling worker, fed by its
// lease and heartbeat load reports.
type workerState struct {
	lastSeen time.Time
	capacity int
	inFlight int
}

// NewServer builds a Server and starts its lease reaper. Call Close when
// done with it.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		leaseTTL:    5 * time.Second,
		maxAttempts: 5,
		store:       NewStore(),
		byID:        map[string]*task{},
		byHash:      map[string]*task{},
		wake:        make(chan struct{}),
		workers:     map[string]*workerState{},
		batches:     map[string]*batch{},
		closed:      make(chan struct{}),
		reaperDone:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.reap()
	return s
}

// Close stops the reaper and releases every blocked handler. It is
// idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.reaperDone
}

// Store exposes the content-addressed result store (tests and embedders
// may pre-seed or inspect it).
func (s *Server) Store() Storage { return s.store }

// Metrics returns a counter snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsLocked()
}

func (s *Server) metricsLocked() Metrics {
	entries, hits, misses := s.store.Stats()
	m := Metrics{
		Submitted:       s.submitted,
		CacheHits:       hits,
		CacheMisses:     misses,
		Coalesced:       s.coalesced,
		Completed:       s.completed,
		Failed:          s.failed,
		LeasesGranted:   s.leasesGranted,
		Reassigned:      s.reassigned,
		Abandoned:       s.abandoned,
		ProgressUpdates: s.progressUpdates,
		EarlyStopped:    s.earlyStopped,
		StoreEntries:    entries,
	}
	for _, t := range s.byID {
		if t.worker != "" {
			m.Leased++
			if t.progress != nil {
				m.Running = append(m.Running, *t.progress)
			}
		} else if !t.cancelled {
			m.QueueDepth++
		}
	}
	// Task IDs are "t<seq>": order by the numeric suffix so t2 precedes
	// t10 (creation order), falling back to lexicographic for any ID a
	// future format produces.
	sort.Slice(m.Running, func(i, j int) bool {
		a, aerr := strconv.Atoi(strings.TrimPrefix(m.Running[i].ID, "t"))
		b, berr := strconv.Atoi(strings.TrimPrefix(m.Running[j].ID, "t"))
		if aerr == nil && berr == nil {
			return a < b
		}
		return m.Running[i].ID < m.Running[j].ID
	})
	cutoff := time.Now().Add(-3 * s.leaseTTL)
	for _, w := range s.workers {
		if w.lastSeen.After(cutoff) {
			m.Workers++
		}
	}
	return m
}

// ServeHTTP dispatches the wire protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case pathBatch:
		s.handleBatch(w, r)
	case pathLease:
		s.handleLease(w, r)
	case pathHeartbeat:
		s.handleHeartbeat(w, r)
	case pathComplete:
		s.handleComplete(w, r)
	case pathCancel:
		s.handleCancel(w, r)
	case pathMetrics:
		writeJSON(w, s.Metrics())
	case pathHealthz:
		m := s.Metrics()
		writeJSON(w, map[string]any{
			"ok":      true,
			"queue":   m.QueueDepth,
			"leased":  m.Leased,
			"workers": m.Workers,
		})
	default:
		http.NotFound(w, r)
	}
}

// handleBatch accepts a job batch and streams its results back as
// NDJSON, one TaskResult per line, flushed as they land. The request
// context is the batch's lifetime: when the client disconnects, queued
// work is abandoned and leased work is cancelled at the owning worker's
// next heartbeat.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad batch: %v", err), http.StatusBadRequest)
		return
	}
	b := &batch{ch: make(chan TaskResult, len(req.Jobs))}
	if req.Progress {
		// Progress sends are non-blocking (lossy); the buffer just smooths
		// bursts between the handler's stream writes.
		b.prog = make(chan TaskProgress, 64)
	}
	var immediate []TaskResult
	pending := 0

	// coalesceLocked joins a job onto an already-pending task. Coalescing
	// is checked BEFORE the store: a completing task banks its result
	// outside the lock and unpends under it, so a hash can momentarily be
	// in both — joining the pending task is correct either way (the
	// completion fans out to every subscriber), and a coalesced job is
	// neither a cache hit nor a miss, keeping the Metrics invariant that
	// every submitted job is exactly one of hit/coalesce/miss (a rare
	// admission race, noted below, can add a spurious miss).
	coalesceLocked := func(t *task, jobID string) {
		pending++
		// Reviving a cancelled lease requeues it: its worker may already
		// have aborted on the cancellation notice, and if it hasn't, the
		// duplicate grant is harmless — the first completion wins.
		if t.cancelled && t.worker != "" {
			t.worker = ""
			heap.Push(&s.queue, t)
		}
		t.cancelled = false
		t.subs = append(t.subs, subscriber{batch: b, jobID: jobID})
		s.coalesced++
	}

	// Phase 1, under the lock: reject empties, coalesce onto pending
	// tasks, and collect the rest for store lookups — deduplicated by
	// hash, so a batch repeating a job costs one lookup (its duplicates
	// count as Coalesced, like any other join onto shared work).
	type lookup struct {
		first Task     // carries the payload and priority
		dups  []string // job IDs of within-batch duplicates of the hash
		hash  string
	}
	var lookups []lookup
	lookupIdx := map[string]int{}
	s.mu.Lock()
	s.batchSeq++
	b.id = fmt.Sprintf("b%d", s.batchSeq)
	s.batches[b.id] = b
	for _, j := range req.Jobs {
		if len(j.Payload) == 0 {
			// Rejected before admission: not Submitted, so the invariant
			// Submitted = CacheHits + Coalesced + CacheMisses holds.
			immediate = append(immediate, TaskResult{ID: j.ID, Err: "grid: empty payload"})
			continue
		}
		s.submitted++
		hash := j.Hash
		if hash == "" {
			hash = HashBytes(j.Payload)
		}
		if t, ok := s.byHash[hash]; ok {
			coalesceLocked(t, j.ID)
			continue
		}
		if i, ok := lookupIdx[hash]; ok {
			lookups[i].dups = append(lookups[i].dups, j.ID)
			s.coalesced++
			continue
		}
		lookupIdx[hash] = len(lookups)
		lookups = append(lookups, lookup{first: j, hash: hash})
	}
	s.mu.Unlock()

	// Phase 2, outside the lock: store lookups. On a disk-backed store
	// each Get is a file read plus checksum verification — holding s.mu
	// across a large cached batch would stall every lease, heartbeat and
	// completion for the whole scan.
	hits := make([][]byte, len(lookups))
	hit := make([]bool, len(lookups))
	for i, l := range lookups {
		hits[i], hit[i] = s.store.Get(l.hash)
	}

	// Phase 3, back under the lock: answer hits, queue misses. A miss
	// whose hash became pending while unlocked coalesces here (its store
	// miss was already counted — the one soft spot in the exactly-one-of
	// invariant, and the only cost of keeping disk I/O out of the lock).
	s.mu.Lock()
	for i, l := range lookups {
		if hit[i] {
			immediate = append(immediate, TaskResult{ID: l.first.ID, Hash: l.hash, Cached: true, Payload: hits[i]})
			for _, id := range l.dups {
				immediate = append(immediate, TaskResult{ID: id, Hash: l.hash, Cached: true, Payload: hits[i]})
			}
			continue
		}
		if t, ok := s.byHash[l.hash]; ok {
			coalesceLocked(t, l.first.ID)
			for _, id := range l.dups {
				t.subs = append(t.subs, subscriber{batch: b, jobID: id})
				pending++
			}
			continue
		}
		pending++
		s.seq++
		t := &task{
			id:       fmt.Sprintf("t%d", s.seq),
			hash:     l.hash,
			payload:  l.first.Payload,
			priority: l.first.Priority,
			seq:      s.seq,
			subs:     []subscriber{{batch: b, jobID: l.first.ID}},
		}
		for _, id := range l.dups {
			t.subs = append(t.subs, subscriber{batch: b, jobID: id})
			pending++
		}
		s.byID[t.id] = t
		s.byHash[l.hash] = t
		heap.Push(&s.queue, t)
	}
	if pending > 0 {
		s.wakeLocked()
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.batches, b.id)
		s.mu.Unlock()
	}()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set(batchHeader, b.id)
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flush := func() {
		bw.Flush()
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	for _, res := range immediate {
		enc.Encode(res)
	}
	flush()
	for delivered := 0; delivered < pending; delivered++ {
		select {
		case res := <-b.ch:
			enc.Encode(res)
			flush()
		case p := <-b.prog:
			// An interim event: the task still owes its final line, so
			// the delivered count stands. Receiving on a nil b.prog (a
			// batch that never asked for progress) blocks forever, which
			// is exactly the disabled behaviour.
			enc.Encode(TaskResult{ID: p.ID, Hash: p.Hash, Progress: &p})
			flush()
			delivered--
		case <-r.Context().Done():
			s.dropBatch(b)
			return
		case <-s.closed:
			return
		}
	}
}

// dropBatch removes every subscription of a departed batch. Tasks left
// with no subscribers are marked cancelled: queued ones are skipped (and
// discarded) at the next grant, leased ones are reported cancelled to
// their worker on its next heartbeat.
func (s *Server) dropBatch(b *batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropSubsLocked(
		func(*task, subscriber) bool { return true },
		b, nil)
}

// dropSubsLocked removes batch b's subscriptions matched by drop,
// invoking onDrop (if non-nil) for each removed one, and applies the
// shared no-subscribers-left transition: the task is marked cancelled —
// discarded at the next grant if queued, aborted at its worker's next
// heartbeat if leased — and counted abandoned. Both the full-batch
// disconnect and the per-job early stop funnel through here so the
// transition can never drift between them.
func (s *Server) dropSubsLocked(drop func(*task, subscriber) bool, b *batch, onDrop func(*task, subscriber)) {
	for _, t := range s.byID {
		kept := t.subs[:0]
		for _, sub := range t.subs {
			if sub.batch == b && drop(t, sub) {
				if onDrop != nil {
					onDrop(t, sub)
				}
				continue
			}
			kept = append(kept, sub)
		}
		t.subs = kept
		if len(t.subs) == 0 && !t.cancelled {
			t.cancelled = true
			s.abandoned++
		}
	}
}

// handleLease grants up to capacity-in_flight queued tasks to a worker,
// long-polling up to wait_ms when the queue is empty.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad lease: %v", err), http.StatusBadRequest)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		s.touchWorkerLocked(req.Worker, req.Capacity, req.InFlight)
		tasks := s.grantLocked(req)
		wake := s.wake
		s.mu.Unlock()
		if len(tasks) > 0 || !time.Now().Before(deadline) {
			writeJSON(w, leaseResponse{Tasks: tasks, LeaseMS: s.leaseTTL.Milliseconds()})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-s.closed:
			timer.Stop()
			writeJSON(w, leaseResponse{LeaseMS: s.leaseTTL.Milliseconds()})
			return
		}
		timer.Stop()
	}
}

// grantLocked pops queued tasks for a worker, honouring its reported
// free capacity and discarding abandoned tasks it encounters.
func (s *Server) grantLocked(req leaseRequest) []Task {
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	k := capacity - req.InFlight
	var out []Task
	now := time.Now()
	for len(out) < k && s.queue.Len() > 0 {
		t := heap.Pop(&s.queue).(*task)
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		t.worker = req.Worker
		t.deadline = now.Add(s.leaseTTL)
		t.attempts++
		s.leasesGranted++
		out = append(out, Task{ID: t.id, Hash: t.hash, Priority: t.priority,
			Payload: t.payload, Attempt: t.attempts})
	}
	return out
}

// handleHeartbeat renews the worker's leases and tells it which of its
// tasks to abort: cancelled (no subscribers left) or stale (the lease
// expired and the task moved on).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad heartbeat: %v", err), http.StatusBadRequest)
		return
	}
	var resp heartbeatResponse
	now := time.Now()
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, 0, req.InFlight)
	for _, id := range req.Tasks {
		t, ok := s.byID[id]
		switch {
		case !ok || t.worker != req.Worker:
			resp.Stale = append(resp.Stale, id)
		case t.cancelled:
			resp.Cancelled = append(resp.Cancelled, id)
		default:
			t.deadline = now.Add(s.leaseTTL)
		}
	}
	// Accept interval progress only from the current lease holder (a
	// reassigned task's zombie must not overwrite the live worker's
	// numbers) and fan each snapshot out to the subscribed batches under
	// their own job IDs.
	for _, p := range req.Progress {
		t, ok := s.byID[p.ID]
		if !ok || t.worker != req.Worker {
			continue
		}
		p.Hash = t.hash
		p.Worker = req.Worker
		snap := p
		t.progress = &snap
		s.progressUpdates++
		for _, sub := range t.subs {
			fanned := p
			fanned.ID = sub.jobID
			sub.batch.sendProgress(fanned)
		}
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleCancel stops individual jobs of a live batch early: each named
// subscription is dropped and answered with a final stopped result on
// the stream, and a task left with no subscribers is cancelled exactly
// like a disconnected batch — queued copies are discarded at the next
// grant, leased ones aborted at their worker's next heartbeat (the
// cancellation surfaces in the Abandoned/EarlyStopped counters).
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	var req cancelRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad cancel: %v", err), http.StatusBadRequest)
		return
	}
	want := make(map[string]bool, len(req.IDs))
	for _, id := range req.IDs {
		want[id] = true
	}
	var resp cancelResponse
	s.mu.Lock()
	b := s.batches[req.Batch]
	if b == nil {
		// A departed or finished batch: every job already got its final
		// result, so there is nothing to stop — report zero rather than
		// erroring, keeping late Stop calls (a progress callback firing
		// after the stream drained) harmless.
		s.mu.Unlock()
		writeJSON(w, cancelResponse{})
		return
	}
	s.dropSubsLocked(
		func(_ *task, sub subscriber) bool { return want[sub.jobID] },
		b,
		func(t *task, sub subscriber) {
			resp.Stopped++
			s.earlyStopped++
			// Buffered to the batch's job count, and each job delivers
			// at most once: cannot block.
			b.ch <- TaskResult{ID: sub.jobID, Hash: t.hash, Err: TaskStoppedError}
		})
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleComplete accepts a task execution report. The first successful
// completion wins regardless of which worker currently holds the lease
// (a slow worker may finish after its lease was reassigned — the result
// is just as good), and successes are banked in the store either way.
// Error completions are only honoured from the current lease ATTEMPT —
// worker name and attempt generation both matching — because a worker
// whose lease expired or was cancelled aborts its execution and reports
// a context error, and that must not poison the task another attempt is
// (or will be) computing correctly. The attempt check matters even with
// the name matching: an expired task can be re-leased to the *same*
// worker, and the old execution's abort must not fail the new one.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad completion: %v", err), http.StatusBadRequest)
		return
	}
	// Bank a success before taking the main critical section — whether or
	// not the task is still live, the simulation is deterministic and the
	// bytes are good. Outside the lock because a Put on a disk-backed
	// store is a write plus an fsync: holding s.mu across it would stall
	// every lease, heartbeat and batch handler for milliseconds per
	// completion. The store may therefore briefly hold a hash that is
	// still pending, which is why batch admission checks pending before
	// the store. The key is the server's own record when the task is
	// still known (a cheap peek under the lock) — a worker echoing a
	// wrong hash must not plant garbage under a key nothing will ask for.
	if req.Err == "" {
		bank := req.Hash
		s.mu.Lock()
		if t, ok := s.byID[req.ID]; ok {
			bank = t.hash
		}
		s.mu.Unlock()
		s.store.Put(bank, req.Result)
	}
	s.mu.Lock()
	t, ok := s.byID[req.ID]
	if !ok {
		// Already finished elsewhere (or never existed); the success, if
		// any, is banked above.
		s.mu.Unlock()
		writeJSON(w, completeResponse{Stale: true})
		return
	}
	if req.Err != "" && (t.worker != req.Worker || req.Attempt != t.attempts) {
		// A stale attempt's abort: the task has been requeued or
		// reassigned (possibly back to the same worker); leave it to its
		// current (or next) attempt.
		s.mu.Unlock()
		writeJSON(w, completeResponse{Stale: true})
		return
	}
	if t.heapIndex >= 0 {
		heap.Remove(&s.queue, t.heapIndex)
	}
	delete(s.byID, t.id)
	delete(s.byHash, t.hash)
	if req.Err == "" {
		// Already banked under t.hash above — the peek saw this task (IDs
		// are never reused, so a task known here was known then).
		s.completed++
		t.deliver(TaskResult{Hash: t.hash, Payload: req.Result})
	} else {
		s.failed++
		t.deliver(TaskResult{Hash: t.hash, Err: req.Err})
	}
	s.mu.Unlock()
	writeJSON(w, completeResponse{})
}

// reap periodically expires leases whose heartbeats stopped: the task
// goes back to the queue (reassignment) until maxAttempts is exhausted,
// at which point its subscribers get a failure.
func (s *Server) reap() {
	defer close(s.reaperDone)
	period := s.leaseTTL / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			s.expireLeases()
		}
	}
}

func (s *Server) expireLeases() {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	requeued := false
	for _, t := range s.byID {
		if t.worker == "" || now.Before(t.deadline) {
			continue
		}
		t.worker = ""
		// The dead worker's snapshot must not show as the next lease
		// holder's numbers on /metrics.
		t.progress = nil
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		if t.attempts >= s.maxAttempts {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			s.failed++
			t.deliver(TaskResult{Hash: t.hash, Err: fmt.Sprintf(
				"grid: task abandoned after %d expired leases (workers dying?)", t.attempts)})
			continue
		}
		s.reassigned++
		heap.Push(&s.queue, t)
		requeued = true
	}
	if requeued {
		s.wakeLocked()
	}
	// Forget workers long past the liveness cutoff: ephemeral host-pid
	// names would otherwise grow the map forever on a long-lived server.
	cutoff := now.Add(-10 * s.leaseTTL)
	for name, ws := range s.workers {
		if ws.lastSeen.Before(cutoff) {
			delete(s.workers, name)
		}
	}
}

// wakeLocked releases every long-polling lease request.
func (s *Server) wakeLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

func (s *Server) touchWorkerLocked(name string, capacity, inFlight int) {
	if name == "" {
		return
	}
	ws := s.workers[name]
	if ws == nil {
		ws = &workerState{}
		s.workers[name] = ws
	}
	ws.lastSeen = time.Now()
	if capacity > 0 {
		ws.capacity = capacity
	}
	ws.inFlight = inFlight
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
