package grid

import (
	"bufio"
	"container/heap"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"
)

// Metrics is the server's counter snapshot, served as JSON on /metrics.
type Metrics struct {
	// Submitted counts jobs accepted across all batches; each is exactly
	// one of CacheHits (served from the store), Coalesced (joined a task
	// already in flight) or CacheMisses (created a new task).
	Submitted   uint64 `json:"submitted"`
	CacheHits   uint64 `json:"cache_hits"`
	CacheMisses uint64 `json:"cache_misses"`
	Coalesced   uint64 `json:"coalesced"`
	// Completed/Failed count task executions reported by workers (cache
	// hits never reach either).
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed"`
	// LeasesGranted counts tasks handed to workers; Reassigned counts
	// leases that expired without a heartbeat and went back to the queue
	// (worker death recovery); Abandoned counts tasks dropped because
	// every subscriber disconnected.
	LeasesGranted uint64 `json:"leases_granted"`
	Reassigned    uint64 `json:"reassigned"`
	Abandoned     uint64 `json:"abandoned"`
	// Point-in-time gauges.
	QueueDepth   int `json:"queue_depth"`
	Leased       int `json:"leased"`
	Workers      int `json:"workers"`
	StoreEntries int `json:"store_entries"`
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithLeaseTTL sets how long a granted lease survives without a
// heartbeat before the task is reassigned. The default is 5s; tests use
// short TTLs to exercise reassignment quickly.
func WithLeaseTTL(d time.Duration) ServerOption {
	return func(s *Server) {
		if d > 0 {
			s.leaseTTL = d
		}
	}
}

// WithMaxAttempts bounds how many times a task may be leased before the
// server gives up and fails it (defence against a job that kills every
// worker it lands on). The default is 5.
func WithMaxAttempts(n int) ServerOption {
	return func(s *Server) {
		if n > 0 {
			s.maxAttempts = n
		}
	}
}

// Server is the grid job server: an http.Handler exposing the batch,
// lease, heartbeat, complete, metrics and healthz endpoints over one
// priority work queue and one content-addressed result store. Close
// stops the lease reaper; in-flight batch handlers unwind promptly.
type Server struct {
	leaseTTL    time.Duration
	maxAttempts int

	mu     sync.Mutex
	store  *Store
	byID   map[string]*task
	byHash map[string]*task
	queue  taskHeap
	seq    uint64
	// wake is closed and replaced whenever work is queued, releasing
	// long-polling lease requests.
	wake    chan struct{}
	workers map[string]*workerState

	submitted, coalesced      uint64
	completed, failed         uint64
	leasesGranted, reassigned uint64
	abandoned                 uint64
	closed                    chan struct{}
	closeOnce                 sync.Once
	reaperDone                chan struct{}
}

// workerState is the server's view of one polling worker, fed by its
// lease and heartbeat load reports.
type workerState struct {
	lastSeen time.Time
	capacity int
	inFlight int
}

// NewServer builds a Server and starts its lease reaper. Call Close when
// done with it.
func NewServer(opts ...ServerOption) *Server {
	s := &Server{
		leaseTTL:    5 * time.Second,
		maxAttempts: 5,
		store:       NewStore(),
		byID:        map[string]*task{},
		byHash:      map[string]*task{},
		wake:        make(chan struct{}),
		workers:     map[string]*workerState{},
		closed:      make(chan struct{}),
		reaperDone:  make(chan struct{}),
	}
	for _, o := range opts {
		o(s)
	}
	go s.reap()
	return s
}

// Close stops the reaper and releases every blocked handler. It is
// idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.closed) })
	<-s.reaperDone
}

// Store exposes the content-addressed result store (tests and embedders
// may pre-seed or inspect it).
func (s *Server) Store() *Store { return s.store }

// Metrics returns a counter snapshot.
func (s *Server) Metrics() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.metricsLocked()
}

func (s *Server) metricsLocked() Metrics {
	entries, hits, misses := s.store.Stats()
	m := Metrics{
		Submitted:     s.submitted,
		CacheHits:     hits,
		CacheMisses:   misses,
		Coalesced:     s.coalesced,
		Completed:     s.completed,
		Failed:        s.failed,
		LeasesGranted: s.leasesGranted,
		Reassigned:    s.reassigned,
		Abandoned:     s.abandoned,
		StoreEntries:  entries,
	}
	for _, t := range s.byID {
		if t.worker != "" {
			m.Leased++
		} else if !t.cancelled {
			m.QueueDepth++
		}
	}
	cutoff := time.Now().Add(-3 * s.leaseTTL)
	for _, w := range s.workers {
		if w.lastSeen.After(cutoff) {
			m.Workers++
		}
	}
	return m
}

// ServeHTTP dispatches the wire protocol.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.URL.Path {
	case pathBatch:
		s.handleBatch(w, r)
	case pathLease:
		s.handleLease(w, r)
	case pathHeartbeat:
		s.handleHeartbeat(w, r)
	case pathComplete:
		s.handleComplete(w, r)
	case pathMetrics:
		writeJSON(w, s.Metrics())
	case pathHealthz:
		m := s.Metrics()
		writeJSON(w, map[string]any{
			"ok":      true,
			"queue":   m.QueueDepth,
			"leased":  m.Leased,
			"workers": m.Workers,
		})
	default:
		http.NotFound(w, r)
	}
}

// handleBatch accepts a job batch and streams its results back as
// NDJSON, one TaskResult per line, flushed as they land. The request
// context is the batch's lifetime: when the client disconnects, queued
// work is abandoned and leased work is cancelled at the owning worker's
// next heartbeat.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad batch: %v", err), http.StatusBadRequest)
		return
	}
	b := &batch{ch: make(chan TaskResult, len(req.Jobs))}
	var immediate []TaskResult
	pending := 0

	s.mu.Lock()
	for _, j := range req.Jobs {
		if len(j.Payload) == 0 {
			// Rejected before admission: not Submitted, so the invariant
			// Submitted = CacheHits + Coalesced + CacheMisses holds.
			immediate = append(immediate, TaskResult{ID: j.ID, Err: "grid: empty payload"})
			continue
		}
		s.submitted++
		hash := j.Hash
		if hash == "" {
			hash = HashBytes(j.Payload)
		}
		// A hash is in the store xor pending (completion stores and
		// unpends atomically), so check pending first: a coalesced job is
		// neither a cache hit nor a miss, keeping the Metrics invariant
		// that every submitted job is exactly one of the three.
		if t, ok := s.byHash[hash]; ok {
			pending++
			// Coalesce onto the in-flight task. Reviving a cancelled lease
			// requeues it: its worker may already have aborted on the
			// cancellation notice, and if it hasn't, the duplicate grant is
			// harmless — the first completion wins.
			if t.cancelled && t.worker != "" {
				t.worker = ""
				heap.Push(&s.queue, t)
			}
			t.cancelled = false
			t.subs = append(t.subs, subscriber{batch: b, jobID: j.ID})
			s.coalesced++
			continue
		}
		if res, ok := s.store.Get(hash); ok {
			immediate = append(immediate, TaskResult{ID: j.ID, Hash: hash, Cached: true, Payload: res})
			continue
		}
		pending++
		s.seq++
		t := &task{
			id:       fmt.Sprintf("t%d", s.seq),
			hash:     hash,
			payload:  j.Payload,
			priority: j.Priority,
			seq:      s.seq,
			subs:     []subscriber{{batch: b, jobID: j.ID}},
		}
		s.byID[t.id] = t
		s.byHash[hash] = t
		heap.Push(&s.queue, t)
	}
	if pending > 0 {
		s.wakeLocked()
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	flush := func() {
		bw.Flush()
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
	}
	for _, res := range immediate {
		enc.Encode(res)
	}
	flush()
	for delivered := 0; delivered < pending; delivered++ {
		select {
		case res := <-b.ch:
			enc.Encode(res)
			flush()
		case <-r.Context().Done():
			s.dropBatch(b)
			return
		case <-s.closed:
			return
		}
	}
}

// dropBatch removes every subscription of a departed batch. Tasks left
// with no subscribers are marked cancelled: queued ones are skipped (and
// discarded) at the next grant, leased ones are reported cancelled to
// their worker on its next heartbeat.
func (s *Server) dropBatch(b *batch) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.byID {
		kept := t.subs[:0]
		for _, sub := range t.subs {
			if sub.batch != b {
				kept = append(kept, sub)
			}
		}
		t.subs = kept
		if len(t.subs) == 0 && !t.cancelled {
			t.cancelled = true
			s.abandoned++
		}
	}
}

// handleLease grants up to capacity-in_flight queued tasks to a worker,
// long-polling up to wait_ms when the queue is empty.
func (s *Server) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad lease: %v", err), http.StatusBadRequest)
		return
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > 30*time.Second {
		wait = 30 * time.Second
	}
	deadline := time.Now().Add(wait)
	for {
		s.mu.Lock()
		s.touchWorkerLocked(req.Worker, req.Capacity, req.InFlight)
		tasks := s.grantLocked(req)
		wake := s.wake
		s.mu.Unlock()
		if len(tasks) > 0 || !time.Now().Before(deadline) {
			writeJSON(w, leaseResponse{Tasks: tasks, LeaseMS: s.leaseTTL.Milliseconds()})
			return
		}
		timer := time.NewTimer(time.Until(deadline))
		select {
		case <-wake:
		case <-timer.C:
		case <-r.Context().Done():
			timer.Stop()
			return
		case <-s.closed:
			timer.Stop()
			writeJSON(w, leaseResponse{LeaseMS: s.leaseTTL.Milliseconds()})
			return
		}
		timer.Stop()
	}
}

// grantLocked pops queued tasks for a worker, honouring its reported
// free capacity and discarding abandoned tasks it encounters.
func (s *Server) grantLocked(req leaseRequest) []Task {
	capacity := req.Capacity
	if capacity < 1 {
		capacity = 1
	}
	k := capacity - req.InFlight
	var out []Task
	now := time.Now()
	for len(out) < k && s.queue.Len() > 0 {
		t := heap.Pop(&s.queue).(*task)
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		t.worker = req.Worker
		t.deadline = now.Add(s.leaseTTL)
		t.attempts++
		s.leasesGranted++
		out = append(out, Task{ID: t.id, Hash: t.hash, Priority: t.priority, Payload: t.payload})
	}
	return out
}

// handleHeartbeat renews the worker's leases and tells it which of its
// tasks to abort: cancelled (no subscribers left) or stale (the lease
// expired and the task moved on).
func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad heartbeat: %v", err), http.StatusBadRequest)
		return
	}
	var resp heartbeatResponse
	now := time.Now()
	s.mu.Lock()
	s.touchWorkerLocked(req.Worker, 0, req.InFlight)
	for _, id := range req.Tasks {
		t, ok := s.byID[id]
		switch {
		case !ok || t.worker != req.Worker:
			resp.Stale = append(resp.Stale, id)
		case t.cancelled:
			resp.Cancelled = append(resp.Cancelled, id)
		default:
			t.deadline = now.Add(s.leaseTTL)
		}
	}
	s.mu.Unlock()
	writeJSON(w, resp)
}

// handleComplete accepts a task execution report. The first successful
// completion wins regardless of which worker currently holds the lease
// (a slow worker may finish after its lease was reassigned — the result
// is just as good), and successes are banked in the store either way.
// Error completions are only honoured from the current lease holder: a
// worker whose lease expired or was cancelled aborts its execution and
// reports a context error, and that must not poison the task another
// worker is (or will be) computing correctly.
func (s *Server) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, fmt.Sprintf("grid: bad completion: %v", err), http.StatusBadRequest)
		return
	}
	s.mu.Lock()
	t, ok := s.byID[req.ID]
	if !ok {
		// Already finished elsewhere (or never existed). Bank a success
		// anyway: the simulation is deterministic, the bytes are good.
		if req.Err == "" {
			s.store.Put(req.Hash, req.Result)
		}
		s.mu.Unlock()
		writeJSON(w, completeResponse{Stale: true})
		return
	}
	if req.Err != "" && t.worker != req.Worker {
		// A stale lease's abort: the task has been requeued or reassigned;
		// leave it to its current (or next) worker.
		s.mu.Unlock()
		writeJSON(w, completeResponse{Stale: true})
		return
	}
	if t.heapIndex >= 0 {
		heap.Remove(&s.queue, t.heapIndex)
	}
	delete(s.byID, t.id)
	delete(s.byHash, t.hash)
	if req.Err == "" {
		s.store.Put(t.hash, req.Result)
		s.completed++
		t.deliver(TaskResult{Hash: t.hash, Payload: req.Result})
	} else {
		s.failed++
		t.deliver(TaskResult{Hash: t.hash, Err: req.Err})
	}
	s.mu.Unlock()
	writeJSON(w, completeResponse{})
}

// reap periodically expires leases whose heartbeats stopped: the task
// goes back to the queue (reassignment) until maxAttempts is exhausted,
// at which point its subscribers get a failure.
func (s *Server) reap() {
	defer close(s.reaperDone)
	period := s.leaseTTL / 4
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	if period > time.Second {
		period = time.Second
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-ticker.C:
			s.expireLeases()
		}
	}
}

func (s *Server) expireLeases() {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	requeued := false
	for _, t := range s.byID {
		if t.worker == "" || now.Before(t.deadline) {
			continue
		}
		t.worker = ""
		if t.cancelled && len(t.subs) == 0 {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			continue
		}
		if t.attempts >= s.maxAttempts {
			delete(s.byID, t.id)
			delete(s.byHash, t.hash)
			s.failed++
			t.deliver(TaskResult{Hash: t.hash, Err: fmt.Sprintf(
				"grid: task abandoned after %d expired leases (workers dying?)", t.attempts)})
			continue
		}
		s.reassigned++
		heap.Push(&s.queue, t)
		requeued = true
	}
	if requeued {
		s.wakeLocked()
	}
	// Forget workers long past the liveness cutoff: ephemeral host-pid
	// names would otherwise grow the map forever on a long-lived server.
	cutoff := now.Add(-10 * s.leaseTTL)
	for name, ws := range s.workers {
		if ws.lastSeen.Before(cutoff) {
			delete(s.workers, name)
		}
	}
}

// wakeLocked releases every long-polling lease request.
func (s *Server) wakeLocked() {
	close(s.wake)
	s.wake = make(chan struct{})
}

func (s *Server) touchWorkerLocked(name string, capacity, inFlight int) {
	if name == "" {
		return
	}
	ws := s.workers[name]
	if ws == nil {
		ws = &workerState{}
		s.workers[name] = ws
	}
	ws.lastSeen = time.Now()
	if capacity > 0 {
		ws.capacity = capacity
	}
	ws.inFlight = inFlight
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
