package grid

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// traceEvents drains a server's ring for one id, failing the test when
// tracing is off.
func traceEvents(t *testing.T, s *Server, id string) []TraceEvent {
	t.Helper()
	tr := s.Tracer()
	if tr == nil {
		t.Fatal("server has no tracer (tracing disabled)")
	}
	return tr.Events(id)
}

// TestTraceLocalLifecycle pins the exec span tree of a job that runs
// locally: admitted → enqueued → leased → completed, monotonic, with
// the lease carrying the worker identity, and the reconstructed
// durations all observed.
func TestTraceLocalLifecycle(t *testing.T) {
	srv, ts := testGrid(t)
	startWorker(t, ts.URL, echoExec, 2)
	c := &Client{Server: ts.URL}
	task := mkTask("0", "trace-local")
	ch, err := c.Submit(context.Background(), []Task{task})
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, ch)

	evs := traceEvents(t, srv, task.Hash)
	if err := ValidateTrace(evs, TraceKindExec); err != nil {
		t.Fatalf("exec trace does not validate: %v\nevents: %+v", err, evs)
	}
	SortEvents(evs)
	var stages []string
	for _, ev := range evs {
		stages = append(stages, ev.Stage)
		if ev.Stage == StageLeased && ev.Worker == "" {
			t.Errorf("leased event carries no worker: %+v", ev)
		}
		if ev.Trace != task.Hash {
			t.Errorf("event trace %q, want %q", ev.Trace, task.Hash)
		}
	}
	order := strings.Join(stages, ",")
	for _, sub := range []string{StageAdmitted, StageEnqueued, StageLeased, StageCompleted} {
		if !strings.Contains(order, sub) {
			t.Fatalf("stage %s missing from %s", sub, order)
		}
	}
	if i, j := strings.Index(order, StageAdmitted), strings.Index(order, StageCompleted); i > j {
		t.Fatalf("admitted after completed: %s", order)
	}
	d := Durations(evs)
	if d.Admission < 0 || d.Queue < 0 || d.Exec < 0 || d.EndToEnd < 0 {
		t.Fatalf("exec trace has unobserved spans: %+v", d)
	}
	if d.EndToEnd < d.Exec {
		t.Fatalf("end-to-end %s shorter than exec %s", d.EndToEnd, d.Exec)
	}
	// The same events are reachable by task ID and batch ID.
	if got := traceEvents(t, srv, evs[0].Batch); len(got) == 0 {
		t.Error("no events found by batch ID")
	}
}

// TestTraceCacheHit resubmits an already-banked job and checks the
// trace validates as cached: the latest admission is answered by the
// store with no lease (zero exec span) after it.
func TestTraceCacheHit(t *testing.T) {
	srv, ts := testGrid(t)
	startWorker(t, ts.URL, echoExec, 2)
	c := &Client{Server: ts.URL}
	task := mkTask("0", "trace-cached")
	for i := 0; i < 2; i++ {
		ch, err := c.Submit(context.Background(), []Task{task})
		if err != nil {
			t.Fatal(err)
		}
		collectResults(t, ch)
	}
	evs := traceEvents(t, srv, task.Hash)
	if err := ValidateTrace(evs, TraceKindCached); err != nil {
		t.Fatalf("cached trace does not validate: %v\nevents: %+v", err, evs)
	}
	hits := 0
	for _, ev := range evs {
		if ev.Stage == StageCacheHit {
			hits++
		}
	}
	if hits != 1 {
		t.Fatalf("got %d cache_hit events, want 1", hits)
	}
}

// TestTraceCrossPeer submits to a federated member with no workers of
// its own: the job is stolen, and the merged victim+thief event set
// must reconstruct the hop — steal-out on the victim, steal-in on the
// thief, both naming the other peer — and validate as a stolen trace.
func TestTraceCrossPeer(t *testing.T) {
	members := testFederation(t, 2)
	loaded, idle := members[0], members[1]
	startWorker(t, idle.url, echoExec, 2)

	task := mkTask("j0", "trace-steal")
	client := &Client{Server: loaded.url}
	ch, err := client.Submit(context.Background(), []Task{task})
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, ch)

	victim := traceEvents(t, loaded.srv, task.Hash)
	thief := traceEvents(t, idle.srv, task.Hash)
	for i := range victim {
		victim[i].Source = loaded.url
	}
	for i := range thief {
		thief[i].Source = idle.url
	}
	merged := append(append([]TraceEvent{}, victim...), thief...)
	if err := ValidateTrace(merged, TraceKindStolen); err != nil {
		t.Fatalf("stolen trace does not validate: %v\nevents: %+v", err, merged)
	}
	var out, in *TraceEvent
	for i := range merged {
		ev := &merged[i]
		if ev.Stage != StageStolen {
			continue
		}
		switch ev.Detail {
		case "out":
			out = ev
		case "in":
			in = ev
		}
	}
	if out == nil || in == nil {
		t.Fatalf("missing steal-out/steal-in pair in %+v", merged)
	}
	if out.Source != loaded.url || out.Peer != idle.url {
		t.Errorf("steal-out source=%s peer=%s, want source=%s peer=%s", out.Source, out.Peer, loaded.url, idle.url)
	}
	if in.Source != idle.url || in.Peer != loaded.url {
		t.Errorf("steal-in source=%s peer=%s, want source=%s peer=%s", in.Source, in.Peer, idle.url, loaded.url)
	}
}

// TestTraceRingBoundedUnderChurn hammers a tiny ring from concurrent
// batches while polling Stats, pinning the boundedness invariant: the
// ring never holds more than its capacity no matter the churn. Run
// under -race this also exercises the tracer's locking.
func TestTraceRingBoundedUnderChurn(t *testing.T) {
	const cap = 64
	srv, ts := testGrid(t, WithLeaseTTL(time.Second), WithTrace(cap))
	startWorker(t, ts.URL, echoExec, 4)

	stop := make(chan struct{})
	var pollers sync.WaitGroup
	pollers.Add(1)
	go func() {
		defer pollers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			st := srv.Tracer().Stats()
			if st.Events > st.Capacity {
				t.Errorf("ring overflow: %d events > capacity %d", st.Events, st.Capacity)
				return
			}
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := &Client{Server: ts.URL}
			for i := 0; i < 10; i++ {
				tasks := []Task{
					mkTask("a", fmt.Sprintf("churn-%d-%d-a", g, i)),
					mkTask("b", fmt.Sprintf("churn-%d-%d-b", g, i)),
				}
				ch, err := c.Submit(context.Background(), tasks)
				if err != nil {
					t.Error(err)
					return
				}
				for range ch {
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	pollers.Wait()

	st := srv.Tracer().Stats()
	if st.Events > st.Capacity || st.Capacity != cap {
		t.Fatalf("final ring state %+v, want <= capacity %d", st, cap)
	}
	if st.Total <= uint64(cap) {
		t.Fatalf("churn recorded only %d events — not enough to wrap a %d-slot ring", st.Total, cap)
	}
}

// TestTraceDisabled pins the off switch: WithTrace(-1) removes the
// tracer, /v1/trace 404s, and /metrics omits the trace stats.
func TestTraceDisabled(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(time.Second), WithTrace(-1))
	if srv.Tracer() != nil {
		t.Fatal("WithTrace(-1) left a tracer behind")
	}
	resp, err := http.Get(ts.URL + pathTrace)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("/v1/trace on a disabled server: %d, want 404", resp.StatusCode)
	}
	if m := srv.Metrics(); m.Trace != nil {
		t.Fatalf("metrics still report trace stats: %+v", m.Trace)
	}
}

// TestTraceEndpointAndDashboard checks the HTTP surface: /v1/trace
// lists summaries and answers id queries, and /dashboard serves the
// self-contained HTML page.
func TestTraceEndpointAndDashboard(t *testing.T) {
	_, ts := testGrid(t)
	startWorker(t, ts.URL, echoExec, 2)
	c := &Client{Server: ts.URL}
	task := mkTask("0", "trace-http")
	ch, err := c.Submit(context.Background(), []Task{task})
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, ch)

	evs, err := c.TraceEvents(context.Background(), task.Hash)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(evs, TraceKindExec); err != nil {
		t.Fatalf("events over HTTP do not validate: %v", err)
	}
	sums, err := c.TraceList(context.Background(), 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(sums) != 1 || sums[0].Trace != task.Hash {
		t.Fatalf("trace list %+v, want exactly %s", sums, task.Hash)
	}
	if sums[0].Events != len(evs) {
		t.Errorf("summary counts %d events, id query returned %d", sums[0].Events, len(evs))
	}

	resp, err := http.Get(ts.URL + pathDashboard)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/dashboard: %d, want 200", resp.StatusCode)
	}
	page := string(body)
	if !strings.Contains(page, "<html") || !strings.Contains(page, pathMetrics) {
		t.Fatalf("/dashboard does not look like the live page: %.120s", page)
	}
}

// TestTraceSpill streams a tracer's events to an NDJSON writer and
// checks every record arrives intact once Close flushes.
func TestTraceSpill(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(4) // smaller than the event count: the ring drops, the spill must not
	tr.SetSpill(&buf)
	const n = 16
	for i := 0; i < n; i++ {
		tr.Record(TraceEvent{Trace: "sha256:spill", Stage: StageProgress, Uops: uint64(i)})
	}
	tr.Close()

	var got []TraceEvent
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var ev TraceEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		got = append(got, ev)
	}
	dropped := tr.Stats().SpillDropped
	if uint64(len(got))+dropped != n {
		t.Fatalf("spilled %d + dropped %d, want %d total", len(got), dropped, n)
	}
	if len(got) == 0 {
		t.Fatal("spill wrote nothing")
	}
	if got[0].TimeNS == 0 {
		t.Error("spilled event was not timestamped")
	}
}

// TestLeasePollEmpty pins the idle-poll counter: a worker polling an
// empty queue drives lease_poll_empty up without granting anything.
func TestLeasePollEmpty(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(time.Second))
	startWorker(t, ts.URL, echoExec, 1)
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := srv.Metrics()
		if m.LeasePollEmpty > 0 {
			if m.LeasesGranted != 0 {
				t.Fatalf("leases granted on an empty queue: %+v", m)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no empty lease polls counted: %+v", m)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStageHistograms checks that a completed job lands in the tenant's
// per-stage latency summaries and that the Prometheus exposition grew
// the grid_stage_ms histogram and the empty-poll counter.
func TestStageHistograms(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(time.Second), WithTenant("alice", TenantLimits{Weight: 2}))
	startWorker(t, ts.URL, echoExec, 2)
	c := &Client{Server: ts.URL, ClientID: "alice"}
	ch, err := c.Submit(context.Background(), []Task{mkTask("0", "trace-stages")})
	if err != nil {
		t.Fatal(err)
	}
	collectResults(t, ch)

	m := srv.Metrics()
	var alice *TenantMetrics
	for i := range m.Tenants {
		if m.Tenants[i].ID == "alice" {
			alice = &m.Tenants[i]
		}
	}
	if alice == nil {
		t.Fatalf("tenant alice missing from %+v", m.Tenants)
	}
	for _, stage := range []string{"admission", "exec", "e2e"} {
		s, ok := alice.Stages[stage]
		if !ok || s.Count == 0 {
			t.Errorf("stage %s has no observations: %+v", stage, alice.Stages)
		}
	}
	if m.Trace == nil || m.Trace.Total == 0 {
		t.Fatalf("metrics carry no trace stats: %+v", m.Trace)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+pathMetrics, nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	prom := string(raw)
	for _, want := range []string{
		`grid_stage_ms_bucket{tenant="alice",stage="e2e",le="+Inf"}`,
		`grid_stage_ms_count{tenant="alice",stage="exec"}`,
		"grid_lease_poll_empty_total",
		"grid_trace_ring_events",
		"grid_trace_events_total",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom exposition missing %q", want)
		}
	}
}

// TestValidateTraceKinds walks ValidateTrace's refusal edges with
// hand-built event sets.
func TestValidateTraceKinds(t *testing.T) {
	at := func(ns int64, stage string, mut ...func(*TraceEvent)) TraceEvent {
		ev := TraceEvent{Trace: "sha256:v", Stage: stage, TimeNS: ns}
		for _, m := range mut {
			m(&ev)
		}
		return ev
	}
	exec := []TraceEvent{
		at(1, StageAdmitted), at(2, StageEnqueued), at(3, StageLeased), at(5, StageCompleted),
	}
	cases := []struct {
		name    string
		evs     []TraceEvent
		kind    string
		wantErr string
	}{
		{"empty", nil, "", "no events"},
		{"no terminal", exec[:3], "", "no terminal"},
		{"exec ok", exec, TraceKindExec, ""},
		{"exec failed terminal", []TraceEvent{
			at(1, StageAdmitted), at(2, StageEnqueued), at(3, StageLeased), at(5, StageFailed),
		}, TraceKindExec, "terminal is failed"},
		{"exec missing lease", []TraceEvent{
			at(1, StageAdmitted), at(2, StageEnqueued), at(5, StageCompleted),
		}, TraceKindExec, "missing leased"},
		{"not monotonic", []TraceEvent{
			at(5, StageAdmitted), at(2, StageEnqueued), at(3, StageLeased), at(6, StageCompleted),
		}, "", "not monotonic"},
		{"cached ok", []TraceEvent{
			at(1, StageAdmitted), at(2, StageEnqueued), at(3, StageLeased), at(5, StageCompleted),
			at(10, StageAdmitted), at(11, StageCacheHit),
		}, TraceKindCached, ""},
		{"cached but re-leased", []TraceEvent{
			at(1, StageAdmitted), at(2, StageCacheHit), at(3, StageLeased), at(5, StageCompleted),
		}, TraceKindCached, "exec span not zero"},
		{"stolen ok", []TraceEvent{
			at(1, StageAdmitted), at(2, StageEnqueued),
			at(3, StageStolen, func(e *TraceEvent) { e.Peer = "http://thief"; e.Detail = "out" }),
			at(4, StageLeased), at(5, StageCompleted),
		}, TraceKindStolen, ""},
		{"stolen without peer", []TraceEvent{
			at(1, StageAdmitted), at(2, StageStolen), at(5, StageCompleted),
		}, TraceKindStolen, "no peer"},
		{"stolen without hop", exec, TraceKindStolen, "no stolen event"},
		{"unknown kind", exec, "bogus", "unknown trace kind"},
	}
	for _, tc := range cases {
		err := ValidateTrace(tc.evs, tc.kind)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: got %v, want error containing %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestDurationsUnobserved pins the -1 convention for spans whose
// endpoints were never recorded.
func TestDurationsUnobserved(t *testing.T) {
	d := Durations([]TraceEvent{
		{Trace: "sha256:d", Stage: StageAdmitted, TimeNS: 10},
		{Trace: "sha256:d", Stage: StageCacheHit, TimeNS: 25},
	})
	if d.EndToEnd != 15 {
		t.Errorf("end-to-end %d, want 15", d.EndToEnd)
	}
	for name, v := range map[string]time.Duration{
		"admission": d.Admission, "queue": d.Queue,
		"first_progress": d.FirstProgress, "exec": d.Exec,
	} {
		if v >= 0 {
			t.Errorf("span %s = %s, want unobserved (-1)", name, v)
		}
	}
}

// TestTraceOriginRoundTrip pins the X-Grid-Trace steal annotation
// format both ways, and that foreign headers (a worker's bare hash
// echo) are not mistaken for one.
func TestTraceOriginRoundTrip(t *testing.T) {
	h := formatTraceOrigin("http://victim:1", "t42", 3)
	o, ok := parseTraceOrigin(h)
	if !ok || o.peer != "http://victim:1" || o.task != "t42" || o.hop != 3 {
		t.Fatalf("round trip gave %+v ok=%v from %q", o, ok, h)
	}
	for _, foreign := range []string{"", "sha256:abcd", "task=t1;hop=2"} {
		if _, ok := parseTraceOrigin(foreign); ok {
			t.Errorf("foreign header %q parsed as a steal origin", foreign)
		}
	}
}
