// Package grid is the distributed simulation fabric: a job server that
// shards simulation batches over process-separated workers, with a
// content-addressed result store in front of the queue so repeated sweep
// points are served from cache instead of re-simulated.
//
// The package is deliberately payload-agnostic — jobs and results travel
// as opaque JSON blobs keyed by a caller-supplied content hash — so it
// carries the public repro.Job/Result wire forms without importing them
// (the root package imports grid for its WithGrid dispatch, not the other
// way around). The three roles:
//
//   - Server: accepts Task batches over HTTP (POST /v1/batch), answers
//     cache hits immediately, queues the rest by priority, leases queued
//     tasks to polling workers with heartbeat-renewed deadlines (a worker
//     that dies mid-task loses its lease and the task is reassigned), and
//     streams TaskResults back to the submitting client as NDJSON.
//     Client disconnect cancels the batch: queued tasks are dropped and
//     leased ones are cancelled at the worker's next heartbeat.
//   - Worker: pulls leases (long-poll POST /v1/lease), runs each payload
//     through its ExecFunc on a bounded local pool, posts completions
//     (POST /v1/complete) and heartbeats (POST /v1/heartbeat) that renew
//     leases and report load so the server can balance shards.
//   - Client: submits a batch and decodes the NDJSON result stream.
//
// Identical tasks are deduplicated at every layer: a hash already in the
// store is a cache hit, a hash already queued or leased is coalesced onto
// the in-flight task, and every subscriber receives its own copy of the
// single result.
package grid

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"strings"
)

// Task is one unit of work: an opaque payload with a batch-scoped ID and
// a content hash. The hash is the cache key — callers must derive it from
// a canonical encoding of the payload (repro jobs use Job.Hash); when it
// is empty the server hashes the raw payload bytes as a fallback.
type Task struct {
	// ID names the task within its batch; results echo it. IDs need only
	// be unique per batch (the repro dispatcher uses the job index).
	ID string `json:"id"`
	// Hash is the content address, "sha256:<hex>".
	Hash string `json:"hash,omitempty"`
	// Priority orders the queue: higher runs first, ties FIFO.
	Priority int `json:"priority,omitempty"`
	// Payload is the job encoding, executed verbatim by a worker's Exec.
	Payload json.RawMessage `json:"payload"`
	// Attempt is the lease generation, stamped by the server at grant
	// time and echoed back on completion. It lets the server tell a
	// current execution's report from a superseded one: a worker whose
	// lease expired and was re-granted — possibly to the same worker —
	// aborts the old attempt with a context error, and that abort must
	// not fail the attempt now running. Clients leave it zero.
	Attempt int `json:"attempt,omitempty"`
	// Profile is an optional locality key: jobs sharing expensive warm
	// state (the repro dispatcher hashes workload+config) carry the same
	// profile, and the server prefers granting a task to a worker that
	// recently ran its profile (affinity scheduling). Empty opts out.
	Profile string `json:"profile,omitempty"`
	// Hops counts how many times the task has been stolen between
	// federated servers; a server refuses to let peers steal a task at
	// its max-hop bound, so work cannot ping-pong around a federation.
	Hops int `json:"hops,omitempty"`
}

// TaskResult is one streamed batch outcome — or, when Progress is set,
// an interim progress event for a task that is still running (only sent
// on streams that requested progress; every other field except ID and
// Hash is empty on such lines).
type TaskResult struct {
	// ID is the submitting batch's task ID.
	ID string `json:"id"`
	// Hash echoes the task's content address.
	Hash string `json:"hash,omitempty"`
	// Cached reports that the result was served from the content-addressed
	// store without running.
	Cached bool `json:"cached,omitempty"`
	// Payload is the result encoding produced by the worker's Exec; nil
	// when Err is set.
	Payload json.RawMessage `json:"payload,omitempty"`
	// Err is the execution failure, empty on success.
	Err string `json:"error,omitempty"`
	// Progress marks this line as an interval progress event, not a
	// final result; the task will still deliver exactly one final line.
	Progress *TaskProgress `json:"progress,omitempty"`
}

// TaskProgress is one interval-granular snapshot of a running task,
// published by its worker over heartbeats and fanned out to subscribed
// batch streams and /metrics. Progress is best-effort and lossy by
// design: snapshots may be dropped or arrive coarser than the execution
// reported them, and only the latest one per task is retained.
type TaskProgress struct {
	// ID is the task being reported: the server-side task ID on the
	// heartbeat leg and in /metrics, the batch's own job ID on a batch
	// stream.
	ID string `json:"id"`
	// Hash is the task's content address.
	Hash string `json:"hash,omitempty"`
	// Uops is the committed-uop count of the measured phase so far;
	// Total is the job's full budget (0 when the execution doesn't know).
	Uops  uint64 `json:"uops"`
	Total uint64 `json:"total,omitempty"`
	// IntervalIPC is the IPC of the most recent feedback interval.
	IntervalIPC float64 `json:"interval_ipc,omitempty"`
	// Rung names the steering feature set governing the interval.
	Rung string `json:"rung,omitempty"`
	// Phase is the interval's program-phase ID, -1 when the execution
	// has no phase detector (static policies).
	Phase int `json:"phase"`
	// Worker names the reporting worker.
	Worker string `json:"worker,omitempty"`
	// BatchEtaMS is the server's rough estimate, stamped when the event
	// is fanned to a batch stream, of how many milliseconds remain until
	// the whole batch finishes (0 when the server cannot estimate yet).
	BatchEtaMS int64 `json:"batch_eta_ms,omitempty"`
}

// TaskStoppedError is the Err string of a final TaskResult synthesized
// for a job its own batch stopped early via the cancel endpoint (clients
// map it onto their early-stop sentinel).
const TaskStoppedError = "grid: job stopped by client"

// ExecFunc runs one task payload to a result payload. It must honour ctx:
// the worker cancels it when the server reports the task cancelled (its
// batch client disconnected or stopped the job early) or the lease went
// stale.
type ExecFunc func(ctx context.Context, payload []byte) ([]byte, error)

// ProgressExecFunc is an ExecFunc that additionally reports interval
// progress through report. The worker overwrites ID, Hash and Worker on
// every snapshot, so executions only fill the measurement fields. report
// must not be called after the function returns.
type ProgressExecFunc func(ctx context.Context, payload []byte, report func(TaskProgress)) ([]byte, error)

// The wire protocol paths. Everything is HTTP/JSON; /v1/batch responds
// with an NDJSON stream and the /v1/store payload legs carry raw bytes.
const (
	pathBatch     = "/v1/batch"
	pathLease     = "/v1/lease"
	pathHeartbeat = "/v1/heartbeat"
	pathComplete  = "/v1/complete"
	pathCancel    = "/v1/cancel"
	pathMetrics   = "/metrics"
	// pathMetricsProm serves the same counters in Prometheus text
	// exposition form (also reachable via Accept: text/plain or
	// ?format=prom on /metrics).
	pathMetricsProm = "/metrics/prom"
	pathHealthz     = "/healthz"
	// The shared cache tier: a server exposes its Storage over HTTP so a
	// RemoteStore on a peer can use it as its own store (the federation's
	// single source of cached results).
	pathStoreGet  = "/v1/store/get"
	pathStorePut  = "/v1/store/put"
	pathStoreStat = "/v1/store/stat"
	// The peer protocol (see Federation): membership announcements,
	// status snapshots for steal decisions, and work stealing itself.
	pathPeerAnnounce = "/v1/peer/announce"
	pathPeerStatus   = "/v1/peer/status"
	pathPeerSteal    = "/v1/peer/steal"
	// pathPeerRelease returns a stolen lease whose loopback handoff on the
	// thief failed, so the victim can requeue immediately instead of
	// waiting out the lease TTL.
	pathPeerRelease = "/v1/peer/release"
	// The observability surface: /v1/trace serves the tracer's ring
	// (events of one trace/task/batch with ?id=, recent summaries
	// without), /dashboard the self-contained live HTML dashboard.
	pathTrace     = "/v1/trace"
	pathDashboard = "/dashboard"
)

// PeerWorkerPrefix marks lease-protocol worker names that are actually
// federated peers stealing work ("peer:<base URL>"). Peer holders are
// excluded from the Workers gauge, which keeps meaning simulation
// workers.
const PeerWorkerPrefix = "peer:"

// announceRequest is a federation membership beacon: the sender's
// advertised base URL. The response returns every peer the receiver
// knows, so static -peers seeds gossip into a full mesh.
type announceRequest struct {
	Peer string `json:"peer"`
}

type announceResponse struct {
	Peers []string `json:"peers,omitempty"`
}

// stealRequest asks a loaded server to hand over queued tasks: the
// thief identifies itself by base URL and caps how many tasks it can
// absorb. The victim answers with regular lease grants (attempt tokens
// and all) under the worker name "peer:<url>", so the stolen work rides
// the exact same exactly-once discipline as a local lease.
type stealRequest struct {
	Peer string `json:"peer"`
	Max  int    `json:"max"`
}

// releaseRequest hands a stolen lease back: the thief's loopback batch
// was never admitted (its own server died or refused the work), so it
// returns the task — identified by ID and the attempt token from the
// steal grant, the same discipline /v1/complete uses — and the victim
// requeues it immediately rather than stranding it until lease expiry.
type releaseRequest struct {
	Peer    string `json:"peer"`
	ID      string `json:"id"`
	Attempt int    `json:"attempt"`
}

type releaseResponse struct {
	// Released reports that the task was still leased to this peer at
	// this attempt and went back on the queue; false means the release
	// was stale (expired, reassigned, or already finished) and nothing
	// happened.
	Released bool `json:"released,omitempty"`
}

// PeerStatus is one federated server's load snapshot, served on
// /v1/peer/status and consumed by peers deciding where to steal from
// (and by `helperd federate` for operators).
type PeerStatus struct {
	Self         string   `json:"self,omitempty"`
	QueueDepth   int      `json:"queue_depth"`
	Stealable    int      `json:"stealable"`
	Leased       int      `json:"leased"`
	Workers      int      `json:"workers"`
	FreeCapacity int      `json:"free_capacity"`
	StoreEntries int      `json:"store_entries"`
	StealsOut    uint64   `json:"steals_out"`
	StealsIn     uint64   `json:"steals_in"`
	// WorstEtaMS is the largest projected time-to-finish, in
	// milliseconds, over this server's connected batches that still have
	// queued work — the published BatchETA of the batch that will finish
	// last. Thieves prefer the victim with the worst ETA, so stealing
	// shortens the federation's critical path instead of just draining
	// the deepest queue. Zero when no ETA can be projected yet.
	WorstEtaMS int64    `json:"worst_eta_ms,omitempty"`
	Peers      []string `json:"peers,omitempty"`
}

// batchHeader is the response header carrying the server-assigned batch
// ID of a /v1/batch stream; /v1/cancel addresses jobs through it.
const batchHeader = "X-Grid-Batch"

// retryHeader is the request header carrying the client's retry attempt
// number on a resubmitted /v1/batch (0 on the first try). The server
// ignores it; tests and operators use it to observe backoff behaviour.
const retryHeader = "X-Grid-Retry"

// batchRefusal is the JSON body of an admission refusal (HTTP 429 for
// per-tenant rate/quota rejections, 503 for server-wide overload). The
// Retry-After header carries the same hint in whole seconds; RetryAfterMS
// is the precise one. Retryable false means waiting cannot help — the
// batch exceeds a hard cap outright — and the client fails fast.
type batchRefusal struct {
	Error        string `json:"error"`
	Reason       string `json:"reason"` // "rate" | "quota" | "overload"
	Tenant       string `json:"tenant,omitempty"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
	Retryable    bool   `json:"retryable"`
}

type batchRequest struct {
	Jobs []Task `json:"jobs"`
	// Progress subscribes the stream to interval progress events for its
	// jobs (TaskResult lines with Progress set, interleaved best-effort
	// with final results).
	Progress bool `json:"progress,omitempty"`
}

// cancelRequest stops individual jobs of a live batch early: the batch's
// subscriptions to them are dropped (each answered by a final stopped
// result on the stream) and tasks left with no subscribers are cancelled
// at their worker, exactly like a full client disconnect.
type cancelRequest struct {
	// Batch is the stream's server-assigned ID (the batchHeader value).
	Batch string `json:"batch"`
	// IDs are the batch's own job IDs to stop.
	IDs []string `json:"ids"`
}

type cancelResponse struct {
	// Stopped counts the jobs actually unsubscribed (unknown or already
	// finished IDs are skipped).
	Stopped int `json:"stopped"`
}

type leaseRequest struct {
	// Worker names the polling worker (heartbeats and completions must
	// use the same name).
	Worker string `json:"worker"`
	// Capacity and InFlight are the worker's /healthz-style load report:
	// the server grants at most Capacity-InFlight tasks, so a loaded
	// worker never hoards leases another shard could run.
	Capacity int `json:"capacity"`
	InFlight int `json:"in_flight"`
	// WaitMS long-polls: the server holds the request up to this long
	// waiting for work before answering empty.
	WaitMS int `json:"wait_ms,omitempty"`
}

type leaseResponse struct {
	Tasks []Task `json:"tasks,omitempty"`
	// LeaseMS is the lease TTL; the worker must heartbeat well within it.
	LeaseMS int64 `json:"lease_ms"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	// Tasks are the task IDs the worker currently holds.
	Tasks    []string `json:"tasks,omitempty"`
	InFlight int      `json:"in_flight"`
	// Progress carries the latest interval snapshot of each in-flight
	// task that reported one since the previous beat.
	Progress []TaskProgress `json:"progress,omitempty"`
}

type heartbeatResponse struct {
	// Cancelled lists held tasks whose every subscriber disconnected; the
	// worker should abort them.
	Cancelled []string `json:"cancelled,omitempty"`
	// Stale lists held tasks the server no longer considers leased to this
	// worker (the lease expired and was reassigned); abort them too.
	Stale []string `json:"stale,omitempty"`
}

type completeRequest struct {
	Worker string `json:"worker"`
	ID     string `json:"id"`
	Hash   string `json:"hash,omitempty"`
	// Attempt echoes the lease generation of the Task being reported.
	Attempt int             `json:"attempt,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
	Err     string          `json:"error,omitempty"`
}

type completeResponse struct {
	// Stale reports that the completion arrived for a lease the server had
	// already expired or a task already finished elsewhere; the work is
	// banked in the store when successful, but nothing else happened.
	Stale bool `json:"stale,omitempty"`
}

// HashBytes returns the content address of a raw payload: "sha256:<hex>"
// over the bytes as given. Callers with a canonical encoding (the repro
// Job JSON) should hash that; this is the shared primitive.
func HashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return "sha256:" + hex.EncodeToString(sum[:])
}

// BaseURL normalizes a server address to a base URL: ":8321" and
// "host:8321" gain the http scheme (bare ports bind to localhost), full
// URLs pass through with any trailing slash trimmed.
func BaseURL(addr string) string {
	addr = strings.TrimRight(strings.TrimSpace(addr), "/")
	if addr == "" {
		return addr
	}
	if strings.Contains(addr, "://") {
		return addr
	}
	if strings.HasPrefix(addr, ":") {
		return "http://127.0.0.1" + addr
	}
	return "http://" + addr
}
