package grid

import (
	"bufio"
	"bytes"
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"
	"time"
)

// DiskStore is the crash-safe on-disk Storage implementation. Layout
// under its directory:
//
//	objects/<name>   one file per hash: a JSON header line, then the
//	                 payload bytes verbatim. Written tmp-then-rename, so
//	                 a crash mid-write never leaves a half entry under a
//	                 live name.
//	index.log        append-only recency log, one JSON line per Put.
//	                 Rewritten atomically (tmp + rename) on open by the
//	                 directory's elected compactor (see the .lock file),
//	                 which both compacts it and heals any corruption.
//	quarantine/      entries that failed verification on load or read,
//	                 moved aside (never deleted) for post-mortems.
//
// The object file — not the index — is the source of truth: recovery
// scans the objects directory, verifies every entry against its recorded
// payload checksum, quarantines what fails, and only then uses the index
// to restore LRU recency order (entries the index missed, e.g. a crash
// between the object rename and the index append, are adopted as
// least-recent). A torn or garbage index therefore costs ordering
// information, never data, and a torn entry is skipped, never served.
//
// Every Get re-verifies the payload checksum before returning it, so a
// payload corrupted after recovery (bit rot, a truncating crash during
// eviction) is quarantined and reported as a miss instead of served.
type DiskStore struct {
	dir      string
	maxBytes int64

	mu      sync.Mutex
	entries map[string]*diskEntry
	lru     *list.List // front = most recently used
	total   int64      // payload bytes across entries
	hits    uint64
	misses  uint64
	index   *os.File // append-only, already positioned at the end

	quarantined uint64
	evicted     uint64

	// Shared-directory coordination: several servers may open the same
	// store dir (the federation's co-located cache seam). The first
	// opener takes an exclusive flock on .lock and becomes the
	// compactor — only it sweeps orphaned temp files and rewrites
	// index.log, so a second opener can never delete the first's
	// in-progress temps or strand its index append handle on an
	// unlinked inode. Non-compactors are append-only on the index.
	lockf     *os.File
	compactor bool
}

// diskEntry is the in-memory handle of one stored payload.
type diskEntry struct {
	hash string
	size int64 // payload bytes (excluding the header line)
	elem *list.Element
	// mtime is the object file's modification time as of when this
	// store learned of it (write or recovery). Eviction re-stats the
	// file and refuses to delete one that is newer — on a shared dir
	// that means another server re-wrote the object after we recorded
	// it, and deleting would evict their just-written result.
	mtime time.Time
}

// entryHeader is the JSON header line of an object file. Sum and Len pin
// the payload that follows; a mismatch on either marks the entry corrupt.
type entryHeader struct {
	Hash string `json:"hash"`
	Sum  string `json:"sum"`
	Len  int64  `json:"len"`
}

// indexRecord is one line of index.log.
type indexRecord struct {
	Hash string `json:"hash"`
	Size int64  `json:"size"`
}

// DiskOption configures a DiskStore.
type DiskOption func(*DiskStore)

// WithMaxBytes caps the total payload bytes the store keeps on disk;
// when a Put pushes past the cap, least-recently-used entries are
// evicted until it fits. n <= 0 (the default) means unbounded.
func WithMaxBytes(n int64) DiskOption {
	return func(d *DiskStore) { d.maxBytes = n }
}

// OpenDiskStore opens (creating if needed) the content-addressed store
// rooted at dir and recovers its contents: every object file is verified
// against its recorded checksum, corrupt ones are quarantined rather
// than served or deleted, and the index is compacted. Recovery never
// fails the open on bad entries — only on an unusable directory.
func OpenDiskStore(dir string, opts ...DiskOption) (*DiskStore, error) {
	d := &DiskStore{
		dir:     dir,
		entries: map[string]*diskEntry{},
		lru:     list.New(),
	}
	for _, o := range opts {
		o(d)
	}
	for _, sub := range []string{d.objectsDir(), d.quarantineDir()} {
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, fmt.Errorf("grid: disk store: %w", err)
		}
	}
	// Single-compactor election (see the lockf field): a non-blocking
	// exclusive flock, held for the store's lifetime and released by the
	// OS even on kill -9. Losing the election is not an error — the
	// store still serves and appends, it just leaves dir maintenance to
	// the holder.
	if f, err := os.OpenFile(filepath.Join(dir, ".lock"), os.O_CREATE|os.O_RDWR, 0o644); err == nil {
		if syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB) == nil {
			d.lockf = f
			d.compactor = true
		} else {
			f.Close()
		}
	}
	if d.compactor {
		// Sweep temp files orphaned by a crash between CreateTemp and
		// rename (the exact window the atomic writes protect against) —
		// they are incomplete by construction and would otherwise
		// accumulate forever. Compactor-only: a live sibling store's
		// in-progress temps must not be swept from under it.
		for _, pattern := range []string{"entry-*", "index-*"} {
			matches, _ := filepath.Glob(filepath.Join(dir, pattern))
			for _, m := range matches {
				os.Remove(m)
			}
		}
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	if d.compactor {
		if err := d.compactIndex(); err != nil {
			return nil, err
		}
	} else if err := d.openIndexAppend(); err != nil {
		return nil, err
	}
	d.evictLocked()
	return d, nil
}

func (d *DiskStore) objectsDir() string    { return filepath.Join(d.dir, "objects") }
func (d *DiskStore) quarantineDir() string { return filepath.Join(d.dir, "quarantine") }
func (d *DiskStore) indexPath() string     { return filepath.Join(d.dir, "index.log") }

// objectName maps a hash to a filesystem-safe object file name. Hashes
// are caller-supplied strings ("sha256:<hex>" by convention, but the
// store must not trust that), so the name is the hex sha256 of the hash
// string itself: fixed length, no path or separator bytes, collision-free
// for distinct hashes.
func objectName(hash string) string {
	h := HashBytes([]byte(hash))
	return h[len("sha256:"):]
}

// recover scans the objects directory, verifies each entry, quarantines
// failures, and restores LRU order from the surviving index lines.
func (d *DiskStore) recover() error {
	names, err := os.ReadDir(d.objectsDir())
	if err != nil {
		return fmt.Errorf("grid: disk store: %w", err)
	}
	// Verified entries, keyed by hash. Sorted file-name iteration keeps
	// recovery deterministic when the index gives no ordering.
	sort.Slice(names, func(i, j int) bool { return names[i].Name() < names[j].Name() })
	loaded := map[string]*diskEntry{}
	for _, de := range names {
		if de.IsDir() {
			continue
		}
		path := filepath.Join(d.objectsDir(), de.Name())
		hdr, _, err := readEntryFile(path)
		if err != nil {
			// Proven-bad bytes are quarantined; a transiently unreadable
			// file is merely skipped this open (re-adopted next time).
			if errors.Is(err, errCorrupt) {
				d.quarantine(path)
			}
			continue
		}
		if _, dup := loaded[hdr.Hash]; dup || de.Name() != objectName(hdr.Hash) {
			// A header claiming a hash that does not map to this file name
			// (or a duplicate claim) is forged or misplaced — quarantine.
			d.quarantine(path)
			continue
		}
		e := &diskEntry{hash: hdr.Hash, size: hdr.Len}
		if info, err := de.Info(); err == nil {
			e.mtime = info.ModTime()
		}
		loaded[hdr.Hash] = e
	}

	// Replay the index for recency: later lines are more recent. Lines
	// that fail to parse, name unknown hashes, or repeat a hash are
	// skipped — the log is advisory ordering, nothing more.
	ordered := make([]*diskEntry, 0, len(loaded))
	seen := map[string]bool{}
	if f, err := os.Open(d.indexPath()); err == nil {
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		var lines []indexRecord
		for sc.Scan() {
			var rec indexRecord
			if json.Unmarshal(bytes.TrimSpace(sc.Bytes()), &rec) != nil {
				continue
			}
			lines = append(lines, rec)
		}
		// Scanner errors (an absurdly long corrupt line) just truncate the
		// replay; entries keep their fallback order.
		f.Close()
		// Last mention wins: walk backwards so the most recent Put/touch
		// of a hash decides its position, then reverse into oldest-first.
		for i := len(lines) - 1; i >= 0; i-- {
			e, ok := loaded[lines[i].Hash]
			if !ok || seen[lines[i].Hash] {
				continue
			}
			seen[lines[i].Hash] = true
			ordered = append(ordered, e)
		}
		for i, j := 0, len(ordered)-1; i < j; i, j = i+1, j-1 {
			ordered[i], ordered[j] = ordered[j], ordered[i]
		}
	}
	// Orphans the index never mentioned (crash between object rename and
	// index append) are adopted as least-recent, in deterministic order.
	var orphans []*diskEntry
	for hash, e := range loaded {
		if !seen[hash] {
			orphans = append(orphans, e)
		}
	}
	sort.Slice(orphans, func(i, j int) bool { return orphans[i].hash < orphans[j].hash })
	ordered = append(orphans, ordered...)

	for _, e := range ordered {
		e.elem = d.lru.PushFront(e)
		d.entries[e.hash] = e
		d.total += e.size
	}
	return nil
}

// compactIndex atomically rewrites index.log to exactly the recovered
// entries in LRU order (oldest first), then reopens it for appends. This
// bounds the log across restarts and flushes out corrupt lines.
func (d *DiskStore) compactIndex() error {
	tmp, err := os.CreateTemp(d.dir, "index-*")
	if err != nil {
		return fmt.Errorf("grid: disk store: %w", err)
	}
	bw := bufio.NewWriter(tmp)
	enc := json.NewEncoder(bw)
	for el := d.lru.Back(); el != nil; el = el.Prev() {
		e := el.Value.(*diskEntry)
		enc.Encode(indexRecord{Hash: e.hash, Size: e.size})
	}
	if err := bw.Flush(); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("grid: disk store: %w", err)
	}
	tmp.Close()
	if err := os.Rename(tmp.Name(), d.indexPath()); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("grid: disk store: %w", err)
	}
	f, err := os.OpenFile(d.indexPath(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("grid: disk store: %w", err)
	}
	d.index = f
	return nil
}

// openIndexAppend opens index.log for appends without rewriting it —
// the non-compactor path on a shared directory, where replacing the log
// would unlink the inode the compactor's append handle points at (its
// subsequent appends would land in a dead file and be lost).
func (d *DiskStore) openIndexAppend() error {
	f, err := os.OpenFile(d.indexPath(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("grid: disk store: %w", err)
	}
	d.index = f
	return nil
}

// errCorrupt marks an entry whose BYTES are provably wrong (torn
// payload, forged or garbled header) as opposed to a file that merely
// could not be read right now (fd pressure, a transient I/O error).
// Only the former may be quarantined — evicting a healthy entry over a
// passing failure would throw away results forever.
var errCorrupt = errors.New("grid: entry fails verification")

// readEntryFile loads and verifies one object file: header line, then
// exactly header.Len payload bytes whose sha256 matches header.Sum.
// Verification failures wrap errCorrupt; plain read errors do not.
func readEntryFile(path string) (entryHeader, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return entryHeader{}, nil, err
	}
	cut := bytes.IndexByte(data, '\n')
	if cut < 0 {
		return entryHeader{}, nil, fmt.Errorf("%w: %s: no header line", errCorrupt, path)
	}
	var hdr entryHeader
	if err := json.Unmarshal(data[:cut], &hdr); err != nil {
		return entryHeader{}, nil, fmt.Errorf("%w: %s: bad header: %v", errCorrupt, path, err)
	}
	payload := data[cut+1:]
	if hdr.Hash == "" || int64(len(payload)) != hdr.Len || HashBytes(payload) != hdr.Sum {
		return entryHeader{}, nil, fmt.Errorf("%w: %s: payload mismatch", errCorrupt, path)
	}
	return hdr, payload, nil
}

// quarantine moves a bad file aside, preserving it for inspection. The
// destination name is probed to be unused — the suffix counter resets
// every open, and an earlier post-mortem artifact must never be renamed
// over. Move failures fall back to removal so a poisoned file can't be
// re-adopted on the next open.
func (d *DiskStore) quarantine(path string) {
	d.quarantined++
	base := filepath.Base(path)
	var dst string
	for n := d.quarantined; ; n++ {
		dst = filepath.Join(d.quarantineDir(), fmt.Sprintf("%s.%d", base, n))
		if _, err := os.Lstat(dst); os.IsNotExist(err) {
			break
		}
	}
	if os.Rename(path, dst) != nil {
		os.Remove(path)
	}
}

// Get returns the stored payload for hash, re-verified against its
// recorded checksum; a payload corrupted since recovery is quarantined
// and reported as a miss. A transient read failure (fd pressure, an I/O
// blip) is just a miss — the entry stays, since its bytes were never
// proven bad.
func (d *DiskStore) Get(hash string) ([]byte, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[hash]
	if !ok {
		d.misses++
		return nil, false
	}
	path := filepath.Join(d.objectsDir(), objectName(hash))
	hdr, payload, err := readEntryFile(path)
	if err != nil || hdr.Hash != hash {
		if errors.Is(err, errCorrupt) || os.IsNotExist(err) || (err == nil && hdr.Hash != hash) {
			d.dropLocked(e)
			d.quarantine(path)
		}
		d.misses++
		return nil, false
	}
	d.lru.MoveToFront(e.elem)
	d.hits++
	return payload, true
}

// Put stores a successful result payload under hash. First write wins;
// an empty hash or a failed disk write is dropped (the entry is simply
// not cached — callers never see storage errors, matching Storage).
func (d *DiskStore) Put(hash string, payload []byte) {
	if hash == "" {
		return
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, ok := d.entries[hash]; ok {
		return
	}
	mtime, err := d.writeEntry(hash, payload)
	if err != nil {
		return
	}
	e := &diskEntry{hash: hash, size: int64(len(payload)), mtime: mtime}
	e.elem = d.lru.PushFront(e)
	d.entries[hash] = e
	d.total += e.size
	if d.index != nil {
		line, _ := json.Marshal(indexRecord{Hash: hash, Size: e.size})
		d.index.Write(append(line, '\n'))
	}
	d.evictLocked()
}

// writeEntry writes one object file atomically: header + payload into a
// temp file in the store directory (same filesystem), synced, then
// renamed onto its content-derived name. It returns the written file's
// modification time, the reference eviction re-stats against.
func (d *DiskStore) writeEntry(hash string, payload []byte) (time.Time, error) {
	hdr, err := json.Marshal(entryHeader{Hash: hash, Sum: HashBytes(payload), Len: int64(len(payload))})
	if err != nil {
		return time.Time{}, err
	}
	tmp, err := os.CreateTemp(d.dir, "entry-*")
	if err != nil {
		return time.Time{}, err
	}
	_, werr := tmp.Write(append(hdr, '\n'))
	if werr == nil {
		_, werr = tmp.Write(payload)
	}
	if werr == nil {
		werr = tmp.Sync()
	}
	tmp.Close()
	if werr != nil {
		os.Remove(tmp.Name())
		return time.Time{}, werr
	}
	dst := filepath.Join(d.objectsDir(), objectName(hash))
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		return time.Time{}, err
	}
	mtime := time.Now()
	if st, err := os.Stat(dst); err == nil {
		mtime = st.ModTime()
	}
	return mtime, nil
}

// evictLocked removes least-recently-used entries until the store fits
// its byte cap. The index is not rewritten — recovery treats it as
// advisory, so stale lines for evicted entries are harmless and get
// compacted away on the next open.
//
// Before unlinking, each victim's object file is re-statted: a file
// newer than this store's record of it was re-written by another server
// sharing the directory (evict-then-re-put on their side), and deleting
// it here would throw away their just-banked result. Such entries are
// merely forgotten — the bytes stay, owned by whoever rewrote them.
func (d *DiskStore) evictLocked() {
	if d.maxBytes <= 0 {
		return
	}
	for d.total > d.maxBytes && d.lru.Len() > 1 {
		e := d.lru.Back().Value.(*diskEntry)
		d.dropLocked(e)
		path := filepath.Join(d.objectsDir(), objectName(e.hash))
		if st, err := os.Stat(path); err == nil && st.ModTime().After(e.mtime) {
			continue
		}
		os.Remove(path)
		d.evicted++
	}
}

// dropLocked forgets an entry without touching its file.
func (d *DiskStore) dropLocked(e *diskEntry) {
	d.lru.Remove(e.elem)
	delete(d.entries, e.hash)
	d.total -= e.size
}

// Stats reports the entry count and the hit/miss counters.
func (d *DiskStore) Stats() (entries int, hits, misses uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.entries), d.hits, d.misses
}

// DiskStats reports the on-disk footprint: total payload bytes held,
// entries quarantined since open, and entries evicted by the byte cap.
func (d *DiskStore) DiskStats() (totalBytes int64, quarantined, evicted uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total, d.quarantined, d.evicted
}

// Hashes snapshots the held hashes, most recently used first (tests and
// future store-tiering peers).
func (d *DiskStore) Hashes() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, d.lru.Len())
	for el := d.lru.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*diskEntry).hash)
	}
	return out
}

// Close releases the index file handle and the compactor lock (the OS
// releases the flock anyway when the process dies, so a crashed server
// never wedges the directory). Entries are already durable — Close is
// not a flush, and a store that is never closed loses nothing.
func (d *DiskStore) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.lockf != nil {
		d.lockf.Close()
		d.lockf = nil
		d.compactor = false
	}
	if d.index == nil {
		return nil
	}
	err := d.index.Close()
	d.index = nil
	return err
}
