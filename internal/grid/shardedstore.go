package grid

import (
	"bytes"
	"crypto/sha256"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// defaultShardReplication is how many members own each hash unless
// WithShardReplication overrides it: two copies, so the death of any
// single peer loses no cached result.
const defaultShardReplication = 2

// ShardedStore shards one logical result store over the live federation
// membership instead of pointing every member at a single owner (the
// RemoteStore topology, whose owner is a cache SPOF). Each hash is
// rendezvous-hashed over self plus the current peers — the same
// highest-random-weight scheme the client side uses to partition jobs —
// and its top replication-factor members own it.
//
//   - Put writes through to the local store synchronously (the producer
//     always keeps its own copy, and a Get right after a Put still
//     hits even with every peer down), then replicates to the remote
//     owners on their background put queues.
//   - Get serves local hits directly; on a local miss it asks the
//     hash's remote owners in rendezvous order. A remote hit is
//     read-repaired: adopted into the local store and re-replicated to
//     the other owners, so a replica lost with a dead peer is restored
//     the first time anyone asks for it.
//   - Membership is read live from the attached provider (SetMembership
//     wires Federation.Peers), so joiners start owning their share of
//     new hashes without restarts, and with no peers at all the store
//     degrades to plain local operation.
//
// Peer failure policy is the storeClient's: short Get deadlines, a
// cooldown breaker per peer, and counted (never blocking) dropped
// puts. Hit/miss counters are the ShardedStore's own — exactly one per
// Get, per the Storage contract — regardless of which tier answered.
type ShardedStore struct {
	local       Storage
	self        string
	replication int
	secret      string

	mu      sync.Mutex
	members func() []string
	clients map[string]*storeClient

	hits        uint64
	misses      uint64
	remoteHits  atomic.Uint64
	readRepairs atomic.Uint64
}

// ShardOption configures a ShardedStore.
type ShardOption func(*ShardedStore)

// WithShardReplication sets how many members own each hash (default 2;
// values below 1 are clamped to 1, which keeps only the owner copy and
// tolerates no deaths).
func WithShardReplication(n int) ShardOption {
	return func(s *ShardedStore) {
		if n < 1 {
			n = 1
		}
		s.replication = n
	}
}

// WithShardSecret signs every replica request with the federation's
// shared peer secret (see WithPeerSecret on the serving members).
func WithShardSecret(secret string) ShardOption {
	return func(s *ShardedStore) { s.secret = secret }
}

// NewShardedStore shards the federation's cache tier over its live
// membership, fronting local (this member's own store — memory or disk)
// under the advertised base URL self. Wire the membership with
// SetMembership after the Federation exists; until then the store is
// local-only. Call Close when done to stop the replica put workers.
func NewShardedStore(local Storage, self string, opts ...ShardOption) *ShardedStore {
	s := &ShardedStore{
		local:       local,
		self:        BaseURL(self),
		replication: defaultShardReplication,
		clients:     map[string]*storeClient{},
	}
	for _, o := range opts {
		o(s)
	}
	return s
}

// SetMembership attaches the live membership provider (typically
// Federation.Peers). The provider is called on every ownership decision
// and must be safe for concurrent use; self need not be in its answer.
func (s *ShardedStore) SetMembership(fn func() []string) {
	s.mu.Lock()
	s.members = fn
	s.mu.Unlock()
}

// Local exposes the wrapped local store (helperd's disk stats use it).
func (s *ShardedStore) Local() Storage { return s.local }

// owners ranks the live membership (self included) by rendezvous score
// for hash — sha256(hash + "|" + member), highest first, the mirror of
// the client partitioner's peerOrder — and returns the top
// replication-factor members. With no membership attached or no live
// peers the answer is just self: plain local operation.
func (s *ShardedStore) owners(hash string) []string {
	s.mu.Lock()
	fn := s.members
	s.mu.Unlock()
	members := []string{s.self}
	if fn != nil {
		for _, p := range fn() {
			if u := BaseURL(p); u != "" && u != s.self {
				members = append(members, u)
			}
		}
	}
	if len(members) > 1 {
		scores := make(map[string][sha256.Size]byte, len(members))
		for _, m := range members {
			scores[m] = sha256.Sum256([]byte(hash + "|" + m))
		}
		sort.SliceStable(members, func(i, j int) bool {
			a, b := scores[members[i]], scores[members[j]]
			return bytes.Compare(a[:], b[:]) > 0
		})
	}
	if len(members) > s.replication {
		members = members[:s.replication]
	}
	return members
}

// client returns (lazily creating) the storeClient for one member.
func (s *ShardedStore) client(member string) *storeClient {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.clients[member]
	if c == nil {
		c = newStoreClient(member, s.secret)
		s.clients[member] = c
	}
	return c
}

// Get serves hash from the local store, falling back to the remote
// owners in rendezvous order; a remote hit is read-repaired into the
// local store and re-replicated. Exactly one hit or miss is counted.
func (s *ShardedStore) Get(hash string) ([]byte, bool) {
	if hash == "" {
		s.countGet(false)
		return nil, false
	}
	if payload, ok := s.local.Get(hash); ok {
		s.countGet(true)
		return payload, true
	}
	for _, owner := range s.owners(hash) {
		if owner == s.self {
			continue // the local store already missed
		}
		payload, ok := s.client(owner).get(hash)
		if !ok {
			continue
		}
		s.remoteHits.Add(1)
		s.countGet(true)
		// Read-repair: adopt locally and re-fill any owner that lost its
		// copy (first write wins everywhere, so over-repair is harmless).
		s.local.Put(hash, payload)
		s.readRepairs.Add(1)
		for _, other := range s.owners(hash) {
			if other != s.self && other != owner {
				s.client(other).putAsync(hash, payload)
			}
		}
		return payload, true
	}
	s.countGet(false)
	return nil, false
}

func (s *ShardedStore) countGet(hit bool) {
	s.mu.Lock()
	if hit {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
}

// Put writes through to the local store and replicates to the hash's
// remote owners in the background (empty hash ignored, first write wins
// everywhere).
func (s *ShardedStore) Put(hash string, payload []byte) {
	if hash == "" {
		return
	}
	s.local.Put(hash, payload)
	for _, owner := range s.owners(hash) {
		if owner != s.self {
			s.client(owner).putAsync(hash, payload)
		}
	}
}

// Stats reports the local entry count and this store's own hit/miss
// counters (the local store's internal counters are not consulted — a
// ShardedStore Get is one lookup regardless of tier).
func (s *ShardedStore) Stats() (entries int, hits, misses uint64) {
	entries, _, _ = s.local.Stats()
	s.mu.Lock()
	hits, misses = s.hits, s.misses
	s.mu.Unlock()
	return entries, hits, misses
}

// ShardStatsSnapshot is the sharded tier's self-report for /metrics.
type ShardStatsSnapshot struct {
	// Members is the live membership size, self included.
	Members int
	// Replication is the configured owner count per hash.
	Replication int
	RemoteHits  uint64
	ReadRepairs uint64
	DroppedPuts uint64
}

// ShardStats snapshots the sharding counters and configuration.
func (s *ShardedStore) ShardStats() ShardStatsSnapshot {
	s.mu.Lock()
	fn := s.members
	clients := make([]*storeClient, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	st := ShardStatsSnapshot{
		Members:     1,
		Replication: s.replication,
		RemoteHits:  s.remoteHits.Load(),
		ReadRepairs: s.readRepairs.Load(),
	}
	if fn != nil {
		st.Members += len(fn())
	}
	for _, c := range clients {
		st.DroppedPuts += c.droppedPuts()
	}
	return st
}

// DroppedPuts reports background replica writes shed across all peers
// (surfaced as store_puts_dropped in /metrics).
func (s *ShardedStore) DroppedPuts() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n uint64
	for _, c := range s.clients {
		n += c.droppedPuts()
	}
	return n
}

// Flush waits until every peer's pending replica puts drain or timeout
// elapses, reporting whether they all landed (tests and graceful
// shutdown; hot paths never need it).
func (s *ShardedStore) Flush(timeout time.Duration) bool {
	s.mu.Lock()
	clients := make([]*storeClient, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	deadline := time.Now().Add(timeout)
	ok := true
	for _, c := range clients {
		remaining := time.Until(deadline)
		if remaining < 0 {
			remaining = 0
		}
		ok = c.flush(remaining) && ok
	}
	return ok
}

// Close stops every peer's put worker, shedding still-queued writes.
func (s *ShardedStore) Close() {
	s.mu.Lock()
	clients := make([]*storeClient, 0, len(s.clients))
	for _, c := range s.clients {
		clients = append(clients, c)
	}
	s.mu.Unlock()
	for _, c := range clients {
		c.close()
	}
}
