package grid

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Job lifecycle tracing. Every job carries a trace context — the trace
// ID is its content hash (canonical Job.Hash), so identical jobs from
// any batch, any tenant, any federation member share one trace — and
// the server records a typed TraceEvent at each lifecycle stage into a
// bounded in-memory ring (optionally spilled as NDJSON). The span tree
// of a job is reconstructed by collecting its events, across federated
// peers when the job was stolen: the victim records the steal-out, the
// thief's loopback batch carries the origin in the X-Grid-Trace header
// and records the steal-in, and both halves share the trace ID because
// the payload (and therefore the hash) is identical.

// The lifecycle stage names of a TraceEvent.
const (
	// StageAdmitted marks a job clearing admission control into a batch.
	StageAdmitted = "admitted"
	// StageEnqueued marks a task entering the work queue: on creation,
	// and again on every requeue (Detail says why: "reassigned",
	// "speculated").
	StageEnqueued = "enqueued"
	// StageLeased marks a lease grant (Worker + Attempt identify it).
	StageLeased = "leased"
	// StageProgress is one interval snapshot relayed over a heartbeat.
	StageProgress = "progress"
	// StageStolen marks a federation hop: the victim records it with
	// Detail "out" (Peer = thief), the thief with Detail "in" (Peer =
	// victim, from the X-Grid-Trace header on its loopback batch).
	StageStolen = "stolen"
	// Terminal stages: exactly one per execution.
	StageCompleted = "completed"
	StageFailed    = "failed"
	StageCacheHit  = "cache_hit"
)

// TraceEvent is one recorded lifecycle stage of a traced job.
type TraceEvent struct {
	// Trace is the trace ID: the job's content hash ("sha256:<hex>").
	Trace string `json:"trace"`
	// Stage is one of the Stage* constants.
	Stage string `json:"stage"`
	// TimeNS is the wall-clock instant, UnixNano.
	TimeNS int64 `json:"time_ns"`
	// Batch is the server-assigned batch ID for batch-scoped stages
	// (admitted, cache_hit), Task the server-side task ID once one
	// exists.
	Batch string `json:"batch,omitempty"`
	Task  string `json:"task,omitempty"`
	// Tenant is the admitting client's identity on batch-scoped stages.
	Tenant string `json:"tenant,omitempty"`
	// Worker and Attempt identify the lease on leased/progress/terminal
	// stages.
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Peer and Hop describe a federation steal (see StageStolen).
	Peer string `json:"peer,omitempty"`
	Hop  int    `json:"hop,omitempty"`
	// Uops/Total carry the measurement of a progress event.
	Uops  uint64 `json:"uops,omitempty"`
	Total uint64 `json:"total,omitempty"`
	// Detail disambiguates within a stage ("reassigned", "out", "in",
	// "stale", an error message on failed).
	Detail string `json:"detail,omitempty"`
	// Source is the base URL of the server whose ring held the event —
	// stamped by clients merging events across federated peers, never
	// by the recording server itself.
	Source string `json:"source,omitempty"`
}

// TraceSummary is one trace as listed by the no-ID /v1/trace query:
// which stages its ring events cover and when they happened.
type TraceSummary struct {
	Trace   string   `json:"trace"`
	Stages  []string `json:"stages"`
	Events  int      `json:"events"`
	FirstNS int64    `json:"first_ns"`
	LastNS  int64    `json:"last_ns"`
}

// traceResponse is the /v1/trace wire shape: Events for an ID query,
// Traces for a listing.
type traceResponse struct {
	Events []TraceEvent   `json:"events,omitempty"`
	Traces []TraceSummary `json:"traces,omitempty"`
}

// Tracer records lifecycle events into a bounded ring. Recording is a
// mutex-guarded slot write — no allocation, no I/O — so it sits on the
// server's request paths without measurable cost; the optional NDJSON
// spill runs on its own goroutine behind a lossy buffered channel, so a
// slow disk can drop spilled events but never back-pressures the grid.
// A nil *Tracer is valid and records nothing.
type Tracer struct {
	mu    sync.Mutex
	ring  []TraceEvent
	next  int
	count int
	total uint64

	spill     chan TraceEvent
	spillDone chan struct{}
	spillOnce sync.Once
	dropped   atomic.Uint64
}

// DefaultTraceCapacity bounds the ring when the caller does not choose:
// enough for the full span set of a few hundred in-flight jobs.
const DefaultTraceCapacity = 4096

// NewTracer builds a tracer with the given ring capacity (<=0 uses
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{ring: make([]TraceEvent, capacity)}
}

// SetSpill streams every recorded event to w as NDJSON from a dedicated
// goroutine. Call before the tracer is in use (helperd wires it at
// startup). Spill sends are non-blocking: events dropped because the
// writer lags are counted, not waited for.
func (tr *Tracer) SetSpill(w io.Writer) {
	if tr == nil || w == nil {
		return
	}
	tr.spill = make(chan TraceEvent, 256)
	tr.spillDone = make(chan struct{})
	go func() {
		defer close(tr.spillDone)
		enc := json.NewEncoder(w)
		for ev := range tr.spill {
			enc.Encode(ev)
		}
	}()
}

// Close stops the spill goroutine (flushing what is buffered). The ring
// stays readable. Idempotent; a no-op without a spill.
func (tr *Tracer) Close() {
	if tr == nil || tr.spill == nil {
		return
	}
	tr.spillOnce.Do(func() {
		close(tr.spill)
		<-tr.spillDone
	})
}

// Record appends one event to the ring (stamping TimeNS if unset),
// overwriting the oldest once full.
func (tr *Tracer) Record(ev TraceEvent) {
	if tr == nil {
		return
	}
	if ev.TimeNS == 0 {
		ev.TimeNS = time.Now().UnixNano()
	}
	tr.mu.Lock()
	tr.ring[tr.next] = ev
	tr.next = (tr.next + 1) % len(tr.ring)
	if tr.count < len(tr.ring) {
		tr.count++
	}
	tr.total++
	spill := tr.spill
	tr.mu.Unlock()
	if spill != nil {
		select {
		case spill <- ev:
		default:
			tr.dropped.Add(1)
		}
	}
}

// TraceStats is the tracer's self-report in /metrics: ring occupancy
// (Events never exceeds Capacity — the boundedness invariant the churn
// test pins), lifetime Total, and spill-channel drops.
type TraceStats struct {
	Events       int    `json:"events"`
	Capacity     int    `json:"capacity"`
	Total        uint64 `json:"total"`
	SpillDropped uint64 `json:"spill_dropped,omitempty"`
}

// Stats reports the ring occupancy, the events ever recorded, and the
// spill drops.
func (tr *Tracer) Stats() TraceStats {
	if tr == nil {
		return TraceStats{}
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return TraceStats{
		Events:       tr.count,
		Capacity:     len(tr.ring),
		Total:        tr.total,
		SpillDropped: tr.dropped.Load(),
	}
}

// each visits the ring oldest-first.
func (tr *Tracer) each(f func(TraceEvent)) {
	start := tr.next - tr.count
	for i := 0; i < tr.count; i++ {
		f(tr.ring[(start+i+len(tr.ring))%len(tr.ring)])
	}
}

// Events returns the ring's events matching id — a trace ID (content
// hash), a server task ID, or a batch ID — oldest first.
func (tr *Tracer) Events(id string) []TraceEvent {
	if tr == nil || id == "" {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []TraceEvent
	tr.each(func(ev TraceEvent) {
		if ev.Trace == id || ev.Task == id || ev.Batch == id {
			out = append(out, ev)
		}
	})
	return out
}

// Recent summarizes the ring's traces, most recently touched first,
// capped at limit (<=0 means all).
func (tr *Tracer) Recent(limit int) []TraceSummary {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	byTrace := map[string]*TraceSummary{}
	tr.each(func(ev TraceEvent) {
		s := byTrace[ev.Trace]
		if s == nil {
			s = &TraceSummary{Trace: ev.Trace, FirstNS: ev.TimeNS}
			byTrace[ev.Trace] = s
		}
		s.Events++
		if ev.TimeNS > s.LastNS {
			s.LastNS = ev.TimeNS
		}
		if ev.TimeNS < s.FirstNS {
			s.FirstNS = ev.TimeNS
		}
		found := false
		for _, st := range s.Stages {
			if st == ev.Stage {
				found = true
				break
			}
		}
		if !found {
			s.Stages = append(s.Stages, ev.Stage)
		}
	})
	tr.mu.Unlock()
	out := make([]TraceSummary, 0, len(byTrace))
	for _, s := range byTrace {
		out = append(out, *s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LastNS != out[j].LastNS {
			return out[i].LastNS > out[j].LastNS
		}
		return out[i].Trace < out[j].Trace
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

// stageRank breaks timestamp ties so same-instant events sort in
// lifecycle order.
func stageRank(stage string) int {
	switch stage {
	case StageAdmitted:
		return 0
	case StageStolen:
		return 1
	case StageEnqueued:
		return 2
	case StageLeased:
		return 3
	case StageProgress:
		return 4
	default: // terminals
		return 5
	}
}

// SortEvents orders events by time, lifecycle rank within an instant.
func SortEvents(evs []TraceEvent) {
	sort.SliceStable(evs, func(i, j int) bool {
		if evs[i].TimeNS != evs[j].TimeNS {
			return evs[i].TimeNS < evs[j].TimeNS
		}
		return stageRank(evs[i].Stage) < stageRank(evs[j].Stage)
	})
}

// Trace validation kinds for ValidateTrace.
const (
	TraceKindExec   = "exec"   // ran locally: admitted→enqueued→leased→completed
	TraceKindCached = "cached" // latest admission answered by the store, no exec span
	TraceKindStolen = "stolen" // crossed a federation hop before completing
)

// ValidateTrace checks that a merged event set reconstructs a complete,
// monotonic span tree of the given kind ("" accepts any complete
// trace). Completeness means the lifecycle stages the kind implies are
// all present; monotonic means the first occurrence of each pipeline
// stage — admitted, enqueued, leased — and the final terminal never go
// backwards in time. helperd trace -check and the smoke script gate on
// it.
func ValidateTrace(evs []TraceEvent, kind string) error {
	if len(evs) == 0 {
		return errors.New("grid: trace has no events")
	}
	s := make([]TraceEvent, len(evs))
	copy(s, evs)
	SortEvents(s)
	first := map[string]TraceEvent{}
	last := map[string]TraceEvent{}
	for _, ev := range s {
		if _, ok := first[ev.Stage]; !ok {
			first[ev.Stage] = ev
		}
		last[ev.Stage] = ev
	}
	terminal := ""
	var terminalNS int64
	for _, st := range []string{StageCompleted, StageFailed, StageCacheHit} {
		if ev, ok := last[st]; ok && ev.TimeNS >= terminalNS {
			terminal, terminalNS = st, ev.TimeNS
		}
	}
	if terminal == "" {
		return fmt.Errorf("grid: trace incomplete: no terminal event among %s", stageList(first))
	}
	prevStage, prevNS := "", int64(0)
	for _, st := range []string{StageAdmitted, StageEnqueued, StageLeased} {
		ev, ok := first[st]
		if !ok {
			continue
		}
		if ev.TimeNS < prevNS {
			return fmt.Errorf("grid: trace not monotonic: %s at %d precedes %s at %d",
				st, ev.TimeNS, prevStage, prevNS)
		}
		prevStage, prevNS = st, ev.TimeNS
	}
	if terminalNS < prevNS {
		return fmt.Errorf("grid: trace not monotonic: terminal %s at %d precedes %s at %d",
			terminal, terminalNS, prevStage, prevNS)
	}
	switch kind {
	case "":
	case TraceKindExec:
		for _, st := range []string{StageAdmitted, StageEnqueued, StageLeased} {
			if _, ok := first[st]; !ok {
				return fmt.Errorf("grid: exec trace missing %s (stages: %s)", st, stageList(first))
			}
		}
		if terminal != StageCompleted {
			return fmt.Errorf("grid: exec trace terminal is %s, want %s", terminal, StageCompleted)
		}
	case TraceKindCached:
		adm, ok := last[StageAdmitted]
		if !ok {
			return fmt.Errorf("grid: cached trace has no admitted event")
		}
		hit, ok := last[StageCacheHit]
		if !ok || hit.TimeNS < adm.TimeNS {
			return fmt.Errorf("grid: latest admission was not served from cache (stages: %s)", stageList(first))
		}
		// Zero exec span: nothing was leased after the cached admission.
		if l, ok := last[StageLeased]; ok && l.TimeNS >= adm.TimeNS {
			return fmt.Errorf("grid: cached trace shows a lease after admission — exec span not zero")
		}
	case TraceKindStolen:
		st, ok := first[StageStolen]
		if !ok {
			return fmt.Errorf("grid: stolen trace has no %s event (stages: %s)", StageStolen, stageList(first))
		}
		if st.Peer == "" {
			return fmt.Errorf("grid: stolen event carries no peer")
		}
		if terminal != StageCompleted {
			return fmt.Errorf("grid: stolen trace terminal is %s, want %s", terminal, StageCompleted)
		}
	default:
		return fmt.Errorf("grid: unknown trace kind %q", kind)
	}
	return nil
}

func stageList(m map[string]TraceEvent) string {
	out := make([]string, 0, len(m))
	for st := range m {
		out = append(out, st)
	}
	sort.Strings(out)
	if len(out) == 0 {
		return "none"
	}
	return strings.Join(out, ",")
}

// SpanDurations are the reconstructed per-stage latencies of one trace,
// the operator-facing digest helperd trace prints. A negative field
// means the span's endpoints were not both observed.
type SpanDurations struct {
	// Admission: admitted → enqueued (includes the store lookup).
	Admission time.Duration
	// Queue: enqueued → first lease.
	Queue time.Duration
	// FirstProgress: first lease → first progress snapshot.
	FirstProgress time.Duration
	// Exec: last lease → terminal.
	Exec time.Duration
	// EndToEnd: admitted → terminal.
	EndToEnd time.Duration
}

// Durations reconstructs the span latencies from a (merged) event set.
func Durations(evs []TraceEvent) SpanDurations {
	s := make([]TraceEvent, len(evs))
	copy(s, evs)
	SortEvents(s)
	first := map[string]TraceEvent{}
	last := map[string]TraceEvent{}
	for _, ev := range s {
		if _, ok := first[ev.Stage]; !ok {
			first[ev.Stage] = ev
		}
		last[ev.Stage] = ev
	}
	var terminalNS int64
	for _, st := range []string{StageCompleted, StageFailed, StageCacheHit} {
		if ev, ok := last[st]; ok && ev.TimeNS > terminalNS {
			terminalNS = ev.TimeNS
		}
	}
	span := func(a, b int64) time.Duration {
		if a == 0 || b == 0 {
			return -1
		}
		return time.Duration(b - a)
	}
	stageNS := func(m map[string]TraceEvent, st string) int64 {
		if ev, ok := m[st]; ok {
			return ev.TimeNS
		}
		return 0
	}
	return SpanDurations{
		Admission:     span(stageNS(first, StageAdmitted), stageNS(first, StageEnqueued)),
		Queue:         span(stageNS(first, StageEnqueued), stageNS(first, StageLeased)),
		FirstProgress: span(stageNS(first, StageLeased), stageNS(first, StageProgress)),
		Exec:          span(stageNS(last, StageLeased), terminalNS),
		EndToEnd:      span(stageNS(first, StageAdmitted), terminalNS),
	}
}

// The X-Grid-Trace header carries trace context between grid roles: a
// thief's loopback batch annotates the steal origin so the hop appears
// in the thief's ring, and worker completion posts echo the task's
// trace ID so even a stale completion (the server already forgot the
// task) still lands in the trace.
const TraceHeader = "X-Grid-Trace"

// traceOrigin is the parsed X-Grid-Trace steal annotation.
type traceOrigin struct {
	peer string
	task string
	hop  int
}

// formatTraceOrigin encodes a steal origin for the X-Grid-Trace header.
func formatTraceOrigin(peer, task string, hop int) string {
	return fmt.Sprintf("stolen-from=%s;task=%s;hop=%d", peer, task, hop)
}

// parseTraceOrigin decodes a steal annotation; ok is false for an
// absent or foreign-shaped header (a bare trace ID, a worker echo).
func parseTraceOrigin(h string) (traceOrigin, bool) {
	if !strings.HasPrefix(h, "stolen-from=") {
		return traceOrigin{}, false
	}
	var o traceOrigin
	for _, part := range strings.Split(h, ";") {
		k, v, ok := strings.Cut(part, "=")
		if !ok {
			continue
		}
		switch k {
		case "stolen-from":
			o.peer = v
		case "task":
			o.task = v
		case "hop":
			o.hop, _ = strconv.Atoi(v)
		}
	}
	return o, o.peer != ""
}
