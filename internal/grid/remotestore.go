package grid

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"
)

// RemoteStore is the networked Storage implementation: Get, Put and the
// entry count translate to the /v1/store/get|put|stat endpoints of a
// peer grid server, making that peer's store this server's cache tier.
// It is the federation's shared-storage seam when peers cannot share a
// DiskStore directory: point every server's RemoteStore at one peer and
// a result banked anywhere is a cache hit everywhere.
//
// Failure policy: the store is a cache, so network trouble must never
// fail a sweep — an unreachable peer turns Get into a miss (the job
// simply re-simulates) and drops Put (the result is still delivered;
// only its reuse is lost). Hit/miss counters are local to this client,
// keeping the Storage contract's exactly-one-of accounting per Get.
type RemoteStore struct {
	base string
	http *http.Client

	mu     sync.Mutex
	hits   uint64
	misses uint64
}

// NewRemoteStore returns a Storage backed by the grid server at addr
// (BaseURL rules: ":8321", "host:8321" or a full http URL).
func NewRemoteStore(addr string) *RemoteStore {
	return &RemoteStore{
		base: BaseURL(addr),
		// Bounded so a wedged peer cannot stall batch admission forever;
		// generous enough for a large result payload on a slow link.
		http: &http.Client{Timeout: 30 * time.Second},
	}
}

// Remote reports the peer base URL this store speaks to.
func (s *RemoteStore) Remote() string { return s.base }

// Get fetches the stored payload for hash from the peer, counting the
// lookup as a hit or miss. Any transport or server error is a miss.
func (s *RemoteStore) Get(hash string) ([]byte, bool) {
	payload, ok := s.fetch(hash)
	s.mu.Lock()
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return payload, ok
}

func (s *RemoteStore) fetch(hash string) ([]byte, bool) {
	if hash == "" {
		return nil, false
	}
	resp, err := s.http.Get(s.base + pathStoreGet + "?hash=" + url.QueryEscape(hash))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, maxStorePayload))
	if err != nil {
		return nil, false
	}
	return payload, true
}

// Put banks a successful result payload under hash at the peer (first
// write wins there, empty hash ignored here). A failed write is
// dropped: the result was already delivered to its subscribers, only
// its cache reuse is lost.
func (s *RemoteStore) Put(hash string, payload []byte) {
	if hash == "" {
		return
	}
	resp, err := s.http.Post(
		s.base+pathStorePut+"?hash="+url.QueryEscape(hash),
		"application/octet-stream", bytes.NewReader(payload))
	if err != nil {
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
}

// Stats reports the peer's entry count (0 when unreachable) and this
// client's own hit/miss counters.
func (s *RemoteStore) Stats() (entries int, hits, misses uint64) {
	s.mu.Lock()
	hits, misses = s.hits, s.misses
	s.mu.Unlock()
	resp, err := s.http.Get(s.base + pathStoreStat)
	if err != nil {
		return 0, hits, misses
	}
	defer resp.Body.Close()
	var st storeStat
	if resp.StatusCode != http.StatusOK || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return 0, hits, misses
	}
	return st.Entries, hits, misses
}
