package grid

import (
	"sync"
	"time"
)

// RemoteStore is the networked Storage implementation: Get, Put and the
// entry count translate to the /v1/store/get|put|stat endpoints of a
// peer grid server, making that peer's store this server's cache tier.
// It is the federation's shared-storage seam when peers cannot share a
// DiskStore directory: point every server's RemoteStore at one peer and
// a result banked anywhere is a cache hit everywhere. (For a tier that
// survives the death of any one member, see ShardedStore.)
//
// Failure policy: the store is a cache, so network trouble must never
// fail a sweep — an unreachable peer turns Get into a miss (the job
// simply re-simulates) and sheds Put. Gets are synchronous but bounded
// by a short deadline plus a cooldown breaker, so a wedged peer costs
// the admission path one short timeout per cooldown window instead of
// 30s per lookup; Puts run on a background bounded queue whose overflow
// and failures are counted in DroppedPuts instead of lost silently.
// Hit/miss counters are local to this client, keeping the Storage
// contract's exactly-one-of accounting per Get.
type RemoteStore struct {
	c *storeClient

	mu     sync.Mutex
	hits   uint64
	misses uint64
}

// RemoteStoreOption configures a RemoteStore.
type RemoteStoreOption func(*RemoteStore)

// WithRemoteSecret signs every store request with the federation's
// shared peer secret (see WithPeerSecret on the serving peer).
func WithRemoteSecret(secret string) RemoteStoreOption {
	return func(s *RemoteStore) { s.c.secret = secret }
}

// NewRemoteStore returns a Storage backed by the grid server at addr
// (BaseURL rules: ":8321", "host:8321" or a full http URL). Call Close
// when done to stop the background put worker.
func NewRemoteStore(addr string, opts ...RemoteStoreOption) *RemoteStore {
	s := &RemoteStore{c: newStoreClient(addr, "")}
	for _, o := range opts {
		o(s)
	}
	return s
}

// Remote reports the peer base URL this store speaks to.
func (s *RemoteStore) Remote() string { return s.c.base }

// Get fetches the stored payload for hash from the peer, counting the
// lookup as a hit or miss. Any transport or server error is a miss.
func (s *RemoteStore) Get(hash string) ([]byte, bool) {
	payload, ok := s.c.get(hash)
	s.mu.Lock()
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return payload, ok
}

// Put banks a successful result payload under hash at the peer (first
// write wins there, empty hash ignored here). The write happens on the
// background put queue; a shed write only loses cache reuse, and is
// counted in DroppedPuts.
func (s *RemoteStore) Put(hash string, payload []byte) {
	s.c.putAsync(hash, payload)
}

// Stats reports the peer's entry count (0 when unreachable) and this
// client's own hit/miss counters.
func (s *RemoteStore) Stats() (entries int, hits, misses uint64) {
	s.mu.Lock()
	hits, misses = s.hits, s.misses
	s.mu.Unlock()
	st, ok := s.c.stat()
	if !ok {
		return 0, hits, misses
	}
	return st.Entries, hits, misses
}

// DroppedPuts reports how many background writes were shed (peer down,
// queue overflow, or write failure); surfaced as store_puts_dropped in
// the serving Server's /metrics.
func (s *RemoteStore) DroppedPuts() uint64 { return s.c.droppedPuts() }

// Flush waits until pending background puts drain or timeout elapses,
// reporting whether they all landed. Tests and graceful shutdown use it;
// the serving hot paths never need to.
func (s *RemoteStore) Flush(timeout time.Duration) bool { return s.c.flush(timeout) }

// Close stops the background put worker, shedding still-queued writes.
func (s *RemoteStore) Close() { s.c.close() }
