package grid

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueueOrderSerialProperty drains a randomly-prioritized batch one
// lease at a time and requires the exact (priority desc, FIFO within a
// priority) order — the full ordering property, not a hand-picked case
// like TestPriorityOrder. Several seeds, so the property holds across
// shapes (duplicate priorities, runs of equal ones, extremes).
func TestQueueOrderSerialProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			_, ts := testGrid(t, WithLeaseTTL(5*time.Second))
			rng := rand.New(rand.NewSource(seed))
			const n = 40
			type spec struct {
				id   string
				prio int
			}
			var specs []spec
			var tasks []Task
			for i := 0; i < n; i++ {
				p := payload(fmt.Sprintf("s%d-job-%d", seed, i))
				prio := rng.Intn(5) - 2 // negatives too
				id := fmt.Sprintf("%d", i)
				specs = append(specs, spec{id: id, prio: prio})
				tasks = append(tasks, Task{ID: id, Hash: HashBytes(p), Priority: prio, Payload: p})
			}
			c := &Client{Server: ts.URL}
			ch, err := c.Submit(context.Background(), tasks)
			if err != nil {
				t.Fatal(err)
			}

			// Drain: one task per lease, completed immediately, so the
			// grant sequence is exactly the queue order.
			var granted []string
			for len(granted) < n {
				lr := leaseRaw(t, ts.URL, "serial", 1)
				for _, tk := range lr.Tasks {
					granted = append(granted, tk.ID)
					completeRaw(t, ts.URL, completeRequest{
						Worker: "serial", ID: tk.ID, Hash: tk.Hash, Result: tk.Payload})
				}
			}
			collectResults(t, ch)

			// The model: stable sort by priority desc keeps submission
			// order within equal priorities (FIFO tiebreak).
			want := make([]spec, n)
			copy(want, specs)
			sort.SliceStable(want, func(i, j int) bool { return want[i].prio > want[j].prio })
			// Granted IDs are server task IDs; map back through payloads.
			// Server task IDs are assigned in submission order (t1..tn), so
			// task "t<k>" corresponds to batch index k-1.
			for i, tid := range granted {
				k := 0
				fmt.Sscanf(strings.TrimPrefix(tid, "t"), "%d", &k)
				gotID := fmt.Sprintf("%d", k-1)
				if gotID != want[i].id {
					t.Fatalf("seed %d: grant %d = job %s (prio %d), want job %s (prio %d)\nfull order: %v",
						seed, i, gotID, specs[k-1].prio, want[i].id, want[i].prio, granted)
				}
			}
		})
	}
}

// TestWeightedFairShareProperty pins the stride scheduler's weighted
// fair-share property: three tenants with 3:1:2 weights submit equal
// backlogs of equal-priority tasks, then one worker drains the queue a
// single lease at a time, so the grant sequence is exactly the
// scheduler's decision sequence. Required at every grant k while all
// three lanes are still backlogged:
//
//   - each tenant's grant count stays within ±2 of k·w/W (the stride
//     bound — proportional shares, not mere round-robin),
//   - grants within one tenant are strictly FIFO (ordinals 0,1,2,...).
func TestWeightedFairShareProperty(t *testing.T) {
	weights := map[string]float64{"alice": 3, "bob": 1, "carol": 2}
	_, ts := testGrid(t,
		WithLeaseTTL(5*time.Second),
		WithTenant("alice", TenantLimits{Weight: 3}),
		WithTenant("bob", TenantLimits{Weight: 1}),
		WithTenant("carol", TenantLimits{Weight: 2}),
	)
	totalW := 0.0
	for _, w := range weights {
		totalW += w
	}
	const per = 30
	var chans []<-chan TaskResult
	for _, tenant := range []string{"alice", "bob", "carol"} {
		var tasks []Task
		for i := 0; i < per; i++ {
			p := payload(fmt.Sprintf("fair-%s-%d", tenant, i))
			tasks = append(tasks, Task{ID: fmt.Sprintf("%s-%d", tenant, i),
				Hash: HashBytes(p), Payload: p})
		}
		c := &Client{Server: ts.URL, ClientID: tenant}
		ch, err := c.Submit(context.Background(), tasks)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}

	granted := map[string]int{}
	for k := 1; k <= 3*per; k++ {
		lr := leaseRaw(t, ts.URL, "fair", 1)
		if len(lr.Tasks) != 1 {
			t.Fatalf("grant %d: got %d tasks, want 1", k, len(lr.Tasks))
		}
		tk := lr.Tasks[0]
		var body struct {
			Job string `json:"job"`
		}
		if err := json.Unmarshal(tk.Payload, &body); err != nil {
			t.Fatalf("grant %d: undecodable payload %s", k, tk.Payload)
		}
		parts := strings.Split(body.Job, "-") // fair-<tenant>-<ordinal>
		tenant := parts[1]
		idx, _ := strconv.Atoi(parts[2])
		if idx != granted[tenant] {
			t.Fatalf("grant %d: tenant %s got its ordinal %d, want %d (FIFO within tenant)",
				k, tenant, idx, granted[tenant])
		}
		granted[tenant]++
		// The stride bound only holds while every lane is backlogged;
		// once a tenant drains, the survivors split the tail among
		// themselves.
		backlogged := true
		for tn := range weights {
			if granted[tn] >= per {
				backlogged = false
			}
		}
		if backlogged {
			for tn, w := range weights {
				ideal := float64(k) * w / totalW
				if d := math.Abs(float64(granted[tn]) - ideal); d > 2 {
					t.Fatalf("after %d grants tenant %s has %d, ideal %.1f (off by %.1f)",
						k, tn, granted[tn], ideal, d)
				}
			}
		}
		completeRaw(t, ts.URL, completeRequest{
			Worker: "fair", ID: tk.ID, Hash: tk.Hash, Result: tk.Payload})
	}
	for _, ch := range chans {
		got := collectResults(t, ch)
		if len(got) != per {
			t.Fatalf("tenant stream delivered %d of %d", len(got), per)
		}
		for id, tr := range got {
			if tr.Err != "" {
				t.Errorf("task %s failed: %s", id, tr.Err)
			}
		}
	}
}

// TestPriorityDominatesWeight pins the layering of the two orders:
// priority strictly dominates fair share, so a light tenant's urgent
// task beats a heavy tenant's backlog regardless of weights.
func TestPriorityDominatesWeight(t *testing.T) {
	_, ts := testGrid(t,
		WithLeaseTTL(5*time.Second),
		WithTenant("heavy", TenantLimits{Weight: 100}),
		WithTenant("light", TenantLimits{Weight: 1}),
	)
	heavy := &Client{Server: ts.URL, ClientID: "heavy"}
	var tasks []Task
	for i := 0; i < 8; i++ {
		p := payload(fmt.Sprintf("bulk-%d", i))
		tasks = append(tasks, Task{ID: fmt.Sprintf("%d", i), Hash: HashBytes(p), Payload: p})
	}
	hch, err := heavy.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	light := &Client{Server: ts.URL, ClientID: "light"}
	urgent := payload("urgent")
	lch, err := light.Submit(context.Background(),
		[]Task{{ID: "u", Hash: HashBytes(urgent), Priority: 3, Payload: urgent}})
	if err != nil {
		t.Fatal(err)
	}

	lr := leaseRaw(t, ts.URL, "prio", 1)
	if len(lr.Tasks) != 1 || !bytes.Equal(lr.Tasks[0].Payload, urgent) {
		t.Fatalf("first grant was not the urgent task: %+v", lr.Tasks)
	}
	completeRaw(t, ts.URL, completeRequest{
		Worker: "prio", ID: lr.Tasks[0].ID, Hash: lr.Tasks[0].Hash, Result: urgent})
	for drained := 0; drained < 8; {
		lr := leaseRaw(t, ts.URL, "prio", 2)
		for _, tk := range lr.Tasks {
			drained++
			completeRaw(t, ts.URL, completeRequest{
				Worker: "prio", ID: tk.ID, Hash: tk.Hash, Result: tk.Payload})
		}
	}
	collectResults(t, hch)
	collectResults(t, lch)
}

// TestQueueConcurrentInterleavings is the chaos property (run under
// -race by `make race` and CI): several raw-protocol workers lease,
// complete, ignore (forcing expiry + reassignment), and die, while a
// subset of cursed tasks is never completed at all. Required invariants,
// per seed:
//
//   - every job is delivered exactly once (no loss, no duplication),
//   - cursed jobs fail via max-attempts exhaustion, everything else
//     succeeds with its own bytes,
//   - within any single lease grant, priorities are non-increasing (the
//     heap pops in order even while completions and reassignments churn
//     it),
//   - Completed+Failed on the server equals the unique task count.
func TestQueueConcurrentInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			srv, ts := testGrid(t, WithLeaseTTL(60*time.Millisecond), WithMaxAttempts(8))
			rng := rand.New(rand.NewSource(seed))
			const n = 24
			cursed := map[string]bool{} // by payload content
			var tasks []Task
			for i := 0; i < n; i++ {
				body := fmt.Sprintf("c%d-job-%d", seed, i)
				if i%6 == 5 {
					body = "cursed-" + body
					cursed[body] = true
				}
				p := payload(body)
				tasks = append(tasks, Task{
					ID: fmt.Sprintf("%d", i), Hash: HashBytes(p),
					Priority: rng.Intn(4), Payload: p,
				})
			}
			c := &Client{Server: ts.URL}
			ch, err := c.Submit(context.Background(), tasks)
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			var orderMu sync.Mutex
			var orderViolation string
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					grng := rand.New(rand.NewSource(seed*100 + int64(g)))
					worker := fmt.Sprintf("chaos-%d-%d", seed, g)
					for {
						select {
						case <-stop:
							return
						default:
						}
						capacity := 1 + grng.Intn(3)
						lr := leaseRaw(t, ts.URL, worker, capacity)
						for i := 1; i < len(lr.Tasks); i++ {
							if lr.Tasks[i].Priority > lr.Tasks[i-1].Priority {
								orderMu.Lock()
								orderViolation = fmt.Sprintf(
									"grant to %s not priority-ordered: %d before %d",
									worker, lr.Tasks[i-1].Priority, lr.Tasks[i].Priority)
								orderMu.Unlock()
							}
						}
						for _, tk := range lr.Tasks {
							// Cursed tasks are never completed; healthy ones
							// are sometimes ignored too, forcing lease expiry
							// and reassignment mid-stream.
							if bytes.Contains(tk.Payload, []byte("cursed")) || grng.Intn(4) == 0 {
								continue
							}
							completeRaw(t, ts.URL, completeRequest{
								Worker: worker, ID: tk.ID, Hash: tk.Hash, Result: tk.Payload})
						}
					}
				}(g)
			}

			got := collectResults(t, ch) // fatals on duplicate delivery
			close(stop)
			wg.Wait()

			orderMu.Lock()
			if orderViolation != "" {
				t.Error(orderViolation)
			}
			orderMu.Unlock()
			if len(got) != n {
				t.Fatalf("delivered %d of %d", len(got), n)
			}
			for _, tk := range tasks {
				tr := got[tk.ID]
				isCursed := bytes.Contains(tk.Payload, []byte("cursed"))
				switch {
				case isCursed && tr.Err == "":
					t.Errorf("cursed task %s succeeded; max-attempts never triggered", tk.ID)
				case isCursed && !strings.Contains(tr.Err, "abandoned after"):
					t.Errorf("cursed task %s failed oddly: %s", tk.ID, tr.Err)
				case !isCursed && tr.Err != "":
					t.Errorf("healthy task %s failed: %s", tk.ID, tr.Err)
				case !isCursed && !bytes.Equal(tr.Payload, tk.Payload):
					t.Errorf("task %s corrupted: %s", tk.ID, tr.Payload)
				}
			}
			if m := srv.Metrics(); m.Completed+m.Failed != n {
				t.Errorf("completed %d + failed %d != %d unique tasks", m.Completed, m.Failed, n)
			}
		})
	}
}
