package grid

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestQueueOrderSerialProperty drains a randomly-prioritized batch one
// lease at a time and requires the exact (priority desc, FIFO within a
// priority) order — the full ordering property, not a hand-picked case
// like TestPriorityOrder. Several seeds, so the property holds across
// shapes (duplicate priorities, runs of equal ones, extremes).
func TestQueueOrderSerialProperty(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			_, ts := testGrid(t, WithLeaseTTL(5*time.Second))
			rng := rand.New(rand.NewSource(seed))
			const n = 40
			type spec struct {
				id   string
				prio int
			}
			var specs []spec
			var tasks []Task
			for i := 0; i < n; i++ {
				p := payload(fmt.Sprintf("s%d-job-%d", seed, i))
				prio := rng.Intn(5) - 2 // negatives too
				id := fmt.Sprintf("%d", i)
				specs = append(specs, spec{id: id, prio: prio})
				tasks = append(tasks, Task{ID: id, Hash: HashBytes(p), Priority: prio, Payload: p})
			}
			c := &Client{Server: ts.URL}
			ch, err := c.Submit(context.Background(), tasks)
			if err != nil {
				t.Fatal(err)
			}

			// Drain: one task per lease, completed immediately, so the
			// grant sequence is exactly the queue order.
			var granted []string
			for len(granted) < n {
				lr := leaseRaw(t, ts.URL, "serial", 1)
				for _, tk := range lr.Tasks {
					granted = append(granted, tk.ID)
					completeRaw(t, ts.URL, completeRequest{
						Worker: "serial", ID: tk.ID, Hash: tk.Hash, Result: tk.Payload})
				}
			}
			collectResults(t, ch)

			// The model: stable sort by priority desc keeps submission
			// order within equal priorities (FIFO tiebreak).
			want := make([]spec, n)
			copy(want, specs)
			sort.SliceStable(want, func(i, j int) bool { return want[i].prio > want[j].prio })
			// Granted IDs are server task IDs; map back through payloads.
			// Server task IDs are assigned in submission order (t1..tn), so
			// task "t<k>" corresponds to batch index k-1.
			for i, tid := range granted {
				k := 0
				fmt.Sscanf(strings.TrimPrefix(tid, "t"), "%d", &k)
				gotID := fmt.Sprintf("%d", k-1)
				if gotID != want[i].id {
					t.Fatalf("seed %d: grant %d = job %s (prio %d), want job %s (prio %d)\nfull order: %v",
						seed, i, gotID, specs[k-1].prio, want[i].id, want[i].prio, granted)
				}
			}
		})
	}
}

// TestQueueConcurrentInterleavings is the chaos property (run under
// -race by `make race` and CI): several raw-protocol workers lease,
// complete, ignore (forcing expiry + reassignment), and die, while a
// subset of cursed tasks is never completed at all. Required invariants,
// per seed:
//
//   - every job is delivered exactly once (no loss, no duplication),
//   - cursed jobs fail via max-attempts exhaustion, everything else
//     succeeds with its own bytes,
//   - within any single lease grant, priorities are non-increasing (the
//     heap pops in order even while completions and reassignments churn
//     it),
//   - Completed+Failed on the server equals the unique task count.
func TestQueueConcurrentInterleavings(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			srv, ts := testGrid(t, WithLeaseTTL(60*time.Millisecond), WithMaxAttempts(8))
			rng := rand.New(rand.NewSource(seed))
			const n = 24
			cursed := map[string]bool{} // by payload content
			var tasks []Task
			for i := 0; i < n; i++ {
				body := fmt.Sprintf("c%d-job-%d", seed, i)
				if i%6 == 5 {
					body = "cursed-" + body
					cursed[body] = true
				}
				p := payload(body)
				tasks = append(tasks, Task{
					ID: fmt.Sprintf("%d", i), Hash: HashBytes(p),
					Priority: rng.Intn(4), Payload: p,
				})
			}
			c := &Client{Server: ts.URL}
			ch, err := c.Submit(context.Background(), tasks)
			if err != nil {
				t.Fatal(err)
			}

			stop := make(chan struct{})
			var wg sync.WaitGroup
			var orderMu sync.Mutex
			var orderViolation string
			for g := 0; g < 4; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					grng := rand.New(rand.NewSource(seed*100 + int64(g)))
					worker := fmt.Sprintf("chaos-%d-%d", seed, g)
					for {
						select {
						case <-stop:
							return
						default:
						}
						capacity := 1 + grng.Intn(3)
						lr := leaseRaw(t, ts.URL, worker, capacity)
						for i := 1; i < len(lr.Tasks); i++ {
							if lr.Tasks[i].Priority > lr.Tasks[i-1].Priority {
								orderMu.Lock()
								orderViolation = fmt.Sprintf(
									"grant to %s not priority-ordered: %d before %d",
									worker, lr.Tasks[i-1].Priority, lr.Tasks[i].Priority)
								orderMu.Unlock()
							}
						}
						for _, tk := range lr.Tasks {
							// Cursed tasks are never completed; healthy ones
							// are sometimes ignored too, forcing lease expiry
							// and reassignment mid-stream.
							if bytes.Contains(tk.Payload, []byte("cursed")) || grng.Intn(4) == 0 {
								continue
							}
							completeRaw(t, ts.URL, completeRequest{
								Worker: worker, ID: tk.ID, Hash: tk.Hash, Result: tk.Payload})
						}
					}
				}(g)
			}

			got := collectResults(t, ch) // fatals on duplicate delivery
			close(stop)
			wg.Wait()

			orderMu.Lock()
			if orderViolation != "" {
				t.Error(orderViolation)
			}
			orderMu.Unlock()
			if len(got) != n {
				t.Fatalf("delivered %d of %d", len(got), n)
			}
			for _, tk := range tasks {
				tr := got[tk.ID]
				isCursed := bytes.Contains(tk.Payload, []byte("cursed"))
				switch {
				case isCursed && tr.Err == "":
					t.Errorf("cursed task %s succeeded; max-attempts never triggered", tk.ID)
				case isCursed && !strings.Contains(tr.Err, "abandoned after"):
					t.Errorf("cursed task %s failed oddly: %s", tk.ID, tr.Err)
				case !isCursed && tr.Err != "":
					t.Errorf("healthy task %s failed: %s", tk.ID, tr.Err)
				case !isCursed && !bytes.Equal(tr.Payload, tk.Payload):
					t.Errorf("task %s corrupted: %s", tk.ID, tr.Payload)
				}
			}
			if m := srv.Metrics(); m.Completed+m.Failed != n {
				t.Errorf("completed %d + failed %d != %d unique tasks", m.Completed, m.Failed, n)
			}
		})
	}
}
