package grid

import (
	"container/heap"
	"encoding/json"
	"time"
)

// task is the server-side state of one unit of work, shared by every
// batch that submitted its hash (subscribers). It moves queued → leased →
// completed; a lease that outlives its deadline without a heartbeat moves
// it back to queued (reassignment).
type task struct {
	id       string
	hash     string
	payload  json.RawMessage
	priority int
	seq      uint64 // FIFO tiebreak within a priority
	// tenant is the identity of the client that created the task (the
	// X-Grid-Client header, defaulted); the fair queue schedules across
	// tenants by weight. Coalescing batches from other tenants subscribe
	// without moving the task between tenants.
	tenant string
	// profile is the task's locality key (Task.Profile), "" when the
	// submitter did not supply one; hops the times it has been stolen
	// between federated servers (Task.Hops).
	profile string
	hops    int
	// enqueuedAt is when the task last entered the queue (admission or
	// requeue); the grant-time delta feeds the lease latency histogram.
	enqueuedAt time.Time
	// admittedAt is when the creating batch entered handleBatch — the
	// base of the admission and end-to-end stage latencies.
	admittedAt time.Time

	// heapIndex is the position in the priority queue, -1 while leased
	// (or otherwise out of the heap).
	heapIndex int
	// worker is the lease holder, "" while queued.
	worker string
	// deadline is the lease expiry, renewed by heartbeats.
	deadline time.Time
	// attempts counts lease assignments, bounding reassignment loops.
	attempts int
	// leasedAt is when the current lease was granted, firstLeased when
	// the very first one was (the base of the completed-duration EWMA
	// that calibrates ETAs and straggler detection), firstProgress when
	// the first interval snapshot arrived (the lease-to-first-progress
	// stage latency).
	leasedAt      time.Time
	firstLeased   time.Time
	firstProgress time.Time
	// speculated marks a straggler that was re-leased to the fleet while
	// its original attempt (prevWorker) keeps running — first completion
	// wins, and prevWorker's heartbeats are tolerated instead of being
	// told the task is stale. At most one speculation per task.
	speculated bool
	prevWorker string
	// cancelled marks a task every subscriber walked away from; it is
	// skipped at grant time and reported to its worker if already leased.
	// A new submission of the same hash revives it.
	cancelled bool
	// progress is the latest interval snapshot its worker heartbeat in
	// (ID is the server-side task ID), nil before the first report.
	progress *TaskProgress

	subs []subscriber
}

// subscriber is one (batch, job ID) waiting on a task's result. bytes is
// the payload size the subscription holds against its tenant's pending
// quota, released when the final result is delivered or the
// subscription is dropped.
type subscriber struct {
	batch *batch
	jobID string
	bytes int64
}

// batch is one connected /v1/batch client. Its result channel is
// buffered with the full job count at creation, so result delivery under
// the server lock never blocks on a slow reader. prog is non-nil only
// when the batch subscribed to progress; sends to it are non-blocking
// (progress is lossy, a slow stream just sees coarser updates).
type batch struct {
	id string
	// tenant is the admitting client's tenant state; pending-quota
	// release on delivery/drop is charged back to it.
	tenant *tenantState
	ch     chan TaskResult
	prog   chan TaskProgress
}

// sendProgress forwards one progress event without ever blocking.
func (b *batch) sendProgress(p TaskProgress) {
	if b.prog == nil {
		return
	}
	select {
	case b.prog <- p:
	default:
	}
}

// release hands the subscription's pending-quota hold back to its
// tenant. Must run under the server lock, like every tenant counter
// mutation.
func (sub subscriber) release() {
	if ts := sub.batch.tenant; ts != nil {
		ts.pendingJobs--
		ts.pendingBytes -= sub.bytes
	}
}

// deliver fans a completed task's result out to its subscribers, each
// under its own job ID, and clears the subscriber list. Runs under the
// server lock (quota release requires it).
func (t *task) deliver(res TaskResult) {
	for _, sub := range t.subs {
		r := res
		r.ID = sub.jobID
		sub.release()
		if ts := sub.batch.tenant; ts != nil {
			if res.Err == "" {
				ts.completed++
			} else {
				ts.failed++
			}
		}
		// Buffered to the batch's job count: cannot block.
		sub.batch.ch <- r
	}
	t.subs = nil
}

// taskHeap is the priority queue: higher Priority first, FIFO within a
// priority.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}

func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.heapIndex = len(*h)
	*h = append(*h, t)
}

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIndex = -1
	*h = old[:n-1]
	return t
}

var _ heap.Interface = (*taskHeap)(nil)

// fairQueue is the server's work queue: one priority heap per tenant,
// scheduled across tenants by stride scheduling (weighted fair shares).
// The ordering contract, strongest first:
//
//  1. Priority strictly dominates — a queued task never waits behind a
//     lower-priority one, whoever submitted either.
//  2. Within a priority level, tenants share grants in proportion to
//     their weights: each grant charges the serving tenant's virtual
//     "pass" by size/weight, and the tenant with the smallest pass
//     serves next, so a backlogged 10k-job sweep cannot starve another
//     tenant's interactive ladder sharing its priority.
//  3. Within one tenant, the old order stands: priority desc, FIFO
//     (submission seq) within a priority.
//
// With a single tenant the stride layer degenerates to its one heap and
// the order is bit-identical to the pre-tenancy queue.
type fairQueue struct {
	active map[string]*tenantLane
	// passes persists each tenant's virtual time across idle periods so
	// a tenant cannot bank credit by going quiet: on re-activation its
	// pass is bumped to at least the queue's virtual clock.
	passes map[string]float64
	// vclock is the pass of the most recent charge — the queue's virtual
	// time.
	vclock float64
	// weight resolves a tenant's share (>= 1); nil means equal weights.
	weight func(tenant string) float64
	size   int
}

// tenantLane is one tenant's backlog: its own priority heap plus its
// stride pass.
type tenantLane struct {
	id   string
	heap taskHeap
	pass float64
}

func newFairQueue(weight func(string) float64) *fairQueue {
	return &fairQueue{
		active: map[string]*tenantLane{},
		passes: map[string]float64{},
		weight: weight,
	}
}

func (q *fairQueue) Len() int { return q.size }

// Push queues a task under its tenant, activating the lane if idle.
func (q *fairQueue) Push(t *task) {
	lane := q.active[t.tenant]
	if lane == nil {
		pass := q.passes[t.tenant]
		if pass < q.vclock {
			// No banked credit for having been idle.
			pass = q.vclock
		}
		lane = &tenantLane{id: t.tenant, pass: pass}
		q.active[t.tenant] = lane
	}
	heap.Push(&lane.heap, t)
	q.size++
}

// head returns the lane to serve next without removing anything: among
// lanes whose head task carries the queue's best priority, the one with
// the smallest pass (FIFO seq breaks pass ties so equal-weight tenants
// alternate deterministically).
func (q *fairQueue) head() *tenantLane {
	var best *tenantLane
	bestPrio := 0
	for _, lane := range q.active {
		p := lane.heap[0].priority
		switch {
		case best == nil || p > bestPrio:
			best, bestPrio = lane, p
		case p == bestPrio &&
			(lane.pass < best.pass ||
				(lane.pass == best.pass && lane.heap[0].seq < best.heap[0].seq)):
			best = lane
		}
	}
	return best
}

// Pop removes and returns the next task in grant order, nil on empty.
// Popping does NOT charge the tenant's pass — callers that actually
// grant the task call Charge, so a pop that is discarded (cancelled
// task) or pushed back (hop-bounded steal, speculation set-aside) costs
// the tenant nothing.
func (q *fairQueue) Pop() *task {
	lane := q.head()
	if lane == nil {
		return nil
	}
	t := heap.Pop(&lane.heap).(*task)
	q.deactivateIfEmpty(lane)
	q.size--
	return t
}

// Charge advances the task's tenant pass by one grant's worth of
// virtual time (1/weight) and the queue's virtual clock with it.
func (q *fairQueue) Charge(t *task) {
	w := 1.0
	if q.weight != nil {
		if got := q.weight(t.tenant); got > 0 {
			w = got
		}
	}
	pass := q.passes[t.tenant] + 1.0/w
	if lane := q.active[t.tenant]; lane != nil {
		lane.pass += 1.0 / w
		pass = lane.pass
	}
	q.passes[t.tenant] = pass
	if pass > q.vclock {
		q.vclock = pass
	}
}

// Remove deletes a queued task wherever it sits (heapIndex addressing
// within its tenant's lane).
func (q *fairQueue) Remove(t *task) {
	lane := q.active[t.tenant]
	if lane == nil || t.heapIndex < 0 {
		return
	}
	heap.Remove(&lane.heap, t.heapIndex)
	q.deactivateIfEmpty(lane)
	q.size--
}

func (q *fairQueue) deactivateIfEmpty(lane *tenantLane) {
	if len(lane.heap) == 0 {
		q.passes[lane.id] = lane.pass
		delete(q.active, lane.id)
	}
}

// each visits every queued task (no defined order).
func (q *fairQueue) each(f func(*task)) {
	for _, lane := range q.active {
		for _, t := range lane.heap {
			f(t)
		}
	}
}
