package grid

import (
	"container/heap"
	"encoding/json"
	"time"
)

// task is the server-side state of one unit of work, shared by every
// batch that submitted its hash (subscribers). It moves queued → leased →
// completed; a lease that outlives its deadline without a heartbeat moves
// it back to queued (reassignment).
type task struct {
	id       string
	hash     string
	payload  json.RawMessage
	priority int
	seq      uint64 // FIFO tiebreak within a priority
	// profile is the task's locality key (Task.Profile), "" when the
	// submitter did not supply one; hops the times it has been stolen
	// between federated servers (Task.Hops).
	profile string
	hops    int

	// heapIndex is the position in the priority queue, -1 while leased
	// (or otherwise out of the heap).
	heapIndex int
	// worker is the lease holder, "" while queued.
	worker string
	// deadline is the lease expiry, renewed by heartbeats.
	deadline time.Time
	// attempts counts lease assignments, bounding reassignment loops.
	attempts int
	// leasedAt is when the current lease was granted, firstLeased when
	// the very first one was (the base of the completed-duration EWMA
	// that calibrates ETAs and straggler detection).
	leasedAt    time.Time
	firstLeased time.Time
	// speculated marks a straggler that was re-leased to the fleet while
	// its original attempt (prevWorker) keeps running — first completion
	// wins, and prevWorker's heartbeats are tolerated instead of being
	// told the task is stale. At most one speculation per task.
	speculated bool
	prevWorker string
	// cancelled marks a task every subscriber walked away from; it is
	// skipped at grant time and reported to its worker if already leased.
	// A new submission of the same hash revives it.
	cancelled bool
	// progress is the latest interval snapshot its worker heartbeat in
	// (ID is the server-side task ID), nil before the first report.
	progress *TaskProgress

	subs []subscriber
}

// subscriber is one (batch, job ID) waiting on a task's result.
type subscriber struct {
	batch *batch
	jobID string
}

// batch is one connected /v1/batch client. Its result channel is
// buffered with the full job count at creation, so result delivery under
// the server lock never blocks on a slow reader. prog is non-nil only
// when the batch subscribed to progress; sends to it are non-blocking
// (progress is lossy, a slow stream just sees coarser updates).
type batch struct {
	id   string
	ch   chan TaskResult
	prog chan TaskProgress
}

// sendProgress forwards one progress event without ever blocking.
func (b *batch) sendProgress(p TaskProgress) {
	if b.prog == nil {
		return
	}
	select {
	case b.prog <- p:
	default:
	}
}

// deliver fans a completed task's result out to its subscribers, each
// under its own job ID, and clears the subscriber list.
func (t *task) deliver(res TaskResult) {
	for _, sub := range t.subs {
		r := res
		r.ID = sub.jobID
		// Buffered to the batch's job count: cannot block.
		sub.batch.ch <- r
	}
	t.subs = nil
}

// taskHeap is the priority queue: higher Priority first, FIFO within a
// priority.
type taskHeap []*task

func (h taskHeap) Len() int { return len(h) }

func (h taskHeap) Less(i, j int) bool {
	if h[i].priority != h[j].priority {
		return h[i].priority > h[j].priority
	}
	return h[i].seq < h[j].seq
}

func (h taskHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].heapIndex = i
	h[j].heapIndex = j
}

func (h *taskHeap) Push(x any) {
	t := x.(*task)
	t.heapIndex = len(*h)
	*h = append(*h, t)
}

func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.heapIndex = -1
	*h = old[:n-1]
	return t
}

var _ heap.Interface = (*taskHeap)(nil)
