package grid

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"testing"
	"time"
)

// TestShardedOwnersAgree pins the rendezvous placement: every member,
// whatever its own vantage point, computes the same owner set for the
// same hash — the property that makes reads findable without a
// directory — and the set size follows the replication factor.
func TestShardedOwnersAgree(t *testing.T) {
	urls := []string{"http://10.0.0.1:8321", "http://10.0.0.2:8321", "http://10.0.0.3:8321"}
	stores := make([]*ShardedStore, len(urls))
	for i, u := range urls {
		s := NewShardedStore(NewStore(), u, WithShardReplication(2))
		rest := append([]string{}, urls[:i]...)
		rest = append(rest, urls[i+1:]...)
		s.SetMembership(func() []string { return rest })
		stores[i] = s
	}
	for i := 0; i < 20; i++ {
		hash := HashBytes([]byte(fmt.Sprintf("job-%d", i)))
		want := stores[0].owners(hash)
		if len(want) != 2 {
			t.Fatalf("hash %s: %d owners, want replication 2", hash, len(want))
		}
		for _, s := range stores[1:] {
			got := s.owners(hash)
			if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
				t.Fatalf("hash %s: owner sets disagree: %v vs %v", hash, got, want)
			}
		}
	}
	// Sanity: placement actually spreads — across many hashes every
	// member owns something.
	owned := map[string]int{}
	for i := 0; i < 64; i++ {
		for _, o := range stores[0].owners(HashBytes([]byte(fmt.Sprintf("spread-%d", i)))) {
			owned[o]++
		}
	}
	for _, u := range urls {
		if owned[u] == 0 {
			t.Errorf("member %s owns no hashes out of 64", u)
		}
	}
}

// TestShardedStoreLocalOnly checks graceful degradation: with no
// membership attached (or no live peers) a ShardedStore is just its
// local store, meeting the full Storage contract.
func TestShardedStoreLocalOnly(t *testing.T) {
	s := NewShardedStore(NewStore(), "http://self:1")
	if _, ok := s.Get("h1"); ok {
		t.Fatal("empty store hit")
	}
	s.Put("h1", []byte("a"))
	s.Put("h1", []byte("b"))
	if v, ok := s.Get("h1"); !ok || string(v) != "a" {
		t.Fatalf("got %q/%v, want first write", v, ok)
	}
	s.Put("", []byte("x"))
	entries, hits, misses := s.Stats()
	if entries != 1 || hits != 1 || misses != 1 {
		t.Errorf("stats = %d/%d/%d, want 1 entry, 1 hit, 1 miss", entries, hits, misses)
	}
	st := s.ShardStats()
	if st.Members != 1 || st.RemoteHits != 0 {
		t.Errorf("shard stats %+v, want 1 member, no remote traffic", st)
	}
}

// TestShardedStoreReadRepair plants a result on only one of a hash's
// owners, then reads it through a third member: the read must be served
// remotely, adopted locally, and re-replicated to the owner that lost
// its copy.
func TestShardedStoreReadRepair(t *testing.T) {
	stA, stB := NewStore(), NewStore()
	srvA, srvB := NewServer(WithStorage(stA)), NewServer(WithStorage(stB))
	tsA, tsB := httptest.NewServer(srvA), httptest.NewServer(srvB)
	t.Cleanup(func() { tsA.Close(); tsB.Close(); srvA.Close(); srvB.Close() })

	// Replication 3 over 3 members: A, B and the reader all own every
	// hash, so the repair set is deterministic.
	reader := NewShardedStore(NewStore(), "http://reader:1", WithShardReplication(3))
	reader.SetMembership(func() []string { return []string{tsA.URL, tsB.URL} })
	t.Cleanup(reader.Close)

	p := []byte("survivor")
	h := HashBytes(p)
	stB.Put(h, p) // only B still holds it (A "lost" its replica)

	got, ok := reader.Get(h)
	if !ok || !bytes.Equal(got, p) {
		t.Fatalf("sharded Get = %q/%v, want the surviving replica", got, ok)
	}
	if v, ok := reader.Local().Get(h); !ok || !bytes.Equal(v, p) {
		t.Fatalf("remote hit not adopted locally: %q/%v", v, ok)
	}
	st := reader.ShardStats()
	if st.RemoteHits != 1 || st.ReadRepairs != 1 {
		t.Errorf("shard stats %+v, want 1 remote hit, 1 read repair", st)
	}
	// The lost replica on A is restored by the background re-replication.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if v, ok := stA.Get(h); ok && bytes.Equal(v, p) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("read repair never restored the lost replica")
}

// shardedMember is one federated server whose store is a ShardedStore
// over its own private memory store — the 3-peer topology of the golden
// gate test, built by hand so members can be killed mid-test.
type shardedMember struct {
	srv   *Server
	fed   *Federation
	shard *ShardedStore
	ts    *httptest.Server
	url   string
	dead  bool
}

func (m *shardedMember) kill() {
	if m.dead {
		return
	}
	m.dead = true
	m.fed.Close()
	m.ts.Close()
	m.srv.Close()
	m.shard.Close()
}

// startShardedFederation builds n members, each serving its own
// ShardedStore (replication 2) under a shared peer secret.
func startShardedFederation(t *testing.T, n int, secret string) []*shardedMember {
	t.Helper()
	listeners := make([]net.Listener, n)
	urls := make([]string, n)
	for i := range listeners {
		listeners[i], urls[i] = fedListen(t)
	}
	members := make([]*shardedMember, n)
	for i := range members {
		shard := NewShardedStore(NewStore(), urls[i],
			WithShardReplication(2), WithShardSecret(secret))
		opts := []ServerOption{WithLeaseTTL(200 * time.Millisecond), WithStorage(shard)}
		if secret != "" {
			opts = append(opts, WithPeerSecret(secret))
		}
		srv := NewServer(opts...)
		var peers []string
		for j, u := range urls {
			if j != i {
				peers = append(peers, u)
			}
		}
		fed := NewFederation(srv, urls[i], peers,
			WithAnnounceInterval(100*time.Millisecond),
			WithStealInterval(50*time.Millisecond))
		shard.SetMembership(fed.Peers)
		ts := httptest.NewUnstartedServer(nil)
		ts.Listener.Close()
		ts.Listener = listeners[i]
		ts.Config.Handler = fed
		ts.Start()
		members[i] = &shardedMember{srv: srv, fed: fed, shard: shard, ts: ts, url: urls[i]}
		t.Cleanup(members[i].kill)
	}
	return members
}

// TestShardedStoreSurvivesPeerDeath is the golden gate of the sharded
// cache tier: a batch executed on one member of a 3-peer secreted
// federation, then any one peer killed — a rerun submitted to a member
// that never ran anything must still be answered 100% from cache,
// byte-identical, because every result lives on two owners.
func TestShardedStoreSurvivesPeerDeath(t *testing.T) {
	members := startShardedFederation(t, 3, "shard-secret")
	m0, m1, m2 := members[0], members[1], members[2]
	stop := startWorker(t, m0.url, echoExec, 4)

	var tasks []Task
	for i := 0; i < 24; i++ {
		tasks = append(tasks, mkTask(fmt.Sprintf("g%d", i), fmt.Sprintf("golden-%d", i)))
	}
	// Cancellable contexts so a failed assertion can close the batch
	// streams during cleanup instead of deadlocking the httptest server.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	client := &Client{Server: m0.url}
	ch, err := client.Submit(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	first := collectResults(t, ch)
	if len(first) != len(tasks) {
		t.Fatalf("first run: %d results, want %d", len(first), len(tasks))
	}
	stop() // no workers anywhere from here on

	// Let the replica puts land everywhere before pulling a peer.
	if !m0.shard.Flush(10 * time.Second) {
		t.Fatal("replica puts never drained")
	}
	m1.kill()

	// The rerun goes to a member that executed nothing. Every job must be
	// served from the sharded cache — local copy or surviving owner.
	before := m2.srv.Metrics()
	client = &Client{Server: m2.url}
	ch, err = client.Submit(ctx, tasks)
	if err != nil {
		t.Fatal(err)
	}
	second := collectResults(t, ch)
	if len(second) != len(tasks) {
		t.Fatalf("rerun: %d results, want %d", len(second), len(tasks))
	}
	for _, task := range tasks {
		f, s := first[task.ID], second[task.ID]
		if f.Err != "" || s.Err != "" {
			t.Fatalf("task %s errored: %q / %q", task.ID, f.Err, s.Err)
		}
		if !s.Cached {
			t.Errorf("rerun task %s not cache-served after peer death", task.ID)
		}
		if !bytes.Equal(f.Payload, s.Payload) {
			t.Errorf("task %s: rerun bytes differ", task.ID)
		}
	}
	after := m2.srv.Metrics()
	if misses := after.CacheMisses - before.CacheMisses; misses != 0 {
		t.Errorf("rerun took %d cache misses, want 0 — a replica died with the peer", misses)
	}
	// The non-owned share of the batch was served across the wire.
	if st := m2.shard.ShardStats(); st.RemoteHits == 0 {
		t.Errorf("rerun touched no remote owner (shard stats %+v)", st)
	}
}
