package grid

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
)

// wantsProm reports whether a /metrics request asked for the Prometheus
// text form instead of the JSON snapshot: either explicitly
// (?format=prom) or through content negotiation (an Accept header
// preferring text/plain, which is what a Prometheus scraper sends,
// without also accepting application/json). Everything else — curl,
// helperd metrics, the federation — keeps getting JSON.
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prom" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") &&
		!strings.Contains(accept, "application/json")
}

// servePromMetrics renders the counter snapshot in Prometheus text
// exposition format (version 0.0.4): the scalar counters and gauges of
// the JSON /metrics, the per-tenant admission series labelled by
// tenant, the lease-wait histogram, and the autoscaler's self-report
// when one is attached.
func (s *Server) servePromMetrics(w http.ResponseWriter) {
	s.mu.Lock()
	m := s.metricsLocked()
	buckets := s.latBuckets
	latSum, latCount := s.latSumMS, s.latCount
	// Deep-copy the per-tenant stage histograms so rendering happens off
	// the lock (tenant and stage order are sorted for a stable scrape).
	type stageSeries struct {
		tenant, stage string
		hist          stageHist
	}
	var stages []stageSeries
	for tenant, byStage := range s.stageHists {
		for stage, h := range byStage {
			stages = append(stages, stageSeries{tenant, stage, *h})
		}
	}
	s.mu.Unlock()
	stageRankOf := func(stage string) int {
		for i, st := range stageOrder {
			if st == stage {
				return i
			}
		}
		return len(stageOrder)
	}
	sort.Slice(stages, func(i, j int) bool {
		if stages[i].tenant != stages[j].tenant {
			return stages[i].tenant < stages[j].tenant
		}
		return stageRankOf(stages[i].stage) < stageRankOf(stages[j].stage)
	})

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("grid_submitted_total", "Jobs accepted across all batches.", m.Submitted)
	counter("grid_cache_hits_total", "Jobs served from the content-addressed store.", m.CacheHits)
	counter("grid_cache_misses_total", "Jobs that missed the store and created tasks.", m.CacheMisses)
	counter("grid_coalesced_total", "Jobs that joined an already-pending task.", m.Coalesced)
	counter("grid_completed_total", "Task executions reported successful.", m.Completed)
	counter("grid_failed_total", "Task executions reported failed.", m.Failed)
	counter("grid_leases_granted_total", "Tasks handed to workers.", m.LeasesGranted)
	counter("grid_lease_poll_empty_total", "Lease polls answered with zero tasks.", m.LeasePollEmpty)
	counter("grid_reassigned_total", "Leases expired without a heartbeat and requeued.", m.Reassigned)
	counter("grid_abandoned_total", "Tasks dropped because every subscriber left.", m.Abandoned)
	counter("grid_rejected_total", "Whole-batch admission refusals (429).", m.Rejected)
	counter("grid_overloaded_total", "Whole-batch overload refusals (503).", m.Overloaded)
	counter("grid_steals_out_total", "Tasks stolen by federation peers.", m.StealsOut)
	counter("grid_steals_in_total", "Tasks stolen from federation peers.", m.StealsIn)
	counter("grid_steal_returns_total", "Stolen leases handed back after a failed thief handoff.", m.StealReturns)
	counter("grid_peer_auth_rejected_total", "Peer-seam requests refused for a missing or invalid HMAC.", m.PeerAuthRejected)
	counter("grid_speculated_total", "Straggler re-leases.", m.Speculated)
	gauge("grid_queue_depth", "Queued tasks.", int64(m.QueueDepth))
	gauge("grid_leased", "Leased tasks.", int64(m.Leased))
	gauge("grid_workers", "Live simulation workers.", int64(m.Workers))
	gauge("grid_peers", "Known federation peers.", int64(m.Peers))
	gauge("grid_store_entries", "Content-addressed store entries.", int64(m.StoreEntries))
	counter("grid_store_puts_dropped_total", "Background store writes shed (peer down, queue overflow, or failure).", m.StorePutsDropped)
	if m.StoreReplication > 0 {
		counter("grid_store_remote_hits_total", "Gets answered by a shard peer after a local miss.", m.StoreRemoteHits)
		counter("grid_store_read_repairs_total", "Remote hits re-replicated into the local store.", m.StoreReadRepairs)
		gauge("grid_store_replication", "Configured sharded-store owners per hash.", int64(m.StoreReplication))
		gauge("grid_store_shard_members", "Live sharded-store membership, self included.", int64(m.StoreShardMembers))
	}

	if len(m.Tenants) > 0 {
		series := []struct {
			name, help, typ string
			value           func(TenantMetrics) int64
		}{
			{"grid_tenant_admitted_total", "Jobs admitted at /v1/batch.", "counter",
				func(t TenantMetrics) int64 { return int64(t.Admitted) }},
			{"grid_tenant_rejected_rate_total", "Batch refusals by rate limit.", "counter",
				func(t TenantMetrics) int64 { return int64(t.RejectedRate) }},
			{"grid_tenant_rejected_quota_total", "Batch refusals by pending quota.", "counter",
				func(t TenantMetrics) int64 { return int64(t.RejectedQuota) }},
			{"grid_tenant_completed_total", "Final results delivered successfully.", "counter",
				func(t TenantMetrics) int64 { return int64(t.Completed) }},
			{"grid_tenant_failed_total", "Final results delivered as failures.", "counter",
				func(t TenantMetrics) int64 { return int64(t.Failed) }},
			{"grid_tenant_queued", "Live queued subscriptions.", "gauge",
				func(t TenantMetrics) int64 { return int64(t.Queued) }},
			{"grid_tenant_running", "Live running subscriptions.", "gauge",
				func(t TenantMetrics) int64 { return int64(t.Running) }},
			{"grid_tenant_pending_bytes", "Payload bytes held against the byte quota.", "gauge",
				func(t TenantMetrics) int64 { return t.PendingBytes }},
		}
		for _, sr := range series {
			fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", sr.name, sr.help, sr.name, sr.typ)
			for _, t := range m.Tenants {
				fmt.Fprintf(&b, "%s{tenant=%q} %d\n", sr.name, t.ID, sr.value(t))
			}
		}
	}

	fmt.Fprintf(&b, "# HELP grid_lease_wait_ms Queue wait from enqueue (or requeue) to lease grant.\n")
	fmt.Fprintf(&b, "# TYPE grid_lease_wait_ms histogram\n")
	cum := uint64(0)
	for i, ub := range latencyBucketsMS {
		cum += buckets[i]
		fmt.Fprintf(&b, "grid_lease_wait_ms_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += buckets[len(latencyBucketsMS)]
	fmt.Fprintf(&b, "grid_lease_wait_ms_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(&b, "grid_lease_wait_ms_sum %g\n", latSum)
	fmt.Fprintf(&b, "grid_lease_wait_ms_count %d\n", latCount)

	if len(stages) > 0 {
		fmt.Fprintf(&b, "# HELP grid_stage_ms Per-tenant job lifecycle stage latency (admission, first_progress, exec, e2e).\n")
		fmt.Fprintf(&b, "# TYPE grid_stage_ms histogram\n")
		for _, ss := range stages {
			cum := uint64(0)
			for i, ub := range latencyBucketsMS {
				cum += ss.hist.buckets[i]
				fmt.Fprintf(&b, "grid_stage_ms_bucket{tenant=%q,stage=%q,le=\"%g\"} %d\n",
					ss.tenant, ss.stage, ub, cum)
			}
			cum += ss.hist.buckets[len(latencyBucketsMS)]
			fmt.Fprintf(&b, "grid_stage_ms_bucket{tenant=%q,stage=%q,le=\"+Inf\"} %d\n",
				ss.tenant, ss.stage, cum)
			fmt.Fprintf(&b, "grid_stage_ms_sum{tenant=%q,stage=%q} %g\n", ss.tenant, ss.stage, ss.hist.sumMS)
			fmt.Fprintf(&b, "grid_stage_ms_count{tenant=%q,stage=%q} %d\n", ss.tenant, ss.stage, ss.hist.count)
		}
	}

	if t := m.Trace; t != nil {
		gauge("grid_trace_ring_events", "Trace events currently held in the bounded ring.", int64(t.Events))
		gauge("grid_trace_ring_capacity", "Trace ring capacity.", int64(t.Capacity))
		counter("grid_trace_events_total", "Trace events ever recorded.", t.Total)
		counter("grid_trace_spill_dropped_total", "Trace events dropped by a lagging NDJSON spill.", t.SpillDropped)
	}

	if a := m.Autoscaler; a != nil {
		counter("grid_autoscaler_scale_ups_total", "Autoscaler spawn actions.", a.ScaleUps)
		counter("grid_autoscaler_scale_downs_total", "Autoscaler reap actions.", a.ScaleDowns)
		gauge("grid_autoscaler_workers", "Workers the autoscaler supervises.", int64(a.Workers))
		gauge("grid_autoscaler_target", "The autoscaler's current target.", int64(a.Target))
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Write([]byte(b.String()))
}
