package grid

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// startProgressWorker runs an in-process worker whose ExecProgress is
// driven by the test.
func startProgressWorker(t *testing.T, url string, exec ProgressExecFunc, par int) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	w := &Worker{Server: url, ExecProgress: exec, Parallel: par,
		LeaseWait: 100 * time.Millisecond, Name: fmt.Sprintf("pw-%p", &ctx)}
	go func() {
		defer close(done)
		w.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		<-done
	})
}

// TestProgressEndToEnd pushes interval progress from an execution
// through worker heartbeats, the server, and the NDJSON stream back to
// a subscribed client: events arrive under the batch's own job IDs with
// the worker identity stamped on, and final results are untouched.
func TestProgressEndToEnd(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(150*time.Millisecond))
	exec := func(ctx context.Context, p []byte, report func(TaskProgress)) ([]byte, error) {
		// Three snapshots, spaced past the ~50ms heartbeat cadence so at
		// least one beat carries each.
		for i := uint64(1); i <= 3; i++ {
			report(TaskProgress{Uops: i * 100, Total: 300, IntervalIPC: 1.25, Rung: "ir", Phase: 2})
			if !sleepCtx(ctx, 120*time.Millisecond) {
				return nil, ctx.Err()
			}
		}
		return p, nil
	}
	startProgressWorker(t, ts.URL, exec, 2)

	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("job-a", "a"), mkTask("job-b", "b")}
	progCh := make(chan TaskProgress, 64)
	ch, handle, err := c.SubmitStream(context.Background(), tasks, func(p TaskProgress) {
		select {
		case progCh <- p:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if handle == nil || handle.id == "" {
		t.Fatal("no batch handle")
	}
	got := collectResults(t, ch)
	for _, tk := range tasks {
		tr := got[tk.ID]
		if tr.Err != "" || !bytes.Equal(tr.Payload, tk.Payload) {
			t.Fatalf("task %s: err=%q payload=%s", tk.ID, tr.Err, tr.Payload)
		}
	}

	byJob := map[string]TaskProgress{}
	for len(progCh) > 0 {
		p := <-progCh
		byJob[p.ID] = p
	}
	if len(byJob) == 0 {
		t.Fatal("no progress events delivered")
	}
	for id, p := range byJob {
		if id != "job-a" && id != "job-b" {
			t.Errorf("progress for unknown job %q", id)
		}
		if p.Uops == 0 || p.Total != 300 || p.IntervalIPC != 1.25 || p.Rung != "ir" || p.Phase != 2 {
			t.Errorf("progress %q lost fields: %+v", id, p)
		}
		if p.Worker == "" || p.Hash == "" {
			t.Errorf("progress %q missing identity stamps: %+v", id, p)
		}
	}
	if m := srv.Metrics(); m.ProgressUpdates == 0 {
		t.Errorf("server accepted no progress updates: %+v", m)
	}
}

// TestProgressNotSentWithoutSubscription pins the opt-in: a plain Submit
// stream never sees progress lines (they would confuse a client counting
// final results).
func TestProgressNotSentWithoutSubscription(t *testing.T) {
	_, ts := testGrid(t, WithLeaseTTL(150*time.Millisecond))
	exec := func(ctx context.Context, p []byte, report func(TaskProgress)) ([]byte, error) {
		report(TaskProgress{Uops: 1})
		sleepCtx(ctx, 120*time.Millisecond)
		return p, nil
	}
	startProgressWorker(t, ts.URL, exec, 1)
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), []Task{mkTask("0", "x")})
	if err != nil {
		t.Fatal(err)
	}
	got := collectResults(t, ch)
	if tr := got["0"]; tr.Err != "" || tr.Progress != nil {
		t.Fatalf("unexpected result: %+v", tr)
	}
}

// TestEarlyStopJob stops one job of a two-job batch from the client:
// the stopped job gets a final TaskStoppedError result immediately, its
// execution is aborted at the worker via the per-task cancellation path,
// the sibling completes normally, and the lease counters record the
// early stop.
func TestEarlyStopJob(t *testing.T) {
	srv, ts := testGrid(t, WithLeaseTTL(150*time.Millisecond))
	var aborted atomic.Int64
	exec := func(ctx context.Context, p []byte, report func(TaskProgress)) ([]byte, error) {
		if bytes.Contains(p, []byte("block")) {
			report(TaskProgress{Uops: 1, Total: 1000})
			<-ctx.Done() // runs until the early stop propagates
			aborted.Add(1)
			return nil, ctx.Err()
		}
		return p, nil
	}
	startProgressWorker(t, ts.URL, exec, 2)

	c := &Client{Server: ts.URL}
	tasks := []Task{mkTask("keep", "fine"), mkTask("stop", "block")}
	progCh := make(chan TaskProgress, 16)
	ch, handle, err := c.SubmitStream(context.Background(), tasks, func(p TaskProgress) {
		select {
		case progCh <- p:
		default:
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the doomed job proves it is running, then stop it —
	// draining final results all the while: progress and results share
	// one stream, so parking on progress alone would wedge it (the
	// SubmitStream contract).
	got := map[string]TaskResult{}
	deadline := time.After(10 * time.Second)
	stopped := false
	for len(got) < len(tasks) {
		select {
		case p := <-progCh:
			if p.ID == "stop" && !stopped {
				if err := handle.Stop(context.Background(), "stop"); err != nil {
					t.Fatal(err)
				}
				stopped = true
			}
		case tr, ok := <-ch:
			if !ok {
				t.Fatalf("stream closed after %d of %d results", len(got), len(tasks))
			}
			if _, dup := got[tr.ID]; dup {
				t.Fatalf("task %s delivered twice", tr.ID)
			}
			got[tr.ID] = tr
		case <-deadline:
			t.Fatalf("stalled: stopped=%v, %d results", stopped, len(got))
		}
	}
	if tr := got["keep"]; tr.Err != "" || !bytes.Equal(tr.Payload, tasks[0].Payload) {
		t.Fatalf("sibling job damaged: %+v", tr)
	}
	if tr := got["stop"]; tr.Err != TaskStoppedError {
		t.Fatalf("stopped job delivered %+v, want Err=%q", tr, TaskStoppedError)
	}

	// The worker-side execution must actually be cancelled (frees the
	// slot) and the counters must show the early stop.
	waitDeadline := time.Now().Add(10 * time.Second)
	for aborted.Load() == 0 {
		if time.Now().After(waitDeadline) {
			t.Fatal("early stop never reached the worker execution")
		}
		time.Sleep(10 * time.Millisecond)
	}
	m := srv.Metrics()
	if m.EarlyStopped != 1 || m.Abandoned == 0 {
		t.Errorf("metrics = %+v, want EarlyStopped=1 and Abandoned>0", m)
	}
	// Stopping an already-finished job is a harmless no-op.
	if err := handle.Stop(context.Background(), "stop", "keep", "ghost"); err != nil {
		t.Errorf("idempotent stop errored: %v", err)
	}
}

// TestDiskBackedServerRestart runs a batch through a disk-backed server,
// tears the server down without closing the store (crash-equivalent: no
// flush exists to miss), and checks a fresh server on the same directory
// answers the resubmission entirely from the recovered cache with no
// worker attached at all.
func TestDiskBackedServerRestart(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(WithLeaseTTL(200*time.Millisecond), WithStorage(st))
	ts := httptest.NewServer(srv)

	wctx, wcancel := context.WithCancel(context.Background())
	w := &Worker{Server: ts.URL, Exec: echoExec, Parallel: 2, LeaseWait: 100 * time.Millisecond, Name: "dw"}
	workerDone := make(chan struct{})
	go func() {
		defer close(workerDone)
		w.Run(wctx)
	}()

	tasks := []Task{mkTask("0", "alpha"), mkTask("1", "beta"), mkTask("2", "gamma")}
	c := &Client{Server: ts.URL}
	ch, err := c.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	first := collectResults(t, ch)

	// SIGKILL-equivalent: server and worker go away, the store is never
	// closed or flushed.
	wcancel()
	<-workerDone
	ts.Close()
	srv.Close()

	st2, err := OpenDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	srv2 := NewServer(WithStorage(st2))
	ts2 := httptest.NewServer(srv2)
	defer func() {
		ts2.Close()
		srv2.Close()
	}()

	c2 := &Client{Server: ts2.URL}
	ch2, err := c2.Submit(context.Background(), tasks)
	if err != nil {
		t.Fatal(err)
	}
	second := collectResults(t, ch2)
	for id, tr := range second {
		if !tr.Cached {
			t.Errorf("task %s not served from the recovered cache", id)
		}
		if !bytes.Equal(tr.Payload, first[id].Payload) {
			t.Errorf("task %s drifted across the restart", id)
		}
	}
	if m := srv2.Metrics(); m.CacheMisses != 0 || m.CacheHits != uint64(len(tasks)) {
		t.Errorf("restarted server metrics %+v, want %d hits / 0 misses", m, len(tasks))
	}
}
