// Package predict implements the prediction structures of the helper
// cluster: the PC-indexed data-width predictor of Figure 4 (a tagless
// last-width table with a 2-bit confidence estimator), the carry-width
// extension bit of the CR scheme, the copy-prefetch bit of the CP scheme,
// and a conventional branch predictor substrate for the pipeline frontend.
package predict

// DefaultWidthEntries is the width-predictor table size the paper settled
// on: "a size of 256 entries was found to be a good compromise between
// complexity and performance" (§3.2).
const DefaultWidthEntries = 256

// confidence thresholds for the 2-bit saturating estimator: a prediction is
// acted upon only in the high-confidence states (§3.2 fine-tuning that cut
// fatal mispredictions from 2.11% to 0.83%).
const (
	confMax       = 3
	confThreshold = 2
)

type widthEntry struct {
	lastNarrow bool  // width of the last result produced at this PC
	conf       uint8 // 2-bit saturating confidence of lastNarrow

	// CR extension (§3.5): did the last 8-32-32 instance at this PC keep
	// the carry contained below bit 8?
	carryOK   bool
	carryConf uint8

	// CP extension (§3.6): did the last instance at this PC generate a
	// narrow-to-wide copy? Set at writeback, triggers a prefetch next time.
	copyLikely bool
}

// WidthStats counts predictor outcomes for the Figure 5 accuracy study.
type WidthStats struct {
	Lookups   uint64
	Correct   uint64
	Incorrect uint64
}

// Accuracy returns the fraction of correct predictions, in [0,1].
func (s WidthStats) Accuracy() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.Correct) / float64(s.Lookups)
}

// WidthPredictor is the tagless table-based data-width predictor of
// Figure 4. The table is indexed by PC; each entry stores a single
// last-width bit plus a 2-bit confidence estimator, with two extra bits
// serving the CR and CP schemes.
type WidthPredictor struct {
	entries []widthEntry
	mask    uint32
	stats   WidthStats
}

// NewWidthPredictor creates a predictor with the given number of entries,
// which must be a power of two; the paper's design point is
// DefaultWidthEntries.
func NewWidthPredictor(entries int) *WidthPredictor {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic("predict: width predictor size must be a positive power of two")
	}
	return &WidthPredictor{
		entries: make([]widthEntry, entries),
		mask:    uint32(entries - 1),
	}
}

func (p *WidthPredictor) index(pc uint32) *widthEntry {
	return &p.entries[pc&p.mask]
}

// PredictResult returns the predicted narrowness of the result produced at
// pc and whether the prediction is held with high confidence. Callers that
// use the confidence estimator only act on confident predictions.
func (p *WidthPredictor) PredictResult(pc uint32) (narrow, confident bool) {
	e := p.index(pc)
	return e.lastNarrow, e.conf >= confThreshold
}

// UpdateResult trains the entry with the actual result width observed at
// writeback and records prediction accuracy.
func (p *WidthPredictor) UpdateResult(pc uint32, narrow bool) {
	e := p.index(pc)
	p.stats.Lookups++
	if e.lastNarrow == narrow {
		p.stats.Correct++
		if e.conf < confMax {
			e.conf++
		}
	} else {
		p.stats.Incorrect++
		if e.conf > 0 {
			e.conf--
		}
		e.lastNarrow = narrow
	}
}

// PredictCarry returns the CR-bit prediction: whether the next 8-32-32
// instance at pc will keep its carry contained, and the confidence of that
// prediction (the CR scheme reuses the 2-bit confidence discipline, §3.5).
func (p *WidthPredictor) PredictCarry(pc uint32) (contained, confident bool) {
	e := p.index(pc)
	return e.carryOK, e.carryConf >= confThreshold
}

// UpdateCarry trains the CR bit with the writeback-time carry check.
func (p *WidthPredictor) UpdateCarry(pc uint32, contained bool) {
	e := p.index(pc)
	if e.carryOK == contained {
		if e.carryConf < confMax {
			e.carryConf++
		}
	} else {
		if e.carryConf > 0 {
			e.carryConf--
		}
		e.carryOK = contained
	}
}

// PredictCopy returns the CP bit: whether the last instance at pc generated
// a cross-cluster copy, which triggers a prefetch at the producer (§3.6).
func (p *WidthPredictor) PredictCopy(pc uint32) bool {
	return p.index(pc).copyLikely
}

// UpdateCopy records at writeback whether this instance incurred a copy.
func (p *WidthPredictor) UpdateCopy(pc uint32, copied bool) {
	p.index(pc).copyLikely = copied
}

// Stats returns accumulated accuracy counters.
func (p *WidthPredictor) Stats() WidthStats { return p.stats }

// ResetStats zeroes the accuracy counters, keeping the learned table
// (measurement warmup).
func (p *WidthPredictor) ResetStats() { p.stats = WidthStats{} }

// Reset clears all entries and statistics.
func (p *WidthPredictor) Reset() {
	for i := range p.entries {
		p.entries[i] = widthEntry{}
	}
	p.stats = WidthStats{}
}

// Size returns the number of table entries.
func (p *WidthPredictor) Size() int { return len(p.entries) }
