package predict

import (
	"testing"
	"testing/quick"
)

func TestWidthPredictorSizing(t *testing.T) {
	for _, n := range []int{0, -1, 3, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("size %d should panic", n)
				}
			}()
			NewWidthPredictor(n)
		}()
	}
	if NewWidthPredictor(256).Size() != 256 {
		t.Error("size mismatch")
	}
}

func TestWidthPredictorLastValue(t *testing.T) {
	p := NewWidthPredictor(256)
	pc := uint32(0x1234)

	// Fresh entry predicts wide (lastNarrow=false) without confidence.
	narrow, conf := p.PredictResult(pc)
	if narrow || conf {
		t.Error("fresh entry must predict wide, unconfident")
	}

	// Train narrow repeatedly: prediction flips and gains confidence.
	for i := 0; i < 4; i++ {
		p.UpdateResult(pc, true)
	}
	narrow, conf = p.PredictResult(pc)
	if !narrow || !conf {
		t.Error("after narrow training, expect confident narrow")
	}

	// One wide outcome drops confidence but not (yet) the prediction.
	p.UpdateResult(pc, false)
	narrow, _ = p.PredictResult(pc)
	if narrow {
		t.Error("last-value predictor must flip to wide after a wide outcome")
	}
}

func TestWidthPredictorConfidenceDamping(t *testing.T) {
	p := NewWidthPredictor(64)
	pc := uint32(8)
	// Alternating widths: the 2-bit estimator should never reach the
	// confident states, which is exactly how the paper suppressed fatal
	// mispredictions.
	for i := 0; i < 50; i++ {
		p.UpdateResult(pc, i%2 == 0)
		if _, conf := p.PredictResult(pc); conf && i > 2 {
			t.Fatalf("alternating widths must stay unconfident (iter %d)", i)
		}
	}
}

func TestWidthPredictorAliasing(t *testing.T) {
	p := NewWidthPredictor(16)
	// PCs 0 and 16 alias in a 16-entry tagless table.
	for i := 0; i < 4; i++ {
		p.UpdateResult(0, true)
	}
	narrow, _ := p.PredictResult(16)
	if !narrow {
		t.Error("tagless table must alias PC 16 onto PC 0's entry")
	}
}

func TestWidthPredictorStats(t *testing.T) {
	p := NewWidthPredictor(64)
	for i := 0; i < 10; i++ {
		p.UpdateResult(4, true)
	}
	p.UpdateResult(4, false)
	s := p.Stats()
	if s.Lookups != 11 || s.Incorrect < 2 {
		t.Errorf("stats = %+v", s)
	}
	// First update counts as incorrect (entry starts wide), last flips.
	if got := s.Accuracy(); got <= 0.5 || got >= 1 {
		t.Errorf("accuracy = %f", got)
	}
	p.Reset()
	if p.Stats().Lookups != 0 {
		t.Error("reset must clear stats")
	}
	if s := (WidthStats{}); s.Accuracy() != 0 {
		t.Error("empty accuracy must be 0")
	}
}

func TestCarryBit(t *testing.T) {
	p := NewWidthPredictor(256)
	pc := uint32(0x40)
	if _, conf := p.PredictCarry(pc); conf {
		t.Error("fresh carry bit must be unconfident")
	}
	for i := 0; i < 3; i++ {
		p.UpdateCarry(pc, true)
	}
	contained, conf := p.PredictCarry(pc)
	if !contained || !conf {
		t.Error("trained carry bit should be confident contained")
	}
	p.UpdateCarry(pc, false)
	p.UpdateCarry(pc, false)
	p.UpdateCarry(pc, false)
	contained, _ = p.PredictCarry(pc)
	if contained {
		t.Error("carry bit must learn propagation")
	}
}

func TestCopyBit(t *testing.T) {
	p := NewWidthPredictor(256)
	pc := uint32(0x99)
	if p.PredictCopy(pc) {
		t.Error("fresh copy bit must be unset")
	}
	p.UpdateCopy(pc, true)
	if !p.PredictCopy(pc) {
		t.Error("copy bit set at writeback must predict a prefetch")
	}
	p.UpdateCopy(pc, false)
	if p.PredictCopy(pc) {
		t.Error("copy bit is last-value based")
	}
}

// TestWidthPredictorIsLastValue: property — after UpdateResult(pc, w) the
// entry predicts w (confidence aside).
func TestWidthPredictorIsLastValue(t *testing.T) {
	p := NewWidthPredictor(1024)
	f := func(pc uint32, w bool) bool {
		p.UpdateResult(pc, w)
		narrow, _ := p.PredictResult(pc)
		return narrow == w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBranchPredictorSizing(t *testing.T) {
	for _, bad := range [][3]int{{0, 16, 8}, {16, 0, 8}, {12, 16, 8}, {16, 16, 0}, {16, 16, 40}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("args %v should panic", bad)
				}
			}()
			NewBranchPredictor(bad[0], bad[1], bad[2])
		}()
	}
}

func TestBranchPredictorLearnsLoop(t *testing.T) {
	b := NewBranchPredictor(4096, 1024, 12)
	pc, target := uint32(0x100), uint32(0x80)
	// A loop-bottom branch taken 9 of 10 times becomes well predicted.
	correct := 0
	for i := 0; i < 1000; i++ {
		taken := i%10 != 9
		predTaken, predTarget, known := b.Predict(pc)
		if b.Update(pc, taken, target) {
			correct++
		}
		_ = predTaken
		_ = predTarget
		_ = known
	}
	if correct < 800 {
		t.Errorf("loop branch predicted correctly only %d/1000", correct)
	}
	s := b.Stats()
	if s.Predictions != 1000 || s.DirectionHits < 800 {
		t.Errorf("stats = %+v", s)
	}
}

func TestBranchPredictorBTB(t *testing.T) {
	b := NewBranchPredictor(256, 16, 8)
	pc, target := uint32(0x10), uint32(0xABCD)
	if _, _, known := b.Predict(pc); known {
		t.Error("BTB must miss before training")
	}
	b.Update(pc, true, target)
	_, got, known := b.Predict(pc)
	if !known || got != target {
		t.Errorf("BTB after update: known=%v target=%#x", known, got)
	}
	// A conflicting branch evicts the direct-mapped entry.
	b.Update(pc+16, true, 0x9999)
	if _, _, known := b.Predict(pc); known {
		t.Error("direct-mapped BTB must evict on conflict")
	}
}

func TestBranchPredictorNotTakenCorrectWithoutBTB(t *testing.T) {
	b := NewBranchPredictor(256, 16, 8)
	pc := uint32(0x30)
	// Never-taken branches should be fully correct even with a cold BTB.
	for i := 0; i < 10; i++ {
		b.Update(pc, false, 0)
	}
	if !b.Update(pc, false, 0) {
		t.Error("not-taken branch with trained counter must be correct")
	}
}
