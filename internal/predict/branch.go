package predict

// BranchPredictor is a conventional gshare predictor with a direct-mapped
// branch target buffer. The paper does not study branch prediction — it is
// pipeline substrate — but the deep P4-like pipeline needs realistic
// control-flow bubbles for the speedup numbers to mean anything.
type BranchPredictor struct {
	counters []uint8 // 2-bit saturating counters
	mask     uint32
	history  uint32
	histMask uint32

	btbTags    []uint32
	btbTargets []uint32
	btbMask    uint32

	stats BranchStats
}

// BranchStats counts direction and target outcomes.
type BranchStats struct {
	Predictions   uint64
	DirectionHits uint64
	TargetHits    uint64
}

// NewBranchPredictor builds a gshare predictor with the given pattern table
// size and BTB size (both powers of two) and history length in bits.
func NewBranchPredictor(patternEntries, btbEntries, historyBits int) *BranchPredictor {
	if patternEntries <= 0 || patternEntries&(patternEntries-1) != 0 {
		panic("predict: pattern table size must be a positive power of two")
	}
	if btbEntries <= 0 || btbEntries&(btbEntries-1) != 0 {
		panic("predict: BTB size must be a positive power of two")
	}
	if historyBits <= 0 || historyBits > 31 {
		panic("predict: history bits out of range")
	}
	return &BranchPredictor{
		counters:   make([]uint8, patternEntries),
		mask:       uint32(patternEntries - 1),
		histMask:   (1 << historyBits) - 1,
		btbTags:    make([]uint32, btbEntries),
		btbTargets: make([]uint32, btbEntries),
		btbMask:    uint32(btbEntries - 1),
	}
}

// Reinit restores the cold state, reusing the tables when the geometry is
// unchanged and rebuilding them otherwise.
func (b *BranchPredictor) Reinit(patternEntries, btbEntries, historyBits int) {
	if len(b.counters) != patternEntries || len(b.btbTags) != btbEntries ||
		b.histMask != (1<<historyBits)-1 {
		*b = *NewBranchPredictor(patternEntries, btbEntries, historyBits)
		return
	}
	clear(b.counters)
	clear(b.btbTags)
	clear(b.btbTargets)
	b.history = 0
	b.stats = BranchStats{}
}

func (b *BranchPredictor) patternIndex(pc uint32) uint32 {
	return (pc ^ b.history) & b.mask
}

// Predict returns the predicted direction and target for the branch at pc.
// targetKnown is false on a BTB miss, in which case a taken prediction
// still redirects fetch only once the branch resolves.
func (b *BranchPredictor) Predict(pc uint32) (taken bool, target uint32, targetKnown bool) {
	taken = b.counters[b.patternIndex(pc)] >= 2
	slot := pc & b.btbMask
	if b.btbTags[slot] == pc {
		return taken, b.btbTargets[slot], true
	}
	return taken, 0, false
}

// History returns the speculative global history register, checkpointed by
// the pipeline at rename so a flush can restore it.
func (b *BranchPredictor) History() uint32 { return b.history }

// RestoreHistory rewinds the global history register to a checkpoint
// (misprediction recovery).
func (b *BranchPredictor) RestoreHistory(h uint32) { b.history = h & b.histMask }

// SpecUpdateHistory shifts a (speculative) outcome into the global history
// at prediction time.
func (b *BranchPredictor) SpecUpdateHistory(taken bool) {
	bit := uint32(0)
	if taken {
		bit = 1
	}
	b.history = ((b.history << 1) | bit) & b.histMask
}

// Train updates the pattern counters and BTB with a resolved outcome using
// the history the prediction was made under; it does not touch the
// speculative history (the pipeline owns that via SpecUpdateHistory /
// RestoreHistory).
func (b *BranchPredictor) Train(pc uint32, historyAtPredict uint32, taken bool, target uint32) {
	idx := (pc ^ (historyAtPredict & b.histMask)) & b.mask
	if taken {
		if b.counters[idx] < 3 {
			b.counters[idx]++
		}
		slot := pc & b.btbMask
		b.btbTags[slot] = pc
		b.btbTargets[slot] = target
	} else if b.counters[idx] > 0 {
		b.counters[idx]--
	}
	b.stats.Predictions++
}

// PredictAt evaluates a prediction under an explicit history value.
func (b *BranchPredictor) PredictAt(pc uint32, historyAtPredict uint32) (taken bool, target uint32, targetKnown bool) {
	idx := (pc ^ (historyAtPredict & b.histMask)) & b.mask
	taken = b.counters[idx] >= 2
	slot := pc & b.btbMask
	if b.btbTags[slot] == pc {
		return taken, b.btbTargets[slot], true
	}
	return taken, 0, false
}

// Update trains direction, history and BTB with the resolved outcome, and
// returns whether the prediction made from the current state would have
// been fully correct (direction, and target when taken).
func (b *BranchPredictor) Update(pc uint32, taken bool, target uint32) (correct bool) {
	idx := b.patternIndex(pc)
	predTaken := b.counters[idx] >= 2
	slot := pc & b.btbMask
	targetOK := !taken || (b.btbTags[slot] == pc && b.btbTargets[slot] == target)
	correct = predTaken == taken && targetOK

	b.stats.Predictions++
	if predTaken == taken {
		b.stats.DirectionHits++
	}
	if targetOK {
		b.stats.TargetHits++
	}

	if taken {
		if b.counters[idx] < 3 {
			b.counters[idx]++
		}
		b.btbTags[slot] = pc
		b.btbTargets[slot] = target
	} else if b.counters[idx] > 0 {
		b.counters[idx]--
	}
	bit := uint32(0)
	if taken {
		bit = 1
	}
	b.history = ((b.history << 1) | bit) & b.histMask
	return correct
}

// Stats returns accumulated counters.
func (b *BranchPredictor) Stats() BranchStats { return b.stats }

// ResetStats zeroes the counters, keeping the learned state.
func (b *BranchPredictor) ResetStats() { b.stats = BranchStats{} }
