package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Errorf("Workers(0,100) = %d, want GOMAXPROCS", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8,3) = %d, want 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1,0) = %d, want 1", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Errorf("Workers(2,100) = %d, want 2", got)
	}
}

func TestMapOrder(t *testing.T) {
	for _, workers := range []int{1, 4} {
		out, err := Map(context.Background(), 100, workers, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(_ context.Context, i int) (int, error) { return i, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

func TestMapCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var calls atomic.Int64
	_, err := Map(ctx, 1000, 2, func(_ context.Context, i int) (int, error) {
		if calls.Add(1) == 3 {
			cancel()
		}
		return i, nil
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := calls.Load(); n >= 1000 {
		t.Errorf("cancellation did not stop dispatch (%d calls)", n)
	}
}

func TestMapFirstErrorCancelsRest(t *testing.T) {
	boom := errors.New("boom")
	var calls atomic.Int64
	for _, workers := range []int{1, 4} {
		calls.Store(0)
		_, err := Map(context.Background(), 1000, workers, func(ctx context.Context, i int) (int, error) {
			n := calls.Add(1)
			if n == 3 {
				return 0, fmt.Errorf("job %d: %w", i, boom)
			}
			// Echoes of the induced cancellation must not mask the failure.
			if ctx.Err() != nil {
				return 0, fmt.Errorf("job %d: %w", i, ctx.Err())
			}
			return i, nil
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want the real failure", workers, err)
		}
		if n := calls.Load(); n >= 1000 {
			t.Errorf("workers=%d: first error did not stop dispatch (%d calls)", workers, n)
		}
	}
}

func TestMapInnerTimeoutIsARealFailure(t *testing.T) {
	// A wrapped context error from inside fn while the pool is live (e.g.
	// a per-call timeout) must surface, not be swallowed as an echo.
	inner := fmt.Errorf("per-call budget: %w", context.DeadlineExceeded)
	_, err := Map(context.Background(), 10, 2, func(_ context.Context, i int) (int, error) {
		if i == 0 {
			return 0, inner
		}
		return i, nil
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want the inner timeout to surface", err)
	}
}

func TestMapParentCancelNotMisattributed(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Map(ctx, 100, 4, func(ctx context.Context, i int) (int, error) {
		return 0, fmt.Errorf("wrapped: %w", ctx.Err())
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want bare context.Canceled", err)
	}
}

func TestStreamDeliversAll(t *testing.T) {
	seen := make(map[int]bool)
	for v := range Stream(context.Background(), 50, 4, func(_ context.Context, i int) int { return i }) {
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("got %d distinct results, want 50", len(seen))
	}
}

func TestStreamCancelStopsAndCloses(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var calls atomic.Int64
	ch := Stream(ctx, 1000, 2, func(_ context.Context, i int) int {
		calls.Add(1)
		return i
	})
	n := 0
	for range ch {
		n++
		if n == 3 {
			cancel()
		}
	}
	if c := calls.Load(); c >= 1000 {
		t.Errorf("cancellation did not stop dispatch (%d calls)", c)
	}
}

func TestStreamAbandonedReceiverNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	ch := Stream(ctx, 100, 4, func(_ context.Context, i int) int { return i })
	<-ch // receive one, then walk away after cancelling
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
		if runtime.NumGoroutine() <= before+1 {
			return
		}
	}
	t.Fatalf("goroutines did not drain: before=%d after=%d", before, runtime.NumGoroutine())
}

func TestStreamChanDeliversAll(t *testing.T) {
	in := make(chan int)
	go func() {
		for i := 0; i < 50; i++ {
			in <- i
		}
		close(in)
	}()
	out := StreamChan(context.Background(), in, 4, func(_ context.Context, v int) int { return v * 2 })
	seen := map[int]bool{}
	for v := range out {
		seen[v] = true
	}
	if len(seen) != 50 {
		t.Fatalf("delivered %d of 50", len(seen))
	}
	for i := 0; i < 50; i++ {
		if !seen[2*i] {
			t.Errorf("missing result %d", 2*i)
		}
	}
}

// TestStreamChanCancelClosesAndDrains cancels mid-stream with items still
// arriving: the output must close promptly (dropping undeliverable
// results) and every pool goroutine must exit even though the input
// channel is never closed.
func TestStreamChanCancelClosesAndDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int)
	feeder := make(chan struct{})
	go func() {
		defer close(feeder)
		i := 0
		for {
			select {
			case in <- i:
				i++
			case <-ctx.Done():
				return // input never closes: cancellation alone must stop the pool
			}
		}
	}()
	out := StreamChan(ctx, in, 3, func(ctx context.Context, v int) int {
		if v == 5 {
			cancel()
		}
		return v
	})
	n := 0
	for range out {
		n++
	}
	<-feeder
	if n == 0 {
		t.Fatal("no results before cancellation")
	}
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: before=%d after=%d", before, runtime.NumGoroutine())
}

// TestStreamChanAbandonedReceiverNoLeak abandons the output channel after
// cancelling: results must be dropped, not block a worker forever.
func TestStreamChanAbandonedReceiverNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan int, 16)
	for i := 0; i < 16; i++ {
		in <- i
	}
	close(in)
	out := StreamChan(ctx, in, 2, func(_ context.Context, v int) int { return v })
	<-out // take one result, then walk away
	cancel()
	_ = out
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before+1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not drain: before=%d after=%d", before, runtime.NumGoroutine())
}
