// Package parallel hosts the bounded worker pool shared by the experiment
// harness and the public batch Runner: a context-aware fan-out over an
// index range, in collecting (Map) and streaming (Stream) flavours.
//
// Simulation jobs are CPU-bound and independent, so the pool is a plain
// fixed set of goroutines pulling indices from a channel; cancellation is
// observed between items (and inside an item by whatever fn itself does
// with the context).
package parallel

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// Workers normalizes a requested worker count: values < 1 mean GOMAXPROCS,
// and the count never exceeds n (there is no point idling goroutines).
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map evaluates fn(ctx, i) for i in [0,n) on a bounded worker pool and
// returns the results in index order, with errgroup-style error handling:
// the first call to return a real error cancels the context the remaining
// calls see, stops dispatch, and is reported after in-flight calls wind
// down. Context errors returned by fn (even wrapped) while the pool's
// context is already done are not treated as failures — they are either
// the parent ctx, reported as ctx.Err(), or the echo of the recorded
// first failure; the same error from a still-live pool (a per-call
// timeout inside fn, say) counts as a real failure. Slots whose index was
// never dispatched, or whose call failed, hold whatever fn returned
// (usually the zero value).
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		once     sync.Once
		firstErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		// A context error is only an echo of this pool's cancellation (the
		// parent ctx or an earlier recorded failure) when the pool context
		// is actually done; otherwise it came from somewhere inside fn —
		// say a per-call timeout — and counts as a real failure.
		if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && runCtx.Err() != nil {
			return
		}
		once.Do(func() {
			firstErr = err
			cancel()
		})
	}

	workers = Workers(workers, n)
	if workers == 1 {
		for i := 0; i < n && runCtx.Err() == nil; i++ {
			v, err := fn(runCtx, i)
			out[i] = v
			fail(err)
		}
	} else {
		work := make(chan int)
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for i := range work {
					v, err := fn(runCtx, i)
					out[i] = v
					fail(err)
				}
			}()
		}
	dispatch:
		for i := 0; i < n; i++ {
			// Priority check: a blocking select picks randomly when both a
			// worker and Done are ready, which could dispatch work after
			// cancellation; checking Done first guarantees it cannot.
			select {
			case <-runCtx.Done():
				break dispatch
			default:
			}
			select {
			case work <- i:
			case <-runCtx.Done():
				break dispatch
			}
		}
		close(work)
		wg.Wait()
	}
	if firstErr != nil {
		return out, firstErr
	}
	return out, ctx.Err()
}

// StreamChan evaluates fn over items arriving on in — work whose size is
// unknown up front, like leases pulled from a grid job server — on a
// bounded worker pool, sending each result on the returned channel as it
// completes. The output channel closes once in is closed and drained (or
// ctx is done) and all in-flight calls have finished. On cancellation
// workers stop pulling items and undeliverable results are dropped, so
// ranging over the output until close never leaks, cancelled or not —
// the same contract as Stream.
func StreamChan[T, R any](ctx context.Context, in <-chan T, workers int, fn func(ctx context.Context, v T) R) <-chan R {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	out := make(chan R)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// Priority check, as in Map/Stream: never start new work
				// after cancellation even when in is also ready.
				select {
				case <-ctx.Done():
					return
				default:
				}
				select {
				case <-ctx.Done():
					return
				case v, ok := <-in:
					if !ok {
						return
					}
					r := fn(ctx, v)
					select {
					case out <- r:
					case <-ctx.Done():
						// Receiver may have walked away after cancelling;
						// drop the (moot) result rather than block forever.
					}
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Stream evaluates fn(ctx, i) for i in [0,n) on a bounded worker pool and
// sends each result on the returned channel as it completes (order is
// completion order, not index order — fn should embed the index if the
// caller needs it). The channel is closed once all dispatched work has
// finished; on cancellation no new indices are dispatched, and once ctx is
// done results may be dropped instead of delivered so that workers never
// block on a receiver that walked away. Ranging over the channel until it
// closes is therefore always leak-free, cancelled or not.
func Stream[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) T) <-chan T {
	out := make(chan T)
	if n == 0 {
		close(out)
		return out
	}
	workers = Workers(workers, n)
	work := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range work {
				v := fn(ctx, i)
				select {
				case out <- v:
				case <-ctx.Done():
					// Receiver may have walked away after cancelling;
					// drop the (moot) result rather than block forever.
				}
			}
		}()
	}
	go func() {
	dispatch:
		for i := 0; i < n; i++ {
			// Same priority check as Map: never dispatch after Done.
			select {
			case <-ctx.Done():
				break dispatch
			default:
			}
			select {
			case work <- i:
			case <-ctx.Done():
				break dispatch
			}
		}
		close(work)
		wg.Wait()
		close(out)
	}()
	return out
}
