// Package analysis implements the paper's trace-level characterization
// studies — the measurements that motivate the steering schemes before any
// timing simulation:
//
//   - Figure 1: fraction of register operands that are narrow data-width
//     dependent (the producer's value is narrow), plus the §1 operand-mix
//     statistics (one narrow source; two narrow sources with a wide result;
//     two narrow sources with a narrow result).
//   - Figure 11: among two-source instructions with one 8-bit and one
//     32-bit source and a 32-bit result, the fraction whose carry does not
//     propagate beyond the low byte, split into arithmetic and loads.
//   - Figure 13: the average dynamic producer-consumer distance.
package analysis

import (
	"repro/internal/bitwidth"
	"repro/internal/isa"
	"repro/internal/trace"
)

// NarrowDependency is the Figure 1 measurement for one workload.
type NarrowDependency struct {
	Operands  uint64  // register operands observed
	NarrowDep uint64  // operands whose producer value was narrow
	Frac      float64 // NarrowDep / Operands

	// §1 ALU operand-mix statistics (fractions of regular ALU uops).
	OneNarrowFrac          float64 // exactly one narrow source
	TwoNarrowWideResFrac   float64 // two narrow sources, wide result
	TwoNarrowNarrowResFrac float64 // two narrow sources, narrow result
}

// MeasureNarrowDependency runs the Figure 1 study over n uops of src.
func MeasureNarrowDependency(src trace.Source, n int) NarrowDependency {
	var (
		d        NarrowDependency
		u        isa.Uop
		aluTotal uint64
		oneN     uint64
		twoNW    uint64
		twoNN    uint64
	)
	// Track the narrowness of the latest value in each register, observed
	// from actual produced values (integer namespace only).
	var narrowReg [isa.NumRegs]bool
	var written [isa.NumRegs]bool

	for i := 0; i < n; i++ {
		src.Next(&u)
		if u.Class != isa.ClassFP && u.Class != isa.ClassJump {
			for k := 0; k < int(u.NSrc); k++ {
				r := u.SrcReg[k]
				if r == isa.RegNone {
					continue
				}
				if !written[r] {
					continue // producer unseen: not attributable
				}
				d.Operands++
				if narrowReg[r] {
					d.NarrowDep++
				}
			}
		}

		if u.Class == isa.ClassALU && u.NSrc >= 1 {
			aluTotal++
			narrowSrcs := 0
			srcs := 0
			for k := 0; k < int(u.NSrc); k++ {
				if u.SrcReg[k] == isa.RegNone {
					continue
				}
				srcs++
				if bitwidth.IsNarrow(u.SrcVal[k]) {
					narrowSrcs++
				}
			}
			if u.HasImm {
				srcs++
				if bitwidth.IsNarrow(u.Imm) {
					narrowSrcs++
				}
			}
			resNarrow := bitwidth.IsNarrow(u.DstVal)
			switch {
			case srcs >= 2 && narrowSrcs == srcs && resNarrow:
				twoNN++
			case srcs >= 2 && narrowSrcs == srcs && !resNarrow:
				twoNW++
			case narrowSrcs == 1 && srcs >= 1:
				oneN++
			}
		}

		if u.Class != isa.ClassFP && u.HasDest() {
			narrowReg[u.DstReg] = bitwidth.IsNarrow(u.DstVal)
			written[u.DstReg] = true
		}
		if u.WritesFlags {
			narrowReg[isa.RegFlags] = bitwidth.IsNarrow(u.DstVal)
			written[isa.RegFlags] = true
		}
	}
	if d.Operands > 0 {
		d.Frac = float64(d.NarrowDep) / float64(d.Operands)
	}
	if aluTotal > 0 {
		d.OneNarrowFrac = float64(oneN) / float64(aluTotal)
		d.TwoNarrowWideResFrac = float64(twoNW) / float64(aluTotal)
		d.TwoNarrowNarrowResFrac = float64(twoNN) / float64(aluTotal)
	}
	return d
}

// CarryStudy is the Figure 11 measurement: carry containment for 8-32-32
// shaped operations, split into arithmetic and load address generation.
type CarryStudy struct {
	ArithEligible  uint64
	ArithContained uint64
	LoadEligible   uint64
	LoadContained  uint64
}

// ArithFrac returns the contained fraction for arithmetic, in [0,1].
func (c CarryStudy) ArithFrac() float64 {
	if c.ArithEligible == 0 {
		return 0
	}
	return float64(c.ArithContained) / float64(c.ArithEligible)
}

// LoadFrac returns the contained fraction for loads, in [0,1].
func (c CarryStudy) LoadFrac() float64 {
	if c.LoadEligible == 0 {
		return 0
	}
	return float64(c.LoadContained) / float64(c.LoadEligible)
}

// MeasureCarry runs the Figure 11 study over n uops of src.
func MeasureCarry(src trace.Source, n int) CarryStudy {
	var (
		c CarryStudy
		u isa.Uop
	)
	for i := 0; i < n; i++ {
		src.Next(&u)
		switch u.Class {
		case isa.ClassALU:
			if u.NSrc < 1 || !bitwidth.CREligibleOp(u.Op) {
				continue
			}
			a := u.SrcVal[0]
			b := u.SrcVal[1]
			if u.NSrc < 2 {
				if !u.HasImm {
					continue
				}
				b = u.Imm
			}
			wide, ok := bitwidth.CRShape(a, b, u.DstVal)
			if !ok {
				continue
			}
			c.ArithEligible++
			if bitwidth.CarryNotPropagated(wide, u.DstVal) {
				c.ArithContained++
			}
		case isa.ClassLoad, isa.ClassStore:
			// Address generation: base + offset → address.
			wide, ok := bitwidth.CRShape(u.SrcVal[0], u.SrcVal[1], u.MemAddr)
			if !ok {
				continue
			}
			c.LoadEligible++
			if bitwidth.CarryNotPropagated(wide, u.MemAddr) {
				c.LoadContained++
			}
		}
	}
	return c
}

// DistanceStudy is the Figure 13 measurement: the dynamic distance in uops
// between a producer and the first consumer of its value.
type DistanceStudy struct {
	Pairs uint64
	Sum   uint64
	Max   uint64
	Histo [32]uint64 // distance histogram, saturating at 31
}

// Average returns the mean producer-consumer distance.
func (d DistanceStudy) Average() float64 {
	if d.Pairs == 0 {
		return 0
	}
	return float64(d.Sum) / float64(d.Pairs)
}

// MeasureDistance runs the Figure 13 study over n uops of src.
func MeasureDistance(src trace.Source, n int) DistanceStudy {
	var (
		d DistanceStudy
		u isa.Uop
	)
	var producerSeq [isa.NumRegs]uint64
	var consumed [isa.NumRegs]bool
	var live [isa.NumRegs]bool

	for i := 0; i < n; i++ {
		src.Next(&u)
		if u.Class != isa.ClassFP {
			for k := 0; k < int(u.NSrc); k++ {
				r := u.SrcReg[k]
				if r == isa.RegNone || !live[r] || consumed[r] {
					continue
				}
				consumed[r] = true
				dist := u.Seq - producerSeq[r]
				d.Pairs++
				d.Sum += dist
				if dist > d.Max {
					d.Max = dist
				}
				h := dist
				if h > 31 {
					h = 31
				}
				d.Histo[h]++
			}
		}
		if u.Class != isa.ClassFP && u.HasDest() {
			producerSeq[u.DstReg] = u.Seq
			live[u.DstReg] = true
			consumed[u.DstReg] = false
		}
		if u.WritesFlags {
			producerSeq[isa.RegFlags] = u.Seq
			live[isa.RegFlags] = true
			consumed[isa.RegFlags] = false
		}
	}
	return d
}
